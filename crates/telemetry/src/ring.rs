//! The bounded ring-buffer span sink — the only telemetry component on
//! the engine's hot path, so its contract is absolute: **never block**.
//!
//! [`RingSink::record`] takes the buffer lock with `try_lock` only; a
//! contended lock drops the span (counted). A full ring overwrites its
//! oldest span (also counted as a drop — the span existed and was
//! lost). Consumers ([`RingSink::drain`]) may block on the lock; they
//! run on the control plane's cadence, not the workers'.

use duality_service::span::{PhaseSpan, SpanRecord, SpanSink};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Fixed-capacity overwrite-oldest span buffer. Cheap to share: hand
/// `Arc<RingSink>` to
/// [`EngineBuilder::span_sink`](duality_service::EngineBuilder::span_sink)
/// and keep a clone for draining.
///
/// Job spans and substrate build-phase spans buffer in **separate
/// rings** (each of `capacity`) so a burst of one kind never evicts the
/// other; both obey the same never-block / drop-and-count contract and
/// share the drop counter.
pub struct RingSink {
    capacity: usize,
    ring: Mutex<VecDeque<SpanRecord>>,
    /// Substrate build-phase profiling spans (the rarer kind: one per
    /// phase per build, not one per job).
    phase_ring: Mutex<VecDeque<PhaseSpan>>,
    /// Spans offered to the sink ([`SpanSink::record`] +
    /// [`SpanSink::record_phase`] calls).
    seen: AtomicU64,
    /// Spans lost: lock contention on the hot path, or overwritten by a
    /// later span before any consumer drained them (either kind).
    dropped: AtomicU64,
}

impl RingSink {
    /// A ring holding at most `capacity` spans (clamped to ≥ 1).
    pub fn new(capacity: usize) -> RingSink {
        let capacity = capacity.max(1);
        RingSink {
            capacity,
            ring: Mutex::new(VecDeque::with_capacity(capacity)),
            phase_ring: Mutex::new(VecDeque::new()),
            seen: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// Takes every buffered span, oldest first.
    pub fn drain(&self) -> Vec<SpanRecord> {
        self.ring.lock().expect("ring lock").drain(..).collect()
    }

    /// Takes every buffered build-phase span, oldest first.
    pub fn drain_phases(&self) -> Vec<PhaseSpan> {
        self.phase_ring
            .lock()
            .expect("phase ring lock")
            .drain(..)
            .collect()
    }

    /// Spans offered to the sink so far.
    pub fn seen(&self) -> u64 {
        self.seen.load(Ordering::Relaxed)
    }

    /// Spans lost (contention + overwrite). `seen - dropped` is what a
    /// prompt consumer collects.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Spans currently buffered.
    pub fn len(&self) -> usize {
        self.ring.lock().expect("ring lock").len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The fixed capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

impl SpanSink for RingSink {
    fn record(&self, span: SpanRecord) {
        self.seen.fetch_add(1, Ordering::Relaxed);
        // Never block a worker: a contended lock means a consumer (or
        // another producer) holds the ring — drop this span, counted.
        let Ok(mut ring) = self.ring.try_lock() else {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        };
        if ring.len() == self.capacity {
            ring.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        ring.push_back(span);
    }

    fn record_phase(&self, span: PhaseSpan) {
        self.seen.fetch_add(1, Ordering::Relaxed);
        // Same contract as `record`: contention drops, counted.
        let Ok(mut ring) = self.phase_ring.try_lock() else {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        };
        if ring.len() == self.capacity {
            ring.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        ring.push_back(span);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use duality_service::span::SpanState;

    fn span(i: u64) -> SpanRecord {
        SpanRecord {
            tenant: 1,
            spec: i,
            query: "girth",
            shard: 0,
            worker: Some(0),
            state: SpanState::Completed,
            submitted_us: i,
            admitted_us: Some(i),
            dequeued_us: Some(i + 1),
            started_us: Some(i + 2),
            finished_us: i + 5,
            source: Some(duality_service::DequeueSource::Local),
        }
    }

    #[test]
    fn overflow_overwrites_oldest_and_counts_drops() {
        let ring = RingSink::new(3);
        for i in 0..5 {
            ring.record(span(i));
        }
        assert_eq!(ring.seen(), 5);
        assert_eq!(ring.dropped(), 2, "two oldest overwritten");
        let drained = ring.drain();
        let specs: Vec<u64> = drained.iter().map(|s| s.spec).collect();
        assert_eq!(specs, vec![2, 3, 4], "newest survive, oldest first");
        assert!(ring.is_empty());
        assert_eq!(ring.dropped(), 2, "drain is not a drop");
    }

    #[test]
    fn contention_drops_instead_of_blocking() {
        let ring = RingSink::new(8);
        let guard = ring.ring.lock().unwrap();
        ring.record(span(0));
        drop(guard);
        assert_eq!((ring.seen(), ring.dropped()), (1, 1));
        assert!(ring.is_empty(), "the contended span was never buffered");
    }

    #[test]
    fn phase_spans_buffer_separately_with_shared_drop_accounting() {
        let ring = RingSink::new(2);
        let phase = |i: u64| PhaseSpan {
            tenant: 1,
            spec: 1,
            phase: format!("phase-{i}"),
            shard: 0,
            worker: 0,
            us: i,
            finished_us: i,
        };
        for i in 0..3 {
            ring.record_phase(phase(i));
        }
        ring.record(span(9));
        assert_eq!(ring.seen(), 4, "both kinds count as offered");
        assert_eq!(ring.dropped(), 1, "oldest phase span overwritten");
        assert_eq!(ring.len(), 1, "job ring untouched by the phase burst");
        let phases = ring.drain_phases();
        let names: Vec<&str> = phases.iter().map(|p| p.phase.as_str()).collect();
        assert_eq!(names, vec!["phase-1", "phase-2"]);
        assert!(ring.drain_phases().is_empty());
    }

    #[test]
    fn capacity_is_clamped_to_one() {
        let ring = RingSink::new(0);
        assert_eq!(ring.capacity(), 1);
        ring.record(span(0));
        ring.record(span(1));
        assert_eq!(ring.drain().len(), 1);
        assert_eq!(ring.dropped(), 1);
    }
}
