//! Telemetry spine for the duality serving stack: job lifecycle spans
//! in, per-tenant truth out.
//!
//! The serving engine measures itself in aggregate — one fleet-wide
//! latency histogram, one set of lifecycle counters
//! ([`duality_service::MetricsSnapshot`]). That is enough to see *that*
//! the fleet is slow, and structurally unable to say *who* is slow or
//! *where* the time went. This crate closes both gaps on top of the
//! engine's span emission hooks
//! ([`duality_service::span`]):
//!
//! * **[`RingSink`]** ([`ring`]) — the hot-path buffer: a fixed-capacity
//!   overwrite-oldest ring the engine's workers record
//!   [`SpanRecord`](duality_service::SpanRecord)s into. Never blocks:
//!   contention and overflow drop spans (counted, reported in every
//!   snapshot) rather than stall a worker.
//! * **[`TenantLedger`]** ([`ledger`]) — attribution: folds spans into
//!   per-tenant lifecycle counters and three log₂ histograms —
//!   queue-wait, service-time, end-to-end — so p50/p99/max exist per
//!   tenant and per phase of a job's life, plus per-shard occupancy and
//!   a control-event log (autopilot decisions land here).
//! * **[`TelemetrySnapshot`]** ([`snapshot`]) — the export: displayable,
//!   and serialized as versioned byte-stable JSONL through the shared
//!   [`duality_workload::jsonl`] codec.
//! * **[`Telemetry`]** — the handle tying them together: owns the ring
//!   and the ledger, polls one into the other, and is what the control
//!   plane attaches to judge per-tenant SLOs and drive the autopilot.
//!
//! # Example
//!
//! ```
//! use duality_core::{PlanarInstance, Query};
//! use duality_planar::gen;
//! use duality_service::ServiceEngine;
//! use duality_telemetry::Telemetry;
//!
//! let telemetry = Telemetry::new(1024);
//! let engine = ServiceEngine::builder()
//!     .workers(2)
//!     .span_sink(telemetry.sink())
//!     .build()
//!     .unwrap();
//!
//! let g = gen::diag_grid(4, 4, 7).unwrap();
//! let caps = gen::random_undirected_capacities(g.num_edges(), 1, 9, 7);
//! let instance = PlanarInstance::new(g, Some(caps), None).unwrap();
//! telemetry.name_tenant(&instance, "demo");
//!
//! engine.run(&instance, Query::Girth).unwrap();
//! engine.shutdown();
//!
//! let snap = telemetry.snapshot();
//! let tenant = snap.by_name("demo").unwrap();
//! assert_eq!(tenant.stats.completed, 1);
//! assert!(tenant.stats.wait.count == 1 && tenant.stats.service.count == 1);
//! println!("{snap}");
//! ```

pub mod ledger;
pub mod ring;
pub mod snapshot;

pub use ledger::{TelemetryEvent, TenantLedger, TenantStats};
pub use ring::RingSink;
pub use snapshot::{TelemetryError, TelemetrySnapshot, TenantTelemetry, TELEMETRY_SCHEMA_VERSION};

use duality_core::pool::InstanceKey;
use duality_core::PlanarInstance;
use duality_service::span::SpanSink;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// The telemetry handle: a shareable ring sink (give [`Telemetry::sink`]
/// to the engine builder) plus the ledger it drains into. All methods
/// take `&self`; the ledger sits behind a mutex touched only by
/// telemetry consumers — never by the engine's workers, whose sole
/// telemetry surface is the ring's `try_lock`.
pub struct Telemetry {
    ring: Arc<RingSink>,
    ledger: Mutex<TenantLedger>,
    /// Pool byte gauges, stamped by whoever polls the engine's metrics
    /// ([`Telemetry::set_pool_bytes`]) — the engine pushes spans but the
    /// pool gauges are pulled, so the spine carries them alongside.
    resident_bytes: AtomicU64,
    peak_resident_bytes: AtomicU64,
    evicted_bytes: AtomicU64,
}

impl Telemetry {
    /// A telemetry spine whose ring buffers at most `ring_capacity`
    /// spans between polls. Size it to the burst you expect between
    /// control-loop rounds; overflow is dropped-and-counted, never
    /// blocking.
    pub fn new(ring_capacity: usize) -> Telemetry {
        Telemetry {
            ring: Arc::new(RingSink::new(ring_capacity)),
            ledger: Mutex::new(TenantLedger::new()),
            resident_bytes: AtomicU64::new(0),
            peak_resident_bytes: AtomicU64::new(0),
            evicted_bytes: AtomicU64::new(0),
        }
    }

    /// The sink to attach via
    /// [`EngineBuilder::span_sink`](duality_service::EngineBuilder::span_sink).
    pub fn sink(&self) -> Arc<dyn SpanSink> {
        Arc::clone(&self.ring) as Arc<dyn SpanSink>
    }

    /// The underlying ring (drop accounting, capacity).
    pub fn ring(&self) -> &RingSink {
        &self.ring
    }

    /// Drains both rings into the ledger; returns how many spans (job +
    /// build-phase) were folded. Call on the control plane's cadence.
    pub fn poll(&self) -> usize {
        let spans = self.ring.drain();
        let phases = self.ring.drain_phases();
        let mut ledger = self.ledger.lock().expect("telemetry ledger lock");
        for span in &spans {
            ledger.fold(span);
        }
        for span in &phases {
            ledger.fold_phase(span);
        }
        spans.len() + phases.len()
    }

    /// Stamps the fleet-wide pool byte gauges (typically from
    /// [`duality_service::MetricsSnapshot`]'s merged pool stats) so the
    /// next snapshot exports them. Gauges, not counters: each call
    /// overwrites; the peak is kept monotone across stamps.
    pub fn set_pool_bytes(&self, resident: u64, peak: u64, evicted: u64) {
        self.resident_bytes.store(resident, Ordering::Relaxed);
        self.peak_resident_bytes.fetch_max(peak, Ordering::Relaxed);
        self.evicted_bytes.store(evicted, Ordering::Relaxed);
    }

    /// Registers a display name for the tenant owning `instance`'s
    /// topology (every respec shares it).
    pub fn name_tenant(&self, instance: &Arc<PlanarInstance>, name: &str) {
        self.name_tenant_key(&InstanceKey::of(instance), name);
    }

    /// As [`Telemetry::name_tenant`], from an already-computed key.
    pub fn name_tenant_key(&self, key: &InstanceKey, name: &str) {
        self.ledger
            .lock()
            .expect("telemetry ledger lock")
            .name_tenant(key.topo_fingerprint(), name);
    }

    /// Records one control event (autopilot decisions, SLO judgements);
    /// returns its sequence number.
    pub fn record_event(&self, label: &str, detail: String) -> u64 {
        self.ledger
            .lock()
            .expect("telemetry ledger lock")
            .record_event(label, detail)
    }

    /// Polls the ring, then snapshots the ledger.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        self.poll();
        let ledger = self.ledger.lock().expect("telemetry ledger lock");
        TelemetrySnapshot {
            spans: ledger.spans(),
            dropped: self.ring.dropped(),
            shard_jobs: ledger.shard_jobs().to_vec(),
            phase_us: ledger.phases().map(|(p, us)| (p.to_string(), us)).collect(),
            resident_bytes: self.resident_bytes.load(Ordering::Relaxed),
            peak_resident_bytes: self.peak_resident_bytes.load(Ordering::Relaxed),
            evicted_bytes: self.evicted_bytes.load(Ordering::Relaxed),
            tenants: ledger
                .tenants()
                .map(|(tenant, name, stats)| TenantTelemetry {
                    tenant,
                    name: name.map(String::from),
                    stats: stats.clone(),
                })
                .collect(),
            events: ledger.events().to_vec(),
        }
    }
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry")
            .field("ring_capacity", &self.ring.capacity())
            .field("seen", &self.ring.seen())
            .field("dropped", &self.ring.dropped())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use duality_core::Query;
    use duality_planar::gen;
    use duality_service::ServiceEngine;

    fn instance(seed: u64) -> Arc<PlanarInstance> {
        let g = gen::diag_grid(4, 4, seed).unwrap();
        let caps = gen::random_undirected_capacities(g.num_edges(), 1, 9, seed);
        PlanarInstance::new(g, Some(caps), None).unwrap()
    }

    #[test]
    fn engine_spans_land_in_the_ledger() {
        let telemetry = Telemetry::new(64);
        let engine = ServiceEngine::builder()
            .shards(2)
            .workers(2)
            .span_sink(telemetry.sink())
            .build()
            .unwrap();
        let (a, b) = (instance(1), instance(2));
        telemetry.name_tenant(&a, "alpha");
        for _ in 0..3 {
            engine.run(&a, Query::Girth).unwrap();
        }
        engine.run(&b, Query::Girth).unwrap();
        let m = engine.shutdown();

        let snap = telemetry.snapshot();
        assert_eq!(snap.spans, m.submitted, "one span per admitted job");
        assert_eq!(snap.dropped, 0);
        assert!(
            !snap.phase_us.is_empty(),
            "the substrate builds emitted phase spans"
        );
        assert_eq!(snap.by_name("alpha").unwrap().stats.completed, 3);
        assert_eq!(snap.tenants.len(), 2);
        assert_eq!(snap.fleet_total().count, m.latency.count);
        assert_eq!(
            snap.shard_jobs.iter().sum::<u64>(),
            m.completed,
            "occupancy covers every executed job"
        );
        // Export round trip.
        let parsed = TelemetrySnapshot::parse_jsonl(&snap.to_jsonl()).unwrap();
        assert_eq!(parsed, snap);
    }

    #[test]
    fn snapshot_is_cumulative_across_polls() {
        let telemetry = Telemetry::new(4);
        let engine = ServiceEngine::builder()
            .workers(1)
            .span_sink(telemetry.sink())
            .build()
            .unwrap();
        let i = instance(3);
        engine.run(&i, Query::Girth).unwrap();
        assert!(
            telemetry.poll() >= 1,
            "first poll folds the job span (plus its build-phase spans)"
        );
        engine.run(&i, Query::Girth).unwrap();
        engine.shutdown();
        telemetry.record_event("note", "shutdown".into());
        let snap = telemetry.snapshot();
        assert_eq!(snap.spans, 2, "second poll added the second span");
        assert_eq!(snap.events.len(), 1);
    }

    #[test]
    fn pool_byte_gauges_stamp_into_snapshots() {
        let telemetry = Telemetry::new(8);
        telemetry.set_pool_bytes(1_000, 1_500, 0);
        telemetry.set_pool_bytes(800, 1_200, 300);
        let snap = telemetry.snapshot();
        assert_eq!(snap.resident_bytes, 800, "gauge overwrites");
        assert_eq!(snap.peak_resident_bytes, 1_500, "peak stays monotone");
        assert_eq!(snap.evicted_bytes, 300);
    }
}
