//! The per-tenant attribution ledger: spans in, tenant truth out.
//!
//! [`TenantLedger::fold`] attributes each span to its tenant (the
//! topology fingerprint every respec of one network shares) and
//! maintains, per tenant, lifecycle counters plus three log₂ latency
//! histograms — **queue-wait**, **service-time**, and end-to-end total
//! — so p50/p99/max are available *per tenant and per phase of a job's
//! life*, which the engine's single fleet-wide histogram cannot give.
//! The discipline mirrors the paper's CONGEST cost ledgers: every
//! microsecond a job spends is billed to an explicit account.
//!
//! Histogram semantics follow the engine's: service and total record
//! only executed jobs (completed or failed), exactly the population of
//! `MetricsSnapshot::latency`; wait additionally records expired and
//! cancelled jobs, whose whole queued life was waiting. Rejected
//! submissions never waited in the queue and only count.

use duality_service::metrics::LATENCY_BUCKETS;
use duality_service::span::{PhaseSpan, SpanRecord, SpanState};
use duality_service::LatencySnapshot;
use std::collections::BTreeMap;

/// Folds `us` into an accumulating [`LatencySnapshot`] with the same
/// bucket geometry the engine's live histogram uses.
fn fold_us(hist: &mut LatencySnapshot, us: u64) {
    let idx = (64 - us.leading_zeros() as usize).min(LATENCY_BUCKETS - 1);
    hist.buckets[idx] += 1;
    hist.count += 1;
    hist.sum_us += us;
    hist.max_us = hist.max_us.max(us);
}

/// Merges `from` into `into` (per-bucket sums; max of maxes).
pub(crate) fn merge(into: &mut LatencySnapshot, from: &LatencySnapshot) {
    for (a, b) in into.buckets.iter_mut().zip(from.buckets.iter()) {
        *a += b;
    }
    into.count += from.count;
    into.sum_us += from.sum_us;
    into.max_us = into.max_us.max(from.max_us);
}

/// One tenant's ledger slice: lifecycle counters and the wait / service
/// / total histograms.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TenantStats {
    /// Jobs that executed and returned an outcome.
    pub completed: u64,
    /// Jobs that executed and returned an error (or panicked).
    pub failed: u64,
    /// Submissions refused at admission.
    pub rejected: u64,
    /// Jobs whose deadline passed before execution.
    pub expired: u64,
    /// Jobs cancelled while queued.
    pub cancelled: u64,
    /// Queue-wait distribution (admitted jobs).
    pub wait: LatencySnapshot,
    /// Service-time distribution (executed jobs).
    pub service: LatencySnapshot,
    /// End-to-end latency distribution (executed jobs — the same
    /// population the engine's fleet-wide histogram records, so a
    /// per-tenant p99 here is directly comparable to an SLO written
    /// against the engine's).
    pub total: LatencySnapshot,
}

impl TenantStats {
    /// Jobs that reached a terminal state (spans folded).
    pub fn spans(&self) -> u64 {
        self.completed + self.failed + self.rejected + self.expired + self.cancelled
    }

    /// Jobs that actually executed.
    pub fn executed(&self) -> u64 {
        self.completed + self.failed
    }
}

/// One recorded control-plane event — autopilot decisions land here so
/// a telemetry snapshot carries *why* the fleet changed shape alongside
/// what the tenants experienced.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TelemetryEvent {
    /// Monotone sequence number (assignment order).
    pub seq: u64,
    /// Short machine-readable label (e.g. `scale-up`).
    pub label: String,
    /// Human-readable detail.
    pub detail: String,
}

impl std::fmt::Display for TelemetryEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}: {}", self.seq, self.label, self.detail)
    }
}

/// The fold target: per-tenant stats keyed by topology fingerprint
/// (deterministic iteration order), per-shard executed-job occupancy,
/// optional tenant display names, and the event log.
#[derive(Debug, Default)]
pub struct TenantLedger {
    tenants: BTreeMap<u64, TenantStats>,
    names: BTreeMap<u64, String>,
    shard_jobs: Vec<u64>,
    spans: u64,
    events: Vec<TelemetryEvent>,
    /// Fleet-wide substrate build µs per phase (embed / dual / bdd /
    /// weight-tier / labeling), accumulated from build-phase spans.
    phase_us: BTreeMap<String, u64>,
}

impl TenantLedger {
    /// An empty ledger.
    pub fn new() -> TenantLedger {
        TenantLedger::default()
    }

    /// Attributes one span to its tenant.
    pub fn fold(&mut self, span: &SpanRecord) {
        self.spans += 1;
        let stats = self.tenants.entry(span.tenant).or_default();
        match span.state {
            SpanState::Completed => stats.completed += 1,
            SpanState::Failed => stats.failed += 1,
            SpanState::Expired => stats.expired += 1,
            SpanState::Cancelled => stats.cancelled += 1,
            SpanState::Rejected => {
                stats.rejected += 1;
                return; // never queued: nothing to bill to wait/service
            }
        }
        fold_us(&mut stats.wait, span.wait_us());
        if let Some(service_us) = span.service_us() {
            fold_us(&mut stats.service, service_us);
            fold_us(&mut stats.total, span.total_us());
            if self.shard_jobs.len() <= span.shard {
                self.shard_jobs.resize(span.shard + 1, 0);
            }
            self.shard_jobs[span.shard] += 1;
        }
    }

    /// Accumulates one substrate build-phase span into the fleet-wide
    /// per-phase build-time account. Phase spans are already amortized at
    /// the source (the engine bills each build exactly once), so this is
    /// a plain sum.
    pub fn fold_phase(&mut self, span: &PhaseSpan) {
        *self.phase_us.entry(span.phase.clone()).or_insert(0) += span.us;
    }

    /// Fleet-wide substrate build µs per phase, in phase-name order.
    pub fn phases(&self) -> impl Iterator<Item = (&str, u64)> {
        self.phase_us.iter().map(|(p, &us)| (p.as_str(), us))
    }

    /// Registers a display name for a tenant fingerprint (the control
    /// plane knows which `FleetSpec` tenant owns which topology).
    pub fn name_tenant(&mut self, tenant: u64, name: &str) {
        self.names.insert(tenant, name.to_string());
    }

    /// Appends one event and returns its sequence number.
    pub fn record_event(&mut self, label: &str, detail: String) -> u64 {
        let seq = self.events.len() as u64;
        self.events.push(TelemetryEvent {
            seq,
            label: label.to_string(),
            detail,
        });
        seq
    }

    /// Spans folded so far.
    pub fn spans(&self) -> u64 {
        self.spans
    }

    /// The stats of one tenant, if any span was attributed to it.
    pub fn tenant(&self, fingerprint: u64) -> Option<&TenantStats> {
        self.tenants.get(&fingerprint)
    }

    /// Iterates `(fingerprint, name-if-known, stats)` in fingerprint
    /// order.
    pub fn tenants(&self) -> impl Iterator<Item = (u64, Option<&str>, &TenantStats)> {
        self.tenants
            .iter()
            .map(|(&fp, stats)| (fp, self.names.get(&fp).map(String::as_str), stats))
    }

    /// Executed jobs per shard (index = shard).
    pub fn shard_jobs(&self) -> &[u64] {
        &self.shard_jobs
    }

    /// The recorded events, in sequence order.
    pub fn events(&self) -> &[TelemetryEvent] {
        &self.events
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(tenant: u64, state: SpanState, wait: u64, service: u64) -> SpanRecord {
        let started = matches!(state, SpanState::Completed | SpanState::Failed);
        SpanRecord {
            tenant,
            spec: tenant,
            query: "girth",
            shard: (tenant % 2) as usize,
            worker: Some(0),
            state,
            submitted_us: 100,
            admitted_us: Some(100),
            dequeued_us: Some(100 + wait),
            started_us: started.then_some(100 + wait),
            finished_us: 100 + wait + if started { service } else { 0 },
            source: Some(duality_service::DequeueSource::Local),
        }
    }

    #[test]
    fn spans_attribute_to_their_tenant_and_phase() {
        let mut ledger = TenantLedger::new();
        ledger.fold(&span(1, SpanState::Completed, 50, 200));
        ledger.fold(&span(1, SpanState::Completed, 70, 400));
        ledger.fold(&span(1, SpanState::Cancelled, 30, 0));
        ledger.fold(&span(2, SpanState::Rejected, 0, 0));
        assert_eq!(ledger.spans(), 4);

        let t1 = ledger.tenant(1).unwrap();
        assert_eq!((t1.completed, t1.cancelled), (2, 1));
        assert_eq!(t1.spans(), 3);
        assert_eq!(t1.wait.count, 3, "cancelled jobs billed their wait");
        assert_eq!(t1.service.count, 2, "only executed jobs have service");
        assert_eq!(t1.total.count, 2);
        assert_eq!(t1.total.sum_us, 50 + 200 + 70 + 400);
        assert_eq!(t1.service.max_us, 400);

        let t2 = ledger.tenant(2).unwrap();
        assert_eq!(t2.rejected, 1);
        assert_eq!(t2.wait.count, 0, "rejections never waited in queue");
        assert!(ledger.tenant(3).is_none());
    }

    #[test]
    fn shard_occupancy_counts_executed_jobs() {
        let mut ledger = TenantLedger::new();
        ledger.fold(&span(2, SpanState::Completed, 1, 1)); // shard 0
        ledger.fold(&span(3, SpanState::Completed, 1, 1)); // shard 1
        ledger.fold(&span(3, SpanState::Failed, 1, 1)); // shard 1
        ledger.fold(&span(3, SpanState::Expired, 1, 0)); // never executed
        assert_eq!(ledger.shard_jobs(), &[1, 2]);
    }

    #[test]
    fn names_and_events_are_kept_in_order() {
        let mut ledger = TenantLedger::new();
        ledger.fold(&span(7, SpanState::Completed, 1, 1));
        ledger.name_tenant(7, "grid-a");
        assert_eq!(ledger.record_event("scale-up", "2 -> 4".into()), 0);
        assert_eq!(ledger.record_event("scale-down", "4 -> 2".into()), 1);
        let rows: Vec<_> = ledger.tenants().collect();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].1, Some("grid-a"));
        assert_eq!(ledger.events()[1].label, "scale-down");
        assert!(ledger.events()[0].to_string().contains("scale-up"));
    }

    #[test]
    fn phase_spans_accumulate_per_phase_without_counting_as_jobs() {
        let mut ledger = TenantLedger::new();
        let phase = |name: &str, us: u64| PhaseSpan {
            tenant: 1,
            spec: 1,
            phase: name.to_string(),
            shard: 0,
            worker: 0,
            us,
            finished_us: 0,
        };
        ledger.fold_phase(&phase("embed", 50));
        ledger.fold_phase(&phase("bdd", 200));
        ledger.fold_phase(&phase("embed", 30));
        assert_eq!(ledger.spans(), 0, "phase spans are not job spans");
        let phases: Vec<(String, u64)> =
            ledger.phases().map(|(p, us)| (p.to_string(), us)).collect();
        assert_eq!(
            phases,
            vec![("bdd".to_string(), 200), ("embed".to_string(), 80)],
            "summed per phase, phase-name order"
        );
    }

    #[test]
    fn histogram_merge_sums_buckets() {
        let mut a = LatencySnapshot::default();
        let mut b = LatencySnapshot::default();
        fold_us(&mut a, 10);
        fold_us(&mut b, 1_000);
        fold_us(&mut b, 2_000);
        merge(&mut a, &b);
        assert_eq!(a.count, 3);
        assert_eq!(a.sum_us, 3_010);
        assert_eq!(a.max_us, 2_000);
    }
}
