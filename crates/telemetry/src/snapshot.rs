//! [`TelemetrySnapshot`]: the ledger's point-in-time export — displayable
//! for operators, serializable as versioned byte-stable JSONL (the
//! shared [`duality_workload::jsonl`] codec) for artifacts and offline
//! analysis.

use crate::ledger::{merge, TelemetryEvent, TenantStats};
use duality_service::metrics::LATENCY_BUCKETS;
use duality_service::LatencySnapshot;
use duality_workload::jsonl::{line, Obj, Val};

/// Schema version stamped on every serialized snapshot; parsing refuses
/// other versions.
pub const TELEMETRY_SCHEMA_VERSION: u64 = 1;

/// A telemetry serialization/parse failure (human-readable reason).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TelemetryError(pub String);

impl std::fmt::Display for TelemetryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "telemetry: {}", self.0)
    }
}

impl std::error::Error for TelemetryError {}

/// One tenant's row in a snapshot.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TenantTelemetry {
    /// The tenant identity (topology fingerprint).
    pub tenant: u64,
    /// Display name, when the control plane registered one.
    pub name: Option<String>,
    /// Counters and wait/service/total histograms.
    pub stats: TenantStats,
}

impl TenantTelemetry {
    /// The tenant's end-to-end p99 (upper bound), if it executed jobs.
    pub fn p99_total_us(&self) -> Option<u64> {
        self.stats.total.quantile_us(0.99)
    }

    /// The label a human sees: the registered name, else the hex
    /// fingerprint.
    pub fn label(&self) -> String {
        self.name
            .clone()
            .unwrap_or_else(|| format!("{:016x}", self.tenant))
    }
}

/// Everything the telemetry spine knows at one instant: per-tenant
/// attribution, per-shard occupancy, ring accounting, and the control
/// event log.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TelemetrySnapshot {
    /// Spans folded into the ledger.
    pub spans: u64,
    /// Spans the ring sink lost (contention + overwrite, job and
    /// build-phase spans alike) — honesty metadata: attribution below is
    /// exact over `spans`, not over every job the engine ever ran.
    pub dropped: u64,
    /// Executed jobs per shard (index = shard).
    pub shard_jobs: Vec<u64>,
    /// Fleet-wide substrate build µs per phase (embed / dual / bdd /
    /// weight-tier / labeling), in phase-name order — aggregated from
    /// build-phase spans, each build billed exactly once.
    pub phase_us: Vec<(String, u64)>,
    /// Fleet-wide solver-pool resident bytes, as last stamped via
    /// [`Telemetry::set_pool_bytes`](crate::Telemetry::set_pool_bytes)
    /// (a gauge: 0 until someone stamps it).
    pub resident_bytes: u64,
    /// High-water resident bytes across the fleet's pools.
    pub peak_resident_bytes: u64,
    /// Cumulative bytes freed by pool evictions.
    pub evicted_bytes: u64,
    /// Per-tenant rows, in fingerprint order.
    pub tenants: Vec<TenantTelemetry>,
    /// Recorded control events, in sequence order.
    pub events: Vec<TelemetryEvent>,
}

impl TelemetrySnapshot {
    /// The row of one tenant fingerprint.
    pub fn tenant(&self, fingerprint: u64) -> Option<&TenantTelemetry> {
        self.tenants.iter().find(|t| t.tenant == fingerprint)
    }

    /// The row of one named tenant.
    pub fn by_name(&self, name: &str) -> Option<&TenantTelemetry> {
        self.tenants
            .iter()
            .find(|t| t.name.as_deref() == Some(name))
    }

    /// All tenants' queue-wait histograms merged.
    pub fn fleet_wait(&self) -> LatencySnapshot {
        self.fleet(|s| &s.wait)
    }

    /// All tenants' service-time histograms merged.
    pub fn fleet_service(&self) -> LatencySnapshot {
        self.fleet(|s| &s.service)
    }

    /// All tenants' end-to-end histograms merged (the same population as
    /// the engine's own latency histogram, minus any dropped spans).
    pub fn fleet_total(&self) -> LatencySnapshot {
        self.fleet(|s| &s.total)
    }

    fn fleet(&self, pick: impl Fn(&TenantStats) -> &LatencySnapshot) -> LatencySnapshot {
        let mut out = LatencySnapshot::default();
        for t in &self.tenants {
            merge(&mut out, pick(&t.stats));
        }
        out
    }

    /// The worst per-tenant end-to-end p99, with its owner — the number
    /// the autopilot and per-tenant SLO checks react to.
    pub fn max_tenant_p99_us(&self) -> Option<(u64, u64)> {
        self.tenants
            .iter()
            .filter_map(|t| t.p99_total_us().map(|p| (t.tenant, p)))
            .max_by_key(|&(_, p)| p)
    }

    /// Serializes to versioned JSONL (byte-stable: parsing and
    /// re-serializing reproduces the exact bytes).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        line(
            &mut out,
            &[
                ("kind", Val::s("telemetry")),
                ("version", Val::n(TELEMETRY_SCHEMA_VERSION)),
                ("spans", Val::n(self.spans)),
                ("dropped", Val::n(self.dropped)),
            ],
        );
        line(
            &mut out,
            &[
                ("kind", Val::s("memory")),
                ("resident_bytes", Val::n(self.resident_bytes)),
                ("peak_bytes", Val::n(self.peak_resident_bytes)),
                ("evicted_bytes", Val::n(self.evicted_bytes)),
            ],
        );
        for (phase, us) in &self.phase_us {
            line(
                &mut out,
                &[
                    ("kind", Val::s("phase")),
                    ("phase", Val::s(phase)),
                    ("us", Val::n(*us)),
                ],
            );
        }
        for (shard, &jobs) in self.shard_jobs.iter().enumerate() {
            line(
                &mut out,
                &[
                    ("kind", Val::s("shard")),
                    ("shard", Val::n(shard as u64)),
                    ("jobs", Val::n(jobs)),
                ],
            );
        }
        for t in &self.tenants {
            let mut fields = vec![("kind", Val::s("tenant")), ("tenant", Val::n(t.tenant))];
            if let Some(name) = &t.name {
                fields.push(("name", Val::s(name)));
            }
            fields.extend([
                ("completed", Val::n(t.stats.completed)),
                ("failed", Val::n(t.stats.failed)),
                ("rejected", Val::n(t.stats.rejected)),
                ("expired", Val::n(t.stats.expired)),
                ("cancelled", Val::n(t.stats.cancelled)),
            ]);
            for (prefix, hist) in [
                ("wait", &t.stats.wait),
                ("service", &t.stats.service),
                ("total", &t.stats.total),
            ] {
                fields.extend(hist_fields(prefix, hist));
            }
            line(&mut out, &fields);
        }
        for e in &self.events {
            line(
                &mut out,
                &[
                    ("kind", Val::s("event")),
                    ("seq", Val::n(e.seq)),
                    ("label", Val::s(&e.label)),
                    ("detail", Val::s(&e.detail)),
                ],
            );
        }
        out
    }

    /// Parses what [`TelemetrySnapshot::to_jsonl`] wrote.
    ///
    /// # Errors
    ///
    /// [`TelemetryError`] on malformed lines, a missing or mismatched
    /// header, or an unknown schema version.
    pub fn parse_jsonl(text: &str) -> Result<TelemetrySnapshot, TelemetryError> {
        let mut snap = TelemetrySnapshot::default();
        let mut saw_header = false;
        for (ln, raw) in text.lines().enumerate() {
            let raw = raw.trim();
            if raw.is_empty() {
                continue;
            }
            let fail = |e: String| TelemetryError(format!("line {}: {e}", ln + 1));
            let obj = Obj::parse(raw).map_err(fail)?;
            match obj.str("kind").map_err(fail)? {
                "telemetry" => {
                    let version = obj.u64("version").map_err(fail)?;
                    if version != TELEMETRY_SCHEMA_VERSION {
                        return Err(fail(format!(
                            "unsupported schema version {version} (expected {TELEMETRY_SCHEMA_VERSION})"
                        )));
                    }
                    snap.spans = obj.u64("spans").map_err(fail)?;
                    snap.dropped = obj.u64("dropped").map_err(fail)?;
                    saw_header = true;
                }
                "memory" => {
                    snap.resident_bytes = obj.u64("resident_bytes").map_err(fail)?;
                    snap.peak_resident_bytes = obj.u64("peak_bytes").map_err(fail)?;
                    snap.evicted_bytes = obj.u64("evicted_bytes").map_err(fail)?;
                }
                "phase" => snap.phase_us.push((
                    obj.str("phase").map_err(fail)?.to_string(),
                    obj.u64("us").map_err(fail)?,
                )),
                "shard" => {
                    let shard = obj.u64("shard").map_err(fail)? as usize;
                    if snap.shard_jobs.len() <= shard {
                        snap.shard_jobs.resize(shard + 1, 0);
                    }
                    snap.shard_jobs[shard] = obj.u64("jobs").map_err(fail)?;
                }
                "tenant" => {
                    let stats = TenantStats {
                        completed: obj.u64("completed").map_err(fail)?,
                        failed: obj.u64("failed").map_err(fail)?,
                        rejected: obj.u64("rejected").map_err(fail)?,
                        expired: obj.u64("expired").map_err(fail)?,
                        cancelled: obj.u64("cancelled").map_err(fail)?,
                        wait: parse_hist(&obj, "wait").map_err(fail)?,
                        service: parse_hist(&obj, "service").map_err(fail)?,
                        total: parse_hist(&obj, "total").map_err(fail)?,
                    };
                    snap.tenants.push(TenantTelemetry {
                        tenant: obj.u64("tenant").map_err(fail)?,
                        name: obj.opt_str("name").map_err(fail)?.map(String::from),
                        stats,
                    });
                }
                "event" => snap.events.push(TelemetryEvent {
                    seq: obj.u64("seq").map_err(fail)?,
                    label: obj.str("label").map_err(fail)?.to_string(),
                    detail: obj.str("detail").map_err(fail)?.to_string(),
                }),
                other => return Err(fail(format!("unknown line kind `{other}`"))),
            }
        }
        if !saw_header {
            return Err(TelemetryError("missing telemetry header line".into()));
        }
        Ok(snap)
    }
}

/// The canonical field encoding of one histogram under `prefix`: a
/// sparse ascending `idx:count` bucket string plus the three scalars.
fn hist_fields<'a>(prefix: &str, hist: &LatencySnapshot) -> Vec<(&'a str, Val)> {
    let buckets: Vec<String> = hist
        .buckets
        .iter()
        .enumerate()
        .filter(|(_, &c)| c > 0)
        .map(|(i, c)| format!("{i}:{c}"))
        .collect();
    let key = |suffix: &str| -> &'a str {
        // The three prefixes are fixed; map to 'static keys so the
        // shared codec's borrowed-key signature stays simple.
        match (prefix, suffix) {
            ("wait", "hist") => "wait_hist",
            ("wait", "count") => "wait_count",
            ("wait", "sum_us") => "wait_sum_us",
            ("wait", "max_us") => "wait_max_us",
            ("service", "hist") => "service_hist",
            ("service", "count") => "service_count",
            ("service", "sum_us") => "service_sum_us",
            ("service", "max_us") => "service_max_us",
            ("total", "hist") => "total_hist",
            ("total", "count") => "total_count",
            ("total", "sum_us") => "total_sum_us",
            ("total", "max_us") => "total_max_us",
            _ => unreachable!("fixed histogram prefixes"),
        }
    };
    vec![
        (key("hist"), Val::S(buckets.join(","))),
        (key("count"), Val::n(hist.count)),
        (key("sum_us"), Val::n(hist.sum_us)),
        (key("max_us"), Val::n(hist.max_us)),
    ]
}

/// Inverse of [`hist_fields`].
fn parse_hist(obj: &Obj, prefix: &str) -> Result<LatencySnapshot, String> {
    let mut hist = LatencySnapshot {
        count: obj.u64(&format!("{prefix}_count"))?,
        sum_us: obj.u64(&format!("{prefix}_sum_us"))?,
        max_us: obj.u64(&format!("{prefix}_max_us"))?,
        ..LatencySnapshot::default()
    };
    let encoded = obj.str(&format!("{prefix}_hist"))?;
    for pair in encoded.split(',').filter(|p| !p.is_empty()) {
        let (idx, count) = pair
            .split_once(':')
            .ok_or_else(|| format!("bad bucket `{pair}` in `{prefix}_hist`"))?;
        let idx: usize = idx
            .parse()
            .map_err(|_| format!("bad bucket index `{idx}`"))?;
        if idx >= LATENCY_BUCKETS {
            return Err(format!("bucket index {idx} out of range"));
        }
        hist.buckets[idx] = count
            .parse()
            .map_err(|_| format!("bad bucket count `{count}`"))?;
    }
    Ok(hist)
}

impl std::fmt::Display for TelemetrySnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "telemetry: {} span(s) attributed, {} dropped; {} tenant(s)",
            self.spans,
            self.dropped,
            self.tenants.len()
        )?;
        if !self.shard_jobs.is_empty() {
            let jobs: Vec<String> = self
                .shard_jobs
                .iter()
                .enumerate()
                .map(|(s, j)| format!("{s}: {j}"))
                .collect();
            writeln!(f, "shard occupancy (executed jobs): {}", jobs.join(", "))?;
        }
        if !self.phase_us.is_empty() {
            let phases: Vec<String> = self
                .phase_us
                .iter()
                .map(|(p, us)| format!("{p} {us}µs"))
                .collect();
            writeln!(f, "substrate build: {}", phases.join(", "))?;
        }
        if self.resident_bytes != 0 || self.peak_resident_bytes != 0 || self.evicted_bytes != 0 {
            writeln!(
                f,
                "pool memory: {} B resident (peak {} B, evicted {} B)",
                self.resident_bytes, self.peak_resident_bytes, self.evicted_bytes
            )?;
        }
        for t in &self.tenants {
            write!(
                f,
                "  {}: {} ok, {} failed, {} rejected, {} expired, {} cancelled",
                t.label(),
                t.stats.completed,
                t.stats.failed,
                t.stats.rejected,
                t.stats.expired,
                t.stats.cancelled
            )?;
            match (
                t.stats.wait.quantile_us(0.99),
                t.stats.service.quantile_us(0.99),
                t.p99_total_us(),
            ) {
                (Some(w), Some(s), Some(tot)) => {
                    writeln!(f, "; p99 wait ≤ {w}µs, service ≤ {s}µs, total ≤ {tot}µs")?
                }
                _ => writeln!(f)?,
            }
        }
        for e in &self.events {
            writeln!(f, "  event {e}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TelemetrySnapshot {
        let mut wait = LatencySnapshot::default();
        wait.buckets[4] = 3;
        wait.count = 3;
        wait.sum_us = 30;
        wait.max_us = 14;
        let mut service = LatencySnapshot::default();
        service.buckets[11] = 2;
        service.count = 2;
        service.sum_us = 2_400;
        service.max_us = 1_500;
        let mut total = LatencySnapshot::default();
        total.buckets[11] = 2;
        total.count = 2;
        total.sum_us = 2_420;
        total.max_us = 1_512;
        TelemetrySnapshot {
            spans: 4,
            dropped: 1,
            shard_jobs: vec![2, 0],
            phase_us: vec![("bdd".into(), 1_900), ("embed".into(), 120)],
            resident_bytes: 48_000,
            peak_resident_bytes: 64_000,
            evicted_bytes: 16_000,
            tenants: vec![
                TenantTelemetry {
                    tenant: 0xabcd,
                    name: Some("grid-a".into()),
                    stats: TenantStats {
                        completed: 2,
                        cancelled: 1,
                        wait,
                        service,
                        total,
                        ..TenantStats::default()
                    },
                },
                TenantTelemetry {
                    tenant: 0xff00,
                    name: None,
                    stats: TenantStats {
                        rejected: 1,
                        ..TenantStats::default()
                    },
                },
            ],
            events: vec![TelemetryEvent {
                seq: 0,
                label: "scale-up".into(),
                detail: "2 -> 4 (queue pressure)".into(),
            }],
        }
    }

    #[test]
    fn jsonl_round_trips_byte_stably() {
        let snap = sample();
        let text = snap.to_jsonl();
        let parsed = TelemetrySnapshot::parse_jsonl(&text).unwrap();
        assert_eq!(parsed, snap);
        assert_eq!(parsed.to_jsonl(), text, "byte-stable re-serialization");
    }

    #[test]
    fn parse_refuses_bad_input() {
        assert!(TelemetrySnapshot::parse_jsonl("").is_err(), "no header");
        assert!(TelemetrySnapshot::parse_jsonl("{\"kind\": \"mystery\"}").is_err());
        let wrong_version = sample()
            .to_jsonl()
            .replace("\"version\": 1", "\"version\": 99");
        let err = TelemetrySnapshot::parse_jsonl(&wrong_version).unwrap_err();
        assert!(err.to_string().contains("unsupported schema version"));
        let bad_bucket = sample()
            .to_jsonl()
            .replace("\"wait_hist\": \"4:3\"", "\"wait_hist\": \"999:3\"");
        assert!(TelemetrySnapshot::parse_jsonl(&bad_bucket).is_err());
    }

    #[test]
    fn fleet_merges_and_max_p99_attributes() {
        let snap = sample();
        assert_eq!(snap.fleet_total().count, 2);
        assert_eq!(snap.fleet_wait().count, 3);
        let (owner, _) = snap.max_tenant_p99_us().unwrap();
        assert_eq!(owner, 0xabcd, "the only executing tenant owns the p99");
        assert_eq!(snap.by_name("grid-a").unwrap().tenant, 0xabcd);
        assert_eq!(snap.tenant(0xff00).unwrap().label(), "000000000000ff00");
    }

    #[test]
    fn display_is_operator_readable() {
        let text = sample().to_string();
        // The drop counter's surface is pinned: operators (and the drop
        // accounting test in `tests/telemetry_api.rs`) grep this line.
        assert_eq!(
            text.lines().next().unwrap(),
            "telemetry: 4 span(s) attributed, 1 dropped; 2 tenant(s)"
        );
        assert!(text.contains("grid-a: 2 ok"));
        assert!(text.contains("shard occupancy"));
        assert!(text.contains("substrate build: bdd 1900µs, embed 120µs"));
        assert!(text.contains("pool memory: 48000 B resident (peak 64000 B, evicted 16000 B)"));
        assert!(text.contains("scale-up"));
    }

    #[test]
    fn snapshots_without_memory_or_phase_lines_still_parse() {
        // Pre-profiling artifacts (schema v1 without the new line kinds)
        // must keep parsing: the gauges default to zero.
        let mut old = String::new();
        for l in sample().to_jsonl().lines() {
            if !l.contains("\"memory\"") && !l.contains("\"phase\"") {
                old.push_str(l);
                old.push('\n');
            }
        }
        let parsed = TelemetrySnapshot::parse_jsonl(&old).unwrap();
        assert_eq!(parsed.phase_us, Vec::new());
        assert_eq!(
            (
                parsed.resident_bytes,
                parsed.peak_resident_bytes,
                parsed.evicted_bytes
            ),
            (0, 0, 0)
        );
        assert_eq!(parsed.tenants, sample().tenants);
    }
}
