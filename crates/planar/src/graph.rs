use crate::{Dart, PlanarError};

/// Identifier of a face of a [`PlanarGraph`] (a node of the dual graph `G*`).
///
/// The paper refers to faces of the primal graph `G` as *nodes* of the dual
/// graph `G*`; we keep that convention throughout the workspace.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct FaceId(pub u32);

impl FaceId {
    /// Dense index, suitable for indexing per-face arrays.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// An embedded planar graph given by a *rotation system*.
///
/// The graph is described by `n` vertices, a list of directed edges
/// `(tail, head)`, and for every vertex the cyclic order of its out-going
/// darts (its *local embedding* — the paper's "combinatorial planar
/// embedding", Section 3). Faces are the orbits of the face permutation
/// `φ(d) = next_around(head(d), rev(d))`; construction validates Euler's
/// formula `V − E + F = 2` so that only genuinely planar rotation systems
/// are accepted.
///
/// Multi-edges and self-loops are supported (bags of the decomposition and
/// augmented graphs need them); the graph must be connected.
///
/// # Example
///
/// ```
/// use duality_planar::PlanarGraph;
///
/// // A triangle; rotations listed clockwise.
/// let g = PlanarGraph::from_edges_with_coordinates(
///     3,
///     &[(0, 1), (1, 2), (2, 0)],
///     &[(0.0, 0.0), (1.0, 0.0), (0.0, 1.0)],
/// )?;
/// assert_eq!(g.num_faces(), 2);
/// # Ok::<(), duality_planar::PlanarError>(())
/// ```
#[derive(Clone, Debug)]
pub struct PlanarGraph {
    n: usize,
    tails: Vec<u32>,
    heads: Vec<u32>,
    /// `rot[v]` = cyclic order of darts with tail `v`.
    rot: Vec<Vec<Dart>>,
    /// `rot_pos[d]` = index of dart `d` within `rot[tail(d)]`.
    rot_pos: Vec<u32>,
    /// `face_of[d]` = face containing dart `d`.
    face_of: Vec<FaceId>,
    /// `face_darts[f]` = the boundary walk of face `f`, in orbit order.
    face_darts: Vec<Vec<Dart>>,
}

impl PlanarGraph {
    /// Builds a planar graph from an explicit rotation system.
    ///
    /// `rotations[v]` must list every dart with tail `v` exactly once, in
    /// cyclic order around `v`.
    ///
    /// # Errors
    ///
    /// Returns [`PlanarError`] if an edge endpoint is out of range, the
    /// rotation system is not a permutation of the out-darts, the graph is
    /// disconnected, or the rotation system fails Euler's formula (i.e. it
    /// does not describe a genus-0 embedding).
    pub fn from_rotations(
        n: usize,
        edges: &[(usize, usize)],
        rotations: Vec<Vec<Dart>>,
    ) -> Result<Self, PlanarError> {
        let m = edges.len();
        if rotations.len() != n {
            return Err(PlanarError::BadRotation {
                reason: format!("expected {n} rotation lists, got {}", rotations.len()),
            });
        }
        let mut tails = Vec::with_capacity(m);
        let mut heads = Vec::with_capacity(m);
        for &(u, v) in edges {
            if u >= n || v >= n {
                return Err(PlanarError::VertexOutOfRange {
                    vertex: u.max(v),
                    n,
                });
            }
            tails.push(u as u32);
            heads.push(v as u32);
        }

        // Validate that rotations form a permutation of the out-darts.
        let mut seen = vec![false; 2 * m];
        let mut rot_pos = vec![u32::MAX; 2 * m];
        for (v, order) in rotations.iter().enumerate() {
            for (i, &d) in order.iter().enumerate() {
                if d.edge() >= m {
                    return Err(PlanarError::BadRotation {
                        reason: format!("dart {d:?} refers to a nonexistent edge"),
                    });
                }
                let t = if d.is_forward() {
                    tails[d.edge()]
                } else {
                    heads[d.edge()]
                } as usize;
                if t != v {
                    return Err(PlanarError::BadRotation {
                        reason: format!("dart {d:?} has tail {t}, listed under vertex {v}"),
                    });
                }
                if seen[d.index()] {
                    return Err(PlanarError::BadRotation {
                        reason: format!("dart {d:?} listed twice"),
                    });
                }
                seen[d.index()] = true;
                rot_pos[d.index()] = i as u32;
            }
        }
        if let Some(missing) = seen.iter().position(|s| !s) {
            return Err(PlanarError::BadRotation {
                reason: format!(
                    "dart {:?} missing from rotations",
                    Dart::from_index(missing)
                ),
            });
        }

        let mut g = PlanarGraph {
            n,
            tails,
            heads,
            rot: rotations,
            rot_pos,
            face_of: Vec::new(),
            face_darts: Vec::new(),
        };
        g.compute_faces();

        if !g.is_connected() {
            return Err(PlanarError::Disconnected);
        }
        // Euler's formula for connected genus-0 embeddings.
        let euler = n as i64 - m as i64 + g.face_darts.len() as i64;
        if euler != 2 {
            return Err(PlanarError::NotPlanar { euler });
        }
        Ok(g)
    }

    /// Builds the rotation system from straight-line coordinates: the darts
    /// around each vertex are sorted counter-clockwise by angle.
    ///
    /// This is the construction route used by all [`crate::gen`] workload
    /// generators, which produce planar straight-line drawings.
    ///
    /// # Errors
    ///
    /// Same conditions as [`PlanarGraph::from_rotations`]. In particular a
    /// non-planar drawing (crossing edges) fails the Euler check.
    pub fn from_edges_with_coordinates(
        n: usize,
        edges: &[(usize, usize)],
        coordinates: &[(f64, f64)],
    ) -> Result<Self, PlanarError> {
        if coordinates.len() != n {
            return Err(PlanarError::BadRotation {
                reason: format!("expected {n} coordinates, got {}", coordinates.len()),
            });
        }
        let mut out: Vec<Vec<(f64, Dart)>> = vec![Vec::new(); n];
        for (e, &(u, v)) in edges.iter().enumerate() {
            if u >= n || v >= n {
                return Err(PlanarError::VertexOutOfRange {
                    vertex: u.max(v),
                    n,
                });
            }
            let (ux, uy) = coordinates[u];
            let (vx, vy) = coordinates[v];
            let ang_uv = (vy - uy).atan2(vx - ux);
            let ang_vu = (uy - vy).atan2(ux - vx);
            out[u].push((ang_uv, Dart::forward(e)));
            out[v].push((ang_vu, Dart::backward(e)));
        }
        let rotations = out
            .into_iter()
            .map(|mut v| {
                v.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("angles are finite"));
                v.into_iter().map(|(_, d)| d).collect()
            })
            .collect();
        Self::from_rotations(n, edges, rotations)
    }

    fn compute_faces(&mut self) {
        let m = self.num_edges();
        self.face_of = vec![FaceId(u32::MAX); 2 * m];
        self.face_darts.clear();
        for start in 0..2 * m {
            if self.face_of[start].0 != u32::MAX {
                continue;
            }
            let fid = FaceId(self.face_darts.len() as u32);
            let mut walk = Vec::new();
            let mut d = Dart::from_index(start);
            loop {
                self.face_of[d.index()] = fid;
                walk.push(d);
                d = self.phi(d);
                if d.index() == start {
                    break;
                }
            }
            self.face_darts.push(walk);
        }
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// Number of edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.tails.len()
    }

    /// Number of darts (`2 * num_edges`).
    #[inline]
    pub fn num_darts(&self) -> usize {
        2 * self.tails.len()
    }

    /// Number of faces (= number of nodes of the dual graph `G*`).
    #[inline]
    pub fn num_faces(&self) -> usize {
        self.face_darts.len()
    }

    /// Tail vertex of edge `e`.
    #[inline]
    pub fn edge_tail(&self, e: usize) -> usize {
        self.tails[e] as usize
    }

    /// Head vertex of edge `e`.
    #[inline]
    pub fn edge_head(&self, e: usize) -> usize {
        self.heads[e] as usize
    }

    /// Tail vertex of dart `d` (the vertex it leaves).
    #[inline]
    pub fn tail(&self, d: Dart) -> usize {
        if d.is_forward() {
            self.tails[d.edge()] as usize
        } else {
            self.heads[d.edge()] as usize
        }
    }

    /// Head vertex of dart `d` (the vertex it enters).
    #[inline]
    pub fn head(&self, d: Dart) -> usize {
        self.tail(d.rev())
    }

    /// The out-darts of `v` in rotation (embedding) order.
    #[inline]
    pub fn out_darts(&self, v: usize) -> &[Dart] {
        &self.rot[v]
    }

    /// Degree of `v` (counting multi-edges; self-loops count twice).
    #[inline]
    pub fn degree(&self, v: usize) -> usize {
        self.rot[v].len()
    }

    /// The next out-dart after `d` in the rotation around `tail(d)`.
    #[inline]
    pub fn next_around_tail(&self, d: Dart) -> Dart {
        let v = self.tail(d);
        let pos = self.rot_pos[d.index()] as usize;
        let order = &self.rot[v];
        order[(pos + 1) % order.len()]
    }

    /// The previous out-dart before `d` in the rotation around `tail(d)`.
    #[inline]
    pub fn prev_around_tail(&self, d: Dart) -> Dart {
        let v = self.tail(d);
        let pos = self.rot_pos[d.index()] as usize;
        let order = &self.rot[v];
        order[(pos + order.len() - 1) % order.len()]
    }

    /// Position of `d` within the rotation of its tail.
    #[inline]
    pub fn rotation_position(&self, d: Dart) -> usize {
        self.rot_pos[d.index()] as usize
    }

    /// The face permutation: the dart following `d` on the boundary walk of
    /// `d`'s face.
    #[inline]
    pub fn phi(&self, d: Dart) -> Dart {
        self.next_around_tail(d.rev())
    }

    /// The face containing dart `d`. Each dart belongs to exactly one face
    /// (paper, Section 5.1: "the faces of `G` define a partition over the
    /// set of darts").
    #[inline]
    pub fn face_of(&self, d: Dart) -> FaceId {
        self.face_of[d.index()]
    }

    /// Boundary walk of face `f` as a cyclic sequence of darts.
    #[inline]
    pub fn face_darts(&self, f: FaceId) -> &[Dart] {
        &self.face_darts[f.index()]
    }

    /// Iterator over all face identifiers.
    pub fn faces(&self) -> impl Iterator<Item = FaceId> + '_ {
        (0..self.face_darts.len() as u32).map(FaceId)
    }

    /// Iterator over all darts.
    pub fn darts(&self) -> impl Iterator<Item = Dart> {
        (0..self.num_darts()).map(Dart::from_index)
    }

    /// The dual arc of dart `d`: from `face(d)` to `face(rev(d))`.
    ///
    /// With this convention, for any assignment of potentials `φ` to faces,
    /// setting `flow(d) = φ(face(rev d)) − φ(face(d))` yields a circulation
    /// (flow conservation at every vertex) — the planar-duality fact behind
    /// the Miller–Naor and Hassin max-flow reductions (paper, Section 6.1).
    #[inline]
    pub fn dual_arc(&self, d: Dart) -> (FaceId, FaceId) {
        (self.face_of(d), self.face_of(d.rev()))
    }

    /// Restricted face permutation: the dart after `d` on the boundary walk
    /// of `d`'s face *within the subgraph* consisting of the edges for which
    /// `edge_present` returns `true`.
    ///
    /// `d`'s own edge must be present. Used by the BDD to trace faces of
    /// bags without re-embedding them.
    pub fn phi_restricted(&self, d: Dart, edge_present: &dyn Fn(usize) -> bool) -> Dart {
        debug_assert!(edge_present(d.edge()));
        let mut cur = d.rev();
        loop {
            cur = self.next_around_tail(cur);
            if edge_present(cur.edge()) {
                return cur;
            }
        }
    }

    /// Breadth-first search over the underlying undirected graph, restricted
    /// to edges where `edge_present` is `true`, from `root`.
    ///
    /// Returns `(parent_dart, depth)` per vertex: `parent_dart[v]` is the
    /// dart pointing *into* `v` along the BFS tree (`None` for the root and
    /// unreached vertices), `depth[v]` is the hop distance (`usize::MAX` if
    /// unreached).
    pub fn bfs_restricted(
        &self,
        root: usize,
        edge_present: &dyn Fn(usize) -> bool,
    ) -> (Vec<Option<Dart>>, Vec<usize>) {
        let mut parent = vec![None; self.n];
        let mut depth = vec![usize::MAX; self.n];
        let mut queue = std::collections::VecDeque::new();
        depth[root] = 0;
        queue.push_back(root);
        while let Some(u) = queue.pop_front() {
            for &d in &self.rot[u] {
                if !edge_present(d.edge()) {
                    continue;
                }
                let w = self.head(d);
                if depth[w] == usize::MAX {
                    depth[w] = depth[u] + 1;
                    parent[w] = Some(d);
                    queue.push_back(w);
                }
            }
        }
        (parent, depth)
    }

    /// Breadth-first search over the whole graph.
    pub fn bfs(&self, root: usize) -> (Vec<Option<Dart>>, Vec<usize>) {
        self.bfs_restricted(root, &|_| true)
    }

    fn is_connected(&self) -> bool {
        if self.n == 0 {
            return false;
        }
        let (_, depth) = self.bfs(0);
        depth.iter().all(|&d| d != usize::MAX)
    }

    /// Exact hop diameter (runs a BFS from every vertex; fine at our scales).
    pub fn diameter(&self) -> usize {
        let mut best = 0;
        for v in 0..self.n {
            let (_, depth) = self.bfs(v);
            for &d in &depth {
                if d != usize::MAX {
                    best = best.max(d);
                }
            }
        }
        best
    }

    /// Eccentricity of `root` (max BFS depth).
    pub fn eccentricity(&self, root: usize) -> usize {
        let (_, depth) = self.bfs(root);
        depth
            .iter()
            .copied()
            .filter(|&d| d != usize::MAX)
            .max()
            .unwrap_or(0)
    }

    /// Builds an augmented graph with one extra edge `(u, v)` embedded inside
    /// face `f`. Both `u` and `v` must lie on `f`. Used by Hassin's st-planar
    /// reduction (paper, Section 6.1), where the new edge splits `f` in two.
    ///
    /// Returns the augmented graph; the new edge has index `num_edges()` of
    /// the original graph.
    ///
    /// # Errors
    ///
    /// Returns [`PlanarError::NotOnFace`] if `u` or `v` has no dart on `f`.
    pub fn insert_edge_in_face(
        &self,
        u: usize,
        v: usize,
        f: FaceId,
    ) -> Result<PlanarGraph, PlanarError> {
        // Find a dart of the face walk with tail u (resp. v). Inserting the
        // new dart immediately *before* that dart in the rotation of its
        // tail places the new edge inside face f.
        let slot = |x: usize| -> Option<Dart> {
            self.face_darts(f)
                .iter()
                .copied()
                .find(|&d| self.tail(d) == x)
        };
        let du = slot(u).ok_or(PlanarError::NotOnFace { vertex: u })?;
        let dv = slot(v).ok_or(PlanarError::NotOnFace { vertex: v })?;

        let mut edges: Vec<(usize, usize)> = (0..self.num_edges())
            .map(|e| (self.edge_tail(e), self.edge_head(e)))
            .collect();
        let new_edge = edges.len();
        edges.push((u, v));
        let new_fwd = Dart::forward(new_edge); // tail u
        let new_bwd = Dart::backward(new_edge); // tail v

        let mut rotations = self.rot.clone();
        let insert_before = |order: &mut Vec<Dart>, before: Dart, new: Dart| {
            let pos = order
                .iter()
                .position(|&d| d == before)
                .expect("dart in rotation");
            order.insert(pos, new);
        };
        insert_before(&mut rotations[u], du, new_fwd);
        if u == v {
            // Self-loop: also insert the backward dart right before the
            // forward one so that the loop bounds an empty face.
            let pos = rotations[v].iter().position(|&d| d == new_fwd).unwrap();
            rotations[v].insert(pos, new_bwd);
        } else {
            insert_before(&mut rotations[v], dv, new_bwd);
        }
        PlanarGraph::from_rotations(self.n, &edges, rotations)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    fn triangle() -> PlanarGraph {
        PlanarGraph::from_edges_with_coordinates(
            3,
            &[(0, 1), (1, 2), (2, 0)],
            &[(0.0, 0.0), (1.0, 0.0), (0.0, 1.0)],
        )
        .unwrap()
    }

    #[test]
    fn triangle_has_two_faces() {
        let g = triangle();
        assert_eq!(g.num_faces(), 2);
        let sizes: Vec<usize> = g.faces().map(|f| g.face_darts(f).len()).collect();
        assert_eq!(sizes, vec![3, 3]);
    }

    #[test]
    fn face_walk_is_closed_and_consistent() {
        let g = gen::grid(3, 3).unwrap();
        for f in g.faces() {
            let walk = g.face_darts(f);
            for (i, &d) in walk.iter().enumerate() {
                assert_eq!(g.face_of(d), f);
                let next = walk[(i + 1) % walk.len()];
                assert_eq!(g.phi(d), next);
                // Boundary walks are vertex-chained: head(d) == tail(next).
                assert_eq!(g.head(d), g.tail(next));
            }
        }
    }

    #[test]
    fn every_dart_in_exactly_one_face() {
        let g = gen::grid(4, 2).unwrap();
        let mut count = vec![0usize; g.num_faces()];
        for d in g.darts() {
            count[g.face_of(d).index()] += 1;
        }
        assert_eq!(count.iter().sum::<usize>(), g.num_darts());
        for f in g.faces() {
            assert_eq!(count[f.index()], g.face_darts(f).len());
        }
    }

    #[test]
    fn euler_formula_enforced() {
        // K4 drawn with a crossing is rejected.
        let bad = PlanarGraph::from_edges_with_coordinates(
            4,
            &[(0, 1), (1, 2), (2, 3), (3, 0), (0, 2), (1, 3)],
            &[(0.0, 0.0), (1.0, 0.0), (1.0, 1.0), (0.0, 1.0)],
        );
        assert!(matches!(bad, Err(PlanarError::NotPlanar { .. })));
        // K4 drawn planarly is accepted.
        let good = PlanarGraph::from_edges_with_coordinates(
            4,
            &[(0, 1), (1, 2), (2, 0), (0, 3), (1, 3), (2, 3)],
            &[(0.0, 0.0), (4.0, 0.0), (2.0, 3.0), (2.0, 1.0)],
        )
        .unwrap();
        assert_eq!(good.num_faces(), 4);
    }

    #[test]
    fn disconnected_rejected() {
        let g = PlanarGraph::from_edges_with_coordinates(
            4,
            &[(0, 1), (2, 3)],
            &[(0.0, 0.0), (1.0, 0.0), (0.0, 1.0), (1.0, 1.0)],
        );
        assert!(matches!(g, Err(PlanarError::Disconnected)));
    }

    #[test]
    fn vertex_out_of_range_rejected() {
        let g = PlanarGraph::from_edges_with_coordinates(2, &[(0, 5)], &[(0.0, 0.0), (1.0, 0.0)]);
        assert!(matches!(g, Err(PlanarError::VertexOutOfRange { .. })));
    }

    #[test]
    fn bad_rotation_rejected() {
        // Swap a dart into the wrong vertex's rotation.
        let edges = [(0usize, 1usize)];
        let rot = vec![vec![Dart::backward(0)], vec![Dart::forward(0)]];
        let g = PlanarGraph::from_rotations(2, &edges, rot);
        assert!(matches!(g, Err(PlanarError::BadRotation { .. })));
    }

    #[test]
    fn path_graph_single_face() {
        let g = PlanarGraph::from_edges_with_coordinates(
            3,
            &[(0, 1), (1, 2)],
            &[(0.0, 0.0), (1.0, 0.0), (2.0, 0.0)],
        )
        .unwrap();
        // A tree has exactly one face whose walk visits every dart.
        assert_eq!(g.num_faces(), 1);
        assert_eq!(g.face_darts(FaceId(0)).len(), 4);
    }

    #[test]
    fn dual_arc_endpoints_differ_for_cycle_edges() {
        let g = triangle();
        for d in g.darts() {
            let (from, to) = g.dual_arc(d);
            assert_ne!(from, to, "triangle edges separate the two faces");
            let (rfrom, rto) = g.dual_arc(d.rev());
            assert_eq!((rfrom, rto), (to, from));
        }
    }

    #[test]
    fn bfs_depths_and_diameter() {
        let g = gen::grid(5, 4).unwrap();
        let (_, depth) = g.bfs(0);
        assert_eq!(depth[0], 0);
        assert_eq!(depth[g.num_vertices() - 1], 4 + 3);
        assert_eq!(g.diameter(), 7);
    }

    #[test]
    fn bfs_restricted_respects_mask() {
        let g = gen::grid(3, 1).unwrap(); // path of 3 vertices, 2 edges
        let (_, depth) = g.bfs_restricted(0, &|e| e != 1);
        assert!(depth.contains(&usize::MAX));
    }

    #[test]
    fn phi_restricted_skips_absent_edges() {
        let g = gen::grid(3, 3).unwrap();
        // Restrict to the outer boundary edges: phi_restricted walks stay
        // within present edges.
        let present: Vec<bool> = (0..g.num_edges())
            .map(|e| {
                let (u, v) = (g.edge_tail(e), g.edge_head(e));
                let on_border =
                    |x: usize| x.is_multiple_of(3) || x % 3 == 2 || x / 3 == 0 || x / 3 == 2;
                on_border(u)
                    && on_border(v)
                    && (u / 3 == v / 3 && u.abs_diff(v) == 1 && (u / 3 == 0 || u / 3 == 2)
                        || u % 3 == v % 3 && (u % 3 == 0 || u % 3 == 2))
            })
            .collect();
        let is_present = |e: usize| present[e];
        for d in g.darts().filter(|d| is_present(d.edge())) {
            let next = g.phi_restricted(d, &is_present);
            assert!(is_present(next.edge()));
            assert_eq!(g.head(d), g.tail(next));
        }
    }

    #[test]
    fn insert_edge_in_face_splits_face() {
        let g = gen::grid(3, 3).unwrap();
        // Outer face of the grid: find it as the face with the longest walk.
        let outer = g.faces().max_by_key(|&f| g.face_darts(f).len()).unwrap();
        let faces_before = g.num_faces();
        // Corners 0 and 2 both lie on the outer face.
        let aug = g.insert_edge_in_face(0, 2, outer).unwrap();
        assert_eq!(aug.num_edges(), g.num_edges() + 1);
        assert_eq!(aug.num_faces(), faces_before + 1);
    }

    #[test]
    fn insert_edge_not_on_face_errors() {
        let g = gen::grid(3, 3).unwrap();
        let outer = g.faces().max_by_key(|&f| g.face_darts(f).len()).unwrap();
        // Vertex 4 is the grid center: not on the outer face.
        assert!(matches!(
            g.insert_edge_in_face(0, 4, outer),
            Err(PlanarError::NotOnFace { vertex: 4 })
        ));
    }
}
