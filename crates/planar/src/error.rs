/// Errors produced while constructing or manipulating planar graphs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PlanarError {
    /// An edge endpoint exceeds the declared vertex count.
    VertexOutOfRange {
        /// The offending vertex id.
        vertex: usize,
        /// The declared number of vertices.
        n: usize,
    },
    /// The rotation system is malformed (not a permutation of out-darts).
    BadRotation {
        /// Human-readable description of the violation.
        reason: String,
    },
    /// The graph is not connected (the CONGEST model requires a connected
    /// communication network).
    Disconnected,
    /// The rotation system fails Euler's formula, i.e. does not describe a
    /// genus-0 (planar) embedding.
    NotPlanar {
        /// The computed value of `V - E + F` (2 for planar embeddings).
        euler: i64,
    },
    /// A vertex required to lie on a given face does not.
    NotOnFace {
        /// The offending vertex id.
        vertex: usize,
    },
}

impl std::fmt::Display for PlanarError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanarError::VertexOutOfRange { vertex, n } => {
                write!(f, "vertex {vertex} out of range for {n} vertices")
            }
            PlanarError::BadRotation { reason } => write!(f, "invalid rotation system: {reason}"),
            PlanarError::Disconnected => write!(f, "graph is not connected"),
            PlanarError::NotPlanar { euler } => {
                write!(
                    f,
                    "rotation system is not planar (V - E + F = {euler}, expected 2)"
                )
            }
            PlanarError::NotOnFace { vertex } => {
                write!(f, "vertex {vertex} does not lie on the required face")
            }
        }
    }
}

impl std::error::Error for PlanarError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let cases: Vec<(PlanarError, &str)> = vec![
            (
                PlanarError::VertexOutOfRange { vertex: 7, n: 3 },
                "vertex 7 out of range for 3 vertices",
            ),
            (PlanarError::Disconnected, "graph is not connected"),
            (
                PlanarError::NotPlanar { euler: 0 },
                "rotation system is not planar (V - E + F = 0, expected 2)",
            ),
        ];
        for (err, msg) in cases {
            assert_eq!(err.to_string(), msg);
        }
    }

    #[test]
    fn error_trait_object() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&PlanarError::Disconnected);
    }
}
