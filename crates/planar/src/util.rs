//! Small shared utilities: disjoint-set union and integer helpers.

/// Union–find with path halving and union by size.
///
/// # Example
///
/// ```
/// use duality_planar::util::DisjointSet;
///
/// let mut dsu = DisjointSet::new(4);
/// assert!(dsu.union(0, 1));
/// assert!(!dsu.union(1, 0));
/// assert_eq!(dsu.find(0), dsu.find(1));
/// assert_ne!(dsu.find(0), dsu.find(2));
/// assert_eq!(dsu.num_sets(), 3);
/// ```
#[derive(Clone, Debug)]
pub struct DisjointSet {
    parent: Vec<u32>,
    size: Vec<u32>,
    num_sets: usize,
}

impl DisjointSet {
    /// Creates `n` singleton sets.
    pub fn new(n: usize) -> Self {
        DisjointSet {
            parent: (0..n as u32).collect(),
            size: vec![1; n],
            num_sets: n,
        }
    }

    /// Representative of `x`'s set.
    pub fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] as usize != x {
            self.parent[x] = self.parent[self.parent[x] as usize];
            x = self.parent[x] as usize;
        }
        x
    }

    /// Merges the sets of `a` and `b`; returns `true` if they were distinct.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        let (big, small) = if self.size[ra] >= self.size[rb] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[small] = big as u32;
        self.size[big] += self.size[small];
        self.num_sets -= 1;
        true
    }

    /// Whether `a` and `b` are in the same set.
    pub fn same(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }

    /// Current number of disjoint sets.
    pub fn num_sets(&self) -> usize {
        self.num_sets
    }
}

/// `ceil(log2(n))` for `n ≥ 1`, with `ceil_log2(1) == 1` (the CONGEST model
/// uses `O(log n)`-bit words; we never allow zero-width words).
pub fn ceil_log2(n: usize) -> u64 {
    let n = n.max(2);
    (usize::BITS - (n - 1).leading_zeros()) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dsu_basics() {
        let mut d = DisjointSet::new(5);
        assert_eq!(d.num_sets(), 5);
        assert!(d.union(0, 1));
        assert!(d.union(2, 3));
        assert!(d.union(0, 3));
        assert_eq!(d.num_sets(), 2);
        assert!(d.same(1, 2));
        assert!(!d.same(1, 4));
    }

    #[test]
    fn ceil_log2_values() {
        assert_eq!(ceil_log2(1), 1);
        assert_eq!(ceil_log2(2), 1);
        assert_eq!(ceil_log2(3), 2);
        assert_eq!(ceil_log2(4), 2);
        assert_eq!(ceil_log2(5), 3);
        assert_eq!(ceil_log2(1024), 10);
        assert_eq!(ceil_log2(1025), 11);
    }
}
