//! The dual multigraph `G*` of an embedded planar graph.
//!
//! The dual has a node per face of `G` and, for every dart `d` of `G`, an arc
//! `face(d) → face(rev(d))`. A primal edge therefore contributes a pair of
//! antiparallel dual arcs; algorithms select which darts carry which lengths
//! (e.g. Miller–Naor uses residual capacities on both darts, the undirected
//! girth pipeline uses the edge weight on both).

use crate::{Dart, FaceId, PlanarGraph, Weight, INF};

/// Adjacency view of the dual multigraph, with per-dart lengths.
///
/// # Example
///
/// ```
/// use duality_planar::{dual::DualView, gen};
///
/// let g = gen::grid(3, 3).unwrap();
/// let lengths = vec![1i64; g.num_darts()];
/// let dual = DualView::new(&g, &lengths, |_| true);
/// assert_eq!(dual.num_nodes(), g.num_faces());
/// ```
#[derive(Clone, Debug)]
pub struct DualView {
    num_nodes: usize,
    /// `adj[f]` = list of `(to, weight, dart)` out-arcs of dual node `f`.
    adj: Vec<Vec<(FaceId, Weight, Dart)>>,
}

impl DualView {
    /// Builds the dual adjacency. `lengths[d]` is the length of the dual arc
    /// crossing dart `d` (from `face(d)` to `face(rev(d))`); darts for which
    /// `include` returns `false` contribute no arc.
    pub fn new(g: &PlanarGraph, lengths: &[Weight], include: impl Fn(Dart) -> bool) -> Self {
        assert_eq!(lengths.len(), g.num_darts(), "one length per dart");
        let mut adj = vec![Vec::new(); g.num_faces()];
        for d in g.darts() {
            if !include(d) {
                continue;
            }
            let (from, to) = g.dual_arc(d);
            adj[from.index()].push((to, lengths[d.index()], d));
        }
        DualView {
            num_nodes: g.num_faces(),
            adj,
        }
    }

    /// Number of dual nodes (faces of the primal graph).
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Out-arcs of dual node `f`.
    pub fn out_arcs(&self, f: FaceId) -> &[(FaceId, Weight, Dart)] {
        &self.adj[f.index()]
    }

    /// Total number of dual arcs.
    pub fn num_arcs(&self) -> usize {
        self.adj.iter().map(Vec::len).sum()
    }

    /// Single-source shortest paths by Bellman–Ford (lengths may be
    /// negative). Returns per-node distances, or `None` if a negative cycle
    /// is reachable from `source`.
    ///
    /// This is the *centralized reference* used to validate the distributed
    /// labeling pipeline; it is not charged any CONGEST rounds.
    pub fn bellman_ford(&self, source: FaceId) -> Option<Vec<Weight>> {
        let n = self.num_nodes;
        let mut dist = vec![INF; n];
        dist[source.index()] = 0;
        for round in 0..n {
            let mut changed = false;
            for f in 0..n {
                if dist[f] >= INF {
                    continue;
                }
                for &(to, w, _) in &self.adj[f] {
                    let cand = dist[f] + w;
                    if cand < dist[to.index()] {
                        dist[to.index()] = cand;
                        changed = true;
                    }
                }
            }
            if !changed {
                return Some(dist);
            }
            if round == n - 1 {
                return None; // still relaxing after n sweeps => negative cycle
            }
        }
        Some(dist)
    }

    /// Dijkstra shortest paths (requires non-negative lengths; panics in
    /// debug builds otherwise). Returns `(dist, parent_dart)` where
    /// `parent_dart[f]` is the dart whose dual arc enters `f` on the
    /// shortest-path tree.
    pub fn dijkstra(&self, source: FaceId) -> (Vec<Weight>, Vec<Option<Dart>>) {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;
        let n = self.num_nodes;
        let mut dist = vec![INF; n];
        let mut parent = vec![None; n];
        let mut heap = BinaryHeap::new();
        dist[source.index()] = 0;
        heap.push(Reverse((0, source.index())));
        while let Some(Reverse((du, u))) = heap.pop() {
            if du > dist[u] {
                continue;
            }
            for &(to, w, dart) in &self.adj[u] {
                debug_assert!(w >= 0, "dijkstra requires non-negative lengths");
                let cand = du + w;
                if cand < dist[to.index()] {
                    dist[to.index()] = cand;
                    parent[to.index()] = Some(dart);
                    heap.push(Reverse((cand, to.index())));
                }
            }
        }
        (dist, parent)
    }
}

/// Checks the undirected cycle–cut duality (paper, Fact 3.1): a set of edges
/// forming a simple cycle in `G` must form a cut in `G*` whose removal
/// leaves the dual with exactly two connected components.
///
/// Returns the two face sets `(inside, outside)` if `cycle_edges` is a
/// simple dual cut, `None` otherwise.
pub fn dual_cut_components(
    g: &PlanarGraph,
    cycle_edges: &[usize],
) -> Option<(Vec<FaceId>, Vec<FaceId>)> {
    let in_cut: std::collections::HashSet<usize> = cycle_edges.iter().copied().collect();
    let nf = g.num_faces();
    let mut comp = vec![u32::MAX; nf];
    let mut num_comp = 0u32;
    for start in 0..nf {
        if comp[start] != u32::MAX {
            continue;
        }
        let mut stack = vec![start];
        comp[start] = num_comp;
        while let Some(f) = stack.pop() {
            for &d in g.face_darts(FaceId(f as u32)) {
                if in_cut.contains(&d.edge()) {
                    continue;
                }
                let to = g.face_of(d.rev()).index();
                if comp[to] == u32::MAX {
                    comp[to] = num_comp;
                    stack.push(to);
                }
            }
        }
        num_comp += 1;
    }
    if num_comp != 2 {
        return None;
    }
    let mut a = Vec::new();
    let mut b = Vec::new();
    for f in 0..nf {
        if comp[f] == 0 {
            a.push(FaceId(f as u32));
        } else {
            b.push(FaceId(f as u32));
        }
    }
    Some((a, b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn dual_arc_count_matches_darts() {
        let g = gen::grid(4, 3).unwrap();
        let lengths = vec![1; g.num_darts()];
        let dual = DualView::new(&g, &lengths, |_| true);
        assert_eq!(dual.num_arcs(), g.num_darts());
    }

    #[test]
    fn bellman_ford_matches_dijkstra_on_nonnegative() {
        let g = gen::diag_grid(4, 4, 7).unwrap();
        let lengths: Vec<i64> = (0..g.num_darts())
            .map(|i| (i as i64 * 7) % 13 + 1)
            .collect();
        let dual = DualView::new(&g, &lengths, |_| true);
        let bf = dual.bellman_ford(FaceId(0)).unwrap();
        let (dj, _) = dual.dijkstra(FaceId(0));
        assert_eq!(bf, dj);
    }

    #[test]
    fn bellman_ford_detects_negative_cycle() {
        let g = gen::grid(3, 3).unwrap();
        let lengths = vec![-1; g.num_darts()];
        let dual = DualView::new(&g, &lengths, |_| true);
        assert!(dual.bellman_ford(FaceId(0)).is_none());
    }

    #[test]
    fn negative_lengths_without_negative_cycle_ok() {
        let g = gen::grid(2, 2).unwrap(); // single square: 2 faces
                                          // Arcs leaving face 0 cost 5, arcs entering it cost -3: any dual
                                          // cycle alternates between the two nodes so its total is >= 2.
        let lengths: Vec<i64> = g
            .darts()
            .map(|d| if g.face_of(d) == FaceId(0) { 5 } else { -3 })
            .collect();
        let dual = DualView::new(&g, &lengths, |_| true);
        let dist = dual.bellman_ford(FaceId(0)).expect("no negative cycle");
        assert_eq!(dist[0], 0);
        assert_eq!(dist[1], 5);
    }

    #[test]
    fn cycle_cut_duality_on_grid() {
        let g = gen::grid(3, 3).unwrap();
        // Find the 4 edges of the top-left unit square: a simple cycle.
        let mut square = Vec::new();
        for e in 0..g.num_edges() {
            let (u, v) = (g.edge_tail(e), g.edge_head(e));
            let mut pair = [u, v];
            pair.sort();
            if matches!(pair, [0, 1] | [1, 4] | [3, 4] | [0, 3]) {
                square.push(e);
            }
        }
        assert_eq!(square.len(), 4);
        let (a, b) = dual_cut_components(&g, &square).expect("simple cycle => simple cut");
        // One side is the single enclosed face.
        assert_eq!(a.len().min(b.len()), 1);
        assert_eq!(a.len() + b.len(), g.num_faces());
    }

    #[test]
    fn non_cycle_edge_set_is_not_simple_cut() {
        let g = gen::grid(3, 3).unwrap();
        // A single edge never disconnects the dual of a 2-edge-connected graph.
        assert!(dual_cut_components(&g, &[0]).is_none());
    }

    #[test]
    fn include_filter_drops_arcs() {
        let g = gen::grid(3, 3).unwrap();
        let lengths = vec![1; g.num_darts()];
        let dual = DualView::new(&g, &lengths, |d| d.is_forward());
        assert_eq!(dual.num_arcs(), g.num_edges());
    }
}

/// Builds the dual graph of `g` as an embedded [`PlanarGraph`] of its own.
///
/// * Dual vertex `i` corresponds to face `FaceId(i)` of `g`.
/// * Dual edge `e` corresponds to primal edge `e` (same index), directed
///   from `face(d⁺)` to `face(d⁻)` — i.e. the forward dual dart crosses the
///   forward primal dart.
/// * The rotation around a dual vertex is the boundary-walk order of the
///   corresponding face, which is the classical surface-preserving dual
///   embedding: the faces of the dual correspond to the vertices of `g`
///   (so `dual(dual(G))` has the shape of `G` back — tested below).
///
/// # Errors
///
/// Propagates the embedding validation (cannot fail for duals of valid
/// connected embeddings; the Euler check re-certifies genus 0).
pub fn dual_graph(g: &PlanarGraph) -> Result<PlanarGraph, crate::PlanarError> {
    let edges: Vec<(usize, usize)> = (0..g.num_edges())
        .map(|e| {
            let d = Dart::forward(e);
            (g.face_of(d).index(), g.face_of(d.rev()).index())
        })
        .collect();
    let rotations: Vec<Vec<Dart>> = g
        .faces()
        .map(|f| {
            g.face_darts(f)
                .iter()
                .map(|&d| {
                    // The dual dart with tail face(d) crossing primal dart d.
                    if d.is_forward() {
                        Dart::forward(d.edge())
                    } else {
                        Dart::backward(d.edge())
                    }
                })
                .collect()
        })
        .collect();
    PlanarGraph::from_rotations(g.num_faces(), &edges, rotations)
}

#[cfg(test)]
mod dual_graph_tests {
    use super::*;
    use crate::gen;

    #[test]
    fn dual_graph_counts_swap() {
        for g in [
            gen::grid(4, 4).unwrap(),
            gen::diag_grid(5, 4, 3).unwrap(),
            gen::apollonian(20, 1).unwrap(),
            gen::cycle(6).unwrap(),
        ] {
            let d = dual_graph(&g).unwrap();
            assert_eq!(d.num_vertices(), g.num_faces());
            assert_eq!(d.num_edges(), g.num_edges());
            // Euler: faces of the dual = vertices of the primal.
            assert_eq!(d.num_faces(), g.num_vertices());
        }
    }

    #[test]
    fn dual_of_dual_restores_primal_shape() {
        let g = gen::diag_grid(4, 4, 7).unwrap();
        let dd = dual_graph(&dual_graph(&g).unwrap()).unwrap();
        assert_eq!(dd.num_vertices(), g.num_vertices());
        assert_eq!(dd.num_edges(), g.num_edges());
        assert_eq!(dd.num_faces(), g.num_faces());
        // Edge incidences match up to the face<->vertex relabeling: the
        // degree multiset of dd equals that of g.
        let mut dg: Vec<usize> = (0..g.num_vertices()).map(|v| g.degree(v)).collect();
        let mut ddg: Vec<usize> = (0..dd.num_vertices()).map(|v| dd.degree(v)).collect();
        dg.sort_unstable();
        ddg.sort_unstable();
        assert_eq!(dg, ddg);
    }

    #[test]
    fn dual_graph_arcs_match_dual_view() {
        let g = gen::grid(3, 3).unwrap();
        let d = dual_graph(&g).unwrap();
        for e in 0..g.num_edges() {
            let dart = Dart::forward(e);
            assert_eq!(d.edge_tail(e), g.face_of(dart).index());
            assert_eq!(d.edge_head(e), g.face_of(dart.rev()).index());
        }
    }

    #[test]
    fn dual_distances_agree_with_dual_view() {
        let g = gen::diag_grid(4, 3, 5).unwrap();
        let lengths: Vec<i64> = (0..g.num_darts()).map(|i| (i as i64 % 7) + 1).collect();
        let view = DualView::new(&g, &lengths, |_| true);
        let dualg = dual_graph(&g).unwrap();
        // Run BFS-style Bellman-Ford over the dual PlanarGraph's darts with
        // the same per-dart lengths and compare.
        let reference = view.bellman_ford(crate::FaceId(0)).unwrap();
        let mut dist = vec![crate::INF; dualg.num_vertices()];
        dist[0] = 0;
        for _ in 0..dualg.num_vertices() {
            for dart in dualg.darts() {
                let (u, v) = (dualg.tail(dart), dualg.head(dart));
                let w = lengths[dart.index()];
                if dist[u] < crate::INF / 2 && dist[u] + w < dist[v] {
                    dist[v] = dist[u] + w;
                }
            }
        }
        assert_eq!(dist, reference);
    }
}
