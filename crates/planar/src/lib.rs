//! Planar graph substrate for the `duality` project.
//!
//! This crate provides the combinatorial foundations used by every other crate
//! in the workspace:
//!
//! * [`Dart`] — directed half-edges (each edge `e` has a *forward* dart `e⁺`
//!   and a *backward* dart `e⁻ = rev(e⁺)`), the unit the paper's dual-graph
//!   machinery is phrased in (Section 5.1 of the paper);
//! * [`PlanarGraph`] — an embedded planar graph given by a *rotation system*
//!   (cyclic order of out-darts around every vertex), with its faces computed
//!   as orbits of the face permutation `φ(d) = next_around(head(d), rev(d))`;
//! * the dual multigraph view ([`PlanarGraph::dual_arc`],
//!   [`dual::DualView`]) where the dual arc of dart `d` runs from `face(d)`
//!   to `face(rev(d))`;
//! * workload [`gen`]erators (grids, randomly triangulated grids, random
//!   Apollonian stacked triangulations, outerplanar fans, …) used by the
//!   experiment harness.
//!
//! # Example
//!
//! ```
//! use duality_planar::gen;
//!
//! let g = gen::grid(4, 3).expect("grids are planar");
//! // Euler's formula for connected planar graphs: V - E + F = 2.
//! assert_eq!(g.num_vertices() as i64 - g.num_edges() as i64 + g.num_faces() as i64, 2);
//! ```

mod dart;
pub mod dual;
mod error;
pub mod gen;
mod graph;
pub mod util;

pub use dart::Dart;
pub use error::PlanarError;
pub use graph::{FaceId, PlanarGraph};

/// Edge weights / capacities are polynomially-bounded integers, as assumed by
/// the CONGEST model (Section 3 of the paper).
pub type Weight = i64;

/// Sentinel "infinite" distance, chosen so that `INF + INF` does not overflow.
pub const INF: Weight = i64::MAX / 4;
