/// A *dart* (directed half-edge) of an embedded planar graph.
///
/// Every edge `e` of the graph is represented by two darts embedded one on
/// top of the other (paper, Section 5.1 "Darts"): the *forward* dart
/// `Dart::forward(e)` pointing from `tail(e)` to `head(e)` and the *backward*
/// dart `Dart::backward(e)` pointing the opposite way. `rev` maps each dart
/// to its reversal.
///
/// Darts are the atomic unit of the dual-graph machinery: each dart belongs
/// to exactly one face of the graph, and the dual arc of `d` crosses `d`
/// from the face containing `d` to the face containing `rev(d)`.
///
/// # Example
///
/// ```
/// use duality_planar::Dart;
///
/// let d = Dart::forward(3);
/// assert_eq!(d.edge(), 3);
/// assert!(d.is_forward());
/// assert_eq!(d.rev().rev(), d);
/// assert_ne!(d.rev(), d);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Dart(u32);

impl Dart {
    /// The forward dart of edge `e` (same direction as the edge).
    #[inline]
    pub fn forward(edge: usize) -> Self {
        Dart((edge as u32) << 1)
    }

    /// The backward dart of edge `e` (opposite direction).
    #[inline]
    pub fn backward(edge: usize) -> Self {
        Dart(((edge as u32) << 1) | 1)
    }

    /// Reconstructs a dart from its dense index (see [`Dart::index`]).
    #[inline]
    pub fn from_index(index: usize) -> Self {
        Dart(index as u32)
    }

    /// The edge this dart belongs to.
    #[inline]
    pub fn edge(self) -> usize {
        (self.0 >> 1) as usize
    }

    /// The reversal dart (`rev(rev(d)) == d`).
    #[inline]
    pub fn rev(self) -> Self {
        Dart(self.0 ^ 1)
    }

    /// Whether this is the forward dart of its edge.
    #[inline]
    pub fn is_forward(self) -> bool {
        self.0 & 1 == 0
    }

    /// Dense index in `0..2m`, suitable for indexing per-dart arrays.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Debug for Dart {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Dart(e{}{})",
            self.edge(),
            if self.is_forward() { "+" } else { "-" }
        )
    }
}

impl std::fmt::Display for Dart {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{self:?}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_backward_roundtrip() {
        for e in [0usize, 1, 17, 1 << 20] {
            assert_eq!(Dart::forward(e).edge(), e);
            assert_eq!(Dart::backward(e).edge(), e);
            assert!(Dart::forward(e).is_forward());
            assert!(!Dart::backward(e).is_forward());
            assert_eq!(Dart::forward(e).rev(), Dart::backward(e));
        }
    }

    #[test]
    fn rev_is_involution_without_fixpoints() {
        for i in 0..100 {
            let d = Dart::from_index(i);
            assert_eq!(d.rev().rev(), d);
            assert_ne!(d.rev(), d);
            assert_eq!(d.rev().edge(), d.edge());
        }
    }

    #[test]
    fn index_is_dense() {
        assert_eq!(Dart::forward(0).index(), 0);
        assert_eq!(Dart::backward(0).index(), 1);
        assert_eq!(Dart::forward(1).index(), 2);
        assert_eq!(Dart::from_index(5), Dart::backward(2));
    }

    #[test]
    fn debug_format_is_nonempty() {
        assert_eq!(format!("{:?}", Dart::forward(2)), "Dart(e2+)");
        assert_eq!(format!("{}", Dart::backward(2)), "Dart(e2-)");
    }
}
