//! Workload generators.
//!
//! All generators produce planar straight-line drawings and build the
//! rotation system from coordinates, so the resulting embeddings are valid
//! by construction (and re-validated by the Euler check). Randomized
//! generators take explicit seeds: the whole library is deterministic.

use crate::{PlanarError, PlanarGraph, Weight};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A `w × h` grid graph (`w*h` vertices, hop diameter `w + h − 2`).
///
/// Vertex `(x, y)` has index `y * w + x`. Grids with one of the dimensions
/// fixed give the skinny workloads the experiment harness uses to sweep the
/// diameter `D` independently of `n`.
///
/// # Errors
///
/// Returns an error if `w == 0 || h == 0` (propagated as a disconnected /
/// empty embedding error).
///
/// # Examples
///
/// ```
/// let g = duality_planar::gen::grid(4, 3).unwrap();
/// assert_eq!(g.num_vertices(), 12);
/// assert_eq!(g.diameter(), 4 + 3 - 2);
/// ```
pub fn grid(w: usize, h: usize) -> Result<PlanarGraph, PlanarError> {
    let mut edges = Vec::new();
    let mut coords = Vec::new();
    for y in 0..h {
        for x in 0..w {
            coords.push((x as f64, y as f64));
            if x + 1 < w {
                edges.push((y * w + x, y * w + x + 1));
            }
            if y + 1 < h {
                edges.push((y * w + x, (y + 1) * w + x));
            }
        }
    }
    PlanarGraph::from_edges_with_coordinates(w * h, &edges, &coords)
}

/// A `w × h` grid where every unit cell additionally receives one random
/// diagonal — a richly triangulated planar graph with the same diameter
/// behaviour as [`grid`], used as the main benchmark workload.
///
/// # Errors
///
/// As [`grid`].
///
/// # Examples
///
/// ```
/// // One extra edge per unit cell, deterministic under the seed.
/// let g = duality_planar::gen::diag_grid(4, 3, 7).unwrap();
/// assert_eq!(g.num_edges(), (3 * 3 + 2 * 4) + 3 * 2);
/// assert_eq!(g.num_edges(), duality_planar::gen::diag_grid(4, 3, 7).unwrap().num_edges());
/// ```
pub fn diag_grid(w: usize, h: usize, seed: u64) -> Result<PlanarGraph, PlanarError> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges = Vec::new();
    let mut coords = Vec::new();
    for y in 0..h {
        for x in 0..w {
            coords.push((x as f64, y as f64));
            if x + 1 < w {
                edges.push((y * w + x, y * w + x + 1));
            }
            if y + 1 < h {
                edges.push((y * w + x, (y + 1) * w + x));
            }
        }
    }
    for y in 0..h.saturating_sub(1) {
        for x in 0..w.saturating_sub(1) {
            let a = y * w + x;
            let b = y * w + x + 1;
            let c = (y + 1) * w + x;
            let d = (y + 1) * w + x + 1;
            if rng.gen_bool(0.5) {
                edges.push((a, d));
            } else {
                edges.push((b, c));
            }
        }
    }
    PlanarGraph::from_edges_with_coordinates(w * h, &edges, &coords)
}

/// A random Apollonian network (stacked triangulation): starting from a
/// triangle, repeatedly pick a random bounded triangular face and insert a
/// vertex connected to its three corners. Produces maximal planar graphs
/// with `n ≥ 3` vertices and typically polylogarithmic diameter.
///
/// # Errors
///
/// Propagates embedding validation failures (none occur for `n ≥ 3`).
///
/// # Panics
///
/// Panics if `n < 3`.
///
/// # Examples
///
/// ```
/// // Maximal planar: m = 3n − 6 and (by Euler) f = 2n − 4.
/// let g = duality_planar::gen::apollonian(20, 1).unwrap();
/// assert_eq!(g.num_edges(), 3 * 20 - 6);
/// assert_eq!(g.num_faces(), 2 * 20 - 4);
/// ```
pub fn apollonian(n: usize, seed: u64) -> Result<PlanarGraph, PlanarError> {
    assert!(n >= 3, "apollonian networks need at least 3 vertices");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut coords: Vec<(f64, f64)> = vec![(0.0, 0.0), (1000.0, 0.0), (500.0, 1000.0)];
    let mut edges: Vec<(usize, usize)> = vec![(0, 1), (1, 2), (2, 0)];
    // Active triangles as corner triples.
    let mut triangles: Vec<[usize; 3]> = vec![[0, 1, 2]];
    while coords.len() < n {
        let ti = rng.gen_range(0..triangles.len());
        let [a, b, c] = triangles.swap_remove(ti);
        let v = coords.len();
        let (ax, ay) = coords[a];
        let (bx, by) = coords[b];
        let (cx, cy) = coords[c];
        coords.push(((ax + bx + cx) / 3.0, (ay + by + cy) / 3.0));
        edges.push((v, a));
        edges.push((v, b));
        edges.push((v, c));
        triangles.push([a, b, v]);
        triangles.push([b, c, v]);
        triangles.push([c, a, v]);
    }
    PlanarGraph::from_edges_with_coordinates(coords.len(), &edges, &coords)
}

/// An outerplanar graph: a cycle on `n` vertices plus a random non-crossing
/// set of chords (a random triangulation of the polygon when `full` is
/// `true`, a sparser random subset otherwise).
///
/// # Errors
///
/// Propagates embedding validation failures (none occur for `n ≥ 3`).
///
/// # Panics
///
/// Panics if `n < 3`.
///
/// # Examples
///
/// ```
/// // A full triangulation of the polygon is maximal outerplanar: 2n − 3.
/// let g = duality_planar::gen::outerplanar(12, 5, true).unwrap();
/// assert_eq!(g.num_edges(), 2 * 12 - 3);
/// // The sparse variant keeps the cycle but drops some chords.
/// let sparse = duality_planar::gen::outerplanar(12, 5, false).unwrap();
/// assert!(sparse.num_edges() <= g.num_edges());
/// assert!(sparse.num_edges() >= 12);
/// ```
pub fn outerplanar(n: usize, seed: u64, full: bool) -> Result<PlanarGraph, PlanarError> {
    assert!(n >= 3, "outerplanar graphs need at least 3 vertices");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges: Vec<(usize, usize)> = (0..n).map(|i| (i, (i + 1) % n)).collect();
    // Random polygon triangulation by recursive splitting.
    let mut stack = vec![(0usize, n - 1)];
    while let Some((lo, hi)) = stack.pop() {
        if hi - lo < 2 {
            continue;
        }
        let k = rng.gen_range(lo + 1..hi);
        if (k > lo + 1 || k < hi - 1) && (full || rng.gen_bool(0.5)) {
            if k > lo + 1 {
                edges.push((lo, k));
            }
            if k < hi - 1 {
                edges.push((k, hi));
            }
        }
        stack.push((lo, k));
        stack.push((k, hi));
    }
    edges.sort();
    edges.dedup();
    // Remove duplicates of cycle edges introduced by splitting at ends.
    let coords: Vec<(f64, f64)> = (0..n)
        .map(|i| {
            let ang = 2.0 * std::f64::consts::PI * i as f64 / n as f64;
            (1000.0 * ang.cos(), 1000.0 * ang.sin())
        })
        .collect();
    PlanarGraph::from_edges_with_coordinates(n, &edges, &coords)
}

/// A simple cycle on `n ≥ 3` vertices (two faces; the smallest graphs with a
/// nontrivial dual).
///
/// # Errors
///
/// Propagates embedding validation failures (none occur for `n ≥ 3`).
///
/// # Panics
///
/// Panics if `n < 3`.
///
/// # Examples
///
/// ```
/// let g = duality_planar::gen::cycle(8).unwrap();
/// assert_eq!((g.num_edges(), g.num_faces()), (8, 2));
/// ```
pub fn cycle(n: usize) -> Result<PlanarGraph, PlanarError> {
    assert!(n >= 3);
    let edges: Vec<(usize, usize)> = (0..n).map(|i| (i, (i + 1) % n)).collect();
    let coords: Vec<(f64, f64)> = (0..n)
        .map(|i| {
            let ang = 2.0 * std::f64::consts::PI * i as f64 / n as f64;
            (1000.0 * ang.cos(), 1000.0 * ang.sin())
        })
        .collect();
    PlanarGraph::from_edges_with_coordinates(n, &edges, &coords)
}

/// A path on `n ≥ 2` vertices (a tree: single face, useful as an edge case).
///
/// # Errors
///
/// Propagates embedding validation failures (none occur for `n ≥ 2`).
///
/// # Panics
///
/// Panics if `n < 2`.
///
/// # Examples
///
/// ```
/// let g = duality_planar::gen::path(6).unwrap();
/// assert_eq!((g.num_edges(), g.num_faces()), (5, 1));
/// ```
pub fn path(n: usize) -> Result<PlanarGraph, PlanarError> {
    assert!(n >= 2);
    let edges: Vec<(usize, usize)> = (0..n - 1).map(|i| (i, i + 1)).collect();
    let coords: Vec<(f64, f64)> = (0..n).map(|i| (i as f64, 0.0)).collect();
    PlanarGraph::from_edges_with_coordinates(n, &edges, &coords)
}

/// Uniform random integer weights in `[lo, hi]`, one per edge, from `seed`.
///
/// # Examples
///
/// ```
/// let w = duality_planar::gen::random_edge_weights(10, 1, 5, 3);
/// assert_eq!(w.len(), 10);
/// assert!(w.iter().all(|&x| (1..=5).contains(&x)));
/// assert_eq!(w, duality_planar::gen::random_edge_weights(10, 1, 5, 3));
/// ```
pub fn random_edge_weights(m: usize, lo: Weight, hi: Weight, seed: u64) -> Vec<Weight> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..m).map(|_| rng.gen_range(lo..=hi)).collect()
}

/// Per-dart capacities for a *directed* instance: forward darts get a random
/// capacity in `[lo, hi]`, backward darts get capacity 0 (the paper's `G'`
/// construction assigns reversal darts capacity zero, Section 6.1).
///
/// # Examples
///
/// ```
/// let caps = duality_planar::gen::random_directed_capacities(4, 1, 9, 7);
/// assert_eq!(caps.len(), 2 * 4);
/// assert!((0..4).all(|e| caps[2 * e] >= 1 && caps[2 * e + 1] == 0));
/// ```
pub fn random_directed_capacities(m: usize, lo: Weight, hi: Weight, seed: u64) -> Vec<Weight> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut caps = vec![0; 2 * m];
    for e in 0..m {
        caps[2 * e] = rng.gen_range(lo..=hi);
    }
    caps
}

/// Per-dart capacities for an *undirected* instance: both darts of an edge
/// get the same random capacity in `[lo, hi]`.
///
/// # Examples
///
/// ```
/// let caps = duality_planar::gen::random_undirected_capacities(4, 1, 9, 7);
/// assert!((0..4).all(|e| caps[2 * e] == caps[2 * e + 1]));
/// ```
pub fn random_undirected_capacities(m: usize, lo: Weight, hi: Weight, seed: u64) -> Vec<Weight> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut caps = vec![0; 2 * m];
    for e in 0..m {
        let c = rng.gen_range(lo..=hi);
        caps[2 * e] = c;
        caps[2 * e + 1] = c;
    }
    caps
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_shape() {
        let g = grid(5, 4).unwrap();
        assert_eq!(g.num_vertices(), 20);
        assert_eq!(g.num_edges(), 4 * 5 + 3 * 5 - 4); // 31 edges
        assert_eq!(g.num_faces(), 4 * 3 + 1); // 12 cells + outer
        assert_eq!(g.diameter(), 7);
    }

    #[test]
    fn grid_1xk_is_path() {
        let g = grid(6, 1).unwrap();
        assert_eq!(g.num_faces(), 1);
    }

    #[test]
    fn diag_grid_is_planar_and_deterministic() {
        let a = diag_grid(6, 5, 42).unwrap();
        let b = diag_grid(6, 5, 42).unwrap();
        assert_eq!(a.num_edges(), b.num_edges());
        assert_eq!(
            a.num_edges(),
            (5 * 5 + 4 * 6) + 5 * 4 // grid edges + one diagonal per cell
        );
        let c = diag_grid(6, 5, 43).unwrap();
        assert_eq!(c.num_edges(), a.num_edges()); // same count, maybe different diagonals
    }

    #[test]
    fn apollonian_is_maximal_planar() {
        for n in [3usize, 4, 10, 60] {
            let g = apollonian(n, 1).unwrap();
            assert_eq!(g.num_vertices(), n);
            assert_eq!(g.num_edges(), 3 * n - 6);
            assert_eq!(g.num_faces(), 2 * n - 4);
        }
    }

    #[test]
    fn outerplanar_full_is_polygon_triangulation() {
        let g = outerplanar(12, 3, true).unwrap();
        assert_eq!(g.num_vertices(), 12);
        // All vertices on the outer face.
        let outer = g.faces().max_by_key(|&f| g.face_darts(f).len()).unwrap();
        let mut on_outer = [false; 12];
        for &d in g.face_darts(outer) {
            on_outer[g.tail(d)] = true;
        }
        assert!(on_outer.iter().all(|&b| b));
    }

    #[test]
    fn cycle_and_path_edge_cases() {
        assert_eq!(cycle(3).unwrap().num_faces(), 2);
        assert_eq!(cycle(10).unwrap().num_faces(), 2);
        assert_eq!(path(2).unwrap().num_faces(), 1);
        assert_eq!(path(9).unwrap().num_faces(), 1);
    }

    #[test]
    fn weights_are_seeded_and_in_range() {
        let a = random_edge_weights(100, 1, 9, 5);
        let b = random_edge_weights(100, 1, 9, 5);
        assert_eq!(a, b);
        assert!(a.iter().all(|&w| (1..=9).contains(&w)));
        let caps = random_directed_capacities(50, 1, 7, 5);
        for e in 0..50 {
            assert!((1..=7).contains(&caps[2 * e]));
            assert_eq!(caps[2 * e + 1], 0);
        }
        let u = random_undirected_capacities(50, 1, 7, 5);
        for e in 0..50 {
            assert_eq!(u[2 * e], u[2 * e + 1]);
        }
    }
}

/// A random connected planar subgraph of a triangulated grid: starting
/// from [`diag_grid`], repeatedly deletes random edges whose removal keeps
/// the graph connected, until `target_m` edges remain (or no more edges
/// can go). Produces irregular face structures — large faces, low
/// connectivity — that stress the face-part machinery of the BDD.
///
/// # Errors
///
/// As [`grid`] (empty dimensions), plus any embedding validation failure
/// of the thinned edge set (none occur by construction).
///
/// # Examples
///
/// ```
/// // 25 vertices thinned to 30 edges, still connected (n − 1 ≤ m).
/// let g = duality_planar::gen::sparse_grid(5, 5, 30, 3).unwrap();
/// assert_eq!((g.num_vertices(), g.num_edges()), (25, 30));
/// let (_, depth) = g.bfs(0);
/// assert!(depth.iter().all(|&d| d != usize::MAX));
/// ```
pub fn sparse_grid(
    w: usize,
    h: usize,
    target_m: usize,
    seed: u64,
) -> Result<PlanarGraph, PlanarError> {
    let full = diag_grid(w, h, seed)?;
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9e3779b97f4a7c15);
    let mut alive: Vec<bool> = vec![true; full.num_edges()];
    let mut m = full.num_edges();
    let mut order: Vec<usize> = (0..full.num_edges()).collect();
    for i in (1..order.len()).rev() {
        order.swap(i, rng.gen_range(0..=i));
    }
    for &e in &order {
        if m <= target_m {
            break;
        }
        alive[e] = false;
        // Connectivity check.
        let (_, depth) = full.bfs_restricted(0, &|x| alive[x]);
        if depth.contains(&usize::MAX) {
            alive[e] = true;
        } else {
            m -= 1;
        }
    }
    // Rebuild as a standalone graph with compacted edge ids.
    let edges: Vec<(usize, usize)> = (0..full.num_edges())
        .filter(|&e| alive[e])
        .map(|e| (full.edge_tail(e), full.edge_head(e)))
        .collect();
    let coords: Vec<(f64, f64)> = (0..h)
        .flat_map(|y| (0..w).map(move |x| (x as f64, y as f64)))
        .collect();
    PlanarGraph::from_edges_with_coordinates(w * h, &edges, &coords)
}

#[cfg(test)]
mod sparse_tests {
    use super::*;

    #[test]
    fn sparse_grid_hits_target_and_stays_planar() {
        let g = sparse_grid(5, 5, 30, 3).unwrap();
        assert_eq!(g.num_vertices(), 25);
        assert_eq!(g.num_edges(), 30);
        assert_eq!(
            g.num_vertices() as i64 - g.num_edges() as i64 + g.num_faces() as i64,
            2
        );
    }

    #[test]
    fn sparse_grid_can_reach_spanning_tree_density() {
        let g = sparse_grid(4, 4, 15, 9).unwrap(); // n-1 = 15: a tree
        assert_eq!(g.num_edges(), 15);
        assert_eq!(g.num_faces(), 1);
    }

    #[test]
    fn sparse_grid_is_deterministic() {
        let a = sparse_grid(5, 4, 25, 7).unwrap();
        let b = sparse_grid(5, 4, 25, 7).unwrap();
        let ea: Vec<_> = (0..a.num_edges())
            .map(|e| (a.edge_tail(e), a.edge_head(e)))
            .collect();
        let eb: Vec<_> = (0..b.num_edges())
            .map(|e| (b.edge_tail(e), b.edge_head(e)))
            .collect();
        assert_eq!(ea, eb);
    }
}
