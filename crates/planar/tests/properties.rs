//! Property-based tests for the planar substrate: combinatorial-map
//! invariants over randomized workloads.

use duality_planar::{gen, Dart, PlanarGraph};
use proptest::prelude::*;

/// Builds one of the generator families from a seed tuple.
fn build(family: u8, a: usize, b: usize, seed: u64) -> PlanarGraph {
    match family % 4 {
        0 => gen::grid(a.max(2), b.max(2)).unwrap(),
        1 => gen::diag_grid(a.max(2), b.max(2), seed).unwrap(),
        2 => gen::apollonian(3 + a * b, seed).unwrap(),
        _ => gen::outerplanar(3 + a + b, seed, seed.is_multiple_of(2)).unwrap(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Euler's formula holds for every generated embedding.
    #[test]
    fn euler_formula(family in 0u8..4, a in 2usize..8, b in 2usize..8, seed in 0u64..1000) {
        let g = build(family, a, b, seed);
        prop_assert_eq!(
            g.num_vertices() as i64 - g.num_edges() as i64 + g.num_faces() as i64,
            2
        );
    }

    /// The face permutation partitions the darts: every dart is on exactly
    /// one boundary walk, and walks are closed chains.
    #[test]
    fn faces_partition_darts(family in 0u8..4, a in 2usize..7, b in 2usize..7, seed in 0u64..1000) {
        let g = build(family, a, b, seed);
        let mut seen = vec![false; g.num_darts()];
        for f in g.faces() {
            let walk = g.face_darts(f);
            for (i, &d) in walk.iter().enumerate() {
                prop_assert!(!seen[d.index()]);
                seen[d.index()] = true;
                prop_assert_eq!(g.face_of(d), f);
                prop_assert_eq!(g.head(d), g.tail(walk[(i + 1) % walk.len()]));
            }
        }
        prop_assert!(seen.iter().all(|&s| s));
    }

    /// Dual arcs are antisymmetric under dart reversal.
    #[test]
    fn dual_arc_involution(family in 0u8..4, a in 2usize..7, b in 2usize..7, seed in 0u64..1000) {
        let g = build(family, a, b, seed);
        for d in g.darts() {
            let (from, to) = g.dual_arc(d);
            let (rfrom, rto) = g.dual_arc(d.rev());
            prop_assert_eq!((from, to), (rto, rfrom));
        }
    }

    /// Rotation invariants: next/prev are inverse cyclic permutations of
    /// the out-darts.
    #[test]
    fn rotation_next_prev(family in 0u8..4, a in 2usize..7, b in 2usize..7, seed in 0u64..1000) {
        let g = build(family, a, b, seed);
        for d in g.darts() {
            prop_assert_eq!(g.prev_around_tail(g.next_around_tail(d)), d);
            prop_assert_eq!(g.tail(g.next_around_tail(d)), g.tail(d));
        }
    }

    /// BFS depths satisfy the triangle property along tree darts and the
    /// diameter bounds every depth.
    #[test]
    fn bfs_depths_consistent(family in 0u8..4, a in 2usize..7, b in 2usize..7, seed in 0u64..1000) {
        let g = build(family, a, b, seed);
        let (parent, depth) = g.bfs(0);
        let diam = g.diameter();
        for v in 0..g.num_vertices() {
            prop_assert!(depth[v] <= diam);
            if v != 0 {
                let d = parent[v].unwrap();
                prop_assert_eq!(g.head(d), v);
                prop_assert_eq!(depth[g.tail(d)] + 1, depth[v]);
            }
        }
    }

    /// Per-edge flows built from arbitrary face potentials conserve at
    /// every vertex — the planar-duality fact behind the flow algorithms.
    #[test]
    fn potential_flows_conserve(family in 0u8..4, a in 2usize..7, b in 2usize..7, seed in 0u64..1000) {
        let g = build(family, a, b, seed);
        // Arbitrary potentials: a deterministic hash of the face id.
        let phi = |f: duality_planar::FaceId| -> i64 {
            ((f.0 as i64 * 2654435761) % 1009) - 500
        };
        for v in 0..g.num_vertices() {
            let net: i64 = g
                .out_darts(v)
                .iter()
                .map(|&d| {
                    let (from, to) = g.dual_arc(d);
                    phi(to) - phi(from)
                })
                .sum();
            prop_assert_eq!(net, 0, "circulation at vertex {}", v);
        }
    }

    /// Every generator family — all seven, including the families the
    /// grid-centric tests above skip — yields a connected, embeddable
    /// graph across a seed sweep: Euler's formula holds for the built
    /// embedding (the generators re-validate it, but the property is
    /// asserted here independently) and BFS from vertex 0 reaches every
    /// vertex.
    #[test]
    fn all_generators_connected_and_embeddable(
        family in 0u8..7,
        a in 2usize..8,
        b in 2usize..8,
        seed in 0u64..10_000,
    ) {
        let g = match family {
            0 => gen::grid(a, b).unwrap(),
            1 => gen::diag_grid(a, b, seed).unwrap(),
            2 => gen::apollonian(3 + a * b, seed).unwrap(),
            3 => gen::outerplanar(3 + a + b, seed, seed.is_multiple_of(2)).unwrap(),
            4 => {
                // Thin towards (but above) the spanning-tree floor, so the
                // sweep crosses the whole density range.
                let full = gen::diag_grid(a, b, seed).unwrap();
                let target = (a * b - 1) + (seed as usize) % (full.num_edges() - (a * b - 1) + 1);
                gen::sparse_grid(a, b, target, seed).unwrap()
            }
            5 => gen::cycle(3 + a + b).unwrap(),
            _ => gen::path(a + b).unwrap(),
        };
        prop_assert_eq!(
            g.num_vertices() as i64 - g.num_edges() as i64 + g.num_faces() as i64,
            2,
            "Euler's formula must hold for the built embedding"
        );
        let (_, depth) = g.bfs(0);
        prop_assert!(
            depth.iter().all(|&d| d != usize::MAX),
            "every generated graph is connected"
        );
        // Embeddable also means the rotation system is consistent:
        // every dart sits on exactly one face walk.
        let mut seen = vec![false; g.num_darts()];
        for f in g.faces() {
            for &d in g.face_darts(f) {
                prop_assert!(!seen[d.index()]);
                seen[d.index()] = true;
            }
        }
        prop_assert!(seen.iter().all(|&s| s));
    }

    /// `insert_edge_in_face` preserves planarity and splits exactly one
    /// face.
    #[test]
    fn edge_insertion_splits_one_face(a in 3usize..7, b in 3usize..7, seed in 0u64..100) {
        let g = gen::diag_grid(a, b, seed).unwrap();
        let outer = g.faces().max_by_key(|&f| g.face_darts(f).len()).unwrap();
        let mut on_outer: Vec<usize> =
            g.face_darts(outer).iter().map(|&d| g.tail(d)).collect();
        on_outer.sort_unstable();
        on_outer.dedup();
        prop_assume!(on_outer.len() >= 2);
        let (u, v) = (on_outer[0], *on_outer.last().unwrap());
        let aug = g.insert_edge_in_face(u, v, outer).unwrap();
        prop_assert_eq!(aug.num_faces(), g.num_faces() + 1);
        prop_assert_eq!(aug.num_edges(), g.num_edges() + 1);
        // The new edge's darts lie in the two halves of the split face.
        let nd = Dart::forward(g.num_edges());
        prop_assert_ne!(aug.face_of(nd), aug.face_of(nd.rev()));
    }
}
