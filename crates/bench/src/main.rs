//! `experiments` — regenerates every table and figure of `EXPERIMENTS.md`.
//!
//! Usage: `cargo run --release -p duality-bench --bin experiments [ids...]`
//! with ids among `t1 f1 f2 f3 t2 f4 f5 t4 f6 t6 a1 a2 t5` (default: all).
//! Markdown tables go to stdout; raw rows to `experiments.json` in the
//! current directory.

use duality_bench::{experiments, Row};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let want = |id: &str| args.is_empty() || args.iter().any(|a| a.eq_ignore_ascii_case(id));
    let seed = 42;
    let mut all: Vec<Row> = Vec::new();

    let section = |id: &str, title: &str, rows: Vec<Row>, all: &mut Vec<Row>| {
        println!("\n## {id} — {title}\n");
        println!("| id | instance | n | D | measurements |");
        println!("|----|----------|---|---|--------------|");
        for r in &rows {
            println!("{}", r.markdown());
        }
        all.extend(rows);
    };

    if want("t1") {
        section(
            "T1",
            "correctness of all five theorems vs centralized references",
            experiments::t1_correctness(seed),
            &mut all,
        );
    }
    if want("f1") {
        section(
            "F1",
            "exact max-flow rounds vs diameter (Õ(D²), Thm 1.2)",
            experiments::f1_flow_rounds_vs_d(&[8, 12, 16, 20, 24, 28], seed),
            &mut all,
        );
    }
    if want("f2") {
        section(
            "F2",
            "exact max-flow rounds vs n at fixed diameter (no √n term)",
            experiments::f2_flow_rounds_vs_n(seed),
            &mut all,
        );
    }
    if want("f3") {
        section(
            "F3",
            "weighted-girth rounds vs diameter (Õ(D), Thm 1.7)",
            experiments::f3_girth_rounds_vs_d(700, seed),
            &mut all,
        );
    }
    if want("t2") {
        section(
            "T2",
            "approximate st-planar flow quality vs ε (Thm 1.3)",
            experiments::t2_approx_quality(seed),
            &mut all,
        );
    }
    if want("f4") {
        section(
            "F4",
            "directed global min cut: rounds vs diameter + correctness (Thm 1.5)",
            experiments::f4_global_cut(&[8, 12, 16, 20], seed),
            &mut all,
        );
    }
    if want("f5") {
        section(
            "F5",
            "distance-label sizes vs diameter (Õ(D) words, Lemma 5.17)",
            experiments::f5_label_sizes(&[8, 12, 16, 20, 24, 28], seed),
            &mut all,
        );
    }
    if want("t4") {
        section(
            "T4",
            "BDD structure: depth, face-parts, |F_X|, |S_X| (Thm 5.2)",
            experiments::t4_bdd_stats(seed),
            &mut all,
        );
    }
    if want("f6") {
        section(
            "F6",
            "measured rounds vs prior-work bounds (de Vos, GKKLP)",
            experiments::f6_prior_comparison(seed),
            &mut all,
        );
    }
    if want("t6") {
        section(
            "T6",
            "calibration: executed message-passing rounds vs charged formulas",
            experiments::t6_runtime_calibration(seed),
            &mut all,
        );
    }
    if want("a1") {
        section(
            "A1",
            "ablation: BDD leaf threshold (design choice)",
            experiments::a1_leaf_threshold_ablation(seed),
            &mut all,
        );
    }
    if want("a2") {
        section(
            "A2",
            "ablation: one-off setup vs per-probe labeling cost",
            experiments::a2_probe_cost_split(seed),
            &mut all,
        );
    }
    if want("t5") {
        section(
            "T5",
            "dual-simulation substrate: Ĝ diameter and MA round cost (§4)",
            experiments::t5_overlay_stats(seed),
            &mut all,
        );
    }

    let json = serde_json::to_string_pretty(&all).expect("rows serialize");
    std::fs::write("experiments.json", json).expect("writable cwd");
    eprintln!("\nwrote {} rows to experiments.json", all.len());
}
