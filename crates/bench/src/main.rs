//! `experiments` — regenerates every table and figure of `EXPERIMENTS.md`.
//!
//! Usage: `cargo run --release -p duality-bench --bin experiments [ids...]
//! [--smoke]` with ids among those listed by `registry()` (default: all).
//! `--smoke` shrinks the workloads to CI-sized instances (currently: S3,
//! S4, S5, S6). Unknown ids exit 2. Markdown tables go to stdout; raw rows to
//! `experiments.json` in the current directory, and each S-series
//! experiment additionally to its own `BENCH_S*.json` artifact.

use duality_bench::{experiments, Row};

/// The experiment table: one entry per section, so id validation, the
/// usage listing, and dispatch can never drift apart.
#[allow(clippy::type_complexity)]
fn registry(smoke: bool) -> Vec<(&'static str, &'static str, Box<dyn Fn(u64) -> Vec<Row>>)> {
    vec![
        (
            "t1",
            "correctness of all five theorems vs centralized references",
            Box::new(experiments::t1_correctness),
        ),
        (
            "f1",
            "exact max-flow rounds vs diameter (Õ(D²), Thm 1.2)",
            Box::new(|s| experiments::f1_flow_rounds_vs_d(&[8, 12, 16, 20, 24, 28], s)),
        ),
        (
            "f2",
            "exact max-flow rounds vs n at fixed diameter (no √n term)",
            Box::new(experiments::f2_flow_rounds_vs_n),
        ),
        (
            "f3",
            "weighted-girth rounds vs diameter (Õ(D), Thm 1.7)",
            Box::new(|s| experiments::f3_girth_rounds_vs_d(700, s)),
        ),
        (
            "t2",
            "approximate st-planar flow quality vs ε (Thm 1.3)",
            Box::new(experiments::t2_approx_quality),
        ),
        (
            "f4",
            "directed global min cut: rounds vs diameter + correctness (Thm 1.5)",
            Box::new(|s| experiments::f4_global_cut(&[8, 12, 16, 20], s)),
        ),
        (
            "f5",
            "distance-label sizes vs diameter (Õ(D) words, Lemma 5.17)",
            Box::new(|s| experiments::f5_label_sizes(&[8, 12, 16, 20, 24, 28], s)),
        ),
        (
            "t4",
            "BDD structure: depth, face-parts, |F_X|, |S_X| (Thm 5.2)",
            Box::new(experiments::t4_bdd_stats),
        ),
        (
            "f6",
            "measured rounds vs prior-work bounds (de Vos, GKKLP)",
            Box::new(experiments::f6_prior_comparison),
        ),
        (
            "t6",
            "calibration: executed message-passing rounds vs charged formulas",
            Box::new(experiments::t6_runtime_calibration),
        ),
        (
            "a1",
            "ablation: BDD leaf threshold (design choice)",
            Box::new(experiments::a1_leaf_threshold_ablation),
        ),
        (
            "a2",
            "ablation: one-off setup vs per-probe labeling cost",
            Box::new(experiments::a2_probe_cost_split),
        ),
        (
            "t5",
            "dual-simulation substrate: Ĝ diameter and MA round cost (§4)",
            Box::new(experiments::t5_overlay_stats),
        ),
        (
            "s1",
            "PlanarSolver substrate reuse: warm batches vs cold batches",
            Box::new(experiments::s1_substrate_reuse),
        ),
        (
            "s2",
            "run_batch throughput: batched vs serial-warm vs cold, thread sweep",
            Box::new(experiments::s2_batch_throughput),
        ),
        (
            "s3",
            "respec reuse: topology tier charged once across a K-spec sweep",
            Box::new(move |s| experiments::s3_respec_reuse(s, smoke)),
        ),
        (
            "s4",
            "serving engine: bit-for-bit vs serial across a worker × shard sweep",
            Box::new(move |s| experiments::s4_service_engine(s, smoke)),
        ),
        (
            "s5",
            "scenario workloads: trace replay vs serial + throughput/latency sweep",
            Box::new(move |s| experiments::s5_scenario_sweep(s, smoke)),
        ),
        (
            "s6",
            "control plane: spec-driven fleet lifecycle, convergence, snapshot restart",
            Box::new(move |s| experiments::s6_control_plane(s, smoke)),
        ),
    ]
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    args.retain(|a| a != "--smoke");
    let registry = registry(smoke);
    let known: Vec<&str> = registry.iter().map(|(id, _, _)| *id).collect();
    let mut bad = false;
    for a in &args {
        if !known.iter().any(|id| a.eq_ignore_ascii_case(id)) {
            eprintln!("unknown experiment id `{a}` (known: {})", known.join(" "));
            bad = true;
        }
    }
    if bad {
        std::process::exit(2);
    }
    let want = |id: &str| args.is_empty() || args.iter().any(|a| a.eq_ignore_ascii_case(id));
    let seed = 42;
    let mut all: Vec<Row> = Vec::new();

    for (id, title, run) in &registry {
        if !want(id) {
            continue;
        }
        println!("\n## {} — {title}\n", id.to_uppercase());
        println!("| id | instance | n | D | measurements |");
        println!("|----|----------|---|---|--------------|");
        let rows = run(seed);
        for r in &rows {
            println!("{}", r.markdown());
        }
        // The solver/serving experiments seed the perf trajectory: each
        // run leaves a per-experiment machine-readable artifact next to
        // the combined dump — a versioned envelope (schema_version, seed,
        // smoke flag, scenario list) so points stay comparable across PRs.
        if id.starts_with('s') {
            let artifact = format!("BENCH_{}.json", id.to_uppercase());
            std::fs::write(
                &artifact,
                duality_bench::bench_artifact_json(&id.to_uppercase(), seed, smoke, &rows),
            )
            .expect("writable cwd");
            eprintln!("wrote {} rows to {artifact}", rows.len());
        }
        all.extend(rows);
    }

    let json = duality_bench::rows_to_json(&all);
    std::fs::write("experiments.json", json).expect("writable cwd");
    eprintln!("\nwrote {} rows to experiments.json", all.len());
}
