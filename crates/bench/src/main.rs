//! `experiments` — regenerates every table and figure of `EXPERIMENTS.md`,
//! and fronts the lab subsystem's spec/gate/report tooling.
//!
//! Usage:
//!
//! * `experiments [ids...] [--smoke]` — run registered experiments
//!   (default: all). `--smoke` shrinks workloads to CI-sized instances
//!   (currently: S3–S8). Unknown ids exit 2. Markdown tables go to
//!   stdout; raw rows to `experiments.json`, and each S-series
//!   experiment additionally to its own `BENCH_S*.json` artifact.
//! * `experiments run <spec-file> [--smoke] [--seed N] [--out FILE]` —
//!   run one declarative lab spec (`experiments/*.lab.jsonl`) and write
//!   its envelope (default `BENCH_<NAME>.json`).
//! * `experiments compare <committed> <fresh> | --smoke` — the
//!   regression gate: diff two envelopes row by row (or run the smoke
//!   sweeps in-process and gate them against `smoke/BENCH_S*.json`).
//!   Exits 1 on regression. `--tol-throughput P` / `--tol-p99 P`
//!   override the default tolerances.
//! * `experiments report [files...] [--out FILE]` — render committed
//!   envelopes into the trajectory report (default
//!   `BENCH_TRAJECTORY.md` from all `BENCH_S*.json` in the cwd).
//! * `experiments trace <spec-file> [--smoke] [--seed N] [--out FILE]`
//!   — run a spec's scenarios through a span-wired engine and write the
//!   individual profiling spans (substrate build phases + job
//!   lifecycles) as a chrome://tracing / Perfetto `trace.json`.
//! * `experiments dashboard [files...] [--out FILE]` — render committed
//!   envelopes plus a live telemetry snapshot into the self-contained
//!   `BENCH_DASHBOARD.html` (default: all `BENCH_S*.json` in the cwd).

use duality_bench::{experiments, to_env_row, Row};
use duality_lab::{compare, render_trajectory, Envelope, LabSpec, Tolerances};

/// The experiment table: one entry per section, so id validation, the
/// usage listing, and dispatch can never drift apart.
#[allow(clippy::type_complexity)]
fn registry(smoke: bool) -> Vec<(&'static str, &'static str, Box<dyn Fn(u64) -> Vec<Row>>)> {
    vec![
        (
            "t1",
            "correctness of all five theorems vs centralized references",
            Box::new(experiments::t1_correctness),
        ),
        (
            "f1",
            "exact max-flow rounds vs diameter (Õ(D²), Thm 1.2)",
            Box::new(|s| experiments::f1_flow_rounds_vs_d(&[8, 12, 16, 20, 24, 28], s)),
        ),
        (
            "f2",
            "exact max-flow rounds vs n at fixed diameter (no √n term)",
            Box::new(experiments::f2_flow_rounds_vs_n),
        ),
        (
            "f3",
            "weighted-girth rounds vs diameter (Õ(D), Thm 1.7)",
            Box::new(|s| experiments::f3_girth_rounds_vs_d(700, s)),
        ),
        (
            "t2",
            "approximate st-planar flow quality vs ε (Thm 1.3)",
            Box::new(experiments::t2_approx_quality),
        ),
        (
            "f4",
            "directed global min cut: rounds vs diameter + correctness (Thm 1.5)",
            Box::new(|s| experiments::f4_global_cut(&[8, 12, 16, 20], s)),
        ),
        (
            "f5",
            "distance-label sizes vs diameter (Õ(D) words, Lemma 5.17)",
            Box::new(|s| experiments::f5_label_sizes(&[8, 12, 16, 20, 24, 28], s)),
        ),
        (
            "t4",
            "BDD structure: depth, face-parts, |F_X|, |S_X| (Thm 5.2)",
            Box::new(experiments::t4_bdd_stats),
        ),
        (
            "f6",
            "measured rounds vs prior-work bounds (de Vos, GKKLP)",
            Box::new(experiments::f6_prior_comparison),
        ),
        (
            "t6",
            "calibration: executed message-passing rounds vs charged formulas",
            Box::new(experiments::t6_runtime_calibration),
        ),
        (
            "a1",
            "ablation: BDD leaf threshold (design choice)",
            Box::new(experiments::a1_leaf_threshold_ablation),
        ),
        (
            "a2",
            "ablation: one-off setup vs per-probe labeling cost",
            Box::new(experiments::a2_probe_cost_split),
        ),
        (
            "t5",
            "dual-simulation substrate: Ĝ diameter and MA round cost (§4)",
            Box::new(experiments::t5_overlay_stats),
        ),
        (
            "s1",
            "PlanarSolver substrate reuse: warm batches vs cold batches",
            Box::new(experiments::s1_substrate_reuse),
        ),
        (
            "s2",
            "run_batch throughput: batched vs serial-warm vs cold, thread sweep",
            Box::new(experiments::s2_batch_throughput),
        ),
        (
            "s3",
            "respec reuse: topology tier charged once across a K-spec sweep",
            Box::new(move |s| experiments::s3_respec_reuse(s, smoke)),
        ),
        (
            "s4",
            "serving engine: bit-for-bit vs serial across a worker × shard sweep",
            Box::new(move |s| experiments::s4_service_engine(s, smoke)),
        ),
        (
            "s5",
            "scenario workloads: trace replay vs serial + throughput/latency sweep",
            Box::new(move |s| experiments::s5_scenario_sweep(s, smoke)),
        ),
        (
            "s6",
            "control plane: spec-driven fleet lifecycle, convergence, snapshot restart",
            Box::new(move |s| experiments::s6_control_plane(s, smoke)),
        ),
        (
            "s7",
            "saturation probe: max sustainable rate + knee latency per preset × cell",
            Box::new(move |s| experiments::s7_saturation(s, smoke)),
        ),
        (
            "s8",
            "autopilot: telemetry-driven worker scaling vs a static peak fleet",
            Box::new(move |s| experiments::s8_autopilot(s, smoke)),
        ),
        (
            "s9",
            "stealing probe: saturation capacity across a 1-8 worker sweep",
            Box::new(move |s| experiments::s9_stealing(s, smoke)),
        ),
        (
            "s10",
            "memory probe: per-phase substrate µs + pool byte gauges on a size ramp",
            Box::new(move |s| experiments::s10_memory(s, smoke)),
        ),
    ]
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match args.first().map(String::as_str) {
        Some("run") => cmd_run(&args[1..]),
        Some("compare") => cmd_compare(&args[1..]),
        Some("report") => cmd_report(&args[1..]),
        Some("trace") => cmd_trace(&args[1..]),
        Some("dashboard") => cmd_dashboard(&args[1..]),
        _ => cmd_legacy(args),
    };
    std::process::exit(code);
}

/// `experiments [ids...] [--smoke]` — the original harness behavior.
fn cmd_legacy(mut args: Vec<String>) -> i32 {
    let smoke = args.iter().any(|a| a == "--smoke");
    args.retain(|a| a != "--smoke");
    let registry = registry(smoke);
    let known: Vec<&str> = registry.iter().map(|(id, _, _)| *id).collect();
    let mut bad = false;
    for a in &args {
        if !known.iter().any(|id| a.eq_ignore_ascii_case(id)) {
            eprintln!("unknown experiment id `{a}` (known: {})", known.join(" "));
            bad = true;
        }
    }
    if bad {
        return 2;
    }
    let want = |id: &str| args.is_empty() || args.iter().any(|a| a.eq_ignore_ascii_case(id));
    let seed = 42;
    let mut all: Vec<Row> = Vec::new();

    for (id, title, run) in &registry {
        if !want(id) {
            continue;
        }
        println!("\n## {} — {title}\n", id.to_uppercase());
        print_markdown(&run(seed), &mut all, id, seed, smoke);
    }

    let json = duality_bench::rows_to_json(&all);
    std::fs::write("experiments.json", json).expect("writable cwd");
    eprintln!("\nwrote {} rows to experiments.json", all.len());
    0
}

fn print_markdown(rows: &[Row], all: &mut Vec<Row>, id: &str, seed: u64, smoke: bool) {
    println!("| id | instance | n | D | measurements |");
    println!("|----|----------|---|---|--------------|");
    for r in rows {
        println!("{}", r.markdown());
    }
    // The solver/serving experiments seed the perf trajectory: each
    // run leaves a per-experiment machine-readable artifact next to
    // the combined dump — a versioned envelope (schema_version, seed,
    // smoke flag, scenario list) so points stay comparable across PRs.
    if id.starts_with('s') {
        let artifact = format!("BENCH_{}.json", id.to_uppercase());
        std::fs::write(
            &artifact,
            duality_bench::bench_artifact_json(&id.to_uppercase(), seed, smoke, rows),
        )
        .expect("writable cwd");
        eprintln!("wrote {} rows to {artifact}", rows.len());
    }
    all.extend(rows.iter().cloned());
}

/// `experiments run <spec-file> [--smoke] [--seed N] [--out FILE]`.
fn cmd_run(args: &[String]) -> i32 {
    let smoke = args.iter().any(|a| a == "--smoke");
    let seed = flag_value(args, "--seed").map(|v| v.parse::<u64>());
    let seed = match seed {
        None => None,
        Some(Ok(v)) => Some(v),
        Some(Err(_)) => {
            eprintln!("--seed takes an unsigned integer");
            return 2;
        }
    };
    let out = flag_value(args, "--out").map(String::from);
    let Some(path) = positional(args).first().copied() else {
        eprintln!("usage: experiments run <spec-file> [--smoke] [--seed N] [--out FILE]");
        return 2;
    };
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read `{path}`: {e}");
            return 1;
        }
    };
    let spec = match LabSpec::parse_jsonl(&text) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("`{path}`: {e}");
            return 1;
        }
    };
    let rows = match duality_lab::run_spec(&spec, smoke, seed) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("running `{path}` failed: {e}");
            return 1;
        }
    };
    println!("\n## {} — {path}\n", spec.name);
    println!("| id | instance | n | D | measurements |");
    println!("|----|----------|---|---|--------------|");
    for r in &rows {
        let vals: Vec<String> = r
            .values
            .iter()
            .map(|(k, v)| format!("{k}={v:.0}"))
            .collect();
        println!(
            "| {} | {} | {} | {} | {} |",
            r.experiment,
            r.instance,
            r.n,
            r.d,
            vals.join(", ")
        );
    }
    let envelope = Envelope::from_rows(&spec.name, seed.unwrap_or(spec.seed), smoke, rows);
    let artifact = out.unwrap_or_else(|| format!("BENCH_{}.json", spec.name));
    std::fs::write(&artifact, envelope.to_json()).expect("writable artifact path");
    eprintln!("wrote {} rows to {artifact}", envelope.rows.len());
    0
}

/// `experiments compare <committed> <fresh> | --smoke`.
fn cmd_compare(args: &[String]) -> i32 {
    let mut tol = Tolerances::default();
    if let Some(v) = flag_value(args, "--tol-throughput") {
        match v.parse() {
            Ok(p) => tol.max_throughput_drop_percent = p,
            Err(_) => {
                eprintln!("--tol-throughput takes a percentage");
                return 2;
            }
        }
    }
    if let Some(v) = flag_value(args, "--tol-p99") {
        match v.parse() {
            Ok(p) => tol.max_p99_growth_percent = p,
            Err(_) => {
                eprintln!("--tol-p99 takes a percentage");
                return 2;
            }
        }
    }
    let pairs: Vec<(Envelope, Envelope)> = if args.iter().any(|a| a == "--smoke") {
        // Gate mode: run the smoke sweeps in-process and diff them
        // against the committed smoke baselines.
        let seed = 42;
        let mut pairs = Vec::new();
        for (id, rows) in [
            ("S5", experiments::s5_scenario_sweep(seed, true)),
            ("S6", experiments::s6_control_plane(seed, true)),
            ("S7", experiments::s7_saturation(seed, true)),
            ("S8", experiments::s8_autopilot(seed, true)),
            ("S9", experiments::s9_stealing(seed, true)),
            ("S10", experiments::s10_memory(seed, true)),
        ] {
            let committed = match read_envelope(&format!("smoke/BENCH_{id}.json")) {
                Ok(e) => e,
                Err(code) => return code,
            };
            let env_rows = rows.iter().map(to_env_row).collect();
            pairs.push((committed, Envelope::from_rows(id, seed, true, env_rows)));
        }
        pairs
    } else {
        let paths = positional(args);
        let [committed, fresh] = paths.as_slice() else {
            eprintln!(
                "usage: experiments compare <committed> <fresh> | --smoke \
                 [--tol-throughput P] [--tol-p99 P]"
            );
            return 2;
        };
        let (a, b) = match (read_envelope(committed), read_envelope(fresh)) {
            (Ok(a), Ok(b)) => (a, b),
            (Err(code), _) | (_, Err(code)) => return code,
        };
        vec![(a, b)]
    };
    let mut failed = false;
    for (committed, fresh) in &pairs {
        println!("## {} — committed vs fresh", committed.experiment);
        match compare::compare(committed, fresh, &tol) {
            Ok(report) => {
                print!("{}", report.render());
                failed |= !report.passed();
            }
            Err(e) => {
                eprintln!("{e}");
                return 2;
            }
        }
    }
    i32::from(failed)
}

/// `experiments report [files...] [--out FILE]`.
fn cmd_report(args: &[String]) -> i32 {
    let out = flag_value(args, "--out").unwrap_or("BENCH_TRAJECTORY.md");
    let mut paths: Vec<String> = positional(args).iter().map(|s| s.to_string()).collect();
    if paths.is_empty() {
        // Default: every committed S-series artifact in the cwd.
        let mut found: Vec<String> = std::fs::read_dir(".")
            .map(|dir| {
                dir.filter_map(|e| e.ok())
                    .map(|e| e.file_name().to_string_lossy().into_owned())
                    .filter(|name| name.starts_with("BENCH_S") && name.ends_with(".json"))
                    .collect()
            })
            .unwrap_or_default();
        found.sort();
        paths = found;
    }
    if paths.is_empty() {
        eprintln!("no BENCH_S*.json artifacts found");
        return 1;
    }
    let mut envelopes = Vec::new();
    for path in &paths {
        match read_envelope(path) {
            Ok(e) => envelopes.push(e),
            Err(code) => return code,
        }
    }
    std::fs::write(out, render_trajectory(&envelopes)).expect("writable report path");
    eprintln!("rendered {} envelope(s) to {out}", envelopes.len());
    0
}

/// `experiments trace <spec-file> [--smoke] [--seed N] [--out FILE]`.
fn cmd_trace(args: &[String]) -> i32 {
    let smoke = args.iter().any(|a| a == "--smoke");
    let seed = match flag_value(args, "--seed").map(|v| v.parse::<u64>()) {
        None => None,
        Some(Ok(v)) => Some(v),
        Some(Err(_)) => {
            eprintln!("--seed takes an unsigned integer");
            return 2;
        }
    };
    let out = flag_value(args, "--out").unwrap_or("trace.json");
    let Some(path) = positional(args).first().copied() else {
        eprintln!("usage: experiments trace <spec-file> [--smoke] [--seed N] [--out FILE]");
        return 2;
    };
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read `{path}`: {e}");
            return 1;
        }
    };
    let spec = match LabSpec::parse_jsonl(&text) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("`{path}`: {e}");
            return 1;
        }
    };
    let slices = match duality_lab::capture_trace(&spec, smoke, seed) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("tracing `{path}` failed: {e}");
            return 1;
        }
    };
    std::fs::write(out, duality_lab::to_chrome_json(&slices)).expect("writable trace path");
    eprintln!(
        "wrote {} slices to {out} (open in chrome://tracing or ui.perfetto.dev)",
        slices.len()
    );
    0
}

/// `experiments dashboard [files...] [--out FILE]`.
fn cmd_dashboard(args: &[String]) -> i32 {
    let out = flag_value(args, "--out").unwrap_or("BENCH_DASHBOARD.html");
    let mut paths: Vec<String> = positional(args).iter().map(|s| s.to_string()).collect();
    if paths.is_empty() {
        let mut found: Vec<String> = std::fs::read_dir(".")
            .map(|dir| {
                dir.filter_map(|e| e.ok())
                    .map(|e| e.file_name().to_string_lossy().into_owned())
                    .filter(|name| name.starts_with("BENCH_S") && name.ends_with(".json"))
                    .collect()
            })
            .unwrap_or_default();
        found.sort();
        paths = found;
    }
    let mut envelopes = Vec::new();
    for path in &paths {
        match read_envelope(path) {
            Ok(e) => envelopes.push(e),
            Err(code) => return code,
        }
    }
    let snapshot = live_fleet_snapshot();
    std::fs::write(
        out,
        duality_lab::render_dashboard(&envelopes, Some(&snapshot)),
    )
    .expect("writable dashboard path");
    eprintln!("rendered {} envelope(s) to {out}", envelopes.len());
    0
}

/// A small in-process engine burst, so the dashboard's live-fleet
/// section (memory gauges, phase profile, per-tenant attribution) shows
/// the current build's behavior rather than canned numbers.
fn live_fleet_snapshot() -> duality_telemetry::TelemetrySnapshot {
    use duality_core::{PlanarInstance, Query};
    use duality_planar::gen;

    let telemetry = duality_telemetry::Telemetry::new(256);
    let engine = duality_service::ServiceEngine::builder()
        .workers(2)
        .shards(2)
        .span_sink(telemetry.sink())
        .build()
        .expect("fleet config is static");
    for (i, name) in ["alpha", "beta", "gamma"].iter().enumerate() {
        let side = 4 + i;
        let seed = 7 + i as u64;
        let g = gen::diag_grid(side, side, seed).expect("static grid dims");
        let caps = gen::random_undirected_capacities(g.num_edges(), 1, 9, seed);
        let instance = PlanarInstance::new(g, Some(caps), None).expect("static instance");
        telemetry.name_tenant(&instance, name);
        let t = side * side - 1;
        // All three queries together touch every substrate phase:
        // max-flow (embed/dual/bdd), girth (dual), global cut
        // (weight-tier/labeling).
        for query in [
            Query::MaxFlow { s: 0, t },
            Query::Girth,
            Query::GlobalMinCut,
        ] {
            let _ = engine.run(&instance, query);
        }
    }
    let metrics = engine.shutdown();
    telemetry.set_pool_bytes(
        metrics.resident_bytes(),
        metrics.peak_resident_bytes(),
        metrics.evicted_bytes(),
    );
    telemetry.snapshot()
}

fn read_envelope(path: &str) -> Result<Envelope, i32> {
    let text = std::fs::read_to_string(path).map_err(|e| {
        eprintln!("cannot read `{path}`: {e}");
        1
    })?;
    Envelope::parse(&text).map_err(|e| {
        eprintln!("`{path}`: {e}");
        1
    })
}

/// The value following `flag`, if present.
fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

/// Arguments that are neither flags nor flag values.
fn positional(args: &[String]) -> Vec<&str> {
    let mut out = Vec::new();
    let mut skip = false;
    for a in args {
        if skip {
            skip = false;
            continue;
        }
        if a == "--smoke" {
            continue;
        }
        if a.starts_with("--") {
            skip = true;
            continue;
        }
        out.push(a.as_str());
    }
    out
}
