//! One function per experiment of `DESIGN.md` §4 / `EXPERIMENTS.md`.

use crate::workloads::{self, Instance};
use crate::Row;
use duality_baselines::{cuts, flow as bflow, girth as bgirth, prior};
use duality_bdd::{dual_bags, Bdd, BddOptions, DualBag};
use duality_congest::{CostLedger, CostModel};
use duality_core::{approx_flow, girth, global_cut, max_flow, st_cut, PlanarSolver, Query};
use duality_labeling::DualSsspEngine;
use duality_overlay::FaceDisjointGraph;
use duality_planar::{gen, PlanarGraph};

fn cm_of(g: &PlanarGraph) -> (CostModel, usize) {
    let d = g.diameter();
    (CostModel::new(g.num_vertices(), d), d)
}

/// T1 — end-to-end correctness of all five theorems against centralized
/// references. One row per (instance, algorithm); `ok = 1` means verified.
pub fn t1_correctness(seed: u64) -> Vec<Row> {
    let mut rows = Vec::new();
    for Instance { name, graph: g } in workloads::correctness_suite(seed) {
        let (_, d) = cm_of(&g);
        let n = g.num_vertices();
        let mut push = |algo: &str, ok: bool, rounds: f64| {
            rows.push(Row {
                experiment: "T1".into(),
                instance: format!("{name} / {algo}"),
                n,
                d,
                values: vec![
                    ("ok".into(), f64::from(u8::from(ok))),
                    ("rounds".into(), rounds),
                ],
            });
        };

        // Exact max flow (Theorem 1.2).
        let caps = gen::random_directed_capacities(g.num_edges(), 0, 9, seed + 11);
        let (s, t) = (0, n - 1);
        let r = max_flow::max_st_flow(&g, &caps, s, t, &Default::default()).unwrap();
        let want = bflow::planar_max_flow_reference(&g, &caps, s, t);
        duality_core::verify::assert_valid_flow(&g, &caps, &r.flow, s, t, r.value);
        push(
            "max-flow (Thm 1.2)",
            r.value == want,
            r.ledger.total() as f64,
        );

        // Exact min st-cut (Theorem 6.1).
        let c = st_cut::exact_min_st_cut(&g, &caps, s, t, &Default::default()).unwrap();
        let cut_cap: i64 = c.cut_darts.iter().map(|dd| caps[dd.index()]).sum();
        push(
            "min-st-cut (Thm 6.1)",
            c.value == want && cut_cap == want,
            c.ledger.total() as f64,
        );

        // Approximate st-planar flow (Theorem 1.3): s, t on the outer face.
        let ucaps = gen::random_undirected_capacities(g.num_edges(), 1, 9, seed + 13);
        let outer = g.faces().max_by_key(|&f| g.face_darts(f).len()).unwrap();
        let mut on_outer: Vec<usize> = g.face_darts(outer).iter().map(|&dd| g.tail(dd)).collect();
        on_outer.sort_unstable();
        on_outer.dedup();
        let (us, ut) = (on_outer[0], *on_outer.last().unwrap());
        if us != ut {
            let a = approx_flow::approx_max_st_flow(&g, &ucaps, us, ut, 4).unwrap();
            let exact = bflow::planar_max_flow_reference(&g, &ucaps, us, ut);
            let ok = a.value_numer <= exact * a.denom && a.value_numer * 5 >= exact * a.denom * 4;
            push("approx-flow ε=1/4 (Thm 1.3)", ok, a.ledger.total() as f64);

            let (cv, cedges, cl) = st_cut::approx_min_st_cut(&g, &ucaps, us, ut, 4).unwrap();
            let ok = duality_core::verify::cut_separates(&g, &cedges, us, ut)
                && cv >= exact
                && cv * 4 <= exact * 5;
            push("approx-st-cut ε=1/4 (Thm 6.2)", ok, cl.total() as f64);
        }

        // Directed global min cut (Theorem 1.5).
        let w = gen::random_edge_weights(g.num_edges(), 1, 9, seed + 17);
        let gc = global_cut::directed_global_min_cut(&g, &w).unwrap();
        let ok = Some(gc.value) == cuts::planar_directed_min_cut_reference(&g, &w);
        push("global-min-cut (Thm 1.5)", ok, gc.ledger.total() as f64);

        // Weighted girth (Theorem 1.7).
        let gr = girth::weighted_girth(&g, &w).unwrap();
        let ok = Some(gr.girth) == bgirth::planar_weighted_girth(&g, &w);
        push("girth (Thm 1.7)", ok, gr.ledger.total() as f64);
    }
    rows
}

/// F1 — exact max-flow rounds vs diameter on square grids, where
/// separators are Θ(D) and Theorem 1.2's `Õ(D²)` is tight.
pub fn f1_flow_rounds_vs_d(sides: &[usize], seed: u64) -> Vec<Row> {
    let mut rows = Vec::new();
    for Instance { name, graph: g } in workloads::square_sweep(sides, seed) {
        let (_, d) = cm_of(&g);
        let caps = gen::random_directed_capacities(g.num_edges(), 1, 8, seed + 3);
        let r =
            max_flow::max_st_flow(&g, &caps, 0, g.num_vertices() - 1, &Default::default()).unwrap();
        rows.push(Row {
            experiment: "F1".into(),
            instance: name,
            n: g.num_vertices(),
            d,
            values: vec![
                ("rounds".into(), r.ledger.total() as f64),
                ("rounds/D".into(), r.ledger.total() as f64 / d as f64),
                (
                    "rounds/D^2".into(),
                    r.ledger.total() as f64 / (d * d) as f64,
                ),
                (
                    "rounds/(D^2 logn)".into(),
                    r.ledger.total() as f64 / ((d * d) as f64 * (g.num_vertices() as f64).log2()),
                ),
                ("probes".into(), f64::from(r.probes)),
            ],
        });
    }
    rows
}

/// F2 — exact max-flow rounds on skinny grids (small separators): the
/// measured rounds stay far below both the `D²` worst case and the
/// `√n`-type bounds of prior work, demonstrating instance-adaptivity.
pub fn f2_flow_rounds_vs_n(seed: u64) -> Vec<Row> {
    let mut rows = Vec::new();
    for Instance { name, graph: g } in workloads::size_sweep(4, &[20, 30, 45, 60, 80], seed) {
        let (_, d) = cm_of(&g);
        let caps = gen::random_directed_capacities(g.num_edges(), 1, 8, seed + 5);
        let r =
            max_flow::max_st_flow(&g, &caps, 0, g.num_vertices() - 1, &Default::default()).unwrap();
        rows.push(Row {
            experiment: "F2".into(),
            instance: name,
            n: g.num_vertices(),
            d,
            values: vec![
                ("rounds".into(), r.ledger.total() as f64),
                (
                    "rounds/D^2".into(),
                    r.ledger.total() as f64 / (d * d) as f64,
                ),
                (
                    "rounds/sqrt(n)D".into(),
                    r.ledger.total() as f64 / ((g.num_vertices() as f64).sqrt() * d as f64),
                ),
            ],
        });
    }
    rows
}

/// F3 — weighted-girth rounds vs diameter (Theorem 1.7's `Õ(D)`) on the
/// constant-`n` family, so the polylog(n) factors are fixed and `rounds/D`
/// is flat — the cleanest empirical witness of the linear-in-D bound.
pub fn f3_girth_rounds_vs_d(target_n: usize, seed: u64) -> Vec<Row> {
    let mut rows = Vec::new();
    for Instance { name, graph: g } in workloads::diameter_sweep(target_n, seed) {
        let (_, d) = cm_of(&g);
        let w = gen::random_edge_weights(g.num_edges(), 1, 50, seed + 7);
        let r = girth::weighted_girth(&g, &w).unwrap();
        rows.push(Row {
            experiment: "F3".into(),
            instance: name,
            n: g.num_vertices(),
            d,
            values: vec![
                ("rounds".into(), r.ledger.total() as f64),
                ("rounds/D".into(), r.ledger.total() as f64 / d as f64),
            ],
        });
    }
    rows
}

/// T2 — approximation quality of the st-planar flow vs `ε = 1/k`
/// (Theorem 1.3): measured ratio to the exact optimum, with the
/// `(1 − 1/(k+1))` guarantee alongside.
pub fn t2_approx_quality(seed: u64) -> Vec<Row> {
    let g = gen::diag_grid(12, 8, seed).unwrap();
    let caps = gen::random_undirected_capacities(g.num_edges(), 1, 50, seed + 9);
    let (s, t) = (0, 11); // two corners of the top row: both on the outer face
    let exact = bflow::planar_max_flow_reference(&g, &caps, s, t);
    let (_, d) = cm_of(&g);
    let mut rows = Vec::new();
    for k in [1u64, 2, 4, 8, 16, 0] {
        let r = approx_flow::approx_max_st_flow(&g, &caps, s, t, k).unwrap();
        let ratio = r.value_numer as f64 / (r.denom as f64 * exact as f64);
        let guarantee = if k == 0 {
            1.0
        } else {
            k as f64 / (k as f64 + 1.0)
        };
        rows.push(Row {
            experiment: "T2".into(),
            instance: if k == 0 {
                "exact oracle".into()
            } else {
                format!("ε = 1/{k}")
            },
            n: g.num_vertices(),
            d,
            values: vec![
                ("ratio*1000".into(), ratio * 1000.0),
                ("guarantee*1000".into(), guarantee * 1000.0),
                ("rounds".into(), r.ledger.total() as f64),
            ],
        });
    }
    rows
}

/// F4 — directed global min cut: rounds vs diameter + correctness against
/// the centralized dual-cycle reference (Theorem 1.5).
pub fn f4_global_cut(sides: &[usize], seed: u64) -> Vec<Row> {
    let mut rows = Vec::new();
    for Instance { name, graph: g } in workloads::square_sweep(sides, seed) {
        let (_, d) = cm_of(&g);
        let w = gen::random_edge_weights(g.num_edges(), 1, 30, seed + 19);
        let r = global_cut::directed_global_min_cut(&g, &w).unwrap();
        let ok = Some(r.value) == cuts::planar_directed_min_cut_reference(&g, &w);
        rows.push(Row {
            experiment: "F4".into(),
            instance: name,
            n: g.num_vertices(),
            d,
            values: vec![
                ("ok".into(), f64::from(u8::from(ok))),
                ("rounds".into(), r.ledger.total() as f64),
                (
                    "rounds/D^2".into(),
                    r.ledger.total() as f64 / (d * d) as f64,
                ),
            ],
        });
    }
    rows
}

/// F5 — label sizes vs diameter (Lemma 5.17's `Õ(D)` words).
pub fn f5_label_sizes(sides: &[usize], seed: u64) -> Vec<Row> {
    let mut rows = Vec::new();
    for Instance { name, graph: g } in workloads::square_sweep(sides, seed) {
        let (cm, d) = cm_of(&g);
        let mut ledger = CostLedger::new();
        let engine = DualSsspEngine::new(&g, &cm, None, &mut ledger);
        let lengths = vec![1; g.num_darts()];
        let labels = engine.labels(&lengths, &mut ledger).unwrap();
        let words: Vec<u64> = g.faces().map(|f| labels.label_words(f)).collect();
        let max = *words.iter().max().unwrap() as f64;
        let avg = words.iter().sum::<u64>() as f64 / words.len() as f64;
        rows.push(Row {
            experiment: "F5".into(),
            instance: name,
            n: g.num_vertices(),
            d,
            values: vec![
                ("max-words".into(), max),
                ("avg-words".into(), avg),
                ("max/D".into(), max / d as f64),
            ],
        });
    }
    rows
}

/// T4 — BDD structural statistics vs theory (Lemmas 5.1, 5.3, 5.8).
pub fn t4_bdd_stats(seed: u64) -> Vec<Row> {
    let mut rows = Vec::new();
    for (w, h) in [(10usize, 10usize), (16, 16), (24, 16), (24, 24)] {
        let g = gen::diag_grid(w, h, seed).unwrap();
        let (cm, d) = cm_of(&g);
        let mut ledger = CostLedger::new();
        let bdd = Bdd::build(&g, &BddOptions::default(), &cm, &mut ledger);
        let mut max_parts = 0usize;
        let mut max_fx = 0usize;
        let mut max_sep = 0usize;
        for bag in &bdd.bags {
            max_parts = max_parts.max(bdd.face_parts_of(bag));
            if !bag.is_leaf() {
                let dual = DualBag::of_bag(&g, bag);
                max_fx = max_fx.max(dual_bags::dual_separator(&bdd, bag, &dual).len());
                max_sep = max_sep.max(bag.separator.as_ref().unwrap().vertices.len());
            }
        }
        rows.push(Row {
            experiment: "T4".into(),
            instance: format!("diag-grid {w}x{h}"),
            n: g.num_vertices(),
            d,
            values: vec![
                ("depth".into(), bdd.depth() as f64),
                ("log2(m)".into(), (g.num_edges() as f64).log2()),
                ("max-face-parts".into(), max_parts as f64),
                ("max-|F_X|".into(), max_fx as f64),
                ("max-|S_X|".into(), max_sep as f64),
            ],
        });
    }
    rows
}

/// F6 — measured rounds against prior-work analytic bounds (paper,
/// Section 1): the de Vos `D·n^{1/2+o(1)}` planar algorithm and the GKKLP
/// `(√n + D)·n^{o(1)}` general-graph approximation. Absolute values are
/// not comparable (the prior bounds are evaluated with unit constants
/// while our rounds are fully-constanted measurements), so the
/// reproducible signal is the *trend*: `ours/deVos · 1000` falls as `n`
/// grows — our bound has no `√n` factor.
pub fn f6_prior_comparison(seed: u64) -> Vec<Row> {
    f2_flow_rounds_vs_n(seed)
        .into_iter()
        .map(|row| {
            let rounds = row.value("rounds").unwrap();
            let de_vos = prior::de_vos_planar_flow_rounds(row.n, row.d) as f64;
            let gkklp = prior::gkklp_general_flow_rounds(row.n, row.d) as f64;
            Row {
                experiment: "F6".into(),
                instance: row.instance,
                n: row.n,
                d: row.d,
                values: vec![
                    ("ours".into(), rounds),
                    ("deVos".into(), de_vos),
                    ("GKKLP-approx".into(), gkklp),
                    ("ours/deVos*1000".into(), 1000.0 * rounds / de_vos),
                ],
            }
        })
        .collect()
}

/// T5 — the dual simulation substrate: `Ĝ` diameter vs the `3D` bound
/// (Property 2) and the CONGEST cost of one dual minor-aggregation round
/// (Theorem 4.10).
pub fn t5_overlay_stats(seed: u64) -> Vec<Row> {
    let mut rows = Vec::new();
    for (name, g) in [
        ("grid 8x8".to_string(), gen::grid(8, 8).unwrap()),
        (
            "diag-grid 10x6".to_string(),
            gen::diag_grid(10, 6, seed).unwrap(),
        ),
        (
            "apollonian 48".to_string(),
            gen::apollonian(48, seed).unwrap(),
        ),
    ] {
        let (cm, d) = cm_of(&g);
        let hat = FaceDisjointGraph::new(&g);
        rows.push(Row {
            experiment: "T5".into(),
            instance: name,
            n: g.num_vertices(),
            d,
            values: vec![
                ("hat-diameter".into(), hat.diameter() as f64),
                ("3D".into(), (3 * d) as f64),
                (
                    "MA-round-cost".into(),
                    cm.dual_minor_aggregation_round() as f64,
                ),
            ],
        });
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn t1_all_ok_smoke() {
        for row in t1_correctness(3) {
            assert_eq!(row.value("ok"), Some(1.0), "{}", row.instance);
        }
    }

    #[test]
    fn f1_rounds_grow_with_d() {
        let rows = f1_flow_rounds_vs_d(&[6, 9, 12], 1);
        assert!(rows.len() >= 3);
        let first = rows.first().unwrap();
        let last = rows.last().unwrap();
        assert!(last.d > first.d);
        assert!(last.value("rounds").unwrap() > first.value("rounds").unwrap());
    }

    #[test]
    fn t2_ratios_respect_guarantees() {
        for row in t2_approx_quality(5) {
            assert!(
                row.value("ratio*1000").unwrap() >= row.value("guarantee*1000").unwrap() - 1e-6
            );
            assert!(row.value("ratio*1000").unwrap() <= 1000.0 + 1e-6);
        }
    }

    #[test]
    fn t5_hat_diameter_within_bound() {
        for row in t5_overlay_stats(2) {
            assert!(row.value("hat-diameter").unwrap() <= row.value("3D").unwrap() + 3.0);
        }
    }

    #[test]
    fn s2_batched_bill_equals_serial_bill() {
        for row in s2_batch_throughput(6) {
            assert_eq!(row.value("batch=serial"), Some(1.0), "{}", row.instance);
            assert_eq!(row.value("engine-builds"), Some(1.0), "{}", row.instance);
            assert_eq!(row.value("unique"), Some(6.0), "{}", row.instance);
            assert_eq!(row.value("deduped"), Some(1.0), "{}", row.instance);
            assert!(
                row.value("batch-rounds").unwrap() < row.value("cold-rounds").unwrap(),
                "{}: batching must beat cold calls",
                row.instance
            );
        }
    }

    #[test]
    fn s3_topology_charged_once_and_answers_match() {
        for row in s3_respec_reuse(6, true) {
            assert_eq!(row.value("topo-builds"), Some(1.0), "{}", row.instance);
            assert_eq!(row.value("respec=fresh"), Some(1.0), "{}", row.instance);
            assert!(
                row.value("respec-total").unwrap() < row.value("fresh-total").unwrap(),
                "{}: the respec sweep must undercut fresh builds",
                row.instance
            );
            // Fresh pays the topology once per spec; respec exactly once.
            let topo = row.value("topo-rounds").unwrap();
            assert_eq!(
                row.value("fresh-total").unwrap() - row.value("respec-total").unwrap(),
                4.0 * topo,
                "{}: saving is exactly (K-1) topology shares",
                row.instance
            );
        }
    }

    #[test]
    fn s4_engine_is_bit_for_bit_serial_and_amortizes_substrate() {
        for row in s4_service_engine(6, true) {
            assert_eq!(row.value("engine=serial"), Some(1.0), "{}", row.instance);
            assert_eq!(
                row.value("completed"),
                row.value("jobs"),
                "{}",
                row.instance
            );
            assert_eq!(
                row.value("engine-query"),
                row.value("serial-query"),
                "{}: marginal query rounds are thread/shard independent",
                row.instance
            );
            // The engine's amortized substrate undercuts fresh-per-spec
            // serial by exactly the (M−1) topo shares respec-reuse saves.
            assert_eq!(
                row.value("serial-substrate").unwrap() - row.value("engine-substrate").unwrap(),
                row.value("topo-saved").unwrap(),
                "{}",
                row.instance
            );
            assert_eq!(row.value("respec-reuses"), Some(2.0), "{}", row.instance);
        }
    }

    #[test]
    fn s1_warm_batches_beat_cold_batches() {
        for row in s1_substrate_reuse(6) {
            assert_eq!(row.value("engine-builds"), Some(1.0), "{}", row.instance);
            assert!(
                row.value("warm-rounds").unwrap() < row.value("cold-rounds").unwrap(),
                "{}: warm {} vs cold {}",
                row.instance,
                row.value("warm-rounds").unwrap(),
                row.value("cold-rounds").unwrap()
            );
        }
    }
}

/// A1 — ablation of the BDD leaf threshold (the design choice `DESIGN.md`
/// calls out): tiny leaves deepen the decomposition and pay more broadcast
/// levels; huge leaves degenerate to broadcasting the whole dual. The
/// paper's `Θ(D)` default sits between the regimes.
pub fn a1_leaf_threshold_ablation(seed: u64) -> Vec<Row> {
    let g = gen::diag_grid(16, 16, seed).unwrap();
    let (cm, d) = cm_of(&g);
    let caps = gen::random_directed_capacities(g.num_edges(), 1, 8, seed + 23);
    let mut rows = Vec::new();
    let default = 4 * (cm.d + 1);
    for (label, threshold) in [
        ("tiny (8)".to_string(), 8usize),
        ("D".to_string(), cm.d + 1),
        (format!("default 4(D+1) = {default}"), default),
        ("16·D".to_string(), 16 * (cm.d + 1)),
        ("whole graph".to_string(), g.num_edges() + 1),
    ] {
        let r = max_flow::max_st_flow(
            &g,
            &caps,
            0,
            g.num_vertices() - 1,
            &max_flow::MaxFlowOptions {
                leaf_threshold: Some(threshold),
            },
        )
        .unwrap();
        let mut ledger = CostLedger::new();
        let engine = DualSsspEngine::new(&g, &cm, Some(threshold), &mut ledger);
        rows.push(Row {
            experiment: "A1".into(),
            instance: format!("leaf threshold {label}"),
            n: g.num_vertices(),
            d,
            values: vec![
                ("rounds".into(), r.ledger.total() as f64),
                ("bdd-depth".into(), engine.bdd.depth() as f64),
                ("bags".into(), engine.bdd.bags.len() as f64),
            ],
        });
    }
    rows
}

/// A2 — ablation of the per-probe labeling cost across the binary search:
/// the engine (BDD + dual bags) is built once and re-labeled per probe;
/// this isolates the per-probe `Õ(D²)` from the one-off `Õ(D)` setup.
pub fn a2_probe_cost_split(seed: u64) -> Vec<Row> {
    let mut rows = Vec::new();
    for k in [10usize, 16, 22] {
        let g = gen::diag_grid(k, k, seed).unwrap();
        let (_, d) = cm_of(&g);
        let caps = gen::random_directed_capacities(g.num_edges(), 1, 8, seed + 29);
        let r =
            max_flow::max_st_flow(&g, &caps, 0, g.num_vertices() - 1, &Default::default()).unwrap();
        let setup = r.ledger.phase_total("bdd-build") + r.ledger.phase_total("bdd-face-ids");
        let labeling = r.ledger.phase_total("labeling-broadcast");
        rows.push(Row {
            experiment: "A2".into(),
            instance: format!("diag-grid {k}x{k}"),
            n: g.num_vertices(),
            d,
            values: vec![
                ("setup-rounds".into(), setup as f64),
                ("labeling-rounds".into(), labeling as f64),
                ("per-probe".into(), labeling as f64 / f64::from(r.probes)),
                ("probes".into(), f64::from(r.probes)),
            ],
        });
    }
    rows
}

/// S1 — substrate reuse through the `PlanarSolver` façade: a batch of
/// distinct queries issued cold (one engine per call, the pre-solver free
/// functions) vs warm (one solver, one cached engine). The reproducible
/// signal: warm total rounds ≈ cold total − (batch−1)·substrate, and the
/// engine is built exactly once.
pub fn s1_substrate_reuse(seed: u64) -> Vec<Row> {
    let mut rows = Vec::new();
    for (w, h) in [(8usize, 6usize), (12, 8), (16, 10)] {
        let g = gen::diag_grid(w, h, seed).unwrap();
        let n = g.num_vertices();
        let caps = gen::random_undirected_capacities(g.num_edges(), 1, 9, seed + 31);
        let weights = gen::random_edge_weights(g.num_edges(), 1, 9, seed + 37);
        let pairs = [(0, n - 1), (w - 1, n - w), (0, n - w), (w - 1, n - 1)];

        // Cold: every call pays its own diameter measurement + BDD.
        let mut cold_rounds = 0u64;
        for &(s, t) in &pairs {
            cold_rounds += max_flow::max_st_flow(&g, &caps, s, t, &Default::default())
                .unwrap()
                .ledger
                .total();
        }
        cold_rounds += global_cut::directed_global_min_cut(&g, &weights)
            .unwrap()
            .ledger
            .total();
        cold_rounds += girth::weighted_girth(&g, &weights).unwrap().ledger.total();

        // Warm: one solver, substrate charged once.
        let solver = PlanarSolver::builder(&g)
            .capacities(caps.clone())
            .edge_weights(weights.clone())
            .build()
            .unwrap();
        let mut warm_query_rounds = 0u64;
        for &(s, t) in &pairs {
            warm_query_rounds += solver.max_flow(s, t).unwrap().rounds.query_total();
        }
        warm_query_rounds += solver.global_min_cut().unwrap().rounds.query_total();
        warm_query_rounds += solver.girth().unwrap().rounds.query_total();
        let warm_rounds = warm_query_rounds + solver.substrate_rounds().total();

        rows.push(Row {
            experiment: "S1".into(),
            instance: format!("diag-grid {w}x{h}, 6 queries"),
            n,
            d: g.diameter(),
            values: vec![
                ("cold-rounds".into(), cold_rounds as f64),
                ("warm-rounds".into(), warm_rounds as f64),
                (
                    "substrate-rounds".into(),
                    solver.substrate_rounds().total() as f64,
                ),
                (
                    "saved*1000".into(),
                    1000.0 * (cold_rounds - warm_rounds) as f64 / cold_rounds as f64,
                ),
                (
                    "engine-builds".into(),
                    f64::from(solver.stats().engine_builds),
                ),
            ],
        });
    }
    rows
}

/// S2 — warm batch throughput through the typed query layer: the
/// six-query S1 workload (four max-flows, one global cut, one girth) plus
/// one duplicate, executed three ways on fresh solvers — **cold** via the
/// legacy free functions, **warm-serial** via `run(Query)` one at a time,
/// and **warm-batched** via `run_batch_on` across a thread sweep. The
/// reproducible signal: the batched CONGEST bill equals the warm-serial
/// bill on every thread count (substrate charged once, duplicate billed
/// zero marginal rounds), making this row an executable check of the
/// batch-equals-serial acceptance criterion.
pub fn s2_batch_throughput(seed: u64) -> Vec<Row> {
    let mut rows = Vec::new();
    // Two sizes suffice: S1 already sweeps scale; S2's axis is threads.
    for (w, h) in [(8usize, 6usize), (12, 8)] {
        let g = gen::diag_grid(w, h, seed).unwrap();
        let n = g.num_vertices();
        let caps = gen::random_undirected_capacities(g.num_edges(), 1, 9, seed + 31);
        let weights = gen::random_edge_weights(g.num_edges(), 1, 9, seed + 37);
        let pairs = [(0, n - 1), (w - 1, n - w), (0, n - w), (w - 1, n - 1)];
        let mut queries: Vec<Query> = pairs
            .iter()
            .map(|&(s, t)| Query::MaxFlow { s, t })
            .collect();
        queries.extend([Query::GlobalMinCut, Query::Girth]);
        queries.push(queries[0]); // duplicate: deduplicated by the batch
        let fresh_solver = || {
            PlanarSolver::builder(&g)
                .capacities(caps.clone())
                .edge_weights(weights.clone())
                .build()
                .unwrap()
        };

        // Cold: every call pays its own diameter measurement + BDD.
        let mut cold_rounds = 0u64;
        for &(s, t) in &pairs {
            cold_rounds += max_flow::max_st_flow(&g, &caps, s, t, &Default::default())
                .unwrap()
                .ledger
                .total();
        }
        cold_rounds += global_cut::directed_global_min_cut(&g, &weights)
            .unwrap()
            .ledger
            .total();
        cold_rounds += girth::weighted_girth(&g, &weights).unwrap().ledger.total();

        // Warm serial: one solver, one query at a time (duplicate re-run).
        let serial = fresh_solver();
        let serial_marginal: u64 = queries[..6]
            .iter()
            .map(|&q| serial.run(q).unwrap().rounds().query_total())
            .sum();
        let serial_rounds = serial_marginal + serial.substrate_rounds().total();

        // Warm batched: dedup + worker pool, across a thread sweep.
        for threads in [1usize, 2, 4] {
            let solver = fresh_solver();
            let batch = solver.run_batch_on(&queries, threads);
            assert!(batch.all_ok(), "batch workload must succeed");
            rows.push(Row {
                experiment: "S2".into(),
                instance: format!("diag-grid {w}x{h}, 7 queries, {threads} thr"),
                n,
                d: g.diameter(),
                values: vec![
                    ("cold-rounds".into(), cold_rounds as f64),
                    ("serial-warm-rounds".into(), serial_rounds as f64),
                    ("batch-rounds".into(), batch.rounds.total() as f64),
                    (
                        "batch=serial".into(),
                        f64::from(u8::from(batch.rounds.total() == serial_rounds)),
                    ),
                    ("unique".into(), batch.unique as f64),
                    ("deduped".into(), batch.duplicates as f64),
                    (
                        "engine-builds".into(),
                        f64::from(solver.stats().engine_builds),
                    ),
                ],
            });
        }
    }
    rows
}

/// S3 — respec reuse through the two-tier substrate: the same K-scenario
/// capacity sweep (K = 5 specs of one network, each answering one exact
/// max-flow and one global min cut) executed two ways — **fresh** (one
/// solver per spec: every scenario pays the diameter measurement, dual
/// graph and BDD again) and **respec** (`PlanarSolver::respec_capacities`
/// chains the specs over one shared `Arc<TopoSubstrate>`). The
/// reproducible signals: `topo-rounds` is charged **once** across the
/// respec sweep (`topo-builds = 1`), every spec pays only its own weight
/// tier + marginal queries, answers are bit-for-bit identical
/// (`respec=fresh = 1`), and the sweep total undercuts the fresh total by
/// exactly `(K−1) · topo-rounds`.
pub fn s3_respec_reuse(seed: u64, smoke: bool) -> Vec<Row> {
    let sizes: &[(usize, usize)] = if smoke { &[(6, 5)] } else { &[(8, 6), (12, 8)] };
    let specs = 5usize; // K: one base spec + 4 respecs
    let mut rows = Vec::new();
    for &(w, h) in sizes {
        let g = gen::diag_grid(w, h, seed).unwrap();
        let n = g.num_vertices();
        let t = n - 1;
        let spec_caps: Vec<Vec<duality_planar::Weight>> = (0..specs as u64)
            .map(|k| gen::random_undirected_capacities(g.num_edges(), 1, 9, seed + 31 + k))
            .collect();
        // Explicit per-edge weights shared by every spec and both paths:
        // `respec_capacities` keeps the original weights (replace only the
        // named side), so the fresh baseline must run on those same
        // weights — building it from `capacities(caps_k)` alone would
        // re-derive weights from each spec's caps and the two paths would
        // answer the weight-backed global cut on different data.
        let weights = gen::random_edge_weights(g.num_edges(), 1, 9, seed + 97);

        // Fresh: one solver per spec, topology rebuilt every time.
        let mut fresh_total = 0u64;
        let mut fresh_answers = Vec::new();
        for caps in &spec_caps {
            let solver = PlanarSolver::builder(&g)
                .capacities(caps.clone())
                .edge_weights(weights.clone())
                .build()
                .unwrap();
            let flow = solver.max_flow(0, t).unwrap();
            let cut = solver.global_min_cut().unwrap();
            fresh_total += solver.substrate_rounds().total()
                + flow.rounds.query_total()
                + cut.rounds.query_total();
            fresh_answers.push((flow.value, flow.flow, cut.value, cut.cut_edges));
        }

        // Respec: one topology, K weight tiers.
        let base = PlanarSolver::builder(&g)
            .capacities(spec_caps[0].clone())
            .edge_weights(weights.clone())
            .build()
            .unwrap();
        let mut respec_total = 0u64;
        let mut weight_rounds = 0u64;
        let mut answers_match = true;
        let mut solver = base.clone();
        for (k, caps) in spec_caps.iter().enumerate() {
            if k > 0 {
                solver = solver.respec_capacities(caps.clone()).unwrap();
            }
            let flow = solver.max_flow(0, t).unwrap();
            let cut = solver.global_min_cut().unwrap();
            weight_rounds += solver.substrate_weight_rounds().total();
            respec_total += solver.substrate_weight_rounds().total()
                + flow.rounds.query_total()
                + cut.rounds.query_total();
            let want = &fresh_answers[k];
            answers_match &= flow.value == want.0
                && flow.flow == want.1
                && cut.value == want.2
                && cut.cut_edges == want.3;
        }
        let topo_rounds = base.substrate_topo_rounds().total();
        respec_total += topo_rounds; // charged once for the whole sweep

        rows.push(Row {
            experiment: "S3".into(),
            instance: format!("diag-grid {w}x{h}, {specs} specs"),
            n,
            d: g.diameter(),
            values: vec![
                ("topo-rounds".into(), topo_rounds as f64),
                ("weight-rounds".into(), weight_rounds as f64),
                ("respec-total".into(), respec_total as f64),
                ("fresh-total".into(), fresh_total as f64),
                (
                    "saved*1000".into(),
                    1000.0 * (fresh_total - respec_total) as f64 / fresh_total as f64,
                ),
                ("topo-builds".into(), f64::from(base.stats().engine_builds)),
                ("respec=fresh".into(), f64::from(u8::from(answers_match))),
            ],
        });
    }
    rows
}

// The digest the S4/S5 determinism contracts compare: witness data plus
// marginal query rounds (shared with the workload driver, which uses the
// same fingerprint for trace replay).
use duality_workload::outcome_fingerprint;

/// S4 — the sharded serving engine vs serial execution: a multi-tenant
/// workload (K networks × M respec'd specs × four query kinds) replayed
/// through `ServiceEngine` across a {1,2,4}-worker × {1,2,4}-shard sweep.
/// The reproducible signals, per combination: every outcome is
/// **bit-for-bit identical** to serial `PlanarSolver::run` (witnesses and
/// marginal rounds — `engine=serial = 1`), the engine's summed query
/// rounds equal the serial sum exactly, and its amortized substrate bill
/// undercuts the fresh-solver-per-spec serial bill by exactly
/// `(M−1) × Σ topo` (respec-reuse across shards' pools, `respec-reuses =
/// K·(M−1)`).
pub fn s4_service_engine(seed: u64, smoke: bool) -> Vec<Row> {
    use duality_congest::RoundReport;
    use duality_core::{Outcome, PlanarInstance};
    use duality_service::{AdmissionPolicy, ServiceEngine};
    use std::sync::Arc;

    let (w, h, networks) = if smoke {
        (5usize, 4usize, 2usize)
    } else {
        (8, 6, 3)
    };
    let specs_per = 2usize;

    // Tenants: K networks, each with a base spec and a surge respec
    // (copy-on-write, shared graph allocation — the donor relationship
    // the engine's shard routing must preserve).
    let mut tenants: Vec<Arc<PlanarInstance>> = Vec::new();
    for k in 0..networks as u64 {
        let g = gen::diag_grid(w, h, seed + k).unwrap();
        let caps = gen::random_undirected_capacities(g.num_edges(), 1, 9, seed + 10 + k);
        let weights = gen::random_edge_weights(g.num_edges(), 1, 9, seed + 20 + k);
        let base = PlanarInstance::new(g, Some(caps), Some(weights)).unwrap();
        let surge: Vec<i64> = base.capacities().iter().map(|&c| 2 * c).collect();
        let respec = base.with_capacities(surge).unwrap();
        tenants.push(base);
        tenants.push(respec);
    }
    let queries_of = |i: &PlanarInstance| {
        let t = i.n() - 1;
        [
            Query::MaxFlow { s: 0, t },
            Query::MinStCut { s: 0, t },
            Query::GlobalMinCut,
            Query::Girth,
        ]
    };

    // Serial ground truth: one fresh solver per spec, queries in order;
    // per-spec bills merged across tenants with `RoundReport::absorb`
    // (each solver legitimately paid its own substrate).
    let mut serial_bill = RoundReport::default();
    let mut serial_fingerprints: Vec<u64> = Vec::new();
    let mut topo_rounds_per_network = 0u64;
    // The engine sweep below warms each tenant with one girth before its
    // storm; that known extra is subtracted from the engine's query bill.
    // Girth marginals are repeat-invariant, so the serial pass's girth
    // outcomes (last query of each tenant) price the warmup exactly.
    let mut warmup_query = 0u64;
    for (ti, i) in tenants.iter().enumerate() {
        let solver = PlanarSolver::from_instance(Arc::clone(i));
        let outcomes: Vec<Outcome> = queries_of(i)
            .into_iter()
            .map(|q| solver.run(q).unwrap())
            .collect();
        serial_fingerprints.extend(outcomes.iter().map(outcome_fingerprint));
        warmup_query += outcomes.last().unwrap().rounds().query_total();
        serial_bill.absorb(&RoundReport::batched(
            solver.substrate_topo_rounds(),
            solver.substrate_weight_rounds(),
            outcomes.iter().map(|o| &o.rounds().query),
        ));
        if ti % specs_per == 0 {
            topo_rounds_per_network += solver.substrate_topo_rounds().total();
        }
    }

    let mut rows = Vec::new();
    for shard_count in [1usize, 2, 4] {
        for workers in [1usize, 2, 4] {
            let engine = ServiceEngine::builder()
                .shards(shard_count)
                .workers(workers)
                .queue_capacity(32)
                .admission(AdmissionPolicy::Block)
                .build()
                .unwrap();
            // Deterministic warmup: admit every tenant in order (base
            // before its respec) so each respec finds its donor solver.
            for i in &tenants {
                let _ = engine.run(i, Query::Girth).unwrap();
            }
            // The storm: every job submitted up front, outcomes collected
            // asynchronously via tickets, in submission order.
            let tickets: Vec<_> = tenants
                .iter()
                .flat_map(|i| {
                    queries_of(i)
                        .into_iter()
                        .map(|q| engine.submit(i, q).unwrap())
                        .collect::<Vec<_>>()
                })
                .collect();
            let fingerprints: Vec<u64> = tickets
                .into_iter()
                .map(|t| outcome_fingerprint(&t.wait().unwrap()))
                .collect();
            let matches = fingerprints == serial_fingerprints;
            let m = engine.shutdown();
            rows.push(Row {
                experiment: "S4".into(),
                instance: format!(
                    "{networks} nets × {specs_per} specs, {workers} wrk / {shard_count} shd"
                ),
                n: tenants[0].n(),
                d: tenants[0].graph().diameter(),
                values: vec![
                    ("jobs".into(), (tenants.len() * 4) as f64),
                    ("engine=serial".into(), f64::from(u8::from(matches))),
                    (
                        "completed".into(),
                        m.completed as f64 - tenants.len() as f64, // minus warmup
                    ),
                    (
                        "engine-query".into(),
                        (m.query_rounds() - warmup_query) as f64,
                    ),
                    ("serial-query".into(), serial_bill.query_total() as f64),
                    ("engine-substrate".into(), m.substrate_rounds() as f64),
                    (
                        "serial-substrate".into(),
                        serial_bill.substrate_total() as f64,
                    ),
                    (
                        "topo-saved".into(),
                        ((specs_per - 1) as u64 * topo_rounds_per_network) as f64,
                    ),
                    ("respec-reuses".into(), m.pool_total().respec_reuses as f64),
                    (
                        "p99-us".into(),
                        m.latency.quantile_us(0.99).unwrap_or(0) as f64,
                    ),
                ],
            });
        }
    }
    rows
}

/// S5 — the scenario workload sweep: preset scenarios recorded to traces
/// (`duality-workload`), replayed through the serving engine across a
/// worker × shard sweep, and compared against serial ground truth. The
/// reproducible signals, per (scenario, configuration): every replayed
/// outcome is bit-for-bit identical to serial `PlanarSolver::run`
/// (`replay=serial = 1`), the summed marginal query rounds match the
/// serial sum exactly, and the engine's pooled substrate bill never
/// exceeds the fresh-solver-per-spec serial bill. The *measurements* —
/// wall-clock throughput, latency quantiles, and the substrate-reuse
/// bills — are the perf trajectory recorded in `BENCH_S5.json`.
pub fn s5_scenario_sweep(seed: u64, smoke: bool) -> Vec<Row> {
    run_lab_spec(S5_SPEC, seed, smoke)
}

/// The committed declarative spec behind S5 — `experiments run
/// experiments/s5-replay.lab.jsonl` regenerates the same sweep.
pub const S5_SPEC: &str = include_str!("../../../experiments/s5-replay.lab.jsonl");

/// The committed declarative spec behind S7.
pub const S7_SPEC: &str = include_str!("../../../experiments/s7-saturation.lab.jsonl");

/// The committed declarative spec behind S8.
pub const S8_SPEC: &str = include_str!("../../../experiments/s8-autopilot.lab.jsonl");

/// The committed declarative spec behind S9.
pub const S9_SPEC: &str = include_str!("../../../experiments/s9-stealing.lab.jsonl");

/// The committed declarative spec behind S10.
pub const S10_SPEC: &str = include_str!("../../../experiments/s10-memory.lab.jsonl");

/// S7 — the saturation probe: per preset × (workers, shards) cell, the
/// open-loop arrival rate is stepped by `increment_jps` per round until
/// the engine overloads (achieved rate falls under the sustainability
/// margin, or the round p99 passes the spec'd ceiling). The artifact
/// records `max-sustainable-jps` — the capacity the cell can actually
/// serve — and the knee-of-curve p50/p99, the latency just before
/// tip-over. This is the instrument for the worker-scaling wall: if
/// capacity is flat from 1→4 workers, `scaling-efficiency` stays ~1.0
/// in `BENCH_S7.json` and the wall is in evidence, not in anecdotes.
pub fn s7_saturation(seed: u64, smoke: bool) -> Vec<Row> {
    run_lab_spec(S7_SPEC, seed, smoke)
}

/// S8 — the autopilot closed loop: per (scenario, cell), the trace is
/// served phase by phase (calm-in, storm burst, calm-out) through a
/// telemetry-wired reconciler whose autopilot scales the worker fleet on
/// queue and per-tenant p99 pressure, then once more through a *static*
/// fleet sized at the surge ceiling. The reproducible signals: every
/// phase completes all its jobs (exact-gated), the storm phase shows
/// scale-up decisions and a worker peak above the floor, and the
/// calm-out phase retires back to the floor — elastic capacity holding
/// the workload a static peak-sized fleet would hold with idle workers.
pub fn s8_autopilot(seed: u64, smoke: bool) -> Vec<Row> {
    run_lab_spec(S8_SPEC, seed, smoke)
}

/// S9 — the stealing probe: the S7 saturation instrument pointed at the
/// work-stealing scheduler, ramping two compute-bound presets over a
/// 1→8 worker sweep at a fixed two shards. The artifact's
/// `scaling-efficiency` column (capacity at N workers ÷ capacity at 1
/// worker) is the direct witness for the worker-scaling wall this
/// scheduler exists to smash: per-worker deques take the single hot
/// mutex + condvar thundering herd off the dispatch path, so capacity
/// should now climb with the fleet instead of flattening at ~1–2×.
pub fn s9_stealing(seed: u64, smoke: bool) -> Vec<Row> {
    run_lab_spec(S9_SPEC, seed, smoke)
}

/// S10 — the memory/profiling probe: an instance-size ramp (small →
/// medium → large tenant grids) served through a telemetry-wired
/// engine, reporting where the substrate build spends its time
/// (per-phase µs: embed / dual / bdd / weight-tier / labeling, summed
/// as `substrate-build-us`) and what the solver pool holds while doing
/// it (byte-accurate `resident-bytes` / `peak-resident-bytes` /
/// `evicted-bytes` from the `HeapSize` accounting). The reproducible
/// signal is `completed = jobs` (exact-gated, Block admission); the
/// byte and phase gauges are the trajectory `BENCH_S10.json` records —
/// the evidence base for pool budget sizing.
pub fn s10_memory(seed: u64, smoke: bool) -> Vec<Row> {
    run_lab_spec(S10_SPEC, seed, smoke)
}

/// Parses a committed lab spec and runs it with the harness seed.
fn run_lab_spec(text: &str, seed: u64, smoke: bool) -> Vec<Row> {
    let spec = duality_lab::LabSpec::parse_jsonl(text).expect("committed lab specs parse");
    duality_lab::run_spec(&spec, smoke, Some(seed))
        .expect("committed lab specs run")
        .into_iter()
        .map(|r| Row {
            experiment: r.experiment,
            instance: r.instance,
            n: r.n,
            d: r.d,
            values: r.values,
        })
        .collect()
}

#[cfg(test)]
mod workload_tests {
    use super::*;

    #[test]
    fn committed_specs_are_canonical_and_smoke_scaled() {
        use duality_lab::{LabSpec, RunMode};
        for text in [S5_SPEC, S7_SPEC] {
            let spec = LabSpec::parse_jsonl(text).unwrap();
            assert_eq!(spec.to_jsonl(), text, "committed spec is byte-stable");
            assert_eq!(spec.seed, 42, "specs pin the harness seed");
            assert!(
                spec.run_scenarios(true).len() >= 4,
                "smoke keeps the acceptance floor of four scenarios"
            );
            assert_eq!(spec.run_cells(true).len(), 3, "smoke grid is CI-sized");
            assert_eq!(spec.run_cells(false).len(), 9, "full grid is 3x3");
        }
        assert!(matches!(
            LabSpec::parse_jsonl(S5_SPEC).unwrap().mode,
            RunMode::Replay
        ));
        assert!(matches!(
            LabSpec::parse_jsonl(S7_SPEC).unwrap().mode,
            RunMode::Ramp(_)
        ));
    }

    #[test]
    fn s8_spec_is_canonical_and_the_smoke_run_surges() {
        use duality_lab::{LabSpec, RunMode};
        let spec = LabSpec::parse_jsonl(S8_SPEC).unwrap();
        assert_eq!(spec.to_jsonl(), S8_SPEC, "committed spec is byte-stable");
        assert_eq!(spec.seed, 42, "specs pin the harness seed");
        assert!(matches!(spec.mode, RunMode::Autopilot(_)));
        assert_eq!(spec.run_cells(true).len(), 1, "smoke keeps one cell");

        let rows = s8_autopilot(6, true);
        for row in &rows {
            assert_eq!(
                row.value("completed"),
                row.value("jobs"),
                "{}: every phase completes its jobs",
                row.instance
            );
        }
        let by_phase = |p: &str| {
            rows.iter()
                .find(|r| r.instance.contains(p))
                .unwrap_or_else(|| panic!("phase {p}"))
        };
        let storm = by_phase("[storm]");
        assert!(storm.value("scale-ups").unwrap() >= 1.0, "storm surges");
        assert!(storm.value("workers-peak").unwrap() > storm.value("workers-start").unwrap());
        // Fast builds can drain the burst mid-storm, so the retire
        // decisions may land in the storm row rather than calm-out; the
        // elastic claim is that *somewhere* after the surge the fleet
        // stepped back down and ended calm-out on the floor.
        let downs: f64 = rows.iter().filter_map(|r| r.value("scale-downs")).sum();
        assert!(downs >= 1.0, "the surge is retired");
        let out = by_phase("[calm-out]");
        assert_eq!(out.value("workers-end"), Some(2.0), "retired to the floor");
        assert_eq!(by_phase("[static-peak]").value("workers-end"), Some(6.0));
    }

    #[test]
    fn s9_spec_is_canonical_and_sweeps_the_worker_axis() {
        use duality_lab::{LabSpec, RunMode};
        let spec = LabSpec::parse_jsonl(S9_SPEC).unwrap();
        assert_eq!(spec.to_jsonl(), S9_SPEC, "committed spec is byte-stable");
        assert_eq!(spec.seed, 42, "specs pin the harness seed");
        assert!(matches!(spec.mode, RunMode::Ramp(_)));

        let full = spec.run_cells(false);
        assert_eq!(
            full.iter().map(|c| c.workers).collect::<Vec<_>>(),
            [1, 2, 4, 8],
            "the full grid walks the worker axis"
        );
        assert!(
            full.iter().all(|c| c.shards == 2),
            "shards pinned so the sweep isolates the scheduler"
        );
        let smoke = spec.run_cells(true);
        assert_eq!(
            smoke.iter().map(|c| c.workers).collect::<Vec<_>>(),
            [1, 8],
            "smoke keeps the endpoints the efficiency ratio needs"
        );
        assert_eq!(spec.run_scenarios(true).len(), 2, "both presets in smoke");
    }

    #[test]
    fn s10_spec_is_canonical_and_reports_phases_and_bytes() {
        use duality_lab::{LabSpec, RunMode, SUBSTRATE_PHASES};
        let spec = LabSpec::parse_jsonl(S10_SPEC).unwrap();
        assert_eq!(spec.to_jsonl(), S10_SPEC, "committed spec is byte-stable");
        assert_eq!(spec.seed, 42, "specs pin the harness seed");
        assert!(matches!(spec.mode, RunMode::Memory(_)));
        assert_eq!(
            spec.run_scenarios(true).len(),
            2,
            "smoke keeps the small and medium rungs of the ramp"
        );

        let rows = s10_memory(6, true);
        for row in &rows {
            assert_eq!(
                row.value("completed"),
                row.value("jobs"),
                "{}: Block admission completes everything",
                row.instance
            );
            let split: f64 = SUBSTRATE_PHASES
                .iter()
                .filter_map(|p| row.value(&format!("phase-{p}-us")))
                .sum();
            assert_eq!(
                row.value("substrate-build-us"),
                Some(split),
                "{}: the phase split sums to the build total",
                row.instance
            );
            assert!(
                row.value("peak-resident-bytes") >= row.value("resident-bytes"),
                "{}: peak is a high-water mark",
                row.instance
            );
        }
        // The ramp's point: bigger instances, bigger pool footprint.
        let peak = |name: &str| {
            rows.iter()
                .filter(|r| r.instance.starts_with(name))
                .filter_map(|r| r.value("peak-resident-bytes"))
                .fold(0.0, f64::max)
        };
        assert!(
            peak("mem-medium") > peak("mem-small"),
            "the size ramp shows up in the byte gauges"
        );
    }

    #[test]
    fn s5_replay_is_bit_for_bit_serial_and_amortized() {
        let rows = s5_scenario_sweep(6, true);
        assert!(
            rows.iter()
                .map(|r| r.instance.split(',').next().unwrap().to_string())
                .collect::<std::collections::HashSet<_>>()
                .len()
                >= 4,
            "the sweep covers at least four preset scenarios"
        );
        for row in rows {
            assert_eq!(row.value("replay=serial"), Some(1.0), "{}", row.instance);
            assert_eq!(
                row.value("completed"),
                row.value("jobs"),
                "{}: deadline-free replays complete everything",
                row.instance
            );
            assert_eq!(
                row.value("engine-query"),
                row.value("serial-query"),
                "{}: marginal query rounds are config independent",
                row.instance
            );
            assert!(
                row.value("engine-substrate").unwrap() <= row.value("serial-substrate").unwrap(),
                "{}: pooling never bills more substrate than fresh solvers",
                row.instance
            );
        }
    }
}

/// S6 — the control plane operating a fleet through its lifecycle:
/// cold launch, worker scale-up under traffic, a storm derate with SLO
/// pressure, recovery with stray eviction, and a controller restart
/// from a hash-verified snapshot. Each phase is one declarative spec
/// push; the rows record how many observe/diff/execute rounds and
/// actions the reconciler needed and whether it converged — plus, for
/// the restart phase, whether the resumed controller reached the same
/// state and the snapshot round-trips byte-stably.
pub fn s6_control_plane(seed: u64, smoke: bool) -> Vec<Row> {
    use duality_control::{Action, FleetSpec, Reconciler, Slo, StateStore, TenantDecl};
    use duality_core::{InstanceKey, Query};
    use duality_service::AdmissionPolicy;
    use duality_workload::{FamilySpec, TenantRecord};
    use std::sync::Arc;

    let families: Vec<(&str, FamilySpec)> = if smoke {
        vec![
            ("grid", FamilySpec::DiagGrid { w: 4, h: 4 }),
            ("mesh", FamilySpec::Apollonian { n: 8 }),
            ("ring", FamilySpec::Outerplanar { n: 10, full: true }),
        ]
    } else {
        vec![
            ("grid", FamilySpec::DiagGrid { w: 7, h: 6 }),
            ("mesh", FamilySpec::Apollonian { n: 24 }),
            ("ring", FamilySpec::Outerplanar { n: 30, full: true }),
            (
                "sparse",
                FamilySpec::SparseGrid {
                    w: 6,
                    h: 6,
                    target_m: 70,
                },
            ),
        ]
    };
    let surge_workers = if smoke { 2 } else { 4 };
    let spec = FleetSpec {
        name: "s6-fleet".into(),
        revision: 1,
        workers: 1,
        shards: 2,
        queue_capacity: 64,
        pool_capacity: 16,
        admission: AdmissionPolicy::Block,
        tenants: families
            .iter()
            .enumerate()
            .map(|(i, (name, family))| TenantDecl {
                name: (*name).to_string(),
                record: TenantRecord {
                    family: *family,
                    cap_range: (1, 9),
                    weight_range: (1, 9),
                    graph_seed: seed + i as u64,
                    cap_seed: seed + 100 + i as u64,
                    weight_seed: seed + 200 + i as u64,
                },
                prewarm: true,
                derate_percent: 100,
                slo: None,
            })
            .collect(),
    };
    let store_path = std::env::temp_dir().join(format!(
        "duality-bench-s6-{seed}-{}.jsonl",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&store_path);

    let mut rows = Vec::new();
    let mut phase =
        |name: &str, tenant0: &Arc<duality_core::PlanarInstance>, values: Vec<(String, f64)>| {
            rows.push(Row {
                experiment: "S6".into(),
                instance: format!("{name}, {} tenants", families.len()),
                n: tenant0.n(),
                d: tenant0.graph().diameter(),
                values,
            });
        };
    let count = |report: &duality_control::ConvergenceReport, pick: fn(&Action) -> bool| {
        report.actions.iter().filter(|a| pick(a)).count() as f64
    };
    let traffic = |fleet: &Reconciler| {
        for (name, _) in &families {
            let i = Arc::clone(fleet.instance(name).expect("spec'd tenant"));
            let t = i.n() - 1;
            fleet
                .engine()
                .run(&i, Query::MaxFlow { s: 0, t })
                .expect("fleet serves");
            fleet.engine().run(&i, Query::Girth).expect("fleet serves");
        }
    };

    // Phase 1 — cold launch: empty engine to fully warmed roster.
    let mut fleet = Reconciler::launch(spec).expect("valid spec");
    fleet.attach_store(StateStore::new(store_path.clone()));
    let report = fleet.reconcile().expect("reconcile runs");
    let obs = fleet.observe();
    let tenant0 = Arc::clone(fleet.instance(families[0].0).unwrap());
    phase(
        "cold-launch",
        &tenant0,
        vec![
            ("converged".into(), f64::from(u8::from(report.converged))),
            ("rounds".into(), report.rounds as f64),
            ("actions".into(), report.actions.len() as f64),
            (
                "prewarms".into(),
                count(&report, |a| matches!(a, Action::PrewarmTenant { .. })),
            ),
            (
                "resident".into(),
                obs.tenants.iter().filter(|t| t.resident).count() as f64,
            ),
            ("workers".into(), obs.workers_live as f64),
        ],
    );

    // Phase 2 — scale-up: surge the worker fleet under live traffic.
    traffic(&fleet);
    let mut surge = fleet.spec().clone();
    surge.revision += 1;
    surge.workers = surge_workers;
    let report = fleet.push(surge).expect("push converges");
    phase(
        "scale-up",
        &tenant0,
        vec![
            ("converged".into(), f64::from(u8::from(report.converged))),
            ("rounds".into(), report.rounds as f64),
            ("actions".into(), report.actions.len() as f64),
            ("workers".into(), fleet.engine().metrics().workers as f64),
            (
                "completed".into(),
                fleet.engine().metrics().completed as f64,
            ),
        ],
    );

    // Phase 3 — storm: derate every region to 40% through the COW
    // respec path, under an unsatisfiably tight p99 SLO so the pass
    // *reports* violations while still converging.
    let mut storm = fleet.spec().clone();
    storm.revision += 1;
    for t in &mut storm.tenants {
        t.derate_percent = 40;
    }
    storm.tenants[0].slo = Some(Slo {
        max_p99_us: Some(1),
        max_queue_depth: None,
    });
    let report = fleet.push(storm).expect("push converges");
    traffic(&fleet);
    let pool = fleet.engine().pool_stats();
    phase(
        "storm-derate",
        &tenant0,
        vec![
            ("converged".into(), f64::from(u8::from(report.converged))),
            ("rounds".into(), report.rounds as f64),
            ("actions".into(), report.actions.len() as f64),
            (
                "derates".into(),
                count(&report, |a| matches!(a, Action::DerateRegion { .. })),
            ),
            ("slo-violations".into(), report.slo_violations as f64),
            ("respec-reuses".into(), pool.respec_reuses as f64),
        ],
    );

    // Phase 4 — recovery: restore full capacity, drop the last tenant,
    // flip admission. The derated solvers become strays and are evicted.
    let mut recover = fleet.spec().clone();
    recover.revision += 1;
    recover.tenants.pop();
    for t in &mut recover.tenants {
        t.derate_percent = 100;
        t.slo = None;
    }
    recover.admission = AdmissionPolicy::Reject;
    let report = fleet.push(recover).expect("push converges");
    let obs = fleet.observe();
    phase(
        "recover-evict",
        &tenant0,
        vec![
            ("converged".into(), f64::from(u8::from(report.converged))),
            ("rounds".into(), report.rounds as f64),
            ("actions".into(), report.actions.len() as f64),
            (
                "evictions".into(),
                count(&report, |a| matches!(a, Action::EvictTenant { .. })),
            ),
            (
                "resident".into(),
                obs.tenants.iter().filter(|t| t.resident).count() as f64,
            ),
        ],
    );

    // Phase 5 — restart: shut the controller down, resume a new one
    // from the snapshot alone, and verify it converges to the same
    // state (same desired keys, same warm set) from a byte-stable file.
    let keys_before: Vec<(String, InstanceKey, bool)> = obs
        .tenants
        .iter()
        .map(|t| (t.name.clone(), t.desired_key, t.resident))
        .collect();
    fleet.shutdown();
    let text = std::fs::read_to_string(&store_path).expect("snapshot written");
    let byte_stable = duality_control::Snapshot::parse_jsonl(&text)
        .expect("snapshot verifies")
        .to_jsonl()
        == text;
    let mut resumed =
        Reconciler::resume(StateStore::new(store_path.clone())).expect("snapshot resumes");
    let report = resumed.reconcile().expect("reconcile runs");
    let obs = resumed.observe();
    let keys_after: Vec<(String, InstanceKey, bool)> = obs
        .tenants
        .iter()
        .map(|t| (t.name.clone(), t.desired_key, t.resident))
        .collect();
    let state_match = keys_after == keys_before && obs.workers_live == surge_workers;
    phase(
        "snapshot-restart",
        &tenant0,
        vec![
            ("converged".into(), f64::from(u8::from(report.converged))),
            ("rounds".into(), report.rounds as f64),
            ("actions".into(), report.actions.len() as f64),
            ("state-match".into(), f64::from(u8::from(state_match))),
            ("byte-stable".into(), f64::from(u8::from(byte_stable))),
        ],
    );
    resumed.shutdown();
    let _ = std::fs::remove_file(&store_path);
    rows
}

#[cfg(test)]
mod control_tests {
    use super::*;

    #[test]
    fn s6_every_phase_converges_and_restart_matches() {
        let rows = s6_control_plane(6, true);
        assert_eq!(rows.len(), 5, "five lifecycle phases");
        for row in &rows {
            assert_eq!(row.value("converged"), Some(1.0), "{}", row.instance);
        }
        let by_phase = |p: &str| {
            rows.iter()
                .find(|r| r.instance.starts_with(p))
                .unwrap_or_else(|| panic!("phase {p}"))
        };
        assert!(by_phase("cold-launch").value("prewarms").unwrap() >= 3.0);
        assert!(by_phase("scale-up").value("workers").unwrap() >= 2.0);
        let storm = by_phase("storm-derate");
        assert!(storm.value("derates").unwrap() >= 3.0);
        assert!(
            storm.value("slo-violations").unwrap() > 0.0,
            "the tight SLO reports violations"
        );
        assert!(
            storm.value("respec-reuses").unwrap() >= 1.0,
            "derates ride the respec-donor path"
        );
        assert!(by_phase("recover-evict").value("evictions").unwrap() >= 1.0);
        let restart = by_phase("snapshot-restart");
        assert_eq!(restart.value("state-match"), Some(1.0));
        assert_eq!(restart.value("byte-stable"), Some(1.0));
    }
}

/// T6 — calibration of the charged cost formulas against the *executed*
/// message-passing runtime: BFS flooding and pipelined tree broadcast are
/// run as real vertex programs and their exact round counts are compared
/// with the `CostModel` arithmetic used throughout the workspace.
pub fn t6_runtime_calibration(seed: u64) -> Vec<Row> {
    use duality_congest::runtime::{run, BfsProgram, PipelinedBroadcast};
    let mut rows = Vec::new();
    for (name, g) in [
        ("grid 9x5".to_string(), gen::grid(9, 5).unwrap()),
        (
            "diag-grid 8x6".to_string(),
            gen::diag_grid(8, 6, seed).unwrap(),
        ),
        (
            "apollonian 40".to_string(),
            gen::apollonian(40, seed).unwrap(),
        ),
    ] {
        let (cm, d) = cm_of(&g);
        let exec = run(&g, &BfsProgram { root: 0 }, 10_000);
        let charged_bfs = cm.bfs(g.eccentricity(0));
        let (parent, depth) = g.bfs(0);
        let words: Vec<u64> = (0..25).collect();
        let bexec = run(
            &g,
            &PipelinedBroadcast {
                root: 0,
                parent: &parent,
                words: &words,
            },
            10_000,
        );
        let charged_bcast = cm.broadcast(
            depth
                .iter()
                .copied()
                .filter(|&x| x != usize::MAX)
                .max()
                .unwrap(),
            words.len() as u64,
        );
        rows.push(Row {
            experiment: "T6".into(),
            instance: name,
            n: g.num_vertices(),
            d,
            values: vec![
                ("bfs-executed".into(), exec.rounds as f64),
                ("bfs-charged".into(), charged_bfs as f64),
                ("bcast-executed".into(), bexec.rounds as f64),
                ("bcast-charged".into(), charged_bcast as f64),
            ],
        });
    }
    rows
}

#[cfg(test)]
mod calibration_tests {
    use super::*;

    #[test]
    fn executed_rounds_within_one_of_charged() {
        for row in t6_runtime_calibration(4) {
            let eb = row.value("bfs-executed").unwrap();
            let cb = row.value("bfs-charged").unwrap();
            assert!((eb - cb).abs() <= 1.0, "{}: bfs {eb} vs {cb}", row.instance);
            let ex = row.value("bcast-executed").unwrap();
            let cx = row.value("bcast-charged").unwrap();
            assert!(
                (ex - cx).abs() <= 2.0,
                "{}: bcast {ex} vs {cx}",
                row.instance
            );
        }
    }
}
