//! Shared benchmark workloads (see `DESIGN.md` §4).

use duality_planar::{gen, PlanarGraph};

/// A named instance.
pub struct Instance {
    /// Description used in tables.
    pub name: String,
    /// The graph.
    pub graph: PlanarGraph,
}

/// Square diagonal-grid family: separators are Θ(D) at every scale, which
/// is the regime where the paper's `Õ(D²)` bound is tight — the main
/// family for the rounds-vs-D figures (F1/F3/F4/F5/F6).
pub fn square_sweep(sides: &[usize], seed: u64) -> Vec<Instance> {
    sides
        .iter()
        .map(|&k| Instance {
            name: format!("diag-grid {k}x{k}"),
            graph: gen::diag_grid(k, k, seed).expect("grids embed"),
        })
        .collect()
}

/// Diagonal-grid family with roughly constant `n` and sweeping diameter.
/// Skinny grids have *small* separators (`O(h)`), so this family probes the
/// instance-adaptive behaviour below the worst case (F2).
pub fn diameter_sweep(target_n: usize, seed: u64) -> Vec<Instance> {
    let mut out = Vec::new();
    for &h in &[2usize, 3, 4, 6, 10, 16, 24] {
        let w = target_n / h;
        if w < h {
            continue; // keep the skinny orientation: w ≥ h
        }
        let graph = gen::diag_grid(w, h, seed).expect("grids embed");
        out.push(Instance {
            name: format!("diag-grid {w}x{h}"),
            graph,
        });
    }
    out.reverse(); // increasing diameter
    out
}

/// Grid family with fixed height (≈ fixed diameter contribution) and
/// growing `n` (F2).
pub fn size_sweep(h: usize, widths: &[usize], seed: u64) -> Vec<Instance> {
    widths
        .iter()
        .map(|&w| Instance {
            name: format!("diag-grid {w}x{h}"),
            graph: gen::diag_grid(w, h, seed).expect("grids embed"),
        })
        .collect()
}

/// The correctness suite (T1): mixed small/medium workloads.
pub fn correctness_suite(seed: u64) -> Vec<Instance> {
    vec![
        Instance {
            name: "grid 5x5".into(),
            graph: gen::grid(5, 5).unwrap(),
        },
        Instance {
            name: format!("diag-grid 6x5 (seed {seed})"),
            graph: gen::diag_grid(6, 5, seed).unwrap(),
        },
        Instance {
            name: "apollonian 40".into(),
            graph: gen::apollonian(40, seed).unwrap(),
        },
        Instance {
            name: "outerplanar 24".into(),
            graph: gen::outerplanar(24, seed, true).unwrap(),
        },
        Instance {
            name: "diag-grid 10x7".into(),
            graph: gen::diag_grid(10, 7, seed + 1).unwrap(),
        },
    ]
}
