//! Shared benchmark workloads (see `DESIGN.md` §4).

use duality_planar::{gen, PlanarGraph};

/// A named instance.
pub struct Instance {
    /// Description used in tables.
    pub name: String,
    /// The graph.
    pub graph: PlanarGraph,
}

/// Square diagonal-grid family: separators are Θ(D) at every scale, which
/// is the regime where the paper's `Õ(D²)` bound is tight — the main
/// family for the rounds-vs-D figures (F1/F3/F4/F5/F6).
pub fn square_sweep(sides: &[usize], seed: u64) -> Vec<Instance> {
    sides
        .iter()
        .map(|&k| Instance {
            name: format!("diag-grid {k}x{k}"),
            graph: gen::diag_grid(k, k, seed).expect("grids embed"),
        })
        .collect()
}

/// Diagonal-grid family with roughly constant `n` and sweeping diameter.
/// Skinny grids have *small* separators (`O(h)`), so this family probes the
/// instance-adaptive behaviour below the worst case (F2).
pub fn diameter_sweep(target_n: usize, seed: u64) -> Vec<Instance> {
    let mut out = Vec::new();
    for &h in &[2usize, 3, 4, 6, 10, 16, 24] {
        let w = target_n / h;
        if w < h {
            continue; // keep the skinny orientation: w ≥ h
        }
        let graph = gen::diag_grid(w, h, seed).expect("grids embed");
        out.push(Instance {
            name: format!("diag-grid {w}x{h}"),
            graph,
        });
    }
    out.reverse(); // increasing diameter
    out
}

/// Grid family with fixed height (≈ fixed diameter contribution) and
/// growing `n` (F2).
pub fn size_sweep(h: usize, widths: &[usize], seed: u64) -> Vec<Instance> {
    widths
        .iter()
        .map(|&w| Instance {
            name: format!("diag-grid {w}x{h}"),
            graph: gen::diag_grid(w, h, seed).expect("grids embed"),
        })
        .collect()
}

/// Apollonian (stacked-triangulation) family: maximal planar graphs with
/// typically polylogarithmic diameter — the dense, shallow end of the
/// workload spectrum, where substrate rounds are dominated by the
/// polylog(n) factors rather than `D`.
pub fn apollonian_sweep(sizes: &[usize], seed: u64) -> Vec<Instance> {
    sizes
        .iter()
        .map(|&n| Instance {
            name: format!("apollonian {n}"),
            graph: gen::apollonian(n, seed).expect("apollonian networks embed"),
        })
        .collect()
}

/// Outerplanar family (polygon triangulations when `full`, sparser chord
/// sets otherwise): every vertex on one face, diameter `Θ(log n)` under
/// full triangulation — the extreme where the whole graph is its own
/// boundary and every vertex qualifies for the st-planar fast paths.
pub fn outerplanar_sweep(sizes: &[usize], full: bool, seed: u64) -> Vec<Instance> {
    sizes
        .iter()
        .map(|&n| Instance {
            name: format!("outerplanar {n}{}", if full { " full" } else { "" }),
            graph: gen::outerplanar(n, seed, full).expect("outerplanar graphs embed"),
        })
        .collect()
}

/// Sparse-grid family: a `side × side` diagonal grid thinned to each
/// target edge count while staying connected. Sweeping the density
/// produces the irregular large-face structures that stress the BDD's
/// face-part machinery — the opposite regime from [`apollonian_sweep`].
pub fn sparse_sweep(side: usize, target_ms: &[usize], seed: u64) -> Vec<Instance> {
    target_ms
        .iter()
        .map(|&m| Instance {
            name: format!("sparse-grid {side}x{side}/{m}"),
            graph: gen::sparse_grid(side, side, m, seed).expect("sparse grids embed"),
        })
        .collect()
}

/// The correctness suite (T1): mixed small/medium workloads, one
/// representative of every generator family the harness sweeps.
pub fn correctness_suite(seed: u64) -> Vec<Instance> {
    let mut suite = vec![
        Instance {
            name: "grid 5x5".into(),
            graph: gen::grid(5, 5).unwrap(),
        },
        Instance {
            name: format!("diag-grid 6x5 (seed {seed})"),
            graph: gen::diag_grid(6, 5, seed).unwrap(),
        },
        Instance {
            name: "diag-grid 10x7".into(),
            graph: gen::diag_grid(10, 7, seed + 1).unwrap(),
        },
    ];
    suite.extend(apollonian_sweep(&[40], seed));
    suite.extend(outerplanar_sweep(&[24], true, seed));
    suite.extend(sparse_sweep(5, &[32], seed));
    suite
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn family_sweeps_build_the_requested_members() {
        let ap = apollonian_sweep(&[10, 20, 40], 3);
        assert_eq!(ap.len(), 3);
        for (inst, n) in ap.iter().zip([10usize, 20, 40]) {
            assert_eq!(inst.graph.num_vertices(), n);
            assert_eq!(inst.graph.num_edges(), 3 * n - 6, "{}", inst.name);
        }
        let op = outerplanar_sweep(&[12, 18], true, 3);
        assert_eq!(op.len(), 2);
        for inst in &op {
            // Full polygon triangulations are maximal outerplanar: 2n−3.
            assert_eq!(
                inst.graph.num_edges(),
                2 * inst.graph.num_vertices() - 3,
                "{}",
                inst.name
            );
        }
        let sp = sparse_sweep(5, &[28, 40], 3);
        assert_eq!(sp.len(), 2);
        for (inst, m) in sp.iter().zip([28usize, 40]) {
            assert_eq!(inst.graph.num_vertices(), 25);
            assert_eq!(inst.graph.num_edges(), m, "{}", inst.name);
        }
    }

    #[test]
    fn correctness_suite_covers_every_family() {
        let names: Vec<String> = correctness_suite(3).into_iter().map(|i| i.name).collect();
        for family in [
            "grid",
            "diag-grid",
            "apollonian",
            "outerplanar",
            "sparse-grid",
        ] {
            assert!(
                names.iter().any(|n| n.starts_with(family)),
                "suite is missing {family}: {names:?}"
            );
        }
    }
}
