//! Solver-level wall-clock bench: substrate reuse. `N` distinct queries
//! issued against one `PlanarSolver` (the BDD, dual bags and diameter
//! measurement are built once and cached) vs the same `N` queries through
//! the pre-solver free functions (every call rebuilds the substrate).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use duality_core::max_flow::{max_st_flow, MaxFlowOptions};
use duality_core::{girth, global_cut, PlanarSolver, Query};
use duality_planar::{gen, PlanarGraph, Weight};

fn query_pairs(g: &PlanarGraph, w: usize) -> [(usize, usize); 4] {
    let n = g.num_vertices();
    [(0, n - 1), (w - 1, n - w), (0, n - w), (w - 1, n - 1)]
}

fn bench_flow_batch(c: &mut Criterion) {
    let mut group = c.benchmark_group("solver_flow_batch");
    group.sample_size(10);
    for (w, h) in [(8usize, 6usize), (12, 8)] {
        let g = gen::diag_grid(w, h, 7).unwrap();
        let caps = gen::random_undirected_capacities(g.num_edges(), 1, 9, 3);
        let pairs = query_pairs(&g, w);

        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{w}x{h}/cold-4-queries")),
            &g,
            |b, g| {
                b.iter(|| {
                    pairs
                        .iter()
                        .map(|&(s, t)| {
                            max_st_flow(g, &caps, s, t, &MaxFlowOptions::default())
                                .unwrap()
                                .value
                        })
                        .sum::<Weight>()
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{w}x{h}/warm-4-queries")),
            &g,
            |b, g| {
                b.iter(|| {
                    let solver = PlanarSolver::builder(g)
                        .capacities(caps.clone())
                        .build()
                        .unwrap();
                    pairs
                        .iter()
                        .map(|&(s, t)| solver.max_flow(s, t).unwrap().value)
                        .sum::<Weight>()
                })
            },
        );
    }
    group.finish();
}

fn bench_mixed_batch(c: &mut Criterion) {
    let mut group = c.benchmark_group("solver_mixed_batch");
    group.sample_size(10);
    let (w, h) = (10usize, 8usize);
    let g = gen::diag_grid(w, h, 11).unwrap();
    let caps = gen::random_undirected_capacities(g.num_edges(), 1, 9, 5);
    let weights = gen::random_edge_weights(g.num_edges(), 1, 9, 9);
    let (s, t) = (0, g.num_vertices() - 1);

    group.bench_function("cold: flow+global+girth", |b| {
        b.iter(|| {
            let f = max_st_flow(&g, &caps, s, t, &MaxFlowOptions::default())
                .unwrap()
                .value;
            let c2 = global_cut::directed_global_min_cut(&g, &weights)
                .unwrap()
                .value;
            let g2 = girth::weighted_girth(&g, &weights).unwrap().girth;
            black_box(f + c2 + g2)
        })
    });
    group.bench_function("warm: flow+global+girth", |b| {
        b.iter(|| {
            let solver = PlanarSolver::builder(&g)
                .capacities(caps.clone())
                .edge_weights(weights.clone())
                .build()
                .unwrap();
            let f = solver.max_flow(s, t).unwrap().value;
            let c2 = solver.global_min_cut().unwrap().value;
            let g2 = solver.girth().unwrap().girth;
            black_box(f + c2 + g2)
        })
    });
    group.finish();
}

/// The typed batch path: the same heterogeneous workload through
/// `run_batch_on`, serial (1 thread) vs pooled (4 threads). The CONGEST
/// bills are identical by construction; this measures the wall-clock
/// side of the worker pool — the solver is built and its substrate
/// prewarmed once, outside the timed loop, so the sweep isolates pooled
/// marginal execution rather than serial substrate construction.
fn bench_query_batch(c: &mut Criterion) {
    let mut group = c.benchmark_group("solver_query_batch");
    group.sample_size(10);
    let (w, h) = (10usize, 8usize);
    let g = gen::diag_grid(w, h, 11).unwrap();
    let caps = gen::random_undirected_capacities(g.num_edges(), 1, 9, 5);
    let weights = gen::random_edge_weights(g.num_edges(), 1, 9, 9);
    let mut queries: Vec<Query> = query_pairs(&g, w)
        .iter()
        .map(|&(s, t)| Query::MaxFlow { s, t })
        .collect();
    queries.extend([Query::GlobalMinCut, Query::Girth]);

    let solver = PlanarSolver::builder(&g)
        .capacities(caps)
        .edge_weights(weights)
        .build()
        .unwrap();
    // Warm the substrate so every timed iteration measures query
    // execution only.
    assert!(solver.run_batch_on(&queries, 1).all_ok());

    for threads in [1usize, 4] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("6-queries/{threads}-threads")),
            &threads,
            |b, &threads| {
                b.iter(|| black_box(solver.run_batch_on(&queries, threads).rounds.total()))
            },
        );
    }
    group.finish();
}

/// The respec path: scenario-admission latency for a K-spec capacity
/// sweep. Each scenario is "admitted" by standing up a query-ready solver
/// — substrate forced via `labeling_engine()` — and answering one global
/// min cut. Fresh admission pays the diameter measurement + BDD per spec;
/// `respec_capacities` pays them once per sweep and only rebuilds the
/// weight tier (the instance-length labels). This isolates the tier the
/// two-level substrate exists to amortize — in a query-heavy sweep (see
/// `solver_flow_batch`) the per-query labeling dominates both paths, which
/// is exactly the point: respec removes the fixed cost, not the marginal
/// one. The CONGEST-round face of the same sweep is experiment S3.
fn bench_respec_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("solver_respec");
    group.sample_size(10);
    let (w, h) = (16usize, 12usize);
    let g = gen::diag_grid(w, h, 11).unwrap();
    let specs: Vec<Vec<Weight>> = (0..5u64)
        .map(|k| gen::random_undirected_capacities(g.num_edges(), 1, 9, 31 + k))
        .collect();

    group.bench_function("fresh-5-specs", |b| {
        b.iter(|| {
            specs
                .iter()
                .map(|caps| {
                    let solver = PlanarSolver::builder(&g)
                        .capacities(caps.clone())
                        .build()
                        .unwrap();
                    solver.labeling_engine();
                    solver.global_min_cut().unwrap().value
                })
                .sum::<Weight>()
        })
    });
    group.bench_function("respec-5-specs", |b| {
        b.iter(|| {
            let mut solver = PlanarSolver::builder(&g)
                .capacities(specs[0].clone())
                .build()
                .unwrap();
            solver.labeling_engine();
            let mut total = solver.global_min_cut().unwrap().value;
            for caps in &specs[1..] {
                solver = solver.respec_capacities(caps.clone()).unwrap();
                solver.labeling_engine();
                total += solver.global_min_cut().unwrap().value;
            }
            black_box(total)
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_flow_batch,
    bench_mixed_batch,
    bench_query_batch,
    bench_respec_sweep
);
criterion_main!(benches);
