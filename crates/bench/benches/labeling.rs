//! Criterion benches for the dual distance-labeling pipeline (F5 and the
//! per-probe cost inside F1).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use duality_congest::{CostLedger, CostModel};
use duality_labeling::DualSsspEngine;
use duality_planar::gen;

fn bench_labeling(c: &mut Criterion) {
    let mut group = c.benchmark_group("dual_labels");
    group.sample_size(10);
    for (w, h) in [(8usize, 8usize), (12, 8), (16, 10)] {
        let g = gen::diag_grid(w, h, 11).unwrap();
        let cm = CostModel::new(g.num_vertices(), g.diameter());
        let mut ledger = CostLedger::new();
        let engine = DualSsspEngine::new(&g, &cm, None, &mut ledger);
        let lengths: Vec<i64> = (0..g.num_darts()).map(|i| (i as i64 % 9) + 1).collect();
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{w}x{h}")),
            &engine,
            |b, engine| {
                b.iter(|| {
                    let mut l = CostLedger::new();
                    engine.labels(&lengths, &mut l).unwrap();
                    l.total()
                })
            },
        );
    }
    group.finish();
}

fn bench_engine_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_build");
    group.sample_size(10);
    let g = gen::diag_grid(12, 10, 11).unwrap();
    let cm = CostModel::new(g.num_vertices(), g.diameter());
    group.bench_function("12x10", |b| {
        b.iter(|| {
            let mut ledger = CostLedger::new();
            DualSsspEngine::new(&g, &cm, None, &mut ledger);
            ledger.total()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_labeling, bench_engine_build);
criterion_main!(benches);
