//! Criterion benches for the girth and global-cut pipelines (F3/F4
//! wall-clock counterparts).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use duality_core::{girth::weighted_girth, global_cut::directed_global_min_cut};
use duality_planar::gen;

fn bench_girth(c: &mut Criterion) {
    let mut group = c.benchmark_group("weighted_girth");
    group.sample_size(10);
    for n in [8usize, 12, 16] {
        let g = gen::diag_grid(n, n, 5).unwrap();
        let w = gen::random_edge_weights(g.num_edges(), 1, 50, 9);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{n}x{n}")),
            &g,
            |b, g| b.iter(|| weighted_girth(g, &w).unwrap().girth),
        );
    }
    group.finish();
}

fn bench_global_cut(c: &mut Criterion) {
    let mut group = c.benchmark_group("directed_global_min_cut");
    group.sample_size(10);
    for (w, h) in [(6usize, 5usize), (8, 6)] {
        let g = gen::diag_grid(w, h, 5).unwrap();
        let weights = gen::random_edge_weights(g.num_edges(), 1, 30, 9);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{w}x{h}")),
            &g,
            |b, g| b.iter(|| directed_global_min_cut(g, &weights).unwrap().value),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_girth, bench_global_cut);
criterion_main!(benches);
