//! Criterion benches for the substrates: embedding + faces, the
//! face-disjoint graph `Ĝ`, and BDD construction (T4/T5 wall-clock
//! counterparts).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use duality_bdd::{Bdd, BddOptions};
use duality_congest::{CostLedger, CostModel};
use duality_overlay::FaceDisjointGraph;
use duality_planar::gen;

fn bench_embedding(c: &mut Criterion) {
    let mut group = c.benchmark_group("embedding");
    for n in [16usize, 24, 32] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{n}x{n}")),
            &n,
            |b, &n| b.iter(|| gen::diag_grid(n, n, 3).unwrap().num_faces()),
        );
    }
    group.finish();
}

fn bench_face_disjoint_graph(c: &mut Criterion) {
    let mut group = c.benchmark_group("face_disjoint_graph");
    for n in [16usize, 24, 32] {
        let g = gen::diag_grid(n, n, 3).unwrap();
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{n}x{n}")),
            &g,
            |b, g| b.iter(|| FaceDisjointGraph::new(g).num_face_cycles()),
        );
    }
    group.finish();
}

fn bench_bdd_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("bdd_build");
    group.sample_size(10);
    for n in [12usize, 16, 24] {
        let g = gen::diag_grid(n, n, 3).unwrap();
        let cm = CostModel::new(g.num_vertices(), g.diameter());
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{n}x{n}")),
            &g,
            |b, g| {
                b.iter(|| {
                    let mut ledger = CostLedger::new();
                    Bdd::build(g, &BddOptions::default(), &cm, &mut ledger).depth()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_embedding,
    bench_face_disjoint_graph,
    bench_bdd_build
);
criterion_main!(benches);
