//! Criterion benches for the flow pipelines (experiments F1/F2/T2
//! wall-clock counterparts).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use duality_core::approx_flow::approx_max_st_flow;
use duality_core::max_flow::{max_st_flow, MaxFlowOptions};
use duality_planar::gen;

fn bench_exact_flow(c: &mut Criterion) {
    let mut group = c.benchmark_group("exact_max_flow");
    group.sample_size(10);
    for (w, h) in [(6usize, 6usize), (10, 6), (14, 6)] {
        let g = gen::diag_grid(w, h, 7).unwrap();
        let caps = gen::random_directed_capacities(g.num_edges(), 1, 8, 3);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{w}x{h}")),
            &g,
            |b, g| {
                b.iter(|| {
                    max_st_flow(
                        g,
                        &caps,
                        0,
                        g.num_vertices() - 1,
                        &MaxFlowOptions::default(),
                    )
                    .unwrap()
                    .value
                })
            },
        );
    }
    group.finish();
}

fn bench_approx_flow(c: &mut Criterion) {
    let mut group = c.benchmark_group("approx_max_flow");
    group.sample_size(10);
    let g = gen::diag_grid(12, 8, 7).unwrap();
    let caps = gen::random_undirected_capacities(g.num_edges(), 1, 20, 3);
    for k in [0u64, 2, 8] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("eps_inv_{k}")),
            &k,
            |b, &k| b.iter(|| approx_max_st_flow(&g, &caps, 0, 11, k).unwrap().value_numer),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_exact_flow, bench_approx_flow);
criterion_main!(benches);
