//! Property-based tests: every headline algorithm agrees with its
//! centralized reference on randomized planar instances.

use duality_baselines::cuts::planar_directed_min_cut_reference;
use duality_baselines::flow::planar_max_flow_reference;
use duality_baselines::girth::planar_weighted_girth;
use duality_core::{approx_flow, girth, global_cut, max_flow, verify};
use duality_planar::{gen, Weight};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Exact max flow equals Dinic and the assignment is feasible, for
    /// random capacities (including zeros) on random triangulated grids.
    #[test]
    fn max_flow_matches_dinic(
        w in 3usize..6,
        h in 3usize..5,
        seed in 0u64..10_000,
        lo in 0i64..2,
        hi in 3i64..15,
    ) {
        let g = gen::diag_grid(w, h, seed).unwrap();
        let caps = gen::random_directed_capacities(g.num_edges(), lo, hi, seed + 1);
        let (s, t) = (0, g.num_vertices() - 1);
        let r = max_flow::max_st_flow(&g, &caps, s, t, &Default::default()).unwrap();
        prop_assert_eq!(r.value, planar_max_flow_reference(&g, &caps, s, t));
        verify::assert_valid_flow(&g, &caps, &r.flow, s, t, r.value);
    }

    /// Max flow with both darts capacitated (antiparallel pairs).
    #[test]
    fn max_flow_antiparallel(
        n in 8usize..20,
        seed in 0u64..10_000,
    ) {
        let g = gen::apollonian(n, seed).unwrap();
        let caps = gen::random_edge_weights(2 * g.num_edges(), 0, 9, seed + 2);
        let (s, t) = (0, n - 1);
        let r = max_flow::max_st_flow(&g, &caps, s, t, &Default::default()).unwrap();
        prop_assert_eq!(r.value, planar_max_flow_reference(&g, &caps, s, t));
        verify::assert_valid_flow(&g, &caps, &r.flow, s, t, r.value);
    }

    /// The approximate st-planar flow is always feasible (exact rational
    /// arithmetic) and within its guarantee.
    #[test]
    fn approx_flow_feasible_and_tight(
        w in 4usize..7,
        h in 3usize..5,
        seed in 0u64..10_000,
        k in 1u64..10,
    ) {
        let g = gen::diag_grid(w, h, seed).unwrap();
        let caps = gen::random_undirected_capacities(g.num_edges(), 0, 20, seed + 3);
        let (s, t) = (0, w - 1); // two top corners share the outer face
        let r = approx_flow::approx_max_st_flow(&g, &caps, s, t, k).unwrap();
        for d in g.darts() {
            prop_assert_eq!(r.flow_numer[d.index()], -r.flow_numer[d.rev().index()]);
            prop_assert!(r.flow_numer[d.index()] <= caps[d.index()] * r.denom);
        }
        for v in 0..g.num_vertices() {
            let net: Weight = g.out_darts(v).iter().map(|&d| r.flow_numer[d.index()]).sum();
            if v == s {
                prop_assert_eq!(net, r.value_numer);
            } else if v == t {
                prop_assert_eq!(net, -r.value_numer);
            } else {
                prop_assert_eq!(net, 0);
            }
        }
        let exact = planar_max_flow_reference(&g, &caps, s, t);
        let kk = k as Weight;
        prop_assert!(r.value_numer <= exact * r.denom);
        prop_assert!(r.value_numer * (kk + 1) >= exact * r.denom * kk);
    }

    /// Directed global min cut equals the centralized dual-cycle reference
    /// and its bisection pays exactly the reported weight.
    #[test]
    fn global_cut_matches_reference(
        w in 3usize..6,
        h in 3usize..5,
        seed in 0u64..10_000,
        wmax in 1i64..20,
    ) {
        let g = gen::diag_grid(w, h, seed).unwrap();
        let weights = gen::random_edge_weights(g.num_edges(), 0, wmax, seed + 5);
        let r = global_cut::directed_global_min_cut(&g, &weights).unwrap();
        prop_assert_eq!(Some(r.value), planar_directed_min_cut_reference(&g, &weights));
        let mut caps = vec![0; g.num_darts()];
        for (e, &x) in weights.iter().enumerate() {
            caps[2 * e] = x;
        }
        prop_assert_eq!(verify::directed_cut_capacity(&g, &caps, &r.side), r.value);
    }

    /// Weighted girth equals the centralized reference and the certificate
    /// cycle has exactly the reported weight.
    #[test]
    fn girth_matches_reference(
        w in 3usize..7,
        h in 3usize..6,
        seed in 0u64..10_000,
        wmax in 1i64..30,
    ) {
        let g = gen::diag_grid(w, h, seed).unwrap();
        let weights = gen::random_edge_weights(g.num_edges(), 1, wmax, seed + 7);
        let r = girth::weighted_girth(&g, &weights).unwrap();
        prop_assert_eq!(Some(r.girth), planar_weighted_girth(&g, &weights));
        let total: Weight = r.cycle_edges.iter().map(|&e| weights[e]).sum();
        prop_assert_eq!(total, r.girth);
    }

    /// Flow value is monotone in capacities (a classic flow invariant the
    /// whole pipeline must preserve).
    #[test]
    fn flow_monotone_in_capacity(
        w in 3usize..5,
        h in 3usize..5,
        seed in 0u64..10_000,
        bump in 1i64..5,
    ) {
        let g = gen::diag_grid(w, h, seed).unwrap();
        let caps = gen::random_directed_capacities(g.num_edges(), 1, 9, seed);
        let more: Vec<Weight> = caps.iter().map(|&c| if c > 0 { c + bump } else { c }).collect();
        let (s, t) = (0, g.num_vertices() - 1);
        let a = max_flow::max_st_flow(&g, &caps, s, t, &Default::default()).unwrap();
        let b = max_flow::max_st_flow(&g, &more, s, t, &Default::default()).unwrap();
        prop_assert!(b.value >= a.value);
    }
}
