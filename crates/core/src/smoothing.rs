//! Smooth approximate distances (paper, Section 6.1; Rozhoň–Haeupler–
//! Martinsson–Grunau–Zuzic).
//!
//! Hassin's flow assignment sets `flow(d) = δ(face(rev d)) − δ(face(d))`
//! from approximate dual distances `δ`. For the assignment to respect
//! capacities, `δ` must be *`(1+ε)`-smooth*: `δ(v) − δ(u) ≤ (1+ε)·dist(u,v)`
//! for all `u, v` (Definition 4.2 of Rozhoň et al.) — plain approximate
//! distances do **not** satisfy this, and [`is_smooth`]'s test-suite
//! exhibits a non-smooth `(1+ε)`-approximation that violates capacities.
//!
//! This module provides the workspace's realization of a genuinely
//! `(1+1/k)`-smooth approximate oracle, [`smooth_distances_by_quantization`]:
//! run the *exact* oracle on capacities rounded up to `c̃ = c + ⌊c/k⌋`.
//! Exact distances are 1-smooth with respect to `c̃`, hence `(1+1/k)`-smooth
//! with respect to `c`, and `dist_c ≤ d̃ ≤ (1+1/k)·dist_c`. `DESIGN.md` §3
//! documents this as the substitution for the full level-graph transform of
//! Rozhoň et al. (whose distributed implementation cost is charged by
//! `CostModel::approx_sssp_minor_aggregation_rounds`).

use duality_planar::{Weight, INF};

/// A weighted arc list over `n` nodes: `(from, to, weight)`.
pub type Arcs = Vec<(usize, usize, Weight)>;

/// Checks `(1 + 1/k)`-smoothness of `dist` (k = 0 means exactly 1-smooth):
/// for every arc `(u, v, w)`, `k·(dist[v] − dist[u]) ≤ (k+1)·w` — the
/// arc-local form, which by induction along shortest paths implies the
/// pairwise definition.
pub fn is_smooth(n: usize, arcs: &Arcs, dist: &[Weight], k: Weight) -> bool {
    assert_eq!(dist.len(), n);
    let (num, den) = if k > 0 { (k + 1, k) } else { (1, 1) };
    arcs.iter().all(|&(u, v, w)| {
        if dist[u] >= INF / 2 || dist[v] >= INF / 2 {
            return true;
        }
        den * (dist[v] - dist[u]) <= num * w
    })
}

/// Exact Dijkstra over an arc list (the oracle the quantization wraps).
pub fn dijkstra(n: usize, arcs: &Arcs, source: usize) -> Vec<Weight> {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    let mut adj = vec![Vec::new(); n];
    for &(u, v, w) in arcs {
        debug_assert!(w >= 0);
        adj[u].push((v, w));
    }
    let mut dist = vec![INF; n];
    let mut heap = BinaryHeap::new();
    dist[source] = 0;
    heap.push(Reverse((0, source)));
    while let Some(Reverse((du, u))) = heap.pop() {
        if du > dist[u] {
            continue;
        }
        for &(v, w) in &adj[u] {
            if du + w < dist[v] {
                dist[v] = du + w;
                heap.push(Reverse((du + w, v)));
            }
        }
    }
    dist
}

/// Produces `(1 + 1/k)`-smooth, `(1 + 1/k)`-approximate distances from
/// `source` by quantizing every weight up to `w + ⌊w/k⌋` and running the
/// exact oracle (`k = 0`: exact distances, trivially smooth).
///
/// Guarantees (tested):
/// * `dist(u) ≤ out[u] ≤ (1 + 1/k)·dist(u)`,
/// * [`is_smooth`]`(…, k)` holds.
pub fn smooth_distances_by_quantization(
    n: usize,
    arcs: &Arcs,
    source: usize,
    k: Weight,
) -> Vec<Weight> {
    assert!(k >= 0);
    let quantized: Arcs = arcs
        .iter()
        .map(|&(u, v, w)| (u, v, if k > 0 { w + w / k } else { w }))
        .collect();
    dijkstra(n, &quantized, source)
}

/// A deliberately *non-smooth* `(1+α)`-approximation used by the tests to
/// demonstrate why Hassin's assignment needs smoothing: it inflates every
/// distance by the worst-case factor except at odd-indexed nodes.
pub fn adversarial_approximation(exact: &[Weight], num: Weight, den: Weight) -> Vec<Weight> {
    exact
        .iter()
        .enumerate()
        .map(|(i, &d)| {
            if d >= INF / 2 {
                d
            } else if i % 2 == 0 {
                d * num / den
            } else {
                d
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A long path with unit arcs: the classic smoothness counterexample.
    fn unit_path(n: usize) -> Arcs {
        (0..n - 1).map(|i| (i, i + 1, 1)).collect()
    }

    #[test]
    fn exact_distances_are_smooth() {
        let arcs = unit_path(20);
        let d = dijkstra(20, &arcs, 0);
        assert!(is_smooth(20, &arcs, &d, 0));
        assert!(is_smooth(20, &arcs, &d, 5));
    }

    #[test]
    fn adversarial_approximation_is_not_smooth() {
        // 10% inflation on even nodes: each even node sits ~0.1·i above its
        // odd neighbour — across a unit arc this eventually exceeds
        // (1+1/k)·w for any fixed k. This is exactly the paper's example of
        // why an approximate SSSP cannot be used for flow assignment as-is.
        let n = 60;
        let arcs = unit_path(n);
        let exact = dijkstra(n, &arcs, 0);
        let approx = adversarial_approximation(&exact, 11, 10);
        // It *is* a valid (1+0.1)-approximation...
        for (a, e) in approx.iter().zip(&exact) {
            assert!(e <= a && *a * 10 <= e * 11);
        }
        // ...but not smooth at any reasonable k.
        assert!(!is_smooth(n, &arcs, &approx, 5));
        assert!(!is_smooth(n, &arcs, &approx, 2));
    }

    #[test]
    fn quantized_distances_are_smooth_and_close() {
        let n = 40;
        let mut arcs = unit_path(n);
        // Add some heavier shortcuts.
        for i in (0..n - 5).step_by(5) {
            arcs.push((i, i + 5, 4));
        }
        let exact = dijkstra(n, &arcs, 0);
        for k in [1, 2, 4, 8] {
            let smooth = smooth_distances_by_quantization(n, &arcs, 0, k);
            assert!(is_smooth(n, &arcs, &smooth, k), "k = {k}");
            for (s, e) in smooth.iter().zip(&exact) {
                assert!(e <= s, "never below exact");
                assert!(*s * k <= e * (k + 1), "within (1+1/{k})");
            }
        }
    }

    #[test]
    fn smoothness_propagates_to_potential_differences() {
        // The property Hassin's assignment needs: for any arc (u,v,w),
        // k·(δ(v)−δ(u)) ≤ (k+1)·w, i.e. the scaled potential difference
        // respects the scaled capacity.
        let n = 30;
        let arcs: Arcs = (0..n - 1)
            .map(|i| (i, i + 1, (i as Weight % 5) + 1))
            .chain((0..n - 1).map(|i| (i + 1, i, (i as Weight % 5) + 1)))
            .collect();
        let k = 3;
        let d = smooth_distances_by_quantization(n, &arcs, 0, k);
        for &(u, v, w) in &arcs {
            assert!(k * (d[v] - d[u]) <= (k + 1) * w);
        }
    }

    #[test]
    fn unreachable_nodes_stay_infinite() {
        let arcs: Arcs = vec![(0, 1, 3)];
        let d = smooth_distances_by_quantization(3, &arcs, 0, 2);
        assert!(d[2] >= INF / 2);
        assert!(is_smooth(3, &arcs, &d, 2));
    }
}
