//! The one error type of the public façade.
//!
//! Before the [`crate::solver`] subsystem existed, every pipeline spoke its
//! own dialect: [`crate::max_flow::FlowError`],
//! [`crate::approx_flow::StPlanarError`], `duality_planar::PlanarError`,
//! `duality_labeling::LabelingError`, and ad-hoc `Option` returns for the
//! global cut and girth. [`DualityError`] collapses all of them: solver
//! methods return it exclusively, `From` impls lift every per-module error,
//! and `source()` chains back to the underlying cause where one exists.

use crate::approx_flow::StPlanarError;
use crate::max_flow::FlowError;
use duality_labeling::LabelingError;
use duality_planar::PlanarError;

/// Endpoint placeholder used when lifting legacy, context-free errors
/// (`FlowError::BadEndpoints`, `StPlanarError::NotStPlanar`) that do not
/// carry the offending vertices. `Display` omits endpoint numbers when it
/// appears, so no fabricated values reach diagnostics.
pub const ENDPOINT_UNKNOWN: usize = usize::MAX;

/// Any failure of the `duality` façade.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum DualityError {
    /// The embedding substrate rejected the input graph or an augmentation.
    Planar(PlanarError),
    /// The labeling engine failed (today: an unexpected negative cycle).
    Labeling(LabelingError),
    /// `s == t` or an endpoint is out of range.
    BadEndpoints {
        /// The requested source.
        s: usize,
        /// The requested sink.
        t: usize,
        /// The number of vertices of the instance.
        n: usize,
    },
    /// A per-dart capacity is negative.
    NegativeCapacity {
        /// The offending dart index.
        dart: usize,
    },
    /// A per-edge weight is negative.
    NegativeWeight {
        /// The offending edge index.
        edge: usize,
    },
    /// A per-edge weight is zero where a positive one is required
    /// (cycle–cut duality needs positive weights).
    NonPositiveWeight {
        /// The offending edge index.
        edge: usize,
    },
    /// The capacity vector length does not match the dart count.
    CapacityLengthMismatch {
        /// `2 * num_edges` of the instance.
        expected: usize,
        /// The provided length.
        got: usize,
    },
    /// The weight vector length does not match the edge count.
    WeightLengthMismatch {
        /// `num_edges` of the instance.
        expected: usize,
        /// The provided length.
        got: usize,
    },
    /// The builder was given neither capacities nor edge weights.
    MissingInput,
    /// The requested BDD leaf threshold is below
    /// [`crate::solver::MIN_LEAF_THRESHOLD`]: a leaf must be allowed to
    /// hold at least two edges or the decomposition cannot terminate.
    BadLeafThreshold {
        /// The rejected threshold.
        got: usize,
    },
    /// Capacities are not symmetric per edge: the st-planar pipeline needs
    /// an undirected instance.
    NotUndirected,
    /// `s` and `t` share no face, so Hassin's reduction does not apply.
    NotStPlanar {
        /// The requested source.
        s: usize,
        /// The requested sink.
        t: usize,
    },
    /// The instance is too small for the query (e.g. a global cut of a
    /// single vertex).
    TooSmall {
        /// Vertices the query needs.
        needed: usize,
        /// Vertices the instance has.
        vertices: usize,
    },
    /// The instance is acyclic, so it has no girth.
    Acyclic,
    /// `PlanarSolver::respec` was handed an instance that does not share
    /// the solver's graph allocation: the topology substrate (dual graph,
    /// BDD, dual bags) is only reusable for the *same* shared embedding.
    /// Build the instance with `PlanarInstance::with_capacities` /
    /// `with_edge_weights`, or build a fresh solver.
    TopologyMismatch,
    /// A keyed `SolverPool` lookup named an instance the pool has never
    /// admitted (or has since evicted); submit the instance itself to
    /// (re)admit it.
    UnknownInstanceKey,
}

impl std::fmt::Display for DualityError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DualityError::Planar(e) => write!(f, "planar substrate error: {e}"),
            DualityError::Labeling(e) => write!(f, "labeling error: {e}"),
            DualityError::BadEndpoints { s, t, n } => {
                if *s == ENDPOINT_UNKNOWN || *t == ENDPOINT_UNKNOWN {
                    write!(f, "invalid source/sink pair")
                } else {
                    write!(f, "invalid endpoints s = {s}, t = {t} for {n} vertices")
                }
            }
            DualityError::NegativeCapacity { dart } => {
                write!(f, "negative capacity on dart {dart}")
            }
            DualityError::NegativeWeight { edge } => {
                write!(f, "negative weight on edge {edge}")
            }
            DualityError::NonPositiveWeight { edge } => {
                write!(f, "weight of edge {edge} must be positive for this query")
            }
            DualityError::CapacityLengthMismatch { expected, got } => {
                write!(f, "expected {expected} per-dart capacities, got {got}")
            }
            DualityError::WeightLengthMismatch { expected, got } => {
                write!(f, "expected {expected} per-edge weights, got {got}")
            }
            DualityError::MissingInput => {
                write!(f, "the solver needs capacities and/or edge weights")
            }
            DualityError::BadLeafThreshold { got } => {
                write!(
                    f,
                    "BDD leaf threshold {got} is invalid: a leaf must be allowed \
                     to hold at least 2 edges"
                )
            }
            DualityError::NotUndirected => {
                write!(f, "capacities must be symmetric and non-negative")
            }
            DualityError::NotStPlanar { s, t } => {
                if *s == ENDPOINT_UNKNOWN || *t == ENDPOINT_UNKNOWN {
                    write!(f, "s and t do not share a face")
                } else {
                    write!(f, "s = {s} and t = {t} do not share a face")
                }
            }
            DualityError::TooSmall { needed, vertices } => {
                write!(
                    f,
                    "query needs at least {needed} vertices, instance has {vertices}"
                )
            }
            DualityError::Acyclic => write!(f, "the instance is acyclic (no girth)"),
            DualityError::TopologyMismatch => {
                write!(
                    f,
                    "respec requires an instance sharing the solver's graph \
                     allocation (use PlanarInstance::with_capacities / \
                     with_edge_weights)"
                )
            }
            DualityError::UnknownInstanceKey => {
                write!(
                    f,
                    "no cached solver under this instance key (never admitted \
                     or already evicted)"
                )
            }
        }
    }
}

impl std::error::Error for DualityError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DualityError::Planar(e) => Some(e),
            DualityError::Labeling(e) => Some(e),
            _ => None,
        }
    }
}

/// Maps façade errors back onto the legacy flow dialect — the single
/// mapping the `max_st_flow` / `exact_min_st_cut` wrappers share.
///
/// # Panics
///
/// Panics on variants the flow/cut wrappers rule out by prior validation.
pub(crate) fn to_flow_error(e: DualityError) -> FlowError {
    match e {
        DualityError::BadEndpoints { .. } => FlowError::BadEndpoints,
        DualityError::NegativeCapacity { dart } => FlowError::NegativeCapacity { dart },
        other => unreachable!("flow wrapper validated its inputs: {other}"),
    }
}

/// Maps façade errors back onto the legacy st-planar dialect — shared by
/// the `approx_max_st_flow` / `approx_min_st_cut` wrappers.
///
/// # Panics
///
/// Panics on variants the st-planar wrappers rule out by prior validation
/// (mirroring [`to_flow_error`], so invariant violations surface loudly
/// instead of masquerading as symmetry failures).
pub(crate) fn to_st_planar_error(e: DualityError) -> StPlanarError {
    match e {
        DualityError::NotStPlanar { .. } | DualityError::BadEndpoints { .. } => {
            StPlanarError::NotStPlanar
        }
        DualityError::NotUndirected | DualityError::NegativeCapacity { .. } => {
            StPlanarError::NotUndirected
        }
        other => unreachable!("st-planar wrapper validated its inputs: {other}"),
    }
}

impl From<PlanarError> for DualityError {
    fn from(e: PlanarError) -> Self {
        DualityError::Planar(e)
    }
}

impl From<LabelingError> for DualityError {
    fn from(e: LabelingError) -> Self {
        DualityError::Labeling(e)
    }
}

impl From<FlowError> for DualityError {
    fn from(e: FlowError) -> Self {
        match e {
            FlowError::BadEndpoints => DualityError::BadEndpoints {
                s: ENDPOINT_UNKNOWN,
                t: ENDPOINT_UNKNOWN,
                n: 0,
            },
            FlowError::NegativeCapacity { dart } => DualityError::NegativeCapacity { dart },
        }
    }
}

impl From<StPlanarError> for DualityError {
    fn from(e: StPlanarError) -> Self {
        match e {
            StPlanarError::NotStPlanar => DualityError::NotStPlanar {
                s: ENDPOINT_UNKNOWN,
                t: ENDPOINT_UNKNOWN,
            },
            StPlanarError::NotUndirected => DualityError::NotUndirected,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let cases: Vec<(DualityError, &str)> = vec![
            (
                DualityError::BadEndpoints { s: 2, t: 2, n: 9 },
                "invalid endpoints s = 2, t = 2 for 9 vertices",
            ),
            (
                DualityError::NegativeCapacity { dart: 3 },
                "negative capacity on dart 3",
            ),
            (DualityError::Acyclic, "the instance is acyclic (no girth)"),
            (
                DualityError::BadLeafThreshold { got: 1 },
                "BDD leaf threshold 1 is invalid: a leaf must be allowed to hold at least 2 edges",
            ),
            (
                DualityError::TooSmall {
                    needed: 2,
                    vertices: 1,
                },
                "query needs at least 2 vertices, instance has 1",
            ),
        ];
        for (err, msg) in cases {
            assert_eq!(err.to_string(), msg);
        }
    }

    #[test]
    fn source_chains_to_the_underlying_error() {
        use std::error::Error;
        let e = DualityError::from(PlanarError::Disconnected);
        assert!(e.source().is_some());
        assert_eq!(e.source().unwrap().to_string(), "graph is not connected");
        let e = DualityError::from(LabelingError::NegativeCycle { bag: 4 });
        assert!(e.source().is_some());
        assert!(e.to_string().contains("bag 4"));
        assert!(DualityError::Acyclic.source().is_none());
    }

    #[test]
    fn from_impls_lift_legacy_errors() {
        assert_eq!(
            DualityError::from(FlowError::NegativeCapacity { dart: 7 }),
            DualityError::NegativeCapacity { dart: 7 }
        );
        assert_eq!(
            DualityError::from(StPlanarError::NotUndirected),
            DualityError::NotUndirected
        );
        assert!(matches!(
            DualityError::from(FlowError::BadEndpoints),
            DualityError::BadEndpoints { .. }
        ));
    }

    #[test]
    fn lifted_context_free_errors_display_without_fabricated_numbers() {
        assert_eq!(
            DualityError::from(FlowError::BadEndpoints).to_string(),
            "invalid source/sink pair"
        );
        assert_eq!(
            DualityError::from(StPlanarError::NotStPlanar).to_string(),
            "s and t do not share a face"
        );
    }
}
