//! `(1−ε)`-approximate maximum st-flow in undirected *st-planar* graphs in
//! `D·n^{o(1)}` rounds (paper, Theorem 1.3).
//!
//! Hassin's reduction: embed an artificial edge `e = (t, s)` inside a face
//! containing both `s` and `t`, splitting it into faces `f₁, f₂`; then the
//! max st-flow equals `dist(f₁, f₂)` in the dual of `G ∪ {e}` with lengths
//! = capacities, and the shortest-path potentials give a flow assignment
//! `flow(d) = δ(face(rev d)) − δ(face(d))`.
//!
//! The distributed SSSP oracle is `(1+ε)`-approximate, and the assignment
//! needs the approximate distances to be *smooth* (satisfy the triangle
//! inequality within `1+ε` — Rozhoň et al., simulated in the
//! minor-aggregation model per Section 6.1). We realize a genuinely
//! `(1+1/k)`-smooth oracle by rounding every capacity up to
//! `c̃ = c + ⌊c/k⌋` and running the exact oracle on `c̃`: exact distances
//! are 1-smooth w.r.t. `c̃`, hence `(1+1/k)`-smooth w.r.t. `c`. Flows are
//! reported as exact rationals `numer/denom` with `denom = k+1`, making
//! every feasibility check exact integer arithmetic. Zero-capacity edges
//! are handled by the paper's contraction trick (executed for real in the
//! minor-aggregation model).

use crate::solver::PlanarSolver;
use duality_congest::{CostLedger, CostModel};
use duality_minor_agg::{MaEdge, MinorAgg};
use duality_planar::{dual::DualView, Dart, FaceId, PlanarGraph, Weight};

/// Errors from the approximate flow pipeline.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StPlanarError {
    /// `s` and `t` do not lie on a common face (the instance is not
    /// st-planar), or endpoints are invalid.
    NotStPlanar,
    /// Capacities are not symmetric per edge (the instance must be
    /// undirected) or negative.
    NotUndirected,
}

impl std::fmt::Display for StPlanarError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StPlanarError::NotStPlanar => write!(f, "s and t do not share a face"),
            StPlanarError::NotUndirected => {
                write!(f, "capacities must be symmetric and non-negative")
            }
        }
    }
}

impl std::error::Error for StPlanarError {}

/// Result of the approximate st-planar max-flow: a rational flow
/// `flow_numer[d] / denom` per dart.
#[derive(Clone, Debug)]
pub struct ApproxFlowResult {
    /// Flow value numerator (value = `value_numer / denom`).
    pub value_numer: Weight,
    /// Common denominator (`k + 1` for approximation parameter `ε = 1/k`;
    /// 1 in exact mode).
    pub denom: Weight,
    /// Per-dart flow numerators (antisymmetric).
    pub flow_numer: Vec<Weight>,
    /// The two dual faces created by the artificial edge.
    pub f1: FaceId,
    /// See [`ApproxFlowResult::f1`].
    pub f2: FaceId,
    /// CONGEST rounds charged.
    pub ledger: CostLedger,
}

/// Computes a `(1 − 1/(k+1))`-approximate maximum st-flow of an undirected
/// st-planar instance. `eps_inverse = k ≥ 1` selects the approximation
/// (`ε = 1/k`); `k = 0` runs the exact-oracle substitution (`denom = 1`).
///
/// `caps` are per-dart capacities with `caps[2e] == caps[2e+1]`.
///
/// # Errors
///
/// [`StPlanarError::NotStPlanar`] if `s`, `t` share no face;
/// [`StPlanarError::NotUndirected`] on asymmetric or negative capacities.
///
/// # Example
///
/// ```
/// use duality_core::approx_flow::approx_max_st_flow;
/// use duality_planar::gen;
///
/// let g = gen::grid(4, 4).unwrap();
/// let caps = gen::random_undirected_capacities(g.num_edges(), 1, 5, 2);
/// // Corners 0 and 12 both lie on the outer face.
/// let r = approx_max_st_flow(&g, &caps, 0, 12, 0).unwrap();
/// assert!(r.value_numer > 0);
/// ```
pub fn approx_max_st_flow(
    g: &PlanarGraph,
    caps: &[Weight],
    s: usize,
    t: usize,
    eps_inverse: u64,
) -> Result<ApproxFlowResult, StPlanarError> {
    validate_st_planar(g, caps, s, t)?;
    // One-shot wrapper over the solver's query layer (`Query::ApproxMaxFlow`
    // via the `approx_max_flow` inherent method).
    let solver = PlanarSolver::builder(g)
        .capacities(caps)
        .build()
        .expect("inputs validated above");
    let r = solver
        .approx_max_flow(s, t, eps_inverse)
        .map_err(crate::error::to_st_planar_error)?;
    Ok(ApproxFlowResult {
        value_numer: r.value_numer,
        denom: r.denom,
        flow_numer: r.flow_numer,
        f1: r.f1,
        f2: r.f2,
        ledger: r.rounds.into_ledger(),
    })
}

/// Shared validation of the two legacy st-planar entry points: endpoints
/// distinct and in range, capacities symmetric and non-negative.
///
/// # Panics
///
/// Panics if `caps` is not one capacity per dart.
pub(crate) fn validate_st_planar(
    g: &PlanarGraph,
    caps: &[Weight],
    s: usize,
    t: usize,
) -> Result<(), StPlanarError> {
    assert_eq!(caps.len(), g.num_darts());
    if s == t || s >= g.num_vertices() || t >= g.num_vertices() {
        return Err(StPlanarError::NotStPlanar);
    }
    for e in 0..g.num_edges() {
        if caps[2 * e] != caps[2 * e + 1] || caps[2 * e] < 0 {
            return Err(StPlanarError::NotUndirected);
        }
    }
    Ok(())
}

/// Hassin's pipeline proper, shared by the solver and the legacy wrapper.
/// Inputs are pre-validated except st-planarity, which is discovered here.
pub(crate) struct ApproxFlowOutcome {
    pub value_numer: Weight,
    pub denom: Weight,
    pub flow_numer: Vec<Weight>,
    pub f1: FaceId,
    pub f2: FaceId,
}

pub(crate) fn run_approx_flow(
    g: &PlanarGraph,
    cm: &CostModel,
    caps: &[Weight],
    s: usize,
    t: usize,
    eps_inverse: u64,
    ledger: &mut CostLedger,
) -> Result<ApproxFlowOutcome, StPlanarError> {
    // Locate a common face of s and t (one PA on Ĝ — paper, Section 6.1).
    ledger.charge("find-common-face", cm.dual_part_wise_aggregation());
    let common = g.faces().find(|&f| {
        let mut has_s = false;
        let mut has_t = false;
        for &d in g.face_darts(f) {
            has_s |= g.tail(d) == s;
            has_t |= g.tail(d) == t;
        }
        has_s && has_t
    });
    let Some(face) = common else {
        return Err(StPlanarError::NotStPlanar);
    };

    // Augment: e = (t, s) inside that face.
    let aug = g
        .insert_edge_in_face(t, s, face)
        .expect("both endpoints lie on the face");
    let new_edge = g.num_edges();
    let f1 = aug.face_of(Dart::forward(new_edge));
    let f2 = aug.face_of(Dart::backward(new_edge));
    debug_assert_ne!(f1, f2, "the artificial edge splits its face");

    // Quantized capacities: c̃ = c + ⌊c/k⌋ (k = 0 ⇒ exact).
    let k = eps_inverse as Weight;
    // The (1+1/k)-smooth oracle's quantization — see `crate::smoothing`
    // for the standalone, property-tested form.
    let quantize = |c: Weight| if k > 0 { c + c / k } else { c };
    let big: Weight = (0..g.num_edges())
        .map(|e| quantize(caps[2 * e]))
        .sum::<Weight>()
        + 1;
    let mut lengths = vec![0; aug.num_darts()];
    for e in 0..g.num_edges() {
        lengths[2 * e] = quantize(caps[2 * e]);
        lengths[2 * e + 1] = quantize(caps[2 * e + 1]);
    }
    lengths[2 * new_edge] = big;
    lengths[2 * new_edge + 1] = big;

    // Minor-aggregation pipeline on (G ∪ {e})*: contract zero-weight dual
    // edges, run the approximate-SSSP oracle (black box), smooth transform
    // wrapper (O(log n) oracle calls — Rozhoň et al.), expand.
    let ma_edges: Vec<MaEdge> = (0..aug.num_edges())
        .map(|e| {
            let d = Dart::forward(e);
            MaEdge {
                u: aug.face_of(d).index(),
                v: aug.face_of(d.rev()).index(),
                weight: lengths[d.index()],
            }
        })
        .collect();
    let mut ma = MinorAgg::new(aug.num_faces(), ma_edges);
    ma.contract(|e| e.weight == 0);
    let oracle = cm.approx_sssp_minor_aggregation_rounds(eps_inverse.max(1));
    ma.add_black_box_rounds((2 * cm.log_n() + 1) * oracle);
    // The artificial-edge reduction adds O(1) virtual nodes (f1, f2):
    // extended-model simulation with β = 2.
    ma.charge(2, cm, ledger, "approx-sssp");

    // Oracle distances: exact Dijkstra on the quantized lengths (1-smooth
    // w.r.t. c̃, hence (1+1/k)-smooth w.r.t. c).
    let dual = DualView::new(&aug, &lengths, |_| true);
    let (dist, _) = dual.dijkstra(f1);

    // Assignment: numerators k·(δ(face(rev d)) − δ(face(d))) over
    // denominator k+1; exact mode: denominator 1.
    let (mult, denom) = if k > 0 { (k, k + 1) } else { (1, 1) };
    let mut flow_numer = vec![0; g.num_darts()];
    for d in g.darts() {
        let (from, to) = aug.dual_arc(d);
        flow_numer[d.index()] = mult * (dist[to.index()] - dist[from.index()]);
    }
    // Orient the flow from s to t.
    let mut net_s: Weight = g.out_darts(s).iter().map(|&d| flow_numer[d.index()]).sum();
    if net_s < 0 {
        for x in flow_numer.iter_mut() {
            *x = -*x;
        }
        net_s = -net_s;
    }

    Ok(ApproxFlowOutcome {
        value_numer: net_s,
        denom,
        flow_numer,
        f1,
        f2,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use duality_baselines::flow::planar_max_flow_reference;
    use duality_planar::gen;

    /// Exact rational feasibility + approximation checks.
    fn check(g: &PlanarGraph, caps: &[Weight], s: usize, t: usize, k: u64) -> ApproxFlowResult {
        let r = approx_max_st_flow(g, caps, s, t, k).unwrap();
        // Antisymmetry + scaled capacity.
        for d in g.darts() {
            assert_eq!(r.flow_numer[d.index()], -r.flow_numer[d.rev().index()]);
            assert!(
                r.flow_numer[d.index()] <= caps[d.index()] * r.denom,
                "capacity at {d:?}: {} > {} * {}",
                r.flow_numer[d.index()],
                caps[d.index()],
                r.denom
            );
        }
        // Conservation everywhere except s, t.
        for v in 0..g.num_vertices() {
            let net: Weight = g
                .out_darts(v)
                .iter()
                .map(|&d| r.flow_numer[d.index()])
                .sum();
            if v == s {
                assert_eq!(net, r.value_numer);
            } else if v == t {
                assert_eq!(net, -r.value_numer);
            } else {
                assert_eq!(net, 0, "conservation at {v}");
            }
        }
        // Approximation guarantee: value ∈ [maxflow·k/(k+1), maxflow].
        let exact = planar_max_flow_reference(g, caps, s, t);
        assert!(r.value_numer <= exact * r.denom, "value exceeds max flow");
        if k == 0 {
            assert_eq!(r.value_numer, exact, "exact mode matches Dinic");
        } else {
            let kk = k as Weight;
            assert!(
                r.value_numer * (kk + 1) >= exact * r.denom * kk,
                "value {}/{} below (1-eps) * {exact}",
                r.value_numer,
                r.denom
            );
        }
        r
    }

    #[test]
    fn exact_mode_matches_dinic_on_grids() {
        for seed in 0..4u64 {
            let g = gen::grid(4, 4).unwrap();
            let caps = gen::random_undirected_capacities(g.num_edges(), 1, 9, seed);
            // 0 and 12 are both corners on the outer face.
            check(&g, &caps, 0, 12, 0);
        }
    }

    #[test]
    fn approximate_mode_is_feasible_and_close() {
        for k in [1u64, 2, 4, 10] {
            let g = gen::grid(5, 4).unwrap();
            let caps = gen::random_undirected_capacities(g.num_edges(), 1, 20, k);
            check(&g, &caps, 0, 4, k); // both corners of the top row share the outer face
        }
    }

    #[test]
    fn adjacent_st_on_inner_face() {
        let g = gen::grid(4, 4).unwrap();
        let caps = gen::random_undirected_capacities(g.num_edges(), 1, 6, 3);
        // 5 and 6 are adjacent interior vertices sharing an inner face.
        check(&g, &caps, 5, 6, 0);
    }

    #[test]
    fn zero_capacities_handled() {
        let g = gen::grid(4, 3).unwrap();
        let mut caps = gen::random_undirected_capacities(g.num_edges(), 1, 5, 7);
        // Zero out a few edges.
        for e in [0usize, 3, 5] {
            caps[2 * e] = 0;
            caps[2 * e + 1] = 0;
        }
        check(&g, &caps, 0, 3, 2);
    }

    #[test]
    fn non_st_planar_rejected() {
        let g = gen::grid(5, 5).unwrap();
        let caps = gen::random_undirected_capacities(g.num_edges(), 1, 5, 1);
        // Center (12) and corner (0) share no face in a 5x5 grid.
        assert_eq!(
            approx_max_st_flow(&g, &caps, 0, 12, 0).err(),
            Some(StPlanarError::NotStPlanar)
        );
    }

    #[test]
    fn directed_capacities_rejected() {
        let g = gen::grid(3, 3).unwrap();
        let caps = gen::random_directed_capacities(g.num_edges(), 1, 5, 1);
        assert_eq!(
            approx_max_st_flow(&g, &caps, 0, 2, 0).err(),
            Some(StPlanarError::NotUndirected)
        );
    }

    #[test]
    fn symmetric_negative_capacities_rejected_without_panicking() {
        // Symmetric but negative: must be the NotUndirected error, never a
        // panic out of the solver builder behind the wrapper.
        let g = gen::grid(3, 3).unwrap();
        let neg = vec![-1; g.num_darts()];
        assert_eq!(
            approx_max_st_flow(&g, &neg, 0, 2, 2).err(),
            Some(StPlanarError::NotUndirected)
        );
        assert_eq!(
            crate::st_cut::approx_min_st_cut(&g, &neg, 0, 2, 2).err(),
            Some(StPlanarError::NotUndirected)
        );
    }

    #[test]
    fn rounds_are_d_times_subpolynomial() {
        let g = gen::grid(6, 6).unwrap();
        let caps = gen::random_undirected_capacities(g.num_edges(), 1, 5, 4);
        let r = check(&g, &caps, 0, 5, 0);
        assert!(r.ledger.phase_total("approx-sssp") > 0);
    }
}
