//! Weighted girth in `Õ(D)` rounds (paper, Theorem 1.7).
//!
//! Cycle–cut duality (Fact 3.1): the minimum-weight cycle of an undirected
//! weighted planar graph is the minimum cut of its dual. The pipeline is
//! exactly the paper's: (1) deactivate self-loops and parallel dual edges
//! in the minor-aggregation model, summing parallel weights (Lemma 4.15);
//! (2) run the exact min-cut minor-aggregation algorithm on the simple dual
//! (Ghaffari–Zuzic, Theorem 4.16 — substituted by centralized Stoer–Wagner
//! charged at the paper's `Õ(1)` minor-aggregation rounds, see `DESIGN.md`);
//! (3) mark the cut edges (Lemma 4.17 machinery) — their primal edges are
//! the minimum cycle.

use crate::solver::PlanarSolver;
use duality_baselines::cuts::stoer_wagner;
use duality_congest::{CostLedger, CostModel};
use duality_minor_agg::{deactivate_parallel_edges, MaEdge, MinorAgg};
use duality_planar::{PlanarGraph, Weight};

/// Result of the weighted-girth computation.
#[derive(Clone, Debug)]
pub struct GirthResult {
    /// The weight of the minimum cycle.
    pub girth: Weight,
    /// The edges of a minimum-weight cycle (paper: "finds the edges of a
    /// shortest cycle").
    pub cycle_edges: Vec<usize>,
    /// CONGEST rounds charged.
    pub ledger: CostLedger,
}

/// Computes the weighted girth of an undirected planar instance with
/// positive edge weights. Returns `None` for acyclic graphs.
///
/// # Panics
///
/// Panics if a weight is non-positive (cut–cycle duality needs positive
/// weights for the minimum cut to be a simple cut).
///
/// # Example
///
/// ```
/// use duality_core::girth::weighted_girth;
/// use duality_planar::gen;
///
/// let g = gen::grid(4, 4).unwrap();
/// let r = weighted_girth(&g, &vec![1; g.num_edges()]).unwrap();
/// assert_eq!(r.girth, 4);
/// assert_eq!(r.cycle_edges.len(), 4);
/// ```
pub fn weighted_girth(g: &PlanarGraph, weights: &[Weight]) -> Option<GirthResult> {
    assert_eq!(weights.len(), g.num_edges(), "one weight per edge");
    assert!(weights.iter().all(|&w| w > 0), "weights must be positive");
    // One-shot callers pay the solver's embedded-dual construction here;
    // it is O(m) against the query's O(F³) Stoer–Wagner stage. Repeated
    // callers should hold a solver (or batch `Query::Girth` alongside
    // other queries via `run_batch`) to amortize it.
    let solver = PlanarSolver::builder(g)
        .edge_weights(weights)
        .build()
        .expect("inputs validated above");
    match solver.girth() {
        Ok(r) => Some(GirthResult {
            girth: r.girth,
            cycle_edges: r.cycle_edges,
            ledger: r.rounds.into_ledger(),
        }),
        Err(crate::DualityError::Acyclic) => None,
        Err(other) => unreachable!("girth wrapper validated its inputs: {other}"),
    }
}

/// The cycle–cut-duality pipeline proper (shared with the solver), phrased
/// on the embedded dual graph `dual` (dual vertex `i` = face `i` of `g`,
/// dual edge `e` = primal edge `e` — the construction of
/// [`duality_planar::dual::dual_graph`], which the solver caches). Inputs
/// are pre-validated; returns `None` for acyclic instances.
pub(crate) fn run_girth_on_dual(
    g: &PlanarGraph,
    dual: &PlanarGraph,
    cm: &CostModel,
    weights: &[Weight],
    ledger: &mut CostLedger,
) -> Option<(Weight, Vec<usize>)> {
    debug_assert_eq!(dual.num_vertices(), g.num_faces());
    debug_assert_eq!(dual.num_edges(), g.num_edges());
    if g.num_faces() < 2 {
        return None; // acyclic: a single face, no dual cut exists
    }

    // Dual multigraph: one MA edge per dual (= primal) edge.
    let ma_edges: Vec<MaEdge> = (0..dual.num_edges())
        .map(|e| MaEdge {
            u: dual.edge_tail(e),
            v: dual.edge_head(e),
            weight: weights[e],
        })
        .collect();
    let mut ma = MinorAgg::new(dual.num_vertices(), ma_edges.clone());

    // (1) Parallel-edge deactivation with the sum operator (arboricity of
    // the simple dual of a planar graph is 3 — paper, Section 4.2.3).
    let active = deactivate_parallel_edges(&mut ma, 3, |a, b| a + b);

    // (2) Exact min cut of the simple dual (black-box charge).
    let n = g.num_faces();
    let mut w = vec![vec![0; n]; n];
    for (i, a) in active.iter().enumerate() {
        if let Some(weight) = a {
            let e = &ma_edges[i];
            w[e.u][e.v] += weight;
            w[e.v][e.u] += weight;
        }
    }
    ma.add_black_box_rounds(cm.min_cut_minor_aggregation_rounds());
    let (cut, side) = stoer_wagner(&w);

    // (3) Mark the cut edges: every dual edge (including previously
    // deactivated parallels) crossing the bisection; one consensus round
    // spreads the side bits (the 2-respecting marking of Lemma 4.17 is
    // exercised separately in `duality-minor-agg`).
    ma.add_black_box_rounds(1);
    let cycle_edges: Vec<usize> = (0..g.num_edges())
        .filter(|&e| {
            let me = &ma_edges[e];
            side[me.u] != side[me.v]
        })
        .collect();

    ma.charge(1, cm, ledger, "girth-minor-agg");
    Some((cut, cycle_edges))
}

#[cfg(test)]
mod tests {
    use super::*;
    use duality_baselines::girth::planar_weighted_girth;
    use duality_planar::gen;

    fn check(g: &PlanarGraph, weights: &[Weight]) {
        let got = weighted_girth(g, weights);
        let want = planar_weighted_girth(g, weights);
        match (got, want) {
            (None, None) => {}
            (Some(r), Some(w)) => {
                assert_eq!(r.girth, w, "girth value");
                // The reported edges form a cycle of exactly that weight:
                // every vertex touched an even number of times, total weight
                // matches, and the edge set is a simple dual cut.
                let total: Weight = r.cycle_edges.iter().map(|&e| weights[e]).sum();
                assert_eq!(total, r.girth, "cycle weight");
                let mut deg = vec![0usize; g.num_vertices()];
                for &e in &r.cycle_edges {
                    deg[g.edge_tail(e)] += 1;
                    deg[g.edge_head(e)] += 1;
                }
                assert!(deg.iter().all(|&d| d % 2 == 0), "even degrees");
                assert!(
                    duality_planar::dual::dual_cut_components(g, &r.cycle_edges).is_some(),
                    "cycle edges form a simple dual cut"
                );
            }
            (got, want) => panic!("mismatch: got {got:?}, want {want:?}"),
        }
    }

    #[test]
    fn unit_grid_girth() {
        let g = gen::grid(5, 4).unwrap();
        check(&g, &vec![1; g.num_edges()]);
    }

    #[test]
    fn random_weights_match_reference() {
        for seed in 0..5u64 {
            let g = gen::diag_grid(5, 4, seed).unwrap();
            let w = gen::random_edge_weights(g.num_edges(), 1, 20, seed + 7);
            check(&g, &w);
        }
    }

    #[test]
    fn apollonian_girth() {
        let g = gen::apollonian(25, 4).unwrap();
        let w = gen::random_edge_weights(g.num_edges(), 1, 10, 3);
        check(&g, &w);
    }

    #[test]
    fn single_cycle_girth_is_total() {
        let g = gen::cycle(7).unwrap();
        let w: Vec<Weight> = (1..=7).collect();
        let r = weighted_girth(&g, &w).unwrap();
        assert_eq!(r.girth, 28);
        assert_eq!(r.cycle_edges.len(), 7);
    }

    #[test]
    fn tree_has_no_girth() {
        let g = gen::path(6).unwrap();
        assert!(weighted_girth(&g, &vec![3; g.num_edges()]).is_none());
    }

    #[test]
    fn rounds_are_otilde_d() {
        let g = gen::grid(6, 6).unwrap();
        let r = weighted_girth(&g, &vec![2; g.num_edges()]).unwrap();
        let d = g.diameter() as u64;
        // Õ(D): at most D · polylog³ with our charging constants.
        let logn = (g.num_vertices() as f64).log2().ceil() as u64;
        assert!(r.ledger.total() >= d);
        assert!(r.ledger.total() <= 100 * d * logn.pow(5));
    }

    #[test]
    fn outerplanar_girth() {
        let g = gen::outerplanar(12, 5, true).unwrap();
        let w = gen::random_edge_weights(g.num_edges(), 1, 9, 11);
        check(&g, &w);
    }
}
