//! The unified `PlanarSolver` façade: one owned instance, five queries,
//! shared thread-safe substrate, and a typed batch layer.
//!
//! Every headline result of the paper — exact/approximate max st-flow,
//! exact/approximate min st-cut, directed global min cut, weighted girth —
//! is derived from the same toolkit: the dual graph `G*`, a bounded-
//! diameter branch decomposition, and dual SSSP labelings over the CONGEST
//! substrate. The free functions of the sibling modules rebuild that
//! toolkit on every call; [`PlanarSolver`] builds it **once** and amortizes
//! it across queries:
//!
//! | artifact | built by | used by |
//! |---|---|---|
//! | hop diameter / [`CostModel`] | first query | everything |
//! | embedded dual graph `G*` | first [`Query::Girth`] | girth |
//! | BDD + dual bags + labeling engine | first flow/cut query | max-flow, min st-cut, global cut |
//!
//! The substrate is **two-tier**. [`TopoSubstrate`] holds everything keyed
//! by the embedding alone — the hop-diameter [`CostModel`], the embedded
//! dual graph, and the BDD + dual bags + separators of the labeling
//! engine. The weight tier holds what is keyed by the current
//! capacities/weights — today, the dual distance labels at the instance
//! lengths that the global-cut pipeline consumes. The split pays off at
//! [`PlanarSolver::respec`]: re-speccing the same network with new
//! capacities or weights returns a new solver that *shares the
//! `Arc<TopoSubstrate>`* and rebuilds only the weight tier, so a K-scenario
//! sweep charges the topology rounds once (auditable in every
//! [`duality_congest::RoundReport`], which now splits `substrate_topo`
//! from `substrate_weight`).
//!
//! The solver owns its instance (an [`Arc<PlanarInstance>`]), is
//! `Send + Sync`, and clones in `O(1)` by sharing the instance **and** the
//! caches: artifacts are memoized behind `OnceLock`s, and the rounds
//! charged while building them accumulate in mutex-guarded per-tier
//! **substrate ledgers** that every query reports alongside its own
//! marginal cost. Build counters ([`PlanarSolver::stats`]) let tests
//! assert that issuing many queries — even concurrently, even across
//! respecs — constructs each artifact exactly once.
//!
//! # The query layer
//!
//! Requests are first-class values: a [`Query`] names one of the six
//! operations, [`PlanarSolver::run`] executes it and returns the matching
//! [`Outcome`], and [`PlanarSolver::run_batch`] executes a heterogeneous
//! batch — deduplicated, across a small worker pool — returning per-query
//! outcomes plus one merged [`RoundReport`] that charges the substrate
//! exactly once. The classic inherent methods ([`PlanarSolver::max_flow`],
//! …) remain as thin wrappers over `run`.
//!
//! # Example
//!
//! ```
//! use duality_core::solver::{Outcome, PlanarSolver, Query};
//! use duality_planar::gen;
//!
//! let g = gen::diag_grid(4, 4, 7).unwrap();
//! let caps = gen::random_undirected_capacities(g.num_edges(), 1, 9, 7);
//! let solver = PlanarSolver::builder(&g).capacities(caps).build().unwrap();
//!
//! // One-at-a-time queries...
//! let flow = solver.max_flow(0, 15).unwrap();
//! let cut = solver.min_st_cut(0, 15).unwrap();
//! assert_eq!(flow.value, cut.value); // max-flow min-cut duality
//!
//! // ...or a typed batch (deduplicated, executed on a worker pool).
//! let batch = solver.run_batch(&[
//!     Query::MaxFlow { s: 0, t: 15 },
//!     Query::MaxFlow { s: 0, t: 15 }, // duplicate: executed once
//!     Query::Girth,
//! ]);
//! assert_eq!(batch.duplicates, 1);
//! match batch.outcomes[0].as_ref().unwrap() {
//!     Outcome::MaxFlow(r) => assert_eq!(r.value, flow.value),
//!     _ => unreachable!(),
//! }
//!
//! // The decomposition was built once and shared by every query.
//! assert_eq!(solver.stats().engine_builds, 1);
//! ```

use crate::approx_flow::StPlanarError;
use crate::error::DualityError;
use crate::heap_size::{hash_table_bytes, HeapSize, VEC_HEADER};
use crate::instance::PlanarInstance;
use crate::{approx_flow, girth, global_cut, max_flow, st_cut};
use duality_congest::{CostLedger, CostModel, PhaseTimer, RoundReport};
use duality_labeling::{DualLabels, DualSsspEngine};
use duality_planar::{dual, Dart, FaceId, PlanarGraph, Weight};
use std::borrow::Cow;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU32, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Builder for [`PlanarSolver`]: the instance (graph + capacities and/or
/// edge weights) is validated once, up front. `build()` clones the graph
/// into an owned [`PlanarInstance`]; use [`PlanarSolver::from_instance`]
/// to share an already-validated instance without copying.
///
/// At least one of [`SolverBuilder::capacities`] (per-dart) and
/// [`SolverBuilder::edge_weights`] (per-edge) must be provided; the missing
/// side is derived — `weights[e] = caps[2e]` (forward-dart capacity), or
/// `caps[2e] = weights[e], caps[2e+1] = 0` (a directed instance).
#[derive(Clone, Debug)]
pub struct SolverBuilder<'g> {
    graph: &'g PlanarGraph,
    capacities: Option<Cow<'g, [Weight]>>,
    edge_weights: Option<Cow<'g, [Weight]>>,
    leaf_threshold: Option<usize>,
}

impl<'g> SolverBuilder<'g> {
    /// Per-dart capacities for the flow/cut queries (`2 * num_edges`
    /// entries, non-negative). Accepts owned or borrowed data; borrowed
    /// slices are copied only at `build()`.
    pub fn capacities(mut self, caps: impl Into<Cow<'g, [Weight]>>) -> Self {
        self.capacities = Some(caps.into());
        self
    }

    /// Per-edge weights for the global-cut and girth queries (`num_edges`
    /// entries, non-negative). Accepts owned or borrowed data; borrowed
    /// slices are copied only at `build()`.
    pub fn edge_weights(mut self, weights: impl Into<Cow<'g, [Weight]>>) -> Self {
        self.edge_weights = Some(weights.into());
        self
    }

    /// Overrides the BDD leaf threshold (`None`: the paper's `Θ(D)`
    /// default). Validated at `build()`: a leaf must be allowed to hold at
    /// least [`MIN_LEAF_THRESHOLD`] edges.
    pub fn with_leaf_threshold(mut self, threshold: Option<usize>) -> Self {
        self.leaf_threshold = threshold;
        self
    }

    /// Overrides the BDD leaf threshold.
    #[deprecated(since = "0.1.0", note = "use `with_leaf_threshold(Some(threshold))`")]
    pub fn leaf_threshold(self, threshold: usize) -> Self {
        self.with_leaf_threshold(Some(threshold))
    }

    /// Optional-valued form of the leaf-threshold override.
    #[deprecated(since = "0.1.0", note = "use `with_leaf_threshold(threshold)`")]
    pub fn leaf_threshold_opt(self, threshold: Option<usize>) -> Self {
        self.with_leaf_threshold(threshold)
    }

    /// Validates the instance and builds the solver. No substrate artifact
    /// is constructed yet — that happens lazily on first use.
    ///
    /// # Errors
    ///
    /// [`DualityError::CapacityLengthMismatch`] /
    /// [`DualityError::WeightLengthMismatch`] on wrong vector lengths,
    /// [`DualityError::NegativeCapacity`] / [`DualityError::NegativeWeight`]
    /// on negative entries, [`DualityError::MissingInput`] when neither
    /// side was provided, [`DualityError::BadLeafThreshold`] on a leaf
    /// threshold below [`MIN_LEAF_THRESHOLD`].
    pub fn build(self) -> Result<PlanarSolver, DualityError> {
        let instance = PlanarInstance::new(
            self.graph.clone(),
            self.capacities.map(Cow::into_owned),
            self.edge_weights.map(Cow::into_owned),
        )?;
        PlanarSolver::from_instance_with_threshold(instance, self.leaf_threshold)
    }
}

/// The smallest accepted BDD leaf threshold: a leaf must be allowed to
/// hold at least two edges, otherwise the decomposition cannot terminate.
/// Re-exported from the decomposition crate so the builder's rejection
/// bound can never drift from `Bdd::build`'s own clamp.
pub const MIN_LEAF_THRESHOLD: usize = duality_bdd::MIN_LEAF_THRESHOLD;

/// The legacy options structs promised clamping, not rejection: shared by
/// the pre-solver free-function wrappers.
pub(crate) fn clamp_legacy_threshold(threshold: Option<usize>) -> Option<usize> {
    threshold.map(|t| t.max(MIN_LEAF_THRESHOLD))
}

/// Snapshot of the solver's build counters, for cache-reuse assertions.
///
/// `engine_builds` and `dual_builds` live in the shared [`TopoSubstrate`],
/// so they stay ≤ 1 across *all* solvers derived from one topology via
/// [`PlanarSolver::respec`]; `label_builds` lives in the per-spec weight
/// tier (≤ 1 per solver, rebuilt on respec); `queries` is per solver.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SolverStats {
    /// Times the BDD + dual-bag labeling engine was constructed (≤ 1 per
    /// topology, shared across respecs).
    pub engine_builds: u32,
    /// Times the embedded dual graph was constructed (≤ 1 per topology,
    /// shared across respecs).
    pub dual_builds: u32,
    /// Times the instance-weight dual labels were computed (≤ 1 per spec).
    pub label_builds: u32,
    /// Queries answered so far (batch duplicates are answered once).
    pub queries: u32,
}

/// Exact max st-flow witness (paper, Theorem 1.2).
#[derive(Clone, Debug)]
pub struct MaxFlowReport {
    /// The maximum flow value `λ*`.
    pub value: Weight,
    /// Net flow per dart (`flow[d] = -flow[rev d]`).
    pub flow: Vec<Weight>,
    /// Dual-SSSP probes of the binary search (`O(log λ*)`).
    pub probes: u32,
    /// Substrate + query round split.
    pub rounds: RoundReport,
}

impl std::fmt::Display for MaxFlowReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "max st-flow = {} ({} dual-SSSP probes, {} rounds: {} substrate + {} query)",
            self.value,
            self.probes,
            self.rounds.total(),
            self.rounds.substrate_total(),
            self.rounds.query_total()
        )
    }
}

/// Exact min st-cut witness (paper, Theorem 6.1).
#[derive(Clone, Debug)]
pub struct MinCutReport {
    /// The cut capacity (equals the max-flow value).
    pub value: Weight,
    /// `side[v]` is `true` on the `s` shore.
    pub side: Vec<bool>,
    /// The saturated darts crossing from the `s` side to the `t` side.
    pub cut_darts: Vec<Dart>,
    /// Substrate + query round split.
    pub rounds: RoundReport,
}

impl std::fmt::Display for MinCutReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "min st-cut = {} ({} cut darts, {} rounds: {} substrate + {} query)",
            self.value,
            self.cut_darts.len(),
            self.rounds.total(),
            self.rounds.substrate_total(),
            self.rounds.query_total()
        )
    }
}

/// Approximate st-planar max-flow witness (paper, Theorem 1.3): a rational
/// flow `flow_numer[d] / denom` per dart.
#[derive(Clone, Debug)]
pub struct ApproxFlowReport {
    /// Flow value numerator (value = `value_numer / denom`).
    pub value_numer: Weight,
    /// Common denominator (`k + 1` for `ε = 1/k`; 1 in exact mode).
    pub denom: Weight,
    /// Per-dart flow numerators (antisymmetric).
    pub flow_numer: Vec<Weight>,
    /// The two dual faces created by Hassin's artificial edge.
    pub f1: FaceId,
    /// See [`ApproxFlowReport::f1`].
    pub f2: FaceId,
    /// Substrate + query round split.
    pub rounds: RoundReport,
}

impl std::fmt::Display for ApproxFlowReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "approx max st-flow = {}/{} ≈ {:.2} ({} rounds)",
            self.value_numer,
            self.denom,
            self.value_numer as f64 / self.denom as f64,
            self.rounds.total()
        )
    }
}

/// Approximate st-planar min-cut witness (paper, Theorem 6.2).
#[derive(Clone, Debug)]
pub struct ApproxCutReport {
    /// The (unquantized) capacity of the cut.
    pub value: Weight,
    /// The cut edges (undirected).
    pub cut_edges: Vec<usize>,
    /// Substrate + query round split.
    pub rounds: RoundReport,
}

impl std::fmt::Display for ApproxCutReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "approx min st-cut = {} ({} cut edges, {} rounds)",
            self.value,
            self.cut_edges.len(),
            self.rounds.total()
        )
    }
}

/// Directed global min-cut witness (paper, Theorem 1.5).
#[derive(Clone, Debug)]
pub struct GlobalCutReport {
    /// The cut weight (edges leaving the `S` side).
    pub value: Weight,
    /// `side[v]` is `true` for vertices of `S`.
    pub side: Vec<bool>,
    /// The primal edges crossing the bisection.
    pub cut_edges: Vec<usize>,
    /// Substrate + query round split.
    pub rounds: RoundReport,
}

impl std::fmt::Display for GlobalCutReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "global min cut = {} ({} cut edges isolate {} vertices, {} rounds)",
            self.value,
            self.cut_edges.len(),
            self.side.iter().filter(|&&b| !b).count(),
            self.rounds.total()
        )
    }
}

/// Weighted-girth witness (paper, Theorem 1.7).
#[derive(Clone, Debug)]
pub struct GirthReport {
    /// The weight of the minimum cycle.
    pub girth: Weight,
    /// The edges of a minimum-weight cycle.
    pub cycle_edges: Vec<usize>,
    /// Substrate + query round split.
    pub rounds: RoundReport,
}

impl std::fmt::Display for GirthReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "girth = {} ({}-edge minimum cycle, {} rounds)",
            self.girth,
            self.cycle_edges.len(),
            self.rounds.total()
        )
    }
}

/// One request against a [`PlanarSolver`]: the six operations as plain
/// data, so requests can be stored, deduplicated ([`Hash`]/[`Eq`]) and
/// shipped to [`PlanarSolver::run_batch`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Query {
    /// Exact maximum st-flow (Theorem 1.2).
    MaxFlow {
        /// Source vertex.
        s: usize,
        /// Sink vertex.
        t: usize,
    },
    /// Exact directed minimum st-cut (Theorem 6.1).
    MinStCut {
        /// Source vertex.
        s: usize,
        /// Sink vertex.
        t: usize,
    },
    /// `(1 − 1/(k+1))`-approximate st-planar max flow (Theorem 1.3);
    /// `eps_inverse = k`, `k = 0` runs the exact-oracle substitution.
    ApproxMaxFlow {
        /// Source vertex.
        s: usize,
        /// Sink vertex.
        t: usize,
        /// `k` of `ε = 1/k` (0: exact oracle).
        eps_inverse: u64,
    },
    /// `(1 + 1/k)`-approximate st-planar min st-cut (Theorem 6.2).
    ApproxMinStCut {
        /// Source vertex.
        s: usize,
        /// Sink vertex.
        t: usize,
        /// `k` of `ε = 1/k` (0: exact oracle).
        eps_inverse: u64,
    },
    /// Directed global minimum cut over the instance weights (Theorem 1.5).
    GlobalMinCut,
    /// Weighted girth over the instance weights (Theorem 1.7).
    Girth,
}

impl Query {
    /// Does this query consume the cached BDD + labeling engine?
    fn needs_engine(&self) -> bool {
        matches!(
            self,
            Query::MaxFlow { .. } | Query::MinStCut { .. } | Query::GlobalMinCut
        )
    }

    /// Does this query consume the cached embedded dual graph?
    fn needs_dual(&self) -> bool {
        matches!(self, Query::Girth)
    }

    /// Does this query consume the weight tier's cached instance-weight
    /// dual labels?
    fn needs_weight_labels(&self) -> bool {
        matches!(self, Query::GlobalMinCut)
    }
}

impl std::fmt::Display for Query {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Query::MaxFlow { s, t } => write!(f, "max-flow({s} → {t})"),
            Query::MinStCut { s, t } => write!(f, "min-st-cut({s} → {t})"),
            Query::ApproxMaxFlow { s, t, eps_inverse } => {
                write!(f, "approx-max-flow({s} → {t}, 1/ε = {eps_inverse})")
            }
            Query::ApproxMinStCut { s, t, eps_inverse } => {
                write!(f, "approx-min-st-cut({s} → {t}, 1/ε = {eps_inverse})")
            }
            Query::GlobalMinCut => write!(f, "global-min-cut"),
            Query::Girth => write!(f, "girth"),
        }
    }
}

/// The typed result of one [`Query`], wrapping the per-operation report.
/// [`PlanarSolver::run`] always returns the variant matching its query.
#[derive(Clone, Debug)]
pub enum Outcome {
    /// Result of [`Query::MaxFlow`].
    MaxFlow(MaxFlowReport),
    /// Result of [`Query::MinStCut`].
    MinStCut(MinCutReport),
    /// Result of [`Query::ApproxMaxFlow`].
    ApproxMaxFlow(ApproxFlowReport),
    /// Result of [`Query::ApproxMinStCut`].
    ApproxMinStCut(ApproxCutReport),
    /// Result of [`Query::GlobalMinCut`].
    GlobalMinCut(GlobalCutReport),
    /// Result of [`Query::Girth`].
    Girth(GirthReport),
}

impl Outcome {
    /// The round split of the wrapped report.
    pub fn rounds(&self) -> &RoundReport {
        match self {
            Outcome::MaxFlow(r) => &r.rounds,
            Outcome::MinStCut(r) => &r.rounds,
            Outcome::ApproxMaxFlow(r) => &r.rounds,
            Outcome::ApproxMinStCut(r) => &r.rounds,
            Outcome::GlobalMinCut(r) => &r.rounds,
            Outcome::Girth(r) => &r.rounds,
        }
    }

    /// The wrapped [`MaxFlowReport`], if this is a max-flow outcome.
    pub fn as_max_flow(&self) -> Option<&MaxFlowReport> {
        match self {
            Outcome::MaxFlow(r) => Some(r),
            _ => None,
        }
    }

    /// The wrapped [`MinCutReport`], if this is a min-st-cut outcome.
    pub fn as_min_st_cut(&self) -> Option<&MinCutReport> {
        match self {
            Outcome::MinStCut(r) => Some(r),
            _ => None,
        }
    }

    /// The wrapped [`ApproxFlowReport`], if this is an approx-flow outcome.
    pub fn as_approx_max_flow(&self) -> Option<&ApproxFlowReport> {
        match self {
            Outcome::ApproxMaxFlow(r) => Some(r),
            _ => None,
        }
    }

    /// The wrapped [`ApproxCutReport`], if this is an approx-cut outcome.
    pub fn as_approx_min_st_cut(&self) -> Option<&ApproxCutReport> {
        match self {
            Outcome::ApproxMinStCut(r) => Some(r),
            _ => None,
        }
    }

    /// The wrapped [`GlobalCutReport`], if this is a global-cut outcome.
    pub fn as_global_min_cut(&self) -> Option<&GlobalCutReport> {
        match self {
            Outcome::GlobalMinCut(r) => Some(r),
            _ => None,
        }
    }

    /// The wrapped [`GirthReport`], if this is a girth outcome.
    pub fn as_girth(&self) -> Option<&GirthReport> {
        match self {
            Outcome::Girth(r) => Some(r),
            _ => None,
        }
    }
}

impl std::fmt::Display for Outcome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Outcome::MaxFlow(r) => r.fmt(f),
            Outcome::MinStCut(r) => r.fmt(f),
            Outcome::ApproxMaxFlow(r) => r.fmt(f),
            Outcome::ApproxMinStCut(r) => r.fmt(f),
            Outcome::GlobalMinCut(r) => r.fmt(f),
            Outcome::Girth(r) => r.fmt(f),
        }
    }
}

/// Result of [`PlanarSolver::run_batch`]: per-query outcomes (input order
/// preserved; duplicates share one execution) plus one merged round bill
/// that charges the substrate exactly once.
#[derive(Clone, Debug)]
pub struct BatchReport {
    /// One outcome per input query, in input order. Duplicate queries
    /// receive clones of the single shared execution.
    pub outcomes: Vec<Result<Outcome, DualityError>>,
    /// Merged CONGEST bill: one substrate share + the sum of all executed
    /// queries' marginal shares.
    pub rounds: RoundReport,
    /// Distinct queries actually executed.
    pub unique: usize,
    /// Input queries answered by deduplication (`inputs − unique`).
    pub duplicates: usize,
    /// Worker threads the batch ran on.
    pub threads: usize,
}

impl BatchReport {
    /// `true` when every outcome is `Ok`.
    pub fn all_ok(&self) -> bool {
        self.outcomes.iter().all(Result::is_ok)
    }
}

impl std::fmt::Display for BatchReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "batch: {} queries ({} unique, {} deduplicated) on {} thread(s)",
            self.outcomes.len(),
            self.unique,
            self.duplicates,
            self.threads
        )?;
        writeln!(
            f,
            "rounds: {} (substrate {} charged once + query {})",
            self.rounds.total(),
            self.rounds.substrate_total(),
            self.rounds.query_total()
        )?;
        for (i, outcome) in self.outcomes.iter().enumerate() {
            match outcome {
                Ok(o) => writeln!(f, "  [{i}] {o}")?,
                Err(e) => writeln!(f, "  [{i}] error: {e}")?,
            }
        }
        Ok(())
    }
}

/// The **topology tier** of the substrate: every artifact keyed by the
/// embedding (and the BDD leaf threshold) alone — the hop-diameter
/// [`CostModel`], the embedded dual graph `G*`, and the labeling engine
/// (BDD + dual bags + `F_X`/`S_X` separators). None of these read a
/// capacity or a weight, so *one* `Arc<TopoSubstrate>` serves every spec
/// of the same network: [`PlanarSolver::respec`] shares it (pointer
/// equality, see [`PlanarSolver::topo_substrate`]) and the rounds in its
/// ledger are charged once across the whole respec sweep.
///
/// Thread-safe throughout (`OnceLock` / `Mutex` / atomics); artifacts are
/// built lazily on first use and exactly once.
pub struct TopoSubstrate {
    // Declared before `graph` so the engine's borrow is dropped before
    // the `Arc` that keeps the borrowed graph alive.
    //
    // SAFETY invariant: the `'static` lifetime is an erasure. The engine
    // borrows `*self.graph`, whose heap allocation is pinned by the
    // `graph` field below for at least as long as this substrate (and
    // never moves); the engine is only ever exposed with its lifetime
    // shrunk back to a borrow of the substrate (covariance), so the
    // borrow cannot outlive the graph.
    engine: OnceLock<DualSsspEngine<'static>>,
    dual: OnceLock<PlanarGraph>,
    cost_model: OnceLock<CostModel>,
    /// Rounds charged while building topology artifacts (one-off per
    /// embedding).
    ledger: Mutex<CostLedger>,
    engine_builds: AtomicU32,
    dual_builds: AtomicU32,
    leaf_threshold: Option<usize>,
    /// The substrate's own pin on the graph allocation: the engine's
    /// borrow stays valid even if every instance sharing this topology is
    /// dropped or re-specced away.
    graph: Arc<PlanarGraph>,
}

impl TopoSubstrate {
    fn new(graph: Arc<PlanarGraph>, leaf_threshold: Option<usize>) -> TopoSubstrate {
        TopoSubstrate {
            engine: OnceLock::new(),
            dual: OnceLock::new(),
            cost_model: OnceLock::new(),
            ledger: Mutex::new(CostLedger::new()),
            engine_builds: AtomicU32::new(0),
            dual_builds: AtomicU32::new(0),
            leaf_threshold,
            graph,
        }
    }

    /// The BDD leaf-threshold override this topology was built with.
    pub fn leaf_threshold(&self) -> Option<usize> {
        self.leaf_threshold
    }

    /// Snapshot of the rounds charged for topology-tier construction.
    pub fn rounds(&self) -> CostLedger {
        self.ledger.lock().expect("topo substrate lock").clone()
    }

    /// The CONGEST cost model (measures the hop diameter on first use; the
    /// BFS-flood charge lands in the topology ledger).
    fn cost_model(&self) -> CostModel {
        *self.cost_model.get_or_init(|| {
            let timer = PhaseTimer::start("embed");
            let cm = CostModel::new(self.graph.num_vertices(), self.graph.diameter());
            // Distributedly the diameter estimate is a BFS flood + upcast.
            let mut ledger = self.ledger.lock().expect("topo substrate lock");
            ledger.charge("substrate-diameter", cm.bfs(cm.d) + cm.global_aggregate());
            timer.stop(&mut ledger);
            cm
        })
    }

    fn engine(&self) -> &DualSsspEngine<'_> {
        let cm = self.cost_model();
        self.engine.get_or_init(|| {
            self.engine_builds.fetch_add(1, Ordering::Relaxed);
            let timer = PhaseTimer::start("bdd");
            let mut ledger = self.ledger.lock().expect("topo substrate lock");
            // SAFETY: the reference points into the allocation owned by
            // `self.graph`; that `Arc` pins it for at least as long as
            // this substrate (and hence the engine stored next to it)
            // exists, and `PlanarGraph` has no interior mutability. The
            // erased `'static` never escapes: every public accessor
            // shrinks it back to a borrow of the substrate (covariance of
            // `DualSsspEngine<'g>` in `'g`).
            let graph: &'static PlanarGraph = unsafe { &*std::ptr::from_ref(self.graph.as_ref()) };
            let engine = DualSsspEngine::new(graph, &cm, self.leaf_threshold, &mut ledger);
            timer.stop(&mut ledger);
            engine
        })
    }

    fn dual_graph(&self) -> &PlanarGraph {
        let cm = self.cost_model();
        self.dual.get_or_init(|| {
            self.dual_builds.fetch_add(1, Ordering::Relaxed);
            let timer = PhaseTimer::start("dual");
            let dual = dual::dual_graph(&self.graph)
                .expect("the dual of a valid embedding is a valid embedding");
            let mut ledger = self.ledger.lock().expect("topo substrate lock");
            ledger.charge("substrate-dual", cm.dual_part_wise_aggregation());
            timer.stop(&mut ledger);
            dual
        })
    }
}

/// The **weight tier** of the substrate: artifacts keyed by the current
/// capacities/weights on top of one topology — today, the dual distance
/// labels at the instance lengths (forward dart = edge weight, reversal
/// free) that the global-cut pipeline consumes. Rebuilt per spec
/// ([`PlanarSolver::respec`] starts a fresh one), amortized across the
/// queries of that spec.
struct WeightSubstrate {
    // Declared before `topo` so the labels' borrow of the engine is
    // dropped before the `Arc` that keeps the engine's substrate alive.
    //
    // SAFETY invariant: the `'static` lifetimes are erasures. The labels
    // borrow the engine stored inside `*topo` (which in turn borrows the
    // graph pinned by `*topo`); the `topo` field below keeps that
    // allocation alive for at least as long as this tier, and the labels
    // are only ever exposed with their lifetimes shrunk back to a borrow
    // of the solver (covariance).
    labels: OnceLock<DualLabels<'static, 'static>>,
    /// Rounds charged while building weight-tier artifacts (one-off per
    /// spec).
    ledger: Mutex<CostLedger>,
    label_builds: AtomicU32,
    topo: Arc<TopoSubstrate>,
}

impl WeightSubstrate {
    fn new(topo: Arc<TopoSubstrate>) -> WeightSubstrate {
        WeightSubstrate {
            labels: OnceLock::new(),
            ledger: Mutex::new(CostLedger::new()),
            label_builds: AtomicU32::new(0),
            topo,
        }
    }

    fn rounds(&self) -> CostLedger {
        self.ledger.lock().expect("weight substrate lock").clone()
    }

    /// The cached dual distance labels at the instance lengths (forward
    /// dart = edge weight, reversal dart = 0). The labeling broadcasts are
    /// charged to the weight-tier ledger exactly once per spec.
    fn labels(&self, weights: &[Weight]) -> &DualLabels<'static, 'static> {
        self.labels.get_or_init(|| {
            self.label_builds.fetch_add(1, Ordering::Relaxed);
            let prep_timer = PhaseTimer::start("weight-tier");
            // SAFETY: same erasure as `TopoSubstrate::engine` — the engine
            // reference (and its own graph borrow, already `'static`-erased
            // inside the substrate) points into the `TopoSubstrate`
            // allocation pinned by `self.topo`, which outlives the labels
            // stored next to it. The cast only renames the already-erased
            // inner lifetime.
            let engine: &'static DualSsspEngine<'static> = unsafe {
                &*std::ptr::from_ref(self.topo.engine()).cast::<DualSsspEngine<'static>>()
            };
            let mut lengths = vec![0; engine.graph.num_darts()];
            for (e, &w) in weights.iter().enumerate() {
                lengths[Dart::forward(e).index()] = w;
            }
            let mut ledger = self.ledger.lock().expect("weight substrate lock");
            prep_timer.stop(&mut ledger);
            let label_timer = PhaseTimer::start("labeling");
            let labels = engine
                .labels(&lengths, &mut ledger)
                .expect("non-negative lengths have no negative cycle");
            label_timer.stop(&mut ledger);
            labels
        })
    }
}

/// Estimated heap bytes of a labeling engine: the flat bag/dual vectors
/// are summed exactly from the public fields; the private index maps
/// (`fx_index`, `child_of_node`, separator arcs) are estimated from the
/// node counts they mirror. `O(total bag size)` — proportional to the
/// structure being measured, never to a rebuild.
fn engine_heap_bytes(engine: &DualSsspEngine<'_>) -> usize {
    let dart = std::mem::size_of::<Dart>();
    let face = std::mem::size_of::<FaceId>();
    let mut bytes = 0;
    for bag in &engine.bdd.bags {
        bytes += std::mem::size_of_val(bag) + VEC_HEADER;
        bytes += bag.edges.len() * std::mem::size_of::<usize>();
        bytes += bag.children.len() * std::mem::size_of::<usize>();
        bytes += hash_table_bytes(bag.dart_in.len(), dart);
        let dual = &engine.duals[bag.id];
        bytes += std::mem::size_of_val(dual) + VEC_HEADER;
        bytes += dual.nodes.len() * face;
        bytes += hash_table_bytes(dual.node_index.len(), face + std::mem::size_of::<usize>());
        bytes += dual.arcs.len() * std::mem::size_of::<duality_bdd::dual_bags::DualArc>();
        // fx + the fx_index / child_of_node / separator-arc mirrors.
        let fx = engine.fx[bag.id].len();
        bytes += VEC_HEADER + fx * face + hash_table_bytes(fx, face + std::mem::size_of::<usize>());
        bytes += hash_table_bytes(dual.nodes.len(), face + std::mem::size_of::<usize>());
    }
    bytes
}

/// Estimated heap bytes of a built label store, derived from the engine
/// structure the labels mirror: non-leaf bags hold two `|F_X|`-long weight
/// vectors per node, leaf bags hold two `|nodes|`-long APSP rows per node.
fn labels_heap_bytes(engine: &DualSsspEngine<'_>) -> usize {
    let w = std::mem::size_of::<Weight>();
    let face = std::mem::size_of::<FaceId>();
    let mut bytes = 0;
    for bag in &engine.bdd.bags {
        let nodes = engine.duals[bag.id].nodes.len();
        if bag.is_leaf() {
            // leaf_apsp: (row, col) weight vectors per node.
            bytes += hash_table_bytes(nodes, face + 2 * VEC_HEADER) + nodes * 2 * nodes * w;
        } else {
            let fx = engine.fx[bag.id].len();
            // to_fx + from_fx: one |F_X|-long vector per node each.
            bytes += 2 * (hash_table_bytes(nodes, face + VEC_HEADER) + nodes * fx * w);
        }
        // label_words: one u64 per node.
        bytes += hash_table_bytes(nodes, face + std::mem::size_of::<u64>());
    }
    bytes
}

impl HeapSize for TopoSubstrate {
    /// The pinned graph (exact) plus whatever topology artifacts have
    /// been built so far: the dual graph (exact) and the labeling engine
    /// (estimated — see [`crate::heap_size`]). Lazily built artifacts
    /// that do not exist yet cost nothing, so a substrate's bill grows as
    /// it warms up.
    fn heap_bytes(&self) -> usize {
        let mut bytes = self.graph.heap_bytes();
        if let Some(dual) = self.dual.get() {
            bytes += dual.heap_bytes() + std::mem::size_of::<PlanarGraph>();
        }
        if let Some(engine) = self.engine.get() {
            bytes += engine_heap_bytes(engine);
        }
        bytes
    }
}

impl WeightSubstrate {
    /// Estimated heap bytes of this tier's own artifacts (the label
    /// store); the shared topology tier is billed by its holder.
    fn heap_bytes(&self) -> usize {
        match self.labels.get() {
            Some(labels) => labels_heap_bytes(labels.engine()),
            None => 0,
        }
    }
}

impl HeapSize for PlanarSolver {
    /// The full residency bill of one cached solver: instance + topology
    /// tier + weight tier. Shared structure (the graph `Arc`, a respec'd
    /// `Arc<TopoSubstrate>`) is billed per holder — a deliberate upper
    /// bound; see [`crate::heap_size`].
    fn heap_bytes(&self) -> usize {
        self.shared.instance.heap_bytes()
            + self.shared.topo.heap_bytes()
            + self.shared.weight.heap_bytes()
    }
}

/// The state one solver and all its clones share: the owned instance, the
/// two substrate tiers and the query counter. Thread-safe throughout.
struct SolverShared {
    /// Per-spec weight tier (holds its own `Arc` to the topology tier).
    weight: WeightSubstrate,
    /// Shared topology tier — `respec` clones this `Arc` into the new
    /// solver instead of rebuilding.
    topo: Arc<TopoSubstrate>,
    queries: AtomicU32,
    instance: Arc<PlanarInstance>,
}

/// The unified façade over the paper's five results, with the expensive
/// shared substrate built once and cached (see the module docs).
///
/// The solver **owns** its instance ([`Arc<PlanarInstance>`]), is
/// `Send + Sync`, and `Clone` is `O(1)`: clones share the instance, the
/// cached substrate and the build counters, so a solver can be handed to
/// worker threads and queried concurrently — the substrate is still built
/// exactly once.
#[derive(Clone)]
pub struct PlanarSolver {
    shared: Arc<SolverShared>,
}

/// Lifts a shared-pipeline st-planar error into the façade dialect,
/// attaching the query endpoints. Symmetry is screened by
/// `check_undirected` before the pipelines run, but the mapping stays
/// faithful in case they ever report it.
fn lift_st_planar(e: StPlanarError, s: usize, t: usize) -> DualityError {
    match e {
        StPlanarError::NotStPlanar => DualityError::NotStPlanar { s, t },
        StPlanarError::NotUndirected => DualityError::NotUndirected,
    }
}

impl std::fmt::Debug for PlanarSolver {
    // Manual impl: the cached engine holds the whole BDD, which would
    // flood debug output (and does not implement `Debug`); report the
    // instance shape and cache state instead.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PlanarSolver")
            .field("vertices", &self.graph().num_vertices())
            .field("edges", &self.graph().num_edges())
            .field("leaf_threshold", &self.shared.topo.leaf_threshold)
            .field("engine_cached", &self.shared.topo.engine.get().is_some())
            .field("dual_cached", &self.shared.topo.dual.get().is_some())
            .field("labels_cached", &self.shared.weight.labels.get().is_some())
            .field("stats", &self.stats())
            .finish()
    }
}

impl PlanarSolver {
    /// Starts building a solver over `graph` (cloned into the owned
    /// instance at `build()`).
    pub fn builder(graph: &PlanarGraph) -> SolverBuilder<'_> {
        SolverBuilder {
            graph,
            capacities: None,
            edge_weights: None,
            leaf_threshold: None,
        }
    }

    /// Wraps an already-validated shared instance (no copy, no
    /// re-validation) with the default leaf threshold.
    pub fn from_instance(instance: Arc<PlanarInstance>) -> PlanarSolver {
        Self::new_shared(instance, None)
    }

    /// Wraps an already-validated shared instance with a leaf-threshold
    /// override.
    ///
    /// # Errors
    ///
    /// [`DualityError::BadLeafThreshold`] when the threshold is below
    /// [`MIN_LEAF_THRESHOLD`].
    pub fn from_instance_with_threshold(
        instance: Arc<PlanarInstance>,
        leaf_threshold: Option<usize>,
    ) -> Result<PlanarSolver, DualityError> {
        if let Some(t) = leaf_threshold {
            if t < MIN_LEAF_THRESHOLD {
                return Err(DualityError::BadLeafThreshold { got: t });
            }
        }
        Ok(Self::new_shared(instance, leaf_threshold))
    }

    fn new_shared(instance: Arc<PlanarInstance>, leaf_threshold: Option<usize>) -> PlanarSolver {
        let topo = Arc::new(TopoSubstrate::new(
            Arc::clone(instance.graph_arc()),
            leaf_threshold,
        ));
        Self::over_substrate(instance, topo)
    }

    fn over_substrate(instance: Arc<PlanarInstance>, topo: Arc<TopoSubstrate>) -> PlanarSolver {
        PlanarSolver {
            shared: Arc::new(SolverShared {
                weight: WeightSubstrate::new(Arc::clone(&topo)),
                topo,
                queries: AtomicU32::new(0),
                instance,
            }),
        }
    }

    /// Re-specs the solver onto `instance` — same topology, new
    /// capacities/weights — returning a new solver that **shares this
    /// solver's `Arc<TopoSubstrate>`** (hop diameter, dual graph, BDD +
    /// dual bags: everything keyed by the embedding) and rebuilds only the
    /// weight tier. Across a K-scenario sweep the topology rounds are
    /// therefore charged once; each report's `substrate_weight` share
    /// carries the per-spec rebuild.
    ///
    /// The instance must share the original graph allocation — build it
    /// with [`PlanarInstance::with_capacities`] /
    /// [`PlanarInstance::with_edge_weights`] (or
    /// [`PlanarInstance::from_shared`] over the same `Arc`).
    ///
    /// # Errors
    ///
    /// [`DualityError::TopologyMismatch`] when `instance` does not share
    /// this solver's graph allocation (`Arc::ptr_eq`): an equal-looking
    /// graph from a different allocation gets a fresh solver, not a shared
    /// substrate.
    ///
    /// # Example
    ///
    /// ```
    /// use duality_core::solver::PlanarSolver;
    /// use duality_planar::gen;
    /// use std::sync::Arc;
    ///
    /// let g = gen::diag_grid(4, 4, 7).unwrap();
    /// let caps = gen::random_undirected_capacities(g.num_edges(), 1, 9, 7);
    /// let solver = PlanarSolver::builder(&g).capacities(caps).build().unwrap();
    /// let base = solver.max_flow(0, 15).unwrap();
    ///
    /// // Same network, doubled line ratings: the BDD is not rebuilt.
    /// let doubled: Vec<i64> = solver.capacities().iter().map(|&c| 2 * c).collect();
    /// let respecced = solver.respec_capacities(doubled).unwrap();
    /// assert!(Arc::ptr_eq(solver.topo_substrate(), respecced.topo_substrate()));
    /// assert_eq!(respecced.max_flow(0, 15).unwrap().value, 2 * base.value);
    /// assert_eq!(respecced.stats().engine_builds, 1, "shared, not rebuilt");
    /// ```
    pub fn respec(&self, instance: Arc<PlanarInstance>) -> Result<PlanarSolver, DualityError> {
        if !Arc::ptr_eq(instance.graph_arc(), &self.shared.topo.graph) {
            return Err(DualityError::TopologyMismatch);
        }
        Ok(Self::over_substrate(
            instance,
            Arc::clone(&self.shared.topo),
        ))
    }

    /// [`PlanarSolver::respec`] with new per-dart capacities (weights kept
    /// as they are) — copy-on-write via
    /// [`PlanarInstance::with_capacities`].
    ///
    /// # Errors
    ///
    /// [`DualityError::CapacityLengthMismatch`] /
    /// [`DualityError::NegativeCapacity`] on an invalid vector.
    pub fn respec_capacities(&self, capacities: Vec<Weight>) -> Result<PlanarSolver, DualityError> {
        self.respec(self.shared.instance.with_capacities(capacities)?)
    }

    /// [`PlanarSolver::respec`] with new per-edge weights (capacities kept
    /// as they are) — copy-on-write via
    /// [`PlanarInstance::with_edge_weights`].
    ///
    /// # Errors
    ///
    /// [`DualityError::WeightLengthMismatch`] /
    /// [`DualityError::NegativeWeight`] on an invalid vector.
    pub fn respec_edge_weights(&self, weights: Vec<Weight>) -> Result<PlanarSolver, DualityError> {
        self.respec(self.shared.instance.with_edge_weights(weights)?)
    }

    /// The shared topology tier. Two solvers related by
    /// [`PlanarSolver::respec`] return the *same* `Arc` here
    /// (`Arc::ptr_eq`) — the auditable witness that the dual graph, BDD
    /// and dual bags were reused rather than rebuilt.
    pub fn topo_substrate(&self) -> &Arc<TopoSubstrate> {
        &self.shared.topo
    }

    /// The shared instance (graph + capacities + weights).
    pub fn instance(&self) -> &Arc<PlanarInstance> {
        &self.shared.instance
    }

    /// The underlying graph.
    pub fn graph(&self) -> &PlanarGraph {
        self.shared.instance.graph()
    }

    /// The validated per-dart capacities.
    pub fn capacities(&self) -> &[Weight] {
        self.shared.instance.capacities()
    }

    /// The validated per-edge weights.
    pub fn edge_weights(&self) -> &[Weight] {
        self.shared.instance.edge_weights()
    }

    /// Build counters (cache-reuse evidence), shared with every clone;
    /// the engine/dual counters are shared with every respec too.
    pub fn stats(&self) -> SolverStats {
        SolverStats {
            engine_builds: self.shared.topo.engine_builds.load(Ordering::Relaxed),
            dual_builds: self.shared.topo.dual_builds.load(Ordering::Relaxed),
            label_builds: self.shared.weight.label_builds.load(Ordering::Relaxed),
            queries: self.shared.queries.load(Ordering::Relaxed),
        }
    }

    /// Snapshot of the rounds charged for substrate construction so far,
    /// both tiers flattened (topology phases first). Use
    /// [`PlanarSolver::substrate_topo_rounds`] /
    /// [`PlanarSolver::substrate_weight_rounds`] for the per-tier split.
    pub fn substrate_rounds(&self) -> CostLedger {
        let mut out = self.shared.topo.rounds();
        out.absorb(&self.shared.weight.rounds());
        out
    }

    /// Snapshot of the topology tier's ledger (charged once per embedding,
    /// shared across respecs).
    pub fn substrate_topo_rounds(&self) -> CostLedger {
        self.shared.topo.rounds()
    }

    /// Snapshot of the weight tier's ledger (charged once per spec,
    /// rebuilt on respec).
    pub fn substrate_weight_rounds(&self) -> CostLedger {
        self.shared.weight.rounds()
    }

    /// The CONGEST cost model (measures the hop diameter on first use; the
    /// BFS-flood charge lands in the topology ledger).
    pub fn cost_model(&self) -> CostModel {
        self.shared.topo.cost_model()
    }

    /// The cached labeling engine (BDD + dual bags + separators), built on
    /// first use with its `Õ(D)`-per-level charges in the topology ledger.
    fn engine(&self) -> &DualSsspEngine<'_> {
        self.shared.topo.engine()
    }

    /// The weight tier's cached dual distance labels at the instance
    /// lengths, built on first use with the labeling broadcasts charged to
    /// the weight ledger (once per spec — the global-cut query's biggest
    /// share, amortized across repeats and rebuilt on respec).
    fn weight_labels(&self) -> &DualLabels<'_, '_> {
        self.engine(); // charge the topology tier first, in build order
        self.shared
            .weight
            .labels(self.shared.instance.edge_weights())
    }

    /// The cached labeling engine (advanced API): the BDD, dual bags and
    /// separators, built on first use. Lets power users run custom dual
    /// labelings (e.g. [`duality_labeling::sssp::dual_sssp`]) against the
    /// same substrate the flow/cut queries amortize.
    pub fn labeling_engine(&self) -> &DualSsspEngine<'_> {
        self.engine()
    }

    /// The cached embedded dual graph `G*`.
    pub fn dual_graph(&self) -> &PlanarGraph {
        self.shared.topo.dual_graph()
    }

    fn check_endpoints(&self, s: usize, t: usize) -> Result<(), DualityError> {
        let n = self.graph().num_vertices();
        if s == t || s >= n || t >= n {
            return Err(DualityError::BadEndpoints { s, t, n });
        }
        Ok(())
    }

    fn check_undirected(&self) -> Result<(), DualityError> {
        let caps = self.capacities();
        for e in 0..self.graph().num_edges() {
            if caps[2 * e] != caps[2 * e + 1] {
                return Err(DualityError::NotUndirected);
            }
        }
        Ok(())
    }

    /// The validation preamble of one query, with no substrate side
    /// effects — the single source of truth shared by the `run_*`
    /// pipelines and the batch prewarm (which must skip substrate
    /// construction for queries that would fail it).
    fn precheck(&self, query: Query) -> Result<(), DualityError> {
        match query {
            Query::MaxFlow { s, t } | Query::MinStCut { s, t } => self.check_endpoints(s, t),
            Query::ApproxMaxFlow { s, t, .. } | Query::ApproxMinStCut { s, t, .. } => {
                self.check_endpoints(s, t)?;
                self.check_undirected()
            }
            Query::GlobalMinCut => {
                if self.graph().num_vertices() < 2 {
                    return Err(DualityError::TooSmall {
                        needed: 2,
                        vertices: self.graph().num_vertices(),
                    });
                }
                Ok(())
            }
            Query::Girth => {
                if let Some(e) = self.edge_weights().iter().position(|&w| w <= 0) {
                    return Err(DualityError::NonPositiveWeight { edge: e });
                }
                Ok(())
            }
        }
    }

    fn report(&self, query: CostLedger) -> RoundReport {
        self.shared.queries.fetch_add(1, Ordering::Relaxed);
        RoundReport {
            substrate_topo: self.shared.topo.rounds(),
            substrate_weight: self.shared.weight.rounds(),
            query,
        }
    }

    /// Executes one typed [`Query`], returning the matching [`Outcome`]
    /// variant. The classic inherent methods are thin wrappers over this.
    ///
    /// # Errors
    ///
    /// The union of the per-query error conditions — see the individual
    /// methods ([`PlanarSolver::max_flow`], …).
    pub fn run(&self, query: Query) -> Result<Outcome, DualityError> {
        match query {
            Query::MaxFlow { s, t } => self.run_max_flow(s, t).map(Outcome::MaxFlow),
            Query::MinStCut { s, t } => self.run_min_st_cut(s, t).map(Outcome::MinStCut),
            Query::ApproxMaxFlow { s, t, eps_inverse } => self
                .run_approx_max_flow(s, t, eps_inverse)
                .map(Outcome::ApproxMaxFlow),
            Query::ApproxMinStCut { s, t, eps_inverse } => self
                .run_approx_min_st_cut(s, t, eps_inverse)
                .map(Outcome::ApproxMinStCut),
            Query::GlobalMinCut => self.run_global_min_cut().map(Outcome::GlobalMinCut),
            Query::Girth => self.run_girth().map(Outcome::Girth),
        }
    }

    /// Executes a heterogeneous batch on a default-sized worker pool —
    /// see [`PlanarSolver::run_batch_on`].
    pub fn run_batch(&self, queries: &[Query]) -> BatchReport {
        let threads = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
        self.run_batch_on(queries, threads.min(4))
    }

    /// Executes a heterogeneous batch of queries across a pool of
    /// `threads` `std::thread` workers. `threads` is clamped to
    /// `1..=unique_queries`, so `threads == 0` runs serially (exactly like
    /// `threads == 1`) rather than erroring — a batch has no meaningful
    /// zero-worker execution, and round accounting is thread-count
    /// independent anyway.
    ///
    /// Identical queries are **deduplicated**: each distinct query runs
    /// once and its outcome is cloned into every input position. Before
    /// the pool starts, the substrate artifacts any query needs are built
    /// once on the calling thread, so every outcome snapshots the same
    /// substrate ledger and results are bit-for-bit identical to serial
    /// execution regardless of thread count.
    ///
    /// The returned [`BatchReport`] keeps input order and merges the
    /// CONGEST bill into one [`RoundReport`]: the substrate share appears
    /// **exactly once**, the query share is the sum of the executed
    /// queries' marginal ledgers (deduplicated queries are billed once —
    /// that is the amortization the batch API exists to expose).
    ///
    /// Per-query failures land in their outcome slot; the batch itself
    /// always completes.
    pub fn run_batch_on(&self, queries: &[Query], threads: usize) -> BatchReport {
        // Deduplicate, preserving first-seen order for determinism.
        let mut unique: Vec<Query> = Vec::new();
        let mut index_of: HashMap<Query, usize> = HashMap::new();
        let slots: Vec<usize> = queries
            .iter()
            .map(|&q| {
                *index_of.entry(q).or_insert_with(|| {
                    unique.push(q);
                    unique.len() - 1
                })
            })
            .collect();

        // Build the substrate the batch needs up front, on this thread:
        // the workers then contend only on their own queries, and every
        // report snapshots one identical, final substrate ledger. Only
        // queries that pass their preconditions count — serially, a query
        // failing validation builds (and bills) nothing, and the batch
        // must match that bill exactly.
        let viable: Vec<Query> = unique
            .iter()
            .copied()
            .filter(|&q| self.precheck(q).is_ok())
            .collect();
        if !viable.is_empty() {
            self.cost_model();
        }
        if viable.iter().any(Query::needs_engine) {
            self.engine();
        }
        if viable.iter().any(Query::needs_dual) {
            self.dual_graph();
        }
        if viable.iter().any(Query::needs_weight_labels) {
            self.weight_labels();
        }

        let threads = threads.clamp(1, unique.len().max(1));
        let results: Vec<OnceLock<Result<Outcome, DualityError>>> =
            unique.iter().map(|_| OnceLock::new()).collect();
        if threads == 1 {
            for (slot, &q) in results.iter().zip(&unique) {
                let _ = slot.set(self.run(q));
            }
        } else {
            let next = AtomicUsize::new(0);
            std::thread::scope(|scope| {
                for _ in 0..threads {
                    scope.spawn(|| loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(&q) = unique.get(i) else { break };
                        let _ = results[i].set(self.run(q));
                    });
                }
            });
        }
        let results: Vec<Result<Outcome, DualityError>> = results
            .into_iter()
            .map(|slot| slot.into_inner().expect("every unique query executed"))
            .collect();

        let rounds = RoundReport::batched(
            self.shared.topo.rounds(),
            self.shared.weight.rounds(),
            results
                .iter()
                .filter_map(|r| r.as_ref().ok())
                .map(|o| &o.rounds().query),
        );
        BatchReport {
            outcomes: slots.iter().map(|&i| results[i].clone()).collect(),
            rounds,
            unique: unique.len(),
            duplicates: queries.len() - unique.len(),
            threads,
        }
    }

    /// Exact maximum st-flow (Theorem 1.2, `Õ(D²)` rounds; the engine
    /// share is amortized). Thin wrapper over [`PlanarSolver::run`].
    ///
    /// # Errors
    ///
    /// [`DualityError::BadEndpoints`] if `s == t` or out of range.
    pub fn max_flow(&self, s: usize, t: usize) -> Result<MaxFlowReport, DualityError> {
        match self.run(Query::MaxFlow { s, t })? {
            Outcome::MaxFlow(r) => Ok(r),
            _ => unreachable!("run(MaxFlow) yields Outcome::MaxFlow"),
        }
    }

    /// Exact directed minimum st-cut (Theorem 6.1). Thin wrapper over
    /// [`PlanarSolver::run`].
    ///
    /// # Errors
    ///
    /// [`DualityError::BadEndpoints`] if `s == t` or out of range.
    pub fn min_st_cut(&self, s: usize, t: usize) -> Result<MinCutReport, DualityError> {
        match self.run(Query::MinStCut { s, t })? {
            Outcome::MinStCut(r) => Ok(r),
            _ => unreachable!("run(MinStCut) yields Outcome::MinStCut"),
        }
    }

    /// `(1 − 1/(k+1))`-approximate max st-flow for undirected st-planar
    /// instances (Theorem 1.3, `D·n^{o(1)}` rounds); `eps_inverse = k`,
    /// `k = 0` runs the exact-oracle substitution. Thin wrapper over
    /// [`PlanarSolver::run`].
    ///
    /// # Errors
    ///
    /// [`DualityError::BadEndpoints`], [`DualityError::NotUndirected`] on
    /// asymmetric capacities, [`DualityError::NotStPlanar`] when `s`, `t`
    /// share no face.
    pub fn approx_max_flow(
        &self,
        s: usize,
        t: usize,
        eps_inverse: u64,
    ) -> Result<ApproxFlowReport, DualityError> {
        match self.run(Query::ApproxMaxFlow { s, t, eps_inverse })? {
            Outcome::ApproxMaxFlow(r) => Ok(r),
            _ => unreachable!("run(ApproxMaxFlow) yields Outcome::ApproxMaxFlow"),
        }
    }

    /// `(1+1/k)`-approximate minimum st-cut for undirected st-planar
    /// instances (Theorem 6.2), via Reif's st-separating dual cycle. Thin
    /// wrapper over [`PlanarSolver::run`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`PlanarSolver::approx_max_flow`].
    pub fn approx_min_st_cut(
        &self,
        s: usize,
        t: usize,
        eps_inverse: u64,
    ) -> Result<ApproxCutReport, DualityError> {
        match self.run(Query::ApproxMinStCut { s, t, eps_inverse })? {
            Outcome::ApproxMinStCut(r) => Ok(r),
            _ => unreachable!("run(ApproxMinStCut) yields Outcome::ApproxMinStCut"),
        }
    }

    /// Directed global minimum cut (Theorem 1.5), over the solver's
    /// per-edge weights (reversal darts are free). Thin wrapper over
    /// [`PlanarSolver::run`].
    ///
    /// # Errors
    ///
    /// [`DualityError::TooSmall`] when the graph has fewer than two
    /// vertices.
    pub fn global_min_cut(&self) -> Result<GlobalCutReport, DualityError> {
        match self.run(Query::GlobalMinCut)? {
            Outcome::GlobalMinCut(r) => Ok(r),
            _ => unreachable!("run(GlobalMinCut) yields Outcome::GlobalMinCut"),
        }
    }

    /// Weighted girth (Theorem 1.7, `Õ(D)` rounds), over the solver's
    /// per-edge weights (must be positive). Runs on the cached dual graph.
    /// Thin wrapper over [`PlanarSolver::run`].
    ///
    /// # Errors
    ///
    /// [`DualityError::NonPositiveWeight`] on a zero weight,
    /// [`DualityError::Acyclic`] when the instance has no cycle.
    pub fn girth(&self) -> Result<GirthReport, DualityError> {
        match self.run(Query::Girth)? {
            Outcome::Girth(r) => Ok(r),
            _ => unreachable!("run(Girth) yields Outcome::Girth"),
        }
    }

    fn run_max_flow(&self, s: usize, t: usize) -> Result<MaxFlowReport, DualityError> {
        self.precheck(Query::MaxFlow { s, t })?;
        let cm = self.cost_model();
        let engine = self.engine();
        let mut query = CostLedger::new();
        let (value, flow, probes) =
            max_flow::run_max_flow(engine, &cm, self.capacities(), s, t, &mut query);
        Ok(MaxFlowReport {
            value,
            flow,
            probes,
            rounds: self.report(query),
        })
    }

    fn run_min_st_cut(&self, s: usize, t: usize) -> Result<MinCutReport, DualityError> {
        self.precheck(Query::MinStCut { s, t })?;
        let cm = self.cost_model();
        let engine = self.engine();
        let mut query = CostLedger::new();
        let (value, side, cut_darts) =
            st_cut::run_exact_cut(engine, &cm, self.capacities(), s, t, &mut query);
        Ok(MinCutReport {
            value,
            side,
            cut_darts,
            rounds: self.report(query),
        })
    }

    fn run_approx_max_flow(
        &self,
        s: usize,
        t: usize,
        eps_inverse: u64,
    ) -> Result<ApproxFlowReport, DualityError> {
        self.precheck(Query::ApproxMaxFlow { s, t, eps_inverse })?;
        let cm = self.cost_model();
        let mut query = CostLedger::new();
        let out = approx_flow::run_approx_flow(
            self.graph(),
            &cm,
            self.capacities(),
            s,
            t,
            eps_inverse,
            &mut query,
        )
        .map_err(|e| lift_st_planar(e, s, t))?;
        Ok(ApproxFlowReport {
            value_numer: out.value_numer,
            denom: out.denom,
            flow_numer: out.flow_numer,
            f1: out.f1,
            f2: out.f2,
            rounds: self.report(query),
        })
    }

    fn run_approx_min_st_cut(
        &self,
        s: usize,
        t: usize,
        eps_inverse: u64,
    ) -> Result<ApproxCutReport, DualityError> {
        self.precheck(Query::ApproxMinStCut { s, t, eps_inverse })?;
        let cm = self.cost_model();
        let mut query = CostLedger::new();
        let (value, cut_edges) = st_cut::run_approx_cut(
            self.graph(),
            &cm,
            self.capacities(),
            s,
            t,
            eps_inverse,
            &mut query,
        )
        .map_err(|e| lift_st_planar(e, s, t))?;
        Ok(ApproxCutReport {
            value,
            cut_edges,
            rounds: self.report(query),
        })
    }

    fn run_global_min_cut(&self) -> Result<GlobalCutReport, DualityError> {
        self.precheck(Query::GlobalMinCut)?;
        let cm = self.cost_model();
        let engine = self.engine();
        // The labels at the instance lengths are a weight-tier artifact:
        // computed once per spec (charged there), reused by every repeat
        // of this query, rebuilt on respec.
        let labels = self.weight_labels();
        let mut query = CostLedger::new();
        let (value, side, cut_edges) =
            global_cut::run_global_cut(engine, labels, &cm, self.edge_weights(), &mut query);
        Ok(GlobalCutReport {
            value,
            side,
            cut_edges,
            rounds: self.report(query),
        })
    }

    fn run_girth(&self) -> Result<GirthReport, DualityError> {
        self.precheck(Query::Girth)?;
        let cm = self.cost_model();
        // The girth pipeline is phrased on G*: consume the cached dual.
        let dual = self.dual_graph();
        let mut query = CostLedger::new();
        let (girth, cycle_edges) =
            girth::run_girth_on_dual(self.graph(), dual, &cm, self.edge_weights(), &mut query)
                .ok_or(DualityError::Acyclic)?;
        Ok(GirthReport {
            girth,
            cycle_edges,
            rounds: self.report(query),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::max_flow::{max_st_flow, MaxFlowOptions};
    use crate::{girth::weighted_girth, global_cut::directed_global_min_cut};
    use duality_planar::gen;

    fn grid_solver(g: &PlanarGraph, seed: u64) -> PlanarSolver {
        let caps = gen::random_undirected_capacities(g.num_edges(), 1, 9, seed);
        PlanarSolver::builder(g).capacities(caps).build().unwrap()
    }

    #[test]
    fn builder_validates_once() {
        let g = gen::grid(3, 3).unwrap();
        assert!(matches!(
            PlanarSolver::builder(&g).build(),
            Err(DualityError::MissingInput)
        ));
        assert!(matches!(
            PlanarSolver::builder(&g).capacities(vec![1; 3]).build(),
            Err(DualityError::CapacityLengthMismatch { .. })
        ));
        let mut caps = vec![1; g.num_darts()];
        caps[5] = -2;
        assert_eq!(
            PlanarSolver::builder(&g).capacities(caps).build().err(),
            Some(DualityError::NegativeCapacity { dart: 5 })
        );
        assert!(matches!(
            PlanarSolver::builder(&g).edge_weights(vec![1; 2]).build(),
            Err(DualityError::WeightLengthMismatch { .. })
        ));
        assert_eq!(
            PlanarSolver::builder(&g)
                .edge_weights(vec![-1; g.num_edges()])
                .build()
                .err(),
            Some(DualityError::NegativeWeight { edge: 0 })
        );
    }

    #[test]
    fn leaf_threshold_is_validated_at_build() {
        let g = gen::grid(3, 3).unwrap();
        for bad in [0usize, 1] {
            assert_eq!(
                PlanarSolver::builder(&g)
                    .capacities(vec![1; g.num_darts()])
                    .with_leaf_threshold(Some(bad))
                    .build()
                    .err(),
                Some(DualityError::BadLeafThreshold { got: bad })
            );
        }
        // The boundary value and the default pass.
        for ok in [Some(MIN_LEAF_THRESHOLD), None] {
            assert!(PlanarSolver::builder(&g)
                .capacities(vec![1; g.num_darts()])
                .with_leaf_threshold(ok)
                .build()
                .is_ok());
        }
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_threshold_setters_still_work() {
        let g = gen::grid(3, 3).unwrap();
        let s = PlanarSolver::builder(&g)
            .capacities(vec![1; g.num_darts()])
            .leaf_threshold(6)
            .build()
            .unwrap();
        let t = PlanarSolver::builder(&g)
            .capacities(vec![1; g.num_darts()])
            .leaf_threshold_opt(Some(6))
            .build()
            .unwrap();
        let (a, b) = (s.max_flow(0, 8).unwrap(), t.max_flow(0, 8).unwrap());
        assert_eq!(a.value, b.value);
        // The deprecated setters funnel into the same validation.
        assert_eq!(
            PlanarSolver::builder(&g)
                .capacities(vec![1; g.num_darts()])
                .leaf_threshold(1)
                .build()
                .err(),
            Some(DualityError::BadLeafThreshold { got: 1 })
        );
    }

    #[test]
    fn capacities_derive_weights_and_vice_versa() {
        let g = gen::grid(3, 3).unwrap();
        let caps = gen::random_directed_capacities(g.num_edges(), 1, 5, 3);
        let s = PlanarSolver::builder(&g)
            .capacities(caps.clone())
            .build()
            .unwrap();
        for e in 0..g.num_edges() {
            assert_eq!(s.edge_weights()[e], caps[2 * e]);
        }
        let w = gen::random_edge_weights(g.num_edges(), 1, 5, 4);
        let s = PlanarSolver::builder(&g)
            .edge_weights(w.clone())
            .build()
            .unwrap();
        for e in 0..g.num_edges() {
            assert_eq!(s.capacities()[2 * e], w[e]);
            assert_eq!(s.capacities()[2 * e + 1], 0);
        }
    }

    #[test]
    fn substrate_is_built_exactly_once_across_distinct_queries() {
        let g = gen::diag_grid(5, 4, 2).unwrap();
        let solver = grid_solver(&g, 2);
        assert_eq!(solver.stats(), SolverStats::default());

        let t = g.num_vertices() - 1;
        let flow = solver.max_flow(0, t).unwrap();
        let cut = solver.min_st_cut(0, t).unwrap();
        let global = solver.global_min_cut().unwrap();
        let girth = solver.girth().unwrap();
        assert!(flow.value > 0 && cut.value == flow.value);
        assert!(global.value >= 0 && girth.girth > 0);

        let stats = solver.stats();
        assert_eq!(stats.engine_builds, 1, "one BDD for three engine queries");
        assert_eq!(stats.dual_builds, 1, "one dual graph");
        assert_eq!(stats.queries, 4);

        // Substrate charges did not grow after the first engine build…
        let substrate_after = solver.substrate_rounds().total();
        let _ = solver.max_flow(0, t).unwrap();
        assert_eq!(solver.substrate_rounds().total(), substrate_after);
        assert_eq!(solver.stats().engine_builds, 1);
    }

    #[test]
    fn clones_share_instance_and_caches() {
        let g = gen::diag_grid(5, 4, 8).unwrap();
        let solver = grid_solver(&g, 8);
        let clone = solver.clone();
        let t = g.num_vertices() - 1;
        let a = solver.max_flow(0, t).unwrap();
        let b = clone.max_flow(0, t).unwrap();
        assert_eq!(a.value, b.value);
        // One engine across both handles; both queries counted centrally.
        assert_eq!(solver.stats().engine_builds, 1);
        assert_eq!(clone.stats().queries, 2);
        assert!(Arc::ptr_eq(solver.instance(), clone.instance()));
    }

    #[test]
    fn solvers_can_share_one_instance_without_copying() {
        let g = gen::diag_grid(4, 4, 5).unwrap();
        let caps = gen::random_undirected_capacities(g.num_edges(), 1, 9, 5);
        let instance = PlanarInstance::new(g, Some(caps), None).unwrap();
        let a = PlanarSolver::from_instance(Arc::clone(&instance));
        let b = PlanarSolver::from_instance_with_threshold(Arc::clone(&instance), Some(8)).unwrap();
        let t = instance.graph().num_vertices() - 1;
        assert_eq!(
            a.max_flow(0, t).unwrap().value,
            b.max_flow(0, t).unwrap().value
        );
        assert_eq!(
            PlanarSolver::from_instance_with_threshold(instance, Some(1)).err(),
            Some(DualityError::BadLeafThreshold { got: 1 })
        );
    }

    #[test]
    fn repeat_queries_pay_only_marginal_rounds() {
        let g = gen::diag_grid(5, 5, 9).unwrap();
        let solver = grid_solver(&g, 9);
        let t = g.num_vertices() - 1;
        let first = solver.max_flow(0, t).unwrap();
        let second = solver.max_flow(0, t).unwrap();
        // Identical marginal cost, identical substrate snapshot.
        assert_eq!(first.rounds.query_total(), second.rounds.query_total());
        assert_eq!(
            first.rounds.substrate_total(),
            second.rounds.substrate_total()
        );
        // The marginal cost excludes the BDD build, which is charged to
        // the topology tier (never the weight tier).
        assert_eq!(second.rounds.query.phase_total("bdd-build"), 0);
        assert!(second.rounds.substrate_topo.phase_total("bdd-build") > 0);
        assert_eq!(second.rounds.substrate_weight.phase_total("bdd-build"), 0);
    }

    #[test]
    fn agrees_with_legacy_free_functions() {
        for seed in 0..3u64 {
            let g = gen::diag_grid(4, 4, seed).unwrap();
            let caps = gen::random_undirected_capacities(g.num_edges(), 1, 9, seed + 20);
            let w = gen::random_edge_weights(g.num_edges(), 1, 9, seed + 40);
            let solver = PlanarSolver::builder(&g)
                .capacities(caps.clone())
                .edge_weights(w.clone())
                .build()
                .unwrap();
            let t = g.num_vertices() - 1;

            let got = solver.max_flow(0, t).unwrap();
            let want = max_st_flow(&g, &caps, 0, t, &MaxFlowOptions::default()).unwrap();
            assert_eq!(got.value, want.value);
            assert_eq!(got.flow, want.flow);

            let gotc = solver.global_min_cut().unwrap();
            let wantc = directed_global_min_cut(&g, &w).unwrap();
            assert_eq!(gotc.value, wantc.value);

            let gotg = solver.girth().unwrap();
            let wantg = weighted_girth(&g, &w).unwrap();
            assert_eq!(gotg.girth, wantg.girth);
        }
    }

    #[test]
    fn approx_queries_work_and_validate() {
        let g = gen::grid(5, 4).unwrap();
        let caps = gen::random_undirected_capacities(g.num_edges(), 1, 9, 3);
        let solver = PlanarSolver::builder(&g).capacities(caps).build().unwrap();
        let r = solver.approx_max_flow(0, 4, 2).unwrap();
        assert!(r.value_numer > 0);
        let c = solver.approx_min_st_cut(0, 4, 2).unwrap();
        // Weak duality, cross-multiplied to stay in exact integers.
        assert!(c.value * r.denom >= r.value_numer);

        // Asymmetric capacities are rejected.
        let dcaps = gen::random_directed_capacities(g.num_edges(), 1, 9, 3);
        let dsolver = PlanarSolver::builder(&g).capacities(dcaps).build().unwrap();
        assert_eq!(
            dsolver.approx_max_flow(0, 4, 2).err(),
            Some(DualityError::NotUndirected)
        );
        // Non-st-planar pairs are rejected with the endpoints attached.
        let g5 = gen::grid(5, 5).unwrap();
        let caps5 = gen::random_undirected_capacities(g5.num_edges(), 1, 9, 1);
        let s5 = PlanarSolver::builder(&g5)
            .capacities(caps5)
            .build()
            .unwrap();
        assert_eq!(
            s5.approx_max_flow(0, 12, 0).err(),
            Some(DualityError::NotStPlanar { s: 0, t: 12 })
        );
    }

    #[test]
    fn endpoint_and_instance_errors() {
        let g = gen::grid(3, 3).unwrap();
        let solver = grid_solver(&g, 1);
        assert_eq!(
            solver.max_flow(2, 2).err(),
            Some(DualityError::BadEndpoints { s: 2, t: 2, n: 9 })
        );
        assert_eq!(
            solver.min_st_cut(0, 100).err(),
            Some(DualityError::BadEndpoints { s: 0, t: 100, n: 9 })
        );
        // Zero weights: girth needs positive ones.
        let zs = PlanarSolver::builder(&g)
            .edge_weights(vec![0; g.num_edges()])
            .build()
            .unwrap();
        assert_eq!(
            zs.girth().err(),
            Some(DualityError::NonPositiveWeight { edge: 0 })
        );
        // Acyclic instance.
        let p = gen::path(5).unwrap();
        let ps = PlanarSolver::builder(&p)
            .edge_weights(vec![3; p.num_edges()])
            .build()
            .unwrap();
        assert_eq!(ps.girth().err(), Some(DualityError::Acyclic));
    }

    #[test]
    fn girth_uses_the_cached_dual() {
        let g = gen::grid(4, 4).unwrap();
        let solver = PlanarSolver::builder(&g)
            .edge_weights(vec![1; g.num_edges()])
            .build()
            .unwrap();
        let a = solver.girth().unwrap();
        let b = solver.girth().unwrap();
        assert_eq!(a.girth, 4);
        assert_eq!(a.girth, b.girth);
        assert_eq!(solver.stats().dual_builds, 1);
        assert_eq!(solver.stats().engine_builds, 0, "girth never needs the BDD");
        // The dual is a real embedded graph with swapped counts.
        let d = solver.dual_graph();
        assert_eq!(d.num_vertices(), g.num_faces());
        assert_eq!(d.num_faces(), g.num_vertices());
    }

    #[test]
    fn run_dispatches_to_the_matching_outcome() {
        let g = gen::diag_grid(4, 4, 6).unwrap();
        let caps = gen::random_undirected_capacities(g.num_edges(), 1, 9, 6);
        let solver = PlanarSolver::builder(&g).capacities(caps).build().unwrap();
        let t = g.num_vertices() - 1;
        let queries = [
            Query::MaxFlow { s: 0, t },
            Query::MinStCut { s: 0, t },
            Query::GlobalMinCut,
            Query::Girth,
        ];
        for q in queries {
            let outcome = solver.run(q).unwrap();
            let ok = matches!(
                (q, &outcome),
                (Query::MaxFlow { .. }, Outcome::MaxFlow(_))
                    | (Query::MinStCut { .. }, Outcome::MinStCut(_))
                    | (Query::GlobalMinCut, Outcome::GlobalMinCut(_))
                    | (Query::Girth, Outcome::Girth(_))
            );
            assert!(ok, "{q} produced a mismatched outcome");
            assert!(!outcome.to_string().is_empty());
        }
    }

    #[test]
    fn batch_deduplicates_and_preserves_order() {
        let g = gen::diag_grid(4, 4, 3).unwrap();
        let caps = gen::random_undirected_capacities(g.num_edges(), 1, 9, 3);
        let solver = PlanarSolver::builder(&g).capacities(caps).build().unwrap();
        let t = g.num_vertices() - 1;
        let batch = solver.run_batch_on(
            &[
                Query::MaxFlow { s: 0, t },
                Query::Girth,
                Query::MaxFlow { s: 0, t }, // duplicate
                Query::MaxFlow { s: 0, t }, // duplicate
            ],
            2,
        );
        assert_eq!(batch.unique, 2);
        assert_eq!(batch.duplicates, 2);
        // Duplicates were answered without re-execution.
        assert_eq!(solver.stats().queries, 2);
        let first = batch.outcomes[0].as_ref().unwrap().as_max_flow().unwrap();
        let third = batch.outcomes[2].as_ref().unwrap().as_max_flow().unwrap();
        assert_eq!(first.value, third.value);
        assert!(batch.outcomes[1].as_ref().unwrap().as_girth().is_some());
        assert!(batch.all_ok());
        assert!(batch.to_string().contains("2 deduplicated"));
    }

    #[test]
    fn batch_merged_report_charges_substrate_once() {
        let g = gen::diag_grid(5, 4, 4).unwrap();
        let caps = gen::random_undirected_capacities(g.num_edges(), 1, 9, 4);
        let solver = PlanarSolver::builder(&g).capacities(caps).build().unwrap();
        let t = g.num_vertices() - 1;
        let batch = solver.run_batch_on(
            &[
                Query::MaxFlow { s: 0, t },
                Query::MinStCut { s: 0, t },
                Query::Girth,
            ],
            2,
        );
        // Merged substrate equals the solver's one-off ledger, and the
        // query share is the exact sum of the marginal shares.
        assert_eq!(
            batch.rounds.substrate_total(),
            solver.substrate_rounds().total()
        );
        let marginal_sum: u64 = batch
            .outcomes
            .iter()
            .map(|o| o.as_ref().unwrap().rounds().query_total())
            .sum();
        assert_eq!(batch.rounds.query_total(), marginal_sum);
        assert_eq!(
            batch.rounds.total(),
            solver.substrate_rounds().total() + marginal_sum
        );
    }

    #[test]
    fn batch_reports_per_query_errors_without_failing() {
        let g = gen::grid(3, 3).unwrap();
        let solver = grid_solver(&g, 7);
        let batch = solver.run_batch_on(
            &[
                Query::MaxFlow { s: 0, t: 8 },
                Query::MaxFlow { s: 2, t: 2 }, // bad endpoints
            ],
            2,
        );
        assert!(batch.outcomes[0].is_ok());
        assert_eq!(
            batch.outcomes[1].as_ref().err(),
            Some(&DualityError::BadEndpoints { s: 2, t: 2, n: 9 })
        );
        assert!(!batch.all_ok());
        assert!(batch.to_string().contains("error: invalid endpoints"));
    }

    #[test]
    fn invalid_queries_never_trigger_substrate_prewarm() {
        let g = gen::grid(3, 3).unwrap();
        let solver = grid_solver(&g, 6);
        // All-invalid batch: nothing is built, nothing is billed — exactly
        // like running the same queries serially.
        let batch = solver.run_batch_on(
            &[
                Query::MaxFlow { s: 0, t: 0 },
                Query::MinStCut { s: 0, t: 99 },
            ],
            2,
        );
        assert!(!batch.all_ok());
        assert_eq!(solver.stats(), SolverStats::default(), "nothing built");
        assert_eq!(batch.rounds.total(), 0, "nothing billed");

        // Mixed batch: only the substrate of the *viable* query is built
        // (girth needs the dual, never the engine).
        let batch = solver.run_batch_on(&[Query::MaxFlow { s: 0, t: 0 }, Query::Girth], 2);
        assert!(batch.outcomes[0].is_err() && batch.outcomes[1].is_ok());
        assert_eq!(solver.stats().engine_builds, 0, "engine not prewarmed");
        assert_eq!(solver.stats().dual_builds, 1);
    }

    #[test]
    fn respec_shares_the_topology_tier_and_rebuilds_the_weight_tier() {
        let g = gen::diag_grid(5, 4, 17).unwrap();
        let caps = gen::random_undirected_capacities(g.num_edges(), 1, 9, 17);
        let solver = PlanarSolver::builder(&g)
            .capacities(caps.clone())
            .build()
            .unwrap();
        let t = g.num_vertices() - 1;
        let flow = solver.max_flow(0, t).unwrap();
        let cut = solver.global_min_cut().unwrap();
        assert_eq!(solver.stats().label_builds, 1, "weight labels cached");

        // Respec: same topology Arc, weight tier starts empty.
        let doubled: Vec<Weight> = caps.iter().map(|&c| 2 * c).collect();
        let respecced = solver.respec_capacities(doubled.clone()).unwrap();
        assert!(Arc::ptr_eq(
            solver.topo_substrate(),
            respecced.topo_substrate()
        ));
        assert_eq!(respecced.stats().engine_builds, 1, "shared counter");
        assert_eq!(respecced.stats().label_builds, 0, "weight tier fresh");

        let flow2 = respecced.max_flow(0, t).unwrap();
        assert_eq!(flow2.value, 2 * flow.value);
        // Topology rounds identical (same ledger snapshot — charged once
        // for the pair); the weight tier was rebuilt for the new spec.
        assert_eq!(
            flow2.rounds.substrate_topo.total(),
            flow.rounds.substrate_topo.total()
        );
        let cut2 = respecced.global_min_cut().unwrap();
        assert_eq!(respecced.stats().label_builds, 1, "rebuilt once per spec");
        assert_eq!(cut2.value, cut.value, "weights were kept by the respec");
        assert!(
            cut2.rounds.substrate_weight.total() > 0,
            "per-spec labeling charge"
        );

        // The engine was never rebuilt: one BDD across both solvers.
        assert_eq!(solver.stats().engine_builds, 1);
    }

    #[test]
    fn respec_rejects_a_foreign_topology() {
        let g = gen::diag_grid(4, 4, 3).unwrap();
        let solver = grid_solver(&g, 3);
        // Identical graph content, different allocation: not respecable.
        let other = PlanarInstance::new(
            g.clone(),
            Some(solver.capacities().to_vec()),
            Some(solver.edge_weights().to_vec()),
        )
        .unwrap();
        assert_eq!(
            solver.respec(other).err(),
            Some(DualityError::TopologyMismatch)
        );
        // The happy path: a copy-on-write respec of the solver's own
        // instance shares the allocation and is accepted.
        let cow = solver
            .instance()
            .with_capacities(vec![1; g.num_darts()])
            .unwrap();
        assert!(solver.respec(cow).is_ok());
    }

    #[test]
    fn zero_threads_clamp_to_serial_execution() {
        // The documented contract: `threads == 0` is not an error — the
        // count clamps to 1 and the batch runs serially, with outcomes and
        // bill identical to an explicit single-thread run.
        let g = gen::diag_grid(4, 4, 12).unwrap();
        let caps = gen::random_undirected_capacities(g.num_edges(), 1, 9, 12);
        let t = g.num_vertices() - 1;
        let queries = [Query::MaxFlow { s: 0, t }, Query::Girth];

        let zero = PlanarSolver::builder(&g)
            .capacities(caps.clone())
            .build()
            .unwrap()
            .run_batch_on(&queries, 0);
        let one = PlanarSolver::builder(&g)
            .capacities(caps)
            .build()
            .unwrap()
            .run_batch_on(&queries, 1);

        assert_eq!(zero.threads, 1, "zero workers clamp to one");
        assert!(zero.all_ok());
        assert_eq!(zero.rounds.total(), one.rounds.total());
        assert_eq!(
            zero.outcomes[0]
                .as_ref()
                .unwrap()
                .as_max_flow()
                .unwrap()
                .value,
            one.outcomes[0]
                .as_ref()
                .unwrap()
                .as_max_flow()
                .unwrap()
                .value
        );
        assert_eq!(
            zero.outcomes[1].as_ref().unwrap().as_girth().unwrap().girth,
            one.outcomes[1].as_ref().unwrap().as_girth().unwrap().girth
        );
    }

    #[test]
    fn empty_batch_is_a_noop() {
        let g = gen::grid(3, 3).unwrap();
        let solver = grid_solver(&g, 5);
        let batch = solver.run_batch(&[]);
        assert!(batch.outcomes.is_empty());
        assert_eq!(batch.unique, 0);
        assert_eq!(batch.rounds.total(), 0);
        assert_eq!(solver.stats(), SolverStats::default(), "nothing was built");
    }
}
