//! The unified `PlanarSolver` façade: one instance, five queries, shared
//! substrate.
//!
//! Every headline result of the paper — exact/approximate max st-flow,
//! exact/approximate min st-cut, directed global min cut, weighted girth —
//! is derived from the same toolkit: the dual graph `G*`, a bounded-
//! diameter branch decomposition, and dual SSSP labelings over the CONGEST
//! substrate. The free functions of the sibling modules rebuild that
//! toolkit on every call; [`PlanarSolver`] builds it **once** and amortizes
//! it across queries:
//!
//! | artifact | built by | used by |
//! |---|---|---|
//! | hop diameter / [`CostModel`] | first query | everything |
//! | embedded dual graph `G*` | first [`PlanarSolver::girth`] | girth |
//! | BDD + dual bags + labeling engine | first flow/cut query | max-flow, min st-cut, global cut |
//!
//! Artifacts are memoized behind `OnceCell`s; the rounds charged while
//! building them accumulate in a **substrate ledger** that every query
//! reports alongside its own marginal cost (see
//! [`duality_congest::RoundReport`]). Build counters
//! ([`PlanarSolver::stats`]) let tests assert that issuing many queries
//! constructs each artifact exactly once.
//!
//! # Example
//!
//! ```
//! use duality_core::solver::PlanarSolver;
//! use duality_planar::gen;
//!
//! let g = gen::diag_grid(4, 4, 7).unwrap();
//! let caps = gen::random_undirected_capacities(g.num_edges(), 1, 9, 7);
//! let solver = PlanarSolver::builder(&g).capacities(caps).build().unwrap();
//!
//! let flow = solver.max_flow(0, 15).unwrap();
//! let cut = solver.min_st_cut(0, 15).unwrap();
//! assert_eq!(flow.value, cut.value); // max-flow min-cut duality
//!
//! // The decomposition was built once and shared by both queries.
//! assert_eq!(solver.stats().engine_builds, 1);
//! // The second query paid only its marginal rounds.
//! assert!(cut.rounds.substrate_total() > 0);
//! ```

use crate::approx_flow::StPlanarError;
use crate::error::DualityError;
use crate::{approx_flow, girth, global_cut, max_flow, st_cut};
use duality_congest::{CostLedger, CostModel, RoundReport};
use duality_labeling::DualSsspEngine;
use duality_planar::{dual, Dart, FaceId, PlanarGraph, Weight};
use std::borrow::Cow;
use std::cell::{Cell, OnceCell, RefCell};

/// Builder for [`PlanarSolver`]: the instance (graph + capacities and/or
/// edge weights) is validated once, up front.
///
/// At least one of [`SolverBuilder::capacities`] (per-dart) and
/// [`SolverBuilder::edge_weights`] (per-edge) must be provided; the missing
/// side is derived — `weights[e] = caps[2e]` (forward-dart capacity), or
/// `caps[2e] = weights[e], caps[2e+1] = 0` (a directed instance).
#[derive(Clone, Debug)]
pub struct SolverBuilder<'g> {
    graph: &'g PlanarGraph,
    capacities: Option<Cow<'g, [Weight]>>,
    edge_weights: Option<Cow<'g, [Weight]>>,
    leaf_threshold: Option<usize>,
}

impl<'g> SolverBuilder<'g> {
    /// Per-dart capacities for the flow/cut queries (`2 * num_edges`
    /// entries, non-negative). Accepts owned or borrowed data; borrowed
    /// slices are not copied.
    pub fn capacities(mut self, caps: impl Into<Cow<'g, [Weight]>>) -> Self {
        self.capacities = Some(caps.into());
        self
    }

    /// Per-edge weights for the global-cut and girth queries (`num_edges`
    /// entries, non-negative). Accepts owned or borrowed data; borrowed
    /// slices are not copied.
    pub fn edge_weights(mut self, weights: impl Into<Cow<'g, [Weight]>>) -> Self {
        self.edge_weights = Some(weights.into());
        self
    }

    /// Overrides the BDD leaf threshold (`None`: the paper's `Θ(D)`
    /// default).
    pub fn leaf_threshold(mut self, threshold: usize) -> Self {
        self.leaf_threshold = Some(threshold);
        self
    }

    /// Optional-valued form of [`SolverBuilder::leaf_threshold`], for
    /// callers forwarding an options struct.
    pub fn leaf_threshold_opt(mut self, threshold: Option<usize>) -> Self {
        self.leaf_threshold = threshold;
        self
    }

    /// Validates the instance and builds the solver. No substrate artifact
    /// is constructed yet — that happens lazily on first use.
    ///
    /// # Errors
    ///
    /// [`DualityError::CapacityLengthMismatch`] /
    /// [`DualityError::WeightLengthMismatch`] on wrong vector lengths,
    /// [`DualityError::NegativeCapacity`] / [`DualityError::NegativeWeight`]
    /// on negative entries, [`DualityError::MissingInput`] when neither
    /// side was provided.
    pub fn build(self) -> Result<PlanarSolver<'g>, DualityError> {
        let g = self.graph;
        if let Some(caps) = &self.capacities {
            if caps.len() != g.num_darts() {
                return Err(DualityError::CapacityLengthMismatch {
                    expected: g.num_darts(),
                    got: caps.len(),
                });
            }
            if let Some(d) = caps.iter().position(|&c| c < 0) {
                return Err(DualityError::NegativeCapacity { dart: d });
            }
        }
        if let Some(w) = &self.edge_weights {
            if w.len() != g.num_edges() {
                return Err(DualityError::WeightLengthMismatch {
                    expected: g.num_edges(),
                    got: w.len(),
                });
            }
            if let Some(e) = w.iter().position(|&x| x < 0) {
                return Err(DualityError::NegativeWeight { edge: e });
            }
        }
        let (caps, weights) = match (self.capacities, self.edge_weights) {
            (Some(c), Some(w)) => (c, w),
            (Some(c), None) => {
                let w: Vec<Weight> = (0..g.num_edges()).map(|e| c[2 * e]).collect();
                (c, Cow::Owned(w))
            }
            (None, Some(w)) => {
                let mut c = vec![0; g.num_darts()];
                for (e, &x) in w.iter().enumerate() {
                    c[2 * e] = x;
                }
                (Cow::Owned(c), w)
            }
            (None, None) => return Err(DualityError::MissingInput),
        };
        Ok(PlanarSolver {
            graph: g,
            caps,
            weights,
            leaf_threshold: self.leaf_threshold,
            cost_model: OnceCell::new(),
            engine: OnceCell::new(),
            dual: OnceCell::new(),
            substrate: RefCell::new(CostLedger::new()),
            engine_builds: Cell::new(0),
            dual_builds: Cell::new(0),
            queries: Cell::new(0),
        })
    }
}

/// Snapshot of the solver's build counters, for cache-reuse assertions.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SolverStats {
    /// Times the BDD + dual-bag labeling engine was constructed (≤ 1).
    pub engine_builds: u32,
    /// Times the embedded dual graph was constructed (≤ 1).
    pub dual_builds: u32,
    /// Queries answered so far.
    pub queries: u32,
}

/// Exact max st-flow witness (paper, Theorem 1.2).
#[derive(Clone, Debug)]
pub struct MaxFlowReport {
    /// The maximum flow value `λ*`.
    pub value: Weight,
    /// Net flow per dart (`flow[d] = -flow[rev d]`).
    pub flow: Vec<Weight>,
    /// Dual-SSSP probes of the binary search (`O(log λ*)`).
    pub probes: u32,
    /// Substrate + query round split.
    pub rounds: RoundReport,
}

/// Exact min st-cut witness (paper, Theorem 6.1).
#[derive(Clone, Debug)]
pub struct MinCutReport {
    /// The cut capacity (equals the max-flow value).
    pub value: Weight,
    /// `side[v]` is `true` on the `s` shore.
    pub side: Vec<bool>,
    /// The saturated darts crossing from the `s` side to the `t` side.
    pub cut_darts: Vec<Dart>,
    /// Substrate + query round split.
    pub rounds: RoundReport,
}

/// Approximate st-planar max-flow witness (paper, Theorem 1.3): a rational
/// flow `flow_numer[d] / denom` per dart.
#[derive(Clone, Debug)]
pub struct ApproxFlowReport {
    /// Flow value numerator (value = `value_numer / denom`).
    pub value_numer: Weight,
    /// Common denominator (`k + 1` for `ε = 1/k`; 1 in exact mode).
    pub denom: Weight,
    /// Per-dart flow numerators (antisymmetric).
    pub flow_numer: Vec<Weight>,
    /// The two dual faces created by Hassin's artificial edge.
    pub f1: FaceId,
    /// See [`ApproxFlowReport::f1`].
    pub f2: FaceId,
    /// Substrate + query round split.
    pub rounds: RoundReport,
}

/// Approximate st-planar min-cut witness (paper, Theorem 6.2).
#[derive(Clone, Debug)]
pub struct ApproxCutReport {
    /// The (unquantized) capacity of the cut.
    pub value: Weight,
    /// The cut edges (undirected).
    pub cut_edges: Vec<usize>,
    /// Substrate + query round split.
    pub rounds: RoundReport,
}

/// Directed global min-cut witness (paper, Theorem 1.5).
#[derive(Clone, Debug)]
pub struct GlobalCutReport {
    /// The cut weight (edges leaving the `S` side).
    pub value: Weight,
    /// `side[v]` is `true` for vertices of `S`.
    pub side: Vec<bool>,
    /// The primal edges crossing the bisection.
    pub cut_edges: Vec<usize>,
    /// Substrate + query round split.
    pub rounds: RoundReport,
}

/// Weighted-girth witness (paper, Theorem 1.7).
#[derive(Clone, Debug)]
pub struct GirthReport {
    /// The weight of the minimum cycle.
    pub girth: Weight,
    /// The edges of a minimum-weight cycle.
    pub cycle_edges: Vec<usize>,
    /// Substrate + query round split.
    pub rounds: RoundReport,
}

/// The unified façade over the paper's five results, with the expensive
/// shared substrate built once and cached (see the module docs).
pub struct PlanarSolver<'g> {
    graph: &'g PlanarGraph,
    caps: Cow<'g, [Weight]>,
    weights: Cow<'g, [Weight]>,
    leaf_threshold: Option<usize>,
    cost_model: OnceCell<CostModel>,
    engine: OnceCell<DualSsspEngine<'g>>,
    dual: OnceCell<PlanarGraph>,
    /// Rounds charged while building substrate artifacts (one-off).
    substrate: RefCell<CostLedger>,
    engine_builds: Cell<u32>,
    dual_builds: Cell<u32>,
    queries: Cell<u32>,
}

/// Lifts a shared-pipeline st-planar error into the façade dialect,
/// attaching the query endpoints. Symmetry is screened by
/// `check_undirected` before the pipelines run, but the mapping stays
/// faithful in case they ever report it.
fn lift_st_planar(e: StPlanarError, s: usize, t: usize) -> DualityError {
    match e {
        StPlanarError::NotStPlanar => DualityError::NotStPlanar { s, t },
        StPlanarError::NotUndirected => DualityError::NotUndirected,
    }
}

impl std::fmt::Debug for PlanarSolver<'_> {
    // Manual impl: the cached engine holds the whole BDD, which would
    // flood debug output (and does not implement `Debug`); report the
    // instance shape and cache state instead.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PlanarSolver")
            .field("vertices", &self.graph.num_vertices())
            .field("edges", &self.graph.num_edges())
            .field("leaf_threshold", &self.leaf_threshold)
            .field("engine_cached", &self.engine.get().is_some())
            .field("dual_cached", &self.dual.get().is_some())
            .field("stats", &self.stats())
            .finish()
    }
}

impl<'g> PlanarSolver<'g> {
    /// Starts building a solver over `graph`.
    pub fn builder(graph: &'g PlanarGraph) -> SolverBuilder<'g> {
        SolverBuilder {
            graph,
            capacities: None,
            edge_weights: None,
            leaf_threshold: None,
        }
    }

    /// The underlying graph.
    pub fn graph(&self) -> &'g PlanarGraph {
        self.graph
    }

    /// The validated per-dart capacities.
    pub fn capacities(&self) -> &[Weight] {
        &self.caps
    }

    /// The validated per-edge weights.
    pub fn edge_weights(&self) -> &[Weight] {
        &self.weights
    }

    /// Build counters (cache-reuse evidence).
    pub fn stats(&self) -> SolverStats {
        SolverStats {
            engine_builds: self.engine_builds.get(),
            dual_builds: self.dual_builds.get(),
            queries: self.queries.get(),
        }
    }

    /// Snapshot of the rounds charged for substrate construction so far.
    pub fn substrate_rounds(&self) -> CostLedger {
        self.substrate.borrow().clone()
    }

    /// The CONGEST cost model (measures the hop diameter on first use; the
    /// BFS-flood charge lands in the substrate ledger).
    pub fn cost_model(&self) -> CostModel {
        *self.cost_model.get_or_init(|| {
            let cm = CostModel::new(self.graph.num_vertices(), self.graph.diameter());
            // Distributedly the diameter estimate is a BFS flood + upcast.
            self.substrate
                .borrow_mut()
                .charge("substrate-diameter", cm.bfs(cm.d) + cm.global_aggregate());
            cm
        })
    }

    /// The cached labeling engine (BDD + dual bags + separators), built on
    /// first use with its `Õ(D)`-per-level charges in the substrate ledger.
    fn engine(&self) -> &DualSsspEngine<'g> {
        let cm = self.cost_model();
        self.engine.get_or_init(|| {
            self.engine_builds.set(self.engine_builds.get() + 1);
            let mut ledger = self.substrate.borrow_mut();
            DualSsspEngine::new(self.graph, &cm, self.leaf_threshold, &mut ledger)
        })
    }

    /// The cached labeling engine (advanced API): the BDD, dual bags and
    /// separators, built on first use. Lets power users run custom dual
    /// labelings (e.g. [`duality_labeling::sssp::dual_sssp`]) against the
    /// same substrate the flow/cut queries amortize.
    pub fn labeling_engine(&self) -> &DualSsspEngine<'g> {
        self.engine()
    }

    /// The cached embedded dual graph `G*`.
    pub fn dual_graph(&self) -> &PlanarGraph {
        let cm = self.cost_model();
        self.dual.get_or_init(|| {
            self.dual_builds.set(self.dual_builds.get() + 1);
            self.substrate
                .borrow_mut()
                .charge("substrate-dual", cm.dual_part_wise_aggregation());
            dual::dual_graph(self.graph)
                .expect("the dual of a valid embedding is a valid embedding")
        })
    }

    fn check_endpoints(&self, s: usize, t: usize) -> Result<(), DualityError> {
        let n = self.graph.num_vertices();
        if s == t || s >= n || t >= n {
            return Err(DualityError::BadEndpoints { s, t, n });
        }
        Ok(())
    }

    fn check_undirected(&self) -> Result<(), DualityError> {
        for e in 0..self.graph.num_edges() {
            if self.caps[2 * e] != self.caps[2 * e + 1] {
                return Err(DualityError::NotUndirected);
            }
        }
        Ok(())
    }

    fn report(&self, query: CostLedger) -> RoundReport {
        self.queries.set(self.queries.get() + 1);
        RoundReport {
            substrate: self.substrate.borrow().clone(),
            query,
        }
    }

    /// Exact maximum st-flow (Theorem 1.2, `Õ(D²)` rounds; the engine
    /// share is amortized).
    ///
    /// # Errors
    ///
    /// [`DualityError::BadEndpoints`] if `s == t` or out of range.
    pub fn max_flow(&self, s: usize, t: usize) -> Result<MaxFlowReport, DualityError> {
        self.check_endpoints(s, t)?;
        let cm = self.cost_model();
        let engine = self.engine();
        let mut query = CostLedger::new();
        let (value, flow, probes) =
            max_flow::run_max_flow(engine, &cm, &self.caps, s, t, &mut query);
        Ok(MaxFlowReport {
            value,
            flow,
            probes,
            rounds: self.report(query),
        })
    }

    /// Exact directed minimum st-cut (Theorem 6.1).
    ///
    /// # Errors
    ///
    /// [`DualityError::BadEndpoints`] if `s == t` or out of range.
    pub fn min_st_cut(&self, s: usize, t: usize) -> Result<MinCutReport, DualityError> {
        self.check_endpoints(s, t)?;
        let cm = self.cost_model();
        let engine = self.engine();
        let mut query = CostLedger::new();
        let (value, side, cut_darts) =
            st_cut::run_exact_cut(engine, &cm, &self.caps, s, t, &mut query);
        Ok(MinCutReport {
            value,
            side,
            cut_darts,
            rounds: self.report(query),
        })
    }

    /// `(1 − 1/(k+1))`-approximate max st-flow for undirected st-planar
    /// instances (Theorem 1.3, `D·n^{o(1)}` rounds); `eps_inverse = k`,
    /// `k = 0` runs the exact-oracle substitution.
    ///
    /// # Errors
    ///
    /// [`DualityError::BadEndpoints`], [`DualityError::NotUndirected`] on
    /// asymmetric capacities, [`DualityError::NotStPlanar`] when `s`, `t`
    /// share no face.
    pub fn approx_max_flow(
        &self,
        s: usize,
        t: usize,
        eps_inverse: u64,
    ) -> Result<ApproxFlowReport, DualityError> {
        self.check_endpoints(s, t)?;
        self.check_undirected()?;
        let cm = self.cost_model();
        let mut query = CostLedger::new();
        let out = approx_flow::run_approx_flow(
            self.graph,
            &cm,
            &self.caps,
            s,
            t,
            eps_inverse,
            &mut query,
        )
        .map_err(|e| lift_st_planar(e, s, t))?;
        Ok(ApproxFlowReport {
            value_numer: out.value_numer,
            denom: out.denom,
            flow_numer: out.flow_numer,
            f1: out.f1,
            f2: out.f2,
            rounds: self.report(query),
        })
    }

    /// `(1+1/k)`-approximate minimum st-cut for undirected st-planar
    /// instances (Theorem 6.2), via Reif's st-separating dual cycle.
    ///
    /// # Errors
    ///
    /// Same conditions as [`PlanarSolver::approx_max_flow`].
    pub fn approx_min_st_cut(
        &self,
        s: usize,
        t: usize,
        eps_inverse: u64,
    ) -> Result<ApproxCutReport, DualityError> {
        self.check_endpoints(s, t)?;
        self.check_undirected()?;
        let cm = self.cost_model();
        let mut query = CostLedger::new();
        let (value, cut_edges) =
            st_cut::run_approx_cut(self.graph, &cm, &self.caps, s, t, eps_inverse, &mut query)
                .map_err(|e| lift_st_planar(e, s, t))?;
        Ok(ApproxCutReport {
            value,
            cut_edges,
            rounds: self.report(query),
        })
    }

    /// Directed global minimum cut (Theorem 1.5), over the solver's
    /// per-edge weights (reversal darts are free).
    ///
    /// # Errors
    ///
    /// [`DualityError::TooSmall`] when the graph has fewer than two
    /// vertices.
    pub fn global_min_cut(&self) -> Result<GlobalCutReport, DualityError> {
        if self.graph.num_vertices() < 2 {
            return Err(DualityError::TooSmall {
                needed: 2,
                vertices: self.graph.num_vertices(),
            });
        }
        let cm = self.cost_model();
        let engine = self.engine();
        let mut query = CostLedger::new();
        let (value, side, cut_edges) =
            global_cut::run_global_cut(engine, &cm, &self.weights, &mut query);
        Ok(GlobalCutReport {
            value,
            side,
            cut_edges,
            rounds: self.report(query),
        })
    }

    /// Weighted girth (Theorem 1.7, `Õ(D)` rounds), over the solver's
    /// per-edge weights (must be positive). Runs on the cached dual graph.
    ///
    /// # Errors
    ///
    /// [`DualityError::NonPositiveWeight`] on a zero weight,
    /// [`DualityError::Acyclic`] when the instance has no cycle.
    pub fn girth(&self) -> Result<GirthReport, DualityError> {
        if let Some(e) = self.weights.iter().position(|&w| w <= 0) {
            return Err(DualityError::NonPositiveWeight { edge: e });
        }
        let cm = self.cost_model();
        // The girth pipeline is phrased on G*: consume the cached dual.
        let dual = self.dual_graph();
        let mut query = CostLedger::new();
        let (girth, cycle_edges) =
            girth::run_girth_on_dual(self.graph, dual, &cm, &self.weights, &mut query)
                .ok_or(DualityError::Acyclic)?;
        Ok(GirthReport {
            girth,
            cycle_edges,
            rounds: self.report(query),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::max_flow::{max_st_flow, MaxFlowOptions};
    use crate::{girth::weighted_girth, global_cut::directed_global_min_cut};
    use duality_planar::gen;

    fn grid_solver(g: &PlanarGraph, seed: u64) -> PlanarSolver<'_> {
        let caps = gen::random_undirected_capacities(g.num_edges(), 1, 9, seed);
        PlanarSolver::builder(g).capacities(caps).build().unwrap()
    }

    #[test]
    fn builder_validates_once() {
        let g = gen::grid(3, 3).unwrap();
        assert!(matches!(
            PlanarSolver::builder(&g).build(),
            Err(DualityError::MissingInput)
        ));
        assert!(matches!(
            PlanarSolver::builder(&g).capacities(vec![1; 3]).build(),
            Err(DualityError::CapacityLengthMismatch { .. })
        ));
        let mut caps = vec![1; g.num_darts()];
        caps[5] = -2;
        assert_eq!(
            PlanarSolver::builder(&g).capacities(caps).build().err(),
            Some(DualityError::NegativeCapacity { dart: 5 })
        );
        assert!(matches!(
            PlanarSolver::builder(&g).edge_weights(vec![1; 2]).build(),
            Err(DualityError::WeightLengthMismatch { .. })
        ));
        assert_eq!(
            PlanarSolver::builder(&g)
                .edge_weights(vec![-1; g.num_edges()])
                .build()
                .err(),
            Some(DualityError::NegativeWeight { edge: 0 })
        );
    }

    #[test]
    fn capacities_derive_weights_and_vice_versa() {
        let g = gen::grid(3, 3).unwrap();
        let caps = gen::random_directed_capacities(g.num_edges(), 1, 5, 3);
        let s = PlanarSolver::builder(&g)
            .capacities(caps.clone())
            .build()
            .unwrap();
        for e in 0..g.num_edges() {
            assert_eq!(s.edge_weights()[e], caps[2 * e]);
        }
        let w = gen::random_edge_weights(g.num_edges(), 1, 5, 4);
        let s = PlanarSolver::builder(&g)
            .edge_weights(w.clone())
            .build()
            .unwrap();
        for e in 0..g.num_edges() {
            assert_eq!(s.capacities()[2 * e], w[e]);
            assert_eq!(s.capacities()[2 * e + 1], 0);
        }
    }

    #[test]
    fn substrate_is_built_exactly_once_across_distinct_queries() {
        let g = gen::diag_grid(5, 4, 2).unwrap();
        let solver = grid_solver(&g, 2);
        assert_eq!(solver.stats(), SolverStats::default());

        let t = g.num_vertices() - 1;
        let flow = solver.max_flow(0, t).unwrap();
        let cut = solver.min_st_cut(0, t).unwrap();
        let global = solver.global_min_cut().unwrap();
        let girth = solver.girth().unwrap();
        assert!(flow.value > 0 && cut.value == flow.value);
        assert!(global.value >= 0 && girth.girth > 0);

        let stats = solver.stats();
        assert_eq!(stats.engine_builds, 1, "one BDD for three engine queries");
        assert_eq!(stats.dual_builds, 1, "one dual graph");
        assert_eq!(stats.queries, 4);

        // Substrate charges did not grow after the first engine build…
        let substrate_after = solver.substrate_rounds().total();
        let _ = solver.max_flow(0, t).unwrap();
        assert_eq!(solver.substrate_rounds().total(), substrate_after);
        assert_eq!(solver.stats().engine_builds, 1);
    }

    #[test]
    fn repeat_queries_pay_only_marginal_rounds() {
        let g = gen::diag_grid(5, 5, 9).unwrap();
        let solver = grid_solver(&g, 9);
        let t = g.num_vertices() - 1;
        let first = solver.max_flow(0, t).unwrap();
        let second = solver.max_flow(0, t).unwrap();
        // Identical marginal cost, identical substrate snapshot.
        assert_eq!(first.rounds.query_total(), second.rounds.query_total());
        assert_eq!(
            first.rounds.substrate_total(),
            second.rounds.substrate_total()
        );
        // The marginal cost excludes the BDD build.
        assert_eq!(second.rounds.query.phase_total("bdd-build"), 0);
        assert!(second.rounds.substrate.phase_total("bdd-build") > 0);
    }

    #[test]
    fn agrees_with_legacy_free_functions() {
        for seed in 0..3u64 {
            let g = gen::diag_grid(4, 4, seed).unwrap();
            let caps = gen::random_undirected_capacities(g.num_edges(), 1, 9, seed + 20);
            let w = gen::random_edge_weights(g.num_edges(), 1, 9, seed + 40);
            let solver = PlanarSolver::builder(&g)
                .capacities(caps.clone())
                .edge_weights(w.clone())
                .build()
                .unwrap();
            let t = g.num_vertices() - 1;

            let got = solver.max_flow(0, t).unwrap();
            let want = max_st_flow(&g, &caps, 0, t, &MaxFlowOptions::default()).unwrap();
            assert_eq!(got.value, want.value);
            assert_eq!(got.flow, want.flow);

            let gotc = solver.global_min_cut().unwrap();
            let wantc = directed_global_min_cut(&g, &w).unwrap();
            assert_eq!(gotc.value, wantc.value);

            let gotg = solver.girth().unwrap();
            let wantg = weighted_girth(&g, &w).unwrap();
            assert_eq!(gotg.girth, wantg.girth);
        }
    }

    #[test]
    fn approx_queries_work_and_validate() {
        let g = gen::grid(5, 4).unwrap();
        let caps = gen::random_undirected_capacities(g.num_edges(), 1, 9, 3);
        let solver = PlanarSolver::builder(&g).capacities(caps).build().unwrap();
        let r = solver.approx_max_flow(0, 4, 2).unwrap();
        assert!(r.value_numer > 0);
        let c = solver.approx_min_st_cut(0, 4, 2).unwrap();
        // Weak duality, cross-multiplied to stay in exact integers.
        assert!(c.value * r.denom >= r.value_numer);

        // Asymmetric capacities are rejected.
        let dcaps = gen::random_directed_capacities(g.num_edges(), 1, 9, 3);
        let dsolver = PlanarSolver::builder(&g).capacities(dcaps).build().unwrap();
        assert_eq!(
            dsolver.approx_max_flow(0, 4, 2).err(),
            Some(DualityError::NotUndirected)
        );
        // Non-st-planar pairs are rejected with the endpoints attached.
        let g5 = gen::grid(5, 5).unwrap();
        let caps5 = gen::random_undirected_capacities(g5.num_edges(), 1, 9, 1);
        let s5 = PlanarSolver::builder(&g5)
            .capacities(caps5)
            .build()
            .unwrap();
        assert_eq!(
            s5.approx_max_flow(0, 12, 0).err(),
            Some(DualityError::NotStPlanar { s: 0, t: 12 })
        );
    }

    #[test]
    fn endpoint_and_instance_errors() {
        let g = gen::grid(3, 3).unwrap();
        let solver = grid_solver(&g, 1);
        assert_eq!(
            solver.max_flow(2, 2).err(),
            Some(DualityError::BadEndpoints { s: 2, t: 2, n: 9 })
        );
        assert_eq!(
            solver.min_st_cut(0, 100).err(),
            Some(DualityError::BadEndpoints { s: 0, t: 100, n: 9 })
        );
        // Zero weights: girth needs positive ones.
        let zs = PlanarSolver::builder(&g)
            .edge_weights(vec![0; g.num_edges()])
            .build()
            .unwrap();
        assert_eq!(
            zs.girth().err(),
            Some(DualityError::NonPositiveWeight { edge: 0 })
        );
        // Acyclic instance.
        let p = gen::path(5).unwrap();
        let ps = PlanarSolver::builder(&p)
            .edge_weights(vec![3; p.num_edges()])
            .build()
            .unwrap();
        assert_eq!(ps.girth().err(), Some(DualityError::Acyclic));
    }

    #[test]
    fn girth_uses_the_cached_dual() {
        let g = gen::grid(4, 4).unwrap();
        let solver = PlanarSolver::builder(&g)
            .edge_weights(vec![1; g.num_edges()])
            .build()
            .unwrap();
        let a = solver.girth().unwrap();
        let b = solver.girth().unwrap();
        assert_eq!(a.girth, 4);
        assert_eq!(a.girth, b.girth);
        assert_eq!(solver.stats().dual_builds, 1);
        assert_eq!(solver.stats().engine_builds, 0, "girth never needs the BDD");
        // The dual is a real embedded graph with swapped counts.
        let d = solver.dual_graph();
        assert_eq!(d.num_vertices(), g.num_faces());
        assert_eq!(d.num_faces(), g.num_vertices());
    }
}
