//! The keyed serving layer: a thread-safe registry of cached solvers.
//!
//! A production deployment serves many instances — one road network per
//! city, one power grid per region — each re-specced over and over as
//! tariffs or line ratings move. [`SolverPool`] is the front door for that
//! workload: it maps a cheap [`InstanceKey`] (graph fingerprint + spec
//! hash) to a cached [`PlanarSolver`], evicts least-recently-used entries
//! beyond its capacity, and — the point of the two-tier substrate — admits
//! a re-specced instance by **respeccing a cached solver of the same
//! shared graph** ([`PlanarSolver::respec`]), so the new entry reuses the
//! existing `Arc<TopoSubstrate>` instead of rebuilding the dual graph and
//! BDD. Hit / miss / respec-reuse / eviction / lock-contention counters
//! ([`SolverPool::stats`]) make the cache behavior auditable.
//!
//! # Example
//!
//! ```
//! use duality_core::pool::SolverPool;
//! use duality_core::{PlanarInstance, Query};
//! use duality_planar::gen;
//!
//! let g = gen::diag_grid(4, 4, 7).unwrap();
//! let caps = gen::random_undirected_capacities(g.num_edges(), 1, 9, 7);
//! let instance = PlanarInstance::new(g, Some(caps), None).unwrap();
//!
//! let pool = SolverPool::new(8);
//! let flow = pool.run(&instance, Query::MaxFlow { s: 0, t: 15 }).unwrap();
//!
//! // A re-specced scenario reuses the cached topology substrate.
//! let surge = instance.with_capacities(vec![9; instance.graph().num_darts()]).unwrap();
//! let _ = pool.run(&surge, Query::MaxFlow { s: 0, t: 15 }).unwrap();
//!
//! let stats = pool.stats();
//! // Two misses (each spec admitted once), the second served by respec:
//! // the dual graph and BDD were built once for both.
//! assert_eq!((stats.misses, stats.respec_reuses), (2, 1));
//! assert!(flow.as_max_flow().unwrap().value > 0);
//! ```

use crate::error::DualityError;
use crate::heap_size::HeapSize;
use crate::instance::PlanarInstance;
use crate::solver::{BatchReport, Outcome, PlanarSolver, Query};
use duality_planar::PlanarGraph;
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, TryLockError};

/// A cheap, copyable identity for a `(graph, spec)` pair: a fingerprint of
/// the embedding (vertex count plus the full rotation system) and a hash
/// of the capacity/weight vectors. Keys are `Hash + Eq` so they can index
/// any map — and they name pool entries without holding the instance
/// alive. The hash runs once per instance (memoized on it); copying and
/// comparing keys is `O(1)`.
///
/// The fingerprint is content-based, not allocation-based: the same graph
/// built twice keys identically. It is still a 128-bit *hash* — wherever
/// an instance is available to compare against, the pool treats the key
/// as a lookup accelerator and verifies full content equality before
/// serving a cached solver, and its *respec-reuse* path demands
/// allocation identity (`Arc::ptr_eq`) before sharing a topology
/// substrate, so a collision can never splice two different problems
/// together. Only the by-key entry points ([`SolverPool::get`],
/// [`SolverPool::run_keyed`]) trust the hash alone.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct InstanceKey {
    topo: u64,
    spec: u64,
}

impl InstanceKey {
    /// The key of an instance. The `O(n + m)` content hash runs once per
    /// instance and is memoized, so repeat pool lookups are `O(1)`.
    pub fn of(instance: &PlanarInstance) -> InstanceKey {
        *instance.cached_key.get_or_init(|| InstanceKey {
            topo: topo_fingerprint(instance.graph()),
            spec: spec_hash(instance),
        })
    }

    /// The embedding fingerprint: equal for every respec of one graph.
    pub fn topo_fingerprint(&self) -> u64 {
        self.topo
    }

    /// The spec hash (capacities + weights): changes on every respec.
    pub fn spec_hash(&self) -> u64 {
        self.spec
    }

    /// Reassembles a key from recorded fingerprints (telemetry spans and
    /// other durable records carry the two halves separately). Such a
    /// key identifies content for lookups and attribution; it cannot, of
    /// course, admit an instance it was not computed from.
    pub fn from_parts(topo_fingerprint: u64, spec_hash: u64) -> InstanceKey {
        InstanceKey {
            topo: topo_fingerprint,
            spec: spec_hash,
        }
    }
}

impl std::fmt::Display for InstanceKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:016x}/{:016x}", self.topo, self.spec)
    }
}

/// Fingerprints the embedding: vertex count plus, per dart, its tail and
/// its rotation successor — which together determine the rotation system
/// (and hence faces, dual, and BDD) completely.
fn topo_fingerprint(g: &PlanarGraph) -> u64 {
    let mut h = DefaultHasher::new();
    g.num_vertices().hash(&mut h);
    g.num_edges().hash(&mut h);
    for d in g.darts() {
        g.tail(d).hash(&mut h);
        g.next_around_tail(d).index().hash(&mut h);
    }
    h.finish()
}

fn spec_hash(instance: &PlanarInstance) -> u64 {
    let mut h = DefaultHasher::new();
    instance.capacities().hash(&mut h);
    instance.edge_weights().hash(&mut h);
    h.finish()
}

/// Full content equality of two instances — the collision guard behind
/// every hash-keyed hit, so a 128-bit key collision degrades to a miss
/// instead of silently serving another problem's solver. Shared graph
/// `Arc`s short-circuit; otherwise the embedding is compared dart by dart
/// (same `O(n + m)` as the hash itself, paid only on a key match).
fn same_problem(a: &PlanarInstance, b: &PlanarInstance) -> bool {
    a.capacities() == b.capacities()
        && a.edge_weights() == b.edge_weights()
        && same_embedding(a.graph_arc(), b.graph_arc())
}

fn same_embedding(a: &Arc<PlanarGraph>, b: &Arc<PlanarGraph>) -> bool {
    if Arc::ptr_eq(a, b) {
        return true;
    }
    a.num_vertices() == b.num_vertices()
        && a.num_edges() == b.num_edges()
        && a.darts()
            .all(|d| a.tail(d) == b.tail(d) && a.next_around_tail(d) == b.next_around_tail(d))
}

/// Counters of a [`SolverPool`] (see [`SolverPool::stats`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Lookups answered by a cached solver.
    pub hits: u64,
    /// Lookups that had to construct a solver.
    pub misses: u64,
    /// Misses served by respeccing a cached solver of the same shared
    /// graph (topology substrate reused — counted *in addition to* the
    /// miss).
    pub respec_reuses: u64,
    /// Entries evicted by the LRU policy.
    pub evictions: u64,
    /// Lock acquisitions that found the pool mutex held and had to wait
    /// — the shard-contention signal: a sharded serving layer whose
    /// per-shard pools show this climbing needs more shards, not more
    /// workers.
    pub lock_contended: u64,
    /// Entries currently cached.
    pub len: usize,
    /// Maximum entries the pool retains.
    pub capacity: usize,
    /// Estimated heap bytes of the cached solvers right now (see
    /// [`crate::heap_size`] for the accounting conventions). Refreshed on
    /// every [`SolverPool::stats`] call and admission, so lazily built
    /// substrate growth is observed, not just admission-time size.
    pub resident_bytes: u64,
    /// High-water mark of `resident_bytes` over the pool's lifetime.
    pub peak_resident_bytes: u64,
    /// Cumulative bytes released by evictions (capacity-, budget- and
    /// policy-driven alike).
    pub evicted_bytes: u64,
    /// The byte budget admissions are held to (0 = count-capped only).
    pub byte_budget: u64,
}

impl PoolStats {
    /// Merges the counters of another pool into this one — the shard
    /// aggregation primitive: a sharded serving layer sums its per-shard
    /// stats into one fleet-wide line (`len`/`capacity` sum too, so the
    /// merged ratio still reads "entries cached / entries retainable").
    pub fn absorb(&mut self, other: &PoolStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.respec_reuses += other.respec_reuses;
        self.evictions += other.evictions;
        self.lock_contended += other.lock_contended;
        self.len += other.len;
        self.capacity += other.capacity;
        self.resident_bytes += other.resident_bytes;
        self.peak_resident_bytes += other.peak_resident_bytes;
        self.evicted_bytes += other.evicted_bytes;
        self.byte_budget += other.byte_budget;
    }

    /// Sums an iterator of per-shard stats into one merged line.
    pub fn merged<'a>(stats: impl IntoIterator<Item = &'a PoolStats>) -> PoolStats {
        let mut out = PoolStats::default();
        for s in stats {
            out.absorb(s);
        }
        out
    }
}

impl std::fmt::Display for PoolStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "pool: {}/{} entries, {} hits, {} misses ({} respec-reuses), {} evictions, {} lock waits, \
             {} B resident (peak {} B, evicted {} B)",
            self.len,
            self.capacity,
            self.hits,
            self.misses,
            self.respec_reuses,
            self.evictions,
            self.lock_contended,
            self.resident_bytes,
            self.peak_resident_bytes,
            self.evicted_bytes
        )
    }
}

/// One cached entry's residency record (see [`SolverPool::residency`]):
/// which key is cached and how long it has sat untouched. Age is measured
/// in **lookup ticks** — the pool's logical clock advances once per
/// instance- or key-bearing lookup, not with wall time — so "cold" means
/// "many lookups have happened since anyone wanted this entry", which is
/// exactly the signal an eviction policy wants, independent of traffic
/// rate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ResidentEntry {
    /// The cached entry's key.
    pub key: InstanceKey,
    /// The pool's logical clock when this entry was last hit or admitted.
    pub touched: u64,
    /// Lookup ticks since then (`clock − touched`): 0 for the entry the
    /// latest lookup touched, larger for colder entries.
    pub idle: u64,
}

struct PoolEntry {
    key: InstanceKey,
    solver: PlanarSolver,
    /// Logical-clock stamp of the last hit/admission (see
    /// [`ResidentEntry`]).
    touched: u64,
    /// Estimated heap bytes of `solver` as of the last remeasure —
    /// substrate tiers build lazily, so this grows after admission.
    bytes: u64,
}

/// Everything behind one lock: the LRU list (most recently used last),
/// the logical lookup clock and the counters, so a lookup updates all of
/// them atomically.
struct PoolInner {
    entries: Vec<PoolEntry>,
    /// Advances once per instance- or key-bearing lookup; entries stamp
    /// it into `touched` when hit or admitted.
    clock: u64,
    hits: u64,
    misses: u64,
    respec_reuses: u64,
    evictions: u64,
    /// Sum of the entries' `bytes` (kept in lockstep with every insert,
    /// eviction and remeasure).
    resident_bytes: u64,
    /// High-water mark of `resident_bytes`.
    peak_resident_bytes: u64,
    /// Cumulative bytes released by evictions.
    evicted_bytes: u64,
}

impl PoolInner {
    /// Re-measures every cached solver ([`crate::HeapSize`]) and refreshes
    /// the resident/peak gauges — lazily built substrates grow *after*
    /// admission, so sizes must be observed, not just recorded once.
    /// `O(entries × structure)`; called on admission and on
    /// [`SolverPool::stats`], never on the hit fast path.
    fn remeasure(&mut self) {
        let mut resident = 0;
        for entry in &mut self.entries {
            entry.bytes = entry.solver.heap_bytes() as u64;
            resident += entry.bytes;
        }
        self.resident_bytes = resident;
        self.peak_resident_bytes = self.peak_resident_bytes.max(resident);
    }

    /// Removes the LRU entry (index 0) and books the eviction.
    fn evict_coldest(&mut self) {
        let victim = self.entries.remove(0);
        self.evictions += 1;
        self.evicted_bytes += victim.bytes;
        self.resident_bytes = self.resident_bytes.saturating_sub(victim.bytes);
    }
}

/// A `Send + Sync` registry of cached solvers, keyed by [`InstanceKey`],
/// with LRU eviction — see the [module docs](self) for the serving story.
///
/// All entry points are `&self`: share one pool across request-handler
/// threads (e.g. behind an `Arc`).
pub struct SolverPool {
    inner: Mutex<PoolInner>,
    /// Lock acquisitions that could not take `inner` uncontended (see
    /// [`PoolStats::lock_contended`]). Outside the mutex so counting a
    /// wait never lengthens it.
    contended: AtomicU64,
    capacity: usize,
    /// Byte budget admissions are held to (`None` = count-capped only).
    /// Enforced by LRU eviction down to — but never below — one entry, so
    /// a single oversized solver still serves rather than thrashing.
    byte_budget: Option<u64>,
    leaf_threshold: Option<usize>,
}

impl SolverPool {
    /// A pool retaining at most `capacity` solvers (clamped to ≥ 1),
    /// building them with the default BDD leaf threshold and no byte
    /// budget.
    pub fn new(capacity: usize) -> SolverPool {
        SolverPool {
            inner: Mutex::new(PoolInner {
                entries: Vec::new(),
                clock: 0,
                hits: 0,
                misses: 0,
                respec_reuses: 0,
                evictions: 0,
                resident_bytes: 0,
                peak_resident_bytes: 0,
                evicted_bytes: 0,
            }),
            contended: AtomicU64::new(0),
            capacity: capacity.max(1),
            byte_budget: None,
            leaf_threshold: None,
        }
    }

    /// A size-aware pool: at most `capacity` solvers **and** at most
    /// `byte_budget` estimated resident heap bytes — whichever bound is
    /// hit first evicts the LRU entry (never below one entry). Budgets
    /// are enforced against *measured* sizes: substrates built after
    /// admission are re-measured on the next admission, so a cold entry
    /// that grew large is the first to go.
    pub fn with_byte_budget(capacity: usize, byte_budget: u64) -> SolverPool {
        let mut pool = Self::new(capacity);
        pool.byte_budget = Some(byte_budget);
        pool
    }

    /// A pool whose solvers are built with a BDD leaf-threshold override
    /// (applied to every admitted instance).
    ///
    /// # Errors
    ///
    /// [`DualityError::BadLeafThreshold`] below
    /// [`crate::solver::MIN_LEAF_THRESHOLD`].
    pub fn with_leaf_threshold(
        capacity: usize,
        leaf_threshold: Option<usize>,
    ) -> Result<SolverPool, DualityError> {
        Self::with_limits(capacity, None, leaf_threshold)
    }

    /// The fully general constructor: count cap, optional byte budget,
    /// optional BDD leaf-threshold override.
    ///
    /// # Errors
    ///
    /// [`DualityError::BadLeafThreshold`] below
    /// [`crate::solver::MIN_LEAF_THRESHOLD`].
    pub fn with_limits(
        capacity: usize,
        byte_budget: Option<u64>,
        leaf_threshold: Option<usize>,
    ) -> Result<SolverPool, DualityError> {
        if let Some(t) = leaf_threshold {
            if t < crate::solver::MIN_LEAF_THRESHOLD {
                return Err(DualityError::BadLeafThreshold { got: t });
            }
        }
        let mut pool = Self::new(capacity);
        pool.byte_budget = byte_budget;
        pool.leaf_threshold = leaf_threshold;
        Ok(pool)
    }

    /// Maximum entries the pool retains.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The byte budget admissions are held to (`None` = count-capped
    /// only).
    pub fn byte_budget(&self) -> Option<u64> {
        self.byte_budget
    }

    /// Takes the pool mutex, counting the acquisition as contended when
    /// the uncontended `try_lock` fast path fails — every lock site goes
    /// through here, so [`PoolStats::lock_contended`] observes the whole
    /// surface.
    fn lock_inner(&self) -> MutexGuard<'_, PoolInner> {
        match self.inner.try_lock() {
            Ok(guard) => guard,
            Err(TryLockError::WouldBlock) => {
                self.contended.fetch_add(1, Ordering::Relaxed);
                self.inner.lock().expect("pool lock")
            }
            Err(TryLockError::Poisoned(_)) => panic!("pool lock poisoned"),
        }
    }

    /// Entries currently cached.
    pub fn len(&self) -> usize {
        self.lock_inner().entries.len()
    }

    /// `true` when no solver is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of the counters. Re-measures the cached solvers first, so
    /// `resident_bytes` (and the peak high-water) reflect substrate built
    /// since admission, not stale admission-time sizes.
    pub fn stats(&self) -> PoolStats {
        let mut inner = self.lock_inner();
        inner.remeasure();
        PoolStats {
            hits: inner.hits,
            misses: inner.misses,
            respec_reuses: inner.respec_reuses,
            evictions: inner.evictions,
            lock_contended: self.contended.load(Ordering::Relaxed),
            len: inner.entries.len(),
            capacity: self.capacity,
            resident_bytes: inner.resident_bytes,
            peak_resident_bytes: inner.peak_resident_bytes,
            evicted_bytes: inner.evicted_bytes,
            byte_budget: self.byte_budget.unwrap_or(0),
        }
    }

    /// `true` when a solver is cached under `key` (does not touch recency
    /// or counters).
    pub fn contains(&self, key: &InstanceKey) -> bool {
        self.inner
            .lock()
            .expect("pool lock")
            .entries
            .iter()
            .any(|e| e.key == *key)
    }

    /// The cached solver for `instance`, building (or respec-reusing) and
    /// admitting one on a miss. This is the get-or-insert primitive behind
    /// [`SolverPool::run`] / [`SolverPool::run_batch`]; the returned
    /// solver is an `O(1)` clone sharing the cached substrate, so it stays
    /// valid (and keeps amortizing) even if the entry is evicted later.
    pub fn solver(&self, instance: &Arc<PlanarInstance>) -> PlanarSolver {
        let key = InstanceKey::of(instance);
        // First pass under the lock: serve a hit, or pick a respec donor
        // (an `O(1)` clone) and release the lock before constructing
        // anything — a cold admission must never block other callers.
        //
        // The hit path holds the lock only for the `O(len)` key scan and
        // the recency splice; the `O(n + m)` content-equality guard runs
        // on the candidate clone *after* the lock drops. A mismatch (a
        // 128-bit key collision) demotes the optimistic hit to a miss, so
        // a collision still degrades to a rebuild, never a wrong solver.
        let candidate = {
            let mut inner = self.lock_inner();
            inner.clock += 1;
            Self::lookup(&mut inner, key)
        };
        let demote = match candidate {
            Some(solver) if same_problem(solver.instance(), instance) => return solver,
            Some(_) => true,
            None => false,
        };
        let donor = {
            let mut inner = self.lock_inner();
            if demote {
                inner.hits -= 1; // the optimistic hit was an impostor
            }
            inner.misses += 1;
            // Respec-reuse candidate: a cached solver over the *same
            // shared graph* (same fingerprint and `Arc::ptr_eq` —
            // fingerprint alone is not trusted) donates its topology
            // substrate to the new spec.
            inner
                .entries
                .iter()
                .find(|e| {
                    e.key.topo == key.topo
                        && Arc::ptr_eq(e.solver.instance().graph_arc(), instance.graph_arc())
                })
                .map(|e| e.solver.clone())
        };
        // Construct outside the lock.
        let (solver, respecced) = match donor {
            Some(d) => (
                d.respec(Arc::clone(instance))
                    .expect("ptr_eq-checked topology cannot mismatch"),
                true,
            ),
            None => (
                PlanarSolver::from_instance_with_threshold(
                    Arc::clone(instance),
                    self.leaf_threshold,
                )
                .expect("pool-validated leaf threshold"),
                false,
            ),
        };
        // Size the new solver outside the lock (it reads only the
        // already-built substrate, no pool state).
        let bytes = solver.heap_bytes() as u64;
        // Second pass: another caller may have admitted the same problem
        // while we were building — serve the cached entry so every caller
        // shares one substrate (our build is dropped; the miss already
        // counted stands).
        let mut inner = self.lock_inner();
        if let Some(pos) = inner
            .entries
            .iter()
            .position(|e| e.key == key && same_problem(e.solver.instance(), instance))
        {
            let mut entry = inner.entries.remove(pos);
            entry.touched = inner.clock;
            let cached = entry.solver.clone();
            inner.entries.push(entry);
            return cached;
        }
        if respecced {
            inner.respec_reuses += 1;
        }
        let touched = inner.clock;
        inner.entries.push(PoolEntry {
            key,
            solver: solver.clone(),
            touched,
            bytes,
        });
        inner.resident_bytes += bytes;
        inner.peak_resident_bytes = inner.peak_resident_bytes.max(inner.resident_bytes);
        if inner.entries.len() > self.capacity {
            inner.evict_coldest(); // least recently used sits first
        }
        if let Some(budget) = self.byte_budget {
            // Budget pressure judges *measured* sizes: entries whose
            // substrate grew after admission must carry their real weight
            // before the LRU picks victims, so every admission re-measures.
            inner.remeasure();
            while inner.resident_bytes > budget && inner.entries.len() > 1 {
                inner.evict_coldest();
            }
        }
        solver
    }

    /// The locked hit path: key scan, recency refresh, hit counter.
    /// `None` on a miss (no counter touched). The key is only a lookup
    /// accelerator — [`SolverPool::solver`] verifies full content
    /// equality on the returned clone with the lock released, and
    /// demotes the hit if the match was a key collision.
    fn lookup(inner: &mut PoolInner, key: InstanceKey) -> Option<PlanarSolver> {
        let pos = inner.entries.iter().position(|e| e.key == key)?;
        inner.hits += 1;
        // Most recently used goes last.
        let mut entry = inner.entries.remove(pos);
        entry.touched = inner.clock;
        let solver = entry.solver.clone();
        inner.entries.push(entry);
        Some(solver)
    }

    /// The cached solver under `key`, by key alone (marks it most recently
    /// used). `None` when the key was never admitted or has been evicted —
    /// call [`SolverPool::solver`] with the instance to (re)admit it.
    ///
    /// With no instance to compare against, a by-key lookup trusts the
    /// 128-bit content hash; instance-bearing lookups
    /// ([`SolverPool::solver`] / [`SolverPool::run`]) verify full content
    /// equality and are immune to key collisions.
    pub fn get(&self, key: &InstanceKey) -> Option<PlanarSolver> {
        let mut inner = self.lock_inner();
        inner.clock += 1;
        let pos = inner.entries.iter().position(|e| e.key == *key)?;
        inner.hits += 1;
        let mut entry = inner.entries.remove(pos);
        entry.touched = inner.clock;
        let solver = entry.solver.clone();
        inner.entries.push(entry);
        Some(solver)
    }

    /// The residency table: one [`ResidentEntry`] per cached solver, in
    /// LRU order (coldest first — the next LRU victim leads). Observation
    /// only: touches neither recency, the clock, nor any counter, so a
    /// control loop can poll it without keeping cold tenants warm.
    pub fn residency(&self) -> Vec<ResidentEntry> {
        let inner = self.lock_inner();
        inner
            .entries
            .iter()
            .map(|e| ResidentEntry {
                key: e.key,
                touched: e.touched,
                idle: inner.clock.saturating_sub(e.touched),
            })
            .collect()
    }

    /// Drops the entry cached under `key`, if any. `true` when an entry
    /// was removed — counted as an eviction in [`SolverPool::stats`] (it
    /// is one, just policy-driven rather than capacity-driven). Handles
    /// already cloned out of the pool remain valid; only the cache entry
    /// (and its substrate amortization for future callers) is gone.
    pub fn evict(&self, key: &InstanceKey) -> bool {
        let mut inner = self.lock_inner();
        let Some(pos) = inner.entries.iter().position(|e| e.key == *key) else {
            return false;
        };
        let victim = inner.entries.remove(pos);
        inner.evictions += 1;
        inner.evicted_bytes += victim.bytes;
        inner.resident_bytes = inner.resident_bytes.saturating_sub(victim.bytes);
        true
    }

    /// Executes one query against the cached solver for `instance`
    /// (admitting it on a miss).
    ///
    /// # Errors
    ///
    /// The per-query conditions of [`PlanarSolver::run`].
    pub fn run(
        &self,
        instance: &Arc<PlanarInstance>,
        query: Query,
    ) -> Result<Outcome, DualityError> {
        self.solver(instance).run(query)
    }

    /// Executes a deduplicated batch against the cached solver for
    /// `instance` (admitting it on a miss) — see
    /// [`PlanarSolver::run_batch`].
    pub fn run_batch(&self, instance: &Arc<PlanarInstance>, queries: &[Query]) -> BatchReport {
        self.solver(instance).run_batch(queries)
    }

    /// Executes one query by key alone.
    ///
    /// # Errors
    ///
    /// [`DualityError::UnknownInstanceKey`] when no solver is cached under
    /// `key`; otherwise the per-query conditions of [`PlanarSolver::run`].
    pub fn run_keyed(&self, key: &InstanceKey, query: Query) -> Result<Outcome, DualityError> {
        self.get(key)
            .ok_or(DualityError::UnknownInstanceKey)?
            .run(query)
    }

    /// Executes a deduplicated batch by key alone.
    ///
    /// # Errors
    ///
    /// [`DualityError::UnknownInstanceKey`] when no solver is cached under
    /// `key`.
    pub fn run_batch_keyed(
        &self,
        key: &InstanceKey,
        queries: &[Query],
    ) -> Result<BatchReport, DualityError> {
        Ok(self
            .get(key)
            .ok_or(DualityError::UnknownInstanceKey)?
            .run_batch(queries))
    }
}

impl std::fmt::Debug for SolverPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stats = self.stats();
        f.debug_struct("SolverPool")
            .field("capacity", &self.capacity)
            .field("leaf_threshold", &self.leaf_threshold)
            .field("stats", &stats)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use duality_planar::gen;

    fn instance(seed: u64) -> Arc<PlanarInstance> {
        let g = gen::diag_grid(4, 4, seed).unwrap();
        let caps = gen::random_undirected_capacities(g.num_edges(), 1, 9, seed);
        PlanarInstance::new(g, Some(caps), None).unwrap()
    }

    #[test]
    fn keys_are_content_based() {
        let a = instance(3);
        let b = instance(3); // identical build, different allocation
        assert_eq!(InstanceKey::of(&a), InstanceKey::of(&b));
        let c = instance(4);
        assert_ne!(InstanceKey::of(&a), InstanceKey::of(&c));

        // A respec keeps the topology fingerprint, changes the spec hash.
        let respec = a.with_capacities(vec![5; a.graph().num_darts()]).unwrap();
        let (ka, kr) = (InstanceKey::of(&a), InstanceKey::of(&respec));
        assert_eq!(ka.topo_fingerprint(), kr.topo_fingerprint());
        assert_ne!(ka.spec_hash(), kr.spec_hash());
        assert_ne!(ka, kr);
        assert!(ka.to_string().contains('/'));
    }

    #[test]
    fn hits_and_misses_are_counted() {
        let pool = SolverPool::new(4);
        let i = instance(1);
        let a = pool.solver(&i);
        let b = pool.solver(&i);
        // Cached: both handles share one substrate.
        assert!(Arc::ptr_eq(a.topo_substrate(), b.topo_substrate()));
        let stats = pool.stats();
        assert_eq!((stats.hits, stats.misses, stats.len), (1, 1, 1));
        assert!(pool.contains(&InstanceKey::of(&i)));
        assert!(!pool.is_empty());
    }

    #[test]
    fn respec_miss_reuses_the_topology_substrate() {
        let pool = SolverPool::new(4);
        let i = instance(2);
        let base = pool.solver(&i);
        let respec = i.with_capacities(vec![3; i.graph().num_darts()]).unwrap();
        let other = pool.solver(&respec);
        assert!(
            Arc::ptr_eq(base.topo_substrate(), other.topo_substrate()),
            "the respecced entry shares the cached topology tier"
        );
        let stats = pool.stats();
        assert_eq!(stats.misses, 2);
        assert_eq!(stats.respec_reuses, 1);
        assert_eq!(stats.len, 2, "both specs stay cached");
    }

    #[test]
    fn equal_but_unshared_graphs_get_fresh_substrates() {
        let pool = SolverPool::new(4);
        let a = instance(5);
        let b = instance(5); // same content, different Arc
        let sa = pool.solver(&a);
        // Same key: `b` is a *hit* for `a`'s entry (content-based), so no
        // new solver is built at all.
        let sb = pool.solver(&b);
        assert!(Arc::ptr_eq(sa.topo_substrate(), sb.topo_substrate()));
        // But a respec of `b` misses and must NOT splice onto `a`'s
        // substrate: the graphs are equal, not shared.
        let respec = b.with_capacities(vec![2; b.graph().num_darts()]).unwrap();
        let sr = pool.solver(&respec);
        assert!(!Arc::ptr_eq(sa.topo_substrate(), sr.topo_substrate()));
        assert_eq!(pool.stats().respec_reuses, 0);
    }

    #[test]
    fn lru_evicts_the_coldest_entry() {
        let pool = SolverPool::new(2);
        let (a, b, c) = (instance(1), instance(2), instance(3));
        let (ka, kb, kc) = (
            InstanceKey::of(&a),
            InstanceKey::of(&b),
            InstanceKey::of(&c),
        );
        pool.solver(&a);
        pool.solver(&b);
        pool.solver(&a); // refresh a: b is now coldest
        pool.solver(&c); // evicts b
        assert!(pool.contains(&ka));
        assert!(!pool.contains(&kb));
        assert!(pool.contains(&kc));
        let stats = pool.stats();
        assert_eq!((stats.evictions, stats.len), (1, 2));
        assert!(stats.to_string().contains("1 evictions"));
    }

    #[test]
    fn keyed_lookups_answer_or_reject() {
        let pool = SolverPool::new(2);
        let i = instance(7);
        let key = InstanceKey::of(&i);
        assert_eq!(
            pool.run_keyed(&key, Query::Girth).err(),
            Some(DualityError::UnknownInstanceKey)
        );
        let t = i.n() - 1;
        let by_instance = pool.run(&i, Query::MaxFlow { s: 0, t }).unwrap();
        let by_key = pool.run_keyed(&key, Query::MaxFlow { s: 0, t }).unwrap();
        assert_eq!(
            by_instance.as_max_flow().unwrap().value,
            by_key.as_max_flow().unwrap().value
        );
        let batch = pool
            .run_batch_keyed(&key, &[Query::MaxFlow { s: 0, t }, Query::Girth])
            .unwrap();
        assert!(batch.all_ok());
        assert_eq!(
            pool.run_batch_keyed(&InstanceKey::of(&instance(8)), &[Query::Girth])
                .err(),
            Some(DualityError::UnknownInstanceKey)
        );
    }

    #[test]
    fn pool_is_shared_across_threads() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SolverPool>();

        let pool = Arc::new(SolverPool::new(4));
        let i = instance(9);
        let t = i.n() - 1;
        let values: Vec<i64> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let pool = Arc::clone(&pool);
                    let i = Arc::clone(&i);
                    scope.spawn(move || {
                        pool.run(&i, Query::MaxFlow { s: 0, t })
                            .unwrap()
                            .as_max_flow()
                            .unwrap()
                            .value
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert!(values.windows(2).all(|w| w[0] == w[1]));
        let stats = pool.stats();
        assert_eq!(stats.hits + stats.misses, 4);
        assert_eq!(stats.len, 1, "one instance, one entry");
    }

    #[test]
    fn concurrent_cold_misses_converge_on_one_entry() {
        // The cold path constructs outside the pool mutex; racing callers
        // may each build, but the insert re-check guarantees exactly one
        // entry per problem and a consistent counter ledger.
        let pool = Arc::new(SolverPool::new(8));
        let i = instance(11);
        let t = i.n() - 1;
        let values: Vec<i64> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    let pool = Arc::clone(&pool);
                    let i = Arc::clone(&i);
                    scope.spawn(move || {
                        pool.run(&i, Query::MaxFlow { s: 0, t })
                            .unwrap()
                            .as_max_flow()
                            .unwrap()
                            .value
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert!(values.windows(2).all(|w| w[0] == w[1]));
        let stats = pool.stats();
        assert_eq!(stats.len, 1, "racing misses never duplicate an entry");
        assert_eq!(stats.hits + stats.misses, 8, "every lookup counted once");
        assert!(stats.misses >= 1);
        assert_eq!(stats.evictions, 0);
    }

    #[test]
    fn contended_mixed_workload_keeps_the_pool_consistent() {
        // Distinct instances admitted from many threads at once: cold
        // builds run outside the lock, so no combination of interleavings
        // may corrupt the LRU list or the counters.
        let pool = Arc::new(SolverPool::new(4));
        let instances: Vec<_> = (0..6).map(|s| instance(20 + s)).collect();
        std::thread::scope(|scope| {
            for worker in 0..4 {
                let pool = Arc::clone(&pool);
                let instances = &instances;
                scope.spawn(move || {
                    for round in 0..3 {
                        for (j, i) in instances.iter().enumerate() {
                            if (j + worker + round) % 2 == 0 {
                                let t = i.n() - 1;
                                let _ = pool.run(i, Query::MaxFlow { s: 0, t }).unwrap();
                            } else {
                                let _ = pool.solver(i);
                            }
                        }
                    }
                });
            }
        });
        let stats = pool.stats();
        assert_eq!(stats.hits + stats.misses, 4 * 3 * 6);
        assert!(stats.len <= stats.capacity, "LRU bound holds under races");
        assert!(stats.evictions > 0, "six instances through four slots");
        // Every distinct admitted problem appears at most once.
        let keys: Vec<_> = instances.iter().map(|i| InstanceKey::of(i)).collect();
        let cached = keys.iter().filter(|k| pool.contains(k)).count();
        assert_eq!(cached, stats.len);
    }

    #[test]
    fn contended_locks_are_counted_uncontended_ones_are_not() {
        let pool = Arc::new(SolverPool::new(2));
        let i = instance(40);
        let _ = pool.solver(&i);
        let _ = pool.solver(&i);
        assert_eq!(
            pool.stats().lock_contended,
            0,
            "a single caller always takes the try_lock fast path"
        );

        // Hold the pool mutex while another thread looks up: that thread
        // must fall off the fast path and count the wait.
        let guard = pool.inner.lock().unwrap();
        let waiter = {
            let pool = Arc::clone(&pool);
            let i = Arc::clone(&i);
            std::thread::spawn(move || pool.solver(&i))
        };
        while pool.contended.load(Ordering::Relaxed) == 0 {
            std::thread::yield_now();
        }
        drop(guard);
        waiter.join().unwrap();
        assert!(pool.stats().lock_contended >= 1);
    }

    #[test]
    fn stats_absorb_and_merged_sum_counters() {
        let a = PoolStats {
            hits: 3,
            misses: 2,
            respec_reuses: 1,
            evictions: 0,
            lock_contended: 5,
            len: 2,
            capacity: 4,
            resident_bytes: 1000,
            peak_resident_bytes: 1500,
            evicted_bytes: 0,
            byte_budget: 4096,
        };
        let b = PoolStats {
            hits: 1,
            misses: 4,
            respec_reuses: 0,
            evictions: 2,
            lock_contended: 1,
            len: 1,
            capacity: 8,
            resident_bytes: 200,
            peak_resident_bytes: 700,
            evicted_bytes: 500,
            byte_budget: 0,
        };
        let merged = PoolStats::merged([&a, &b]);
        assert_eq!(merged.hits, 4);
        assert_eq!(merged.misses, 6);
        assert_eq!(merged.respec_reuses, 1);
        assert_eq!(merged.evictions, 2);
        assert_eq!(merged.lock_contended, 6);
        assert_eq!((merged.len, merged.capacity), (3, 12));
        assert_eq!(merged.resident_bytes, 1200);
        assert_eq!(merged.peak_resident_bytes, 2200);
        assert_eq!(merged.evicted_bytes, 500);
        assert_eq!(merged.byte_budget, 4096);
        assert_eq!(PoolStats::merged([]), PoolStats::default());
        let mut acc = a;
        acc.absorb(&b);
        assert_eq!(acc, merged);
    }

    #[test]
    fn residency_reports_lru_order_and_idle_age() {
        let pool = SolverPool::new(4);
        assert!(pool.residency().is_empty());
        let (a, b) = (instance(30), instance(31));
        let (ka, kb) = (InstanceKey::of(&a), InstanceKey::of(&b));
        pool.solver(&a); // tick 1: admit a
        pool.solver(&b); // tick 2: admit b
        pool.solver(&a); // tick 3: hit a — b is now the cold one
        let residency = pool.residency();
        assert_eq!(residency.len(), 2);
        assert_eq!(
            residency[0],
            ResidentEntry {
                key: kb,
                touched: 2,
                idle: 1
            }
        );
        assert_eq!(
            residency[1],
            ResidentEntry {
                key: ka,
                touched: 3,
                idle: 0
            }
        );
        // Observation is free of side effects: polling does not age or
        // refresh anything.
        assert_eq!(pool.residency(), residency);
        let stats = pool.stats();
        assert_eq!((stats.hits, stats.misses), (1, 2));
    }

    #[test]
    fn evict_by_key_drops_exactly_one_entry() {
        let pool = SolverPool::new(4);
        let (a, b) = (instance(32), instance(33));
        let (ka, kb) = (InstanceKey::of(&a), InstanceKey::of(&b));
        let solver = pool.solver(&a);
        pool.solver(&b);
        assert!(pool.evict(&ka), "resident entry evicts");
        assert!(!pool.evict(&ka), "already gone");
        assert!(!pool.contains(&ka));
        assert!(pool.contains(&kb), "other entries survive");
        assert_eq!(pool.stats().evictions, 1, "policy evictions are counted");
        // A handle cloned out earlier still works after the eviction.
        assert!(solver.run(Query::Girth).is_ok());
    }

    #[test]
    fn byte_gauges_track_residency_and_growth() {
        let pool = SolverPool::new(4);
        let i = instance(50);
        pool.solver(&i);
        let cold = pool.stats();
        assert!(cold.resident_bytes > 0, "the instance alone has heap bytes");
        assert_eq!(cold.byte_budget, 0, "no budget configured");
        // Run a query: the substrate builds lazily, so the *same* entry
        // must now measure larger — stats() observes growth.
        let t = i.n() - 1;
        pool.run(&i, Query::MaxFlow { s: 0, t }).unwrap();
        let warm = pool.stats();
        assert!(
            warm.resident_bytes > cold.resident_bytes,
            "substrate built after admission is re-measured ({} vs {})",
            warm.resident_bytes,
            cold.resident_bytes
        );
        assert!(warm.peak_resident_bytes >= warm.resident_bytes);
        assert_eq!(warm.evicted_bytes, 0);
        assert!(warm.to_string().contains("B resident"));
    }

    #[test]
    fn byte_budget_evicts_large_cold_entries_before_small_hot_ones() {
        // A budget generous enough for several small warm solvers but not
        // for a large warm one alongside them.
        let small: Vec<_> = (0..3).map(instance).collect();
        let large = {
            let g = gen::diag_grid(9, 9, 99).unwrap();
            let caps = gen::random_undirected_capacities(g.num_edges(), 1, 9, 99);
            PlanarInstance::new(g, Some(caps), None).unwrap()
        };
        // Find a budget between "all small warm" and "large warm": measure
        // one warm solver of each size through throwaway pools.
        let probe = SolverPool::new(1);
        probe.run(&small[0], Query::Girth).unwrap();
        let small_warm = probe.stats().resident_bytes;
        let probe = SolverPool::new(1);
        let t = large.n() - 1;
        probe.run(&large, Query::MaxFlow { s: 0, t }).unwrap();
        let large_warm = probe.stats().resident_bytes;
        assert!(large_warm > 3 * small_warm, "the large solver dominates");

        let pool = SolverPool::with_byte_budget(16, 4 * small_warm);
        assert_eq!(pool.byte_budget(), Some(4 * small_warm));
        pool.run(&large, Query::MaxFlow { s: 0, t }).unwrap(); // warm + large
        for i in &small {
            pool.run(i, Query::Girth).unwrap(); // each keeps the LRU fresher
        }
        // Admitting one more small entry forces the budget check: the
        // *large cold* entry must go, every small hot one must stay —
        // count-based LRU with capacity 16 would have evicted nothing.
        let extra = instance(7);
        pool.run(&extra, Query::Girth).unwrap();
        assert!(
            !pool.contains(&InstanceKey::of(&large)),
            "the large cold entry is the budget victim"
        );
        for i in &small {
            assert!(pool.contains(&InstanceKey::of(i)), "small hot entries stay");
        }
        assert!(pool.contains(&InstanceKey::of(&extra)));
        let stats = pool.stats();
        assert!(stats.evictions >= 1);
        assert!(
            stats.evicted_bytes >= large_warm / 2,
            "the victim's real weight is booked"
        );
        assert!(stats.resident_bytes <= 4 * small_warm || stats.len == 1);
    }

    #[test]
    fn bad_leaf_threshold_is_rejected_up_front() {
        assert!(matches!(
            SolverPool::with_leaf_threshold(4, Some(1)),
            Err(DualityError::BadLeafThreshold { got: 1 })
        ));
        assert!(SolverPool::with_leaf_threshold(4, Some(8)).is_ok());
        assert_eq!(SolverPool::new(0).capacity(), 1, "capacity clamps to 1");
    }
}
