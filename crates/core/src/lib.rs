//! The paper's headline algorithms: maximum st-flow, minimum st-cut,
//! directed global minimum cut, and weighted girth — all computed by
//! distributed CONGEST algorithms on the planar network `G` that operate on
//! its dual `G*`, with round charges accumulated in a
//! [`duality_congest::CostLedger`].
//!
//! | module | result | paper | rounds |
//! |---|---|---|---|
//! | [`max_flow`] | exact directed max st-flow | Thm 1.2 | `Õ(D²)` |
//! | [`approx_flow`] | `(1−ε)`-approx st-planar max flow | Thm 1.3 | `D·n^{o(1)}` |
//! | [`st_cut`] | exact directed / approx st-planar min st-cut | Thm 6.1/6.2 | `Õ(D²)` / `D·n^{o(1)}` |
//! | [`global_cut`] | directed global min cut | Thm 1.5 | `Õ(D²)` |
//! | [`girth`] | weighted girth | Thm 1.7 | `Õ(D)` |
//!
//! [`verify`] provides the flow/cut validity checkers the test-suite and
//! the experiment harness use.
//!
//! # The `PlanarSolver` façade
//!
//! The per-module free functions rebuild the shared substrate (diameter
//! estimate, dual graph, branch decomposition, labeling engine) on every
//! call. For repeated queries, build a [`solver::PlanarSolver`] once: the
//! solver owns its validated [`instance::PlanarInstance`] (`Arc`-shared,
//! `Send + Sync`), the substrate is cached behind the façade in **two
//! tiers** — a [`solver::TopoSubstrate`] keyed by the embedding alone and
//! a weight tier keyed by the current capacities/weights — every query
//! returns a typed report with a [`duality_congest::RoundReport`] round
//! split (`substrate_topo` / `substrate_weight` / `query`), and all
//! failures surface as the one [`DualityError`] type. Requests are
//! first-class values ([`solver::Query`] / [`solver::Outcome`]):
//! [`solver::PlanarSolver::run`] executes one,
//! [`solver::PlanarSolver::run_batch`] executes a deduplicated batch on a
//! worker pool and merges the round bill.
//!
//! Re-speccing the same network — new tariffs, new line ratings — is
//! copy-on-write end to end: [`instance::PlanarInstance::with_capacities`]
//! / [`instance::PlanarInstance::with_edge_weights`] share the graph
//! allocation, and [`solver::PlanarSolver::respec`] shares the whole
//! topology substrate, rebuilding only the weight tier. The
//! [`pool::SolverPool`] serving layer puts a keyed, LRU-evicting,
//! respec-aware registry of cached solvers in front of all of it. The
//! free functions remain as thin wrappers over the solver for gradual
//! migration.

pub mod approx_flow;
pub mod error;
pub mod girth;
pub mod global_cut;
pub mod heap_size;
pub mod instance;
pub mod max_flow;
pub mod pool;
pub mod smoothing;
pub mod solver;
pub mod st_cut;
pub mod verify;

pub use error::DualityError;
pub use heap_size::HeapSize;
pub use instance::PlanarInstance;
pub use pool::{InstanceKey, PoolStats, ResidentEntry, SolverPool};
pub use solver::{
    BatchReport, Outcome, PlanarSolver, Query, SolverBuilder, SolverStats, TopoSubstrate,
};
