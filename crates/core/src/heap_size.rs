//! Byte accounting for the serving layer: the [`HeapSize`] trait.
//!
//! A size-aware [`crate::pool::SolverPool`] needs to know how many bytes
//! each cached solver keeps resident — without a heap profiler and without
//! external crates. `HeapSize` reports the heap bytes a value owns (or
//! pins, for `Arc`-shared structure), **exact where the layout makes it
//! cheap** (flat vectors sized by the graph counts) and **estimated where
//! it does not** (hash maps and the label store, whose exact footprint
//! depends on allocator and load-factor details that are not observable).
//!
//! Two conventions keep the numbers comparable across the fleet:
//!
//! * **Shared structure is billed per holder.** An `Arc<PlanarGraph>`
//!   shared by five respecs of one network is counted in each holder's
//!   bytes — a deliberate upper bound: eviction decisions must stay safe
//!   if the sharing ever goes away, and an estimate that can only shrink
//!   reality never hides pressure.
//! * **Inline size is excluded.** `heap_bytes` is what the value adds to
//!   the heap beyond `size_of::<Self>()`, so nesting never double-counts
//!   the container's own struct.
//!
//! # Example
//!
//! ```
//! use duality_core::heap_size::HeapSize;
//! use duality_core::PlanarInstance;
//! use duality_planar::gen;
//!
//! let g = gen::grid(4, 4).unwrap();
//! let i = PlanarInstance::new(g, None, Some(vec![1; 24])).unwrap();
//! // A bigger graph reports more bytes.
//! let g2 = gen::grid(8, 8).unwrap();
//! let big = PlanarInstance::new(g2, None, Some(vec![1; 112])).unwrap();
//! assert!(big.heap_bytes() > i.heap_bytes());
//! ```

use crate::instance::PlanarInstance;
use duality_planar::{Dart, FaceId, PlanarGraph};

/// Heap bytes owned (or pinned) by a value — see the [module docs](self)
/// for the exact-vs-estimated and shared-structure conventions.
pub trait HeapSize {
    /// Heap bytes beyond `size_of::<Self>()`.
    fn heap_bytes(&self) -> usize;
}

/// The allocator-visible header of one `Vec`/`String` (pointer, length,
/// capacity) — charged for every *nested* vector, whose header lives on
/// the heap inside its parent's allocation.
pub(crate) const VEC_HEADER: usize = std::mem::size_of::<Vec<u8>>();

/// Estimated heap bytes per occupied `std::collections` hash-table slot
/// beyond the entry payload itself: control bytes plus the slack of the
/// ~7/8 maximum load factor, rounded up to a conservative constant.
pub(crate) const HASH_SLOT_OVERHEAD: usize = 8;

/// Estimated heap bytes of a hash map/set holding `entries` values of
/// `entry_bytes` each (payload + per-slot overhead; the table's growth
/// slack is folded into [`HASH_SLOT_OVERHEAD`]).
pub(crate) fn hash_table_bytes(entries: usize, entry_bytes: usize) -> usize {
    entries * (entry_bytes + HASH_SLOT_OVERHEAD)
}

impl HeapSize for PlanarGraph {
    /// Exact from the counts: every field of the rotation-system
    /// representation is a flat vector sized by `n`, `m` (edges), `2m`
    /// (darts) or `F` (faces), so the footprint follows from the shape
    /// alone in `O(1)` — no traversal.
    fn heap_bytes(&self) -> usize {
        let n = self.num_vertices();
        let m = self.num_edges();
        let darts = self.num_darts();
        let faces = self.num_faces();
        let dart = std::mem::size_of::<Dart>();
        // tails + heads: one u32 per edge each.
        let edge_vecs = 2 * m * std::mem::size_of::<u32>();
        // rot: one nested Vec<Dart> per vertex, 2m darts total.
        let rot = n * VEC_HEADER + darts * dart;
        // rot_pos (u32 per dart) + face_of (FaceId per dart).
        let per_dart = darts * (std::mem::size_of::<u32>() + std::mem::size_of::<FaceId>());
        // face_darts: one nested Vec<Dart> per face, 2m darts total.
        let face_darts = faces * VEC_HEADER + darts * dart;
        edge_vecs + rot + per_dart + face_darts
    }
}

impl HeapSize for PlanarInstance {
    /// Exact: the pinned graph plus the two flat spec vectors. Respecs
    /// share the graph allocation, so a derived spec reports the same
    /// topology bytes as its donor and only its own spec vectors on top.
    fn heap_bytes(&self) -> usize {
        self.graph().heap_bytes()
            + std::mem::size_of_val(self.capacities())
            + std::mem::size_of_val(self.edge_weights())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use duality_planar::{gen, Weight};

    #[test]
    fn graph_bytes_grow_with_the_graph() {
        let small = gen::grid(3, 3).unwrap();
        let large = gen::grid(9, 9).unwrap();
        assert!(small.heap_bytes() > 0);
        assert!(large.heap_bytes() > small.heap_bytes());
        // Exactness sanity: the flat per-dart vectors alone are counted.
        assert!(small.heap_bytes() >= small.num_darts() * 4);
    }

    #[test]
    fn instance_counts_graph_and_spec_vectors() {
        let g = gen::grid(4, 4).unwrap();
        let graph_bytes = g.heap_bytes();
        let m = g.num_edges();
        let darts = g.num_darts();
        let i = PlanarInstance::new(g, None, Some(vec![1; m])).unwrap();
        assert_eq!(
            i.heap_bytes(),
            graph_bytes + (darts + m) * std::mem::size_of::<Weight>()
        );
    }

    #[test]
    fn respec_shares_topology_bytes_exactly() {
        let g = gen::grid(5, 5).unwrap();
        let m = g.num_edges();
        let base = PlanarInstance::new(g, None, Some(vec![2; m])).unwrap();
        let respec = base
            .with_capacities(vec![7; base.graph().num_darts()])
            .unwrap();
        // Same graph allocation, same spec-vector lengths: identical bill.
        assert_eq!(base.heap_bytes(), respec.heap_bytes());
    }

    #[test]
    fn hash_estimate_scales_linearly() {
        assert_eq!(hash_table_bytes(0, 16), 0);
        assert_eq!(hash_table_bytes(10, 16), 10 * (16 + HASH_SLOT_OVERHEAD));
    }
}
