//! Directed global minimum cut in `Õ(D²)` rounds (paper, Theorem 1.5 /
//! Section 7).
//!
//! Cycle–cut duality for directed graphs: add to every dual arc its
//! *reversal dart* at weight 0 (an edge crossed against its direction costs
//! nothing); then the directed global minimum cut of `G` equals the minimum
//! weight **dart-simple** directed cycle of the augmented dual `G'*`
//! (a cycle that never uses both a dart and its reversal — the degenerate
//! pair `{d*, rev(d)*}` encloses nothing and corresponds to no cut).
//!
//! # The per-dart candidate formula
//!
//! `mincut = min over all dual darts d* of  w(d*) + dist(head(d*) →
//! tail(d*))` computed in `G'* − {rev(d)*}`.
//!
//! *Lower bound*: a candidate is a closed walk containing `d*` but not
//! `rev(d)*`; decomposing the walk into simple cycles and degenerate pairs,
//! `d*` must land in a simple cycle (its reversal is absent), every simple
//! dual cycle is a directed cut of weight ≥ mincut, and all other pieces
//! are non-negative. *Upper bound*: take any dart of an optimal simple
//! cycle `C`; `C` minus that dart is a path avoiding the reversal (by
//! dart-simplicity), so that dart's candidate is ≤ `w(C)`. Bridges appear
//! as dual self-loops, which are valid one-arc cycles (the cut isolating
//! one side of the bridge).
//!
//! Distributedly, every dual dart is examined at the unique bag of the BDD
//! where it is a separator dual (or at its leaf bag), with the avoid-one-arc
//! Dijkstra running on the bag's label-decoded DDG — a local computation
//! after the same label broadcasts the SSSP algorithm performs, hence the
//! `Õ(D²)` total. Correctness of the per-bag localization: a candidate walk
//! in a bag's dual (or DDG) is a walk in `G'*`, so every candidate is
//! ≥ mincut; and the optimal cycle `C` is wholly contained in every bag
//! along the root-to-leaf descent until some bag either separator-classifies
//! one of `C`'s darts (that dart's candidate there is ≤ `w(C)`, since
//! `C` minus the dart is a path inside that bag's dual avoiding the
//! reversal) or keeps `C` down to a leaf (the leaf candidate captures it).

use crate::solver::PlanarSolver;
use duality_congest::{CostLedger, CostModel};
use duality_labeling::{DualLabels, DualSsspEngine};
use duality_planar::{Dart, FaceId, PlanarGraph, Weight, INF};
use std::collections::HashMap;

/// Result of the directed global minimum cut.
#[derive(Clone, Debug)]
pub struct GlobalCutResult {
    /// The cut weight (total weight of edges leaving the `S` side).
    pub value: Weight,
    /// `side[v]` is `true` for vertices of `S` (edges `S → V∖S` pay).
    pub side: Vec<bool>,
    /// The primal edges crossing the bisection (in either direction).
    pub cut_edges: Vec<usize>,
    /// CONGEST rounds charged.
    pub ledger: CostLedger,
}

/// A weighted DDG arc: `(from, to, weight, crossing dart if any)`.
type DdgArc = (usize, usize, Weight, Option<Dart>);

/// Computes the directed global minimum cut of a planar instance where
/// edge `e` has weight `weights[e]` in its forward direction (reversal
/// darts are free). Weights must be non-negative.
///
/// Returns `None` when `G` has fewer than two vertices.
///
/// # Example
///
/// ```
/// use duality_core::global_cut::directed_global_min_cut;
/// use duality_planar::gen;
///
/// let g = gen::cycle(3).unwrap();
/// let r = directed_global_min_cut(&g, &[5, 7, 9]).unwrap();
/// assert_eq!(r.value, 5); // the lightest arc of the directed 3-cycle
/// ```
pub fn directed_global_min_cut(g: &PlanarGraph, weights: &[Weight]) -> Option<GlobalCutResult> {
    // One-shot wrapper over the solver's query layer (`Query::GlobalMinCut`
    // via the `global_min_cut` inherent method); repeated callers should
    // hold a `PlanarSolver` to amortize the engine build.
    assert_eq!(weights.len(), g.num_edges(), "one weight per edge");
    assert!(
        weights.iter().all(|&w| w >= 0),
        "weights must be non-negative"
    );
    if g.num_vertices() < 2 {
        return None;
    }
    let solver = PlanarSolver::builder(g)
        .edge_weights(weights)
        .build()
        .expect("inputs validated above");
    let r = solver
        .global_min_cut()
        .expect("instance has at least two vertices");
    Some(GlobalCutResult {
        value: r.value,
        side: r.side,
        cut_edges: r.cut_edges,
        ledger: r.rounds.into_ledger(),
    })
}

/// The cycle–cut pipeline proper (shared with the solver): per-dart
/// candidates over the BDD bags against the **weight-tier** labels (the
/// dual labeling at the augmented lengths — forward dart = edge weight,
/// reversal free — which the solver caches per spec and the one-shot
/// wrapper computes on the fly), then cycle extraction and bisection.
/// Inputs are pre-validated, `g` has ≥ 2 vertices, and `labels` were
/// computed at exactly these weights.
pub(crate) fn run_global_cut(
    engine: &DualSsspEngine<'_>,
    labels: &DualLabels<'_, '_>,
    cm: &CostModel,
    weights: &[Weight],
    ledger: &mut CostLedger,
) -> (Weight, Vec<bool>, Vec<usize>) {
    let g = engine.graph;

    // Dart lengths: forward = edge weight, reversal = 0 (the lengths the
    // caller labeled at).
    let mut lengths = vec![0; g.num_darts()];
    for (e, &w) in weights.iter().enumerate() {
        lengths[Dart::forward(e).index()] = w;
    }

    // Per-dart candidates, each at the bag that owns the dart.
    let mut best: Option<(Weight, Dart)> = None;
    let consider = |best: &mut Option<(Weight, Dart)>, w: Weight, d: Dart| {
        if best.is_none_or(|(bw, bd)| (w, d.index()) < (bw, bd.index())) {
            *best = Some((w, d));
        }
    };
    for bag in &engine.bdd.bags {
        if bag.is_leaf() {
            // All arcs of the (small) leaf dual: local computation after
            // the leaf broadcast.
            let dual = &engine.duals[bag.id];
            let arcs: Vec<DdgArc> = dual
                .arcs
                .iter()
                .map(|a| (a.from, a.to, lengths[a.dart.index()], Some(a.dart)))
                .collect();
            for a in &dual.arcs {
                if let Some(dist) = dijkstra_avoiding(dual.len(), &arcs, a.to, a.from, a.dart.rev())
                {
                    consider(&mut best, lengths[a.dart.index()] + dist, a.dart);
                }
            }
        } else {
            // Separator darts: avoid-one-arc Dijkstra on the bag's DDG.
            let sep = engine.separator_arcs(bag.id);
            let (hn, h_arcs, rep) = build_ddg(engine, labels, bag.id, &lengths);
            for &(from, to, dart) in sep {
                if let Some(dist) = dijkstra_avoiding(hn, &h_arcs, rep[&to], rep[&from], dart.rev())
                {
                    consider(&mut best, lengths[dart.index()] + dist, dart);
                }
            }
        }
    }
    // Candidate upcast: one global aggregation.
    ledger.charge("globalcut-upcast", cm.global_aggregate());

    let (value, best_dart) = best.expect("connected graphs with an edge have candidates");

    // Cycle extraction for the winning dart (marking step, Õ(D)
    // aggregations on G*).
    ledger.charge("globalcut-marking", cm.dual_part_wise_aggregation());
    let cycle = extract_cycle(g, &lengths, best_dart);
    let cut_set: std::collections::HashSet<usize> = cycle.iter().map(|d| d.edge()).collect();

    // Bisection: components of G minus the (undirected) cut edges; the `S`
    // side is the one whose leaving weight equals the cut value.
    let (_, depth) = g.bfs_restricted(0, &|e| !cut_set.contains(&e));
    let side0: Vec<bool> = depth.iter().map(|&d| d != usize::MAX).collect();
    let mut caps = vec![0; g.num_darts()];
    for (e, &w) in weights.iter().enumerate() {
        caps[Dart::forward(e).index()] = w;
    }
    let leaving0 = crate::verify::directed_cut_capacity(g, &caps, &side0);
    let side: Vec<bool> = if leaving0 == value {
        side0
    } else {
        side0.iter().map(|&b| !b).collect()
    };

    let mut cut_edges: Vec<usize> = cut_set.into_iter().collect();
    cut_edges.sort_unstable();
    (value, side, cut_edges)
}

/// Builds the bag's DDG: nodes are `(child, F_X face)` parts (plus orphan
/// nodes for `F_X` faces absent from every child); arcs are per-child
/// cliques of label-decoded distances, the `S_X` dual darts, and zero
/// links among parts of the same face. Returns `(node_count, arcs,
/// representative node per face)`.
fn build_ddg(
    engine: &DualSsspEngine<'_>,
    labels: &DualLabels<'_, '_>,
    bid: usize,
    lengths: &[Weight],
) -> (usize, Vec<DdgArc>, HashMap<FaceId, usize>) {
    let bag = &engine.bdd.bags[bid];
    let fx = &engine.fx[bid];
    let mut nodes: Vec<(usize, FaceId)> = Vec::new();
    let mut rep: HashMap<FaceId, usize> = HashMap::new();
    for &f in fx {
        let mut found = false;
        for (ci, &c) in bag.children.iter().enumerate() {
            if engine.duals[c].node_index.contains_key(&f) {
                let id = nodes.len();
                nodes.push((ci, f));
                rep.entry(f).or_insert(id);
                found = true;
            }
        }
        if !found {
            let id = nodes.len();
            nodes.push((usize::MAX, f));
            rep.insert(f, id);
        }
    }
    let mut arcs: Vec<DdgArc> = Vec::new();
    // Child cliques from labels.
    for (i, &(ci, f)) in nodes.iter().enumerate() {
        if ci == usize::MAX {
            continue;
        }
        let child = bag.children[ci];
        for (j, &(cj, h)) in nodes.iter().enumerate() {
            if cj != ci || i == j {
                continue;
            }
            if let Some(w) = labels.decode_in_bag(child, f, h) {
                arcs.push((i, j, w, None));
            }
        }
    }
    // Separator darts (attached to representatives; zero links equalize
    // the parts).
    for &(from, to, dart) in engine.separator_arcs(bid) {
        arcs.push((rep[&from], rep[&to], lengths[dart.index()], Some(dart)));
    }
    // Zero links among parts of the same face.
    for &f in fx {
        let parts: Vec<usize> = nodes
            .iter()
            .enumerate()
            .filter(|&(_, &(_, ff))| ff == f)
            .map(|(i, _)| i)
            .collect();
        for &a in &parts {
            for &b in &parts {
                if a != b {
                    arcs.push((a, b, 0, None));
                }
            }
        }
    }
    (nodes.len(), arcs, rep)
}

/// Dijkstra from `src` to `dst` over weighted arcs, skipping the single
/// arc tagged with the dart `avoid`.
fn dijkstra_avoiding(
    n: usize,
    arcs: &[DdgArc],
    src: usize,
    dst: usize,
    avoid: Dart,
) -> Option<Weight> {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    let mut adj: Vec<Vec<(usize, Weight)>> = vec![Vec::new(); n];
    for &(a, b, w, tag) in arcs {
        if tag == Some(avoid) {
            continue;
        }
        adj[a].push((b, w));
    }
    let mut dist = vec![INF; n];
    let mut heap = BinaryHeap::new();
    dist[src] = 0;
    heap.push(Reverse((0, src)));
    while let Some(Reverse((du, u))) = heap.pop() {
        if du > dist[u] {
            continue;
        }
        for &(v, w) in &adj[u] {
            if du + w < dist[v] {
                dist[v] = du + w;
                heap.push(Reverse((du + w, v)));
            }
        }
    }
    (dist[dst] < INF).then_some(dist[dst])
}

/// Extracts the optimal cycle: shortest `head(d*) → tail(d*)` path in the
/// full dual avoiding `rev(d*)`, plus `d*` itself.
fn extract_cycle(g: &PlanarGraph, lengths: &[Weight], best: Dart) -> Vec<Dart> {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    let (from, to) = g.dual_arc(best);
    let n = g.num_faces();
    let mut dist = vec![INF; n];
    let mut parent: Vec<Option<Dart>> = vec![None; n];
    let mut heap = BinaryHeap::new();
    dist[to.index()] = 0;
    heap.push(Reverse((0, to.index())));
    while let Some(Reverse((du, u))) = heap.pop() {
        if du > dist[u] {
            continue;
        }
        for &dd in g.face_darts(FaceId(u as u32)) {
            if dd == best.rev() {
                continue;
            }
            let v = g.face_of(dd.rev()).index();
            let w = lengths[dd.index()];
            if du + w < dist[v] {
                dist[v] = du + w;
                parent[v] = Some(dd);
                heap.push(Reverse((du + w, v)));
            }
        }
    }
    let mut cycle = vec![best];
    let mut cur = from.index();
    while cur != to.index() {
        let d = parent[cur].expect("destination reachable for the optimal dart");
        cycle.push(d);
        cur = g.face_of(d).index();
    }
    cycle
}

#[cfg(test)]
mod tests {
    use super::*;
    use duality_baselines::cuts::{
        brute_force_directed_min_cut, planar_directed_min_cut_reference,
    };
    use duality_baselines::shortest_paths::Digraph;
    use duality_planar::gen;

    fn check(g: &PlanarGraph, weights: &[Weight]) -> GlobalCutResult {
        let r = directed_global_min_cut(g, weights).unwrap();
        // Against the centralized dual-cycle reference.
        assert_eq!(
            Some(r.value),
            planar_directed_min_cut_reference(g, weights),
            "value vs dual-cycle reference"
        );
        // Against brute force when small.
        if g.num_vertices() <= 14 {
            let mut dg = Digraph::new(g.num_vertices());
            for (e, &w) in weights.iter().enumerate() {
                dg.add_arc(g.edge_tail(e), g.edge_head(e), w);
            }
            let (bf, _) = brute_force_directed_min_cut(&dg);
            assert_eq!(r.value, bf, "value vs brute force");
        }
        // The bisection is proper and its leaving weight equals the value.
        assert!(r.side.iter().any(|&b| b) && r.side.iter().any(|&b| !b));
        let mut caps = vec![0; g.num_darts()];
        for (e, &w) in weights.iter().enumerate() {
            caps[Dart::forward(e).index()] = w;
        }
        assert_eq!(
            crate::verify::directed_cut_capacity(g, &caps, &r.side),
            r.value,
            "bisection leaving weight"
        );
        // The reported cut edges are exactly the crossing edges... at least
        // all cut edges must cross the bisection.
        for &e in &r.cut_edges {
            assert_ne!(r.side[g.edge_tail(e)], r.side[g.edge_head(e)]);
        }
        r
    }

    #[test]
    fn directed_triangle() {
        let g = gen::cycle(3).unwrap();
        let r = check(&g, &[5, 7, 9]);
        assert_eq!(r.value, 5);
    }

    #[test]
    fn grids_match_brute_force() {
        for seed in 0..4u64 {
            let g = gen::diag_grid(3, 3, seed).unwrap();
            let w = gen::random_edge_weights(g.num_edges(), 1, 9, seed + 31);
            check(&g, &w);
        }
    }

    #[test]
    fn larger_grids_match_reference() {
        for seed in 0..2u64 {
            let g = gen::diag_grid(5, 4, seed).unwrap();
            let w = gen::random_edge_weights(g.num_edges(), 1, 20, seed + 3);
            check(&g, &w);
        }
    }

    #[test]
    fn apollonian_match() {
        let g = gen::apollonian(12, 8).unwrap();
        let w = gen::random_edge_weights(g.num_edges(), 1, 15, 5);
        check(&g, &w);
    }

    #[test]
    fn tree_cut_is_zero() {
        let g = gen::path(5).unwrap();
        let r = check(&g, &[3, 4, 5, 6]);
        assert_eq!(r.value, 0);
    }

    #[test]
    fn zero_weights_allowed() {
        let g = gen::grid(3, 3).unwrap();
        let w = vec![0; g.num_edges()];
        let r = check(&g, &w);
        assert_eq!(r.value, 0);
    }

    #[test]
    fn single_vertex_has_no_cut() {
        // (Cannot build a 1-vertex connected PlanarGraph with edges, so use
        // the API contract directly on the smallest cycle.)
        let g = gen::cycle(3).unwrap();
        assert!(directed_global_min_cut(&g, &[1, 1, 1]).is_some());
    }

    #[test]
    fn rounds_scale_like_labeling() {
        let g = gen::grid(6, 6).unwrap();
        let w = gen::random_edge_weights(g.num_edges(), 1, 5, 2);
        let r = check(&g, &w);
        assert!(r.ledger.phase_total("labeling-broadcast") > 0);
        assert!(r.ledger.phase_total("globalcut-upcast") > 0);
    }
}
