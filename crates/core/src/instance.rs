//! The owned, validated problem instance behind the solver.
//!
//! [`PlanarInstance`] bundles everything that defines a problem — the
//! embedded graph, the per-dart capacities and the per-edge weights — into
//! one immutable, `Send + Sync` value that is validated exactly once and
//! then shared by reference counting. A [`crate::solver::PlanarSolver`]
//! holds an `Arc<PlanarInstance>`, so solvers (and their clones) can
//! outlive the stack frame that created the graph and can be queried from
//! many threads.
//!
//! # Copy-on-write respec
//!
//! The graph itself lives behind its own `Arc<PlanarGraph>`, so re-speccing
//! an instance — same road network, new tariffs; same power grid, new line
//! ratings — costs one capacity/weight vector, never a graph copy:
//! [`PlanarInstance::with_capacities`] and
//! [`PlanarInstance::with_edge_weights`] validate the new spec and return a
//! new `Arc<PlanarInstance>` that *shares the graph allocation* with the
//! original. [`crate::solver::PlanarSolver::respec`] recognizes that
//! sharing and reuses the whole topology substrate (dual graph, BDD, dual
//! bags) for the new spec.

use crate::error::DualityError;
use duality_planar::{PlanarGraph, Weight};
use std::sync::Arc;

/// An owned, validated `(graph, capacities, weights)` bundle.
///
/// Construction performs the **only** validation pass: vector lengths,
/// non-negativity, and the capacities ↔ weights derivation (forward darts
/// carry edge weights, reversal darts are free — the paper's `G'`
/// convention). After [`PlanarInstance::new`] succeeds, no query
/// re-validates the instance.
///
/// # Example
///
/// ```
/// use duality_core::instance::PlanarInstance;
/// use duality_planar::gen;
/// use std::sync::Arc;
///
/// let g = gen::grid(3, 3).unwrap();
/// let caps = gen::random_undirected_capacities(g.num_edges(), 1, 9, 7);
/// let instance = PlanarInstance::new(g, Some(caps), None).unwrap();
/// assert_eq!(instance.edge_weights().len(), instance.m());
///
/// // Copy-on-write respec: new capacities, same shared graph.
/// let respecced = instance.with_capacities(vec![2; instance.graph().num_darts()]).unwrap();
/// assert!(Arc::ptr_eq(instance.graph_arc(), respecced.graph_arc()));
/// ```
#[derive(Debug)]
pub struct PlanarInstance {
    graph: Arc<PlanarGraph>,
    caps: Vec<Weight>,
    weights: Vec<Weight>,
    /// Memoized [`crate::pool::InstanceKey`], computed on first keyed-pool
    /// use so repeat pool lookups skip the `O(n + m)` content hash.
    pub(crate) cached_key: std::sync::OnceLock<crate::pool::InstanceKey>,
}

impl PlanarInstance {
    /// Validates and freezes an instance; the missing side of
    /// `capacities` / `edge_weights` is derived — `weights[e] = caps[2e]`
    /// (forward-dart capacity), or `caps[2e] = weights[e], caps[2e+1] = 0`
    /// (a directed instance).
    ///
    /// # Errors
    ///
    /// [`DualityError::CapacityLengthMismatch`] /
    /// [`DualityError::WeightLengthMismatch`] on wrong vector lengths,
    /// [`DualityError::NegativeCapacity`] / [`DualityError::NegativeWeight`]
    /// on negative entries, [`DualityError::MissingInput`] when neither
    /// side was provided.
    pub fn new(
        graph: PlanarGraph,
        capacities: Option<Vec<Weight>>,
        edge_weights: Option<Vec<Weight>>,
    ) -> Result<Arc<Self>, DualityError> {
        Self::from_shared(Arc::new(graph), capacities, edge_weights)
    }

    /// [`PlanarInstance::new`] over an already-shared graph: the instance
    /// keeps the `Arc` (no copy), so many instances — e.g. one per
    /// capacity scenario — can share one graph allocation, and solvers
    /// built over them can share one topology substrate.
    ///
    /// # Errors
    ///
    /// Same conditions as [`PlanarInstance::new`].
    pub fn from_shared(
        graph: Arc<PlanarGraph>,
        capacities: Option<Vec<Weight>>,
        edge_weights: Option<Vec<Weight>>,
    ) -> Result<Arc<Self>, DualityError> {
        if let Some(caps) = &capacities {
            validate_capacities(&graph, caps)?;
        }
        if let Some(w) = &edge_weights {
            validate_weights(&graph, w)?;
        }
        let (caps, weights) = match (capacities, edge_weights) {
            (Some(c), Some(w)) => (c, w),
            (Some(c), None) => {
                let w: Vec<Weight> = (0..graph.num_edges()).map(|e| c[2 * e]).collect();
                (c, w)
            }
            (None, Some(w)) => {
                let mut c = vec![0; graph.num_darts()];
                for (e, &x) in w.iter().enumerate() {
                    c[2 * e] = x;
                }
                (c, w)
            }
            (None, None) => return Err(DualityError::MissingInput),
        };
        Ok(Arc::new(PlanarInstance {
            graph,
            caps,
            weights,
            cached_key: std::sync::OnceLock::new(),
        }))
    }

    /// Copy-on-write respec of the capacity side: a new instance with the
    /// given per-dart capacities, the **same** per-edge weights, and the
    /// same shared graph allocation (no graph copy — `Arc::ptr_eq` holds
    /// between the two instances' [`PlanarInstance::graph_arc`]).
    ///
    /// Note the asymmetry with [`PlanarInstance::new`]: a respec replaces
    /// only the named side. Weights derived from the original capacities
    /// are kept as they are, not re-derived.
    ///
    /// # Errors
    ///
    /// [`DualityError::CapacityLengthMismatch`] /
    /// [`DualityError::NegativeCapacity`] on an invalid vector.
    pub fn with_capacities(&self, capacities: Vec<Weight>) -> Result<Arc<Self>, DualityError> {
        validate_capacities(&self.graph, &capacities)?;
        Ok(Arc::new(PlanarInstance {
            graph: Arc::clone(&self.graph),
            caps: capacities,
            weights: self.weights.clone(),
            cached_key: std::sync::OnceLock::new(),
        }))
    }

    /// Copy-on-write respec of the weight side: a new instance with the
    /// given per-edge weights, the **same** per-dart capacities, and the
    /// same shared graph allocation. See [`PlanarInstance::with_capacities`]
    /// for the replace-only-the-named-side contract.
    ///
    /// # Errors
    ///
    /// [`DualityError::WeightLengthMismatch`] /
    /// [`DualityError::NegativeWeight`] on an invalid vector.
    pub fn with_edge_weights(&self, edge_weights: Vec<Weight>) -> Result<Arc<Self>, DualityError> {
        validate_weights(&self.graph, &edge_weights)?;
        Ok(Arc::new(PlanarInstance {
            graph: Arc::clone(&self.graph),
            caps: self.caps.clone(),
            weights: edge_weights,
            cached_key: std::sync::OnceLock::new(),
        }))
    }

    /// The embedded graph.
    pub fn graph(&self) -> &PlanarGraph {
        &self.graph
    }

    /// The shared graph allocation. Two instances related by
    /// [`PlanarInstance::with_capacities`] /
    /// [`PlanarInstance::with_edge_weights`] compare `Arc::ptr_eq` here —
    /// the witness [`crate::solver::PlanarSolver::respec`] checks before
    /// sharing the topology substrate.
    pub fn graph_arc(&self) -> &Arc<PlanarGraph> {
        &self.graph
    }

    /// Number of vertices of the instance (shorthand for
    /// `graph().num_vertices()`).
    pub fn n(&self) -> usize {
        self.graph.num_vertices()
    }

    /// Number of edges of the instance (shorthand for
    /// `graph().num_edges()`).
    pub fn m(&self) -> usize {
        self.graph.num_edges()
    }

    /// The validated per-dart capacities (`2 * num_edges` entries).
    pub fn capacities(&self) -> &[Weight] {
        &self.caps
    }

    /// The validated per-edge weights (`num_edges` entries).
    pub fn edge_weights(&self) -> &[Weight] {
        &self.weights
    }
}

impl std::fmt::Display for PlanarInstance {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let cap_total: Weight = self.caps.iter().sum();
        let weight_total: Weight = self.weights.iter().sum();
        write!(
            f,
            "planar instance: {} vertices, {} edges, {} faces \
             (total capacity {cap_total}, total weight {weight_total})",
            self.n(),
            self.m(),
            self.graph.num_faces()
        )
    }
}

fn validate_capacities(graph: &PlanarGraph, caps: &[Weight]) -> Result<(), DualityError> {
    if caps.len() != graph.num_darts() {
        return Err(DualityError::CapacityLengthMismatch {
            expected: graph.num_darts(),
            got: caps.len(),
        });
    }
    if let Some(d) = caps.iter().position(|&c| c < 0) {
        return Err(DualityError::NegativeCapacity { dart: d });
    }
    Ok(())
}

fn validate_weights(graph: &PlanarGraph, weights: &[Weight]) -> Result<(), DualityError> {
    if weights.len() != graph.num_edges() {
        return Err(DualityError::WeightLengthMismatch {
            expected: graph.num_edges(),
            got: weights.len(),
        });
    }
    if let Some(e) = weights.iter().position(|&x| x < 0) {
        return Err(DualityError::NegativeWeight { edge: e });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use duality_planar::gen;

    #[test]
    fn validation_matches_the_builder_contract() {
        let g = gen::grid(3, 3).unwrap();
        assert!(matches!(
            PlanarInstance::new(g.clone(), None, None),
            Err(DualityError::MissingInput)
        ));
        assert!(matches!(
            PlanarInstance::new(g.clone(), Some(vec![1; 3]), None),
            Err(DualityError::CapacityLengthMismatch { .. })
        ));
        assert!(matches!(
            PlanarInstance::new(g.clone(), None, Some(vec![1; 2])),
            Err(DualityError::WeightLengthMismatch { .. })
        ));
        let mut caps = vec![1; g.num_darts()];
        caps[5] = -2;
        assert_eq!(
            PlanarInstance::new(g.clone(), Some(caps), None).err(),
            Some(DualityError::NegativeCapacity { dart: 5 })
        );
        assert_eq!(
            PlanarInstance::new(g.clone(), None, Some(vec![-1; g.num_edges()])).err(),
            Some(DualityError::NegativeWeight { edge: 0 })
        );
    }

    #[test]
    fn derivations_are_bidirectional() {
        let g = gen::grid(3, 3).unwrap();
        let caps = gen::random_directed_capacities(g.num_edges(), 1, 5, 3);
        let i = PlanarInstance::new(g.clone(), Some(caps.clone()), None).unwrap();
        for e in 0..g.num_edges() {
            assert_eq!(i.edge_weights()[e], caps[2 * e]);
        }
        let w = gen::random_edge_weights(g.num_edges(), 1, 5, 4);
        let i = PlanarInstance::new(g.clone(), None, Some(w.clone())).unwrap();
        for e in 0..g.num_edges() {
            assert_eq!(i.capacities()[2 * e], w[e]);
            assert_eq!(i.capacities()[2 * e + 1], 0);
        }
    }

    #[test]
    fn respec_shares_the_graph_and_replaces_one_side() {
        let g = gen::grid(4, 3).unwrap();
        let caps = gen::random_undirected_capacities(g.num_edges(), 1, 9, 2);
        let weights = gen::random_edge_weights(g.num_edges(), 1, 9, 3);
        let base = PlanarInstance::new(g, Some(caps.clone()), Some(weights.clone())).unwrap();

        let new_caps = vec![4; base.graph().num_darts()];
        let capped = base.with_capacities(new_caps.clone()).unwrap();
        assert!(Arc::ptr_eq(base.graph_arc(), capped.graph_arc()));
        assert_eq!(capped.capacities(), &new_caps[..]);
        assert_eq!(capped.edge_weights(), &weights[..], "weights kept as-is");

        let new_weights = vec![7; base.m()];
        let weighted = capped.with_edge_weights(new_weights.clone()).unwrap();
        assert!(Arc::ptr_eq(base.graph_arc(), weighted.graph_arc()));
        assert_eq!(weighted.edge_weights(), &new_weights[..]);
        assert_eq!(weighted.capacities(), &new_caps[..], "caps kept as-is");

        // The original is untouched (copy-on-write, not mutation).
        assert_eq!(base.capacities(), &caps[..]);
        assert_eq!(base.edge_weights(), &weights[..]);
    }

    #[test]
    fn respec_validates_like_construction() {
        let g = gen::grid(3, 3).unwrap();
        let base = PlanarInstance::new(g, None, Some(vec![1; 12])).unwrap();
        assert!(matches!(
            base.with_capacities(vec![1; 3]),
            Err(DualityError::CapacityLengthMismatch { .. })
        ));
        let mut caps = vec![1; base.graph().num_darts()];
        caps[3] = -1;
        assert_eq!(
            base.with_capacities(caps).err(),
            Some(DualityError::NegativeCapacity { dart: 3 })
        );
        assert!(matches!(
            base.with_edge_weights(vec![1; 2]),
            Err(DualityError::WeightLengthMismatch { .. })
        ));
        assert_eq!(
            base.with_edge_weights(vec![-2; base.m()]).err(),
            Some(DualityError::NegativeWeight { edge: 0 })
        );
    }

    #[test]
    fn shape_accessors_and_display() {
        let g = gen::grid(3, 4).unwrap();
        let i = PlanarInstance::new(g, None, Some(vec![2; 17])).unwrap();
        assert_eq!(i.n(), 12);
        assert_eq!(i.m(), 17);
        let line = i.to_string();
        assert!(line.contains("12 vertices"));
        assert!(line.contains("17 edges"));
        assert!(line.contains("total weight 34"));
    }

    #[test]
    fn instance_is_shareable_across_threads() {
        let g = gen::grid(4, 4).unwrap();
        let i = PlanarInstance::new(g, None, Some(vec![2; 24])).unwrap();
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let i = Arc::clone(&i);
                std::thread::spawn(move || i.graph().num_vertices())
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), 16);
        }
    }
}
