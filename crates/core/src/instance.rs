//! The owned, validated problem instance behind the solver.
//!
//! [`PlanarInstance`] bundles everything that defines a problem — the
//! embedded graph, the per-dart capacities and the per-edge weights — into
//! one immutable, `Send + Sync` value that is validated exactly once and
//! then shared by reference counting. A [`crate::solver::PlanarSolver`]
//! holds an `Arc<PlanarInstance>`, so solvers (and their clones) can
//! outlive the stack frame that created the graph and can be queried from
//! many threads, which the old `&'g PlanarGraph`-borrowing façade could
//! not.

use crate::error::DualityError;
use duality_planar::{PlanarGraph, Weight};
use std::sync::Arc;

/// An owned, validated `(graph, capacities, weights)` bundle.
///
/// Construction performs the **only** validation pass: vector lengths,
/// non-negativity, and the capacities ↔ weights derivation (forward darts
/// carry edge weights, reversal darts are free — the paper's `G'`
/// convention). After [`PlanarInstance::new`] succeeds, no query
/// re-validates the instance.
///
/// # Example
///
/// ```
/// use duality_core::instance::PlanarInstance;
/// use duality_planar::gen;
///
/// let g = gen::grid(3, 3).unwrap();
/// let caps = gen::random_undirected_capacities(g.num_edges(), 1, 9, 7);
/// let instance = PlanarInstance::new(g, Some(caps), None).unwrap();
/// assert_eq!(instance.edge_weights().len(), instance.graph().num_edges());
/// ```
#[derive(Debug)]
pub struct PlanarInstance {
    graph: PlanarGraph,
    caps: Vec<Weight>,
    weights: Vec<Weight>,
}

impl PlanarInstance {
    /// Validates and freezes an instance; the missing side of
    /// `capacities` / `edge_weights` is derived — `weights[e] = caps[2e]`
    /// (forward-dart capacity), or `caps[2e] = weights[e], caps[2e+1] = 0`
    /// (a directed instance).
    ///
    /// # Errors
    ///
    /// [`DualityError::CapacityLengthMismatch`] /
    /// [`DualityError::WeightLengthMismatch`] on wrong vector lengths,
    /// [`DualityError::NegativeCapacity`] / [`DualityError::NegativeWeight`]
    /// on negative entries, [`DualityError::MissingInput`] when neither
    /// side was provided.
    pub fn new(
        graph: PlanarGraph,
        capacities: Option<Vec<Weight>>,
        edge_weights: Option<Vec<Weight>>,
    ) -> Result<Arc<Self>, DualityError> {
        if let Some(caps) = &capacities {
            if caps.len() != graph.num_darts() {
                return Err(DualityError::CapacityLengthMismatch {
                    expected: graph.num_darts(),
                    got: caps.len(),
                });
            }
            if let Some(d) = caps.iter().position(|&c| c < 0) {
                return Err(DualityError::NegativeCapacity { dart: d });
            }
        }
        if let Some(w) = &edge_weights {
            if w.len() != graph.num_edges() {
                return Err(DualityError::WeightLengthMismatch {
                    expected: graph.num_edges(),
                    got: w.len(),
                });
            }
            if let Some(e) = w.iter().position(|&x| x < 0) {
                return Err(DualityError::NegativeWeight { edge: e });
            }
        }
        let (caps, weights) = match (capacities, edge_weights) {
            (Some(c), Some(w)) => (c, w),
            (Some(c), None) => {
                let w: Vec<Weight> = (0..graph.num_edges()).map(|e| c[2 * e]).collect();
                (c, w)
            }
            (None, Some(w)) => {
                let mut c = vec![0; graph.num_darts()];
                for (e, &x) in w.iter().enumerate() {
                    c[2 * e] = x;
                }
                (c, w)
            }
            (None, None) => return Err(DualityError::MissingInput),
        };
        Ok(Arc::new(PlanarInstance {
            graph,
            caps,
            weights,
        }))
    }

    /// The embedded graph.
    pub fn graph(&self) -> &PlanarGraph {
        &self.graph
    }

    /// The validated per-dart capacities (`2 * num_edges` entries).
    pub fn capacities(&self) -> &[Weight] {
        &self.caps
    }

    /// The validated per-edge weights (`num_edges` entries).
    pub fn edge_weights(&self) -> &[Weight] {
        &self.weights
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use duality_planar::gen;

    #[test]
    fn validation_matches_the_builder_contract() {
        let g = gen::grid(3, 3).unwrap();
        assert!(matches!(
            PlanarInstance::new(g.clone(), None, None),
            Err(DualityError::MissingInput)
        ));
        assert!(matches!(
            PlanarInstance::new(g.clone(), Some(vec![1; 3]), None),
            Err(DualityError::CapacityLengthMismatch { .. })
        ));
        assert!(matches!(
            PlanarInstance::new(g.clone(), None, Some(vec![1; 2])),
            Err(DualityError::WeightLengthMismatch { .. })
        ));
        let mut caps = vec![1; g.num_darts()];
        caps[5] = -2;
        assert_eq!(
            PlanarInstance::new(g.clone(), Some(caps), None).err(),
            Some(DualityError::NegativeCapacity { dart: 5 })
        );
        assert_eq!(
            PlanarInstance::new(g.clone(), None, Some(vec![-1; g.num_edges()])).err(),
            Some(DualityError::NegativeWeight { edge: 0 })
        );
    }

    #[test]
    fn derivations_are_bidirectional() {
        let g = gen::grid(3, 3).unwrap();
        let caps = gen::random_directed_capacities(g.num_edges(), 1, 5, 3);
        let i = PlanarInstance::new(g.clone(), Some(caps.clone()), None).unwrap();
        for e in 0..g.num_edges() {
            assert_eq!(i.edge_weights()[e], caps[2 * e]);
        }
        let w = gen::random_edge_weights(g.num_edges(), 1, 5, 4);
        let i = PlanarInstance::new(g.clone(), None, Some(w.clone())).unwrap();
        for e in 0..g.num_edges() {
            assert_eq!(i.capacities()[2 * e], w[e]);
            assert_eq!(i.capacities()[2 * e + 1], 0);
        }
    }

    #[test]
    fn instance_is_shareable_across_threads() {
        let g = gen::grid(4, 4).unwrap();
        let i = PlanarInstance::new(g, None, Some(vec![2; 24])).unwrap();
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let i = Arc::clone(&i);
                std::thread::spawn(move || i.graph().num_vertices())
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), 16);
        }
    }
}
