//! Exact maximum st-flow in directed planar graphs, `Õ(D²)` rounds
//! (paper, Theorem 1.2).
//!
//! Miller–Naor reduction: a flow of value `λ` exists iff, after pushing `λ`
//! units along an arbitrary s→t dart path `P` (subtracting `λ` from the
//! capacity of every dart of `P` and adding it to their reversals), the
//! dual graph with arc lengths equal to the residual dart capacities has no
//! negative cycle. A binary search over `λ` with one dual-SSSP (distance
//! labeling) per probe finds the maximum flow value, and the shortest-path
//! potentials of the final feasible probe give the flow assignment:
//! `flow(d) = dist(face(rev d)) − dist(face(d)) (+λ if d ∈ P, −λ if
//! rev(d) ∈ P)`.

use crate::error::to_flow_error;
use crate::solver::PlanarSolver;
use duality_congest::{primitives, CostLedger, CostModel};
use duality_labeling::{DualSsspEngine, LabelingError};
use duality_planar::{Dart, PlanarGraph, Weight};

/// Options for [`max_st_flow`].
#[derive(Clone, Copy, Debug, Default)]
pub struct MaxFlowOptions {
    /// Leaf threshold override for the BDD (`None`: the `Θ(D)` default).
    pub leaf_threshold: Option<usize>,
}

/// Result of the exact max-flow computation.
#[derive(Clone, Debug)]
pub struct MaxFlowResult {
    /// The maximum flow value `λ*`.
    pub value: Weight,
    /// Net flow per dart: `flow[d] = -flow[rev d]`; a dart carries positive
    /// flow when `flow[d] > 0`, bounded by its capacity.
    pub flow: Vec<Weight>,
    /// CONGEST rounds charged (per-phase breakdown).
    pub ledger: CostLedger,
    /// Number of dual-SSSP probes the binary search performed
    /// (`O(log λ*)`).
    pub probes: u32,
}

/// Errors from the flow algorithms.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FlowError {
    /// `s == t`, or an endpoint is out of range.
    BadEndpoints,
    /// A capacity is negative.
    NegativeCapacity {
        /// The offending dart index.
        dart: usize,
    },
}

impl std::fmt::Display for FlowError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FlowError::BadEndpoints => write!(f, "invalid source/sink pair"),
            FlowError::NegativeCapacity { dart } => {
                write!(f, "negative capacity on dart {dart}")
            }
        }
    }
}

impl std::error::Error for FlowError {}

/// Computes the exact maximum st-flow of a directed planar instance.
///
/// `caps[d]` is the capacity of dart `d` (for a plain directed graph set
/// the backward darts to 0; antiparallel edge pairs may both be positive).
///
/// # Errors
///
/// [`FlowError::BadEndpoints`] if `s == t` or out of range;
/// [`FlowError::NegativeCapacity`] on a negative capacity.
///
/// # Example
///
/// ```
/// use duality_core::max_flow::{max_st_flow, MaxFlowOptions};
/// use duality_planar::gen;
///
/// let g = gen::grid(4, 4).unwrap();
/// let caps = gen::random_directed_capacities(g.num_edges(), 1, 5, 3);
/// let r = max_st_flow(&g, &caps, 0, 15, &MaxFlowOptions::default()).unwrap();
/// assert!(r.value > 0);
/// ```
pub fn max_st_flow(
    g: &PlanarGraph,
    caps: &[Weight],
    s: usize,
    t: usize,
    options: &MaxFlowOptions,
) -> Result<MaxFlowResult, FlowError> {
    if s == t || s >= g.num_vertices() || t >= g.num_vertices() {
        return Err(FlowError::BadEndpoints);
    }
    assert_eq!(caps.len(), g.num_darts(), "one capacity per dart");
    let solver = PlanarSolver::builder(g)
        .capacities(caps)
        .with_leaf_threshold(crate::solver::clamp_legacy_threshold(
            options.leaf_threshold,
        ))
        .build()
        .map_err(to_flow_error)?;
    let r = solver.max_flow(s, t).map_err(to_flow_error)?;
    Ok(MaxFlowResult {
        value: r.value,
        flow: r.flow,
        ledger: r.rounds.into_ledger(),
        probes: r.probes,
    })
}

/// The Miller–Naor pipeline proper, shared by the solver and the legacy
/// wrapper: binary search over λ with one dual labeling per probe on the
/// (cached) engine. Inputs are pre-validated. Returns
/// `(λ*, per-dart flow, probes)`.
pub(crate) fn run_max_flow(
    engine: &DualSsspEngine<'_>,
    cm: &CostModel,
    caps: &[Weight],
    s: usize,
    t: usize,
    ledger: &mut CostLedger,
) -> (Weight, Vec<Weight>, u32) {
    let g = engine.graph;
    let path = primitives::st_dart_path(g, s, t, cm, ledger, "st-path").expect("connected graph");

    // λ is bounded by the capacity leaving s.
    let upper: Weight = g
        .out_darts(s)
        .iter()
        .map(|&d| caps[d.index()])
        .sum::<Weight>();

    let mut probes = 0;
    let mut feasible = |lambda: Weight, ledger: &mut CostLedger| -> bool {
        probes += 1;
        let lengths = residual_lengths(g, caps, &path, lambda);
        match engine.labels(&lengths, ledger) {
            Ok(_) => true,
            Err(LabelingError::NegativeCycle { .. }) => false,
        }
    };

    // Binary search for the largest feasible λ (λ = 0 is always feasible).
    let mut lo: Weight = 0;
    let mut hi: Weight = upper;
    while lo < hi {
        let mid = lo + (hi - lo + 1) / 2;
        if feasible(mid, ledger) {
            lo = mid;
        } else {
            hi = mid - 1;
        }
        // Each vertex learns the current λ via a broadcast.
        ledger.charge("lambda-broadcast", cm.global_aggregate());
    }
    let lambda = lo;

    // Final labeling at λ*: potentials from an arbitrary face.
    let lengths = residual_lengths(g, caps, &path, lambda);
    let labels = engine.labels(&lengths, ledger).expect("λ* is feasible");
    let source = duality_planar::FaceId(0);
    let dist = labels.distances_from(source, ledger);

    let mut flow = vec![0; g.num_darts()];
    let on_path = path_markers(g, &path);
    for d in g.darts() {
        let (from, to) = g.dual_arc(d);
        let base = dist[to.index()].expect("dual of a connected graph is strongly connected")
            - dist[from.index()].expect("reachable");
        flow[d.index()] = base + lambda * on_path[d.index()];
    }

    (lambda, flow, probes)
}

/// Residual dual lengths after pushing `lambda` along `path`.
fn residual_lengths(
    g: &PlanarGraph,
    caps: &[Weight],
    path: &[Dart],
    lambda: Weight,
) -> Vec<Weight> {
    let on_path = path_markers(g, path);
    caps.iter()
        .enumerate()
        .map(|(i, &c)| c - lambda * on_path[i])
        .collect()
}

/// `+1` for darts of the path, `-1` for their reversals, `0` otherwise.
fn path_markers(g: &PlanarGraph, path: &[Dart]) -> Vec<Weight> {
    let mut m = vec![0; g.num_darts()];
    for &d in path {
        m[d.index()] += 1;
        m[d.rev().index()] -= 1;
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify;
    use duality_baselines::flow::planar_max_flow_reference;
    use duality_planar::gen;

    fn check(g: &PlanarGraph, caps: &[Weight], s: usize, t: usize) -> MaxFlowResult {
        let r = max_st_flow(g, caps, s, t, &MaxFlowOptions::default()).unwrap();
        let want = planar_max_flow_reference(g, caps, s, t);
        assert_eq!(r.value, want, "flow value vs Dinic");
        verify::assert_valid_flow(g, caps, &r.flow, s, t, r.value);
        r
    }

    #[test]
    fn single_square_unit_caps() {
        let g = gen::grid(2, 2).unwrap();
        let caps = gen::random_undirected_capacities(g.num_edges(), 1, 1, 0);
        let r = check(&g, &caps, 0, 3);
        assert_eq!(r.value, 2);
    }

    #[test]
    fn directed_grids_match_dinic() {
        for seed in 0..4u64 {
            let g = gen::grid(4, 4).unwrap();
            let caps = gen::random_directed_capacities(g.num_edges(), 0, 7, seed);
            check(&g, &caps, 0, g.num_vertices() - 1);
        }
    }

    #[test]
    fn undirected_diag_grids_match_dinic() {
        for seed in 0..3u64 {
            let g = gen::diag_grid(4, 4, seed).unwrap();
            let caps = gen::random_undirected_capacities(g.num_edges(), 1, 9, seed + 50);
            check(&g, &caps, 0, g.num_vertices() - 1);
        }
    }

    #[test]
    fn asymmetric_dart_capacities() {
        let g = gen::apollonian(14, 2).unwrap();
        let caps = gen::random_directed_capacities(g.num_edges(), 1, 6, 9);
        // s, t: outer triangle corners.
        check(&g, &caps, 0, 1);
    }

    #[test]
    fn zero_capacity_cut_gives_zero_flow() {
        let g = gen::grid(3, 3).unwrap();
        let caps = vec![0; g.num_darts()];
        let r = check(&g, &caps, 0, 8);
        assert_eq!(r.value, 0);
    }

    #[test]
    fn bad_endpoints_rejected() {
        let g = gen::grid(3, 3).unwrap();
        let caps = vec![1; g.num_darts()];
        assert_eq!(
            max_st_flow(&g, &caps, 2, 2, &MaxFlowOptions::default()).err(),
            Some(FlowError::BadEndpoints)
        );
        let mut caps2 = caps;
        caps2[3] = -1;
        assert_eq!(
            max_st_flow(&g, &caps2, 0, 8, &MaxFlowOptions::default()).err(),
            Some(FlowError::NegativeCapacity { dart: 3 })
        );
    }

    #[test]
    fn probe_count_is_logarithmic() {
        let g = gen::grid(4, 4).unwrap();
        let caps = gen::random_directed_capacities(g.num_edges(), 1, 100, 1);
        let r = check(&g, &caps, 0, 15);
        let upper: Weight = g.out_darts(0).iter().map(|&d| caps[d.index()]).sum();
        assert!(u64::from(r.probes) <= 2 + (upper as u64).ilog2() as u64 + 1);
        assert!(r.ledger.phase_total("labeling-broadcast") > 0);
    }
}
