//! Flow and cut validity checkers, used by tests and the experiment
//! harness to certify every distributed result against first principles.

use duality_planar::{PlanarGraph, Weight};

/// Asserts that `flow` is a feasible st-flow of value `value`:
/// antisymmetric on dart pairs, capacity-respecting, conserving at every
/// vertex other than `s`/`t`, with net outflow `value` at `s` and `-value`
/// at `t`.
///
/// # Panics
///
/// Panics (with a diagnostic) on the first violated condition.
pub fn assert_valid_flow(
    g: &PlanarGraph,
    caps: &[Weight],
    flow: &[Weight],
    s: usize,
    t: usize,
    value: Weight,
) {
    assert_eq!(flow.len(), g.num_darts());
    for d in g.darts() {
        assert_eq!(
            flow[d.index()],
            -flow[d.rev().index()],
            "antisymmetry at {d:?}"
        );
        assert!(
            flow[d.index()] <= caps[d.index()],
            "capacity violated at {d:?}: flow {} > cap {}",
            flow[d.index()],
            caps[d.index()]
        );
    }
    for v in 0..g.num_vertices() {
        let net: Weight = g.out_darts(v).iter().map(|&d| flow[d.index()]).sum();
        if v == s {
            assert_eq!(net, value, "source outflow");
        } else if v == t {
            assert_eq!(net, -value, "sink inflow");
        } else {
            assert_eq!(net, 0, "conservation at vertex {v}");
        }
    }
}

/// Checks that `cut_edges` disconnects `t` from `s` when removed
/// (undirected sense: both darts blocked).
pub fn cut_separates(g: &PlanarGraph, cut_edges: &[usize], s: usize, t: usize) -> bool {
    let cut: std::collections::HashSet<usize> = cut_edges.iter().copied().collect();
    let (_, depth) = g.bfs_restricted(s, &|e| !cut.contains(&e));
    depth[t] == usize::MAX
}

/// Checks that `cut_edges` is a *directed* cut: no dart with positive
/// capacity leads from the `s`-side to the `t`-side other than the cut
/// darts themselves; returns the total capacity crossing s-side → t-side.
pub fn directed_cut_capacity(g: &PlanarGraph, caps: &[Weight], side_s: &[bool]) -> Weight {
    let mut total = 0;
    for d in g.darts() {
        if side_s[g.tail(d)] && !side_s[g.head(d)] {
            total += caps[d.index()];
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use duality_planar::gen;

    #[test]
    fn zero_flow_is_valid() {
        let g = gen::grid(3, 3).unwrap();
        let caps = vec![1; g.num_darts()];
        let flow = vec![0; g.num_darts()];
        assert_valid_flow(&g, &caps, &flow, 0, 8, 0);
    }

    #[test]
    #[should_panic(expected = "conservation")]
    fn leaky_flow_panics() {
        let g = gen::grid(2, 2).unwrap();
        let caps = vec![5; g.num_darts()];
        let mut flow = vec![0; g.num_darts()];
        // Push on a single dart out of vertex 0 without continuing it.
        let d = g.out_darts(0)[0];
        flow[d.index()] = 1;
        flow[d.rev().index()] = -1;
        assert_valid_flow(&g, &caps, &flow, 0, 3, 1);
    }

    #[test]
    fn cut_separation() {
        let g = gen::grid(3, 1).unwrap(); // path 0-1-2
        assert!(cut_separates(&g, &[0], 0, 2));
        assert!(!cut_separates(&g, &[], 0, 2));
    }

    #[test]
    fn directed_cut_capacity_counts_forward_darts() {
        let g = gen::grid(2, 2).unwrap();
        let caps = gen::random_directed_capacities(g.num_edges(), 2, 2, 0);
        let side: Vec<bool> = (0..4).map(|v| v == 0).collect();
        // Vertex 0 has two outgoing edges with forward capacity 2 each
        // (whether the forward dart leaves 0 depends on edge orientation;
        // grid edges are oriented away from the lower index, so both leave).
        assert_eq!(directed_cut_capacity(&g, &caps, &side), 4);
    }
}
