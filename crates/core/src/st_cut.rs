//! Minimum st-cut: exact directed (`Õ(D²)`, paper Theorem 6.1) and
//! approximate st-planar (`D·n^{o(1)}`, paper Theorem 6.2).
//!
//! * **Exact**: run the exact max-flow (Theorem 1.2), then find the
//!   vertices reachable from `s` in the residual graph — the paper reduces
//!   this reachability to a primal SSSP computation (Li–Parter, charged as
//!   a black box) over the residual network with 0/∞ weights.
//! * **Approximate** (Reif's duality): an st-separating cycle of the
//!   augmented dual — the shortest `f₁ → f₂` path found by Hassin's
//!   reduction closed up by the artificial edge's dual — is an st-cut in
//!   the primal; its primal edges form a `(1+ε)`-approximate minimum
//!   st-cut.
//!
//! Both free functions are thin wrappers over [`crate::solver::PlanarSolver`];
//! the pipelines proper live in `run_exact_cut` / `run_approx_cut` and are
//! shared with the solver's cached-substrate path.

use crate::approx_flow::{validate_st_planar, StPlanarError};
use crate::error::to_flow_error;
use crate::max_flow::{FlowError, MaxFlowOptions};
use crate::solver::PlanarSolver;
use duality_congest::{CostLedger, CostModel};
use duality_labeling::DualSsspEngine;
use duality_planar::{dual::DualView, Dart, PlanarGraph, Weight};

/// Result of a minimum st-cut computation.
#[derive(Clone, Debug)]
pub struct StCutResult {
    /// The cut capacity.
    pub value: Weight,
    /// `side[v]` is `true` for the `s` shore of the bisection.
    pub side: Vec<bool>,
    /// The cut darts (from the `s` side to the `t` side, saturated).
    pub cut_darts: Vec<Dart>,
    /// CONGEST rounds charged.
    pub ledger: CostLedger,
}

/// Computes the exact directed minimum st-cut (value, bisection and cut
/// darts).
///
/// # Errors
///
/// Propagates [`FlowError`] from the underlying max-flow computation.
pub fn exact_min_st_cut(
    g: &PlanarGraph,
    caps: &[Weight],
    s: usize,
    t: usize,
    options: &MaxFlowOptions,
) -> Result<StCutResult, FlowError> {
    if s == t || s >= g.num_vertices() || t >= g.num_vertices() {
        return Err(FlowError::BadEndpoints);
    }
    assert_eq!(caps.len(), g.num_darts(), "one capacity per dart");
    let solver = PlanarSolver::builder(g)
        .capacities(caps)
        .with_leaf_threshold(crate::solver::clamp_legacy_threshold(
            options.leaf_threshold,
        ))
        .build()
        .map_err(to_flow_error)?;
    let r = solver.min_st_cut(s, t).map_err(to_flow_error)?;
    Ok(StCutResult {
        value: r.value,
        side: r.side,
        cut_darts: r.cut_darts,
        ledger: r.rounds.into_ledger(),
    })
}

/// The exact-cut pipeline proper (shared with the solver): max-flow, then
/// residual reachability from `s`. Inputs are pre-validated.
pub(crate) fn run_exact_cut(
    engine: &DualSsspEngine<'_>,
    cm: &CostModel,
    caps: &[Weight],
    s: usize,
    t: usize,
    ledger: &mut CostLedger,
) -> (Weight, Vec<bool>, Vec<Dart>) {
    let g = engine.graph;
    let (value, flow, _probes) = crate::max_flow::run_max_flow(engine, cm, caps, s, t, ledger);
    // Residual reachability from s, via the primal SSSP black box of
    // Li–Parter (paper, Theorem 6.1 reduces reachability to SSSP with
    // 0/∞ weights on the residual multigraph).
    ledger.charge("residual-reachability", cm.li_parter_primal_sssp());
    let residual_ok: Vec<bool> = g
        .darts()
        .map(|d| caps[d.index()] - flow[d.index()] > 0)
        .collect();
    let mut side = vec![false; g.num_vertices()];
    side[s] = true;
    let mut stack = vec![s];
    while let Some(u) = stack.pop() {
        for &d in g.out_darts(u) {
            if residual_ok[d.index()] && !side[g.head(d)] {
                side[g.head(d)] = true;
                stack.push(g.head(d));
            }
        }
    }
    let cut_darts: Vec<Dart> = g
        .darts()
        .filter(|&d| side[g.tail(d)] && !side[g.head(d)])
        .collect();
    (value, side, cut_darts)
}

/// Computes a `(1+1/k)`-approximate minimum st-cut of an undirected
/// st-planar instance (`eps_inverse = k`; `k = 0` exact oracle) via Reif's
/// st-separating dual cycle. Returns the cut edges (undirected).
///
/// # Errors
///
/// Propagates [`StPlanarError`] from the Hassin setup.
pub fn approx_min_st_cut(
    g: &PlanarGraph,
    caps: &[Weight],
    s: usize,
    t: usize,
    eps_inverse: u64,
) -> Result<(Weight, Vec<usize>, CostLedger), StPlanarError> {
    validate_st_planar(g, caps, s, t)?;
    let solver = PlanarSolver::builder(g)
        .capacities(caps)
        .build()
        .expect("inputs validated above");
    let r = solver
        .approx_min_st_cut(s, t, eps_inverse)
        .map_err(crate::error::to_st_planar_error)?;
    Ok((r.value, r.cut_edges, r.rounds.into_ledger()))
}

/// Reif's dual-cycle pipeline proper (shared with the solver): the Hassin
/// flow setup, then the st-separating cycle walk. Inputs are pre-validated
/// except st-planarity, discovered by the flow stage.
pub(crate) fn run_approx_cut(
    g: &PlanarGraph,
    cm: &CostModel,
    caps: &[Weight],
    s: usize,
    t: usize,
    eps_inverse: u64,
    ledger: &mut CostLedger,
) -> Result<(Weight, Vec<usize>), StPlanarError> {
    // Reuse the Hassin pipeline for validation of the inputs and charging.
    let approx = crate::approx_flow::run_approx_flow(g, cm, caps, s, t, eps_inverse, ledger)?;

    // Rebuild the augmented dual and extract the shortest f1 → f2 path
    // under the quantized lengths (the distributed algorithm marks the
    // already-computed SSSP tree path; one aggregation).
    ledger.charge("reif-mark-cycle", cm.dual_part_wise_aggregation());
    let face = g
        .faces()
        .find(|&f| {
            let mut has_s = false;
            let mut has_t = false;
            for &d in g.face_darts(f) {
                has_s |= g.tail(d) == s;
                has_t |= g.tail(d) == t;
            }
            has_s && has_t
        })
        .expect("validated by the flow call");
    let aug = g.insert_edge_in_face(t, s, face).expect("validated");
    let new_edge = g.num_edges();
    let k = eps_inverse as Weight;
    // The (1+1/k)-smooth oracle's quantization — see `crate::smoothing`
    // for the standalone, property-tested form.
    let quantize = |c: Weight| if k > 0 { c + c / k } else { c };
    let big: Weight = (0..g.num_edges())
        .map(|e| quantize(caps[2 * e]))
        .sum::<Weight>()
        + 1;
    let mut lengths = vec![0; aug.num_darts()];
    for e in 0..g.num_edges() {
        lengths[2 * e] = quantize(caps[2 * e]);
        lengths[2 * e + 1] = quantize(caps[2 * e + 1]);
    }
    lengths[2 * new_edge] = big;
    lengths[2 * new_edge + 1] = big;
    let dual = DualView::new(&aug, &lengths, |_| true);
    let (dist, parent) = dual.dijkstra(approx.f1);
    debug_assert!(dist[approx.f2.index()] < big);

    // Walk the parents back from f2; the path darts' primal edges are the
    // cut.
    let mut cut_edges = Vec::new();
    let mut value = 0;
    let mut cur = approx.f2;
    while cur != approx.f1 {
        let d = parent[cur.index()].expect("f2 reachable");
        cut_edges.push(d.edge());
        value += caps[d.index()]; // true (unquantized) capacity
        cur = aug.face_of(d);
    }
    cut_edges.sort_unstable();
    cut_edges.dedup();
    Ok((value, cut_edges))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify;
    use duality_baselines::flow::planar_max_flow_reference;
    use duality_planar::gen;

    #[test]
    fn exact_cut_equals_flow_on_directed_grids() {
        for seed in 0..3u64 {
            let g = gen::grid(4, 4).unwrap();
            let caps = gen::random_directed_capacities(g.num_edges(), 1, 7, seed);
            let r = exact_min_st_cut(&g, &caps, 0, 15, &MaxFlowOptions::default()).unwrap();
            // Max-flow min-cut: the saturated darts' capacity equals the
            // flow value.
            let cut_cap: Weight = r.cut_darts.iter().map(|d| caps[d.index()]).sum();
            assert_eq!(cut_cap, r.value);
            assert!(r.side[0] && !r.side[15]);
            assert_eq!(verify::directed_cut_capacity(&g, &caps, &r.side), r.value);
        }
    }

    #[test]
    fn exact_cut_on_undirected_instance() {
        let g = gen::diag_grid(4, 4, 5).unwrap();
        let caps = gen::random_undirected_capacities(g.num_edges(), 1, 9, 5);
        let r = exact_min_st_cut(&g, &caps, 0, 15, &MaxFlowOptions::default()).unwrap();
        assert_eq!(r.value, planar_max_flow_reference(&g, &caps, 0, 15));
        // Removing the cut edges separates t from s.
        let edges: Vec<usize> = r.cut_darts.iter().map(|d| d.edge()).collect();
        assert!(verify::cut_separates(&g, &edges, 0, 15));
    }

    #[test]
    fn approx_cut_separates_and_is_close() {
        for k in [0u64, 2, 5] {
            let g = gen::grid(5, 4).unwrap();
            let caps = gen::random_undirected_capacities(g.num_edges(), 1, 9, k + 2);
            let (value, edges, _) = approx_min_st_cut(&g, &caps, 0, 4, k).unwrap();
            assert!(verify::cut_separates(&g, &edges, 0, 4), "k = {k}");
            let exact = planar_max_flow_reference(&g, &caps, 0, 4);
            assert!(value >= exact, "a cut is never below the max flow");
            let kk = k.max(1) as Weight;
            assert!(
                value * kk <= exact * (kk + 1),
                "cut {value} vs (1+1/{kk}) * {exact}"
            );
            if k == 0 {
                assert_eq!(value, exact);
            }
        }
    }

    #[test]
    fn cut_value_zero_when_capacities_zero() {
        let g = gen::grid(3, 3).unwrap();
        let caps = vec![0; g.num_darts()];
        let r = exact_min_st_cut(&g, &caps, 0, 8, &MaxFlowOptions::default()).unwrap();
        assert_eq!(r.value, 0);
        // The crossing darts all carry zero capacity.
        assert_eq!(
            r.cut_darts.iter().map(|d| caps[d.index()]).sum::<Weight>(),
            0
        );
    }

    #[test]
    fn bad_endpoints_rejected_before_work() {
        let g = gen::grid(3, 3).unwrap();
        let caps = vec![1; g.num_darts()];
        assert_eq!(
            exact_min_st_cut(&g, &caps, 4, 4, &MaxFlowOptions::default()).err(),
            Some(FlowError::BadEndpoints)
        );
        assert_eq!(
            approx_min_st_cut(&g, &caps, 0, 99, 2).err(),
            Some(StPlanarError::NotStPlanar)
        );
    }
}
