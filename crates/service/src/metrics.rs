//! Lock-light live metrics for the serving engine.
//!
//! The registry is written from every worker on every job, so it must
//! never serialize the fleet: all lifecycle counters and histogram
//! buckets are plain atomics, and the only mutex guards the per-shard
//! substrate-amortization maps — touched once per *completed* job, after
//! the solver work is already done. Reads ([`MetricsSnapshot`]) are
//! relaxed-ordering samples: each counter is exact, cross-counter skew is
//! bounded by whatever is in flight at the instant of the snapshot.

use duality_congest::RoundReport;
use duality_core::pool::{InstanceKey, PoolStats};
use duality_sched::SchedStats;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Number of log₂ latency buckets: bucket `i` holds jobs whose
/// submit-to-completion latency was in `[2^(i−1), 2^i)` microseconds
/// (bucket 0: < 1 µs), so the top bucket covers ≈ 34 s and beyond.
pub const LATENCY_BUCKETS: usize = 26;

/// The log-bucketed latency histogram, shared by all workers.
pub(crate) struct Histogram {
    buckets: [AtomicU64; LATENCY_BUCKETS],
    count: AtomicU64,
    sum_us: AtomicU64,
    max_us: AtomicU64,
}

impl Histogram {
    fn new() -> Histogram {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_us: AtomicU64::new(0),
            max_us: AtomicU64::new(0),
        }
    }

    pub fn record(&self, us: u64) {
        let idx = (64 - us.leading_zeros() as usize).min(LATENCY_BUCKETS - 1);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
        self.max_us.fetch_max(us, Ordering::Relaxed);
    }

    fn snapshot(&self) -> LatencySnapshot {
        LatencySnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            count: self.count.load(Ordering::Relaxed),
            sum_us: self.sum_us.load(Ordering::Relaxed),
            max_us: self.max_us.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of the latency histogram.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LatencySnapshot {
    /// Per-bucket job counts (see [`LATENCY_BUCKETS`] for the geometry).
    pub buckets: [u64; LATENCY_BUCKETS],
    /// Jobs recorded.
    pub count: u64,
    /// Sum of all recorded latencies, in microseconds.
    pub sum_us: u64,
    /// The slowest recorded latency, in microseconds.
    pub max_us: u64,
}

impl LatencySnapshot {
    /// An upper bound (bucket ceiling) on the `q`-quantile latency in
    /// microseconds, `q ∈ [0, 1]`. `None` when nothing was recorded.
    pub fn quantile_us(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let target = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                // Bucket i holds latencies < 2^i µs; clamp the ceiling to
                // the observed maximum (also covers the unbounded top
                // bucket) so a quantile never exceeds the real slowest job.
                return Some(if i == LATENCY_BUCKETS - 1 {
                    self.max_us
                } else {
                    (1u64 << i).min(self.max_us)
                });
            }
        }
        Some(self.max_us)
    }

    /// Mean latency in microseconds (`None` when nothing was recorded).
    pub fn mean_us(&self) -> Option<u64> {
        (self.count > 0).then(|| self.sum_us / self.count)
    }

    /// The histogram of everything recorded *after* `earlier` was taken
    /// (per-bucket saturating difference) — how interval consumers like
    /// the saturation ramp get per-round quantiles out of a cumulative
    /// histogram. `max_us` keeps this snapshot's value: the true
    /// interval maximum is not recoverable from two cumulative
    /// snapshots, so the quantile ceilings stay upper bounds.
    pub fn delta(&self, earlier: &LatencySnapshot) -> LatencySnapshot {
        LatencySnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].saturating_sub(earlier.buckets[i])),
            count: self.count.saturating_sub(earlier.count),
            sum_us: self.sum_us.saturating_sub(earlier.sum_us),
            max_us: self.max_us,
        }
    }
}

/// Formats a microsecond latency for humans.
fn fmt_us(us: u64) -> String {
    if us < 1_000 {
        format!("{us}µs")
    } else if us < 1_000_000 {
        format!("{:.1}ms", us as f64 / 1_000.0)
    } else {
        format!("{:.2}s", us as f64 / 1_000_000.0)
    }
}

impl std::fmt::Display for LatencySnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match (self.quantile_us(0.5), self.quantile_us(0.99)) {
            (Some(p50), Some(p99)) => write!(
                f,
                "{} jobs, p50 ≤ {}, p99 ≤ {}, max {}",
                self.count,
                fmt_us(p50),
                fmt_us(p99),
                fmt_us(self.max_us)
            ),
            _ => write!(f, "no jobs recorded"),
        }
    }
}

/// The amortized CONGEST bill of one shard. Substrate is billed by
/// content: each topology fingerprint's topo-tier rounds and each
/// instance key's weight-tier rounds are charged **once** per shard (the
/// amortization the pool provides — a respec-reused spec adds no second
/// topo share), while query rounds are the exact sum of the executed
/// jobs' marginal ledgers.
///
/// The billed-content maps are **bounded** to the shard pool's capacity:
/// entries beyond what the pool can cache correspond to solvers the pool
/// has evicted, whose substrate genuinely rebuilds on re-admission — so
/// dropping their amortization record (and re-billing on return) keeps
/// the bill honest while keeping memory `O(live set)` on a long-lived
/// engine instead of `O(every spec ever seen)`.
struct ShardBill {
    query_rounds: AtomicU64,
    substrate_rounds: AtomicU64,
    billed: Mutex<Billed>,
}

#[derive(Default)]
struct Billed {
    /// Topo-tier rounds already billed, per topology fingerprint.
    topo: HashMap<u64, u64>,
    /// Weight-tier rounds already billed, per instance key (spec level).
    weight: HashMap<InstanceKey, u64>,
    /// Timed topo-tier build phases already billed, per topology
    /// fingerprint — the wall-clock twin of `topo`. A phase *count*, not
    /// a µs total: phases append in first-charge order and each is timed
    /// exactly once, so the count pins the fresh suffix even when a
    /// phase measured 0µs.
    topo_us: HashMap<u64, u64>,
    /// Timed weight-tier build phases already billed, per instance key.
    weight_us: HashMap<InstanceKey, u64>,
    /// Shard-wide substrate build µs per phase (embed / dual / bdd /
    /// weight-tier / labeling), accumulated from the freshly billed
    /// deltas. At most a handful of keys — never bounded away.
    phase_us: HashMap<String, u64>,
}

/// The suffix of `phases` past the first `seen` entries. Each substrate
/// phase is timed exactly once per build (`OnceLock`) and the ledger
/// appends in first-charge order, so the already-billed share is always
/// a prefix — the seen *count* identifies where the fresh suffix starts
/// (robust to phases that measured 0µs, unlike a µs watermark).
fn fresh_phases(phases: &[(String, u64)], seen: u64) -> Vec<(String, u64)> {
    phases
        .iter()
        .skip(usize::try_from(seen).unwrap_or(usize::MAX))
        .cloned()
        .collect()
}

/// Caps `map` at `capacity` entries by dropping arbitrary other entries
/// (amortization records, not correctness state — see [`ShardBill`]),
/// keeping `keep` itself.
fn bound_map<K: std::hash::Hash + Eq + Copy>(map: &mut HashMap<K, u64>, keep: K, capacity: usize) {
    while map.len() > capacity {
        let Some(&victim) = map.keys().find(|&&k| k != keep) else {
            break;
        };
        map.remove(&victim);
    }
}

/// The engine-wide registry: lifecycle counters, the latency histogram
/// and the per-shard round bills. One instance per engine, shared by all
/// workers.
pub(crate) struct MetricsRegistry {
    pub submitted: AtomicU64,
    pub completed: AtomicU64,
    pub failed: AtomicU64,
    pub rejected: AtomicU64,
    pub expired: AtomicU64,
    pub cancelled: AtomicU64,
    /// Jobs executing on a worker *right now* (claimed, not yet resolved)
    /// — the instantaneous pressure gauge the control plane reads, as
    /// opposed to the derived
    /// [`in_flight`](MetricsSnapshot::in_flight) which also counts the
    /// queued backlog.
    pub running: AtomicU64,
    /// Worker threads currently alive. Incremented at spawn, decremented
    /// as each worker loop exits — so after a scale-down this converges
    /// to the target only once the retired threads have actually left.
    pub live_workers: AtomicU64,
    pub latency: Histogram,
    shards: Vec<ShardBill>,
    /// Bound on each billed-content map — the shard pool's capacity.
    billed_capacity: usize,
}

impl MetricsRegistry {
    pub fn new(shards: usize, billed_capacity: usize) -> MetricsRegistry {
        MetricsRegistry {
            submitted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            expired: AtomicU64::new(0),
            cancelled: AtomicU64::new(0),
            running: AtomicU64::new(0),
            live_workers: AtomicU64::new(0),
            latency: Histogram::new(),
            shards: (0..shards)
                .map(|_| ShardBill {
                    query_rounds: AtomicU64::new(0),
                    substrate_rounds: AtomicU64::new(0),
                    billed: Mutex::new(Billed::default()),
                })
                .collect(),
            billed_capacity: billed_capacity.max(1),
        }
    }

    /// Bills one completed job's rounds to its shard: query marginals sum
    /// exactly; substrate is delta-billed per content so it is charged
    /// once per (shard, topology) and once per (shard, spec) no matter
    /// how many jobs share it — and if the lazily built substrate grew
    /// since the last job on the same content (e.g. a girth query added
    /// the dual graph), only the growth is billed.
    ///
    /// Substrate build *microseconds* are delta-billed the same way, per
    /// phase: the returned list holds exactly the phases this job's
    /// report introduced (empty for jobs served off an already-billed
    /// substrate) — ready to emit as profiling spans without
    /// double-counting a build that many jobs shared.
    pub fn bill(&self, shard: usize, key: InstanceKey, rounds: &RoundReport) -> Vec<(String, u64)> {
        let bill = &self.shards[shard];
        bill.query_rounds
            .fetch_add(rounds.query_total(), Ordering::Relaxed);
        let topo_total = rounds.substrate_topo_total();
        let weight_total = rounds.substrate_weight_total();
        let topo_phase_count = rounds.substrate_topo.phases_us().len() as u64;
        let weight_phase_count = rounds.substrate_weight.phases_us().len() as u64;
        let mut billed = bill.billed.lock().expect("bill lock");
        let seen_topo = billed.topo.entry(key.topo_fingerprint()).or_insert(0);
        let delta = topo_total.saturating_sub(*seen_topo);
        *seen_topo = (*seen_topo).max(topo_total);
        let seen_weight = billed.weight.entry(key).or_insert(0);
        let delta = delta + weight_total.saturating_sub(*seen_weight);
        *seen_weight = (*seen_weight).max(weight_total);
        // Wall-clock twin: the seen-phase-count watermark identifies the
        // fresh phase suffix of each tier's timing track.
        let seen_topo_us = billed.topo_us.entry(key.topo_fingerprint()).or_insert(0);
        let mut fresh = fresh_phases(rounds.substrate_topo.phases_us(), *seen_topo_us);
        *seen_topo_us = (*seen_topo_us).max(topo_phase_count);
        let seen_weight_us = billed.weight_us.entry(key).or_insert(0);
        fresh.extend(fresh_phases(
            rounds.substrate_weight.phases_us(),
            *seen_weight_us,
        ));
        *seen_weight_us = (*seen_weight_us).max(weight_phase_count);
        for (phase, us) in &fresh {
            *billed.phase_us.entry(phase.clone()).or_insert(0) += us;
        }
        bound_map(
            &mut billed.topo,
            key.topo_fingerprint(),
            self.billed_capacity,
        );
        bound_map(&mut billed.weight, key, self.billed_capacity);
        bound_map(
            &mut billed.topo_us,
            key.topo_fingerprint(),
            self.billed_capacity,
        );
        bound_map(&mut billed.weight_us, key, self.billed_capacity);
        drop(billed);
        if delta > 0 {
            bill.substrate_rounds.fetch_add(delta, Ordering::Relaxed);
        }
        fresh
    }

    /// The shard's substrate build µs per phase, sorted by phase name for
    /// a deterministic snapshot shape.
    pub fn shard_phase_us(&self, shard: usize) -> Vec<(String, u64)> {
        let billed = self.shards[shard].billed.lock().expect("bill lock");
        let mut out: Vec<(String, u64)> = billed
            .phase_us
            .iter()
            .map(|(p, us)| (p.clone(), *us))
            .collect();
        out.sort();
        out
    }

    /// The per-shard `(substrate_rounds, query_rounds)` pair.
    pub fn shard_rounds(&self, shard: usize) -> (u64, u64) {
        let bill = &self.shards[shard];
        (
            bill.substrate_rounds.load(Ordering::Relaxed),
            bill.query_rounds.load(Ordering::Relaxed),
        )
    }

    pub fn latency_snapshot(&self) -> LatencySnapshot {
        self.latency.snapshot()
    }

    /// Entries in a shard's billed-content maps (bound verification).
    #[cfg(test)]
    fn billed_len(&self, shard: usize) -> (usize, usize) {
        let billed = self.shards[shard].billed.lock().expect("bill lock");
        (billed.topo.len(), billed.weight.len())
    }
}

/// One shard's slice of a [`MetricsSnapshot`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ShardMetrics {
    /// Shard index (also the hash partition: `topo_fingerprint % shards`).
    pub shard: usize,
    /// The shard pool's hit/miss/respec-reuse/eviction counters and byte
    /// gauges (resident / peak / evicted bytes).
    pub pool: PoolStats,
    /// Amortized substrate rounds billed to this shard (topo charged once
    /// per topology, weight once per spec).
    pub substrate_rounds: u64,
    /// Sum of the marginal query rounds of this shard's completed jobs.
    pub query_rounds: u64,
    /// Amortized substrate build µs billed to this shard, per phase
    /// (embed / dual / bdd / weight-tier / labeling), sorted by phase
    /// name. Delta-billed like the rounds: each build charged once no
    /// matter how many jobs shared it.
    pub substrate_phase_us: Vec<(String, u64)>,
}

impl ShardMetrics {
    /// Total substrate build µs billed to this shard.
    pub fn substrate_us(&self) -> u64 {
        self.substrate_phase_us.iter().map(|(_, us)| us).sum()
    }
}

impl std::fmt::Display for ShardMetrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "shard {}: {}; rounds: {} substrate + {} query; build {}µs",
            self.shard,
            self.pool,
            self.substrate_rounds,
            self.query_rounds,
            self.substrate_us()
        )
    }
}

/// A point-in-time view of a running (or shut-down) engine — every
/// counter the serving layer maintains, in one displayable value.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Jobs admitted to the queue.
    pub submitted: u64,
    /// Jobs that executed and returned an [`Ok` outcome](duality_core::Outcome).
    pub completed: u64,
    /// Jobs that executed and returned a query error.
    pub failed: u64,
    /// Submissions refused by [`AdmissionPolicy::Reject`](crate::AdmissionPolicy::Reject)
    /// on a full queue.
    pub rejected: u64,
    /// Jobs whose deadline passed before a worker could start them.
    pub expired: u64,
    /// Jobs cancelled via [`Ticket::cancel`](crate::Ticket::cancel) while
    /// still queued.
    pub cancelled: u64,
    /// Jobs currently queued (live gauge). Exact across the scheduler's
    /// per-worker deques *and* the overflow injector: admission itself
    /// maintains the counter, so it is summed at submit time rather than
    /// sampled from the containers.
    pub queue_depth: usize,
    /// The deepest the queue has ever been, recorded at admission time.
    pub queue_high_water: usize,
    /// Work-stealing scheduler activity: steals, steal-fails, injector
    /// overflows, parks/unparks (see [`SchedStats`]).
    pub scheduler: SchedStats,
    /// Jobs executing on a worker at the instant of the snapshot (live
    /// gauge; the claimed-but-unresolved slice of
    /// [`in_flight`](MetricsSnapshot::in_flight)).
    pub running: u64,
    /// Worker threads currently alive. Tracks
    /// [`ServiceEngine::scale_workers`](crate::ServiceEngine::scale_workers)
    /// with a short lag on scale-down (retired threads exit when they next
    /// visit the queue).
    pub workers: usize,
    /// Submit-to-completion latency distribution of executed jobs.
    pub latency: LatencySnapshot,
    /// Per-shard pool stats and round bills.
    pub shards: Vec<ShardMetrics>,
}

impl MetricsSnapshot {
    /// The per-shard pool counters merged into one fleet-wide line.
    pub fn pool_total(&self) -> PoolStats {
        PoolStats::merged(self.shards.iter().map(|s| &s.pool))
    }

    /// Amortized substrate rounds across all shards.
    pub fn substrate_rounds(&self) -> u64 {
        self.shards.iter().map(|s| s.substrate_rounds).sum()
    }

    /// Marginal query rounds across all shards.
    pub fn query_rounds(&self) -> u64 {
        self.shards.iter().map(|s| s.query_rounds).sum()
    }

    /// The full amortized CONGEST bill (substrate + query).
    pub fn total_rounds(&self) -> u64 {
        self.substrate_rounds() + self.query_rounds()
    }

    /// Fleet-wide substrate build µs per phase (per-shard bills merged,
    /// sorted by phase name).
    pub fn substrate_phase_us(&self) -> Vec<(String, u64)> {
        let mut merged: HashMap<&str, u64> = HashMap::new();
        for shard in &self.shards {
            for (phase, us) in &shard.substrate_phase_us {
                *merged.entry(phase).or_insert(0) += us;
            }
        }
        let mut out: Vec<(String, u64)> = merged
            .into_iter()
            .map(|(p, us)| (p.to_string(), us))
            .collect();
        out.sort();
        out
    }

    /// Fleet-wide substrate build µs (all phases, all shards).
    pub fn substrate_us(&self) -> u64 {
        self.shards.iter().map(ShardMetrics::substrate_us).sum()
    }

    /// Estimated heap bytes resident across every shard pool right now.
    pub fn resident_bytes(&self) -> u64 {
        self.shards.iter().map(|s| s.pool.resident_bytes).sum()
    }

    /// Sum of the per-shard peak-residency high-water marks — an upper
    /// bound on fleet-wide peak residency (shards may not have peaked at
    /// the same instant).
    pub fn peak_resident_bytes(&self) -> u64 {
        self.shards.iter().map(|s| s.pool.peak_resident_bytes).sum()
    }

    /// Cumulative heap bytes released by pool evictions across the fleet.
    pub fn evicted_bytes(&self) -> u64 {
        self.shards.iter().map(|s| s.pool.evicted_bytes).sum()
    }

    /// Jobs admitted but not yet resolved (executing or still queued).
    pub fn in_flight(&self) -> u64 {
        self.submitted
            .saturating_sub(self.completed + self.failed + self.expired + self.cancelled)
    }
}

impl std::fmt::Display for MetricsSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "engine: {} submitted ({} rejected), {} completed, {} failed, {} expired, {} cancelled, {} in flight",
            self.submitted,
            self.rejected,
            self.completed,
            self.failed,
            self.expired,
            self.cancelled,
            self.in_flight()
        )?;
        writeln!(
            f,
            "queue: depth {} (high water {}), {} running; {} worker(s) over {} shard(s)",
            self.queue_depth,
            self.queue_high_water,
            self.running,
            self.workers,
            self.shards.len()
        )?;
        writeln!(f, "sched: {}", self.scheduler)?;
        writeln!(
            f,
            "rounds: {} substrate + {} query = {} total",
            self.substrate_rounds(),
            self.query_rounds(),
            self.total_rounds()
        )?;
        write!(f, "build: {}µs substrate", self.substrate_us())?;
        for (phase, us) in self.substrate_phase_us() {
            write!(f, ", {phase} {us}µs")?;
        }
        writeln!(f)?;
        writeln!(
            f,
            "memory: {} B resident (peak {} B, evicted {} B)",
            self.resident_bytes(),
            self.peak_resident_bytes(),
            self.evicted_bytes()
        )?;
        writeln!(f, "latency: {}", self.latency)?;
        writeln!(f, "fleet {}", self.pool_total())?;
        for shard in &self.shards {
            writeln!(f, "  {shard}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use duality_congest::CostLedger;

    fn report(topo: u64, weight: u64, query: u64) -> RoundReport {
        let mut r = RoundReport::default();
        r.substrate_topo.charge("t", topo);
        r.substrate_weight.charge("w", weight);
        r.query.charge("q", query);
        r
    }

    // `InstanceKey`'s only constructor is content-based, so the billing
    // tests key off tiny real instances.
    fn key(topo_seed: u64, spec_seed: u64) -> InstanceKey {
        use duality_core::PlanarInstance;
        use duality_planar::gen;
        let g = gen::diag_grid(3, 3, topo_seed).unwrap();
        let caps = gen::random_undirected_capacities(g.num_edges(), 1, 9, spec_seed);
        let i = PlanarInstance::new(g, Some(caps), None).unwrap();
        InstanceKey::of(&i)
    }

    #[test]
    fn substrate_is_delta_billed_per_content() {
        let m = MetricsRegistry::new(2, 16);
        let k = key(1, 1);
        // First job on the spec: full substrate + query.
        m.bill(0, k, &report(100, 30, 7));
        assert_eq!(m.shard_rounds(0), (130, 7));
        // Second job, same spec, same snapshot: only the query is new.
        m.bill(0, k, &report(100, 30, 5));
        assert_eq!(m.shard_rounds(0), (130, 12));
        // The substrate grew lazily (a girth query built the dual): only
        // the growth is billed.
        m.bill(0, k, &report(140, 30, 2));
        assert_eq!(m.shard_rounds(0), (170, 14));
        // A respec of the same topology bills its weight tier, not the
        // shared topo tier again.
        let k2 = key(1, 2);
        assert_eq!(k.topo_fingerprint(), k2.topo_fingerprint());
        assert_ne!(k, k2);
        m.bill(0, k2, &report(140, 25, 3));
        assert_eq!(m.shard_rounds(0), (195, 17));
        // Shards bill independently.
        assert_eq!(m.shard_rounds(1), (0, 0));
    }

    #[test]
    fn billed_maps_stay_bounded() {
        // Capacity 2: billing many distinct specs never grows the maps
        // past the bound, and an evicted spec re-bills on return (its
        // solver would genuinely rebuild after pool eviction too).
        let m = MetricsRegistry::new(1, 2);
        let keys: Vec<InstanceKey> = (0..5).map(|s| key(10 + s, 10 + s)).collect();
        for k in &keys {
            m.bill(0, *k, &report(100, 10, 1));
        }
        let (topo_len, weight_len) = m.billed_len(0);
        assert!(topo_len <= 2 && weight_len <= 2, "maps bounded");
        assert_eq!(m.shard_rounds(0), (5 * 110, 5), "each spec billed once");
        // Re-billing all five: at least three were evicted from the
        // 2-entry record and re-charge in full — honest, since the pool
        // would have rebuilt their substrate after its own eviction —
        // while any spec still recorded re-bills zero.
        for k in &keys {
            m.bill(0, *k, &report(100, 10, 1));
        }
        let (substrate, query) = m.shard_rounds(0);
        assert_eq!(query, 10);
        assert!(
            (8 * 110..=10 * 110).contains(&substrate),
            "≥ 3 evicted specs re-billed, ≤ 2 recorded ones did not: {substrate}"
        );
    }

    #[test]
    fn substrate_build_us_is_delta_billed_per_phase() {
        let m = MetricsRegistry::new(1, 16);
        let k = key(4, 4);
        let mut r = report(100, 30, 7);
        r.substrate_topo.charge_us("embed", 50);
        r.substrate_topo.charge_us("bdd", 200);
        r.substrate_weight.charge_us("labeling", 80);
        let fresh = m.bill(0, k, &r);
        assert_eq!(
            fresh,
            vec![
                ("embed".to_string(), 50),
                ("bdd".to_string(), 200),
                ("labeling".to_string(), 80)
            ],
            "the first job on a substrate returns every timed phase"
        );
        // The same snapshot again: the build is already billed.
        assert!(m.bill(0, k, &r).is_empty());
        // The substrate grew lazily (the dual built later): exactly the
        // new phase comes back.
        let mut r2 = r.clone();
        r2.substrate_topo.charge_us("dual", 30);
        assert_eq!(m.bill(0, k, &r2), vec![("dual".to_string(), 30)]);
        // The shard aggregate holds each phase once, sorted by name.
        assert_eq!(
            m.shard_phase_us(0),
            vec![
                ("bdd".to_string(), 200),
                ("dual".to_string(), 30),
                ("embed".to_string(), 50),
                ("labeling".to_string(), 80)
            ]
        );
    }

    #[test]
    fn snapshot_surfaces_bytes_and_build_us_fleet_wide() {
        let mut shard0 = ShardMetrics {
            shard: 0,
            substrate_phase_us: vec![("bdd".to_string(), 100), ("embed".to_string(), 10)],
            ..Default::default()
        };
        shard0.pool.resident_bytes = 1_000;
        shard0.pool.peak_resident_bytes = 1_500;
        shard0.pool.evicted_bytes = 300;
        let shard1 = ShardMetrics {
            shard: 1,
            substrate_phase_us: vec![("bdd".to_string(), 50)],
            ..Default::default()
        };
        let snap = MetricsSnapshot {
            shards: vec![shard0, shard1],
            ..Default::default()
        };
        assert_eq!(snap.substrate_us(), 160);
        assert_eq!(
            snap.substrate_phase_us(),
            vec![("bdd".to_string(), 150), ("embed".to_string(), 10)]
        );
        assert_eq!(snap.resident_bytes(), 1_000);
        assert_eq!(snap.peak_resident_bytes(), 1_500);
        assert_eq!(snap.evicted_bytes(), 300);
        let text = snap.to_string();
        assert!(
            text.contains("build: 160µs substrate, bdd 150µs, embed 10µs"),
            "{text}"
        );
        assert!(
            text.contains("memory: 1000 B resident (peak 1500 B, evicted 300 B)"),
            "{text}"
        );
    }

    #[test]
    fn latency_delta_isolates_an_interval() {
        let h = Histogram::new();
        for us in [10u64, 20, 30] {
            h.record(us);
        }
        let before = h.snapshot();
        for us in [1_000u64, 2_000, 4_000] {
            h.record(us);
        }
        let interval = h.snapshot().delta(&before);
        assert_eq!(interval.count, 3);
        assert_eq!(interval.sum_us, 7_000);
        // The interval's p50 reflects only the later, slower jobs.
        assert!(interval.quantile_us(0.5).unwrap() >= 1_000);
        assert_eq!(before.delta(&before).count, 0);
    }

    #[test]
    fn delta_edge_cases_stay_well_defined() {
        // Empty minus empty: still empty, quantiles still None.
        let empty = LatencySnapshot::default();
        let d = empty.delta(&empty);
        assert_eq!(d, LatencySnapshot::default());
        assert_eq!(d.quantile_us(0.99), None);
        assert_eq!(d.mean_us(), None);

        // Identical non-empty snapshots: a zero-count window whose
        // quantiles are None even though max_us carries over.
        let h = Histogram::new();
        for us in [5u64, 50, 500] {
            h.record(us);
        }
        let s = h.snapshot();
        let d = s.delta(&s);
        assert_eq!(d.count, 0);
        assert_eq!(d.sum_us, 0);
        assert_eq!(d.max_us, s.max_us, "max is not interval-recoverable");
        assert_eq!(d.quantile_us(0.5), None);

        // A window landing entirely in the unbounded top bucket: the
        // quantile ceiling clamps to the observed maximum instead of a
        // power of two.
        let h = Histogram::new();
        let huge = 1u64 << 40; // beyond the last finite bucket boundary
        let before = h.snapshot();
        h.record(huge + 123);
        let d = h.snapshot().delta(&before);
        assert_eq!(d.count, 1);
        assert_eq!(d.buckets[LATENCY_BUCKETS - 1], 1);
        assert_eq!(d.quantile_us(0.99), Some(huge + 123));
        assert_eq!(d.quantile_us(0.0), Some(huge + 123));
    }

    #[test]
    fn histogram_quantiles_and_display() {
        let h = Histogram::new();
        for us in [0u64, 1, 3, 900, 1_500, 40_000] {
            h.record(us);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 6);
        assert_eq!(s.max_us, 40_000);
        assert_eq!(s.mean_us(), Some((1 + 3 + 900 + 1_500 + 40_000) / 6));
        // p50 of six samples = 3rd smallest (3µs) → bucket ceiling 4µs.
        assert_eq!(s.quantile_us(0.5), Some(4));
        assert!(s.quantile_us(1.0).unwrap() >= 40_000);
        assert!(s.to_string().contains("6 jobs"));
        assert_eq!(LatencySnapshot::default().quantile_us(0.5), None);
        assert_eq!(LatencySnapshot::default().to_string(), "no jobs recorded");
        // Sub-second and second formatting.
        assert_eq!(fmt_us(999), "999µs");
        assert_eq!(fmt_us(1_500), "1.5ms");
        assert_eq!(fmt_us(2_000_000), "2.00s");
    }

    #[test]
    fn snapshot_aggregates_across_shards() {
        let snap = MetricsSnapshot {
            submitted: 10,
            completed: 7,
            failed: 1,
            expired: 1,
            cancelled: 1,
            shards: vec![
                ShardMetrics {
                    shard: 0,
                    substrate_rounds: 100,
                    query_rounds: 40,
                    ..Default::default()
                },
                ShardMetrics {
                    shard: 1,
                    substrate_rounds: 50,
                    query_rounds: 10,
                    ..Default::default()
                },
            ],
            ..Default::default()
        };
        assert_eq!(snap.substrate_rounds(), 150);
        assert_eq!(snap.query_rounds(), 50);
        assert_eq!(snap.total_rounds(), 200);
        assert_eq!(snap.in_flight(), 0);
        let text = snap.to_string();
        assert!(text.contains("10 submitted"));
        assert!(text.contains("150 substrate + 50 query"));
        assert!(text.contains("shard 1"));
    }

    #[test]
    fn display_renders_the_live_gauges() {
        // Operator dumps must show the live fleet shape, not just the
        // lifetime counters: the running-jobs gauge and the current
        // worker count both render.
        let snap = MetricsSnapshot {
            submitted: 4,
            completed: 1,
            running: 3,
            workers: 5,
            queue_depth: 2,
            queue_high_water: 9,
            ..Default::default()
        };
        let text = snap.to_string();
        assert!(text.contains("3 running"), "{text}");
        assert!(text.contains("5 worker(s)"), "{text}");
        assert!(text.contains("depth 2 (high water 9)"), "{text}");
        assert_eq!(snap.in_flight(), 3);
    }

    #[test]
    fn display_pins_the_scheduler_gauge_line() {
        // The scheduler line is part of the operator-facing format;
        // pin it verbatim so gauge renames are deliberate.
        let snap = MetricsSnapshot {
            submitted: 6,
            completed: 6,
            scheduler: SchedStats {
                steals: 12,
                steal_fails: 3,
                injector_overflows: 2,
                parks: 9,
                unparks: 8,
            },
            ..Default::default()
        };
        let text = snap.to_string();
        assert!(
            text.contains("sched: 12 steals (3 failed), 2 injector overflows, 9 parks / 8 unparks"),
            "{text}"
        );
        // The empty default still renders the line (all zeros).
        let empty = MetricsSnapshot::default().to_string();
        assert!(
            empty.contains("sched: 0 steals (0 failed), 0 injector overflows, 0 parks / 0 unparks"),
            "{empty}"
        );
    }

    #[test]
    fn ledger_shapes_flow_through_bill() {
        // A real multi-phase ledger bills its total, not its phase count.
        let m = MetricsRegistry::new(1, 16);
        let mut r = RoundReport::default();
        let mut q = CostLedger::new();
        q.charge("labeling-broadcast", 11);
        q.charge("candidate-scan", 4);
        r.query = q;
        m.bill(0, key(2, 3), &r);
        assert_eq!(m.shard_rounds(0), (0, 15));
    }
}
