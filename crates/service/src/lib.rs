//! The sharded serving engine: multi-tenant query traffic over pooled
//! planar solvers.
//!
//! The layers below this crate already amortize everything that can be
//! amortized: a [`duality_core::PlanarSolver`] caches its two-tier
//! substrate, and a [`duality_core::pool::SolverPool`] caches solvers per
//! instance with respec-reuse. What they do not provide is a *serving
//! surface* — every caller still funnels through one pool mutex and
//! executes queries on its own thread. [`ServiceEngine`] is that surface:
//!
//! * **sharding** — instance keys are hash-partitioned by their topology
//!   fingerprint across N independent [`SolverPool`](duality_core::pool::SolverPool)
//!   shards, so there is no global pool lock and respecs of one network
//!   always land on the shard holding their donor solver;
//! * **scheduling** — submissions enter a bounded work-stealing
//!   scheduler ([`duality_sched::Scheduler`]): per-worker stealing
//!   deques with a global overflow injector, drained by a pool of
//!   `std::thread` workers that pop their own deque LIFO and steal from
//!   siblings FIFO, with exactly one idle worker woken per submit;
//!   callers get a typed [`Ticket`] back immediately and collect the
//!   [`Outcome`](duality_core::Outcome) asynchronously — or push many
//!   queries through the amortized [`ServiceEngine::run_batch`] path;
//! * **admission control** — the queue is bounded, and a full queue
//!   either rejects ([`AdmissionPolicy::Reject`] →
//!   [`SubmitError::QueueFull`]) or applies backpressure by blocking the
//!   submitter ([`AdmissionPolicy::Block`]);
//! * **deadlines and cancellation** — a job can carry a deadline (workers
//!   refuse to start it past-due: [`ServiceError::Expired`]) and a ticket
//!   can be cancelled while the job is still queued
//!   ([`ServiceError::Cancelled`]);
//! * **graceful shutdown** — [`ServiceEngine::shutdown`] stops admission,
//!   drains every queued job, joins the workers and returns the final
//!   metrics snapshot; dropping the engine does the same;
//! * **live reconfiguration** — the control-plane levers:
//!   [`ServiceEngine::scale_workers`] grows or cooperatively shrinks the
//!   worker fleet at runtime, [`ServiceEngine::set_admission`] flips the
//!   admission policy live, and [`ServiceEngine::shard_residency`] /
//!   [`ServiceEngine::evict`] observe and prune what each shard pool
//!   caches;
//! * **live metrics** — a lock-light registry of atomic counters
//!   (submitted / completed / failed / rejected / expired / cancelled), a
//!   log-bucketed latency histogram, live queue-depth / running / worker
//!   gauges plus the queue high-water mark (exact: admission maintains
//!   the depth counter itself, across deques *and* injector), scheduler
//!   activity counters ([`SchedStats`]: steals, steal-fails, injector
//!   overflows, parks/unparks), and per-shard pool hit/miss
//!   plus amortized CONGEST round bills, all snapshot as one
//!   [`MetricsSnapshot`] with a human-readable `Display`;
//! * **telemetry spans** — with a sink attached
//!   ([`EngineBuilder::span_sink`](engine::EngineBuilder::span_sink)),
//!   every resolved job emits one [`SpanRecord`] carrying its lifecycle
//!   tick stamps and routing identity, decomposing latency into
//!   queue-wait vs service-time per job (see [`span`]); the
//!   `duality-telemetry` crate provides the ring-buffer sink and the
//!   per-tenant ledger that consume them.
//!
//! Determinism contract: every outcome an engine returns is **bit-for-bit
//! identical** to what a serial [`duality_core::PlanarSolver::run`] would
//! produce for the same instance and query — witnesses and marginal query
//! rounds included — regardless of the worker/shard configuration (the
//! substrate *snapshots* attached to an outcome may differ, because
//! concurrent queries can observe the lazily built substrate at different
//! stages; the `experiments s4` harness checks the contract across a
//! worker × shard sweep).
//!
//! # Example
//!
//! ```
//! use duality_core::{PlanarInstance, Query};
//! use duality_planar::gen;
//! use duality_service::ServiceEngine;
//!
//! let g = gen::diag_grid(4, 4, 7).unwrap();
//! let caps = gen::random_undirected_capacities(g.num_edges(), 1, 9, 7);
//! let instance = PlanarInstance::new(g, Some(caps), None).unwrap();
//!
//! let engine = ServiceEngine::builder()
//!     .shards(2)
//!     .workers(2)
//!     .build()
//!     .unwrap();
//!
//! // Submit asynchronously, collect via the ticket…
//! let ticket = engine.submit(&instance, Query::MaxFlow { s: 0, t: 15 }).unwrap();
//! let flow = ticket.wait().unwrap();
//! assert!(flow.as_max_flow().unwrap().value > 0);
//!
//! // …or use the submit-and-wait convenience.
//! let girth = engine.run(&instance, Query::Girth).unwrap();
//! assert!(girth.as_girth().unwrap().girth > 0);
//!
//! let metrics = engine.shutdown();
//! assert_eq!(metrics.completed, 2);
//! println!("{metrics}");
//! ```

pub mod engine;
pub mod metrics;
pub mod span;

pub use duality_sched::{DequeueSource, SchedStats};
pub use engine::{
    AdmissionPolicy, EngineBuilder, ServiceEngine, ServiceError, SubmitError, Ticket,
};
pub use metrics::{LatencySnapshot, MetricsSnapshot, ShardMetrics};
pub use span::{query_kind, PhaseSpan, SpanRecord, SpanSink, SpanState};
