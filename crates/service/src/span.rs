//! Job lifecycle spans: the engine's per-job telemetry emission surface.
//!
//! Every job the engine resolves — completed, failed, expired, cancelled
//! or rejected at admission — emits exactly one [`SpanRecord`] into the
//! engine's attached [`SpanSink`] (if any). The record carries the
//! job's routing identity (tenant topology fingerprint, spec hash,
//! query kind, shard, worker) and its lifecycle tick stamps in
//! microseconds since the engine's epoch, so a consumer can decompose
//! latency into **queue-wait** ([`SpanRecord::wait_us`]) and
//! **service-time** ([`SpanRecord::service_us`]) per job — the split
//! the aggregate latency histogram cannot provide.
//!
//! The sink contract is *never block the hot path*: the engine calls
//! [`SpanSink::record`] outside every lock it holds, and a sink that
//! cannot accept a span (full, contended) must drop it — counted, not
//! blocking. The engine itself attaches no sink by default; telemetry
//! is strictly opt-in via [`EngineBuilder::span_sink`](crate::EngineBuilder::span_sink)
//! and its absence costs one branch per job.

use duality_core::pool::InstanceKey;
use duality_core::Query;
use duality_sched::DequeueSource;

/// How a job's lifecycle ended — one terminal state per span, mirroring
/// the engine's lifecycle counters exactly.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SpanState {
    /// Executed and returned an outcome (`completed` counter).
    Completed,
    /// Executed and returned a query error, or the worker panicked
    /// (`failed` counter).
    Failed,
    /// Deadline passed before a worker could start it (`expired`).
    Expired,
    /// Cancelled via `Ticket::cancel` while queued (`cancelled`).
    Cancelled,
    /// Refused at admission by a full queue under
    /// [`AdmissionPolicy::Reject`](crate::AdmissionPolicy::Reject)
    /// (`rejected`) — never entered the queue, so only the submit and
    /// finish stamps are meaningful.
    Rejected,
}

impl SpanState {
    /// Stable short name (used by telemetry serialization and displays).
    pub fn name(self) -> &'static str {
        match self {
            SpanState::Completed => "completed",
            SpanState::Failed => "failed",
            SpanState::Expired => "expired",
            SpanState::Cancelled => "cancelled",
            SpanState::Rejected => "rejected",
        }
    }

    /// Inverse of [`SpanState::name`].
    pub fn parse(name: &str) -> Option<SpanState> {
        Some(match name {
            "completed" => SpanState::Completed,
            "failed" => SpanState::Failed,
            "expired" => SpanState::Expired,
            "cancelled" => SpanState::Cancelled,
            "rejected" => SpanState::Rejected,
            _ => return None,
        })
    }
}

impl std::fmt::Display for SpanState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The stable short name of a query kind — the span field is a kind, not
/// the full parameterized query, so spans stay compact and aggregable.
pub fn query_kind(query: &Query) -> &'static str {
    match query {
        Query::MaxFlow { .. } => "max-flow",
        Query::MinStCut { .. } => "min-st-cut",
        Query::ApproxMaxFlow { .. } => "approx-max-flow",
        Query::ApproxMinStCut { .. } => "approx-min-st-cut",
        Query::GlobalMinCut => "global-min-cut",
        Query::Girth => "girth",
    }
}

/// One job's complete lifecycle record, emitted at its terminal
/// transition. Tick stamps are microseconds since the engine's creation
/// epoch; optional stamps are `None` for phases the job never reached
/// (a rejected job was never admitted, a cancelled job never started).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpanRecord {
    /// The tenant identity: the instance's topology fingerprint
    /// ([`InstanceKey::topo_fingerprint`]) — shared by every respec of
    /// one network, which is exactly the per-tenant aggregation grain.
    pub tenant: u64,
    /// The spec hash ([`InstanceKey::spec_hash`]) — distinguishes
    /// respecs within a tenant.
    pub spec: u64,
    /// Query kind short name (see [`query_kind`]).
    pub query: &'static str,
    /// The shard the job routed to.
    pub shard: usize,
    /// The worker that resolved the span; `None` when no worker ever
    /// touched the job (rejected at admission).
    pub worker: Option<usize>,
    /// Terminal state.
    pub state: SpanState,
    /// When the submitter called in.
    pub submitted_us: u64,
    /// When the job entered the queue (after any
    /// [`AdmissionPolicy::Block`](crate::AdmissionPolicy::Block) wait).
    /// `None` for rejected jobs. Stamped by the submitting thread right
    /// after the push; a job resolved faster than that stamp lands
    /// reports `admitted == submitted`.
    pub admitted_us: Option<u64>,
    /// When a worker popped the job off the queue. `None` when no
    /// worker dequeued it (rejected).
    pub dequeued_us: Option<u64>,
    /// When execution began. `None` for jobs that never ran (rejected,
    /// expired, cancelled).
    pub started_us: Option<u64>,
    /// When the terminal state was reached.
    pub finished_us: u64,
    /// Where the resolving worker found the job — its own deque, the
    /// overflow injector, or stolen from a sibling. `None` when no
    /// worker dequeued it (rejected at admission). Keeps dequeue
    /// attribution exact under work stealing.
    pub source: Option<DequeueSource>,
}

impl SpanRecord {
    /// Queue-wait: submit until execution start — or until the terminal
    /// stamp for jobs that never started (their whole life was waiting).
    pub fn wait_us(&self) -> u64 {
        self.started_us
            .unwrap_or(self.finished_us)
            .saturating_sub(self.submitted_us)
    }

    /// Service-time: execution start to finish. `None` for jobs that
    /// never started.
    pub fn service_us(&self) -> Option<u64> {
        self.started_us.map(|s| self.finished_us.saturating_sub(s))
    }

    /// End-to-end latency: submit to terminal state.
    pub fn total_us(&self) -> u64 {
        self.finished_us.saturating_sub(self.submitted_us)
    }

    /// The job's instance key, reassembled from the span fields.
    pub fn key(&self) -> InstanceKey {
        InstanceKey::from_parts(self.tenant, self.spec)
    }
}

impl std::fmt::Display for SpanRecord {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} {} tenant {:016x} shard {} wait {}µs",
            self.state,
            self.query,
            self.tenant,
            self.shard,
            self.wait_us()
        )?;
        if let Some(service) = self.service_us() {
            write!(f, " service {service}µs")?;
        }
        Ok(())
    }
}

/// One substrate build phase's profiling span, emitted when a worker's
/// completed job is the first to bill that phase of its solver's
/// substrate (the metrics registry's delta-billing guarantees each build
/// is emitted exactly once per shard, no matter how many jobs shared
/// it). `us` is the measured wall-clock build time of the phase; the
/// `finished_us` engine-epoch stamp anchors it on the session timeline.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PhaseSpan {
    /// Tenant topology fingerprint (same grain as [`SpanRecord::tenant`]).
    pub tenant: u64,
    /// Spec hash of the instance whose substrate built.
    pub spec: u64,
    /// Phase name: `embed`, `dual`, `bdd`, `weight-tier` or `labeling`.
    pub phase: String,
    /// The shard whose pool hosts the built substrate.
    pub shard: usize,
    /// The worker whose job first billed the phase.
    pub worker: usize,
    /// Measured wall-clock build time of the phase, in microseconds.
    pub us: u64,
    /// Engine-epoch stamp (µs) of the billing job's completion — when
    /// the phase was *attributed*, an upper bound on when it ran.
    pub finished_us: u64,
}

impl std::fmt::Display for PhaseSpan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "phase {} {}µs tenant {:016x} shard {}",
            self.phase, self.us, self.tenant, self.shard
        )
    }
}

/// Where the engine delivers spans. Implementations must be lock-light:
/// [`SpanSink::record`] runs on the worker threads (and on submitter
/// threads for rejections) after every job, and must **never block** —
/// drop and count instead (see `duality-telemetry`'s ring sink for the
/// reference implementation).
pub trait SpanSink: Send + Sync {
    /// Accepts one span, or drops it (counted) — never blocks.
    fn record(&self, span: SpanRecord);

    /// Accepts one substrate-build profiling span, or drops it — never
    /// blocks. Defaults to dropping silently so sinks that only consume
    /// job lifecycles need no change.
    fn record_phase(&self, span: PhaseSpan) {
        let _ = span;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span() -> SpanRecord {
        SpanRecord {
            tenant: 7,
            spec: 9,
            query: "girth",
            shard: 0,
            worker: Some(1),
            state: SpanState::Completed,
            submitted_us: 100,
            admitted_us: Some(110),
            dequeued_us: Some(150),
            started_us: Some(160),
            finished_us: 460,
            source: Some(DequeueSource::Local),
        }
    }

    #[test]
    fn wait_service_decomposition() {
        let s = span();
        assert_eq!(s.wait_us(), 60);
        assert_eq!(s.service_us(), Some(300));
        assert_eq!(s.total_us(), 360);
        assert_eq!(s.key().topo_fingerprint(), 7);
        assert_eq!(s.key().spec_hash(), 9);
        assert!(s.to_string().contains("service 300µs"));
    }

    #[test]
    fn unstarted_jobs_spend_their_whole_life_waiting() {
        let s = SpanRecord {
            started_us: None,
            state: SpanState::Cancelled,
            ..span()
        };
        assert_eq!(s.wait_us(), 360, "wait runs to the terminal stamp");
        assert_eq!(s.service_us(), None);
        assert!(!s.to_string().contains("service"));
    }

    #[test]
    fn states_round_trip_their_names() {
        for state in [
            SpanState::Completed,
            SpanState::Failed,
            SpanState::Expired,
            SpanState::Cancelled,
            SpanState::Rejected,
        ] {
            assert_eq!(SpanState::parse(state.name()), Some(state));
        }
        assert_eq!(SpanState::parse("nope"), None);
    }

    #[test]
    fn query_kinds_are_stable_short_names() {
        assert_eq!(query_kind(&Query::MaxFlow { s: 0, t: 1 }), "max-flow");
        assert_eq!(query_kind(&Query::Girth), "girth");
        assert_eq!(query_kind(&Query::GlobalMinCut), "global-min-cut");
    }
}
