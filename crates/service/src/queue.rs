//! The bounded MPMC job queue between submitters and workers.
//!
//! A plain `Mutex<VecDeque>` + two `Condvar`s: the workspace is
//! dependency-free by design, and the queue is never the hot path — every
//! popped job runs a solver query that dwarfs the lock hand-off. The
//! queue also carries the engine's lifecycle switches: a **start
//! gate** (a paused queue buffers jobs without dispatching, which is what
//! makes admission-control and metrics tests deterministic), a
//! **close** flag (no new pushes; pops drain the backlog and then return
//! `None`, which is how workers learn to exit), and a **retire counter**
//! (each pending retirement is handed to exactly one popping worker as
//! [`Popped::Retire`] — the scale-down signal, consumed ahead of queued
//! jobs so shrinking the fleet never waits behind a backlog).

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Why a push was refused.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum PushError {
    /// The queue is at capacity (non-blocking push only).
    Full,
    /// The queue has been closed for admission.
    Closed,
}

/// What a successful pop handed the worker.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Popped<T> {
    /// A queued job to execute.
    Job(T),
    /// A retirement signal: this worker should exit (scale-down). Each
    /// [`Bounded::retire`] request is delivered to exactly one worker.
    Retire,
}

struct Inner<T> {
    jobs: VecDeque<T>,
    capacity: usize,
    closed: bool,
    started: bool,
    retiring: usize,
    high_water: usize,
}

pub(crate) struct Bounded<T> {
    inner: Mutex<Inner<T>>,
    not_empty: Condvar,
    not_full: Condvar,
}

impl<T> Bounded<T> {
    /// A queue holding at most `capacity` jobs (clamped to ≥ 1). When
    /// `started` is false, pops park until [`Bounded::resume`] (or
    /// [`Bounded::close`], which drains).
    pub fn new(capacity: usize, started: bool) -> Bounded<T> {
        Bounded {
            inner: Mutex::new(Inner {
                jobs: VecDeque::new(),
                capacity: capacity.max(1),
                closed: false,
                started,
                retiring: 0,
                high_water: 0,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        }
    }

    /// Enqueues a job. With `block`, a full queue parks the caller until
    /// space frees up (or the queue closes); without, it returns
    /// [`PushError::Full`] immediately.
    pub fn push(&self, job: T, block: bool) -> Result<(), PushError> {
        let mut inner = self.inner.lock().expect("queue lock");
        loop {
            if inner.closed {
                return Err(PushError::Closed);
            }
            if inner.jobs.len() < inner.capacity {
                break;
            }
            if !block {
                return Err(PushError::Full);
            }
            inner = self.not_full.wait(inner).expect("queue lock");
        }
        inner.jobs.push_back(job);
        inner.high_water = inner.high_water.max(inner.jobs.len());
        drop(inner);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Dequeues the oldest job, parking while the queue is empty (or not
    /// yet started). A pending retirement outranks queued work and the
    /// start gate: scale-down must not wait behind a backlog or a paused
    /// engine. `None` once the queue is closed **and** drained — the
    /// worker exit signal.
    pub fn pop(&self) -> Option<Popped<T>> {
        let mut inner = self.inner.lock().expect("queue lock");
        loop {
            if inner.retiring > 0 {
                inner.retiring -= 1;
                return Some(Popped::Retire);
            }
            if inner.started || inner.closed {
                if let Some(job) = inner.jobs.pop_front() {
                    drop(inner);
                    self.not_full.notify_one();
                    return Some(Popped::Job(job));
                }
                if inner.closed {
                    return None;
                }
            }
            inner = self.not_empty.wait(inner).expect("queue lock");
        }
    }

    /// Asks `n` workers to exit: the next `n` pops observe
    /// [`Popped::Retire`] instead of a job. Queued jobs are untouched —
    /// the survivors drain them.
    pub fn retire(&self, n: usize) {
        self.inner.lock().expect("queue lock").retiring += n;
        self.not_empty.notify_all();
    }

    /// Opens the start gate: parked pops begin dispatching.
    pub fn resume(&self) {
        self.inner.lock().expect("queue lock").started = true;
        self.not_empty.notify_all();
    }

    /// Closes admission: pending and future pushes fail with
    /// [`PushError::Closed`]; pops drain the backlog and then observe the
    /// end of the queue. Idempotent.
    pub fn close(&self) {
        self.inner.lock().expect("queue lock").closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// Jobs currently queued.
    pub fn depth(&self) -> usize {
        self.inner.lock().expect("queue lock").jobs.len()
    }

    /// The deepest the queue has ever been.
    pub fn high_water(&self) -> usize {
        self.inner.lock().expect("queue lock").high_water
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_order_and_high_water() {
        let q = Bounded::new(4, true);
        for i in 0..3 {
            q.push(i, false).unwrap();
        }
        assert_eq!(q.depth(), 3);
        assert_eq!(q.high_water(), 3);
        assert_eq!(q.pop(), Some(Popped::Job(0)));
        assert_eq!(q.pop(), Some(Popped::Job(1)));
        q.push(9, false).unwrap();
        assert_eq!(q.pop(), Some(Popped::Job(2)));
        assert_eq!(q.pop(), Some(Popped::Job(9)));
        assert_eq!(q.high_water(), 3, "high water is a maximum, not a level");
    }

    #[test]
    fn nonblocking_push_rejects_when_full() {
        let q = Bounded::new(2, true);
        q.push(1, false).unwrap();
        q.push(2, false).unwrap();
        assert_eq!(q.push(3, false), Err(PushError::Full));
        assert_eq!(q.pop(), Some(Popped::Job(1)));
        q.push(3, false).unwrap();
    }

    #[test]
    fn close_drains_then_ends() {
        let q = Bounded::new(4, true);
        q.push(1, false).unwrap();
        q.push(2, false).unwrap();
        q.close();
        assert_eq!(q.push(3, false), Err(PushError::Closed));
        assert_eq!(q.push(3, true), Err(PushError::Closed), "blocking too");
        assert_eq!(q.pop(), Some(Popped::Job(1)));
        assert_eq!(q.pop(), Some(Popped::Job(2)));
        assert_eq!(q.pop(), None);
        assert_eq!(q.pop(), None, "end of queue is sticky");
    }

    #[test]
    fn paused_queue_buffers_until_resume_or_close() {
        // Paused: jobs accumulate (that is what makes admission tests
        // deterministic); a parked pop wakes on resume.
        let q = Arc::new(Bounded::new(8, false));
        q.push(7, false).unwrap();
        let popper = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.pop())
        };
        q.resume();
        assert_eq!(popper.join().unwrap(), Some(Popped::Job(7)));

        // Close alone also releases the gate — straight into drain mode.
        let q2: Bounded<i32> = Bounded::new(8, false);
        q2.push(1, false).unwrap();
        q2.close();
        assert_eq!(q2.pop(), Some(Popped::Job(1)));
        assert_eq!(q2.pop(), None);
    }

    #[test]
    fn blocking_push_waits_for_space() {
        let q = Arc::new(Bounded::new(1, true));
        q.push(1, false).unwrap();
        let pusher = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.push(2, true))
        };
        // The blocked pusher completes once the slot frees up.
        assert_eq!(q.pop(), Some(Popped::Job(1)));
        assert_eq!(pusher.join().unwrap(), Ok(()));
        assert_eq!(q.pop(), Some(Popped::Job(2)));
    }

    #[test]
    fn retire_outranks_queued_jobs_and_the_start_gate() {
        // Retirement is consumed before queued work...
        let q = Bounded::new(4, true);
        q.push(1, false).unwrap();
        q.retire(1);
        assert_eq!(q.pop(), Some(Popped::Retire));
        assert_eq!(q.pop(), Some(Popped::Job(1)), "jobs survive a retire");

        // ...and even through a paused start gate: scale-down of a paused
        // engine must not deadlock.
        let q2: Bounded<i32> = Bounded::new(4, false);
        q2.retire(2);
        assert_eq!(q2.pop(), Some(Popped::Retire));
        assert_eq!(q2.pop(), Some(Popped::Retire));
    }

    #[test]
    fn retire_wakes_a_parked_popper() {
        let q: Arc<Bounded<i32>> = Arc::new(Bounded::new(4, true));
        let popper = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.pop())
        };
        // Give the popper a beat to park, then retire it.
        std::thread::sleep(std::time::Duration::from_millis(5));
        q.retire(1);
        assert_eq!(popper.join().unwrap(), Some(Popped::Retire));
    }

    #[test]
    fn blocked_pusher_is_released_by_close() {
        let q = Arc::new(Bounded::new(1, true));
        q.push(1, false).unwrap();
        let pusher = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.push(2, true))
        };
        q.close();
        assert_eq!(pusher.join().unwrap(), Err(PushError::Closed));
    }

    #[test]
    fn capacity_clamps_to_one() {
        let q = Bounded::new(0, true);
        q.push(1, false).unwrap();
        assert_eq!(q.push(2, false), Err(PushError::Full));
    }
}
