//! The sharded serving engine: submission, scheduling, execution.
//!
//! See the [crate docs](crate) for the architecture; this module holds
//! the moving parts — [`ServiceEngine`] (shards + queue + workers),
//! [`Ticket`] (the caller's handle on one in-flight job), and the
//! admission/lifecycle types.

use crate::metrics::{MetricsRegistry, MetricsSnapshot, ShardMetrics};
use crate::span::{query_kind, SpanRecord, SpanSink, SpanState};
use duality_core::pool::{InstanceKey, PoolStats, ResidentEntry, SolverPool};
use duality_core::{DualityError, Outcome, PlanarInstance, PlanarSolver, Query};
use duality_sched::{DequeueSource, Popped, PushError, Scheduler};
use std::sync::atomic::{AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// What a full queue does to a new submission.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum AdmissionPolicy {
    /// Refuse immediately with [`SubmitError::QueueFull`] — the caller
    /// sees backpressure and decides (shed, retry, degrade).
    Reject,
    /// Park the submitting thread until space frees up — backpressure
    /// propagates upstream by blocking. The default: no work is lost out
    /// of the box.
    #[default]
    Block,
}

impl AdmissionPolicy {
    /// Stable wire/atomic encoding (`Reject` = 0, `Block` = 1) — used by
    /// the engine's runtime-switchable policy cell and by control-plane
    /// serialization.
    pub fn encode(self) -> u8 {
        match self {
            AdmissionPolicy::Reject => 0,
            AdmissionPolicy::Block => 1,
        }
    }

    /// Inverse of [`AdmissionPolicy::encode`]; any non-zero value decodes
    /// to `Block` (the lossless-by-default policy).
    pub fn decode(v: u8) -> AdmissionPolicy {
        if v == 0 {
            AdmissionPolicy::Reject
        } else {
            AdmissionPolicy::Block
        }
    }
}

/// Why a submission was not admitted.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SubmitError {
    /// The queue is at capacity ([`AdmissionPolicy::Reject`] only).
    QueueFull,
    /// The engine is shutting down; no new work is admitted.
    ShuttingDown,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::QueueFull => write!(f, "job queue is full"),
            SubmitError::ShuttingDown => write!(f, "engine is shutting down"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// Why a submitted job produced no outcome.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServiceError {
    /// The query executed and failed (the solver's own error).
    Query(DualityError),
    /// The job's deadline passed before a worker could start it.
    Expired,
    /// The job was cancelled via [`Ticket::cancel`] while still queued.
    Cancelled,
    /// The worker executing the job panicked. The panic is contained —
    /// the worker survives and the ticket resolves instead of hanging —
    /// but the shard's state may be degraded (e.g. a poisoned pool lock
    /// failing subsequent jobs the same way).
    ExecutionPanicked,
    /// The submission itself was refused (only surfaced by the
    /// submit-and-wait convenience [`ServiceEngine::run`]).
    NotAdmitted(SubmitError),
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::Query(e) => write!(f, "query failed: {e}"),
            ServiceError::Expired => write!(f, "deadline passed before execution"),
            ServiceError::Cancelled => write!(f, "job was cancelled"),
            ServiceError::ExecutionPanicked => write!(f, "worker panicked executing the job"),
            ServiceError::NotAdmitted(e) => write!(f, "not admitted: {e}"),
        }
    }
}

impl std::error::Error for ServiceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServiceError::Query(e) => Some(e),
            ServiceError::NotAdmitted(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DualityError> for ServiceError {
    fn from(e: DualityError) -> ServiceError {
        ServiceError::Query(e)
    }
}

/// One job's result slot: the rendezvous between the worker that fills
/// it and the ticket that waits on it.
//
// `Done` dwarfs the other variants, but each `JobState` lives alone
// inside a per-job heap-allocated `JobSlot` — never in a dense
// collection — so boxing the payload would only add a second
// allocation on the resolve path.
#[allow(clippy::large_enum_variant)]
enum JobState {
    /// Queued; a worker has not claimed it (cancellable).
    Pending,
    /// A worker is executing it (no longer cancellable).
    Running,
    /// Resolved — outcome, query error, expiry or cancellation.
    Done(Result<Outcome, ServiceError>),
}

struct JobSlot {
    state: Mutex<JobState>,
    done: Condvar,
    /// The admission tick stamp (µs since engine epoch), stored by the
    /// submitting thread right after the queue push returns — the only
    /// lifecycle stamp the worker cannot take itself (under
    /// [`AdmissionPolicy::Block`] the submitter parks *inside* the push,
    /// so admission can be far later than submission). `u64::MAX` means
    /// "not stamped yet": a job resolved faster than the submitter's
    /// store reports admit = submit in its span.
    admitted_us: AtomicU64,
}

impl JobSlot {
    fn new() -> JobSlot {
        JobSlot {
            state: Mutex::new(JobState::Pending),
            done: Condvar::new(),
            admitted_us: AtomicU64::new(u64::MAX),
        }
    }

    fn resolve(&self, result: Result<Outcome, ServiceError>) {
        *self.state.lock().expect("job slot lock") = JobState::Done(result);
        self.done.notify_all();
    }
}

/// One queued unit of work: `(instance, query)` plus its routing and
/// lifecycle envelope.
struct Job {
    instance: Arc<PlanarInstance>,
    query: Query,
    key: InstanceKey,
    shard: usize,
    deadline: Option<Instant>,
    submitted_at: Instant,
    slot: Arc<JobSlot>,
}

/// The caller's handle on one submitted job. Obtain the outcome with
/// [`Ticket::wait`] (blocking) or poll with [`Ticket::try_result`];
/// cancel a still-queued job with [`Ticket::cancel`]. Dropping a ticket
/// abandons the result but never the job — a submitted job always runs
/// (or expires/cancels) and is always counted.
pub struct Ticket {
    slot: Arc<JobSlot>,
    shared: Arc<EngineShared>,
}

impl Ticket {
    /// Blocks until the job resolves and returns its result.
    pub fn wait(self) -> Result<Outcome, ServiceError> {
        let mut state = self.slot.state.lock().expect("job slot lock");
        loop {
            if let JobState::Done(result) = &*state {
                return result.clone();
            }
            state = self.slot.done.wait(state).expect("job slot lock");
        }
    }

    /// Non-blocking poll: `None` while the job is queued or running.
    pub fn try_result(&self) -> Option<Result<Outcome, ServiceError>> {
        match &*self.slot.state.lock().expect("job slot lock") {
            JobState::Done(result) => Some(result.clone()),
            _ => None,
        }
    }

    /// Cancels the job if it is still queued. `true` when this call won
    /// the race (the job will never execute and [`Ticket::wait`] returns
    /// [`ServiceError::Cancelled`]); `false` when a worker already
    /// claimed or resolved it — cancellation never tears down running
    /// work.
    pub fn cancel(&self) -> bool {
        let mut state = self.slot.state.lock().expect("job slot lock");
        if matches!(*state, JobState::Pending) {
            *state = JobState::Done(Err(ServiceError::Cancelled));
            self.shared
                .metrics
                .cancelled
                .fetch_add(1, Ordering::Relaxed);
            self.slot.done.notify_all();
            true
        } else {
            false
        }
    }
}

impl std::fmt::Debug for Ticket {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let state = match &*self.slot.state.lock().expect("job slot lock") {
            JobState::Pending => "pending",
            JobState::Running => "running",
            JobState::Done(Ok(_)) => "done",
            JobState::Done(Err(_)) => "failed",
        };
        f.debug_struct("Ticket").field("state", &state).finish()
    }
}

/// Configures and builds a [`ServiceEngine`]. Obtained from
/// [`ServiceEngine::builder`]; every knob has a serving-sane default.
#[derive(Clone)]
pub struct EngineBuilder {
    shards: usize,
    workers: usize,
    queue_capacity: usize,
    pool_capacity: usize,
    pool_byte_budget: Option<u64>,
    policy: AdmissionPolicy,
    leaf_threshold: Option<usize>,
    start_paused: bool,
    sink: Option<Arc<dyn SpanSink>>,
}

impl Default for EngineBuilder {
    fn default() -> EngineBuilder {
        let workers = std::thread::available_parallelism().map_or(2, std::num::NonZeroUsize::get);
        EngineBuilder {
            shards: 2,
            workers: workers.min(4),
            queue_capacity: 64,
            pool_capacity: 16,
            pool_byte_budget: None,
            policy: AdmissionPolicy::default(),
            leaf_threshold: None,
            start_paused: false,
            sink: None,
        }
    }
}

impl std::fmt::Debug for EngineBuilder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EngineBuilder")
            .field("shards", &self.shards)
            .field("workers", &self.workers)
            .field("queue_capacity", &self.queue_capacity)
            .field("pool_capacity", &self.pool_capacity)
            .field("pool_byte_budget", &self.pool_byte_budget)
            .field("policy", &self.policy)
            .field("leaf_threshold", &self.leaf_threshold)
            .field("start_paused", &self.start_paused)
            .field("span_sink", &self.sink.is_some())
            .finish()
    }
}

impl EngineBuilder {
    /// Number of independent pool shards (clamped to ≥ 1). Instances are
    /// hash-partitioned by topology fingerprint, so all specs of one
    /// network share a shard — and its respec-donor solvers.
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = shards.max(1);
        self
    }

    /// Number of worker threads draining the queue (clamped to ≥ 1).
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Capacity of the job queue — the admission-control bound (clamped
    /// to ≥ 1).
    pub fn queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity.max(1);
        self
    }

    /// Per-shard solver-pool capacity (clamped to ≥ 1 by the pool).
    pub fn pool_capacity(mut self, capacity: usize) -> Self {
        self.pool_capacity = capacity;
        self
    }

    /// Per-shard solver-pool **byte budget**: each shard's pool measures
    /// its resident solvers ([`duality_core::HeapSize`]) and evicts
    /// coldest-first until resident bytes fit the budget, in addition to
    /// the entry-count cap. `None` (the default) disables byte-based
    /// eviction.
    pub fn pool_byte_budget(mut self, budget: Option<u64>) -> Self {
        self.pool_byte_budget = budget;
        self
    }

    /// What a full queue does to a new submission (default:
    /// [`AdmissionPolicy::Block`]).
    pub fn admission(mut self, policy: AdmissionPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// BDD leaf-threshold override applied to every solver the shards
    /// build (default: the paper's `Θ(D)` choice).
    pub fn leaf_threshold(mut self, threshold: Option<usize>) -> Self {
        self.leaf_threshold = threshold;
        self
    }

    /// Starts the engine with dispatch paused: submissions are admitted
    /// (and admission control applies) but no worker picks a job up until
    /// [`ServiceEngine::resume`]. Staged startup — and the lever that
    /// makes queue-depth and rejection tests deterministic.
    pub fn start_paused(mut self) -> Self {
        self.start_paused = true;
        self
    }

    /// Attaches a span sink: every job the engine resolves — completed,
    /// failed, expired, cancelled, or rejected at admission — emits
    /// exactly one [`SpanRecord`] into `sink` (see [`crate::span`] for
    /// the lifecycle-stamp semantics). No sink is attached by default;
    /// without one, span assembly is skipped entirely.
    pub fn span_sink(mut self, sink: Arc<dyn SpanSink>) -> Self {
        self.sink = Some(sink);
        self
    }

    /// Builds the engine and spawns its workers.
    ///
    /// # Errors
    ///
    /// [`DualityError::BadLeafThreshold`] when the leaf-threshold
    /// override is below the decomposition minimum.
    pub fn build(self) -> Result<ServiceEngine, DualityError> {
        let shards: Result<Vec<SolverPool>, DualityError> = (0..self.shards)
            .map(|_| {
                SolverPool::with_limits(
                    self.pool_capacity,
                    self.pool_byte_budget,
                    self.leaf_threshold,
                )
            })
            .collect();
        let shared = Arc::new(EngineShared {
            shards: shards?,
            queue: Scheduler::new(self.workers, self.queue_capacity, !self.start_paused),
            metrics: MetricsRegistry::new(self.shards, self.pool_capacity),
            policy: AtomicU8::new(self.policy.encode()),
            epoch: Instant::now(),
            sink: self.sink,
        });
        let workers: Vec<JoinHandle<()>> = (0..self.workers)
            .map(|i| spawn_worker(&shared, i))
            .collect();
        let target = workers.len();
        Ok(ServiceEngine {
            shared,
            workers: Mutex::new(workers),
            target_workers: AtomicUsize::new(target),
            spawned: AtomicUsize::new(target),
        })
    }
}

/// Spawns one worker thread, counting it into the live-worker gauge at
/// the spawn site (so a freshly scaled engine observes the new worker
/// immediately, not only once its thread gets scheduled).
fn spawn_worker(shared: &Arc<EngineShared>, id: usize) -> JoinHandle<()> {
    shared.metrics.live_workers.fetch_add(1, Ordering::Relaxed);
    // Register the worker's stealing deque before its thread exists, so
    // submissions can round-robin onto it immediately.
    shared.queue.register_worker(id);
    let shared = Arc::clone(shared);
    std::thread::Builder::new()
        .name(format!("duality-worker-{id}"))
        .spawn(move || worker_loop(&shared, id))
        .expect("spawn worker thread")
}

/// Everything the workers and tickets share with the engine handle.
struct EngineShared {
    shards: Vec<SolverPool>,
    /// The work-stealing scheduler (still named `queue`: it *is* the
    /// bounded admission queue, just spread over per-worker deques).
    queue: Scheduler<Job>,
    metrics: MetricsRegistry,
    /// Runtime-switchable admission policy ([`AdmissionPolicy::encode`]),
    /// read per submission — the control plane flips it live.
    policy: AtomicU8,
    /// The zero point of every span tick stamp (engine creation).
    epoch: Instant,
    /// Where resolved jobs emit their lifecycle span, if anywhere.
    sink: Option<Arc<dyn SpanSink>>,
}

impl EngineShared {
    /// Microseconds since the engine epoch (saturating both ways).
    fn stamp(&self, t: Instant) -> u64 {
        u64::try_from(t.saturating_duration_since(self.epoch).as_micros()).unwrap_or(u64::MAX)
    }

    /// Assembles and emits the terminal span of `job` — one per job, at
    /// its terminal transition, outside every engine lock. No-op (and no
    /// span assembly) without an attached sink.
    fn emit_job_span(
        &self,
        job: &Job,
        worker: usize,
        state: SpanState,
        source: DequeueSource,
        dequeued_at: Instant,
        started_us: Option<u64>,
    ) {
        let Some(sink) = &self.sink else { return };
        let submitted_us = self.stamp(job.submitted_at);
        let admitted = job.slot.admitted_us.load(Ordering::Relaxed);
        sink.record(SpanRecord {
            tenant: job.key.topo_fingerprint(),
            spec: job.key.spec_hash(),
            query: query_kind(&job.query),
            shard: job.shard,
            worker: Some(worker),
            state,
            submitted_us,
            admitted_us: Some(if admitted == u64::MAX {
                submitted_us
            } else {
                admitted
            }),
            dequeued_us: Some(self.stamp(dequeued_at)),
            started_us,
            finished_us: self.stamp(Instant::now()),
            source: Some(source),
        });
    }
}

/// The sharded serving engine — see the [crate docs](crate) for the full
/// story and the module docs of [`crate::metrics`] for what it measures.
///
/// All entry points are `&self`; the engine is `Send + Sync` and is
/// normally shared behind an `Arc` (or borrowed across a
/// `std::thread::scope`) by every request-handler thread.
pub struct ServiceEngine {
    shared: Arc<EngineShared>,
    /// Live worker thread handles — behind a mutex so
    /// [`ServiceEngine::scale_workers`] can grow the fleet from `&self`.
    /// Retired handles are reaped opportunistically on scale and joined
    /// for good by the shutdown drain.
    workers: Mutex<Vec<JoinHandle<()>>>,
    /// The worker count the engine is *steering toward* — updated
    /// synchronously by [`ServiceEngine::scale_workers`]; the live count
    /// ([`MetricsSnapshot::workers`]) converges to it as retired threads
    /// exit.
    target_workers: AtomicUsize,
    /// Total workers ever spawned — the thread-name counter.
    spawned: AtomicUsize,
}

impl ServiceEngine {
    /// Starts configuring an engine.
    pub fn builder() -> EngineBuilder {
        EngineBuilder::default()
    }

    /// Number of pool shards.
    pub fn shard_count(&self) -> usize {
        self.shared.shards.len()
    }

    /// The current worker *target*: the count the engine was built with,
    /// as last adjusted by [`ServiceEngine::scale_workers`]. The live
    /// thread count ([`MetricsSnapshot::workers`]) may briefly lag this
    /// after a scale-down.
    pub fn worker_count(&self) -> usize {
        self.target_workers.load(Ordering::Relaxed)
    }

    /// Resizes the worker fleet to `target` threads (clamped to ≥ 1) and
    /// returns the applied target. Scale-up spawns immediately; scale-down
    /// retires the excess cooperatively — each surplus worker exits when
    /// it next visits the queue (ahead of queued work, even on a paused
    /// engine), never mid-job. Concurrent callers serialize; the last
    /// target wins.
    pub fn scale_workers(&self, target: usize) -> usize {
        let target = target.max(1);
        let mut handles = self.workers.lock().expect("worker registry lock");
        // Reap threads that already retired so the handle vec tracks the
        // live fleet instead of growing with every scale cycle.
        handles.retain(|h| !h.is_finished());
        let current = self.target_workers.load(Ordering::Relaxed);
        if target > current {
            for _ in current..target {
                let id = self.spawned.fetch_add(1, Ordering::Relaxed);
                handles.push(spawn_worker(&self.shared, id));
            }
        } else if target < current {
            self.shared.queue.retire(current - target);
        }
        self.target_workers.store(target, Ordering::Relaxed);
        target
    }

    /// The admission policy currently in force.
    pub fn admission(&self) -> AdmissionPolicy {
        AdmissionPolicy::decode(self.shared.policy.load(Ordering::Relaxed))
    }

    /// Switches the admission policy live. Submissions already parked by
    /// [`AdmissionPolicy::Block`] stay parked; the new policy governs
    /// submissions from here on.
    pub fn set_admission(&self, policy: AdmissionPolicy) {
        self.shared.policy.store(policy.encode(), Ordering::Relaxed);
    }

    /// The shard a key routes to: `topo_fingerprint mod shards`. Stable
    /// for the lifetime of the engine, and spec-blind on purpose — every
    /// respec of one network lands on the shard that holds its
    /// respec-donor solver.
    pub fn shard_of(&self, key: &InstanceKey) -> usize {
        (key.topo_fingerprint() % self.shared.shards.len() as u64) as usize
    }

    /// Submits one job; the returned [`Ticket`] resolves asynchronously.
    ///
    /// # Errors
    ///
    /// [`SubmitError::QueueFull`] under [`AdmissionPolicy::Reject`] on a
    /// full queue; [`SubmitError::ShuttingDown`] after shutdown began.
    pub fn submit(
        &self,
        instance: &Arc<PlanarInstance>,
        query: Query,
    ) -> Result<Ticket, SubmitError> {
        self.submit_job(instance, query, None)
    }

    /// Submits one job with a deadline: if no worker has *started* the
    /// job by `deadline`, it resolves to [`ServiceError::Expired`]
    /// without executing. A job already running at its deadline runs to
    /// completion — started work is never torn down.
    ///
    /// # Errors
    ///
    /// As [`ServiceEngine::submit`].
    pub fn submit_with_deadline(
        &self,
        instance: &Arc<PlanarInstance>,
        query: Query,
        deadline: Instant,
    ) -> Result<Ticket, SubmitError> {
        self.submit_job(instance, query, Some(deadline))
    }

    fn submit_job(
        &self,
        instance: &Arc<PlanarInstance>,
        query: Query,
        deadline: Option<Instant>,
    ) -> Result<Ticket, SubmitError> {
        let key = InstanceKey::of(instance);
        let slot = Arc::new(JobSlot::new());
        let shard = self.shard_of(&key);
        let submitted_at = Instant::now();
        let job = Job {
            instance: Arc::clone(instance),
            query,
            key,
            shard,
            deadline,
            submitted_at,
            slot: Arc::clone(&slot),
        };
        let block = matches!(self.admission(), AdmissionPolicy::Block);
        // Count the submission *before* the push: the moment the job is in
        // the queue a worker can complete it, and `completed > submitted`
        // must be unobservable even in a snapshot taken right then. A
        // refused push rolls the counter back before returning.
        self.shared
            .metrics
            .submitted
            .fetch_add(1, Ordering::Relaxed);
        match self.shared.queue.push(job, block) {
            Ok(()) => {
                // The admission stamp (post-push: a blocked submitter was
                // parked inside the push). The worker reads it when the
                // job resolves; see `JobSlot::admitted_us` for the race.
                slot.admitted_us
                    .store(self.shared.stamp(Instant::now()), Ordering::Relaxed);
                Ok(Ticket {
                    slot,
                    shared: Arc::clone(&self.shared),
                })
            }
            Err(PushError::Full) => {
                self.shared
                    .metrics
                    .submitted
                    .fetch_sub(1, Ordering::Relaxed);
                self.shared.metrics.rejected.fetch_add(1, Ordering::Relaxed);
                if let Some(sink) = &self.shared.sink {
                    // Rejected jobs never reach a worker, so the
                    // submitter emits their span.
                    sink.record(SpanRecord {
                        tenant: key.topo_fingerprint(),
                        spec: key.spec_hash(),
                        query: query_kind(&query),
                        shard,
                        worker: None,
                        state: SpanState::Rejected,
                        submitted_us: self.shared.stamp(submitted_at),
                        admitted_us: None,
                        dequeued_us: None,
                        started_us: None,
                        finished_us: self.shared.stamp(Instant::now()),
                        source: None,
                    });
                }
                Err(SubmitError::QueueFull)
            }
            Err(PushError::Closed) => {
                self.shared
                    .metrics
                    .submitted
                    .fetch_sub(1, Ordering::Relaxed);
                Err(SubmitError::ShuttingDown)
            }
        }
    }

    /// Submit-and-wait convenience: one query through the whole engine
    /// (queue, worker, shard pool), blocking for the outcome.
    ///
    /// # Errors
    ///
    /// [`ServiceError::NotAdmitted`] when admission refused the job;
    /// otherwise whatever the job resolved to.
    pub fn run(
        &self,
        instance: &Arc<PlanarInstance>,
        query: Query,
    ) -> Result<Outcome, ServiceError> {
        self.submit(instance, query)
            .map_err(ServiceError::NotAdmitted)?
            .wait()
    }

    /// Submits `queries` against one instance through the scheduler's
    /// batched path — admission slots are reserved in chunks and at most
    /// one worker wakeup is issued per admitted job, instead of a full
    /// push/wake cycle per query — then waits for all of them, returning
    /// results in input order.
    ///
    /// Admission follows the engine policy per batch: under
    /// [`AdmissionPolicy::Block`] the call parks until every job is
    /// admitted (or the engine shuts down); under
    /// [`AdmissionPolicy::Reject`] the jobs beyond capacity resolve to
    /// [`ServiceError::NotAdmitted`] with [`SubmitError::QueueFull`]
    /// (counted as rejected, one [`SpanState::Rejected`] span each)
    /// while the admitted prefix executes normally.
    pub fn run_batch(
        &self,
        instance: &Arc<PlanarInstance>,
        queries: &[Query],
    ) -> Vec<Result<Outcome, ServiceError>> {
        let key = InstanceKey::of(instance);
        let shard = self.shard_of(&key);
        let submitted_at = Instant::now();
        let mut slots: Vec<Arc<JobSlot>> = Vec::with_capacity(queries.len());
        let jobs: Vec<Job> = queries
            .iter()
            .map(|&query| {
                let slot = Arc::new(JobSlot::new());
                slots.push(Arc::clone(&slot));
                Job {
                    instance: Arc::clone(instance),
                    query,
                    key,
                    shard,
                    deadline: None,
                    submitted_at,
                    slot,
                }
            })
            .collect();
        let block = matches!(self.admission(), AdmissionPolicy::Block);
        // Same discipline as `submit_job`: count before the push, roll
        // back whatever was refused.
        self.shared
            .metrics
            .submitted
            .fetch_add(jobs.len() as u64, Ordering::Relaxed);
        let refused = match self.shared.queue.push_batch(jobs, block) {
            Ok(()) => Vec::new(),
            Err((rest, why)) => {
                self.shared
                    .metrics
                    .submitted
                    .fetch_sub(rest.len() as u64, Ordering::Relaxed);
                let err = match why {
                    PushError::Full => {
                        self.shared
                            .metrics
                            .rejected
                            .fetch_add(rest.len() as u64, Ordering::Relaxed);
                        SubmitError::QueueFull
                    }
                    PushError::Closed => SubmitError::ShuttingDown,
                };
                for job in &rest {
                    if err == SubmitError::QueueFull {
                        if let Some(sink) = &self.shared.sink {
                            // Rejected jobs never reach a worker; the
                            // submitter emits their span.
                            sink.record(SpanRecord {
                                tenant: job.key.topo_fingerprint(),
                                spec: job.key.spec_hash(),
                                query: query_kind(&job.query),
                                shard: job.shard,
                                worker: None,
                                state: SpanState::Rejected,
                                submitted_us: self.shared.stamp(submitted_at),
                                admitted_us: None,
                                dequeued_us: None,
                                started_us: None,
                                finished_us: self.shared.stamp(Instant::now()),
                                source: None,
                            });
                        }
                    }
                    job.slot.resolve(Err(ServiceError::NotAdmitted(err)));
                }
                rest
            }
        };
        // The admitted prefix gets its admission stamp (post-push: a
        // blocked batch parks inside the push, like a single submit).
        let admitted = queries.len() - refused.len();
        let admit_stamp = self.shared.stamp(Instant::now());
        for slot in slots.iter().take(admitted) {
            slot.admitted_us.store(admit_stamp, Ordering::Relaxed);
        }
        drop(refused);
        slots
            .into_iter()
            .map(|slot| {
                Ticket {
                    slot,
                    shared: Arc::clone(&self.shared),
                }
                .wait()
            })
            .collect()
    }

    /// The cached solver for `instance` from its home shard (admitting it
    /// on a miss) — the audit hatch: verification code can inspect the
    /// exact solver the engine's workers use, without going through the
    /// queue.
    pub fn solver(&self, instance: &Arc<PlanarInstance>) -> PlanarSolver {
        let shard = self.shard_of(&InstanceKey::of(instance));
        self.shared.shards[shard].solver(instance)
    }

    /// Per-shard pool counters, indexed by shard.
    pub fn shard_stats(&self) -> Vec<PoolStats> {
        self.shared.shards.iter().map(SolverPool::stats).collect()
    }

    /// Per-shard pool residency, indexed by shard: which instance keys
    /// each shard currently caches and how cold they are (see
    /// [`ResidentEntry`]). The observe half of the control loop.
    pub fn shard_residency(&self) -> Vec<Vec<ResidentEntry>> {
        self.shared
            .shards
            .iter()
            .map(SolverPool::residency)
            .collect()
    }

    /// Whether `key`'s solver is cached on its home shard. Never touches
    /// LRU order — observation must not keep a cold tenant warm.
    pub fn resident(&self, key: &InstanceKey) -> bool {
        self.shared.shards[self.shard_of(key)].contains(key)
    }

    /// Evicts `key`'s solver from its home shard. `true` when an entry
    /// was actually dropped (counted in the shard's eviction stats).
    pub fn evict(&self, key: &InstanceKey) -> bool {
        self.shared.shards[self.shard_of(key)].evict(key)
    }

    /// The per-shard pool counters merged into one fleet-wide line.
    pub fn pool_stats(&self) -> PoolStats {
        PoolStats::merged(&self.shard_stats())
    }

    /// Opens the start gate of a [paused](EngineBuilder::start_paused)
    /// engine. No-op when already running.
    pub fn resume(&self) {
        self.shared.queue.resume();
    }

    /// A point-in-time snapshot of every live metric.
    pub fn metrics(&self) -> MetricsSnapshot {
        let m = &self.shared.metrics;
        MetricsSnapshot {
            submitted: m.submitted.load(Ordering::Relaxed),
            completed: m.completed.load(Ordering::Relaxed),
            failed: m.failed.load(Ordering::Relaxed),
            rejected: m.rejected.load(Ordering::Relaxed),
            expired: m.expired.load(Ordering::Relaxed),
            cancelled: m.cancelled.load(Ordering::Relaxed),
            queue_depth: self.shared.queue.depth(),
            queue_high_water: self.shared.queue.high_water(),
            scheduler: self.shared.queue.stats(),
            running: m.running.load(Ordering::Relaxed),
            workers: usize::try_from(m.live_workers.load(Ordering::Relaxed)).unwrap_or(usize::MAX),
            latency: m.latency_snapshot(),
            shards: self
                .shared
                .shards
                .iter()
                .enumerate()
                .map(|(i, pool)| {
                    let (substrate_rounds, query_rounds) = m.shard_rounds(i);
                    ShardMetrics {
                        shard: i,
                        pool: pool.stats(),
                        substrate_rounds,
                        query_rounds,
                        substrate_phase_us: m.shard_phase_us(i),
                    }
                })
                .collect(),
        }
    }

    /// Graceful shutdown: stops admission, **drains** — every job already
    /// queued still executes (or expires / observes its cancellation) —
    /// joins the workers, and returns the final metrics snapshot.
    /// Dropping the engine performs the same drain implicitly; `shutdown`
    /// exists so callers can sequence after the drain and keep the final
    /// numbers.
    pub fn shutdown(self) -> MetricsSnapshot {
        self.drain();
        self.metrics()
    }

    fn drain(&self) {
        self.shared.queue.close();
        let handles: Vec<JoinHandle<()>> = self
            .workers
            .lock()
            .expect("worker registry lock")
            .drain(..)
            .collect();
        for handle in handles {
            let _ = handle.join();
        }
    }
}

impl Drop for ServiceEngine {
    fn drop(&mut self) {
        self.drain();
    }
}

impl std::fmt::Debug for ServiceEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServiceEngine")
            .field("shards", &self.shared.shards.len())
            .field("workers", &self.worker_count())
            .field("policy", &self.admission())
            .field("queue_depth", &self.shared.queue.depth())
            .finish()
    }
}

/// What the claim block decided about a popped job (the span is emitted
/// after the slot lock is released, never under it).
enum Claim {
    Run,
    Expired,
    Cancelled,
}

/// One worker thread: pop → claim → (expire | execute) → resolve, until
/// the queue closes and drains (or a retirement signal tells this worker
/// specifically to exit — scale-down). Either way the live-worker gauge
/// is decremented on the way out.
///
/// Span emission piggybacks on the drain discipline: every admitted job
/// — including one cancelled while queued — is eventually popped by
/// exactly one worker, so emitting each job's span here (and only here)
/// yields exactly one span per admitted job with no cancel/expire race.
fn worker_loop(shared: &EngineShared, worker: usize) {
    loop {
        let (job, source) = match shared.queue.pop(worker) {
            Some(Popped::Job(job, source)) => (job, source),
            Some(Popped::Retire) | None => break,
        };
        let dequeued_at = Instant::now();
        let claim = {
            let mut state = job.slot.state.lock().expect("job slot lock");
            match *state {
                JobState::Pending => {
                    if job.deadline.is_some_and(|d| Instant::now() >= d) {
                        *state = JobState::Done(Err(ServiceError::Expired));
                        shared.metrics.expired.fetch_add(1, Ordering::Relaxed);
                        job.slot.done.notify_all();
                        Claim::Expired
                    } else {
                        *state = JobState::Running;
                        Claim::Run
                    }
                }
                // Cancelled while queued: the waiter was already notified.
                _ => Claim::Cancelled,
            }
        };
        match claim {
            Claim::Expired => {
                shared.emit_job_span(&job, worker, SpanState::Expired, source, dequeued_at, None);
                continue;
            }
            Claim::Cancelled => {
                shared.emit_job_span(
                    &job,
                    worker,
                    SpanState::Cancelled,
                    source,
                    dequeued_at,
                    None,
                );
                continue;
            }
            Claim::Run => {}
        }
        shared.metrics.running.fetch_add(1, Ordering::Relaxed);
        let started_at = Instant::now();
        // Contain panics: an unwinding worker must never leave the slot in
        // `Running` (which would hang the ticket's waiter forever) nor die
        // silently (which would shrink the fleet until shutdown hangs).
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            shared.shards[job.shard].run(&job.instance, job.query)
        }));
        let elapsed_us = u64::try_from(job.submitted_at.elapsed().as_micros()).unwrap_or(u64::MAX);
        shared.metrics.latency.record(elapsed_us);
        let span_state = match &result {
            Ok(Ok(_)) => SpanState::Completed,
            _ => SpanState::Failed,
        };
        let result = match result {
            Ok(Ok(outcome)) => {
                let fresh = shared.metrics.bill(job.shard, job.key, outcome.rounds());
                shared.metrics.completed.fetch_add(1, Ordering::Relaxed);
                // This job was the first to bill one or more substrate
                // build phases: emit their profiling spans (outside
                // every lock — the bill already committed the charge).
                if !fresh.is_empty() {
                    if let Some(sink) = &shared.sink {
                        let finished_us = shared.stamp(Instant::now());
                        for (phase, us) in fresh {
                            sink.record_phase(crate::span::PhaseSpan {
                                tenant: job.key.topo_fingerprint(),
                                spec: job.key.spec_hash(),
                                phase,
                                shard: job.shard,
                                worker,
                                us,
                                finished_us,
                            });
                        }
                    }
                }
                Ok(outcome)
            }
            Ok(Err(e)) => {
                shared.metrics.failed.fetch_add(1, Ordering::Relaxed);
                Err(ServiceError::Query(e))
            }
            Err(_) => {
                shared.metrics.failed.fetch_add(1, Ordering::Relaxed);
                Err(ServiceError::ExecutionPanicked)
            }
        };
        shared.metrics.running.fetch_sub(1, Ordering::Relaxed);
        // Emit the span before resolving the slot so that once a caller
        // observes the job's outcome, its span is already in the sink.
        shared.emit_job_span(
            &job,
            worker,
            span_state,
            source,
            dequeued_at,
            Some(shared.stamp(started_at)),
        );
        job.slot.resolve(result);
    }
    shared.metrics.live_workers.fetch_sub(1, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;
    use duality_planar::gen;

    fn instance(seed: u64) -> Arc<PlanarInstance> {
        let g = gen::diag_grid(4, 4, seed).unwrap();
        let caps = gen::random_undirected_capacities(g.num_edges(), 1, 9, seed);
        PlanarInstance::new(g, Some(caps), None).unwrap()
    }

    #[test]
    fn engine_is_send_sync_and_clamps_config() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ServiceEngine>();
        assert_send_sync::<Ticket>();

        let engine = ServiceEngine::builder()
            .shards(0)
            .workers(0)
            .queue_capacity(0)
            .build()
            .unwrap();
        assert_eq!(engine.shard_count(), 1);
        assert_eq!(engine.worker_count(), 1);
        assert!(matches!(
            ServiceEngine::builder().leaf_threshold(Some(1)).build(),
            Err(DualityError::BadLeafThreshold { got: 1 })
        ));
    }

    #[test]
    fn submit_wait_roundtrip_matches_direct_run() {
        let engine = ServiceEngine::builder()
            .shards(2)
            .workers(2)
            .build()
            .unwrap();
        let i = instance(3);
        let t = i.n() - 1;
        let ticket = engine.submit(&i, Query::MaxFlow { s: 0, t }).unwrap();
        let got = ticket.wait().unwrap();
        let want = PlanarSolver::from_instance(Arc::clone(&i))
            .run(Query::MaxFlow { s: 0, t })
            .unwrap();
        assert_eq!(
            got.as_max_flow().unwrap().value,
            want.as_max_flow().unwrap().value
        );
        assert_eq!(
            got.as_max_flow().unwrap().flow,
            want.as_max_flow().unwrap().flow
        );
        let m = engine.shutdown();
        assert_eq!((m.submitted, m.completed), (1, 1));
        assert_eq!(m.latency.count, 1);
        assert!(m.query_rounds() > 0 && m.substrate_rounds() > 0);
    }

    #[test]
    fn query_errors_surface_as_service_errors() {
        let engine = ServiceEngine::builder().workers(1).build().unwrap();
        let i = instance(4);
        let err = engine.run(&i, Query::MaxFlow { s: 0, t: 0 }).unwrap_err();
        assert_eq!(
            err,
            ServiceError::Query(DualityError::BadEndpoints { s: 0, t: 0, n: 16 })
        );
        let m = engine.shutdown();
        assert_eq!((m.completed, m.failed), (0, 1));
        assert_eq!(m.query_rounds(), 0, "failed queries bill nothing");
    }

    #[test]
    fn reject_policy_refuses_beyond_capacity() {
        // Paused: nothing drains, so the third submission must bounce.
        let engine = ServiceEngine::builder()
            .workers(1)
            .queue_capacity(2)
            .admission(AdmissionPolicy::Reject)
            .start_paused()
            .build()
            .unwrap();
        let i = instance(5);
        let a = engine.submit(&i, Query::Girth).unwrap();
        let b = engine.submit(&i, Query::Girth).unwrap();
        assert_eq!(
            engine.submit(&i, Query::Girth).unwrap_err(),
            SubmitError::QueueFull
        );
        engine.resume();
        assert!(a.wait().is_ok() && b.wait().is_ok());
        let m = engine.shutdown();
        assert_eq!((m.submitted, m.completed, m.rejected), (2, 2, 1));
        assert_eq!(m.queue_high_water, 2);
    }

    #[test]
    fn deadlines_expire_unstarted_jobs() {
        let engine = ServiceEngine::builder()
            .workers(1)
            .start_paused()
            .build()
            .unwrap();
        let i = instance(6);
        // Already past due when the worker first sees it.
        let doomed = engine
            .submit_with_deadline(&i, Query::Girth, Instant::now())
            .unwrap();
        // Generous deadline: executes normally.
        let fine = engine
            .submit_with_deadline(
                &i,
                Query::Girth,
                Instant::now() + std::time::Duration::from_secs(600),
            )
            .unwrap();
        engine.resume();
        assert_eq!(doomed.wait().unwrap_err(), ServiceError::Expired);
        assert!(fine.wait().is_ok());
        let m = engine.shutdown();
        assert_eq!((m.expired, m.completed), (1, 1));
    }

    #[test]
    fn cancellation_wins_only_while_queued() {
        let engine = ServiceEngine::builder()
            .workers(1)
            .start_paused()
            .build()
            .unwrap();
        let i = instance(7);
        let ticket = engine.submit(&i, Query::Girth).unwrap();
        assert!(ticket.try_result().is_none(), "still queued");
        assert!(ticket.cancel(), "cancellable while queued");
        assert!(!ticket.cancel(), "second cancel loses");
        assert_eq!(
            ticket.try_result().unwrap().unwrap_err(),
            ServiceError::Cancelled
        );
        let survivor = engine.submit(&i, Query::Girth).unwrap();
        engine.resume();
        // Wait for resolution without consuming the ticket, then check
        // that a resolved ticket can no longer be cancelled.
        while survivor.try_result().is_none() {
            std::thread::yield_now();
        }
        assert!(!survivor.cancel(), "resolved tickets cannot be cancelled");
        assert!(survivor.wait().is_ok());
        let m = engine.shutdown();
        assert_eq!((m.cancelled, m.completed), (1, 1));
        assert_eq!(m.in_flight(), 0);
    }

    #[test]
    fn shutdown_drains_queued_jobs() {
        let engine = ServiceEngine::builder()
            .shards(2)
            .workers(2)
            .start_paused()
            .build()
            .unwrap();
        let (a, b) = (instance(8), instance(9));
        let tickets: Vec<Ticket> = (0..6)
            .map(|j| {
                let i = if j % 2 == 0 { &a } else { &b };
                engine.submit(i, Query::Girth).unwrap()
            })
            .collect();
        // Shutdown on a *paused* engine: close releases the gate and the
        // backlog drains before the workers exit.
        let m = engine.shutdown();
        assert_eq!((m.submitted, m.completed), (6, 6));
        assert_eq!(m.queue_depth, 0, "nothing left behind");
        assert_eq!(m.queue_high_water, 6);
        for t in tickets {
            assert!(t.wait().is_ok(), "every ticket resolved by the drain");
        }
    }

    #[test]
    fn submissions_after_shutdown_began_are_refused() {
        let engine = ServiceEngine::builder().workers(1).build().unwrap();
        let i = instance(10);
        // Simulate a racing submitter that arrives once shutdown closed
        // admission (the engine handle is still alive here, so this is
        // exactly the post-close, pre-join window).
        engine.shared.queue.close();
        assert_eq!(
            engine.submit(&i, Query::Girth).unwrap_err(),
            SubmitError::ShuttingDown
        );
        assert_eq!(
            engine.run(&i, Query::Girth).unwrap_err(),
            ServiceError::NotAdmitted(SubmitError::ShuttingDown)
        );
        let m = engine.shutdown();
        assert_eq!(m.submitted, 0);
    }

    /// Polls the live-worker gauge until it reaches `want` (bounded wait:
    /// retired threads exit as soon as they next visit the queue).
    fn await_live_workers(engine: &ServiceEngine, want: usize) {
        for _ in 0..2_000 {
            if engine.metrics().workers == want {
                return;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        panic!(
            "live workers never reached {want} (at {})",
            engine.metrics().workers
        );
    }

    #[test]
    fn scale_workers_up_and_down_converges_live_count() {
        let engine = ServiceEngine::builder()
            .shards(2)
            .workers(1)
            .build()
            .unwrap();
        assert_eq!(engine.worker_count(), 1);
        assert_eq!(engine.metrics().workers, 1);

        assert_eq!(engine.scale_workers(4), 4);
        assert_eq!(engine.worker_count(), 4, "target updates synchronously");
        assert_eq!(engine.metrics().workers, 4, "spawn counts immediately");

        // The grown fleet actually serves.
        let i = instance(20);
        for _ in 0..8 {
            let _ = engine.run(&i, Query::Girth).unwrap();
        }

        assert_eq!(engine.scale_workers(2), 2);
        await_live_workers(&engine, 2);
        assert_eq!(engine.scale_workers(0), 1, "clamped: never zero workers");
        await_live_workers(&engine, 1);

        // The surviving worker still serves, and the ledger stays exact.
        let _ = engine.run(&i, Query::Girth).unwrap();
        let m = engine.shutdown();
        assert_eq!((m.submitted, m.completed), (9, 9));
        assert_eq!(m.running, 0, "nothing executing after the drain");
    }

    #[test]
    fn scale_down_of_a_paused_engine_does_not_deadlock() {
        // Workers of a paused engine are parked behind the start gate;
        // retirement must reach them anyway.
        let engine = ServiceEngine::builder()
            .workers(3)
            .start_paused()
            .build()
            .unwrap();
        let i = instance(21);
        let ticket = engine.submit(&i, Query::Girth).unwrap();
        engine.scale_workers(1);
        await_live_workers(&engine, 1);
        assert_eq!(engine.metrics().queue_depth, 1, "the job outlived retire");
        engine.resume();
        assert!(ticket.wait().is_ok(), "the survivor drained the backlog");
    }

    #[test]
    fn admission_policy_switches_live() {
        let engine = ServiceEngine::builder()
            .workers(1)
            .queue_capacity(1)
            .admission(AdmissionPolicy::Block)
            .start_paused()
            .build()
            .unwrap();
        assert_eq!(engine.admission(), AdmissionPolicy::Block);
        engine.set_admission(AdmissionPolicy::Reject);
        assert_eq!(engine.admission(), AdmissionPolicy::Reject);

        // Reject now governs: a full paused queue bounces instead of
        // parking the submitter forever.
        let i = instance(22);
        let ticket = engine.submit(&i, Query::Girth).unwrap();
        assert_eq!(
            engine.submit(&i, Query::Girth).unwrap_err(),
            SubmitError::QueueFull
        );
        engine.resume();
        assert!(ticket.wait().is_ok());
        let m = engine.shutdown();
        assert_eq!((m.submitted, m.completed, m.rejected), (1, 1, 1));
    }

    #[test]
    fn residency_and_evict_reach_the_home_shard() {
        let engine = ServiceEngine::builder()
            .shards(3)
            .workers(1)
            .build()
            .unwrap();
        let (a, b) = (instance(23), instance(24));
        let _ = engine.run(&a, Query::Girth).unwrap();
        let _ = engine.run(&b, Query::Girth).unwrap();
        let (ka, kb) = (InstanceKey::of(&a), InstanceKey::of(&b));
        assert!(engine.resident(&ka) && engine.resident(&kb));
        let residency = engine.shard_residency();
        assert_eq!(residency.len(), 3);
        let resident_keys: Vec<InstanceKey> =
            residency.iter().flatten().map(|entry| entry.key).collect();
        assert!(resident_keys.contains(&ka) && resident_keys.contains(&kb));

        assert!(engine.evict(&ka), "resident key evicts");
        assert!(!engine.evict(&ka), "second evict finds nothing");
        assert!(!engine.resident(&ka));
        assert!(engine.resident(&kb), "other tenants untouched");
    }

    /// A test sink that never drops: appends every span under a mutex
    /// (contention is irrelevant at test scale).
    #[derive(Default)]
    struct CollectSink(Mutex<Vec<crate::span::SpanRecord>>);

    impl crate::span::SpanSink for CollectSink {
        fn record(&self, span: crate::span::SpanRecord) {
            self.0.lock().expect("collect sink").push(span);
        }
    }

    #[test]
    fn every_terminal_state_emits_exactly_one_span() {
        use crate::span::SpanState;
        let sink = Arc::new(CollectSink::default());
        let engine = ServiceEngine::builder()
            .workers(1)
            .queue_capacity(3)
            .admission(AdmissionPolicy::Reject)
            .start_paused()
            .span_sink(Arc::clone(&sink) as Arc<dyn crate::span::SpanSink>)
            .build()
            .unwrap();
        let i = instance(30);
        let ok = engine.submit(&i, Query::Girth).unwrap();
        let doomed = engine
            .submit_with_deadline(&i, Query::Girth, Instant::now())
            .unwrap();
        let axed = engine.submit(&i, Query::Girth).unwrap();
        assert!(axed.cancel());
        // Queue full (capacity 3, all slots held): rejected at admission.
        assert_eq!(
            engine.submit(&i, Query::Girth).unwrap_err(),
            SubmitError::QueueFull
        );
        engine.resume();
        assert!(ok.wait().is_ok());
        assert_eq!(doomed.wait().unwrap_err(), ServiceError::Expired);
        let m = engine.shutdown();
        assert_eq!(
            (m.submitted, m.completed, m.expired, m.cancelled, m.rejected),
            (3, 1, 1, 1, 1)
        );

        let spans = sink.0.lock().unwrap();
        let count = |s: SpanState| spans.iter().filter(|r| r.state == s).count() as u64;
        // Exactly one span per job; admitted spans reconcile with
        // `submitted`, the rejection with `rejected`.
        assert_eq!(spans.len() as u64, m.submitted + m.rejected);
        assert_eq!(count(SpanState::Completed), m.completed);
        assert_eq!(count(SpanState::Expired), m.expired);
        assert_eq!(count(SpanState::Cancelled), m.cancelled);
        assert_eq!(count(SpanState::Rejected), m.rejected);

        for span in spans.iter() {
            assert_eq!(span.tenant, InstanceKey::of(&i).topo_fingerprint());
            assert_eq!(span.query, "girth");
            assert!(span.finished_us >= span.submitted_us);
            match span.state {
                SpanState::Completed => {
                    assert!(span.worker.is_some() && span.started_us.is_some());
                    let total = span.total_us();
                    assert_eq!(span.wait_us() + span.service_us().unwrap(), total);
                }
                SpanState::Rejected => {
                    assert!(span.worker.is_none() && span.admitted_us.is_none());
                    assert_eq!(span.service_us(), None);
                }
                _ => {
                    assert!(span.worker.is_some());
                    assert_eq!(span.started_us, None, "never executed");
                }
            }
        }
    }

    /// A phase-only sink: ignores job spans, collects build-phase spans.
    #[derive(Default)]
    struct PhaseCollectSink(Mutex<Vec<crate::span::PhaseSpan>>);

    impl crate::span::SpanSink for PhaseCollectSink {
        fn record(&self, _span: crate::span::SpanRecord) {}
        fn record_phase(&self, span: crate::span::PhaseSpan) {
            self.0.lock().expect("phase sink").push(span);
        }
    }

    #[test]
    fn substrate_build_phases_emit_profiling_spans_exactly_once() {
        let sink = Arc::new(PhaseCollectSink::default());
        let engine = ServiceEngine::builder()
            .shards(1)
            .workers(1)
            .span_sink(Arc::clone(&sink) as Arc<dyn crate::span::SpanSink>)
            .build()
            .unwrap();
        let i = instance(50);
        // Two jobs sharing one substrate: the build phases are emitted by
        // whichever job billed them first, and never again.
        let _ = engine.run(&i, Query::Girth).unwrap();
        let _ = engine.run(&i, Query::Girth).unwrap();
        engine.shutdown();
        let spans = sink.0.lock().unwrap();
        assert!(!spans.is_empty(), "the substrate build emitted phase spans");
        let mut names: Vec<&str> = spans.iter().map(|s| s.phase.as_str()).collect();
        names.sort_unstable();
        let mut unique = names.clone();
        unique.dedup();
        assert_eq!(names, unique, "each phase emitted exactly once: {names:?}");
        assert!(names.contains(&"embed"), "the embed phase always runs");
        for span in spans.iter() {
            assert_eq!(span.tenant, InstanceKey::of(&i).topo_fingerprint());
            assert_eq!(span.shard, 0);
            assert!(span
                .to_string()
                .starts_with(&format!("phase {}", span.phase)));
        }
    }

    #[test]
    fn failed_queries_emit_failed_spans_with_service_time() {
        use crate::span::SpanState;
        let sink = Arc::new(CollectSink::default());
        let engine = ServiceEngine::builder()
            .workers(1)
            .span_sink(Arc::clone(&sink) as Arc<dyn crate::span::SpanSink>)
            .build()
            .unwrap();
        let i = instance(31);
        let _ = engine.run(&i, Query::MaxFlow { s: 0, t: 0 }).unwrap_err();
        engine.shutdown();
        let spans = sink.0.lock().unwrap();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].state, SpanState::Failed);
        assert_eq!(spans[0].query, "max-flow");
        assert!(spans[0].service_us().is_some(), "it did execute");
    }

    #[test]
    fn sharding_routes_by_topology_and_respecs_stay_home() {
        let engine = ServiceEngine::builder()
            .shards(4)
            .workers(2)
            .build()
            .unwrap();
        let i = instance(11);
        let respec = i.with_capacities(vec![5; i.graph().num_darts()]).unwrap();
        let (k, kr) = (InstanceKey::of(&i), InstanceKey::of(&respec));
        let home = engine.shard_of(&k);
        assert_eq!(
            home,
            engine.shard_of(&kr),
            "spec changes never move an instance across shards"
        );
        let _ = engine.run(&i, Query::Girth).unwrap();
        let _ = engine.run(&respec, Query::Girth).unwrap();
        let m = engine.shutdown();
        assert_eq!(m.pool_total().respec_reuses, 1, "respec found its donor");
        assert_eq!(m.shards[home].pool.len, 2, "both specs cached at home");
        for (idx, shard) in m.shards.iter().enumerate() {
            if idx != home {
                assert_eq!(shard.pool.len, 0, "other shards never touched");
            }
        }
    }

    #[test]
    fn run_batch_matches_serial_in_input_order() {
        let engine = ServiceEngine::builder()
            .shards(2)
            .workers(4)
            .build()
            .unwrap();
        let i = instance(40);
        let t = i.n() - 1;
        let queries: Vec<Query> = (0..12)
            .map(|j| {
                if j % 3 == 0 {
                    Query::MaxFlow { s: 0, t }
                } else {
                    Query::Girth
                }
            })
            .collect();
        let results = engine.run_batch(&i, &queries);
        assert_eq!(results.len(), queries.len());
        let serial = PlanarSolver::from_instance(Arc::clone(&i));
        for (query, result) in queries.iter().zip(&results) {
            let got = result.as_ref().expect("batch job completes");
            let want = serial.run(*query).unwrap();
            match query {
                Query::MaxFlow { .. } => {
                    assert_eq!(
                        got.as_max_flow().unwrap().value,
                        want.as_max_flow().unwrap().value
                    );
                    assert_eq!(
                        got.as_max_flow().unwrap().flow,
                        want.as_max_flow().unwrap().flow,
                        "stealing reorders execution, never results"
                    );
                }
                _ => {
                    assert_eq!(
                        got.as_girth().unwrap().girth,
                        want.as_girth().unwrap().girth
                    );
                    assert_eq!(
                        got.as_girth().unwrap().cycle_edges,
                        want.as_girth().unwrap().cycle_edges
                    );
                }
            }
        }
        let m = engine.shutdown();
        assert_eq!((m.submitted, m.completed), (12, 12));
        assert!(m.queue_high_water <= 12, "admission accounting stays exact");
    }

    #[test]
    fn run_batch_under_reject_refuses_only_the_overflow() {
        let engine = ServiceEngine::builder()
            .workers(1)
            .queue_capacity(2)
            .admission(AdmissionPolicy::Reject)
            .start_paused()
            .build()
            .unwrap();
        let i = instance(41);
        // Under Reject, admission is decided synchronously against the
        // paused queue; the call then blocks waiting on the admitted
        // two, so it runs on a scoped thread while this one resumes.
        let results = std::thread::scope(|scope| {
            let batch = scope.spawn(|| engine.run_batch(&i, &[Query::Girth; 5]));
            while engine.metrics().queue_depth < 2 {
                std::thread::yield_now();
            }
            engine.resume();
            batch.join().unwrap()
        });
        assert_eq!(results.len(), 5);
        let admitted = results.iter().filter(|r| r.is_ok()).count();
        let refused = results
            .iter()
            .filter(|r| matches!(r, Err(ServiceError::NotAdmitted(SubmitError::QueueFull))))
            .count();
        assert_eq!((admitted, refused), (2, 3), "capacity-2 queue admits two");
        assert!(
            results[0].is_ok() && results[1].is_ok(),
            "the admitted prefix is the front of the batch"
        );
        let m = engine.shutdown();
        assert_eq!((m.submitted, m.completed, m.rejected), (2, 2, 3));
        assert_eq!(m.queue_high_water, 2);
    }

    #[test]
    fn run_batch_after_shutdown_refuses_everything() {
        let engine = ServiceEngine::builder().workers(1).build().unwrap();
        let i = instance(42);
        engine.shared.queue.close();
        let results = engine.run_batch(&i, &[Query::Girth; 3]);
        assert_eq!(results.len(), 3, "every query gets an answer");
        for result in &results {
            assert_eq!(
                result.as_ref().unwrap_err(),
                &ServiceError::NotAdmitted(SubmitError::ShuttingDown)
            );
        }
        let m = engine.shutdown();
        assert_eq!((m.submitted, m.rejected), (0, 0), "rollback is complete");
    }

    #[test]
    fn stealing_workers_drain_a_paused_backlog_exactly_once() {
        let engine = ServiceEngine::builder()
            .shards(2)
            .workers(4)
            .queue_capacity(64)
            .start_paused()
            .build()
            .unwrap();
        let (a, b) = (instance(43), instance(44));
        let tickets: Vec<Ticket> = (0..32)
            .map(|j| {
                let i = if j % 2 == 0 { &a } else { &b };
                engine.submit(i, Query::Girth).unwrap()
            })
            .collect();
        assert_eq!(
            engine.metrics().queue_depth,
            32,
            "depth is exact: deques + injector summed at submit time"
        );
        engine.resume();
        for ticket in tickets {
            assert!(ticket.wait().is_ok());
        }
        let m = engine.shutdown();
        assert_eq!((m.submitted, m.completed), (32, 32));
        assert_eq!(m.queue_high_water, 32);
        assert_eq!(m.queue_depth, 0);
        // Four workers racing over a 32-job backlog: the idle ones
        // either stole or parked, and the ledger reconciles exactly.
        let s = m.scheduler;
        assert!(
            s.steals + s.parks > 0,
            "a multi-worker drain exercises the scheduler: {s:?}"
        );
    }
}
