//! A vendored, dependency-free stand-in for the subset of the `criterion`
//! API this workspace's benches use: benchmark groups, parameterized
//! benches, and the `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement is intentionally simple — a short warmup followed by
//! `sample_size` timed samples of an adaptively chosen batch, reporting
//! min/median/mean per iteration — enough to compare implementations and
//! catch large regressions without the real crate's statistical machinery.

use std::time::{Duration, Instant};

/// Re-export of the standard black box, mirroring `criterion::black_box`.
pub use std::hint::black_box;

/// Identifier of one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A two-part id (`function_name/parameter`).
    pub fn new(function_name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{function_name}/{parameter}"),
        }
    }

    /// An id carrying only the parameter.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.label)
    }
}

/// The timing driver handed to bench closures.
pub struct Bencher {
    samples: usize,
    /// Mean/min/median nanoseconds per iteration of the last `iter` call.
    last: Option<(f64, f64, f64)>,
}

impl Bencher {
    /// Times `routine`, storing per-iteration statistics.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        // Warmup + batch sizing: aim for >= 1ms per sample where possible.
        let t0 = Instant::now();
        black_box(routine());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let batch = (Duration::from_millis(1).as_nanos() / once.as_nanos()).clamp(1, 10_000) as u64;

        let mut per_iter: Vec<f64> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            per_iter.push(start.elapsed().as_nanos() as f64 / batch as f64);
        }
        per_iter.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        let min = per_iter[0];
        let median = per_iter[per_iter.len() / 2];
        let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
        self.last = Some((mean, min, median));
    }
}

fn human(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.0} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'c> {
    name: String,
    samples: usize,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.samples = samples.max(2);
        self
    }

    fn run(&mut self, id: String, f: impl FnOnce(&mut Bencher)) {
        let mut b = Bencher {
            samples: self.samples,
            last: None,
        };
        f(&mut b);
        match b.last {
            Some((mean, min, median)) => println!(
                "{}/{id:<24} mean {:>12}   median {:>12}   min {:>12}",
                self.name,
                human(mean),
                human(median),
                human(min)
            ),
            None => println!("{}/{id}: no measurement (iter never called)", self.name),
        }
    }

    /// Benchmarks `f` with a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher, &I),
    {
        self.run(id.to_string(), |b| f(b, input));
        self
    }

    /// Benchmarks a closure under a plain name.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        self.run(id.to_string(), f);
        self
    }

    /// Ends the group (printing is incremental, so this is cosmetic).
    pub fn finish(&mut self) {}
}

/// The top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== {name} ==");
        BenchmarkGroup {
            name,
            samples: 10,
            _criterion: self,
        }
    }

    /// Benchmarks a closure outside any group.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        self.benchmark_group(id.to_string())
            .bench_function("run", f);
        self
    }
}

/// Bundles bench functions into a runnable group, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the given groups, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_statistics() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(3);
        group.bench_with_input(BenchmarkId::from_parameter("x"), &21u64, |b, &x| {
            b.iter(|| x * 2)
        });
        group.bench_function("plain", |b| b.iter(|| black_box(1 + 1)));
        group.finish();
    }

    #[test]
    fn ids_format() {
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
        assert_eq!(BenchmarkId::from_parameter("8x8").to_string(), "8x8");
    }

    criterion_group!(demo_group, demo_bench);
    fn demo_bench(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| ()));
    }

    #[test]
    fn group_macro_runs() {
        demo_group();
    }
}
