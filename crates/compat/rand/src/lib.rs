//! A vendored, dependency-free stand-in for the subset of the `rand` crate
//! API this workspace uses: `StdRng::seed_from_u64`, `Rng::gen_range` over
//! integer ranges, and `Rng::gen_bool`.
//!
//! The workspace's contract with its RNG is only *determinism under a
//! seed* — every randomized generator re-validates its output (planarity,
//! connectivity) and every test compares against references computed on
//! the same instance — so a statistically simpler generator is fine. The
//! implementation is xoshiro256++ seeded through SplitMix64, both public
//! domain algorithms (Blackman–Vigna).

use std::ops::{Range, RangeInclusive};

/// Namespaced RNG types, mirroring `rand::rngs`.
pub mod rngs {
    /// A deterministic RNG (xoshiro256++), mirroring `rand::rngs::StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        pub(crate) s: [u64; 4],
    }
}

pub use rngs::StdRng;

/// Seeding support, mirroring `rand::SeedableRng` (only the
/// `seed_from_u64` entry point is provided).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 expansion of the seed into the xoshiro state.
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        };
        StdRng {
            s: [next(), next(), next(), next()],
        }
    }
}

impl StdRng {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Unbiased sample from `[0, bound)` by rejection (Lemire-style).
    fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Rejection zone keeps the sample unbiased.
        let zone = u64::MAX - (u64::MAX - bound + 1) % bound;
        loop {
            let v = self.next_u64();
            if v <= zone {
                return v % bound;
            }
        }
    }
}

/// A type samplable from a range, mirroring `rand::distributions::uniform`
/// support for the integer types the workspace draws.
pub trait SampleRange<T> {
    /// Draws one sample from the range.
    fn sample(self, rng: &mut StdRng) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut StdRng) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, rng: &mut StdRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                // span == 0 only on a full-width range, which we never use.
                (lo as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Sampling methods, mirroring `rand::Rng`.
pub trait Rng {
    /// Draws a sample from `range` (half-open or inclusive integer range).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T;

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool;
}

impl Rng for StdRng {
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        // 53 random bits give a uniform double in [0, 1).
        let x = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        x < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: i64 = rng.gen_range(-5i64..=9);
            assert!((-5..=9).contains(&x));
            let y: usize = rng.gen_range(3usize..17);
            assert!((3..17).contains(&y));
        }
        // Degenerate inclusive range.
        assert_eq!(rng.gen_range(4i64..=4), 4);
    }

    #[test]
    fn gen_range_hits_every_value() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 6];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..6)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_is_roughly_fair() {
        let mut rng = StdRng::seed_from_u64(5);
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4500..5500).contains(&heads), "{heads}");
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}
