//! A vendored, dependency-free stand-in for the subset of the `proptest`
//! API this workspace uses: the `proptest!` macro over integer-range and
//! fixed-length-`vec` strategies, `prop_assert*` / `prop_assume!`, and
//! `ProptestConfig::with_cases`.
//!
//! Semantics: each `#[test]` runs `cases` samples drawn from a
//! deterministic per-test RNG (seeded from the test's module path), so
//! failures are reproducible run to run. There is no shrinking — the
//! failing sample is reported as-is — which is an acceptable trade for a
//! fully offline build.

use rand::{Rng, SeedableRng, StdRng};
use std::ops::Range;

/// Why a test case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// The case was rejected by `prop_assume!` — resample, don't fail.
    Reject(String),
    /// An assertion failed.
    Fail(String),
}

impl TestCaseError {
    /// Builds a failure (the constructor `prop_assert!` expands to).
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// Builds a rejection (the constructor `prop_assume!` expands to).
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
            TestCaseError::Fail(m) => write!(f, "failed: {m}"),
        }
    }
}

/// Per-test configuration.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of accepted samples to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` samples.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 32 }
    }
}

/// A value generator.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample_one(&self, rng: &mut StdRng) -> Self::Value;
}

impl<T> Strategy for Range<T>
where
    Range<T>: rand::SampleRange<T> + Clone,
{
    type Value = T;

    fn sample_one(&self, rng: &mut StdRng) -> T {
        rng.gen_range(self.clone())
    }
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::Strategy;
    use rand::StdRng;

    /// Fixed-length vector strategy.
    pub struct VecStrategy<S> {
        element: S,
        len: usize,
    }

    /// A strategy producing `len` samples of `element` per case.
    pub fn vec<S: Strategy>(element: S, len: usize) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample_one(&self, rng: &mut StdRng) -> Vec<S::Value> {
            (0..self.len)
                .map(|_| self.element.sample_one(rng))
                .collect()
        }
    }
}

/// Module-style access to strategy constructors (`prop::collection::vec`).
pub mod prop {
    pub use crate::collection;
}

/// Builds the deterministic RNG for a named test (used by `proptest!`).
pub fn rng_for(test_path: &str) -> StdRng {
    // FNV-1a over the fully qualified test name.
    let mut h: u64 = 0xcbf29ce484222325;
    for b in test_path.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100000001b3);
    }
    StdRng::seed_from_u64(h)
}

/// Everything a test file needs, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, ProptestConfig,
        Strategy, TestCaseError,
    };
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` samples.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::rng_for(concat!(module_path!(), "::", stringify!($name)));
            let mut accepted = 0u32;
            let mut attempts = 0u32;
            while accepted < cfg.cases {
                attempts += 1;
                assert!(
                    attempts <= cfg.cases.saturating_mul(50).max(1000),
                    "too many rejected samples in {}",
                    stringify!($name)
                );
                $(let $arg = $crate::Strategy::sample_one(&($strat), &mut rng);)*
                // Render the sample before the body can move the values, so
                // a failure reports the exact inputs that falsified it.
                let sample: Vec<String> =
                    vec![$(format!("{} = {:?}", stringify!($arg), &$arg)),*];
                let outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    #[allow(unreachable_code)]
                    ::std::result::Result::Ok(())
                })();
                match outcome {
                    Ok(()) => accepted += 1,
                    Err($crate::TestCaseError::Reject(_)) => continue,
                    Err($crate::TestCaseError::Fail(msg)) => {
                        panic!(
                            "property {} falsified: {}\n  sample: {}",
                            stringify!($name),
                            msg,
                            sample.join(", ")
                        )
                    }
                }
            }
        }
    )*};
}

/// `assert!` that reports through the proptest harness.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(concat!(
                "assertion failed: ",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// `assert_eq!` that reports through the proptest harness.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?} == {:?}`",
                l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?} == {:?}`: {}",
                l,
                r,
                format!($($fmt)+)
            )));
        }
    }};
}

/// `assert_ne!` that reports through the proptest harness.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?} != {:?}`",
                l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?} != {:?}`: {}",
                l,
                r,
                format!($($fmt)+)
            )));
        }
    }};
}

/// Rejects the current sample unless `cond` holds (resamples instead of
/// failing).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..10, y in -4i64..4) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-4..4).contains(&y));
        }

        #[test]
        fn assume_filters(x in 0u64..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }

        #[test]
        fn vec_strategy_has_fixed_len(v in prop::collection::vec(0i64..5, 17)) {
            prop_assert_eq!(v.len(), 17);
            prop_assert!(v.iter().all(|&x| (0..5).contains(&x)));
        }
    }

    #[test]
    fn helper_functions_can_propagate() {
        fn helper(x: u64) -> Result<(), TestCaseError> {
            prop_assert!(x < 10, "x was {}", x);
            Ok(())
        }
        assert!(helper(3).is_ok());
        assert!(matches!(helper(11), Err(TestCaseError::Fail(_))));
    }

    #[test]
    #[should_panic(expected = "falsified")]
    fn failures_panic() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(1))]
            fn inner(x in 0u64..1) {
                prop_assert!(x > 5);
            }
        }
        inner();
    }
}
