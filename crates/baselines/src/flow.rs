//! Dinic's maximum-flow algorithm — the centralized ground truth for the
//! distributed flow algorithms (works on arbitrary directed graphs, not
//! just planar ones).

use duality_planar::Weight;

/// A directed flow network for Dinic's algorithm.
///
/// Arcs are added in antiparallel residual pairs; capacities are
/// non-negative integers.
///
/// # Example
///
/// ```
/// use duality_baselines::flow::Dinic;
///
/// let mut d = Dinic::new(4);
/// d.add_arc(0, 1, 3);
/// d.add_arc(0, 2, 2);
/// d.add_arc(1, 3, 2);
/// d.add_arc(2, 3, 3);
/// d.add_arc(1, 2, 5);
/// assert_eq!(d.max_flow(0, 3), 5);
/// ```
#[derive(Clone, Debug)]
pub struct Dinic {
    n: usize,
    /// `(to, cap)` per directed arc; arc `i ^ 1` is the residual of arc `i`.
    arcs: Vec<(usize, Weight)>,
    head: Vec<Vec<usize>>,
}

impl Dinic {
    /// Creates an empty network on `n` vertices.
    pub fn new(n: usize) -> Self {
        Dinic {
            n,
            arcs: Vec::new(),
            head: vec![Vec::new(); n],
        }
    }

    /// Adds a directed arc `from → to` with capacity `cap ≥ 0`; the
    /// residual reverse arc has capacity 0. Returns the arc index.
    ///
    /// # Panics
    ///
    /// Panics if `cap < 0` or an endpoint is out of range.
    pub fn add_arc(&mut self, from: usize, to: usize, cap: Weight) -> usize {
        assert!(cap >= 0, "capacities are non-negative");
        assert!(from < self.n && to < self.n);
        let id = self.arcs.len();
        self.arcs.push((to, cap));
        self.arcs.push((from, 0));
        self.head[from].push(id);
        self.head[to].push(id + 1);
        id
    }

    /// Remaining capacity of arc `id`.
    pub fn residual(&self, id: usize) -> Weight {
        self.arcs[id].1
    }

    /// Flow currently pushed through arc `id` (capacity moved to the
    /// residual arc).
    pub fn flow_on(&self, id: usize, original_cap: Weight) -> Weight {
        original_cap - self.arcs[id].1
    }

    /// Computes the maximum `s → t` flow, mutating residual capacities.
    pub fn max_flow(&mut self, s: usize, t: usize) -> Weight {
        assert!(s < self.n && t < self.n && s != t);
        let mut total = 0;
        loop {
            // BFS level graph.
            let mut level = vec![usize::MAX; self.n];
            level[s] = 0;
            let mut q = std::collections::VecDeque::from([s]);
            while let Some(u) = q.pop_front() {
                for &a in &self.head[u] {
                    let (to, cap) = self.arcs[a];
                    if cap > 0 && level[to] == usize::MAX {
                        level[to] = level[u] + 1;
                        q.push_back(to);
                    }
                }
            }
            if level[t] == usize::MAX {
                return total;
            }
            // DFS blocking flow.
            let mut it = vec![0usize; self.n];
            loop {
                let pushed = self.dfs(s, t, Weight::MAX / 4, &level, &mut it);
                if pushed == 0 {
                    break;
                }
                total += pushed;
            }
        }
    }

    fn dfs(
        &mut self,
        u: usize,
        t: usize,
        limit: Weight,
        level: &[usize],
        it: &mut [usize],
    ) -> Weight {
        if u == t {
            return limit;
        }
        while it[u] < self.head[u].len() {
            let a = self.head[u][it[u]];
            let (to, cap) = self.arcs[a];
            if cap > 0 && level[to] == level[u] + 1 {
                let pushed = self.dfs(to, t, limit.min(cap), level, it);
                if pushed > 0 {
                    self.arcs[a].1 -= pushed;
                    self.arcs[a ^ 1].1 += pushed;
                    return pushed;
                }
            }
            it[u] += 1;
        }
        0
    }

    /// Vertices reachable from `s` in the residual graph (the min-cut side
    /// `S` after running [`Dinic::max_flow`]).
    pub fn min_cut_side(&self, s: usize) -> Vec<bool> {
        let mut seen = vec![false; self.n];
        seen[s] = true;
        let mut stack = vec![s];
        while let Some(u) = stack.pop() {
            for &a in &self.head[u] {
                let (to, cap) = self.arcs[a];
                if cap > 0 && !seen[to] {
                    seen[to] = true;
                    stack.push(to);
                }
            }
        }
        seen
    }
}

/// Max st-flow of a planar instance described by per-dart capacities:
/// `caps[d]` is the capacity of dart `d` (the paper's `G'` with both darts
/// present). Convenience wrapper used pervasively in tests.
pub fn planar_max_flow_reference(
    g: &duality_planar::PlanarGraph,
    caps: &[Weight],
    s: usize,
    t: usize,
) -> Weight {
    let mut dinic = Dinic::new(g.num_vertices());
    for e in 0..g.num_edges() {
        let d = duality_planar::Dart::forward(e);
        dinic.add_arc(g.tail(d), g.head(d), caps[d.index()]);
        dinic.add_arc(g.head(d), g.tail(d), caps[d.rev().index()]);
    }
    dinic.max_flow(s, t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use duality_planar::gen;

    #[test]
    fn single_edge() {
        let mut d = Dinic::new(2);
        d.add_arc(0, 1, 7);
        assert_eq!(d.max_flow(0, 1), 7);
    }

    #[test]
    fn bottleneck_path() {
        let mut d = Dinic::new(4);
        d.add_arc(0, 1, 9);
        d.add_arc(1, 2, 2);
        d.add_arc(2, 3, 9);
        assert_eq!(d.max_flow(0, 3), 2);
    }

    #[test]
    fn disconnected_targets_zero_flow() {
        let mut d = Dinic::new(3);
        d.add_arc(0, 1, 4);
        assert_eq!(d.max_flow(0, 2), 0);
    }

    #[test]
    fn min_cut_side_matches_flow_value() {
        let mut d = Dinic::new(4);
        let caps = [(0, 1, 3), (0, 2, 2), (1, 3, 2), (2, 3, 3), (1, 2, 5)];
        let ids: Vec<usize> = caps.iter().map(|&(u, v, c)| d.add_arc(u, v, c)).collect();
        let f = d.max_flow(0, 3);
        let side = d.min_cut_side(0);
        assert!(side[0] && !side[3]);
        let cut: Weight = caps
            .iter()
            .zip(&ids)
            .filter(|(&(u, v, _), _)| side[u] && !side[v])
            .map(|(&(_, _, c), _)| c)
            .sum();
        assert_eq!(cut, f);
    }

    #[test]
    fn grid_flow_is_monotone_in_capacity() {
        let g = gen::grid(4, 4).unwrap();
        let m = g.num_edges();
        let lo = gen::random_directed_capacities(m, 1, 3, 5);
        let hi: Vec<Weight> = lo.iter().map(|&c| c * 2).collect();
        let a = planar_max_flow_reference(&g, &lo, 0, 15);
        let b = planar_max_flow_reference(&g, &hi, 0, 15);
        assert!(a > 0);
        assert_eq!(b, 2 * a);
    }

    #[test]
    fn undirected_grid_flow_bounded_by_degree() {
        let g = gen::grid(5, 5).unwrap();
        let caps = gen::random_undirected_capacities(g.num_edges(), 1, 1, 1);
        // Corner s has degree 2 with unit capacities: max flow is 2.
        assert_eq!(planar_max_flow_reference(&g, &caps, 0, 24), 2);
    }
}
