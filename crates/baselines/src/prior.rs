//! Round-complexity formulas of prior distributed max-flow work, used by
//! the experiment harness to draw comparison curves (paper, Section 1).
//!
//! These are analytic bounds evaluated with unit constants — prior systems
//! are not implemented, only their published complexity shapes (the paper
//! itself compares at this level).

/// de Vos (2023): exact max st-flow in directed planar graphs in
/// `D · n^{1/2 + o(1)}` rounds. Evaluated as `D · √n · 2^{(log n)^{3/4}}`
/// with unit constants (same `n^{o(1)}` shape as
/// `CostModel::approx_sssp_minor_aggregation_rounds`).
pub fn de_vos_planar_flow_rounds(n: usize, d: usize) -> u64 {
    let subpoly = subpolynomial(n);
    (d as f64 * (n as f64).sqrt() * subpoly).ceil() as u64
}

/// Ghaffari–Karrenbauer–Kuhn–Lenzen–Patt-Shamir (2015): `(1 + o(1))`-approx
/// max flow in general undirected graphs in `(√n + D) · n^{o(1)}` rounds.
pub fn gkklp_general_flow_rounds(n: usize, d: usize) -> u64 {
    let subpoly = subpolynomial(n);
    (((n as f64).sqrt() + d as f64) * subpoly).ceil() as u64
}

/// The generic `Õ(√n + D)` bound for exact global problems in general
/// graphs (MST, min cut, …): `(√n + D) · log₂ n`.
pub fn generic_sqrt_n_rounds(n: usize, d: usize) -> u64 {
    (((n as f64).sqrt() + d as f64) * (n.max(2) as f64).log2()).ceil() as u64
}

fn subpolynomial(n: usize) -> f64 {
    ((n.max(2) as f64).log2().powf(0.75)).exp2()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn de_vos_grows_with_both_n_and_d() {
        assert!(de_vos_planar_flow_rounds(1000, 20) < de_vos_planar_flow_rounds(4000, 20));
        assert!(de_vos_planar_flow_rounds(1000, 20) < de_vos_planar_flow_rounds(1000, 40));
    }

    #[test]
    fn gkklp_dominated_by_sqrt_n_at_low_diameter() {
        let low_d = gkklp_general_flow_rounds(10_000, 10);
        let high_d = gkklp_general_flow_rounds(10_000, 1_000);
        assert!(low_d < high_d);
        // At D = 10 the √n term dominates: doubling D barely moves it.
        let d20 = gkklp_general_flow_rounds(10_000, 20);
        assert!((d20 as f64) < 1.2 * low_d as f64);
    }

    #[test]
    fn generic_bound_is_otilde() {
        let r = generic_sqrt_n_rounds(1 << 14, 30);
        assert!(r as f64 >= (1 << 7) as f64);
        assert!((r as f64) < (1 << 14) as f64);
    }
}
