//! Generic shortest-path references on adjacency-list digraphs.

use duality_planar::{Weight, INF};

/// A bare adjacency-list digraph with integer arc weights.
#[derive(Clone, Debug, Default)]
pub struct Digraph {
    /// `adj[u]` = `(v, w)` out-arcs.
    pub adj: Vec<Vec<(usize, Weight)>>,
}

impl Digraph {
    /// Creates a digraph on `n` vertices with no arcs.
    pub fn new(n: usize) -> Self {
        Digraph {
            adj: vec![Vec::new(); n],
        }
    }

    /// Adds the arc `u → v` with weight `w`.
    pub fn add_arc(&mut self, u: usize, v: usize, w: Weight) {
        self.adj[u].push((v, w));
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.adj.len()
    }

    /// Whether the digraph has no vertices.
    pub fn is_empty(&self) -> bool {
        self.adj.is_empty()
    }
}

/// Bellman–Ford from `source`; supports negative weights. Returns `None` if
/// a negative cycle is reachable from `source`.
pub fn bellman_ford(g: &Digraph, source: usize) -> Option<Vec<Weight>> {
    let n = g.len();
    let mut dist = vec![INF; n];
    dist[source] = 0;
    for round in 0..=n {
        let mut changed = false;
        for u in 0..n {
            if dist[u] >= INF {
                continue;
            }
            for &(v, w) in &g.adj[u] {
                if dist[u] + w < dist[v] {
                    dist[v] = dist[u] + w;
                    changed = true;
                }
            }
        }
        if !changed {
            return Some(dist);
        }
        if round == n {
            return None;
        }
    }
    Some(dist)
}

/// Dijkstra from `source`; requires non-negative weights.
///
/// # Panics
///
/// Debug-asserts non-negative weights.
pub fn dijkstra(g: &Digraph, source: usize) -> Vec<Weight> {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    let n = g.len();
    let mut dist = vec![INF; n];
    let mut heap = BinaryHeap::new();
    dist[source] = 0;
    heap.push(Reverse((0, source)));
    while let Some(Reverse((du, u))) = heap.pop() {
        if du > dist[u] {
            continue;
        }
        for &(v, w) in &g.adj[u] {
            debug_assert!(w >= 0);
            if du + w < dist[v] {
                dist[v] = du + w;
                heap.push(Reverse((du + w, v)));
            }
        }
    }
    dist
}

/// All-pairs shortest paths by Floyd–Warshall (small graphs; negative
/// weights allowed). Returns `None` if any negative cycle exists.
pub fn floyd_warshall(g: &Digraph) -> Option<Vec<Vec<Weight>>> {
    let n = g.len();
    let mut d = vec![vec![INF; n]; n];
    for (u, row) in d.iter_mut().enumerate() {
        row[u] = 0;
    }
    for u in 0..n {
        for &(v, w) in &g.adj[u] {
            if w < d[u][v] {
                d[u][v] = w;
            }
        }
    }
    for k in 0..n {
        for i in 0..n {
            if d[i][k] >= INF {
                continue;
            }
            for j in 0..n {
                if d[k][j] < INF && d[i][k] + d[k][j] < d[i][j] {
                    d[i][j] = d[i][k] + d[k][j];
                }
            }
        }
    }
    if (0..n).any(|i| d[i][i] < 0) {
        return None;
    }
    Some(d)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> Digraph {
        let mut g = Digraph::new(4);
        g.add_arc(0, 1, 1);
        g.add_arc(0, 2, 4);
        g.add_arc(1, 2, 1);
        g.add_arc(1, 3, 6);
        g.add_arc(2, 3, 1);
        g
    }

    #[test]
    fn dijkstra_matches_bellman_ford() {
        let g = diamond();
        assert_eq!(dijkstra(&g, 0), bellman_ford(&g, 0).unwrap());
        assert_eq!(dijkstra(&g, 0), vec![0, 1, 2, 3]);
    }

    #[test]
    fn bellman_ford_with_negative_arcs() {
        let mut g = diamond();
        g.add_arc(3, 1, -1); // lightest cycle through it: 1 -> 2 -> 3 -> 1 = 1
        let d = bellman_ford(&g, 0).unwrap();
        assert_eq!(d[3], 3);
        g.add_arc(3, 1, -3); // now 1 -> 2 -> 3 -> 1 has weight -1
        assert!(bellman_ford(&g, 0).is_none());
    }

    #[test]
    fn unreachable_stays_inf() {
        let mut g = Digraph::new(3);
        g.add_arc(0, 1, 1);
        let d = bellman_ford(&g, 0).unwrap();
        assert!(d[2] >= INF);
    }

    #[test]
    fn floyd_warshall_matches_per_source() {
        let g = diamond();
        let all = floyd_warshall(&g).unwrap();
        for s in 0..4 {
            assert_eq!(all[s], dijkstra(&g, s));
        }
    }

    #[test]
    fn floyd_warshall_detects_negative_cycle() {
        let mut g = Digraph::new(2);
        g.add_arc(0, 1, 1);
        g.add_arc(1, 0, -2);
        assert!(floyd_warshall(&g).is_none());
    }
}
