//! Centralized weighted girth (minimum-weight cycle) of an undirected
//! weighted graph.

use crate::shortest_paths::{dijkstra, Digraph};
use duality_planar::{PlanarGraph, Weight, INF};

/// Weighted girth of an undirected graph given by its edge list and
/// non-negative weights: for every edge `e = (u, v)`, the shortest cycle
/// through `e` has weight `w(e) + dist_{G−e}(u, v)`; the girth is the
/// minimum over edges.
///
/// Returns `None` if the graph is acyclic. `O(m · (m + n) log n)` — fine as
/// a test oracle.
pub fn weighted_girth(n: usize, edges: &[(usize, usize)], weights: &[Weight]) -> Option<Weight> {
    assert_eq!(edges.len(), weights.len());
    let mut best = INF;
    for (skip, &(u, v)) in edges.iter().enumerate() {
        if u == v {
            // A self-loop is a cycle of its own weight.
            best = best.min(weights[skip]);
            continue;
        }
        let mut g = Digraph::new(n);
        for (e, &(a, b)) in edges.iter().enumerate() {
            if e == skip {
                continue;
            }
            g.add_arc(a, b, weights[e]);
            g.add_arc(b, a, weights[e]);
        }
        let dist = dijkstra(&g, u);
        if dist[v] < INF {
            best = best.min(weights[skip] + dist[v]);
        }
    }
    (best < INF).then_some(best)
}

/// Weighted girth of a planar instance with per-edge weights.
pub fn planar_weighted_girth(g: &PlanarGraph, edge_weights: &[Weight]) -> Option<Weight> {
    let edges: Vec<(usize, usize)> = (0..g.num_edges())
        .map(|e| (g.edge_tail(e), g.edge_head(e)))
        .collect();
    weighted_girth(g.num_vertices(), &edges, edge_weights)
}

#[cfg(test)]
mod tests {
    use super::*;
    use duality_planar::gen;

    #[test]
    fn girth_of_weighted_cycle_is_total_weight() {
        let g = gen::cycle(5).unwrap();
        let w = vec![1, 2, 3, 4, 5];
        assert_eq!(planar_weighted_girth(&g, &w), Some(15));
    }

    #[test]
    fn girth_of_tree_is_none() {
        let g = gen::path(6).unwrap();
        assert_eq!(planar_weighted_girth(&g, &vec![1; g.num_edges()]), None);
    }

    #[test]
    fn unweighted_grid_girth_is_4() {
        let g = gen::grid(4, 4).unwrap();
        assert_eq!(planar_weighted_girth(&g, &vec![1; g.num_edges()]), Some(4));
    }

    #[test]
    fn heavy_edge_avoided() {
        // Two triangles sharing an edge; one triangle much heavier.
        let edges = [(0, 1), (1, 2), (2, 0), (1, 3), (3, 2)];
        let weights = [1, 1, 1, 100, 100];
        assert_eq!(weighted_girth(4, &edges, &weights), Some(3));
    }
}
