//! Centralized cut references: Stoer–Wagner (undirected global min cut),
//! brute-force directed global min cut, and the min *dart-simple* directed
//! dual cycle used to validate the distributed directed-global-min-cut
//! algorithm.

use crate::shortest_paths::Digraph;
use duality_planar::{Dart, PlanarGraph, Weight, INF};

/// Stoer–Wagner minimum cut of an undirected weighted graph given as a
/// symmetric weight matrix (`w[u][v] == w[v][u]`, zero diagonal). Returns
/// `(cut_weight, side)` where `side[v]` is true for one shore.
///
/// # Panics
///
/// Panics if the graph has fewer than 2 vertices.
pub fn stoer_wagner(w: &[Vec<Weight>]) -> (Weight, Vec<bool>) {
    let n = w.len();
    assert!(n >= 2, "min cut needs at least two vertices");
    let mut w = w.to_vec();
    // `members[i]` = original vertices merged into super-vertex i.
    let mut members: Vec<Vec<usize>> = (0..n).map(|v| vec![v]).collect();
    let mut active: Vec<usize> = (0..n).collect();
    let mut best = (INF, Vec::new());
    while active.len() > 1 {
        // Maximum adjacency (minimum cut phase).
        let mut in_a = vec![false; n];
        let mut weight_to_a = vec![0 as Weight; n];
        let mut order = Vec::with_capacity(active.len());
        for _ in 0..active.len() {
            let &next = active
                .iter()
                .filter(|&&v| !in_a[v])
                .max_by_key(|&&v| weight_to_a[v])
                .expect("active vertex remains");
            in_a[next] = true;
            order.push(next);
            for &v in &active {
                if !in_a[v] {
                    weight_to_a[v] += w[next][v];
                }
            }
        }
        let t = *order.last().unwrap();
        let s = order[order.len() - 2];
        let cut_of_phase = weight_to_a[t];
        if cut_of_phase < best.0 {
            let mut side = vec![false; n];
            for &v in &members[t] {
                side[v] = true;
            }
            best = (cut_of_phase, side);
        }
        // Merge t into s.
        let t_members = std::mem::take(&mut members[t]);
        members[s].extend(t_members);
        for &v in &active {
            if v != s && v != t {
                w[s][v] += w[t][v];
                w[v][s] = w[s][v];
            }
        }
        active.retain(|&v| v != t);
    }
    best
}

/// Brute-force directed global minimum cut: minimum over all bipartitions
/// `(S, V∖S)` with `S ∋ 0` proper and nonempty... every nonempty proper `S`
/// is considered (both orientations arise as `S` and its complement).
/// Weight of a cut = total weight of arcs leaving `S`. Exponential; for
/// validation on graphs with `n ≤ ~16`.
pub fn brute_force_directed_min_cut(g: &Digraph) -> (Weight, Vec<bool>) {
    let n = g.len();
    assert!((2..=20).contains(&n), "brute force only for tiny graphs");
    let mut best = (INF, Vec::new());
    for mask in 1..(1u32 << n) - 1 {
        let in_s = |v: usize| mask >> v & 1 == 1;
        let mut weight = 0;
        for u in 0..n {
            if !in_s(u) {
                continue;
            }
            for &(v, w) in &g.adj[u] {
                if !in_s(v) {
                    weight += w;
                }
            }
        }
        if weight < best.0 {
            best = (weight, (0..n).map(in_s).collect());
        }
    }
    best
}

/// Minimum-weight *dart-simple* directed cycle of the dual `G'*` (each dart
/// `d` contributes the dual arc `face(d) → face(rev d)` with weight
/// `weights[d]`), excluding the degenerate two-cycles `{d*, rev(d)*}`.
///
/// Computed by the per-dart formula proved in `duality-core::global_cut`:
/// `min over darts d of w(d*) + dist(head(d*) → tail(d*))` in the dual with
/// the single arc `rev(d)*` removed. By planar duality this equals the
/// directed global minimum cut of `G` (paper, Theorem 1.5 / Section 7).
///
/// Requires non-negative weights. Bridges of `G` are dual *self-loops*,
/// i.e. valid one-arc cycles (the cut isolating one side of the bridge), so
/// trees have directed min cut 0 via their zero-weight reversal loops.
/// Returns `None` only when `G` has no edges (no bipartition crosses).
pub fn min_dart_simple_dual_cycle(g: &PlanarGraph, weights: &[Weight]) -> Option<Weight> {
    assert_eq!(weights.len(), g.num_darts());
    if g.num_edges() == 0 {
        return None;
    }
    let mut best = INF;
    for d in g.darts() {
        let (from, to) = g.dual_arc(d);
        // Shortest to → from path avoiding the single arc rev(d)* (which is
        // the arc from `to` to `from` crossing rev(d)).
        let mut dist = vec![INF; g.num_faces()];
        dist[to.index()] = 0;
        // Dijkstra over dual arcs with the exclusion.
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;
        let mut heap = BinaryHeap::new();
        heap.push(Reverse((0, to.index())));
        while let Some(Reverse((du, u))) = heap.pop() {
            if du > dist[u] {
                continue;
            }
            for &dd in g.face_darts(duality_planar::FaceId(u as u32)) {
                if dd == d.rev() {
                    continue; // the excluded reversal arc
                }
                let v = g.face_of(dd.rev()).index();
                let w = weights[dd.index()];
                debug_assert!(w >= 0);
                if du + w < dist[v] {
                    dist[v] = du + w;
                    heap.push(Reverse((du + w, v)));
                }
            }
        }
        if dist[from.index()] < INF {
            best = best.min(weights[d.index()] + dist[from.index()]);
        }
    }
    (best < INF).then_some(best)
}

/// The directed global min cut of a planar instance where forward darts
/// carry `edge_weights[e]` and reversal darts weight 0, computed via
/// [`min_dart_simple_dual_cycle`].
pub fn planar_directed_min_cut_reference(
    g: &PlanarGraph,
    edge_weights: &[Weight],
) -> Option<Weight> {
    let mut dart_w = vec![0; g.num_darts()];
    for (e, &w) in edge_weights.iter().enumerate() {
        dart_w[Dart::forward(e).index()] = w;
    }
    min_dart_simple_dual_cycle(g, &dart_w)
}

#[cfg(test)]
mod tests {
    use super::*;
    use duality_planar::gen;

    #[test]
    fn stoer_wagner_triangle() {
        // Triangle with weights 1, 2, 3: min cut isolates the vertex with
        // the two lightest incident edges.
        let w = vec![vec![0, 1, 2], vec![1, 0, 3], vec![2, 3, 0]];
        let (cut, side) = stoer_wagner(&w);
        assert_eq!(cut, 3); // cut {0} with edges 1 + 2
        let shore: Vec<usize> = (0..3).filter(|&v| side[v]).collect();
        assert!(shore == vec![0] || shore == vec![1, 2]);
    }

    #[test]
    fn stoer_wagner_two_clusters() {
        // Two triangles of weight-10 edges joined by a weight-1 bridge.
        let n = 6;
        let mut w = vec![vec![0; n]; n];
        for &(a, b) in &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)] {
            w[a][b] = 10;
            w[b][a] = 10;
        }
        w[2][3] = 1;
        w[3][2] = 1;
        let (cut, side) = stoer_wagner(&w);
        assert_eq!(cut, 1);
        let s: Vec<usize> = (0..n).filter(|&v| side[v]).collect();
        assert!(s == vec![0, 1, 2] || s == vec![3, 4, 5]);
    }

    #[test]
    fn brute_force_cut_on_directed_triangle() {
        let mut g = Digraph::new(3);
        g.add_arc(0, 1, 1);
        g.add_arc(1, 2, 1);
        g.add_arc(2, 0, 1);
        // Every singleton S has exactly one leaving arc.
        let (cut, _) = brute_force_directed_min_cut(&g);
        assert_eq!(cut, 1);
    }

    #[test]
    fn brute_force_cut_zero_when_not_strongly_connected() {
        let mut g = Digraph::new(3);
        g.add_arc(0, 1, 5);
        g.add_arc(1, 2, 5);
        let (cut, side) = brute_force_directed_min_cut(&g);
        assert_eq!(cut, 0);
        assert!(side.iter().any(|&b| b) && side.iter().any(|&b| !b));
    }

    #[test]
    fn dual_cycle_equals_brute_force_on_small_planar() {
        for seed in 0..5u64 {
            let g = gen::diag_grid(3, 3, seed).unwrap();
            let ew = gen::random_edge_weights(g.num_edges(), 1, 9, seed + 100);
            // Brute force on the primal digraph (forward direction only).
            let mut dg = Digraph::new(g.num_vertices());
            for (e, &w) in ew.iter().enumerate() {
                dg.add_arc(g.edge_tail(e), g.edge_head(e), w);
            }
            let (bf, _) = brute_force_directed_min_cut(&dg);
            let dual = planar_directed_min_cut_reference(&g, &ew).unwrap();
            assert_eq!(dual, bf, "seed {seed}");
        }
    }

    #[test]
    fn dual_cycle_on_trees_is_zero() {
        // A directed path is not strongly connected: some bipartition has
        // no leaving arc, so the min directed cut is 0 (the reversal
        // self-loop of any bridge).
        let g = gen::path(5).unwrap();
        let ew = vec![3; g.num_edges()];
        assert_eq!(planar_directed_min_cut_reference(&g, &ew), Some(0));
    }

    #[test]
    fn degenerate_pair_not_reported() {
        // Triangle, all weights 1, both directions: the min directed cut is
        // 1 (each singleton has 1 leaving forward arc... actually each
        // vertex has one outgoing forward arc plus reversal darts of weight
        // 0 are free). The degenerate pair {d, rev d} would claim weight 1
        // as well here, so use asymmetric weights to discriminate:
        let g = gen::cycle(3).unwrap();
        let ew = vec![5, 7, 9];
        // Cuts: the cycle is directed 0->1->2->0; singleton {0} leaves via
        // edge (0,1) weight 5 only; {1}: 7; {2}: 9; {0,1}: 7; etc. Min = 5.
        let got = planar_directed_min_cut_reference(&g, &ew).unwrap();
        let mut dg = Digraph::new(3);
        for (e, &w) in ew.iter().enumerate() {
            dg.add_arc(g.edge_tail(e), g.edge_head(e), w);
        }
        let (bf, _) = brute_force_directed_min_cut(&dg);
        assert_eq!(got, bf);
        assert_eq!(got, 5);
    }
}
