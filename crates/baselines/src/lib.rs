//! Centralized reference algorithms used to validate the distributed
//! pipeline, plus prior-work round-complexity formulas for comparison
//! curves.
//!
//! Nothing in this crate charges CONGEST rounds: these are the ground-truth
//! oracles the experiment harness and the test suites compare against.

pub mod cuts;
pub mod flow;
pub mod girth;
pub mod prior;
pub mod shortest_paths;
