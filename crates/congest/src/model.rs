//! The cost model: every CONGEST round charge in the workspace is produced
//! by a method of [`CostModel`].

use crate::Rounds;
use duality_planar::util::ceil_log2;

/// Charging rules for a CONGEST network with `n` vertices and hop diameter
/// `d`.
///
/// Two kinds of rules coexist (see `DESIGN.md` §3):
///
/// * **measured** rules take actually-executed quantities (tree depths,
///   message counts) and apply the model's pipelining arithmetic;
/// * **black-box** rules charge the paper's stated bound for subroutines the
///   paper itself uses as black boxes (shortcut construction, the
///   Ghaffari–Parter separator, the `n^{o(1)}` approximate-SSSP oracle).
///
/// # Example
///
/// ```
/// use duality_congest::CostModel;
///
/// let cm = CostModel::new(100, 18);
/// // Broadcasting 5 words over a tree of depth 18 is pipelined.
/// assert_eq!(cm.broadcast(18, 5), 18 + 5);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CostModel {
    /// Number of vertices of the communication network `G`.
    pub n: usize,
    /// Undirected unweighted (hop) diameter `D` of `G`.
    pub d: usize,
}

impl CostModel {
    /// Creates a cost model for an `n`-vertex network of hop diameter `d`.
    pub fn new(n: usize, d: usize) -> Self {
        CostModel { n, d }
    }

    /// `⌈log₂ n⌉` — the word size of the model; one word crosses one edge
    /// per round.
    pub fn log_n(&self) -> u64 {
        ceil_log2(self.n)
    }

    /// Measured: growing a BFS tree of depth `depth` costs `depth + 1`
    /// rounds (the root's wake-up round plus one frontier expansion per
    /// level).
    pub fn bfs(&self, depth: usize) -> Rounds {
        depth as Rounds + 1
    }

    /// Measured: pipelined broadcast (or upcast) of `words` distinct
    /// `O(log n)`-bit messages over a tree of depth `depth`:
    /// `depth + words` rounds.
    pub fn broadcast(&self, depth: usize, words: u64) -> Rounds {
        depth as Rounds + words
    }

    /// Measured: one converge-cast + broadcast over a global BFS tree of
    /// `G` (e.g. electing a vertex, taking a global min/max): `2(D+1)`.
    pub fn global_aggregate(&self) -> Rounds {
        2 * (self.d as Rounds + 1)
    }

    /// Black-box (paper, Corollary 4.6): one part-wise-aggregation task on a
    /// planar graph via low-congestion shortcuts of quality `Õ(D)` costs
    /// `O(D log n)` rounds; we charge `(D + 1) · ⌈log n⌉`.
    pub fn part_wise_aggregation(&self) -> Rounds {
        (self.d as Rounds + 1) * self.log_n()
    }

    /// Part-wise aggregation on the **dual** graph `G*` via the
    /// face-disjoint graph `Ĝ` (paper, Lemma 4.9): `Ĝ` has diameter `≤ 3D`
    /// and simulating a round of `Ĝ` costs 2 rounds on `G` (Properties 2–3
    /// of `Ĝ`), so a PA task costs `2 · (3D + 1) · ⌈log n⌉`.
    pub fn dual_part_wise_aggregation(&self) -> Rounds {
        2 * (3 * self.d as Rounds + 1) * self.log_n()
    }

    /// Black-box (paper, Lemma 4.8 + Theorem 4.10): simulating one round of
    /// a minor-aggregation algorithm on `G*` costs `Õ(D)` CONGEST rounds:
    /// the contraction step is `O(log n)` PA tasks, consensus and
    /// aggregation one PA task each.
    pub fn dual_minor_aggregation_round(&self) -> Rounds {
        (self.log_n() + 2) * self.dual_part_wise_aggregation()
    }

    /// Black-box (paper, Theorem 4.14): one round of the *extended* model
    /// with `beta` virtual nodes costs `beta` basic rounds.
    pub fn dual_extended_minor_aggregation_round(&self, beta: u64) -> Rounds {
        beta.max(1) * self.dual_minor_aggregation_round()
    }

    /// Black-box (paper, Lemma 5.1): constructing one level of the Bounded
    /// Diameter Decomposition (separator + child-bag identification) costs
    /// `Õ(D)` rounds; we charge `(D + 1) · ⌈log n⌉` per level.
    pub fn bdd_level(&self) -> Rounds {
        (self.d as Rounds + 1) * self.log_n()
    }

    /// Black-box (Li–Parter, used by Theorem 6.1): exact *primal* SSSP /
    /// reachability in planar graphs runs in `Õ(D²)` rounds; we charge
    /// `(D + 1)² · ⌈log n⌉`.
    pub fn li_parter_primal_sssp(&self) -> Rounds {
        (self.d as Rounds + 1).pow(2) * self.log_n()
    }

    /// Black-box (paper, Theorem 4.16 / Ghaffari–Zuzic): the exact min-cut
    /// minor-aggregation algorithm runs in `Õ(1)` minor-aggregation rounds;
    /// we charge `⌈log n⌉³` of them (tree packing × 2-respecting search).
    pub fn min_cut_minor_aggregation_rounds(&self) -> u64 {
        self.log_n().pow(3)
    }

    /// Black-box (paper / Rozhoň et al. + Zuzic et al.): the
    /// `(1+ε)`-approximate SSSP oracle runs in
    /// `O(log n) · ε⁻² · 2^{O((log n log log n)^{3/4})}` minor-aggregation
    /// rounds. With unit constants the `loglog` factor dwarfs `n` at
    /// simulator scales, so we charge the standard simplified
    /// `n^{o(1)} = 2^{(log n)^{3/4}}` shape (still subpolynomial and
    /// `D`-independent, which is what the experiments probe); `eps_inverse`
    /// is `1/ε` (use 1 for the exact-oracle substitution).
    pub fn approx_sssp_minor_aggregation_rounds(&self, eps_inverse: u64) -> u64 {
        let ln = self.log_n() as f64;
        let subpoly = ln.powf(0.75).exp2();
        (ln as u64).max(1) * eps_inverse * eps_inverse * subpoly.ceil() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measured_rules_are_exact_arithmetic() {
        let cm = CostModel::new(1024, 30);
        assert_eq!(cm.log_n(), 10);
        assert_eq!(cm.bfs(30), 31);
        assert_eq!(cm.broadcast(30, 100), 130);
        assert_eq!(cm.global_aggregate(), 62);
    }

    #[test]
    fn pa_scales_linearly_in_d() {
        let a = CostModel::new(1000, 10).part_wise_aggregation();
        let b = CostModel::new(1000, 20).part_wise_aggregation();
        assert!(b > a);
        assert!(b <= 2 * a);
        let da = CostModel::new(1000, 10).dual_part_wise_aggregation();
        assert!(da > a, "dual PA pays the Ĝ simulation overhead");
    }

    #[test]
    fn minor_agg_round_is_otilde_d() {
        let cm = CostModel::new(4096, 50);
        let r = cm.dual_minor_aggregation_round();
        // Õ(D): between D and D·polylog.
        assert!(r >= 50);
        assert!(r <= 50 * cm.log_n().pow(3));
        assert_eq!(
            cm.dual_extended_minor_aggregation_round(3),
            3 * cm.dual_minor_aggregation_round()
        );
        assert_eq!(
            cm.dual_extended_minor_aggregation_round(0),
            cm.dual_minor_aggregation_round(),
            "zero virtual nodes still costs one basic round"
        );
    }

    #[test]
    fn approx_sssp_is_subpolynomial_but_superlogarithmic() {
        let cm = CostModel::new(1 << 16, 40);
        let r = cm.approx_sssp_minor_aggregation_rounds(1);
        assert!(r > cm.log_n());
        assert!((r as f64) < (cm.n as f64), "n^{{o(1)}} ≪ n at this scale");
        // ε⁻² scaling.
        assert_eq!(
            cm.approx_sssp_minor_aggregation_rounds(4),
            16 * cm.approx_sssp_minor_aggregation_rounds(1)
        );
    }
}
