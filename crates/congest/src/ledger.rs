//! The round ledger: accumulates charges with a per-phase breakdown.

use crate::Rounds;

/// Accumulates CONGEST round charges, grouped by phase label.
///
/// Algorithms thread a `&mut CostLedger` through their execution; every
/// communication step charges rounds under a descriptive label, so the
/// experiment harness can report both the total and the breakdown (e.g. how
/// much of a max-flow run went into label broadcasts vs. BDD construction).
///
/// # Example
///
/// ```
/// use duality_congest::CostLedger;
///
/// let mut ledger = CostLedger::new();
/// ledger.charge("bfs", 31);
/// ledger.charge("broadcast-labels", 120);
/// ledger.charge("bfs", 31);
/// assert_eq!(ledger.total(), 182);
/// assert_eq!(ledger.phase_total("bfs"), 62);
/// ```
#[derive(Clone, Debug, Default)]
pub struct CostLedger {
    total: Rounds,
    phases: Vec<(String, Rounds)>,
}

impl CostLedger {
    /// Creates an empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Charges `rounds` under `phase`.
    pub fn charge(&mut self, phase: &str, rounds: Rounds) {
        self.total += rounds;
        if let Some(entry) = self.phases.iter_mut().rev().find(|(p, _)| p == phase) {
            entry.1 += rounds;
        } else {
            self.phases.push((phase.to_string(), rounds));
        }
    }

    /// Total rounds charged so far.
    pub fn total(&self) -> Rounds {
        self.total
    }

    /// Total rounds charged under `phase` (0 if the phase never occurred).
    pub fn phase_total(&self, phase: &str) -> Rounds {
        self.phases
            .iter()
            .filter(|(p, _)| p == phase)
            .map(|(_, r)| r)
            .sum()
    }

    /// The phase breakdown, in first-charge order.
    pub fn phases(&self) -> &[(String, Rounds)] {
        &self.phases
    }

    /// Merges another ledger into this one (phase-wise).
    pub fn absorb(&mut self, other: &CostLedger) {
        for (phase, rounds) in &other.phases {
            self.charge(phase, *rounds);
        }
    }
}

impl std::fmt::Display for CostLedger {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "total rounds: {}", self.total)?;
        for (phase, rounds) in &self.phases {
            writeln!(f, "  {phase}: {rounds}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charges_accumulate_per_phase() {
        let mut l = CostLedger::new();
        l.charge("a", 10);
        l.charge("b", 5);
        l.charge("a", 7);
        assert_eq!(l.total(), 22);
        assert_eq!(l.phase_total("a"), 17);
        assert_eq!(l.phase_total("b"), 5);
        assert_eq!(l.phase_total("missing"), 0);
        assert_eq!(l.phases().len(), 2);
    }

    #[test]
    fn absorb_merges() {
        let mut a = CostLedger::new();
        a.charge("x", 3);
        let mut b = CostLedger::new();
        b.charge("x", 4);
        b.charge("y", 1);
        a.absorb(&b);
        assert_eq!(a.total(), 8);
        assert_eq!(a.phase_total("x"), 7);
    }

    #[test]
    fn display_contains_breakdown() {
        let mut l = CostLedger::new();
        l.charge("bfs", 12);
        let s = l.to_string();
        assert!(s.contains("total rounds: 12"));
        assert!(s.contains("bfs: 12"));
    }
}
