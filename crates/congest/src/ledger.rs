//! The round ledger: accumulates charges with a per-phase breakdown.

use crate::Rounds;
use std::time::Instant;

/// Accumulates CONGEST round charges, grouped by phase label.
///
/// Algorithms thread a `&mut CostLedger` through their execution; every
/// communication step charges rounds under a descriptive label, so the
/// experiment harness can report both the total and the breakdown (e.g. how
/// much of a max-flow run went into label broadcasts vs. BDD construction).
///
/// Alongside the *model* cost (rounds), a ledger carries an optional
/// **wall-clock track**: microseconds charged per phase via
/// [`CostLedger::charge_us`] (usually through a [`PhaseTimer`]). The two
/// tracks are independent — rounds are deterministic and participate in
/// the replay/equality contracts, while elapsed µs are measurements and
/// are never compared for equality.
///
/// # Example
///
/// ```
/// use duality_congest::CostLedger;
///
/// let mut ledger = CostLedger::new();
/// ledger.charge("bfs", 31);
/// ledger.charge("broadcast-labels", 120);
/// ledger.charge("bfs", 31);
/// assert_eq!(ledger.total(), 182);
/// assert_eq!(ledger.phase_total("bfs"), 62);
/// ledger.charge_us("bfs", 40);
/// assert_eq!(ledger.elapsed_us(), 40);
/// ```
#[derive(Clone, Debug, Default)]
pub struct CostLedger {
    total: Rounds,
    phases: Vec<(String, Rounds)>,
    /// Wall-clock microseconds per phase, in first-charge order. Kept
    /// separate from `phases` so deterministic round accounting and
    /// nondeterministic timing never mix.
    elapsed: Vec<(String, u64)>,
}

impl CostLedger {
    /// Creates an empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Charges `rounds` under `phase`.
    pub fn charge(&mut self, phase: &str, rounds: Rounds) {
        self.total += rounds;
        if let Some(entry) = self.phases.iter_mut().rev().find(|(p, _)| p == phase) {
            entry.1 += rounds;
        } else {
            self.phases.push((phase.to_string(), rounds));
        }
    }

    /// Total rounds charged so far.
    pub fn total(&self) -> Rounds {
        self.total
    }

    /// Total rounds charged under `phase` (0 if the phase never occurred).
    pub fn phase_total(&self, phase: &str) -> Rounds {
        self.phases
            .iter()
            .filter(|(p, _)| p == phase)
            .map(|(_, r)| r)
            .sum()
    }

    /// The phase breakdown, in first-charge order.
    pub fn phases(&self) -> &[(String, Rounds)] {
        &self.phases
    }

    /// Charges `us` wall-clock microseconds under `phase` (the timing
    /// track; independent of the round track).
    pub fn charge_us(&mut self, phase: &str, us: u64) {
        if let Some(entry) = self.elapsed.iter_mut().rev().find(|(p, _)| p == phase) {
            entry.1 += us;
        } else {
            self.elapsed.push((phase.to_string(), us));
        }
    }

    /// Total wall-clock microseconds charged so far.
    pub fn elapsed_us(&self) -> u64 {
        self.elapsed.iter().map(|(_, us)| us).sum()
    }

    /// Wall-clock microseconds charged under `phase` (0 if never timed).
    pub fn phase_us(&self, phase: &str) -> u64 {
        self.elapsed
            .iter()
            .filter(|(p, _)| p == phase)
            .map(|(_, us)| us)
            .sum()
    }

    /// The wall-clock breakdown, in first-charge order.
    pub fn phases_us(&self) -> &[(String, u64)] {
        &self.elapsed
    }

    /// Merges another ledger into this one (phase-wise, both tracks).
    pub fn absorb(&mut self, other: &CostLedger) {
        for (phase, rounds) in &other.phases {
            self.charge(phase, *rounds);
        }
        for (phase, us) in &other.elapsed {
            self.charge_us(phase, *us);
        }
    }
}

impl std::fmt::Display for CostLedger {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "total rounds: {}", self.total)?;
        for (phase, rounds) in &self.phases {
            writeln!(f, "  {phase}: {rounds}")?;
        }
        Ok(())
    }
}

/// A wall-clock stopwatch for one build phase: start it where the phase
/// begins, [`stop`](PhaseTimer::stop) it into the ledger where the phase
/// ends. The measured microseconds land on the ledger's timing track
/// ([`CostLedger::charge_us`]) under the phase name — the instrument the
/// solver substrate uses to attribute build time to embed / dual / BDD /
/// labeling / weight-tier phases.
///
/// # Example
///
/// ```
/// use duality_congest::{CostLedger, PhaseTimer};
///
/// let mut ledger = CostLedger::new();
/// let timer = PhaseTimer::start("embed");
/// // ... the phase's work ...
/// timer.stop(&mut ledger);
/// assert_eq!(ledger.phases_us().len(), 1);
/// ```
#[derive(Debug)]
pub struct PhaseTimer {
    phase: &'static str,
    start: Instant,
}

impl PhaseTimer {
    /// Starts timing `phase` now.
    pub fn start(phase: &'static str) -> PhaseTimer {
        PhaseTimer {
            phase,
            start: Instant::now(),
        }
    }

    /// Stops the clock and charges the elapsed microseconds to `ledger`
    /// under the timer's phase name.
    pub fn stop(self, ledger: &mut CostLedger) {
        let us = u64::try_from(self.start.elapsed().as_micros()).unwrap_or(u64::MAX);
        ledger.charge_us(self.phase, us);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charges_accumulate_per_phase() {
        let mut l = CostLedger::new();
        l.charge("a", 10);
        l.charge("b", 5);
        l.charge("a", 7);
        assert_eq!(l.total(), 22);
        assert_eq!(l.phase_total("a"), 17);
        assert_eq!(l.phase_total("b"), 5);
        assert_eq!(l.phase_total("missing"), 0);
        assert_eq!(l.phases().len(), 2);
    }

    #[test]
    fn absorb_merges() {
        let mut a = CostLedger::new();
        a.charge("x", 3);
        let mut b = CostLedger::new();
        b.charge("x", 4);
        b.charge("y", 1);
        a.absorb(&b);
        assert_eq!(a.total(), 8);
        assert_eq!(a.phase_total("x"), 7);
    }

    #[test]
    fn wall_clock_track_accumulates_and_merges() {
        let mut l = CostLedger::new();
        l.charge_us("embed", 10);
        l.charge_us("dual", 5);
        l.charge_us("embed", 2);
        assert_eq!(l.elapsed_us(), 17);
        assert_eq!(l.phase_us("embed"), 12);
        assert_eq!(l.phase_us("missing"), 0);
        assert_eq!(
            l.phases_us(),
            &[("embed".to_string(), 12), ("dual".to_string(), 5)]
        );
        // The timing track never leaks into the round track.
        assert_eq!(l.total(), 0);

        let mut other = CostLedger::new();
        other.charge_us("dual", 1);
        other.charge("dual", 4);
        l.absorb(&other);
        assert_eq!(l.phase_us("dual"), 6);
        assert_eq!(l.total(), 4);
    }

    #[test]
    fn phase_timer_charges_its_phase() {
        let mut l = CostLedger::new();
        let t = PhaseTimer::start("bdd");
        t.stop(&mut l);
        assert_eq!(l.phases_us().len(), 1);
        assert_eq!(l.phases_us()[0].0, "bdd");
        // Rounds stay untouched by timing.
        assert_eq!(l.total(), 0);
    }

    #[test]
    fn display_contains_breakdown() {
        let mut l = CostLedger::new();
        l.charge("bfs", 12);
        let s = l.to_string();
        assert!(s.contains("total rounds: 12"));
        assert!(s.contains("bfs: 12"));
    }
}
