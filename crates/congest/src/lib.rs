//! CONGEST round accounting for the `duality` project.
//!
//! The paper's algorithms are analysed in the synchronous CONGEST model:
//! every round, each vertex may send one `O(log n)`-bit message over each
//! incident edge. This crate provides the **single place** where simulated
//! algorithms charge rounds:
//!
//! * [`CostModel`] — every charging rule (pipelined broadcast, part-wise
//!   aggregation via low-congestion shortcuts, minor-aggregation round
//!   simulation, black-box bounds for substituted subroutines) is a method
//!   here, so the accounting is auditable in one file;
//! * [`CostLedger`] — accumulates rounds with a per-phase breakdown;
//! * [`primitives`] — executable communication primitives (BFS trees,
//!   pipelined broadcasts) that *measure* their own cost from the actual
//!   tree depths and message counts.
//!
//! Charges are *measured* wherever the primitive is actually executed, and
//! follow the paper's stated bound for black-box substitutions (see
//! `DESIGN.md`, "Simulation fidelity and substitutions").

pub mod ledger;
pub mod model;
pub mod primitives;
pub mod report;
pub mod runtime;

pub use ledger::{CostLedger, PhaseTimer};
pub use model::CostModel;
pub use report::RoundReport;

/// Number of rounds, the paper's complexity measure.
pub type Rounds = u64;
