//! Executable communication primitives that measure their own round cost.
//!
//! These are the building blocks the simulated algorithms actually run:
//! growing BFS trees, pipelined broadcasts of word lists, global
//! aggregation, and undirected s–t dart paths. Each function takes the
//! [`CostModel`] and a [`CostLedger`] and charges the measured cost.

use crate::{CostLedger, CostModel};
use duality_planar::{Dart, PlanarGraph};

/// A BFS tree of (a subgraph of) the communication network.
#[derive(Clone, Debug)]
pub struct BfsTree {
    /// Root vertex.
    pub root: usize,
    /// `parent[v]` = dart entering `v` from its BFS parent (`None` at the
    /// root and for unreachable vertices).
    pub parent: Vec<Option<Dart>>,
    /// Hop depth per vertex (`usize::MAX` if unreachable).
    pub depth: Vec<usize>,
    /// Maximum finite depth.
    pub max_depth: usize,
}

impl BfsTree {
    /// Vertices reachable from the root.
    pub fn reached(&self) -> impl Iterator<Item = usize> + '_ {
        self.depth
            .iter()
            .enumerate()
            .filter(|(_, &d)| d != usize::MAX)
            .map(|(v, _)| v)
    }
}

/// Grows a BFS tree from `root` over the edges where `edge_present` holds,
/// charging `depth + 1` rounds under `phase`.
pub fn bfs_tree(
    g: &PlanarGraph,
    root: usize,
    edge_present: &dyn Fn(usize) -> bool,
    cm: &CostModel,
    ledger: &mut CostLedger,
    phase: &str,
) -> BfsTree {
    let (parent, depth) = g.bfs_restricted(root, edge_present);
    let max_depth = depth
        .iter()
        .copied()
        .filter(|&d| d != usize::MAX)
        .max()
        .unwrap_or(0);
    ledger.charge(phase, cm.bfs(max_depth));
    BfsTree {
        root,
        parent,
        depth,
        max_depth,
    }
}

/// Charges the cost of pipelining `words` distinct `O(log n)`-bit messages
/// over `tree` (broadcast or upcast): `depth + words` rounds.
pub fn pipelined_broadcast(
    tree: &BfsTree,
    words: u64,
    cm: &CostModel,
    ledger: &mut CostLedger,
    phase: &str,
) {
    ledger.charge(phase, cm.broadcast(tree.max_depth, words));
}

/// Global aggregation over a BFS tree of `G` (converge-cast + broadcast of a
/// constant number of words): elects the minimum-ID vertex satisfying
/// `pred`, or `None` if none does. Charges `2(D+1)` rounds.
pub fn elect_min_vertex(
    g: &PlanarGraph,
    pred: &dyn Fn(usize) -> bool,
    cm: &CostModel,
    ledger: &mut CostLedger,
    phase: &str,
) -> Option<usize> {
    ledger.charge(phase, cm.global_aggregate());
    (0..g.num_vertices()).find(|&v| pred(v))
}

/// Finds an s→t path of darts over the *undirected* graph via BFS from `s`
/// (paper, Section 6.1: the Miller–Naor path `P` "is a directed path of
/// darts but does not need to be a directed path of edges"). Charges the
/// BFS cost.
///
/// Returns the dart sequence from `s` to `t`, or `None` if unreachable
/// (cannot happen on connected graphs).
pub fn st_dart_path(
    g: &PlanarGraph,
    s: usize,
    t: usize,
    cm: &CostModel,
    ledger: &mut CostLedger,
    phase: &str,
) -> Option<Vec<Dart>> {
    let tree = bfs_tree(g, s, &|_| true, cm, ledger, phase);
    if tree.depth[t] == usize::MAX {
        return None;
    }
    let mut path = Vec::new();
    let mut v = t;
    while v != s {
        let d = tree.parent[v].expect("reached vertices have parents");
        path.push(d);
        v = g.tail(d);
    }
    path.reverse();
    Some(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use duality_planar::gen;

    #[test]
    fn bfs_tree_charges_depth_plus_one() {
        let g = gen::grid(5, 1).unwrap(); // path: depth from end = 4
        let cm = CostModel::new(g.num_vertices(), g.diameter());
        let mut ledger = CostLedger::new();
        let tree = bfs_tree(&g, 0, &|_| true, &cm, &mut ledger, "bfs");
        assert_eq!(tree.max_depth, 4);
        assert_eq!(ledger.total(), 5);
        assert_eq!(tree.reached().count(), 5);
    }

    #[test]
    fn pipelined_broadcast_adds_words() {
        let g = gen::grid(4, 4).unwrap();
        let cm = CostModel::new(g.num_vertices(), g.diameter());
        let mut ledger = CostLedger::new();
        let tree = bfs_tree(&g, 0, &|_| true, &cm, &mut ledger, "bfs");
        let before = ledger.total();
        pipelined_broadcast(&tree, 10, &cm, &mut ledger, "bcast");
        assert_eq!(ledger.total() - before, tree.max_depth as u64 + 10);
    }

    #[test]
    fn st_dart_path_is_valid_walk() {
        let g = gen::diag_grid(5, 4, 3).unwrap();
        let cm = CostModel::new(g.num_vertices(), g.diameter());
        let mut ledger = CostLedger::new();
        let (s, t) = (0, g.num_vertices() - 1);
        let path = st_dart_path(&g, s, t, &cm, &mut ledger, "path").unwrap();
        assert_eq!(g.tail(path[0]), s);
        assert_eq!(g.head(*path.last().unwrap()), t);
        for w in path.windows(2) {
            assert_eq!(g.head(w[0]), g.tail(w[1]));
        }
        assert!(ledger.total() > 0);
    }

    #[test]
    fn elect_min_vertex_finds_first_match() {
        let g = gen::grid(3, 3).unwrap();
        let cm = CostModel::new(g.num_vertices(), g.diameter());
        let mut ledger = CostLedger::new();
        let v = elect_min_vertex(&g, &|v| v >= 4, &cm, &mut ledger, "elect");
        assert_eq!(v, Some(4));
        assert_eq!(ledger.total(), cm.global_aggregate());
        let none = elect_min_vertex(&g, &|_| false, &cm, &mut ledger, "elect");
        assert_eq!(none, None);
    }
}
