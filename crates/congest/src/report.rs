//! The unified round report returned by every `PlanarSolver` query.

use crate::{CostLedger, Rounds};

/// CONGEST rounds for one solver query, split by how the work amortizes:
///
/// * **`substrate_topo`** — one-off artifacts keyed by the *embedding*
///   alone (BFS/diameter measurement, the embedded dual graph, the BDD
///   and dual bags). Built once per topology and shared by every solver
///   derived from it via `respec`.
/// * **`substrate_weight`** — one-off artifacts keyed by the current
///   *capacities/weights* (today: the dual distance labels at the
///   instance lengths that the global-cut pipeline consumes). Rebuilt on
///   every respec, but amortized across the queries of one spec.
/// * **`query`** — work charged by this call alone (marginal).
///
/// Both substrate ledgers are snapshots: every query on the same solver
/// reports the same substrate charges, so `query` is the marginal cost of
/// asking again — and across a respec sweep, `substrate_topo` is the part
/// of the bill that is charged exactly once.
///
/// # Example
///
/// ```
/// use duality_congest::{CostLedger, RoundReport};
///
/// let mut topo = CostLedger::new();
/// topo.charge("bdd-build", 120);
/// let mut weight = CostLedger::new();
/// weight.charge("labeling-broadcast", 80);
/// let mut query = CostLedger::new();
/// query.charge("labeling-broadcast", 300);
/// let report = RoundReport { substrate_topo: topo, substrate_weight: weight, query };
/// assert_eq!(report.total(), 500);
/// assert_eq!(report.substrate_total(), 200);
/// assert_eq!(report.query_total(), 300);
/// assert_eq!(report.into_ledger().total(), 500);
/// ```
#[derive(Clone, Debug, Default)]
pub struct RoundReport {
    /// Rounds charged while building the topology tier (amortized across
    /// every spec of the same embedding).
    pub substrate_topo: CostLedger,
    /// Rounds charged while building the weight tier (amortized across
    /// the queries of one spec; rebuilt on respec).
    pub substrate_weight: CostLedger,
    /// Rounds charged by this query alone (marginal).
    pub query: CostLedger,
}

impl RoundReport {
    /// Total rounds: both substrate tiers + query.
    pub fn total(&self) -> Rounds {
        self.substrate_topo.total() + self.substrate_weight.total() + self.query.total()
    }

    /// Rounds charged by this query alone.
    pub fn query_total(&self) -> Rounds {
        self.query.total()
    }

    /// Rounds charged for the shared substrate (both tiers).
    pub fn substrate_total(&self) -> Rounds {
        self.substrate_topo.total() + self.substrate_weight.total()
    }

    /// Rounds charged for the topology tier alone.
    pub fn substrate_topo_total(&self) -> Rounds {
        self.substrate_topo.total()
    }

    /// Rounds charged for the weight tier alone.
    pub fn substrate_weight_total(&self) -> Rounds {
        self.substrate_weight.total()
    }

    /// Wall-clock microseconds spent building the substrate (both tiers),
    /// as measured by the [`crate::PhaseTimer`]s inside the build. Zero
    /// when the build was never timed (e.g. hand-assembled reports).
    pub fn substrate_elapsed_us(&self) -> u64 {
        self.substrate_topo.elapsed_us() + self.substrate_weight.elapsed_us()
    }

    /// The substrate's wall-clock breakdown: topology-tier phases first,
    /// then weight-tier phases, in first-charge order.
    pub fn substrate_phases_us(&self) -> Vec<(String, u64)> {
        let mut out: Vec<(String, u64)> = self.substrate_topo.phases_us().to_vec();
        for (phase, us) in self.substrate_weight.phases_us() {
            out.push((phase.clone(), *us));
        }
        out
    }

    /// Total rounds charged under `phase` across all three shares.
    pub fn phase_total(&self, phase: &str) -> Rounds {
        self.substrate_topo.phase_total(phase)
            + self.substrate_weight.phase_total(phase)
            + self.query.phase_total(phase)
    }

    /// Merges another report into this one, tier by tier: topology into
    /// topology, weight into weight, query into query. This is the
    /// cross-solver (and cross-shard) aggregation primitive — where
    /// [`RoundReport::batched`] bills many queries of **one** solver
    /// against one substrate snapshot, `absorb` sums the bills of
    /// **independent** solvers (different instances, different pool
    /// shards), each of which legitimately paid its own substrate.
    ///
    /// # Example
    ///
    /// ```
    /// use duality_congest::{CostLedger, RoundReport};
    ///
    /// let mut shard0 = RoundReport::default();
    /// shard0.substrate_topo.charge("bdd-build", 120);
    /// shard0.query.charge("labeling-broadcast", 300);
    /// let mut shard1 = RoundReport::default();
    /// shard1.substrate_topo.charge("bdd-build", 80);
    /// shard1.query.charge("labeling-broadcast", 100);
    ///
    /// let mut fleet = shard0;
    /// fleet.absorb(&shard1);
    /// assert_eq!(fleet.substrate_total(), 200);
    /// assert_eq!(fleet.query_total(), 400);
    /// ```
    pub fn absorb(&mut self, other: &RoundReport) {
        self.substrate_topo.absorb(&other.substrate_topo);
        self.substrate_weight.absorb(&other.substrate_weight);
        self.query.absorb(&other.query);
    }

    /// Flattens the report into a single ledger (topology phases first,
    /// then weight, then query), the shape the pre-solver free functions
    /// report.
    pub fn into_ledger(self) -> CostLedger {
        let mut out = self.substrate_topo;
        out.absorb(&self.substrate_weight);
        out.absorb(&self.query);
        out
    }

    /// Merges a batch of per-query marginal ledgers against **one** pair
    /// of substrate snapshots — the bill of a deduplicated solver batch:
    /// each substrate tier is charged exactly once, the query share is the
    /// sum of the executed queries' marginal shares.
    ///
    /// # Example
    ///
    /// ```
    /// use duality_congest::{CostLedger, RoundReport};
    ///
    /// let mut topo = CostLedger::new();
    /// topo.charge("bdd-build", 120);
    /// let mut q1 = CostLedger::new();
    /// q1.charge("labeling-broadcast", 300);
    /// let mut q2 = CostLedger::new();
    /// q2.charge("labeling-broadcast", 200);
    /// let merged = RoundReport::batched(topo, CostLedger::new(), [&q1, &q2]);
    /// assert_eq!(merged.substrate_total(), 120); // charged once
    /// assert_eq!(merged.query_total(), 500);
    /// ```
    pub fn batched<'a>(
        substrate_topo: CostLedger,
        substrate_weight: CostLedger,
        marginals: impl IntoIterator<Item = &'a CostLedger>,
    ) -> RoundReport {
        let mut query = CostLedger::new();
        for m in marginals {
            query.absorb(m);
        }
        RoundReport {
            substrate_topo,
            substrate_weight,
            query,
        }
    }
}

impl std::fmt::Display for RoundReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "total rounds: {} (substrate {} = topo {} + weight {}, query {})",
            self.total(),
            self.substrate_total(),
            self.substrate_topo.total(),
            self.substrate_weight.total(),
            self.query.total()
        )?;
        for (phase, rounds) in self.substrate_topo.phases() {
            writeln!(f, "  [topo] {phase}: {rounds}")?;
        }
        for (phase, rounds) in self.substrate_weight.phases() {
            writeln!(f, "  [weight] {phase}: {rounds}")?;
        }
        for (phase, rounds) in self.query.phases() {
            writeln!(f, "  [query] {phase}: {rounds}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> RoundReport {
        let mut topo = CostLedger::new();
        topo.charge("bdd-build", 10);
        topo.charge("bdd-face-ids", 5);
        let mut weight = CostLedger::new();
        weight.charge("labeling-broadcast", 7);
        let mut query = CostLedger::new();
        query.charge("labeling-broadcast", 100);
        query.charge("bdd-build", 1);
        RoundReport {
            substrate_topo: topo,
            substrate_weight: weight,
            query,
        }
    }

    #[test]
    fn totals_split_and_merge() {
        let r = report();
        assert_eq!(r.total(), 123);
        assert_eq!(r.substrate_total(), 22);
        assert_eq!(r.substrate_topo_total(), 15);
        assert_eq!(r.substrate_weight_total(), 7);
        assert_eq!(r.query_total(), 101);
        assert_eq!(r.phase_total("bdd-build"), 11);
        assert_eq!(r.phase_total("labeling-broadcast"), 107);
        let merged = r.into_ledger();
        assert_eq!(merged.total(), 123);
        assert_eq!(merged.phase_total("bdd-build"), 11);
    }

    #[test]
    fn batched_charges_each_substrate_tier_once() {
        let r1 = report();
        let r2 = report();
        let merged = RoundReport::batched(
            r1.substrate_topo.clone(),
            r1.substrate_weight.clone(),
            [&r1.query, &r2.query],
        );
        assert_eq!(merged.substrate_topo_total(), 15, "one topo share");
        assert_eq!(merged.substrate_weight_total(), 7, "one weight share");
        assert_eq!(merged.query_total(), 202, "marginals sum");
        assert_eq!(merged.phase_total("bdd-build"), 12);
        let empty = RoundReport::batched(r1.substrate_topo.clone(), CostLedger::new(), []);
        assert_eq!(empty.query_total(), 0);
        assert_eq!(empty.substrate_total(), 15);
    }

    #[test]
    fn absorb_merges_tier_by_tier() {
        let mut total = report();
        total.absorb(&report());
        assert_eq!(total.substrate_topo_total(), 30, "topo summed");
        assert_eq!(total.substrate_weight_total(), 14, "weight summed");
        assert_eq!(total.query_total(), 202, "query summed");
        assert_eq!(total.phase_total("bdd-build"), 22);
        // Absorbing an empty report is a no-op.
        let before = total.total();
        total.absorb(&RoundReport::default());
        assert_eq!(total.total(), before);
    }

    #[test]
    fn substrate_wall_clock_spans_both_tiers() {
        let mut r = report();
        r.substrate_topo.charge_us("embed", 30);
        r.substrate_topo.charge_us("bdd", 20);
        r.substrate_weight.charge_us("labeling", 9);
        r.query.charge_us("query", 100); // query time is not substrate time
        assert_eq!(r.substrate_elapsed_us(), 59);
        assert_eq!(
            r.substrate_phases_us(),
            vec![
                ("embed".to_string(), 30),
                ("bdd".to_string(), 20),
                ("labeling".to_string(), 9)
            ]
        );
    }

    #[test]
    fn display_shows_all_three_shares() {
        let s = report().to_string();
        assert!(s.contains("substrate 22 = topo 15 + weight 7"));
        assert!(s.contains("[topo] bdd-build: 10"));
        assert!(s.contains("[weight] labeling-broadcast: 7"));
        assert!(s.contains("[query] labeling-broadcast: 100"));
    }
}
