//! The unified round report returned by every `PlanarSolver` query.

use crate::{CostLedger, Rounds};

/// CONGEST rounds for one solver query, split into the **substrate** share
/// (one-off artifacts — BFS/diameter measurement, the BDD and dual bags —
/// built once per solver and amortized across queries) and the **query**
/// share (work charged by this call alone).
///
/// The substrate ledger is a snapshot: every query on the same solver
/// reports the same substrate charges, so `query` is the marginal cost of
/// asking again.
///
/// # Example
///
/// ```
/// use duality_congest::{CostLedger, RoundReport};
///
/// let mut substrate = CostLedger::new();
/// substrate.charge("bdd-build", 120);
/// let mut query = CostLedger::new();
/// query.charge("labeling-broadcast", 300);
/// let report = RoundReport { substrate, query };
/// assert_eq!(report.total(), 420);
/// assert_eq!(report.query_total(), 300);
/// assert_eq!(report.into_ledger().total(), 420);
/// ```
#[derive(Clone, Debug, Default)]
pub struct RoundReport {
    /// Rounds charged while building the shared substrate (amortized).
    pub substrate: CostLedger,
    /// Rounds charged by this query alone (marginal).
    pub query: CostLedger,
}

impl RoundReport {
    /// Total rounds: substrate + query.
    pub fn total(&self) -> Rounds {
        self.substrate.total() + self.query.total()
    }

    /// Rounds charged by this query alone.
    pub fn query_total(&self) -> Rounds {
        self.query.total()
    }

    /// Rounds charged for the shared substrate.
    pub fn substrate_total(&self) -> Rounds {
        self.substrate.total()
    }

    /// Total rounds charged under `phase` across both shares.
    pub fn phase_total(&self, phase: &str) -> Rounds {
        self.substrate.phase_total(phase) + self.query.phase_total(phase)
    }

    /// Flattens the report into a single ledger (substrate phases first),
    /// the shape the pre-solver free functions report.
    pub fn into_ledger(self) -> CostLedger {
        let mut out = self.substrate;
        out.absorb(&self.query);
        out
    }

    /// Merges a batch of per-query marginal ledgers against **one**
    /// substrate snapshot — the bill of a deduplicated solver batch: the
    /// substrate is charged exactly once, the query share is the sum of
    /// the executed queries' marginal shares.
    ///
    /// # Example
    ///
    /// ```
    /// use duality_congest::{CostLedger, RoundReport};
    ///
    /// let mut substrate = CostLedger::new();
    /// substrate.charge("bdd-build", 120);
    /// let mut q1 = CostLedger::new();
    /// q1.charge("labeling-broadcast", 300);
    /// let mut q2 = CostLedger::new();
    /// q2.charge("labeling-broadcast", 200);
    /// let merged = RoundReport::batched(substrate, [&q1, &q2]);
    /// assert_eq!(merged.substrate_total(), 120); // charged once
    /// assert_eq!(merged.query_total(), 500);
    /// ```
    pub fn batched<'a>(
        substrate: CostLedger,
        marginals: impl IntoIterator<Item = &'a CostLedger>,
    ) -> RoundReport {
        let mut query = CostLedger::new();
        for m in marginals {
            query.absorb(m);
        }
        RoundReport { substrate, query }
    }
}

impl std::fmt::Display for RoundReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "total rounds: {} (substrate {}, query {})",
            self.total(),
            self.substrate.total(),
            self.query.total()
        )?;
        for (phase, rounds) in self.substrate.phases() {
            writeln!(f, "  [substrate] {phase}: {rounds}")?;
        }
        for (phase, rounds) in self.query.phases() {
            writeln!(f, "  [query] {phase}: {rounds}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> RoundReport {
        let mut substrate = CostLedger::new();
        substrate.charge("bdd-build", 10);
        substrate.charge("bdd-face-ids", 5);
        let mut query = CostLedger::new();
        query.charge("labeling-broadcast", 100);
        query.charge("bdd-build", 1);
        RoundReport { substrate, query }
    }

    #[test]
    fn totals_split_and_merge() {
        let r = report();
        assert_eq!(r.total(), 116);
        assert_eq!(r.substrate_total(), 15);
        assert_eq!(r.query_total(), 101);
        assert_eq!(r.phase_total("bdd-build"), 11);
        let merged = r.into_ledger();
        assert_eq!(merged.total(), 116);
        assert_eq!(merged.phase_total("bdd-build"), 11);
    }

    #[test]
    fn batched_charges_substrate_once() {
        let r1 = report();
        let r2 = report();
        let merged = RoundReport::batched(r1.substrate.clone(), [&r1.query, &r2.query]);
        assert_eq!(merged.substrate_total(), 15, "one substrate share");
        assert_eq!(merged.query_total(), 202, "marginals sum");
        assert_eq!(merged.phase_total("bdd-build"), 12);
        let empty = RoundReport::batched(r1.substrate.clone(), []);
        assert_eq!(empty.query_total(), 0);
        assert_eq!(empty.substrate_total(), 15);
    }

    #[test]
    fn display_shows_both_shares() {
        let s = report().to_string();
        assert!(s.contains("substrate 15"));
        assert!(s.contains("[query] labeling-broadcast: 100"));
    }
}
