//! An *executable* synchronous CONGEST runtime.
//!
//! Most of the workspace charges rounds through [`crate::CostModel`]'s
//! arithmetic; this module provides the ground truth that arithmetic is
//! calibrated against: a real message-passing simulator in which vertex
//! programs exchange `O(log n)`-bit messages over the edges of the network
//! in synchronous rounds. The message width is enforced (a message is one
//! `u64` word plus a small tag), and the runtime counts rounds and
//! messages exactly.
//!
//! Provided programs — BFS tree growth, pipelined tree broadcast, and
//! converge-cast aggregation — are executed here and compared against the
//! corresponding [`crate::CostModel`] charges in the test-suite, closing
//! the loop between "measured arithmetic" and "actually executed".

use duality_planar::{Dart, PlanarGraph};

/// One `O(log n)`-bit CONGEST message: a tag and a word.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Message {
    /// Small protocol tag (counts toward the `O(log n)` bits).
    pub tag: u8,
    /// Payload word.
    pub word: u64,
}

/// A synchronous vertex program. Each round, every vertex sees the messages
/// that arrived on its incident darts and emits at most one message per
/// incident out-dart.
pub trait VertexProgram {
    /// Per-vertex mutable state.
    type State: Clone;

    /// Initial state of vertex `v`.
    fn init(&self, v: usize, g: &PlanarGraph) -> Self::State;

    /// One synchronous round: `inbox` holds `(arriving dart, message)`
    /// pairs (the dart points *into* the vertex); returns messages to send
    /// as `(outgoing dart, message)` pairs. Returning no messages from any
    /// vertex for a full round terminates the run.
    fn step(
        &self,
        v: usize,
        state: &mut Self::State,
        inbox: &[(Dart, Message)],
        g: &PlanarGraph,
        round: u64,
    ) -> Vec<(Dart, Message)>;
}

/// Result of executing a program to quiescence.
#[derive(Clone, Debug)]
pub struct Execution<S> {
    /// Final per-vertex states.
    pub states: Vec<S>,
    /// Number of synchronous rounds until quiescence.
    pub rounds: u64,
    /// Total messages delivered.
    pub messages: u64,
}

/// Runs `program` on the network until no messages are sent for a round
/// (or `max_rounds` is hit, which panics — programs must terminate).
///
/// # Panics
///
/// Panics if a vertex emits two messages on the same dart in one round
/// (the CONGEST bandwidth constraint) or the round limit is exceeded.
pub fn run<P: VertexProgram>(g: &PlanarGraph, program: &P, max_rounds: u64) -> Execution<P::State> {
    let n = g.num_vertices();
    let mut states: Vec<P::State> = (0..n).map(|v| program.init(v, g)).collect();
    let mut inboxes: Vec<Vec<(Dart, Message)>> = vec![Vec::new(); n];
    let mut rounds = 0;
    let mut messages = 0u64;
    loop {
        assert!(rounds < max_rounds, "program exceeded {max_rounds} rounds");
        let mut outboxes: Vec<Vec<(Dart, Message)>> = vec![Vec::new(); n];
        let mut any = false;
        for v in 0..n {
            let inbox = std::mem::take(&mut inboxes[v]);
            let out = program.step(v, &mut states[v], &inbox, g, rounds);
            if !out.is_empty() {
                any = true;
            }
            // Bandwidth check: one message per dart per round.
            let mut used: Vec<Dart> = out.iter().map(|&(d, _)| d).collect();
            used.sort_unstable();
            let before = used.len();
            used.dedup();
            assert_eq!(before, used.len(), "vertex {v} oversubscribed a dart");
            for &(d, _) in &out {
                assert_eq!(g.tail(d), v, "vertex {v} sent on a non-incident dart");
            }
            outboxes[v] = out;
        }
        if !any && rounds > 0 {
            return Execution {
                states,
                rounds,
                messages,
            };
        }
        for v in 0..n {
            for (d, m) in std::mem::take(&mut outboxes[v]) {
                messages += 1;
                inboxes[g.head(d)].push((d, m));
            }
        }
        rounds += 1;
    }
}

/// BFS tree growth from a root: the classic flooding program. Terminates
/// in `depth + 1` rounds.
pub struct BfsProgram {
    /// The BFS root.
    pub root: usize,
}

/// Per-vertex BFS state.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BfsState {
    /// Hop distance from the root (`u64::MAX` until reached).
    pub depth: u64,
    /// The dart the first wave arrived on (None at the root).
    pub parent: Option<Dart>,
    joined: bool,
}

impl VertexProgram for BfsProgram {
    type State = BfsState;

    fn init(&self, v: usize, _g: &PlanarGraph) -> BfsState {
        BfsState {
            depth: if v == self.root { 0 } else { u64::MAX },
            parent: None,
            joined: false,
        }
    }

    fn step(
        &self,
        v: usize,
        state: &mut BfsState,
        inbox: &[(Dart, Message)],
        g: &PlanarGraph,
        _round: u64,
    ) -> Vec<(Dart, Message)> {
        if state.depth == u64::MAX {
            if let Some(&(d, m)) = inbox.iter().min_by_key(|(d, _)| d.index()) {
                state.depth = m.word + 1;
                state.parent = Some(d);
            } else {
                return Vec::new();
            }
        }
        if state.joined {
            return Vec::new();
        }
        state.joined = true;
        g.out_darts(v)
            .iter()
            .map(|&d| {
                (
                    d,
                    Message {
                        tag: 0,
                        word: state.depth,
                    },
                )
            })
            .collect()
    }
}

/// Pipelined broadcast of `k` words down a BFS tree: the root injects one
/// word per round; every vertex forwards what it received last round to
/// its tree children. Terminates in `depth + k` rounds — exactly the
/// [`crate::CostModel::broadcast`] formula.
pub struct PipelinedBroadcast<'a> {
    /// The root of the (precomputed) tree.
    pub root: usize,
    /// Parent dart per vertex (dart pointing into the vertex).
    pub parent: &'a [Option<Dart>],
    /// The words to broadcast.
    pub words: &'a [u64],
}

/// State: the words received so far.
#[derive(Clone, Debug, Default)]
pub struct BroadcastState {
    /// Received words in order.
    pub received: Vec<u64>,
    sent: usize,
}

impl VertexProgram for PipelinedBroadcast<'_> {
    type State = BroadcastState;

    fn init(&self, v: usize, _g: &PlanarGraph) -> BroadcastState {
        BroadcastState {
            received: if v == self.root {
                self.words.to_vec()
            } else {
                Vec::new()
            },
            sent: 0,
        }
    }

    fn step(
        &self,
        v: usize,
        state: &mut BroadcastState,
        inbox: &[(Dart, Message)],
        g: &PlanarGraph,
        _round: u64,
    ) -> Vec<(Dart, Message)> {
        for &(_, m) in inbox {
            state.received.push(m.word);
        }
        if state.sent >= state.received.len() {
            return Vec::new();
        }
        let word = state.received[state.sent];
        state.sent += 1;
        // Send to tree children: neighbors whose parent dart comes from v.
        g.out_darts(v)
            .iter()
            .filter(|&&d| self.parent[g.head(d)] == Some(d))
            .map(|&d| (d, Message { tag: 1, word }))
            .collect()
    }
}

/// Converge-cast: every vertex holds a word; the root learns the
/// `op`-aggregate over the tree in `depth + 1` rounds (`op` is encoded as
/// min here — sufficient for calibration).
pub struct ConvergeCastMin<'a> {
    /// Parent dart per vertex.
    pub parent: &'a [Option<Dart>],
    /// Number of tree children per vertex.
    pub children: &'a [usize],
    /// Input word per vertex.
    pub inputs: &'a [u64],
}

/// State: pending children + running minimum.
#[derive(Clone, Debug)]
pub struct ConvergeState {
    /// Children yet to report.
    pub waiting: usize,
    /// Running minimum.
    pub acc: u64,
    done: bool,
}

impl VertexProgram for ConvergeCastMin<'_> {
    type State = ConvergeState;

    fn init(&self, v: usize, _g: &PlanarGraph) -> ConvergeState {
        ConvergeState {
            waiting: self.children[v],
            acc: self.inputs[v],
            done: false,
        }
    }

    fn step(
        &self,
        v: usize,
        state: &mut ConvergeState,
        inbox: &[(Dart, Message)],
        _g: &PlanarGraph,
        _round: u64,
    ) -> Vec<(Dart, Message)> {
        for &(_, m) in inbox {
            state.acc = state.acc.min(m.word);
            state.waiting -= 1;
        }
        if state.done || state.waiting > 0 {
            return Vec::new();
        }
        state.done = true;
        match self.parent[v] {
            Some(d) => vec![(
                d.rev(),
                Message {
                    tag: 2,
                    word: state.acc,
                },
            )],
            None => Vec::new(), // the root holds the answer
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CostModel;
    use duality_planar::gen;

    #[test]
    fn bfs_program_matches_centralized_bfs() {
        let g = gen::diag_grid(6, 5, 3).unwrap();
        let exec = run(&g, &BfsProgram { root: 0 }, 1000);
        let (_, depth) = g.bfs(0);
        for v in 0..g.num_vertices() {
            assert_eq!(exec.states[v].depth, depth[v] as u64, "vertex {v}");
        }
    }

    #[test]
    fn bfs_round_count_matches_cost_model() {
        let g = gen::grid(7, 3).unwrap();
        let exec = run(&g, &BfsProgram { root: 0 }, 1000);
        let cm = CostModel::new(g.num_vertices(), g.diameter());
        let ecc = g.eccentricity(0);
        // The executed program needs depth+2 rounds (the final quiescence
        // check costs one) — within one round of the charged formula.
        assert!(exec.rounds >= cm.bfs(ecc));
        assert!(exec.rounds <= cm.bfs(ecc) + 1);
    }

    #[test]
    fn pipelined_broadcast_is_depth_plus_k() {
        let g = gen::grid(8, 2).unwrap();
        let (parent, depth) = g.bfs(0);
        let words: Vec<u64> = (100..120).collect();
        let prog = PipelinedBroadcast {
            root: 0,
            parent: &parent,
            words: &words,
        };
        let exec = run(&g, &prog, 1000);
        // Every vertex received every word, in order.
        for v in 0..g.num_vertices() {
            assert_eq!(exec.states[v].received, words, "vertex {v}");
        }
        let max_depth = *depth.iter().max().unwrap() as u64;
        let cm = CostModel::new(g.num_vertices(), g.diameter());
        let charged = cm.broadcast(max_depth as usize, words.len() as u64);
        assert!(
            exec.rounds <= charged + 2 && exec.rounds + 2 >= charged,
            "executed {} vs charged {charged}",
            exec.rounds
        );
    }

    #[test]
    fn converge_cast_finds_minimum() {
        let g = gen::diag_grid(5, 4, 9).unwrap();
        let (parent, _) = g.bfs(0);
        let mut children = vec![0usize; g.num_vertices()];
        for v in 0..g.num_vertices() {
            if let Some(d) = parent[v] {
                children[g.tail(d)] += 1;
            }
        }
        let inputs: Vec<u64> = (0..g.num_vertices() as u64)
            .map(|v| 1000 - v * 7 % 97)
            .collect();
        let prog = ConvergeCastMin {
            parent: &parent,
            children: &children,
            inputs: &inputs,
        };
        let exec = run(&g, &prog, 1000);
        assert_eq!(exec.states[0].acc, *inputs.iter().min().unwrap());
    }

    #[test]
    fn bandwidth_violation_panics() {
        struct Bad;
        impl VertexProgram for Bad {
            type State = ();
            fn init(&self, _: usize, _: &PlanarGraph) {}
            fn step(
                &self,
                v: usize,
                _: &mut (),
                _: &[(Dart, Message)],
                g: &PlanarGraph,
                round: u64,
            ) -> Vec<(Dart, Message)> {
                if v == 0 && round == 0 {
                    let d = g.out_darts(0)[0];
                    return vec![
                        (d, Message { tag: 0, word: 1 }),
                        (d, Message { tag: 0, word: 2 }),
                    ];
                }
                Vec::new()
            }
        }
        let g = gen::grid(2, 2).unwrap();
        let result = std::panic::catch_unwind(|| run(&g, &Bad, 10));
        assert!(result.is_err());
    }

    #[test]
    fn message_totals_are_counted() {
        let g = gen::grid(3, 3).unwrap();
        let exec = run(&g, &BfsProgram { root: 4 }, 100);
        // Every vertex floods all incident darts exactly once.
        assert_eq!(exec.messages, g.num_darts() as u64);
    }
}

/// Subtree sums by leaf pruning: every vertex holds a word; upon
/// completion each vertex knows the sum over its subtree of a given rooted
/// tree. This is the primitive the paper's Hassin pipeline uses on the
/// dual SSSP tree (Section 6.1, "tree ancestor sums" are computed from the
/// same converge-cast); executed here as a real message-passing program in
/// `O(tree depth)` rounds.
pub struct SubtreeSumProgram<'a> {
    /// Parent dart per vertex (dart pointing into the vertex; `None` at
    /// the root).
    pub parent: &'a [Option<Dart>],
    /// Number of tree children per vertex.
    pub children: &'a [usize],
    /// Input word per vertex.
    pub inputs: &'a [u64],
}

/// State of [`SubtreeSumProgram`].
#[derive(Clone, Debug)]
pub struct SubtreeSumState {
    /// Children yet to report.
    pub waiting: usize,
    /// The subtree sum (final once `waiting == 0` and the report is sent).
    pub sum: u64,
    reported: bool,
}

impl VertexProgram for SubtreeSumProgram<'_> {
    type State = SubtreeSumState;

    fn init(&self, v: usize, _g: &PlanarGraph) -> SubtreeSumState {
        SubtreeSumState {
            waiting: self.children[v],
            sum: self.inputs[v],
            reported: false,
        }
    }

    fn step(
        &self,
        v: usize,
        state: &mut SubtreeSumState,
        inbox: &[(Dart, Message)],
        _g: &PlanarGraph,
        _round: u64,
    ) -> Vec<(Dart, Message)> {
        for &(_, m) in inbox {
            state.sum += m.word;
            state.waiting -= 1;
        }
        if state.reported || state.waiting > 0 {
            return Vec::new();
        }
        state.reported = true;
        match self.parent[v] {
            Some(d) => vec![(
                d.rev(),
                Message {
                    tag: 3,
                    word: state.sum,
                },
            )],
            None => Vec::new(),
        }
    }
}

#[cfg(test)]
mod subtree_tests {
    use super::*;
    use duality_planar::gen;

    #[test]
    fn subtree_sums_match_recursive_reference() {
        let g = gen::diag_grid(6, 4, 5).unwrap();
        let (parent, _) = g.bfs(0);
        let n = g.num_vertices();
        let mut children = vec![0usize; n];
        for v in 0..n {
            if let Some(d) = parent[v] {
                children[g.tail(d)] += 1;
            }
        }
        let inputs: Vec<u64> = (0..n as u64).map(|v| v * 3 + 1).collect();
        let prog = SubtreeSumProgram {
            parent: &parent,
            children: &children,
            inputs: &inputs,
        };
        let exec = run(&g, &prog, 1000);
        // Reference: accumulate bottom-up by depth.
        let (_, depth) = g.bfs(0);
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by_key(|&v| std::cmp::Reverse(depth[v]));
        let mut want = inputs.clone();
        for &v in &order {
            if let Some(d) = parent[v] {
                let w = want[v];
                want[g.tail(d)] += w;
            }
        }
        for v in 0..n {
            assert_eq!(exec.states[v].sum, want[v], "vertex {v}");
        }
        // The root's sum is the global total.
        assert_eq!(exec.states[0].sum, inputs.iter().sum::<u64>());
    }

    #[test]
    fn subtree_sums_terminate_in_depth_rounds() {
        let g = gen::grid(10, 2).unwrap();
        let (parent, depth) = g.bfs(0);
        let n = g.num_vertices();
        let mut children = vec![0usize; n];
        for v in 0..n {
            if let Some(d) = parent[v] {
                children[g.tail(d)] += 1;
            }
        }
        let inputs = vec![1u64; n];
        let prog = SubtreeSumProgram {
            parent: &parent,
            children: &children,
            inputs: &inputs,
        };
        let exec = run(&g, &prog, 1000);
        let max_depth = *depth.iter().max().unwrap() as u64;
        assert!(exec.rounds <= max_depth + 2);
    }
}
