//! The face-disjoint graph `Ĝ` and part-wise aggregation on the dual graph.
//!
//! `Ĝ` (paper, Section 3) is the communication overlay that lets the planar
//! network `G` simulate computations on its dual `G*`: every vertex `v` of
//! `G` is replicated into a *star center* plus one copy per *local region*
//! (corner between consecutive incident edges), so that the faces of `G`
//! map to **vertex- and edge-disjoint** cycles of `Ĝ[E_R]`. The edge set is
//! `E_S ∪ E_R ∪ E_C`:
//!
//! * `E_S` — star edges `(v, v_i)`;
//! * `E_R` — one edge per dart `d`, connecting the two corners the boundary
//!   walk of `face(d)` passes through when traversing `d` (so each face of
//!   `G` becomes a disjoint cycle in `Ĝ[E_R]`);
//! * `E_C` — one edge per primal edge `e`, connecting the two corners
//!   flanking `e` at its higher-ID endpoint; these map 1-to-1 to the dual
//!   edges `e*` (Property 5), which is the modification this paper makes to
//!   the original construction of Ghaffari–Parter.
//!
//! On top of `Ĝ`, [`part_wise_aggregate`] solves the part-wise aggregation
//! (PA) problem on `G*` (paper, Lemma 4.9) in `Õ(D)` CONGEST rounds.

use duality_congest::{CostLedger, CostModel};
use duality_planar::{Dart, FaceId, PlanarGraph};
use std::collections::HashMap;

/// The face-disjoint graph `Ĝ` of an embedded planar graph.
///
/// # Example
///
/// ```
/// use duality_overlay::FaceDisjointGraph;
/// use duality_planar::gen;
///
/// let g = gen::grid(3, 3).unwrap();
/// let hat = FaceDisjointGraph::new(&g);
/// // Faces of G map 1-1 to the cycles of Ĝ[E_R].
/// assert_eq!(hat.num_face_cycles(), g.num_faces());
/// ```
#[derive(Clone, Debug)]
pub struct FaceDisjointGraph {
    n: usize,
    /// Prefix sums of degrees: copy `(v, i)` has id `n + offset[v] + i`.
    offset: Vec<usize>,
    degree: Vec<usize>,
    /// Adjacency lists over all of `E_S ∪ E_R ∪ E_C`.
    adj: Vec<Vec<usize>>,
    /// `er_edge_of_dart[d]` = the `E_R` edge `(a, b)` representing dart `d`.
    er_edge_of_dart: Vec<(usize, usize)>,
    /// `ec_edge_of_edge[e]` = the `E_C` edge `(a, b)` representing `e*`.
    ec_edge_of_edge: Vec<(usize, usize)>,
    /// Component of `Ĝ[E_R]` per copy vertex (star centers get `u32::MAX`).
    er_component: Vec<u32>,
    /// The face of `G` corresponding to each `E_R` component.
    component_face: Vec<FaceId>,
}

impl FaceDisjointGraph {
    /// Builds `Ĝ` from an embedded planar graph.
    ///
    /// The construction is `O(1)` distributed rounds in the paper
    /// (Property 1); we do not charge it separately.
    pub fn new(g: &PlanarGraph) -> Self {
        let n = g.num_vertices();
        let mut offset = vec![0usize; n];
        let mut acc = 0;
        for (v, off) in offset.iter_mut().enumerate() {
            *off = acc;
            acc += g.degree(v);
        }
        let degree: Vec<usize> = (0..n).map(|v| g.degree(v)).collect();
        let total = n + acc;
        let mut adj = vec![Vec::new(); total];
        let copy = |v: usize, i: usize| -> usize { n + offset[v] + i.rem_euclid(degree[v]) };

        fn push(adj: &mut [Vec<usize>], a: usize, b: usize) {
            adj[a].push(b);
            adj[b].push(a);
        }

        // E_S: star edges.
        for v in 0..n {
            for i in 0..degree[v] {
                push(&mut adj, v, copy(v, i));
            }
        }

        // E_R: one edge per dart d, connecting corner (tail(d), pos(d) - 1)
        // to corner (head(d), pos(rev(d))) — the two corners the boundary
        // walk of face(d) passes through around d.
        let mut er_edge_of_dart = Vec::with_capacity(g.num_darts());
        for d in g.darts() {
            let u = g.tail(d);
            let v = g.head(d);
            let a = copy(u, g.rotation_position(d) + degree[u] - 1);
            let b = copy(v, g.rotation_position(d.rev()));
            push(&mut adj, a, b);
            er_edge_of_dart.push((a, b));
        }

        // E_C: one edge per primal edge e, connecting the two corners
        // flanking e at its higher-ID endpoint (ties: the head).
        let mut ec_edge_of_edge = Vec::with_capacity(g.num_edges());
        for e in 0..g.num_edges() {
            let (u, v) = (g.edge_tail(e), g.edge_head(e));
            let (w, dw) = if u > v {
                (u, Dart::forward(e))
            } else {
                (v, Dart::backward(e))
            };
            let p = g.rotation_position(dw);
            let a = copy(w, p + degree[w] - 1);
            let b = copy(w, p);
            push(&mut adj, a, b);
            ec_edge_of_edge.push((a, b));
        }

        // Components of Ĝ[E_R] (disjoint face cycles).
        let mut er_component = vec![u32::MAX; total];
        let mut component_face = Vec::new();
        for d in g.darts() {
            let (a, _) = er_edge_of_dart[d.index()];
            if er_component[a] != u32::MAX {
                continue;
            }
            // Walk the face cycle of face(d) and stamp its corners.
            let cid = component_face.len() as u32;
            let f = g.face_of(d);
            for &dd in g.face_darts(f) {
                let (x, y) = er_edge_of_dart[dd.index()];
                er_component[x] = cid;
                er_component[y] = cid;
            }
            component_face.push(f);
        }

        FaceDisjointGraph {
            n,
            offset,
            degree,
            adj,
            er_edge_of_dart,
            ec_edge_of_edge,
            er_component,
            component_face,
        }
    }

    /// Number of vertices of `Ĝ` (star centers + corner copies).
    pub fn num_vertices(&self) -> usize {
        self.adj.len()
    }

    /// Number of star-center vertices (= vertices of `G`).
    pub fn num_star_centers(&self) -> usize {
        self.n
    }

    /// Id of the corner copy `(v, i)` (index modulo `deg(v)`).
    pub fn copy(&self, v: usize, i: usize) -> usize {
        self.n + self.offset[v] + i.rem_euclid(self.degree[v])
    }

    /// The `E_R` edge representing dart `d`.
    pub fn er_edge_of_dart(&self, d: Dart) -> (usize, usize) {
        self.er_edge_of_dart[d.index()]
    }

    /// The `E_C` edge representing the dual edge of primal edge `e`
    /// (Property 5: this mapping is 1-to-1).
    pub fn ec_edge_of_edge(&self, e: usize) -> (usize, usize) {
        self.ec_edge_of_edge[e]
    }

    /// Number of cycles of `Ĝ[E_R]` (equals the number of faces of `G`).
    pub fn num_face_cycles(&self) -> usize {
        self.component_face.len()
    }

    /// The face of `G` whose cycle contains copy vertex `x` (`None` for
    /// star centers).
    pub fn face_of_copy(&self, x: usize) -> Option<FaceId> {
        let c = self.er_component[x];
        (c != u32::MAX).then(|| self.component_face[c as usize])
    }

    /// Hop diameter of `Ĝ` (paper Property 2: at most `3D`). Exact BFS from
    /// every vertex — test/diagnostic use only.
    pub fn diameter(&self) -> usize {
        let mut best = 0;
        for s in 0..self.adj.len() {
            let mut depth = vec![usize::MAX; self.adj.len()];
            let mut q = std::collections::VecDeque::new();
            depth[s] = 0;
            q.push_back(s);
            while let Some(u) = q.pop_front() {
                for &w in &self.adj[u] {
                    if depth[w] == usize::MAX {
                        depth[w] = depth[u] + 1;
                        q.push_back(w);
                    }
                }
            }
            best = best.max(
                depth
                    .iter()
                    .copied()
                    .filter(|&d| d != usize::MAX)
                    .max()
                    .unwrap_or(0),
            );
        }
        best
    }
}

/// A partition of (a subset of) the dual nodes into connected parts, as
/// required by the PA problem on `G*` (paper, Lemma 4.9).
///
/// `part_of[f]` is the part id of dual node `f`, or `None` if `f` does not
/// participate. Connectivity of each `G*[S_i]` is the caller's contract
/// (checked by [`DualPartition::validate`]).
#[derive(Clone, Debug)]
pub struct DualPartition {
    /// Part id per face (dual node), `None` for non-participants.
    pub part_of: Vec<Option<u32>>,
}

impl DualPartition {
    /// Builds a partition, asserting one entry per face.
    ///
    /// # Panics
    ///
    /// Panics if `part_of.len() != g.num_faces()`.
    pub fn new(g: &PlanarGraph, part_of: Vec<Option<u32>>) -> Self {
        assert_eq!(part_of.len(), g.num_faces());
        DualPartition { part_of }
    }

    /// Checks that every part induces a connected subgraph of `G*`.
    pub fn validate(&self, g: &PlanarGraph) -> bool {
        let mut parts: HashMap<u32, Vec<usize>> = HashMap::new();
        for (f, p) in self.part_of.iter().enumerate() {
            if let Some(p) = p {
                parts.entry(*p).or_default().push(f);
            }
        }
        for (p, members) in parts {
            let mut seen: HashMap<usize, bool> = members.iter().map(|&f| (f, false)).collect();
            let mut stack = vec![members[0]];
            *seen.get_mut(&members[0]).unwrap() = true;
            while let Some(f) = stack.pop() {
                for &d in g.face_darts(FaceId(f as u32)) {
                    let to = g.face_of(d.rev()).index();
                    if self.part_of[to] == Some(p) {
                        if let Some(v) = seen.get_mut(&to) {
                            if !*v {
                                *v = true;
                                stack.push(to);
                            }
                        }
                    }
                }
            }
            if seen.values().any(|&v| !v) {
                return false;
            }
        }
        true
    }
}

/// Solves one part-wise aggregation task on `G*`: each dual node `f` with
/// `part_of[f] = Some(p)` contributes `input(f)`, and every part learns the
/// aggregate `op`-fold of its members' inputs.
///
/// Charges one dual-PA task (`Õ(D)` rounds, paper Lemma 4.9) on `ledger`.
///
/// # Example
///
/// ```
/// use duality_overlay::{part_wise_aggregate, DualPartition};
/// use duality_congest::{CostLedger, CostModel};
/// use duality_planar::gen;
///
/// let g = gen::grid(3, 3).unwrap();
/// let cm = CostModel::new(g.num_vertices(), g.diameter());
/// let mut ledger = CostLedger::new();
/// // One part holding every dual node; count them by summing ones.
/// let partition = DualPartition::new(&g, vec![Some(0); g.num_faces()]);
/// let out = part_wise_aggregate(&partition, |_| 1u64, |a, b| a + b, &cm, &mut ledger);
/// assert_eq!(out[&0], g.num_faces() as u64);
/// ```
pub fn part_wise_aggregate<T: Clone>(
    partition: &DualPartition,
    input: impl Fn(FaceId) -> T,
    op: impl Fn(T, T) -> T,
    cm: &CostModel,
    ledger: &mut CostLedger,
) -> HashMap<u32, T> {
    ledger.charge("dual-pa", cm.dual_part_wise_aggregation());
    let mut out: HashMap<u32, T> = HashMap::new();
    for (f, p) in partition.part_of.iter().enumerate() {
        if let Some(p) = p {
            let x = input(FaceId(f as u32));
            out.entry(*p)
                .and_modify(|acc| *acc = op(acc.clone(), x.clone()))
                .or_insert(x);
        }
    }
    out
}

/// Aggregates over the *boundary dual edges* of every part: dart `d`
/// participates for part `p` when `face(d)` is in `p` but `face(rev d)` is
/// not (the "outgoing edges of each part" capability that this paper adds
/// over Ghaffari–Parter's face aggregations — Lemma 4.9).
///
/// Charges one dual-PA task.
pub fn part_wise_boundary_aggregate<T: Clone>(
    g: &PlanarGraph,
    partition: &DualPartition,
    input: impl Fn(Dart) -> Option<T>,
    op: impl Fn(T, T) -> T,
    cm: &CostModel,
    ledger: &mut CostLedger,
) -> HashMap<u32, T> {
    ledger.charge("dual-pa", cm.dual_part_wise_aggregation());
    let mut out: HashMap<u32, T> = HashMap::new();
    for d in g.darts() {
        let from = partition.part_of[g.face_of(d).index()];
        let to = partition.part_of[g.face_of(d.rev()).index()];
        if let Some(p) = from {
            if from != to {
                if let Some(x) = input(d) {
                    out.entry(p)
                        .and_modify(|acc| *acc = op(acc.clone(), x.clone()))
                        .or_insert(x);
                }
            }
        }
    }
    out
}

/// Identifies the faces of `G` via `Ĝ` (paper, Property 4 of `Ĝ`): assigns
/// every face a leader copy (its minimum copy id in the face cycle) and
/// charges `Õ(D)` rounds.
pub fn identify_faces(
    hat: &FaceDisjointGraph,
    cm: &CostModel,
    ledger: &mut CostLedger,
) -> HashMap<FaceId, usize> {
    ledger.charge("identify-faces", cm.dual_part_wise_aggregation());
    let mut leader: HashMap<FaceId, usize> = HashMap::new();
    for x in hat.num_star_centers()..hat.num_vertices() {
        if let Some(f) = hat.face_of_copy(x) {
            leader
                .entry(f)
                .and_modify(|l| *l = (*l).min(x))
                .or_insert(x);
        }
    }
    leader
}

#[cfg(test)]
mod tests {
    use super::*;
    use duality_planar::gen;

    #[test]
    fn hat_vertex_count() {
        let g = gen::grid(3, 3).unwrap();
        let hat = FaceDisjointGraph::new(&g);
        // n star centers + sum of degrees (= 2m) copies.
        assert_eq!(hat.num_vertices(), g.num_vertices() + 2 * g.num_edges());
    }

    #[test]
    fn er_components_match_faces() {
        for g in [
            gen::grid(4, 3).unwrap(),
            gen::diag_grid(4, 4, 9).unwrap(),
            gen::apollonian(12, 2).unwrap(),
            gen::path(5).unwrap(),
            gen::cycle(6).unwrap(),
        ] {
            let hat = FaceDisjointGraph::new(&g);
            assert_eq!(hat.num_face_cycles(), g.num_faces());
        }
    }

    #[test]
    fn er_cycles_are_vertex_disjoint_2_regular() {
        let g = gen::diag_grid(3, 3, 5).unwrap();
        let hat = FaceDisjointGraph::new(&g);
        // Each corner copy has exactly two E_R edges.
        let mut er_deg = vec![0usize; hat.num_vertices()];
        for d in g.darts() {
            let (a, b) = hat.er_edge_of_dart(d);
            er_deg[a] += 1;
            er_deg[b] += 1;
        }
        for (x, &deg) in er_deg.iter().enumerate() {
            if x < hat.num_star_centers() {
                assert_eq!(deg, 0, "star centers carry no E_R edges");
            } else {
                assert_eq!(deg, 2, "corner copies lie on exactly one face cycle");
            }
        }
    }

    #[test]
    fn er_edge_corners_belong_to_the_darts_face() {
        let g = gen::diag_grid(4, 3, 1).unwrap();
        let hat = FaceDisjointGraph::new(&g);
        for d in g.darts() {
            let (a, b) = hat.er_edge_of_dart(d);
            assert_eq!(hat.face_of_copy(a), Some(g.face_of(d)));
            assert_eq!(hat.face_of_copy(b), Some(g.face_of(d)));
        }
    }

    #[test]
    fn ec_edges_connect_the_two_faces_of_each_edge() {
        let g = gen::diag_grid(4, 3, 2).unwrap();
        let hat = FaceDisjointGraph::new(&g);
        for e in 0..g.num_edges() {
            let (a, b) = hat.ec_edge_of_edge(e);
            let fa = hat.face_of_copy(a).unwrap();
            let fb = hat.face_of_copy(b).unwrap();
            let d = Dart::forward(e);
            let mut expected = [g.face_of(d), g.face_of(d.rev())];
            let mut got = [fa, fb];
            expected.sort();
            got.sort();
            assert_eq!(got, expected, "E_C edge of e{e} joins its two faces");
        }
    }

    #[test]
    fn hat_diameter_at_most_3d_plus_constant() {
        for g in [gen::grid(4, 4).unwrap(), gen::apollonian(15, 3).unwrap()] {
            let hat = FaceDisjointGraph::new(&g);
            let d = g.diameter();
            assert!(
                hat.diameter() <= 3 * d + 3,
                "Ĝ diameter {} vs 3D+3 = {}",
                hat.diameter(),
                3 * d + 3
            );
        }
    }

    #[test]
    fn pa_sums_per_part() {
        let g = gen::grid(4, 4).unwrap();
        let cm = CostModel::new(g.num_vertices(), g.diameter());
        let mut ledger = CostLedger::new();
        // Two parts: outer face alone, all bounded faces together.
        let outer = g.faces().max_by_key(|&f| g.face_darts(f).len()).unwrap();
        let part_of = g.faces().map(|f| Some(u32::from(f != outer))).collect();
        let partition = DualPartition::new(&g, part_of);
        assert!(partition.validate(&g));
        let out = part_wise_aggregate(&partition, |_| 1u64, |a, b| a + b, &cm, &mut ledger);
        assert_eq!(out[&0], 1);
        assert_eq!(out[&1], g.num_faces() as u64 - 1);
        assert_eq!(ledger.total(), cm.dual_part_wise_aggregation());
    }

    #[test]
    fn boundary_aggregate_counts_cut_darts() {
        let g = gen::grid(3, 3).unwrap();
        let cm = CostModel::new(g.num_vertices(), g.diameter());
        let mut ledger = CostLedger::new();
        let outer = g.faces().max_by_key(|&f| g.face_darts(f).len()).unwrap();
        let part_of = g.faces().map(|f| Some(u32::from(f != outer))).collect();
        let partition = DualPartition::new(&g, part_of);
        let out = part_wise_boundary_aggregate(
            &g,
            &partition,
            |_| Some(1u64),
            |a, b| a + b,
            &cm,
            &mut ledger,
        );
        // The boundary between the outer face and the interior is the 8
        // border edges of the 3x3 grid, one boundary dart per side per edge.
        assert_eq!(out[&0], 8);
        assert_eq!(out[&1], 8);
    }

    #[test]
    fn invalid_partition_detected() {
        let g = gen::grid(4, 2).unwrap(); // 1x3 strip of cells + outer: 4 faces
                                          // Put the two end cells in the same part, skipping the middle cell.
        let outer = g.faces().max_by_key(|&f| g.face_darts(f).len()).unwrap();
        let bounded: Vec<FaceId> = g.faces().filter(|&f| f != outer).collect();
        assert_eq!(bounded.len(), 3);
        let mut part_of = vec![Some(9u32); g.num_faces()];
        part_of[outer.index()] = None;
        part_of[bounded[1].index()] = None;
        let partition = DualPartition::new(&g, part_of);
        assert!(!partition.validate(&g));
    }

    #[test]
    fn identify_faces_assigns_distinct_leaders() {
        let g = gen::diag_grid(3, 3, 11).unwrap();
        let hat = FaceDisjointGraph::new(&g);
        let cm = CostModel::new(g.num_vertices(), g.diameter());
        let mut ledger = CostLedger::new();
        let leaders = identify_faces(&hat, &cm, &mut ledger);
        assert_eq!(leaders.len(), g.num_faces());
        let mut ids: Vec<usize> = leaders.values().copied().collect();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), g.num_faces(), "leaders are distinct");
    }
}
