//! Property-based tests of the face-disjoint graph `Ĝ` (paper, Section 3
//! and Appendix A) over randomized topologies.

use duality_overlay::FaceDisjointGraph;
use duality_planar::gen;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Ĝ's E_R cycles are in bijection with faces of G and vertex-disjoint
    /// (Property 4 of Ĝ): every corner copy lies on exactly one face cycle.
    #[test]
    fn face_cycles_bijection(w in 3usize..7, h in 3usize..6, seed in 0u64..1000) {
        let g = gen::diag_grid(w, h, seed).unwrap();
        let hat = FaceDisjointGraph::new(&g);
        prop_assert_eq!(hat.num_face_cycles(), g.num_faces());
        for d in g.darts() {
            let (a, b) = hat.er_edge_of_dart(d);
            prop_assert_eq!(hat.face_of_copy(a), Some(g.face_of(d)));
            prop_assert_eq!(hat.face_of_copy(b), Some(g.face_of(d)));
        }
    }

    /// E_C edges join exactly the two faces of their primal edge
    /// (Property 5: the 1-1 mapping to dual edges).
    #[test]
    fn ec_edges_are_dual_edges(n in 6usize..24, seed in 0u64..1000) {
        let g = gen::apollonian(n, seed).unwrap();
        let hat = FaceDisjointGraph::new(&g);
        for e in 0..g.num_edges() {
            let (a, b) = hat.ec_edge_of_edge(e);
            let d = duality_planar::Dart::forward(e);
            let mut got = [hat.face_of_copy(a).unwrap(), hat.face_of_copy(b).unwrap()];
            let mut want = [g.face_of(d), g.face_of(d.rev())];
            got.sort();
            want.sort();
            prop_assert_eq!(got, want);
        }
    }

    /// Ĝ's size is linear: n star centers + 2m corner copies (Property 1).
    #[test]
    fn hat_size_linear(w in 3usize..7, h in 3usize..6, seed in 0u64..1000) {
        let g = gen::diag_grid(w, h, seed).unwrap();
        let hat = FaceDisjointGraph::new(&g);
        prop_assert_eq!(hat.num_vertices(), g.num_vertices() + 2 * g.num_edges());
    }

    /// Ĝ's diameter respects Property 2 (≤ 3D + O(1)).
    #[test]
    fn hat_diameter_bound(w in 3usize..6, h in 3usize..5, seed in 0u64..200) {
        let g = gen::diag_grid(w, h, seed).unwrap();
        let hat = FaceDisjointGraph::new(&g);
        prop_assert!(hat.diameter() <= 3 * g.diameter() + 3);
    }
}
