//! Property-based tests of the in-model algorithms (paper, Section 4).

use duality_minor_agg::{
    boruvka_mst, deactivate_parallel_edges, low_out_degree_orientation, MaEdge, MinorAgg,
};
use duality_planar::util::DisjointSet;
use proptest::prelude::*;

/// A random connected multigraph: a random tree plus extra random edges
/// (arboricity ≤ 1 + extra/n, well below the tested bound).
fn random_graph(n: usize, extra: usize, seed: u64) -> Vec<MaEdge> {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges: Vec<MaEdge> = (1..n)
        .map(|v| MaEdge {
            u: rng.gen_range(0..v),
            v,
            weight: rng.gen_range(1..100),
        })
        .collect();
    for _ in 0..extra {
        let u = rng.gen_range(0..n);
        let v = rng.gen_range(0..n);
        edges.push(MaEdge {
            u,
            v,
            weight: rng.gen_range(1..100),
        });
    }
    edges
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Borůvka in the model matches Kruskal for arbitrary connected inputs.
    #[test]
    fn boruvka_matches_kruskal(n in 3usize..30, extra in 0usize..20, seed in 0u64..10_000) {
        let edges = random_graph(n, extra, seed);
        let useful: Vec<MaEdge> = edges.iter().copied().filter(|e| e.u != e.v).collect();
        let mut ma = MinorAgg::new(n, useful.clone());
        let mst = boruvka_mst(&mut ma);
        let total: i64 = mst.iter().map(|&i| useful[i].weight).sum();
        let mut order: Vec<usize> = (0..useful.len()).collect();
        order.sort_by_key(|&i| useful[i].weight);
        let mut dsu = DisjointSet::new(n);
        let mut kruskal = 0;
        for i in order {
            if dsu.union(useful[i].u, useful[i].v) {
                kruskal += useful[i].weight;
            }
        }
        prop_assert_eq!(total, kruskal);
        prop_assert_eq!(mst.len(), n - 1);
    }

    /// Deactivation keeps exactly one active edge per adjacent node pair,
    /// with the operator-combined weight, and drops all self-loops.
    #[test]
    fn deactivation_is_sound(n in 3usize..25, extra in 0usize..30, seed in 0u64..10_000) {
        let edges = random_graph(n, extra, seed);
        let mut ma = MinorAgg::new(n, edges.clone());
        let active = deactivate_parallel_edges(&mut ma, 4, |a, b| a + b);
        // Expected: sum per unordered pair.
        let mut want: std::collections::HashMap<(usize, usize), i64> = Default::default();
        for e in &edges {
            if e.u != e.v {
                *want.entry((e.u.min(e.v), e.u.max(e.v))).or_default() += e.weight;
            }
        }
        let mut got: std::collections::HashMap<(usize, usize), i64> = Default::default();
        for (i, a) in active.iter().enumerate() {
            if let Some(w) = a {
                let e = &edges[i];
                prop_assert_ne!(e.u, e.v, "self-loops never stay active");
                let key = (e.u.min(e.v), e.u.max(e.v));
                prop_assert!(got.insert(key, *w).is_none(), "one active edge per pair");
            }
        }
        prop_assert_eq!(got, want);
    }

    /// The orientation bounds distinct outgoing neighbors by O(alpha).
    #[test]
    fn orientation_bounds_out_degree(n in 4usize..40, seed in 0u64..10_000) {
        let edges = random_graph(n, n / 2, seed); // arboricity ≤ 2
        let mut ma = MinorAgg::new(n, edges.clone());
        let orient = low_out_degree_orientation(&mut ma, 2);
        let mut out: Vec<std::collections::HashSet<usize>> = vec![Default::default(); n];
        for (i, e) in edges.iter().enumerate() {
            if e.u == e.v {
                continue;
            }
            if orient.toward_v[i] {
                out[e.u].insert(e.v);
            } else {
                out[e.v].insert(e.u);
            }
        }
        for o in &out {
            prop_assert!(o.len() <= 3 * 2 + 2);
        }
    }
}
