//! The minor-aggregation model (paper, Definitions 4.7 and 4.11) and the
//! algorithms the paper runs in it on the dual graph.
//!
//! A minor-aggregation round consists of a *contraction* step (edges choose
//! to merge their endpoints into super-nodes), a *consensus* step (each
//! super-node aggregates a value over its members) and an *aggregation*
//! step (each super-node aggregates over its incident edges). Simulating
//! one round on the dual graph `G*` costs `Õ(D)` CONGEST rounds
//! (Theorem 4.10); the extended model with `β` virtual nodes costs a factor
//! `β` more (Theorem 4.14).
//!
//! [`MinorAgg`] executes algorithms in the model while counting
//! minor-aggregation rounds; [`MinorAgg::charge`] converts the count into
//! CONGEST rounds through the [`CostModel`]. In-model algorithms provided:
//!
//! * [`low_out_degree_orientation`] — the Barenboim–Elkin-style forest
//!   decomposition of Lemma 4.15 (`Õ(α)` rounds);
//! * [`deactivate_parallel_edges`] — turns the dual multigraph into a
//!   simple graph, combining parallel weights with a caller-chosen operator
//!   (sum for cuts, min for shortest paths);
//! * [`boruvka_mst`] — Borůvka's MST via contractions (`O(log n)` rounds),
//!   used for zero-weight-edge completion in the approximate flow pipeline;
//! * [`mark_cut_edges`] — Lemma 4.17: marking the edges of a cut that
//!   2-respects a spanning tree in `O(1)` rounds.

use duality_congest::{CostLedger, CostModel};
use duality_planar::util::DisjointSet;
use duality_planar::Weight;
use std::collections::HashMap;

/// An edge of a minor-aggregation graph.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MaEdge {
    /// One endpoint (a node id).
    pub u: usize,
    /// The other endpoint.
    pub v: usize,
    /// The edge weight.
    pub weight: Weight,
}

/// A graph being operated on in the minor-aggregation model, with a round
/// counter.
///
/// # Example
///
/// ```
/// use duality_minor_agg::{MaEdge, MinorAgg};
///
/// let mut ma = MinorAgg::new(3, vec![
///     MaEdge { u: 0, v: 1, weight: 5 },
///     MaEdge { u: 1, v: 2, weight: 7 },
/// ]);
/// ma.contract(|e| e.weight == 5); // merge 0 and 1
/// assert_eq!(ma.super_node(0), ma.super_node(1));
/// assert_ne!(ma.super_node(0), ma.super_node(2));
/// assert_eq!(ma.rounds(), 1);
/// ```
#[derive(Clone, Debug)]
pub struct MinorAgg {
    n: usize,
    edges: Vec<MaEdge>,
    dsu: DisjointSet,
    rounds: u64,
}

impl MinorAgg {
    /// Creates a model instance over `n` nodes and the given edges.
    pub fn new(n: usize, edges: Vec<MaEdge>) -> Self {
        MinorAgg {
            n,
            edges,
            dsu: DisjointSet::new(n),
            rounds: 0,
        }
    }

    /// Number of underlying (pre-contraction) nodes.
    pub fn num_nodes(&self) -> usize {
        self.n
    }

    /// The edge list.
    pub fn edges(&self) -> &[MaEdge] {
        &self.edges
    }

    /// Minor-aggregation rounds consumed so far.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// Adds extra rounds for steps executed as black boxes (e.g. the
    /// Ghaffari–Zuzic min-cut, charged via
    /// `CostModel::min_cut_minor_aggregation_rounds`).
    pub fn add_black_box_rounds(&mut self, rounds: u64) {
        self.rounds += rounds;
    }

    /// The super-node (contraction class representative) of node `v`.
    pub fn super_node(&mut self, v: usize) -> usize {
        self.dsu.find(v)
    }

    /// Contraction step (1 round): every edge for which `select` returns
    /// `true` merges its endpoints.
    pub fn contract(&mut self, select: impl Fn(&MaEdge) -> bool) {
        self.rounds += 1;
        for i in 0..self.edges.len() {
            let e = self.edges[i];
            if select(&e) {
                self.dsu.union(e.u, e.v);
            }
        }
    }

    /// Consensus step (1 round): every super-node aggregates `init` over
    /// its members with `op`; all members learn the result. Returns the
    /// per-node view.
    pub fn consensus<T: Clone>(
        &mut self,
        init: impl Fn(usize) -> T,
        op: impl Fn(T, T) -> T,
    ) -> Vec<T> {
        self.rounds += 1;
        let mut acc: HashMap<usize, T> = HashMap::new();
        for v in 0..self.n {
            let r = self.dsu.find(v);
            let x = init(v);
            acc.entry(r)
                .and_modify(|a| *a = op(a.clone(), x.clone()))
                .or_insert(x);
        }
        (0..self.n)
            .map(|v| acc[&self.dsu.find(v)].clone())
            .collect()
    }

    /// Aggregation step (1 round): every super-node aggregates `value` over
    /// its incident *non-internal* edges. `value(edge_index, own_super)`
    /// may return `None` to contribute nothing. Returns the per-node view
    /// (`None` for super-nodes with no contributing edges).
    pub fn aggregate<T: Clone>(
        &mut self,
        value: impl Fn(usize, usize) -> Option<T>,
        op: impl Fn(T, T) -> T,
    ) -> Vec<Option<T>> {
        self.rounds += 1;
        let mut acc: HashMap<usize, T> = HashMap::new();
        for i in 0..self.edges.len() {
            let (ru, rv) = (
                self.dsu.find(self.edges[i].u),
                self.dsu.find(self.edges[i].v),
            );
            if ru == rv {
                continue;
            }
            for side in [ru, rv] {
                if let Some(x) = value(i, side) {
                    acc.entry(side)
                        .and_modify(|a| *a = op(a.clone(), x.clone()))
                        .or_insert(x);
                }
            }
        }
        (0..self.n)
            .map(|v| acc.get(&self.dsu.find(v)).cloned())
            .collect()
    }

    /// Converts the consumed minor-aggregation rounds into CONGEST rounds
    /// on `G` for an execution on the dual graph with `beta` virtual nodes
    /// (Theorems 4.10 / 4.14) and charges them under `phase`.
    pub fn charge(&self, beta: u64, cm: &CostModel, ledger: &mut CostLedger, phase: &str) {
        ledger.charge(
            phase,
            self.rounds * cm.dual_extended_minor_aggregation_round(beta),
        );
    }
}

/// Output of [`low_out_degree_orientation`].
#[derive(Clone, Debug)]
pub struct Orientation {
    /// Partition index `H_i` per node.
    pub part: Vec<usize>,
    /// For each edge (by index): `true` if oriented `u → v`, `false` if
    /// `v → u`.
    pub toward_v: Vec<bool>,
}

/// Lemma 4.15's forest-decomposition orientation: produces an orientation
/// in which every node has outgoing edges to at most `O(α)` distinct
/// neighbors (counting parallel edges once), where `α` is the arboricity
/// of the underlying simple graph (3 for duals of planar graphs).
///
/// Runs in `Õ(α)` minor-aggregation rounds on `ma`.
pub fn low_out_degree_orientation(ma: &mut MinorAgg, alpha: usize) -> Orientation {
    let n = ma.num_nodes();
    let threshold = 3 * alpha;
    let mut part = vec![usize::MAX; n];
    let ell = 2 * (usize::BITS - n.max(2).leading_zeros()) as usize;
    // Distinct-neighbor adjacency of the underlying simple graph.
    let mut neighbors: Vec<Vec<usize>> = vec![Vec::new(); n];
    for e in ma.edges() {
        if e.u != e.v {
            neighbors[e.u].push(e.v);
            neighbors[e.v].push(e.u);
        }
    }
    for nb in &mut neighbors {
        nb.sort_unstable();
        nb.dedup();
    }
    for phase in 0..ell {
        // Counting white neighbors costs O(threshold) consensus/aggregation
        // steps in the model (the iterative-counting implementation in the
        // paper's proof of Lemma 4.15).
        ma.add_black_box_rounds(threshold as u64 + 2);
        let mut turned = Vec::new();
        for v in 0..n {
            if part[v] != usize::MAX {
                continue;
            }
            let white_deg = neighbors[v]
                .iter()
                .filter(|&&w| part[w] == usize::MAX)
                .count();
            if white_deg <= threshold {
                turned.push(v);
            }
        }
        for v in turned {
            part[v] = phase;
        }
        if part.iter().all(|&p| p != usize::MAX) {
            break;
        }
    }
    // Any stragglers (cannot happen when alpha really bounds the
    // arboricity) join the last part.
    for p in part.iter_mut() {
        if *p == usize::MAX {
            *p = ell;
        }
    }
    let toward_v = ma
        .edges()
        .iter()
        .map(|e| {
            if part[e.u] != part[e.v] {
                part[e.u] < part[e.v]
            } else {
                e.u < e.v
            }
        })
        .collect();
    Orientation { part, toward_v }
}

/// Lemma 4.15: deactivates self-loops and parallel edges. Parallel edges
/// between the same node pair are replaced by one *active* edge whose
/// weight is the `op`-fold of their weights (sum for min-cut, min for
/// shortest paths). Returns, per edge index, `Some(combined_weight)` if the
/// edge is the active representative and `None` otherwise.
///
/// Runs in `Õ(α)` minor-aggregation rounds.
pub fn deactivate_parallel_edges(
    ma: &mut MinorAgg,
    alpha: usize,
    op: impl Fn(Weight, Weight) -> Weight,
) -> Vec<Option<Weight>> {
    let orientation = low_out_degree_orientation(ma, alpha);
    // Each node handles its O(alpha) outgoing neighbor groups; this costs
    // O(alpha) aggregation rounds.
    ma.add_black_box_rounds(3 * alpha as u64);
    let mut combined: HashMap<(usize, usize), (Weight, usize)> = HashMap::new();
    for (i, e) in ma.edges().iter().enumerate() {
        if e.u == e.v {
            continue; // self-loop: deactivated
        }
        let key = if orientation.toward_v[i] {
            (e.u, e.v)
        } else {
            (e.v, e.u)
        };
        // Canonicalize the pair so antiparallel duplicates collapse too.
        let key = (key.0.min(key.1), key.0.max(key.1));
        combined
            .entry(key)
            .and_modify(|(w, _)| *w = op(*w, e.weight))
            .or_insert((e.weight, i));
    }
    let mut out = vec![None; ma.edges().len()];
    for (_, (w, rep)) in combined {
        out[rep] = Some(w);
    }
    out
}

/// Borůvka's MST in the minor-aggregation model (`O(log n)` rounds of
/// minimum-edge selection + contraction). Returns the indices of the MST
/// edges. Ties are broken by edge index, so the result is deterministic.
pub fn boruvka_mst(ma: &mut MinorAgg) -> Vec<usize> {
    let m = ma.edges().len();
    let mut in_mst = vec![false; m];
    loop {
        // Each super-node picks its lightest incident outgoing edge.
        let edges: Vec<MaEdge> = ma.edges().to_vec();
        let pick = ma.aggregate(
            |i, _| Some((edges[i].weight, i)),
            |a, b| if a < b { a } else { b },
        );
        let mut chosen: Vec<usize> = pick.into_iter().flatten().map(|(_, i)| i).collect();
        chosen.sort_unstable();
        chosen.dedup();
        // Re-check usefulness (both endpoints still distinct).
        let mut any = false;
        for &i in &chosen {
            let (u, v) = (edges[i].u, edges[i].v);
            if ma.super_node(u) != ma.super_node(v) {
                in_mst[i] = true;
                any = true;
            }
        }
        if !any {
            break;
        }
        ma.contract(|e| {
            // Contract exactly the chosen edges (compare by identity).
            chosen.iter().any(|&i| edges[i] == *e && in_mst[i])
        });
    }
    in_mst
        .iter()
        .enumerate()
        .filter(|(_, &b)| b)
        .map(|(i, _)| i)
        .collect()
}

/// Lemma 4.17: given a spanning tree (edge indices `tree`) and a cut that
/// 2-respects it via tree edges `e1`, `e2` (possibly equal), marks all cut
/// edges in `O(1)` minor-aggregation rounds. Returns the marked edge
/// indices.
pub fn mark_cut_edges(ma: &mut MinorAgg, tree: &[usize], e1: usize, e2: usize) -> Vec<usize> {
    let edges: Vec<MaEdge> = ma.edges().to_vec();
    // Contract all tree edges except e1, e2.
    let keep: std::collections::HashSet<usize> = [e1, e2].into_iter().collect();
    let contract_set: std::collections::HashSet<usize> =
        tree.iter().copied().filter(|i| !keep.contains(i)).collect();
    ma.contract(|e| contract_set.iter().any(|&i| edges[i] == *e));
    // Each super-node computes its cost = number of {e1, e2} incident to it.
    let cost = ma.aggregate(|i, _| Some(u64::from(i == e1 || i == e2)), |a, b| a + b);
    // The maximum-cost super-node (ties by representative id) is the side S
    // incident to both cut tree edges.
    let mut best: Option<(u64, usize)> = None;
    for v in 0..ma.num_nodes() {
        let r = ma.super_node(v);
        let c = cost[v].unwrap_or(0);
        if best.is_none_or(|(bc, br)| (c, std::cmp::Reverse(r)) > (bc, std::cmp::Reverse(br))) {
            best = Some((c, r));
        }
    }
    let (_, s) = best.expect("nonempty graph");
    // Mark edges with exactly one endpoint in S.
    let mut out = Vec::new();
    for (i, e) in edges.iter().enumerate() {
        let (ru, rv) = (ma.super_node(e.u), ma.super_node(e.v));
        if (ru == s) != (rv == s) {
            out.push(i);
        }
    }
    ma.add_black_box_rounds(1);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn path_graph(n: usize) -> MinorAgg {
        MinorAgg::new(
            n,
            (0..n - 1)
                .map(|i| MaEdge {
                    u: i,
                    v: i + 1,
                    weight: 1,
                })
                .collect(),
        )
    }

    #[test]
    fn contraction_merges_supernodes() {
        let mut ma = path_graph(4);
        ma.contract(|e| e.u == 0);
        assert_eq!(ma.super_node(0), ma.super_node(1));
        assert_ne!(ma.super_node(1), ma.super_node(2));
    }

    #[test]
    fn consensus_aggregates_per_supernode() {
        let mut ma = path_graph(4);
        ma.contract(|e| e.u <= 1); // {0,1,2}, {3}
        let sums = ma.consensus(|v| v as u64, |a, b| a + b);
        assert_eq!(sums, vec![3, 3, 3, 3]);
        assert_eq!(sums[3], 3);
    }

    #[test]
    fn aggregate_skips_internal_edges() {
        let mut ma = path_graph(3);
        ma.contract(|e| e.u == 0); // {0,1}, {2}; edge (1,2) external
        let counts = ma.aggregate(|_, _| Some(1u64), |a, b| a + b);
        assert_eq!(counts[0], Some(1));
        assert_eq!(counts[2], Some(1));
    }

    #[test]
    fn orientation_has_low_out_degree() {
        // Random planar-ish sparse graph: grid dual arboricity ≤ 3.
        let mut rng = StdRng::seed_from_u64(7);
        let n = 60;
        let mut edges = Vec::new();
        // A tree plus a few extra edges: arboricity ≤ 2.
        for v in 1..n {
            edges.push(MaEdge {
                u: rng.gen_range(0..v),
                v,
                weight: 1,
            });
        }
        for _ in 0..n / 2 {
            let u = rng.gen_range(0..n);
            let v = rng.gen_range(0..n);
            if u != v {
                edges.push(MaEdge { u, v, weight: 1 });
            }
        }
        let mut ma = MinorAgg::new(n, edges.clone());
        let orient = low_out_degree_orientation(&mut ma, 2);
        // Count distinct outgoing neighbors per node.
        let mut out: Vec<std::collections::HashSet<usize>> = vec![Default::default(); n];
        for (i, e) in edges.iter().enumerate() {
            if orient.toward_v[i] {
                out[e.u].insert(e.v);
            } else {
                out[e.v].insert(e.u);
            }
        }
        for (v, o) in out.iter().enumerate() {
            assert!(o.len() <= 3 * 2 + 2, "node {v} has out-degree {}", o.len());
        }
        assert!(ma.rounds() > 0);
    }

    #[test]
    fn deactivation_combines_parallel_edges() {
        let edges = vec![
            MaEdge {
                u: 0,
                v: 1,
                weight: 3,
            },
            MaEdge {
                u: 1,
                v: 0,
                weight: 4,
            },
            MaEdge {
                u: 0,
                v: 1,
                weight: 5,
            },
            MaEdge {
                u: 1,
                v: 2,
                weight: 7,
            },
            MaEdge {
                u: 2,
                v: 2,
                weight: 9,
            }, // self-loop: dropped
        ];
        let mut ma = MinorAgg::new(3, edges);
        let active = deactivate_parallel_edges(&mut ma, 3, |a, b| a + b);
        let kept: Vec<Weight> = active.iter().flatten().copied().collect();
        let mut kept_sorted = kept.clone();
        kept_sorted.sort();
        assert_eq!(
            kept_sorted,
            vec![7, 12],
            "parallel 3+4+5 summed, loop dropped"
        );
        assert!(active[4].is_none());
    }

    #[test]
    fn deactivation_with_min_keeps_lightest() {
        let edges = vec![
            MaEdge {
                u: 0,
                v: 1,
                weight: 3,
            },
            MaEdge {
                u: 0,
                v: 1,
                weight: 2,
            },
        ];
        let mut ma = MinorAgg::new(2, edges);
        let active = deactivate_parallel_edges(&mut ma, 3, |a, b| a.min(b));
        let kept: Vec<Weight> = active.iter().flatten().copied().collect();
        assert_eq!(kept, vec![2]);
    }

    #[test]
    fn boruvka_matches_kruskal() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..5 {
            let n = 20;
            let mut edges = Vec::new();
            for v in 1..n {
                edges.push(MaEdge {
                    u: rng.gen_range(0..v),
                    v,
                    weight: rng.gen_range(1..100),
                });
            }
            for _ in 0..15 {
                let u = rng.gen_range(0..n);
                let v = rng.gen_range(0..n);
                if u != v {
                    edges.push(MaEdge {
                        u,
                        v,
                        weight: rng.gen_range(1..100),
                    });
                }
            }
            let mut ma = MinorAgg::new(n, edges.clone());
            let mst = boruvka_mst(&mut ma);
            let total: Weight = mst.iter().map(|&i| edges[i].weight).sum();
            // Kruskal reference.
            let mut order: Vec<usize> = (0..edges.len()).collect();
            order.sort_by_key(|&i| edges[i].weight);
            let mut dsu = DisjointSet::new(n);
            let mut kruskal = 0;
            for i in order {
                if dsu.union(edges[i].u, edges[i].v) {
                    kruskal += edges[i].weight;
                }
            }
            assert_eq!(total, kruskal);
            assert_eq!(mst.len(), n - 1);
        }
    }

    #[test]
    fn mark_cut_edges_two_respecting() {
        // A 6-cycle with a chord; tree = path 0-1-2-3-4-5; the cut
        // {0,1,2} | {3,4,5} 2-respects the tree via edges (2,3) and (5,0).
        let edges = vec![
            MaEdge {
                u: 0,
                v: 1,
                weight: 1,
            }, // 0 tree
            MaEdge {
                u: 1,
                v: 2,
                weight: 1,
            }, // 1 tree
            MaEdge {
                u: 2,
                v: 3,
                weight: 1,
            }, // 2 tree, crosses
            MaEdge {
                u: 3,
                v: 4,
                weight: 1,
            }, // 3 tree
            MaEdge {
                u: 4,
                v: 5,
                weight: 1,
            }, // 4 tree
            MaEdge {
                u: 5,
                v: 0,
                weight: 1,
            }, // 5 crosses
            MaEdge {
                u: 1,
                v: 4,
                weight: 1,
            }, // 6 chord, crosses
        ];
        let mut ma = MinorAgg::new(6, edges);
        let tree = [0, 1, 2, 3, 4];
        let marked = mark_cut_edges(&mut ma, &tree, 2, 2);
        // Cut that 1-respects via edge 2 alone: S = {0,1,2}; crossing edges
        // are 2, 5 and 6.
        assert_eq!(marked, vec![2, 5, 6]);
    }

    #[test]
    fn charge_converts_to_congest_rounds() {
        let cm = CostModel::new(100, 10);
        let mut ledger = CostLedger::new();
        let mut ma = path_graph(5);
        ma.contract(|_| false);
        ma.charge(1, &cm, &mut ledger, "test");
        assert_eq!(ledger.total(), cm.dual_extended_minor_aggregation_round(1));
    }
}
