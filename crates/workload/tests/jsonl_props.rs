//! Property-based tests for the flat JSONL codec every durable format
//! (traces, fleet specs, lab specs) is built on: round trips are
//! lossless and re-serialization is byte-stable across randomized
//! strings, integers, and floats — the invariant the content-hash
//! tamper-detection idioms depend on.

use duality_workload::jsonl::{line, Obj, Val};
use proptest::prelude::*;

/// Decodes a randomized code-point vector into a string, skipping the
/// unpaired-surrogate gap (the only scalar values `char` excludes).
fn string_from(codes: &[u32], len: usize) -> String {
    codes
        .iter()
        .take(len)
        .filter_map(|&c| char::from_u32(c))
        .collect()
}

/// Serializes `fields` and parses the line back.
fn round_trip(fields: &[(&str, Val)]) -> Obj {
    let mut out = String::new();
    line(&mut out, fields);
    Obj::parse(out.trim_end()).expect("writer output parses")
}

/// Re-serializes every field of `obj` under the given keys, in order.
fn reserialize(obj: &Obj, keys: &[&str]) -> String {
    let mut out = String::new();
    let fields: Vec<(&str, Val)> = keys
        .iter()
        .map(|&k| {
            let v = match obj.opt_str(k) {
                Ok(Some(s)) => Val::s(s),
                _ => Val::f(obj.f64(k).expect("field is a number")),
            };
            (k, v)
        })
        .collect();
    line(&mut out, &fields);
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Strings survive the escape/unescape cycle for arbitrary code
    /// points, including the control and escape characters themselves.
    #[test]
    fn strings_round_trip(len in 0usize..12, codes in proptest::collection::vec(0u32..0x11_0000, 12)) {
        let s = string_from(&codes, len);
        let obj = round_trip(&[("k", Val::s(&s))]);
        prop_assert_eq!(obj.str("k").unwrap(), s.as_str());
    }

    /// Every integer the formats store (`u64` via `Val::n`, `i64` via
    /// `Val::i`) round-trips exactly, and re-serialization is
    /// byte-stable.
    #[test]
    fn integers_round_trip(u in 0u64..u64::MAX, i in i64::MIN..i64::MAX) {
        let mut out = String::new();
        line(&mut out, &[("u", Val::n(u)), ("i", Val::i(i))]);
        let obj = Obj::parse(out.trim_end()).unwrap();
        prop_assert_eq!(obj.u64("u").unwrap(), u);
        prop_assert_eq!(obj.i64("i").unwrap(), i);
        let mut again = String::new();
        line(&mut again, &[("u", Val::n(obj.u64("u").unwrap())), ("i", Val::i(obj.i64("i").unwrap()))]);
        prop_assert_eq!(again, out);
    }

    /// Every finite float — drawn uniformly over the *bit patterns*, so
    /// subnormals, extreme exponents, and negative zero all appear —
    /// round-trips bit-for-bit, and its canonical form is byte-stable
    /// under a second cycle.
    #[test]
    fn floats_round_trip_bitwise(bits in 0u64..u64::MAX) {
        let v = f64::from_bits(bits);
        prop_assume!(v.is_finite());
        let obj = round_trip(&[("v", Val::f(v))]);
        let got = obj.f64("v").unwrap();
        prop_assert_eq!(got.to_bits(), v.to_bits());
        let mut first = String::new();
        line(&mut first, &[("v", Val::f(v))]);
        let mut second = String::new();
        line(&mut second, &[("v", Val::f(got))]);
        prop_assert_eq!(second, first);
    }

    /// Mixed-type multi-field objects re-serialize to the exact bytes
    /// they were parsed from: the codec is canonical, not merely
    /// lossless.
    #[test]
    fn objects_reserialize_byte_stably(
        len in 0usize..10,
        codes in proptest::collection::vec(0u32..0x11_0000, 10),
        bits in 0u64..u64::MAX,
    ) {
        let v = f64::from_bits(bits);
        prop_assume!(v.is_finite());
        let s = string_from(&codes, len);
        let mut original = String::new();
        line(&mut original, &[("name", Val::s(&s)), ("value", Val::f(v))]);
        let obj = Obj::parse(original.trim_end()).unwrap();
        prop_assert_eq!(reserialize(&obj, &["name", "value"]), original);
    }

    /// The parser rejects or accepts truncated documents without
    /// panicking — malformed durable files must surface as errors, not
    /// aborts.
    #[test]
    fn truncated_lines_never_panic(
        len in 0usize..8,
        codes in proptest::collection::vec(0u32..0x11_0000, 8),
        cut in 0usize..64,
    ) {
        let s = string_from(&codes, len);
        let mut out = String::new();
        line(&mut out, &[("k", Val::s(&s)), ("n", Val::n(7))]);
        let text = out.trim_end();
        let boundary = text
            .char_indices()
            .map(|(i, _)| i)
            .chain([text.len()])
            .take(cut + 1)
            .last()
            .unwrap();
        let _ = Obj::parse(&text[..boundary]);
    }
}
