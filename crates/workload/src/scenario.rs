//! The declarative scenario model: tenant fleets, mutation streams,
//! query mixes and arrival schedules, all under one seed.
//!
//! A [`Scenario`] is a *description* of traffic, not the traffic itself:
//! calling [`Scenario::record`] expands it — deterministically, from its
//! seed — into a [`Trace`] of timestamped events
//! that can be serialized, replayed and driven through the serving
//! engine. Two records of the same scenario are identical event for
//! event, which is what lets the replay determinism contract extend from
//! single jobs to whole traffic histories.

use crate::error::WorkloadError;
use crate::trace::{TenantRecord, Trace, TraceEvent, TraceHeader};
use duality_core::pool::InstanceKey;
use duality_core::{PlanarInstance, Query};
use duality_planar::{gen, PlanarError, PlanarGraph, Weight};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// The trace format version written by [`Scenario::record`] and required
/// by [`Trace::parse_jsonl`](crate::trace::Trace::parse_jsonl).
pub const TRACE_SCHEMA_VERSION: u64 = 1;

/// A named planar family with its size parameters — the generator side of
/// `duality_planar::gen`, as plain data so a trace header can name the
/// exact graph a tenant runs on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FamilySpec {
    /// [`gen::grid`]: a `w × h` grid.
    Grid {
        /// Grid width.
        w: usize,
        /// Grid height.
        h: usize,
    },
    /// [`gen::diag_grid`]: a `w × h` grid with one random diagonal per
    /// cell.
    DiagGrid {
        /// Grid width.
        w: usize,
        /// Grid height.
        h: usize,
    },
    /// [`gen::apollonian`]: a stacked triangulation on `n` vertices.
    Apollonian {
        /// Vertex count (≥ 3).
        n: usize,
    },
    /// [`gen::outerplanar`]: a polygon plus non-crossing chords.
    Outerplanar {
        /// Vertex count (≥ 3).
        n: usize,
        /// Full triangulation (`true`) or a sparser random chord set.
        full: bool,
    },
    /// [`gen::sparse_grid`]: a connected random subgraph of a diagonal
    /// grid thinned to `target_m` edges.
    SparseGrid {
        /// Grid width.
        w: usize,
        /// Grid height.
        h: usize,
        /// Edge count to thin down to (keep ≥ `w*h` so cycles survive
        /// and girth queries stay answerable).
        target_m: usize,
    },
}

impl FamilySpec {
    /// Builds the family member selected by `seed`.
    ///
    /// # Errors
    ///
    /// Propagates the generator's [`PlanarError`] (e.g. an empty grid
    /// dimension).
    pub fn build(&self, seed: u64) -> Result<PlanarGraph, PlanarError> {
        match *self {
            FamilySpec::Grid { w, h } => gen::grid(w, h),
            FamilySpec::DiagGrid { w, h } => gen::diag_grid(w, h, seed),
            FamilySpec::Apollonian { n } => gen::apollonian(n, seed),
            FamilySpec::Outerplanar { n, full } => gen::outerplanar(n, seed, full),
            FamilySpec::SparseGrid { w, h, target_m } => gen::sparse_grid(w, h, target_m, seed),
        }
    }

    /// Human-readable family label (used in trace provenance and rows).
    pub fn label(&self) -> String {
        match *self {
            FamilySpec::Grid { w, h } => format!("grid {w}x{h}"),
            FamilySpec::DiagGrid { w, h } => format!("diag-grid {w}x{h}"),
            FamilySpec::Apollonian { n } => format!("apollonian {n}"),
            FamilySpec::Outerplanar { n, full } => {
                format!("outerplanar {n}{}", if full { " full" } else { "" })
            }
            FamilySpec::SparseGrid { w, h, target_m } => {
                format!("sparse-grid {w}x{h}/{target_m}")
            }
        }
    }
}

/// One tenant of a scenario: a family plus the ranges its base spec is
/// drawn from. The concrete seeds are derived from the scenario seed at
/// record time and written into the trace header.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TenantSpec {
    /// The planar family this tenant's network is drawn from.
    pub family: FamilySpec,
    /// Capacity range `[lo, hi]` of the base spec (undirected draw).
    pub cap_range: (Weight, Weight),
    /// Edge-weight range `[lo, hi]` of the base spec.
    pub weight_range: (Weight, Weight),
}

impl TenantSpec {
    /// A tenant with the default serving ranges (capacities and weights
    /// in `[1, 9]`).
    pub fn of(family: FamilySpec) -> TenantSpec {
        TenantSpec {
            family,
            cap_range: (1, 9),
            weight_range: (1, 9),
        }
    }
}

/// How generated queries arrive at the engine.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Arrival {
    /// Open loop: `queries_per_tick` jobs are released at each step of
    /// the logical clock regardless of completion — the driver submits
    /// without waiting, so queue depth reflects the offered load.
    OpenLoop {
        /// Jobs released per virtual tick.
        queries_per_tick: u64,
    },
    /// Closed loop: the same logical-clock release order, but the driver
    /// keeps at most `max_in_flight` jobs outstanding, harvesting the
    /// oldest ticket before submitting past the bound.
    ClosedLoop {
        /// Jobs released per virtual tick.
        queries_per_tick: u64,
        /// Bound on outstanding (submitted, unresolved) jobs.
        max_in_flight: usize,
    },
}

impl Arrival {
    /// Jobs released per tick under either schedule.
    pub fn queries_per_tick(&self) -> u64 {
        match *self {
            Arrival::OpenLoop { queries_per_tick }
            | Arrival::ClosedLoop {
                queries_per_tick, ..
            } => queries_per_tick,
        }
    }
}

/// Relative frequencies of the six query kinds (zero disables a kind).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct QueryMix {
    /// Weight of [`Query::MaxFlow`].
    pub max_flow: u32,
    /// Weight of [`Query::MinStCut`].
    pub min_st_cut: u32,
    /// Weight of [`Query::ApproxMaxFlow`] (endpoints on a shared face).
    pub approx_max_flow: u32,
    /// Weight of [`Query::ApproxMinStCut`] (endpoints on a shared face).
    pub approx_min_st_cut: u32,
    /// Weight of [`Query::GlobalMinCut`].
    pub global_min_cut: u32,
    /// Weight of [`Query::Girth`].
    pub girth: u32,
}

impl QueryMix {
    /// All six kinds, equally likely.
    pub fn uniform() -> QueryMix {
        QueryMix {
            max_flow: 1,
            min_st_cut: 1,
            approx_max_flow: 1,
            approx_min_st_cut: 1,
            global_min_cut: 1,
            girth: 1,
        }
    }

    /// Flow/cut-heavy mix (the storm-response profile).
    pub fn flow_heavy() -> QueryMix {
        QueryMix {
            max_flow: 4,
            min_st_cut: 3,
            approx_max_flow: 2,
            approx_min_st_cut: 1,
            global_min_cut: 1,
            girth: 1,
        }
    }

    /// Weight-query-heavy mix (girth + global cut dominate — the respec
    /// stressor, since both live on the weight tier).
    pub fn weight_heavy() -> QueryMix {
        QueryMix {
            max_flow: 1,
            min_st_cut: 1,
            approx_max_flow: 0,
            approx_min_st_cut: 0,
            global_min_cut: 3,
            girth: 4,
        }
    }

    fn total(&self) -> u32 {
        self.max_flow
            + self.min_st_cut
            + self.approx_max_flow
            + self.approx_min_st_cut
            + self.global_min_cut
            + self.girth
    }

    /// Draws one kind index (0..6 in declaration order) from the mix.
    fn pick(&self, rng: &mut StdRng) -> u32 {
        let total = self.total().max(1);
        let mut draw = rng.gen_range(0..total);
        for (i, w) in [
            self.max_flow,
            self.min_st_cut,
            self.approx_max_flow,
            self.approx_min_st_cut,
            self.global_min_cut,
            self.girth,
        ]
        .into_iter()
        .enumerate()
        {
            if draw < w {
                return i as u32;
            }
            draw -= w;
        }
        5 // all-zero mix degenerates to girth
    }
}

/// One concrete spec mutation, as recorded in a trace event. Replay
/// applies the same mutation to the same tenant state, so the rebuilt
/// instance is bit-for-bit the recorded one (checked against the
/// recorded [`InstanceKey`]). All mutations go through the instance's
/// copy-on-write respec path, so every derived spec shares its tenant's
/// graph allocation — and its topology substrate in the pools.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mutation {
    /// Capacities set to `percent`% of the tenant's **base** spec (the
    /// diurnal wave / storm derate; weights are untouched).
    ScaleCapacities {
        /// Percentage of the base capacities (100 restores the base
        /// capacity side).
        percent: u32,
    },
    /// `count` seeded random edges of the **current** spec fail: both
    /// darts' capacities drop to zero (weights are untouched).
    EdgeFailures {
        /// Edges to fail (draws may repeat; duplicates are harmless).
        count: usize,
        /// Seed of the edge draw, recorded so replay fails the same
        /// edges.
        seed: u64,
    },
    /// `count` seeded random edges of the **current** spec get their
    /// weight multiplied by `factor` (capacities are untouched).
    WeightSpikes {
        /// Edges to spike.
        count: usize,
        /// Multiplier applied to each spiked edge's weight.
        factor: u32,
        /// Seed of the edge draw.
        seed: u64,
    },
    /// Both sides reset to the tenant's base spec (the storm passes).
    Restore,
}

impl Mutation {
    /// Applies the mutation to a tenant's `(base, current)` state and
    /// returns the new current instance (copy-on-write: the graph
    /// allocation is shared throughout).
    ///
    /// # Errors
    ///
    /// Propagates instance validation errors (impossible for the vectors
    /// this method constructs from valid inputs, but typed anyway).
    pub fn apply(
        &self,
        base: &Arc<PlanarInstance>,
        current: &Arc<PlanarInstance>,
    ) -> Result<Arc<PlanarInstance>, duality_core::DualityError> {
        match *self {
            Mutation::ScaleCapacities { percent } => {
                let caps: Vec<Weight> = base
                    .capacities()
                    .iter()
                    .map(|&c| c * Weight::from(percent) / 100)
                    .collect();
                current.with_capacities(caps)
            }
            Mutation::EdgeFailures { count, seed } => {
                let mut rng = StdRng::seed_from_u64(seed);
                let mut caps = current.capacities().to_vec();
                for _ in 0..count {
                    let e = rng.gen_range(0..current.m());
                    caps[2 * e] = 0;
                    caps[2 * e + 1] = 0;
                }
                current.with_capacities(caps)
            }
            Mutation::WeightSpikes {
                count,
                factor,
                seed,
            } => {
                let mut rng = StdRng::seed_from_u64(seed);
                let mut weights = current.edge_weights().to_vec();
                for _ in 0..count {
                    let e = rng.gen_range(0..current.m());
                    weights[e] = weights[e].saturating_mul(Weight::from(factor));
                }
                current.with_edge_weights(weights)
            }
            Mutation::Restore => current
                .with_capacities(base.capacities().to_vec())?
                .with_edge_weights(base.edge_weights().to_vec()),
        }
    }
}

/// A rule producing [`Mutation`] events over the logical clock.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MutationRule {
    /// Diurnal capacity wave: every quarter period, every tenant's
    /// capacities are rescaled to a triangle wave between 100% and
    /// `trough_percent`% of its base spec.
    DiurnalWave {
        /// Wave period in ticks.
        period: u64,
        /// Capacity floor at the trough, in percent of the base.
        trough_percent: u32,
    },
    /// Every `every` ticks, one randomly chosen tenant loses `count`
    /// random edges (capacities to zero).
    RandomFailures {
        /// Tick interval between failure injections.
        every: u64,
        /// Edges failed per injection.
        count: usize,
    },
    /// Every `every` ticks, one randomly chosen tenant gets `count` edge
    /// weights multiplied by `factor`.
    RandomWeightSpikes {
        /// Tick interval between spike injections.
        every: u64,
        /// Edges spiked per injection.
        count: usize,
        /// Weight multiplier.
        factor: u32,
    },
    /// A storm: at tick `at`, every tenant is derated to `percent`% and
    /// loses two random edges (a respec burst); `duration` ticks later
    /// every tenant is restored to its base spec.
    Storm {
        /// Tick the storm makes landfall.
        at: u64,
        /// Ticks until the restore burst.
        duration: u64,
        /// Derate level during the storm, in percent of the base.
        percent: u32,
    },
}

impl MutationRule {
    /// The mutations this rule emits at `tick`, as `(tenant, mutation)`
    /// pairs (`None` tenant = every tenant). Draws come from the shared
    /// scenario stream, so rule order is part of the recorded identity.
    fn fire(&self, tick: u64, tenants: usize, rng: &mut StdRng) -> Vec<(Option<usize>, Mutation)> {
        match *self {
            MutationRule::DiurnalWave {
                period,
                trough_percent,
            } => {
                let step = (period / 4).max(1);
                if period == 0 || !tick.is_multiple_of(step) {
                    return Vec::new();
                }
                let pos = tick % period;
                let half = (period / 2).max(1);
                let span = u64::from(100 - trough_percent.min(100));
                let drop = if pos <= half {
                    span * pos / half
                } else {
                    span * (period - pos) / half
                };
                vec![(
                    None,
                    Mutation::ScaleCapacities {
                        percent: (100 - drop) as u32,
                    },
                )]
            }
            MutationRule::RandomFailures { every, count } => {
                if every == 0 || tick == 0 || !tick.is_multiple_of(every) {
                    return Vec::new();
                }
                let tenant = rng.gen_range(0..tenants);
                let seed = u64::from(rng.gen_range(0..u32::MAX));
                vec![(Some(tenant), Mutation::EdgeFailures { count, seed })]
            }
            MutationRule::RandomWeightSpikes {
                every,
                count,
                factor,
            } => {
                if every == 0 || tick == 0 || !tick.is_multiple_of(every) {
                    return Vec::new();
                }
                let tenant = rng.gen_range(0..tenants);
                let seed = u64::from(rng.gen_range(0..u32::MAX));
                vec![(
                    Some(tenant),
                    Mutation::WeightSpikes {
                        count,
                        factor,
                        seed,
                    },
                )]
            }
            MutationRule::Storm {
                at,
                duration,
                percent,
            } => {
                if tick == at {
                    let mut out = vec![(None, Mutation::ScaleCapacities { percent })];
                    for t in 0..tenants {
                        let seed = u64::from(rng.gen_range(0..u32::MAX));
                        out.push((Some(t), Mutation::EdgeFailures { count: 2, seed }));
                    }
                    out
                } else if tick == at + duration {
                    vec![(None, Mutation::Restore)]
                } else {
                    Vec::new()
                }
            }
        }
    }
}

/// A declarative, seeded traffic scenario: tenant fleets × mutation
/// stream × query mix × arrival schedule over a logical clock.
///
/// # Example
///
/// ```
/// use duality_workload::Scenario;
///
/// let scenario = Scenario::preset("steady-state", 7).unwrap();
/// let trace = scenario.record().unwrap();
/// // Same seed, same trace — recording is deterministic.
/// assert_eq!(trace, scenario.record().unwrap());
/// assert!(!trace.events.is_empty());
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct Scenario {
    /// Scenario name (preset name, or anything for custom scenarios).
    pub name: String,
    /// The master seed: everything — graphs, specs, event stream — is a
    /// pure function of this value and the scenario description.
    pub seed: u64,
    /// The tenant fleet.
    pub tenants: Vec<TenantSpec>,
    /// Length of the logical clock, in ticks.
    pub ticks: u64,
    /// Arrival schedule (open- or closed-loop).
    pub arrival: Arrival,
    /// Relative frequencies of the six query kinds.
    pub mix: QueryMix,
    /// Spec-mutation rules evaluated at every tick, in order.
    pub mutations: Vec<MutationRule>,
    /// Tenant selection skew: tenant 0 is drawn `tenant_skew`× as often
    /// as each other tenant (1 = uniform).
    pub tenant_skew: u32,
    /// Per-query deadline in ticks after release (`None`: no deadline).
    pub deadline_ticks: Option<u64>,
    /// Stride between consecutive tenants' derived graph seeds
    /// (default 3, the historical derivation). Stride 0 hands every
    /// tenant the *same* derived seeds: content-identical instances in
    /// distinct allocations, so the whole fleet collides on one
    /// [`InstanceKey`] — the `key-collision` adversarial preset.
    pub tenant_seed_stride: u64,
}

/// Names of the nine preset scenarios, in presentation order.
pub const PRESET_NAMES: [&str; 9] = [
    "steady-state",
    "rush-hour",
    "failover-storm",
    "multi-tenant-skew",
    "cold-start",
    "respec-heavy",
    "cancellation-storm",
    "deadline-pressure",
    "key-collision",
];

impl Scenario {
    /// The named preset, or `None` for an unknown name. See
    /// [`PRESET_NAMES`] for the library:
    ///
    /// * `steady-state` — three grid tenants, uniform six-kind mix, no
    ///   mutations: the throughput baseline.
    /// * `rush-hour` — diurnal capacity wave with an elevated open-loop
    ///   rate and deadlines: the peak-load profile.
    /// * `failover-storm` — a storm derate + edge-failure burst followed
    ///   by a restore, over a flow/cut-heavy mix.
    /// * `multi-tenant-skew` — four different families with tenant 0
    ///   drawing 6× the traffic: the hot-shard profile.
    /// * `cold-start` — eight single-visit tenants: every query is a
    ///   pool miss, measuring uncached substrate cost.
    /// * `respec-heavy` — closed-loop weight-query traffic under a fast
    ///   wave plus weight spikes: the respec-reuse stressor.
    /// * `cancellation-storm` — a front-loaded open-loop burst sized to
    ///   pile jobs deep into the queue. The trace schema has no cancel
    ///   event — cancellation is an act on a live
    ///   [`Ticket`](duality_service::Ticket) (its `cancel` method), not
    ///   part of recorded traffic — so this preset supplies the
    ///   adversarial *substrate*:
    ///   drive it, then cancel a slice of the queued tickets mid-flight
    ///   to stress the cancelled terminal path (span emission, metrics
    ///   reconciliation, queue skip-and-drop).
    /// * `deadline-pressure` — open-loop bursts under a one-tick
    ///   deadline: most of each burst expires before a worker reaches
    ///   it, stressing the expired terminal path (past-due refusal at
    ///   dequeue, span emission, metrics reconciliation) rather than
    ///   throughput.
    /// * `key-collision` — four content-identical tenants (seed stride
    ///   0) under a per-tenant weight-spike stream: every tenant
    ///   fingerprints to the same topology, so pool lookups from the
    ///   whole fleet collide on one key, and each spike forces the
    ///   near-miss path — topology hit, weight-tier miss.
    pub fn preset(name: &str, seed: u64) -> Option<Scenario> {
        let diag = |w, h| TenantSpec::of(FamilySpec::DiagGrid { w, h });
        let s = match name {
            "steady-state" => Scenario {
                name: name.into(),
                seed,
                tenants: vec![diag(6, 5), diag(6, 5), diag(5, 5)],
                ticks: 8,
                arrival: Arrival::OpenLoop {
                    queries_per_tick: 3,
                },
                mix: QueryMix::uniform(),
                mutations: vec![],
                tenant_skew: 1,
                deadline_ticks: None,
                tenant_seed_stride: 3,
            },
            "rush-hour" => Scenario {
                name: name.into(),
                seed,
                tenants: vec![diag(7, 5), diag(6, 5)],
                ticks: 12,
                arrival: Arrival::OpenLoop {
                    queries_per_tick: 4,
                },
                mix: QueryMix::flow_heavy(),
                mutations: vec![MutationRule::DiurnalWave {
                    period: 8,
                    trough_percent: 60,
                }],
                tenant_skew: 1,
                deadline_ticks: Some(8),
                tenant_seed_stride: 3,
            },
            "failover-storm" => Scenario {
                name: name.into(),
                seed,
                tenants: vec![diag(6, 5), diag(6, 5), diag(5, 5)],
                ticks: 12,
                arrival: Arrival::OpenLoop {
                    queries_per_tick: 3,
                },
                mix: QueryMix::flow_heavy(),
                mutations: vec![
                    MutationRule::Storm {
                        at: 4,
                        duration: 4,
                        percent: 40,
                    },
                    MutationRule::RandomFailures { every: 3, count: 2 },
                ],
                tenant_skew: 1,
                deadline_ticks: None,
                tenant_seed_stride: 3,
            },
            "multi-tenant-skew" => Scenario {
                name: name.into(),
                seed,
                tenants: vec![
                    diag(6, 5),
                    TenantSpec::of(FamilySpec::Apollonian { n: 32 }),
                    TenantSpec::of(FamilySpec::Outerplanar { n: 20, full: true }),
                    TenantSpec::of(FamilySpec::SparseGrid {
                        w: 6,
                        h: 5,
                        target_m: 40,
                    }),
                ],
                ticks: 10,
                arrival: Arrival::OpenLoop {
                    queries_per_tick: 4,
                },
                mix: QueryMix::uniform(),
                mutations: vec![],
                tenant_skew: 6,
                deadline_ticks: None,
                tenant_seed_stride: 3,
            },
            "cold-start" => Scenario {
                name: name.into(),
                seed,
                tenants: vec![diag(5, 4); 8],
                ticks: 8,
                arrival: Arrival::OpenLoop {
                    queries_per_tick: 2,
                },
                mix: QueryMix::uniform(),
                mutations: vec![],
                tenant_skew: 1,
                deadline_ticks: None,
                tenant_seed_stride: 3,
            },
            "respec-heavy" => Scenario {
                name: name.into(),
                seed,
                tenants: vec![diag(6, 5), diag(6, 5)],
                ticks: 12,
                arrival: Arrival::ClosedLoop {
                    queries_per_tick: 2,
                    max_in_flight: 4,
                },
                mix: QueryMix::weight_heavy(),
                mutations: vec![
                    MutationRule::DiurnalWave {
                        period: 4,
                        trough_percent: 50,
                    },
                    MutationRule::RandomWeightSpikes {
                        every: 2,
                        count: 3,
                        factor: 5,
                    },
                ],
                tenant_skew: 1,
                deadline_ticks: None,
                tenant_seed_stride: 3,
            },
            "cancellation-storm" => Scenario {
                name: name.into(),
                seed,
                tenants: vec![diag(6, 5), diag(5, 5)],
                ticks: 4,
                arrival: Arrival::OpenLoop {
                    queries_per_tick: 8,
                },
                mix: QueryMix::uniform(),
                mutations: vec![],
                tenant_skew: 1,
                deadline_ticks: None,
                tenant_seed_stride: 3,
            },
            "deadline-pressure" => Scenario {
                name: name.into(),
                seed,
                tenants: vec![diag(6, 5), diag(5, 5), diag(5, 4)],
                ticks: 6,
                arrival: Arrival::OpenLoop {
                    queries_per_tick: 6,
                },
                mix: QueryMix::flow_heavy(),
                mutations: vec![],
                tenant_skew: 2,
                deadline_ticks: Some(1),
                tenant_seed_stride: 3,
            },
            "key-collision" => Scenario {
                name: name.into(),
                seed,
                tenants: vec![diag(6, 5); 4],
                ticks: 8,
                arrival: Arrival::OpenLoop {
                    queries_per_tick: 4,
                },
                mix: QueryMix::weight_heavy(),
                mutations: vec![MutationRule::RandomWeightSpikes {
                    every: 2,
                    count: 2,
                    factor: 3,
                }],
                tenant_skew: 1,
                deadline_ticks: None,
                tenant_seed_stride: 0,
            },
            _ => return None,
        };
        Some(s)
    }

    /// All nine presets, in [`PRESET_NAMES`] order.
    pub fn presets(seed: u64) -> Vec<Scenario> {
        PRESET_NAMES
            .iter()
            .map(|name| Scenario::preset(name, seed).expect("preset names are exhaustive"))
            .collect()
    }

    /// Expands the scenario into its event trace — the deterministic
    /// record of every spec mutation and query it generates, with each
    /// event stamped by its virtual timestamp and the [`InstanceKey`] of
    /// the spec it runs against.
    ///
    /// # Errors
    ///
    /// [`WorkloadError::Planar`] / [`WorkloadError::Instance`] when a
    /// tenant's family or base spec fails to build (a misconfigured
    /// custom scenario; the presets always build).
    pub fn record(&self) -> Result<Trace, WorkloadError> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut tenant_records = Vec::with_capacity(self.tenants.len());
        let mut state = Vec::with_capacity(self.tenants.len());
        for (i, spec) in self.tenants.iter().enumerate() {
            // Seeds are derived, not drawn, so adding rules or mixes to a
            // scenario never reshuffles which graphs its tenants run on.
            let graph_seed = self
                .seed
                .wrapping_mul(31)
                .wrapping_add(1u64.wrapping_add(self.tenant_seed_stride.wrapping_mul(i as u64)));
            let record = TenantRecord {
                family: spec.family,
                cap_range: spec.cap_range,
                weight_range: spec.weight_range,
                graph_seed,
                cap_seed: graph_seed.wrapping_add(1),
                weight_seed: graph_seed.wrapping_add(2),
            };
            state.push(TenantState::build(&record)?);
            tenant_records.push(record);
        }

        let mut events = Vec::new();
        for tick in 0..self.ticks {
            for rule in &self.mutations {
                for (target, mutation) in rule.fire(tick, state.len(), &mut rng) {
                    let targets: Vec<usize> = match target {
                        Some(t) => vec![t],
                        None => (0..state.len()).collect(),
                    };
                    for t in targets {
                        state[t].apply(&mutation)?;
                        events.push(TraceEvent::Respec {
                            vt: tick,
                            tenant: t,
                            mutation,
                            key: state[t].key(),
                        });
                    }
                }
            }
            for _ in 0..self.arrival.queries_per_tick() {
                let tenant = self.pick_tenant(&mut rng);
                let query = state[tenant].pick_query(&self.mix, &mut rng);
                events.push(TraceEvent::Query {
                    vt: tick,
                    tenant,
                    query,
                    deadline: self.deadline_ticks.map(|d| tick + d),
                    key: state[tenant].key(),
                });
            }
        }

        Ok(Trace {
            header: TraceHeader {
                schema_version: TRACE_SCHEMA_VERSION,
                scenario: self.name.clone(),
                seed: self.seed,
                ticks: self.ticks,
                arrival: self.arrival,
                tenants: tenant_records,
            },
            events,
        })
    }

    fn pick_tenant(&self, rng: &mut StdRng) -> usize {
        let k = self.tenants.len();
        debug_assert!(k > 0, "scenarios need at least one tenant");
        let skew = u64::from(self.tenant_skew.max(1));
        let total = skew + (k as u64 - 1);
        let draw = rng.gen_range(0..total);
        if draw < skew {
            0
        } else {
            (draw - skew + 1) as usize
        }
    }
}

/// The evolving per-tenant state shared by recording and replay: the
/// base instance, the current (possibly mutated) instance, and the
/// vertex set of the largest face (the "outer" boundary the approximate
/// st-planar queries draw their endpoints from).
pub(crate) struct TenantState {
    pub(crate) base: Arc<PlanarInstance>,
    pub(crate) current: Arc<PlanarInstance>,
    boundary: Vec<usize>,
}

impl TenantState {
    pub(crate) fn build(record: &TenantRecord) -> Result<TenantState, WorkloadError> {
        let g = record.family.build(record.graph_seed)?;
        let caps = gen::random_undirected_capacities(
            g.num_edges(),
            record.cap_range.0,
            record.cap_range.1,
            record.cap_seed,
        );
        let weights = gen::random_edge_weights(
            g.num_edges(),
            record.weight_range.0,
            record.weight_range.1,
            record.weight_seed,
        );
        // Largest face as the shared boundary — the same convention the
        // experiment harness uses for st-planar endpoints.
        let outer = g
            .faces()
            .max_by_key(|&f| g.face_darts(f).len())
            .expect("nonempty graphs have faces");
        let mut boundary: Vec<usize> = g.face_darts(outer).iter().map(|&d| g.tail(d)).collect();
        boundary.sort_unstable();
        boundary.dedup();
        let base = PlanarInstance::new(g, Some(caps), Some(weights))?;
        Ok(TenantState {
            current: Arc::clone(&base),
            base,
            boundary,
        })
    }

    pub(crate) fn apply(&mut self, mutation: &Mutation) -> Result<(), WorkloadError> {
        self.current = mutation.apply(&self.base, &self.current)?;
        Ok(())
    }

    pub(crate) fn key(&self) -> String {
        InstanceKey::of(&self.current).to_string()
    }

    /// Draws one query against the current spec. Exact st-queries use
    /// any two distinct vertices; approximate st-planar queries draw
    /// both endpoints from the shared boundary face (falling back to an
    /// exact max flow when the boundary is degenerate).
    fn pick_query(&self, mix: &QueryMix, rng: &mut StdRng) -> Query {
        let n = self.current.n();
        let kind = mix.pick(rng);
        let distinct_pair = |rng: &mut StdRng, pool: &[usize]| {
            let a = pool[rng.gen_range(0..pool.len())];
            loop {
                let b = pool[rng.gen_range(0..pool.len())];
                if b != a {
                    return (a, b);
                }
            }
        };
        let all: Vec<usize> = (0..n).collect();
        match kind {
            0 => {
                let (s, t) = distinct_pair(rng, &all);
                Query::MaxFlow { s, t }
            }
            1 => {
                let (s, t) = distinct_pair(rng, &all);
                Query::MinStCut { s, t }
            }
            2 | 3 => {
                if self.boundary.len() < 2 {
                    let (s, t) = distinct_pair(rng, &all);
                    return Query::MaxFlow { s, t };
                }
                let (s, t) = distinct_pair(rng, &self.boundary);
                let eps_inverse = [1u64, 2, 4, 8][rng.gen_range(0..4usize)];
                if kind == 2 {
                    Query::ApproxMaxFlow { s, t, eps_inverse }
                } else {
                    Query::ApproxMinStCut { s, t, eps_inverse }
                }
            }
            4 => Query::GlobalMinCut,
            _ => Query::Girth,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_cover_the_library_and_record_deterministically() {
        assert_eq!(Scenario::presets(3).len(), PRESET_NAMES.len());
        for scenario in Scenario::presets(3) {
            let a = scenario.record().unwrap();
            let b = scenario.record().unwrap();
            assert_eq!(a, b, "{}: record must be deterministic", scenario.name);
            let queries = a
                .events
                .iter()
                .filter(|e| matches!(e, TraceEvent::Query { .. }))
                .count() as u64;
            assert_eq!(
                queries,
                scenario.ticks * scenario.arrival.queries_per_tick(),
                "{}: open/closed loops release rate × ticks queries",
                scenario.name
            );
        }
        assert!(Scenario::preset("no-such-preset", 1).is_none());
    }

    #[test]
    fn deadline_pressure_stamps_every_query_one_tick_out() {
        let scenario = Scenario::preset("deadline-pressure", 5).unwrap();
        assert_eq!(scenario.deadline_ticks, Some(1));
        let trace = scenario.record().unwrap();
        let mut queries = 0;
        for e in &trace.events {
            if let TraceEvent::Query { vt, deadline, .. } = e {
                assert_eq!(*deadline, Some(vt + 1), "every query is due next tick");
                queries += 1;
            }
        }
        assert_eq!(queries, 6 * 6, "six bursts of six");
    }

    #[test]
    fn key_collision_aliases_the_fleet_onto_one_key_until_spikes_diverge() {
        let scenario = Scenario::preset("key-collision", 9).unwrap();
        assert_eq!(scenario.tenant_seed_stride, 0);
        let trace = scenario.record().unwrap();
        // Stride 0 derives identical seeds for every tenant …
        let seeds: Vec<u64> = trace.header.tenants.iter().map(|t| t.graph_seed).collect();
        assert!(
            seeds.windows(2).all(|w| w[0] == w[1]),
            "stride 0 must alias every tenant's seeds: {seeds:?}"
        );
        // … so before the first spike fires (tick 2), every query from
        // every tenant carries the same InstanceKey: a fleet-wide pool
        // collision on one fingerprint.
        let mut base_keys = std::collections::BTreeSet::new();
        let mut all_keys = std::collections::BTreeSet::new();
        for e in &trace.events {
            if let TraceEvent::Query { vt, key, .. } = e {
                if *vt < 2 {
                    base_keys.insert(key.clone());
                }
                all_keys.insert(key.clone());
            }
        }
        assert_eq!(base_keys.len(), 1, "one shared key pre-spike");
        // The weight spikes then split keys on the weight tier only —
        // near-misses that share the topology fingerprint.
        assert!(
            all_keys.len() > 1,
            "spikes must produce diverged keys: {all_keys:?}"
        );
        let topo_of = |k: &String| k.split('/').next().unwrap().to_string();
        let topos: std::collections::BTreeSet<String> = all_keys.iter().map(topo_of).collect();
        assert_eq!(
            topos.len(),
            1,
            "every diverged key still shares the topology half: {topos:?}"
        );
    }

    #[test]
    fn seeds_change_the_trace() {
        let a = Scenario::preset("steady-state", 1)
            .unwrap()
            .record()
            .unwrap();
        let b = Scenario::preset("steady-state", 2)
            .unwrap()
            .record()
            .unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn mutations_respect_cow_and_restore() {
        let record = TenantRecord {
            family: FamilySpec::DiagGrid { w: 5, h: 4 },
            cap_range: (1, 9),
            weight_range: (1, 9),
            graph_seed: 11,
            cap_seed: 12,
            weight_seed: 13,
        };
        let mut state = TenantState::build(&record).unwrap();
        let base_key = state.key();
        state
            .apply(&Mutation::ScaleCapacities { percent: 50 })
            .unwrap();
        assert_ne!(state.key(), base_key);
        assert!(Arc::ptr_eq(
            state.base.graph_arc(),
            state.current.graph_arc()
        ));
        state
            .apply(&Mutation::EdgeFailures { count: 3, seed: 7 })
            .unwrap();
        assert!(state.current.capacities().contains(&0));
        state
            .apply(&Mutation::WeightSpikes {
                count: 2,
                factor: 5,
                seed: 8,
            })
            .unwrap();
        state.apply(&Mutation::Restore).unwrap();
        assert_eq!(state.key(), base_key, "restore rebuilds the base spec");
        assert_eq!(state.current.capacities(), state.base.capacities());
        assert_eq!(state.current.edge_weights(), state.base.edge_weights());
    }

    #[test]
    fn skew_prefers_tenant_zero() {
        let scenario = Scenario::preset("multi-tenant-skew", 5).unwrap();
        let trace = scenario.record().unwrap();
        let mut counts = vec![0usize; scenario.tenants.len()];
        for e in &trace.events {
            if let TraceEvent::Query { tenant, .. } = e {
                counts[*tenant] += 1;
            }
        }
        let rest: usize = counts[1..].iter().sum();
        assert!(
            counts[0] > rest,
            "tenant 0 should dominate a 6× skew: {counts:?}"
        );
    }

    #[test]
    fn wave_percent_stays_in_band() {
        let rule = MutationRule::DiurnalWave {
            period: 8,
            trough_percent: 60,
        };
        let mut rng = StdRng::seed_from_u64(0);
        for tick in 0..32 {
            for (_, m) in rule.fire(tick, 2, &mut rng) {
                let Mutation::ScaleCapacities { percent } = m else {
                    panic!("waves only rescale");
                };
                assert!((60..=100).contains(&percent), "tick {tick}: {percent}");
            }
        }
    }
}
