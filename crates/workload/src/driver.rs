//! The load driver: replays a trace against the serving engine (or a
//! serial solver) and harvests outcomes plus metrics.
//!
//! Two entry points:
//!
//! * [`drive`] builds a [`ServiceEngine`] from a [`DriverConfig`],
//!   releases the trace's jobs per its arrival schedule (open loop:
//!   submit everything in release order without waiting; closed loop:
//!   bounded in-flight, harvesting the oldest ticket at the bound), and
//!   returns a [`RunReport`] — outcome fingerprints in release order,
//!   the engine's final [`MetricsSnapshot`], and wall-clock throughput.
//! * [`run_serial`] answers the same jobs one at a time through plain
//!   [`PlanarSolver::run`] — the ground truth the engine's determinism
//!   contract is measured against.
//!
//! For any worker/shard configuration, `drive(...).fingerprints` must
//! equal `run_serial(...).fingerprints` (when no deadline expires a
//! job): that is the record → replay determinism contract.

use crate::error::WorkloadError;
use crate::fingerprint::outcome_fingerprint;
use crate::scenario::Arrival;
use crate::trace::{Trace, TraceJob};
use duality_core::{PlanarInstance, PlanarSolver};
use duality_service::{AdmissionPolicy, MetricsSnapshot, ServiceEngine, SubmitError, Ticket};
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Engine shape and pacing knobs for one [`drive`] run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DriverConfig {
    /// Worker threads draining the engine queue.
    pub workers: usize,
    /// Independent pool shards.
    pub shards: usize,
    /// Job-queue capacity (the admission bound).
    pub queue_capacity: usize,
    /// Per-shard solver-pool capacity.
    pub pool_capacity: usize,
    /// Full-queue behavior. Under [`AdmissionPolicy::Reject`], shed jobs
    /// are recorded as `None` fingerprints rather than aborting the run.
    pub admission: AdmissionPolicy,
    /// Real-time length of one virtual tick. When set, the driver
    /// *paces* the replay: each job's submission waits until its
    /// recorded virtual timestamp (`start + vt × tick`), and trace
    /// deadlines are armed against the same clock. `None` (the default)
    /// submits in release order as fast as possible and ignores
    /// deadlines — the deterministic-replay mode, since expiry depends
    /// on wall-clock timing.
    pub tick: Option<Duration>,
}

impl Default for DriverConfig {
    fn default() -> DriverConfig {
        DriverConfig {
            workers: 2,
            shards: 2,
            queue_capacity: 64,
            pool_capacity: 16,
            admission: AdmissionPolicy::Block,
            tick: None,
        }
    }
}

/// What one [`drive`] run produced.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// Per-job outcome fingerprints, in release order. `None` for jobs
    /// that did not complete (shed by admission, expired, cancelled, or
    /// failed).
    pub fingerprints: Vec<Option<u64>>,
    /// Jobs the trace released (attempted submissions, including shed
    /// ones) — the *offered* load.
    pub offered: usize,
    /// Jobs that resolved to an error (or were shed at admission).
    pub failed: usize,
    /// The engine's final metrics (taken by the shutdown drain).
    pub metrics: MetricsSnapshot,
    /// Wall-clock time from first submission to drained shutdown —
    /// including any pacing sleeps when [`DriverConfig::tick`] is set.
    pub wall: Duration,
    /// Total time the driver spent *sleeping* to honor the arrival
    /// schedule (zero for unpaced replays). Subtracting it from `wall`
    /// gives the busy time the completed work actually occupied.
    pub paced: Duration,
}

impl RunReport {
    /// Wall time minus pacing sleeps: the driver-side busy time. For an
    /// unpaced replay this equals [`wall`](RunReport::wall).
    pub fn busy(&self) -> Duration {
        self.wall.saturating_sub(self.paced)
    }

    /// Completed jobs per wall-clock second — the *paced* rate. Under a
    /// real-time arrival schedule this measures the schedule, not the
    /// engine; use [`completed_jps`](RunReport::completed_jps) (busy
    /// time) and [`offered_jps`](RunReport::offered_jps) for honest
    /// saturation math.
    pub fn throughput_jps(&self) -> f64 {
        per_second(self.metrics.completed as f64, self.wall)
    }

    /// Offered load in jobs per wall-clock second: every release the
    /// trace attempted, shed or not, over the full paced wall time.
    pub fn offered_jps(&self) -> f64 {
        per_second(self.offered as f64, self.wall)
    }

    /// Completed jobs per *busy* second (wall minus pacing sleeps) — the
    /// rate the engine actually served at. Equal to
    /// [`throughput_jps`](RunReport::throughput_jps) when unpaced.
    pub fn completed_jps(&self) -> f64 {
        per_second(self.metrics.completed as f64, self.busy())
    }
}

/// `count / seconds`, zero on a degenerate (sub-measurable) interval.
fn per_second(count: f64, interval: Duration) -> f64 {
    let secs = interval.as_secs_f64();
    if secs > 0.0 {
        count / secs
    } else {
        0.0
    }
}

/// What one [`run_serial`] pass produced.
#[derive(Clone, Debug)]
pub struct SerialReport {
    /// Per-job outcome fingerprints, in release order.
    pub fingerprints: Vec<u64>,
    /// Sum of the jobs' marginal query rounds.
    pub query_rounds: u64,
    /// Sum of the per-spec substrate bills (each distinct spec pays its
    /// own topo + weight tiers — the un-amortized baseline the engine's
    /// pooled bill is compared against).
    pub substrate_rounds: u64,
    /// Distinct specs answered (= solvers built).
    pub solvers: usize,
}

/// Replays `trace` through a [`ServiceEngine`] shaped by `config`. See
/// the [module docs](self) for pacing semantics.
///
/// # Errors
///
/// Materialization errors ([`WorkloadError::KeyMismatch`], rebuild
/// failures), or [`WorkloadError::Submit`] if the engine refuses a
/// submission the driver cannot absorb (shutdown mid-run; a full queue
/// under [`AdmissionPolicy::Reject`] is absorbed as a shed job, not an
/// error).
pub fn drive(trace: &Trace, config: &DriverConfig) -> Result<RunReport, WorkloadError> {
    drive_jobs(&trace.materialize()?, trace.header.arrival, config)
}

/// [`drive`] over pre-materialized jobs: callers replaying one trace
/// against many configurations (the S5 sweep, the determinism tests)
/// materialize once and reuse the jobs, instead of rebuilding every
/// tenant graph per run.
///
/// # Errors
///
/// As [`drive`], minus the materialization failures.
pub fn drive_jobs(
    jobs: &[TraceJob],
    arrival: Arrival,
    config: &DriverConfig,
) -> Result<RunReport, WorkloadError> {
    let engine = ServiceEngine::builder()
        .shards(config.shards)
        .workers(config.workers)
        .queue_capacity(config.queue_capacity)
        .pool_capacity(config.pool_capacity)
        .admission(config.admission)
        .build()?;
    let mut report = drive_jobs_on(&engine, jobs, arrival, config.tick)?;
    // The drained shutdown gives the authoritative final metrics.
    report.metrics = engine.shutdown();
    Ok(report)
}

/// [`drive_jobs`] against a *prebuilt* engine the caller owns — one that
/// carries a telemetry sink, belongs to a reconciler, or serves several
/// phases of one long run. The engine is left running (no shutdown):
/// [`RunReport::metrics`] is a live snapshot, cumulative across every
/// phase the engine has served.
///
/// # Errors
///
/// As [`drive_jobs`].
pub fn drive_jobs_on(
    engine: &ServiceEngine,
    jobs: &[TraceJob],
    arrival: Arrival,
    tick: Option<Duration>,
) -> Result<RunReport, WorkloadError> {
    let max_in_flight = match arrival {
        Arrival::ClosedLoop { max_in_flight, .. } => Some(max_in_flight.max(1)),
        Arrival::OpenLoop { .. } => None,
    };

    let start = Instant::now();
    let mut in_flight: VecDeque<(usize, Ticket)> = VecDeque::new();
    let mut fingerprints: Vec<Option<u64>> = vec![None; jobs.len()];
    let mut failed = 0usize;
    let harvest =
        |slot: Option<(usize, Ticket)>, fingerprints: &mut Vec<Option<u64>>, failed: &mut usize| {
            if let Some((i, ticket)) = slot {
                match ticket.wait() {
                    Ok(outcome) => fingerprints[i] = Some(outcome_fingerprint(&outcome)),
                    Err(_) => *failed += 1,
                }
            }
        };

    let mut paced = Duration::ZERO;
    for (i, job) in jobs.iter().enumerate() {
        if let Some(tick) = tick {
            // Real-time pacing: hold the job until its virtual release
            // time. The sleep is accounted separately so the report can
            // split schedule time from busy time.
            let due = start + tick * u32::try_from(job.vt).unwrap_or(u32::MAX);
            let wait = due.saturating_duration_since(Instant::now());
            if !wait.is_zero() {
                std::thread::sleep(wait);
                paced += wait;
            }
        }
        let submitted = match (tick, job.deadline) {
            (Some(tick), Some(deadline_vt)) => {
                // Deadlines are armed relative to the driver's own clock:
                // `deadline_vt` ticks after the run started.
                let deadline = start + tick * u32::try_from(deadline_vt).unwrap_or(u32::MAX);
                engine.submit_with_deadline(&job.instance, job.query, deadline)
            }
            _ => engine.submit(&job.instance, job.query),
        };
        match submitted {
            Ok(ticket) => in_flight.push_back((i, ticket)),
            Err(SubmitError::QueueFull) => {
                // Reject-policy shedding is load data, not a driver bug.
                failed += 1;
                continue;
            }
            Err(e @ SubmitError::ShuttingDown) => return Err(WorkloadError::Submit(e)),
        }
        if let Some(bound) = max_in_flight {
            while in_flight.len() >= bound {
                harvest(in_flight.pop_front(), &mut fingerprints, &mut failed);
            }
        }
    }
    while let Some(slot) = in_flight.pop_front() {
        harvest(Some(slot), &mut fingerprints, &mut failed);
    }
    let metrics = engine.metrics();
    let wall = start.elapsed();
    Ok(RunReport {
        fingerprints,
        offered: jobs.len(),
        failed,
        metrics,
        wall,
        paced,
    })
}

/// Answers the trace's jobs serially through [`PlanarSolver::run`], one
/// solver per distinct spec (fresh solvers, no pooling) — the
/// ground-truth baseline for both outcomes and the un-amortized
/// substrate bill.
///
/// # Errors
///
/// Materialization errors, or [`WorkloadError::Query`] if a recorded
/// query fails (a generated trace only records satisfiable queries).
pub fn run_serial(trace: &Trace) -> Result<SerialReport, WorkloadError> {
    run_serial_jobs(&trace.materialize()?)
}

/// [`run_serial`] over pre-materialized jobs (see [`drive_jobs`]).
///
/// # Errors
///
/// As [`run_serial`], minus the materialization failures.
pub fn run_serial_jobs(jobs: &[TraceJob]) -> Result<SerialReport, WorkloadError> {
    // Keyed by spec identity (the materialized Arc), not content: replay
    // hands consecutive jobs of an unmutated tenant the same allocation.
    let mut solvers: HashMap<*const PlanarInstance, PlanarSolver> = HashMap::new();
    let mut fingerprints = Vec::with_capacity(jobs.len());
    let mut query_rounds = 0u64;
    for job in jobs {
        let solver = solvers
            .entry(Arc::as_ptr(&job.instance))
            .or_insert_with(|| PlanarSolver::from_instance(Arc::clone(&job.instance)));
        let outcome = solver
            .run(job.query)
            .map_err(|error| WorkloadError::Query {
                event: job.event,
                error,
            })?;
        query_rounds += outcome.rounds().query_total();
        fingerprints.push(outcome_fingerprint(&outcome));
    }
    let substrate_rounds = solvers.values().map(|s| s.substrate_rounds().total()).sum();
    Ok(SerialReport {
        fingerprints,
        query_rounds,
        substrate_rounds,
        solvers: solvers.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Scenario;

    #[test]
    fn drive_matches_serial_on_a_mutating_trace() {
        let trace = Scenario::preset("failover-storm", 21)
            .unwrap()
            .record()
            .unwrap();
        let serial = run_serial(&trace).unwrap();
        assert_eq!(serial.fingerprints.len(), trace.query_count());
        let report = drive(
            &trace,
            &DriverConfig {
                workers: 2,
                shards: 2,
                ..DriverConfig::default()
            },
        )
        .unwrap();
        assert_eq!(report.failed, 0);
        let engine_prints: Vec<u64> = report.fingerprints.iter().map(|f| f.unwrap()).collect();
        assert_eq!(engine_prints, serial.fingerprints);
        assert_eq!(report.metrics.completed as usize, trace.query_count());
        // Pooling amortizes what fresh serial solvers pay in full.
        assert!(report.metrics.substrate_rounds() <= serial.substrate_rounds);
        assert!(serial.solvers > 1, "storm traces visit multiple specs");
    }

    #[test]
    fn closed_loop_bounds_in_flight() {
        let trace = Scenario::preset("respec-heavy", 5)
            .unwrap()
            .record()
            .unwrap();
        let bound = match trace.header.arrival {
            crate::scenario::Arrival::ClosedLoop { max_in_flight, .. } => max_in_flight,
            crate::scenario::Arrival::OpenLoop { .. } => panic!("respec-heavy is closed-loop"),
        };
        let report = drive(&trace, &DriverConfig::default()).unwrap();
        assert_eq!(report.failed, 0);
        assert!(
            report.metrics.queue_high_water <= bound,
            "closed loop never queues past its in-flight bound: {} > {bound}",
            report.metrics.queue_high_water
        );
        assert_eq!(
            report.metrics.completed as usize,
            trace.query_count(),
            "every released job completes"
        );
    }

    #[test]
    fn reject_admission_sheds_instead_of_failing_the_run() {
        let trace = Scenario::preset("rush-hour", 2).unwrap().record().unwrap();
        // One worker, a two-slot queue, reject policy: the open-loop
        // burst must shed some jobs, and the driver must absorb that.
        let report = drive(
            &trace,
            &DriverConfig {
                workers: 1,
                shards: 1,
                queue_capacity: 2,
                admission: AdmissionPolicy::Reject,
                ..DriverConfig::default()
            },
        )
        .unwrap();
        let completed = report.fingerprints.iter().flatten().count();
        assert_eq!(completed + report.failed, trace.query_count());
        assert_eq!(
            report.metrics.rejected as usize + report.metrics.completed as usize,
            trace.query_count()
        );
    }
}
