//! The one error type of the workload subsystem.

use duality_core::DualityError;
use duality_planar::PlanarError;
use duality_service::SubmitError;

/// Everything that can go wrong recording, parsing, materializing or
/// driving a trace.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WorkloadError {
    /// A tenant's graph family failed to build.
    Planar(PlanarError),
    /// A tenant's instance (or a mutation's respec) failed validation.
    Instance(DualityError),
    /// A trace line failed to parse (1-based line number).
    Parse {
        /// 1-based line number of the offending trace line.
        line: usize,
        /// What was wrong with it.
        reason: String,
    },
    /// Replay rebuilt a different spec than the trace recorded — the
    /// trace is corrupt or was produced by an incompatible generator.
    KeyMismatch {
        /// 0-based index of the offending event.
        event: usize,
        /// The instance key the trace recorded.
        recorded: String,
        /// The instance key replay rebuilt.
        rebuilt: String,
    },
    /// The engine refused a submission the driver could not absorb.
    Submit(SubmitError),
    /// A query failed during serial ground-truth replay (0-based event
    /// index).
    Query {
        /// 0-based index of the failing query event.
        event: usize,
        /// The solver's error.
        error: DualityError,
    },
}

impl std::fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WorkloadError::Planar(e) => write!(f, "tenant graph failed to build: {e}"),
            WorkloadError::Instance(e) => write!(f, "instance validation failed: {e}"),
            WorkloadError::Parse { line, reason } => {
                write!(f, "trace parse error at line {line}: {reason}")
            }
            WorkloadError::KeyMismatch {
                event,
                recorded,
                rebuilt,
            } => write!(
                f,
                "replay key mismatch at event {event}: recorded {recorded}, rebuilt {rebuilt}"
            ),
            WorkloadError::Submit(e) => write!(f, "submission refused: {e}"),
            WorkloadError::Query { event, error } => {
                write!(f, "query at event {event} failed: {error}")
            }
        }
    }
}

impl std::error::Error for WorkloadError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WorkloadError::Planar(e) => Some(e),
            WorkloadError::Instance(e) => Some(e),
            WorkloadError::Submit(e) => Some(e),
            WorkloadError::Query { error, .. } => Some(error),
            _ => None,
        }
    }
}

impl From<PlanarError> for WorkloadError {
    fn from(e: PlanarError) -> WorkloadError {
        WorkloadError::Planar(e)
    }
}

impl From<DualityError> for WorkloadError {
    fn from(e: DualityError) -> WorkloadError {
        WorkloadError::Instance(e)
    }
}

impl From<SubmitError> for WorkloadError {
    fn from(e: SubmitError) -> WorkloadError {
        WorkloadError::Submit(e)
    }
}
