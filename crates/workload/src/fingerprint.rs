//! Outcome fingerprints: the compact form of the determinism contract.

use duality_core::Outcome;
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

/// A collision-resistant digest of everything the serving determinism
/// contract covers: the outcome's witness data plus its marginal query
/// rounds. Substrate *snapshots* are deliberately excluded — concurrent
/// queries may observe the lazily built substrate at different stages,
/// which the engine's contract does not promise.
///
/// Two runs (any worker/shard configuration, or serial
/// [`duality_core::PlanarSolver::run`]) answering the same trace must
/// produce identical fingerprint sequences; comparing the sequences is
/// how the replay tests and the `s4`/`s5` experiments check the
/// contract.
pub fn outcome_fingerprint(outcome: &Outcome) -> u64 {
    let mut h = DefaultHasher::new();
    outcome.rounds().query_total().hash(&mut h);
    match outcome {
        Outcome::MaxFlow(r) => {
            (0u8, r.value, &r.flow, r.probes).hash(&mut h);
        }
        Outcome::MinStCut(r) => {
            (1u8, r.value, &r.side, &r.cut_darts).hash(&mut h);
        }
        Outcome::ApproxMaxFlow(r) => {
            (2u8, r.value_numer, r.denom, &r.flow_numer).hash(&mut h);
        }
        Outcome::ApproxMinStCut(r) => {
            (3u8, r.value, &r.cut_edges).hash(&mut h);
        }
        Outcome::GlobalMinCut(r) => {
            (4u8, r.value, &r.side, &r.cut_edges).hash(&mut h);
        }
        Outcome::Girth(r) => {
            (5u8, r.girth, &r.cycle_edges).hash(&mut h);
        }
    }
    h.finish()
}
