//! The flat JSON-line codec shared by every durable artifact format.
//!
//! One object per line; values are strings, integers or finite floats —
//! all the trace, control-plane and lab-spec formats need, and all the
//! parser accepts (same no-serde discipline as the bench harness). The
//! writer is canonical: fields serialize in the order given, with a
//! fixed `", "` / `": "` layout, and floats in their shortest
//! round-trip form with a forced `.0`/exponent marker — so
//! re-serializing a parsed document is **byte-stable**, the property
//! the tamper-detection idioms (content hashes over the serialized
//! form) rely on.
//!
//! Extracted from the trace module so `duality-control` can persist its
//! [`FleetSpec`](https://docs.rs/duality-control) snapshots in the same
//! format; the trace writer/parser is the original consumer. The tenant
//! [`FamilySpec`] field encoding lives here too, since both formats
//! embed tenant generator parameters.

use crate::scenario::FamilySpec;

/// A field value: string, integer (stored wide enough for `u64`), or
/// finite float.
pub enum Val {
    /// A JSON string.
    S(String),
    /// A JSON integer.
    N(i128),
    /// A JSON float. Non-finite values are unrepresentable in JSON; the
    /// writer refuses them (see [`line()`]).
    F(f64),
}

impl Val {
    /// A string value.
    pub fn s(v: &str) -> Val {
        Val::S(v.to_string())
    }
    /// An unsigned integer value.
    pub fn n(v: u64) -> Val {
        Val::N(i128::from(v))
    }
    /// A signed integer value.
    pub fn i(v: i64) -> Val {
        Val::N(i128::from(v))
    }
    /// A float value.
    pub fn f(v: f64) -> Val {
        Val::F(v)
    }
}

/// Canonical float form: Rust's shortest round-trip representation, with
/// a `.0` appended when it would otherwise read as an integer — so the
/// parser's int/float distinction survives a round trip and
/// re-serialization stays byte-stable (`2.0` → `"2.0"` → `2.0`).
fn float_repr(v: f64) -> String {
    let s = format!("{v}");
    if s.contains('.') || s.contains('e') || s.contains('E') {
        s
    } else {
        format!("{s}.0")
    }
}

/// Appends one JSON object line built from `fields` (canonical layout —
/// see the [module docs](self) on byte stability).
///
/// # Panics
///
/// On a non-finite [`Val::F`]: JSON cannot represent it, and silently
/// writing `null` would break the byte-stable round trip the durable
/// formats rely on.
pub fn line(out: &mut String, fields: &[(&str, Val)]) {
    out.push('{');
    for (i, (k, v)) in fields.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&json_string(k));
        out.push_str(": ");
        match v {
            Val::S(s) => out.push_str(&json_string(s)),
            Val::N(n) => out.push_str(&n.to_string()),
            Val::F(f) => {
                assert!(f.is_finite(), "non-finite float for field `{k}`");
                out.push_str(&float_repr(*f));
            }
        }
    }
    out.push_str("}\n");
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// One parsed line: an ordered list of `(key, value)` fields.
pub struct Obj(Vec<(String, Val)>);

impl Obj {
    /// Parses one JSON object line.
    ///
    /// # Errors
    ///
    /// A human-readable reason on malformed input (callers wrap it with
    /// their own line number).
    pub fn parse(line: &str) -> Result<Obj, String> {
        let mut chars = line.trim().chars().peekable();
        if chars.next() != Some('{') {
            return Err("expected `{`".into());
        }
        let mut fields = Vec::new();
        loop {
            skip_ws(&mut chars);
            match chars.peek() {
                Some('}') => {
                    chars.next();
                    break;
                }
                Some('"') => {}
                _ => return Err("expected `\"` or `}`".into()),
            }
            let key = parse_string(&mut chars)?;
            skip_ws(&mut chars);
            if chars.next() != Some(':') {
                return Err(format!("expected `:` after key `{key}`"));
            }
            skip_ws(&mut chars);
            let val = match chars.peek() {
                Some('"') => Val::S(parse_string(&mut chars)?),
                Some(c) if c.is_ascii_digit() || *c == '-' => parse_number(&mut chars)?,
                _ => return Err(format!("unsupported value for key `{key}`")),
            };
            fields.push((key, val));
            skip_ws(&mut chars);
            match chars.next() {
                Some(',') => {}
                Some('}') => break,
                _ => return Err("expected `,` or `}`".into()),
            }
        }
        skip_ws(&mut chars);
        if chars.next().is_some() {
            return Err("trailing content after object".into());
        }
        Ok(Obj(fields))
    }

    fn field(&self, key: &str) -> Option<&Val> {
        self.0.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// The string field `key`.
    ///
    /// # Errors
    ///
    /// When the field is missing or not a string.
    pub fn str(&self, key: &str) -> Result<&str, String> {
        match self.field(key) {
            Some(Val::S(s)) => Ok(s),
            Some(_) => Err(format!("field `{key}` is not a string")),
            None => Err(format!("missing field `{key}`")),
        }
    }

    /// The string field `key`, `None` when absent.
    ///
    /// # Errors
    ///
    /// When the field is present but not a string.
    pub fn opt_str(&self, key: &str) -> Result<Option<&str>, String> {
        match self.field(key) {
            None => Ok(None),
            Some(_) => self.str(key).map(Some),
        }
    }

    fn num(&self, key: &str) -> Result<i128, String> {
        match self.field(key) {
            Some(Val::N(n)) => Ok(*n),
            Some(_) => Err(format!("field `{key}` is not an integer")),
            None => Err(format!("missing field `{key}`")),
        }
    }

    /// The float field `key` (integers widen losslessly where they fit).
    ///
    /// # Errors
    ///
    /// When the field is missing or a string.
    pub fn f64(&self, key: &str) -> Result<f64, String> {
        match self.field(key) {
            Some(Val::F(f)) => Ok(*f),
            Some(Val::N(n)) => Ok(*n as f64),
            Some(Val::S(_)) => Err(format!("field `{key}` is not a number")),
            None => Err(format!("missing field `{key}`")),
        }
    }

    /// The float field `key`, `None` when absent.
    ///
    /// # Errors
    ///
    /// When the field is present but a string.
    pub fn opt_f64(&self, key: &str) -> Result<Option<f64>, String> {
        match self.field(key) {
            None => Ok(None),
            Some(_) => self.f64(key).map(Some),
        }
    }

    /// The `u64` field `key`.
    ///
    /// # Errors
    ///
    /// When the field is missing, not a number, or out of range.
    pub fn u64(&self, key: &str) -> Result<u64, String> {
        u64::try_from(self.num(key)?).map_err(|_| format!("field `{key}` out of u64 range"))
    }

    /// The `i64` field `key`.
    ///
    /// # Errors
    ///
    /// When the field is missing, not a number, or out of range.
    pub fn i64(&self, key: &str) -> Result<i64, String> {
        i64::try_from(self.num(key)?).map_err(|_| format!("field `{key}` out of i64 range"))
    }

    /// The `u64` field `key`, `None` when absent.
    ///
    /// # Errors
    ///
    /// When the field is present but not a number in range.
    pub fn opt_u64(&self, key: &str) -> Result<Option<u64>, String> {
        match self.field(key) {
            None => Ok(None),
            Some(_) => self.u64(key).map(Some),
        }
    }
}

fn skip_ws(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) {
    while chars.peek().is_some_and(|c| c.is_whitespace()) {
        chars.next();
    }
}

fn parse_string(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Result<String, String> {
    if chars.next() != Some('"') {
        return Err("expected `\"`".into());
    }
    let mut out = String::new();
    loop {
        match chars.next() {
            Some('"') => return Ok(out),
            Some('\\') => match chars.next() {
                Some('"') => out.push('"'),
                Some('\\') => out.push('\\'),
                Some('n') => out.push('\n'),
                Some('t') => out.push('\t'),
                Some('u') => {
                    let hex: String = (0..4).filter_map(|_| chars.next()).collect();
                    let code = u32::from_str_radix(&hex, 16)
                        .map_err(|_| format!("bad \\u escape `{hex}`"))?;
                    out.push(char::from_u32(code).ok_or("bad \\u code point")?);
                }
                other => return Err(format!("unsupported escape `\\{other:?}`")),
            },
            Some(c) => out.push(c),
            None => return Err("unterminated string".into()),
        }
    }
}

fn parse_number(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Result<Val, String> {
    let mut text = String::new();
    let mut float = false;
    if chars.peek() == Some(&'-') {
        text.push('-');
        chars.next();
    }
    while let Some(&c) = chars.peek() {
        match c {
            '0'..='9' => {}
            '.' | 'e' | 'E' => float = true,
            // Sign inside an exponent (`1e-3`); a bad position fails the
            // f64 parse below.
            '+' | '-' if float => {}
            _ => break,
        }
        text.push(c);
        chars.next();
    }
    if float {
        let v = text
            .parse::<f64>()
            .map_err(|_| format!("bad number `{text}`"))?;
        if !v.is_finite() {
            return Err(format!("number `{text}` overflows f64"));
        }
        Ok(Val::F(v))
    } else {
        text.parse::<i128>()
            .map(Val::N)
            .map_err(|_| format!("bad number `{text}`"))
    }
}

// ---------------------------------------------------------------------
// The tenant-family field encoding, shared by traces and fleet specs.

/// The field encoding of a [`FamilySpec`] (inverse:
/// [`parse_family`]) — spliced into tenant lines by both the trace and
/// the fleet-spec formats.
pub fn family_fields(family: &FamilySpec) -> Vec<(&'static str, Val)> {
    match *family {
        FamilySpec::Grid { w, h } => vec![
            ("family", Val::s("grid")),
            ("w", Val::n(w as u64)),
            ("h", Val::n(h as u64)),
        ],
        FamilySpec::DiagGrid { w, h } => vec![
            ("family", Val::s("diag_grid")),
            ("w", Val::n(w as u64)),
            ("h", Val::n(h as u64)),
        ],
        FamilySpec::Apollonian { n } => {
            vec![("family", Val::s("apollonian")), ("n", Val::n(n as u64))]
        }
        FamilySpec::Outerplanar { n, full } => vec![
            ("family", Val::s("outerplanar")),
            ("n", Val::n(n as u64)),
            ("full", Val::n(u64::from(full))),
        ],
        FamilySpec::SparseGrid { w, h, target_m } => vec![
            ("family", Val::s("sparse_grid")),
            ("w", Val::n(w as u64)),
            ("h", Val::n(h as u64)),
            ("target_m", Val::n(target_m as u64)),
        ],
    }
}

/// Parses the [`FamilySpec`] encoded in `obj` (inverse of
/// [`family_fields`]).
///
/// # Errors
///
/// A human-readable reason on an unknown family or missing fields.
pub fn parse_family(obj: &Obj) -> Result<FamilySpec, String> {
    Ok(match obj.str("family")? {
        "grid" => FamilySpec::Grid {
            w: obj.u64("w")? as usize,
            h: obj.u64("h")? as usize,
        },
        "diag_grid" => FamilySpec::DiagGrid {
            w: obj.u64("w")? as usize,
            h: obj.u64("h")? as usize,
        },
        "apollonian" => FamilySpec::Apollonian {
            n: obj.u64("n")? as usize,
        },
        "outerplanar" => FamilySpec::Outerplanar {
            n: obj.u64("n")? as usize,
            full: obj.u64("full")? != 0,
        },
        "sparse_grid" => FamilySpec::SparseGrid {
            w: obj.u64("w")? as usize,
            h: obj.u64("h")? as usize,
            target_m: obj.u64("target_m")? as usize,
        },
        other => return Err(format!("unknown family `{other}`")),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn string_escapes_round_trip() {
        let tricky = "a\"b\\c\nd\te\u{1}f";
        let mut out = String::new();
        line(&mut out, &[("k", Val::S(tricky.to_string()))]);
        let obj = Obj::parse(out.trim_end()).unwrap();
        assert_eq!(obj.str("k").unwrap(), tricky);
    }

    #[test]
    fn every_family_round_trips() {
        let families = [
            FamilySpec::Grid { w: 3, h: 4 },
            FamilySpec::DiagGrid { w: 5, h: 2 },
            FamilySpec::Apollonian { n: 7 },
            FamilySpec::Outerplanar { n: 9, full: true },
            FamilySpec::SparseGrid {
                w: 4,
                h: 4,
                target_m: 20,
            },
        ];
        for family in families {
            let mut out = String::new();
            line(&mut out, &family_fields(&family));
            let obj = Obj::parse(out.trim_end()).unwrap();
            assert_eq!(parse_family(&obj).unwrap(), family);
        }
    }

    #[test]
    fn floats_round_trip_byte_stably() {
        for v in [2.0f64, -0.0, 0.5, 1.5e300, 1e-8, 123.456] {
            let mut out = String::new();
            line(&mut out, &[("v", Val::f(v))]);
            let obj = Obj::parse(out.trim_end()).unwrap();
            assert_eq!(obj.f64("v").unwrap().to_bits(), v.to_bits(), "{v}");
            let mut again = String::new();
            line(&mut again, &[("v", Val::f(obj.f64("v").unwrap()))]);
            assert_eq!(again, out, "re-serialization is byte-stable for {v}");
        }
        // Integers widen through f64(); floats are refused by u64().
        let obj = Obj::parse("{\"i\": 7, \"f\": 2.5, \"e\": 2e3}").unwrap();
        assert_eq!(obj.f64("i").unwrap(), 7.0);
        assert_eq!(obj.f64("e").unwrap(), 2000.0);
        assert!(obj.u64("f").is_err());
        assert_eq!(obj.opt_f64("f").unwrap(), Some(2.5));
        assert_eq!(obj.opt_f64("missing").unwrap(), None);
        assert_eq!(obj.opt_str("missing").unwrap(), None);
        // Overflowing literals are refused, not folded to infinity.
        assert!(Obj::parse("{\"v\": 1e999}").is_err());
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn writer_refuses_non_finite_floats() {
        let mut out = String::new();
        line(&mut out, &[("v", Val::f(f64::NAN))]);
    }

    #[test]
    fn parser_reports_malformed_lines() {
        assert!(Obj::parse("not json").is_err());
        assert!(Obj::parse("{\"k\": }").is_err());
        assert!(Obj::parse("{\"k\": 1} trailing").is_err());
        assert!(Obj::parse("{\"k\": 1").is_err(), "unterminated object");
        let obj = Obj::parse("{\"s\": \"x\", \"n\": -3}").unwrap();
        assert_eq!(obj.str("s").unwrap(), "x");
        assert_eq!(obj.i64("n").unwrap(), -3);
        assert!(obj.u64("n").is_err(), "negative is out of u64 range");
        assert!(obj.str("n").is_err() && obj.u64("s").is_err());
        assert_eq!(obj.opt_u64("missing").unwrap(), None);
    }
}
