//! Saturation probing: step the open-loop arrival rate until the engine
//! overloads, and report the knee of the curve.
//!
//! [`ramp`] is the instrument the worker-scaling question needs. Where
//! [`drive`](crate::driver::drive) replays a recorded schedule,
//! the ramp *generates* schedules: round `r` offers the trace's jobs at
//! `initial_jps + r × increment_jps` jobs per second (paced by real
//! sleeps, cycling the job list as needed), harvests every ticket, and
//! measures the rate the engine actually achieved plus the round's own
//! latency quantiles. A round is **overloaded** when the achieved rate
//! falls below a margin of the offered rate (completed < offered, in
//! rate terms — the driver could not keep the schedule, or harvesting
//! outlived it) or when the round's p99 passes a configured ceiling.
//! The ramp stops at the first overloaded round and reports:
//!
//! * `max_sustainable_jps` — the achieved rate of the last round that
//!   was *not* overloaded (the modeled experiment's "maximum capacity"),
//! * the knee-of-curve p50/p99 — that same round's latency quantiles,
//!   i.e. what latency looks like just before the system tips over.
//!
//! The engine is built once and survives across rounds, and the pools
//! are warmed (one job per distinct spec) before the first measured
//! round — so the knee measures steady-state serving, not substrate
//! construction. Per-round quantiles come from differencing the
//! engine's cumulative latency histogram
//! ([`LatencySnapshot::delta`](duality_service::LatencySnapshot::delta)).

use crate::error::WorkloadError;
use crate::trace::TraceJob;
use crate::DriverConfig;
use duality_service::{ServiceEngine, Ticket};
use std::time::{Duration, Instant};

/// Knobs of one [`ramp`] probe.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RampConfig {
    /// Offered rate of round 0, in jobs per second.
    pub initial_jps: u64,
    /// Rate step between rounds, in jobs per second (the
    /// `increment_rps` of the modeled experiment).
    pub increment_jps: u64,
    /// Jobs offered per round (the trace's job list is cycled).
    pub round_jobs: usize,
    /// Hard cap on rounds, overloaded or not.
    pub max_rounds: usize,
    /// Overload ceiling on the round's p99 latency, in microseconds
    /// (`None`: latency never trips the probe).
    pub p99_ceiling_us: Option<u64>,
    /// Sustainability margin in percent: a round is overloaded when
    /// `achieved < margin% × offered`. 90 is a sensible default — it
    /// tolerates scheduler jitter without calling a saturated system
    /// sustainable.
    pub margin_percent: u32,
}

impl Default for RampConfig {
    fn default() -> RampConfig {
        RampConfig {
            initial_jps: 100,
            increment_jps: 100,
            round_jobs: 64,
            max_rounds: 24,
            p99_ceiling_us: None,
            margin_percent: 90,
        }
    }
}

/// What one ramp round measured.
#[derive(Clone, Copy, Debug)]
pub struct RampRound {
    /// The nominal offered rate, in jobs per second.
    pub offered_jps: f64,
    /// `completed / round wall` — the rate the engine actually served
    /// at, harvest included.
    pub achieved_jps: f64,
    /// Jobs offered this round.
    pub offered: usize,
    /// Jobs that completed with an outcome.
    pub completed: usize,
    /// The round's own p50 latency ceiling, in microseconds.
    pub p50_us: u64,
    /// The round's own p99 latency ceiling, in microseconds.
    pub p99_us: u64,
    /// Whether this round tripped the overload test.
    pub overloaded: bool,
}

/// The full probe: every round, plus the knee summary.
#[derive(Clone, Debug)]
pub struct RampReport {
    /// All measured rounds, in offered-rate order.
    pub rounds: Vec<RampRound>,
    /// Achieved rate of the last sustainable round, in jobs per second
    /// (`0.0` when even the first round overloaded).
    pub max_sustainable_jps: f64,
    /// p50 latency at the knee (the last sustainable round), µs.
    pub knee_p50_us: u64,
    /// p99 latency at the knee, µs.
    pub knee_p99_us: u64,
}

impl RampReport {
    /// The knee round itself: the last round that was not overloaded.
    pub fn knee(&self) -> Option<&RampRound> {
        self.rounds.iter().rev().find(|r| !r.overloaded)
    }
}

/// Probes the engine shape in `config` with the given trace jobs: steps
/// the offered rate per [`RampConfig`] until overload (or the round cap)
/// and reports the maximum sustainable rate and knee-of-curve latency.
/// See the [module docs](self) for the overload criterion.
///
/// # Errors
///
/// [`WorkloadError::Submit`] if the engine shuts down mid-probe (a full
/// queue under [`AdmissionPolicy::Reject`](duality_service::AdmissionPolicy)
/// sheds load into the overload signal instead). An empty `jobs` slice
/// is a degenerate probe and returns an empty report.
pub fn ramp(
    jobs: &[TraceJob],
    config: &RampConfig,
    driver: &DriverConfig,
) -> Result<RampReport, WorkloadError> {
    let empty = RampReport {
        rounds: Vec::new(),
        max_sustainable_jps: 0.0,
        knee_p50_us: 0,
        knee_p99_us: 0,
    };
    if jobs.is_empty() || config.round_jobs == 0 || config.max_rounds == 0 {
        return Ok(empty);
    }
    let engine = ServiceEngine::builder()
        .shards(driver.shards)
        .workers(driver.workers)
        .queue_capacity(driver.queue_capacity)
        .pool_capacity(driver.pool_capacity)
        .admission(driver.admission)
        .build()?;

    // Warm the pools: one recorded job per distinct spec, harvested
    // before the clock starts, so round 0 does not pay substrate
    // construction that later rounds amortize away.
    let mut seen: Vec<*const duality_core::PlanarInstance> = Vec::new();
    let mut warmups = Vec::new();
    for job in jobs {
        let ptr = std::sync::Arc::as_ptr(&job.instance);
        if !seen.contains(&ptr) {
            seen.push(ptr);
            warmups.push(submit(&engine, job)?);
        }
    }
    for ticket in warmups {
        let _ = ticket.wait();
    }

    let mut prev_latency = engine.metrics().latency;
    let mut prev_completed = engine.metrics().completed;
    let mut rounds = Vec::new();
    for r in 0..config.max_rounds {
        let rate = config.initial_jps + r as u64 * config.increment_jps;
        if rate == 0 {
            break;
        }
        let interval = Duration::from_secs_f64(1.0 / rate as f64);
        let round_start = Instant::now();
        let mut tickets = Vec::with_capacity(config.round_jobs);
        for k in 0..config.round_jobs {
            let due = round_start + interval * u32::try_from(k).unwrap_or(u32::MAX);
            let wait = due.saturating_duration_since(Instant::now());
            if !wait.is_zero() {
                std::thread::sleep(wait);
            }
            tickets.push(submit(&engine, &jobs[k % jobs.len()])?);
        }
        for ticket in tickets {
            let _ = ticket.wait();
        }
        let wall = round_start.elapsed();
        let m = engine.metrics();
        let latency = m.latency.delta(&prev_latency);
        let completed = (m.completed - prev_completed) as usize;
        prev_latency = m.latency;
        prev_completed = m.completed;

        let achieved_jps = completed as f64 / wall.as_secs_f64().max(1e-9);
        let p50_us = latency.quantile_us(0.5).unwrap_or(0);
        let p99_us = latency.quantile_us(0.99).unwrap_or(0);
        let sustainable_floor = rate as f64 * f64::from(config.margin_percent.min(100)) / 100.0;
        let overloaded =
            achieved_jps < sustainable_floor || config.p99_ceiling_us.is_some_and(|c| p99_us > c);
        rounds.push(RampRound {
            offered_jps: rate as f64,
            achieved_jps,
            offered: config.round_jobs,
            completed,
            p50_us,
            p99_us,
            overloaded,
        });
        if overloaded {
            break;
        }
    }
    let _ = engine.shutdown();

    let report = RampReport {
        max_sustainable_jps: 0.0,
        knee_p50_us: 0,
        knee_p99_us: 0,
        rounds,
    };
    Ok(match report.knee().copied() {
        Some(knee) => RampReport {
            max_sustainable_jps: knee.achieved_jps,
            knee_p50_us: knee.p50_us,
            knee_p99_us: knee.p99_us,
            ..report
        },
        None => report,
    })
}

fn submit(engine: &ServiceEngine, job: &TraceJob) -> Result<Ticket, WorkloadError> {
    Ok(engine.submit(&job.instance, job.query)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Scenario;

    #[test]
    fn ramp_reports_rounds_and_a_knee() {
        let trace = Scenario::preset("steady-state", 3)
            .unwrap()
            .record()
            .unwrap();
        let jobs = trace.materialize().unwrap();
        let report = ramp(
            &jobs,
            &RampConfig {
                initial_jps: 50,
                increment_jps: 200,
                round_jobs: 8,
                max_rounds: 3,
                p99_ceiling_us: None,
                margin_percent: 90,
            },
            &DriverConfig::default(),
        )
        .unwrap();
        assert!(!report.rounds.is_empty() && report.rounds.len() <= 3);
        for (i, round) in report.rounds.iter().enumerate() {
            assert_eq!(round.offered, 8);
            assert_eq!(round.offered_jps, 50.0 + 200.0 * i as f64);
            assert!(round.completed <= round.offered);
            // Only the final round may be the overloaded one.
            if i + 1 < report.rounds.len() {
                assert!(!round.overloaded);
            }
        }
        if let Some(knee) = report.knee() {
            assert_eq!(report.max_sustainable_jps, knee.achieved_jps);
            assert_eq!(report.knee_p99_us, knee.p99_us);
            assert!(report.max_sustainable_jps > 0.0);
        }
    }

    #[test]
    fn a_tight_latency_ceiling_trips_round_one() {
        let trace = Scenario::preset("steady-state", 4)
            .unwrap()
            .record()
            .unwrap();
        let jobs = trace.materialize().unwrap();
        // 1 µs p99 ceiling: no real engine meets it, so the probe must
        // stop after one overloaded round and report no sustainable rate.
        let report = ramp(
            &jobs,
            &RampConfig {
                initial_jps: 1_000,
                increment_jps: 1_000,
                round_jobs: 4,
                max_rounds: 5,
                p99_ceiling_us: Some(1),
                margin_percent: 90,
            },
            &DriverConfig::default(),
        )
        .unwrap();
        assert_eq!(report.rounds.len(), 1);
        assert!(report.rounds[0].overloaded);
        assert!(report.knee().is_none());
        assert_eq!(report.max_sustainable_jps, 0.0);
    }

    #[test]
    fn degenerate_probes_return_empty_reports() {
        let report = ramp(&[], &RampConfig::default(), &DriverConfig::default()).unwrap();
        assert!(report.rounds.is_empty());
        assert_eq!(report.max_sustainable_jps, 0.0);
    }
}
