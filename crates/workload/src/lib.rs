//! Scenario workloads for the duality serving stack: deterministic
//! traffic generation, trace record/replay, and a load driver.
//!
//! The layers below answer queries ([`duality_core::PlanarSolver`]) and
//! serve them at scale ([`duality_service::ServiceEngine`]); this crate
//! generates the *traffic* — reproducibly. Three layers:
//!
//! * **[`Scenario`]** ([`scenario`]) — a declarative, seeded description
//!   of traffic: tenant fleets drawn from the planar generator families,
//!   spec-mutation streams (diurnal capacity waves, edge failures,
//!   weight spikes, storm respec bursts — all through the instances'
//!   copy-on-write respec path, so every derived spec shares its
//!   tenant's graph allocation and topology substrate), query mixes over
//!   all six query kinds, and open-/closed-loop arrival schedules on a
//!   logical clock. A library of seven presets ([`Scenario::presets`])
//!   covers the profiles a serving fleet meets: steady state, rush hour,
//!   failover storm, multi-tenant skew, cold start, respec-heavy, and a
//!   cancellation storm.
//! * **[`Trace`]** ([`trace`]) — the recorded event history a scenario
//!   expands into: versioned JSONL in, versioned JSONL out
//!   ([`Trace::to_jsonl`] / [`Trace::parse_jsonl`]), with every event
//!   stamped by the [`InstanceKey`](duality_core::InstanceKey) of the
//!   spec it ran against, so replay ([`Trace::materialize`]) proves it
//!   rebuilt the recorded problems.
//! * **[`driver`]** — [`driver::drive`] replays a trace through a
//!   [`ServiceEngine`](duality_service::ServiceEngine) per the arrival
//!   schedule and harvests fingerprints + metrics;
//!   [`driver::run_serial`] is the serial ground truth. For any
//!   worker/shard configuration the fingerprint sequences must match —
//!   the engine's per-job determinism contract, extended to whole
//!   traffic histories.
//! * **[`ramp`](mod@ramp)** — the saturation probe: steps the open-loop arrival
//!   rate round by round until the engine overloads, reporting the
//!   maximum sustainable rate and the knee-of-curve latency for a given
//!   worker/shard shape.
//!
//! # Example
//!
//! ```
//! use duality_workload::{driver, DriverConfig, Scenario, Trace};
//!
//! let scenario = Scenario::preset("steady-state", 7).unwrap();
//! let trace = scenario.record().unwrap();
//!
//! // The trace is durable: serialize, parse back, nothing lost.
//! let parsed = Trace::parse_jsonl(&trace.to_jsonl()).unwrap();
//! assert_eq!(parsed, trace);
//!
//! // Replay through the engine reproduces serial ground truth bit for
//! // bit, whatever the worker/shard shape.
//! let serial = driver::run_serial(&trace).unwrap();
//! let run = driver::drive(&trace, &DriverConfig::default()).unwrap();
//! let replayed: Vec<u64> = run.fingerprints.iter().map(|f| f.unwrap()).collect();
//! assert_eq!(replayed, serial.fingerprints);
//! ```

pub mod driver;
pub mod error;
pub mod fingerprint;
pub mod jsonl;
pub mod ramp;
pub mod scenario;
pub mod trace;

pub use driver::{DriverConfig, RunReport, SerialReport};
pub use error::WorkloadError;
pub use fingerprint::outcome_fingerprint;
pub use ramp::{ramp, RampConfig, RampReport, RampRound};
pub use scenario::{
    Arrival, FamilySpec, Mutation, MutationRule, QueryMix, Scenario, TenantSpec, PRESET_NAMES,
    TRACE_SCHEMA_VERSION,
};
pub use trace::{TenantRecord, Trace, TraceEvent, TraceHeader, TraceJob};
