//! Trace record/replay: the durable form of a scenario's traffic.
//!
//! A [`Trace`] is the full event history one [`Scenario`](crate::Scenario)
//! expansion produced: a header naming the scenario, seed, arrival
//! schedule and every tenant's generator parameters, followed by the
//! timestamped respec and query events. Traces serialize to a
//! **versioned JSONL format** (one flat, hand-rolled JSON object per
//! line — same no-serde discipline as the bench harness) via
//! [`Trace::to_jsonl`], parse back with [`Trace::parse_jsonl`], and
//! rebuild their exact instance states with [`Trace::materialize`].
//!
//! Every event carries the [`InstanceKey`](duality_core::pool::InstanceKey)
//! of the spec it ran against; materialization recomputes the key of the
//! instance it rebuilds and refuses the trace on any mismatch
//! ([`WorkloadError::KeyMismatch`]) — so a replayed trace provably runs
//! the recorded problems, and replaying it against any worker/shard
//! configuration reproduces the recorded run bit for bit (the serving
//! engine's determinism contract, extended to whole traffic histories).

use crate::error::WorkloadError;
use crate::jsonl::{family_fields, line, parse_family, Obj, Val};
use crate::scenario::{Arrival, FamilySpec, Mutation, TenantState, TRACE_SCHEMA_VERSION};
use duality_core::{PlanarInstance, Query};
use duality_planar::Weight;
use std::sync::Arc;

/// One tenant's generator parameters, as recorded in a trace header —
/// everything replay needs to rebuild the tenant's base instance bit for
/// bit.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TenantRecord {
    /// The planar family.
    pub family: FamilySpec,
    /// Capacity range `[lo, hi]` of the base spec.
    pub cap_range: (Weight, Weight),
    /// Edge-weight range `[lo, hi]` of the base spec.
    pub weight_range: (Weight, Weight),
    /// Seed the graph was built from.
    pub graph_seed: u64,
    /// Seed of the base capacity draw.
    pub cap_seed: u64,
    /// Seed of the base weight draw.
    pub weight_seed: u64,
}

/// The trace preamble: scenario identity plus the tenant fleet.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceHeader {
    /// Format version ([`TRACE_SCHEMA_VERSION`]); parsing rejects
    /// anything else.
    pub schema_version: u64,
    /// Name of the originating scenario.
    pub scenario: String,
    /// The scenario's master seed.
    pub seed: u64,
    /// Logical-clock length of the recording.
    pub ticks: u64,
    /// Arrival schedule the driver should pace by.
    pub arrival: Arrival,
    /// The tenant fleet, indexed by the events' `tenant` field.
    pub tenants: Vec<TenantRecord>,
}

/// One recorded event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceEvent {
    /// A spec mutation: `tenant`'s current instance was respecced.
    Respec {
        /// Virtual timestamp (tick) of the mutation.
        vt: u64,
        /// Tenant index into the header's fleet.
        tenant: usize,
        /// The mutation that was applied.
        mutation: Mutation,
        /// `InstanceKey` of the tenant's spec *after* the mutation
        /// (replay checkpoint).
        key: String,
    },
    /// A query released against `tenant`'s then-current spec.
    Query {
        /// Virtual timestamp (tick) of the release.
        vt: u64,
        /// Tenant index into the header's fleet.
        tenant: usize,
        /// The query.
        query: Query,
        /// Absolute deadline tick, if the scenario set one.
        deadline: Option<u64>,
        /// `InstanceKey` of the spec the query ran against (replay
        /// checkpoint).
        key: String,
    },
}

impl TraceEvent {
    /// The event's virtual timestamp.
    pub fn vt(&self) -> u64 {
        match self {
            TraceEvent::Respec { vt, .. } | TraceEvent::Query { vt, .. } => *vt,
        }
    }
}

/// A recorded traffic history: header + events. See the
/// [module docs](self) for the format and the replay guarantees.
#[derive(Clone, Debug, PartialEq)]
pub struct Trace {
    /// Scenario identity and tenant fleet.
    pub header: TraceHeader,
    /// The events, in release order (non-decreasing `vt`).
    pub events: Vec<TraceEvent>,
}

/// One materialized query job: the event rebuilt into a live instance,
/// ready to submit.
#[derive(Clone, Debug)]
pub struct TraceJob {
    /// Index of the originating event in [`Trace::events`].
    pub event: usize,
    /// Virtual timestamp of the release.
    pub vt: u64,
    /// Tenant index.
    pub tenant: usize,
    /// The rebuilt (key-verified) instance the query runs against.
    pub instance: Arc<PlanarInstance>,
    /// The query.
    pub query: Query,
    /// Absolute deadline tick, if any.
    pub deadline: Option<u64>,
}

impl Trace {
    /// Number of query events.
    pub fn query_count(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e, TraceEvent::Query { .. }))
            .count()
    }

    /// Number of respec (spec-mutation) events.
    pub fn respec_count(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e, TraceEvent::Respec { .. }))
            .count()
    }

    /// Replays the spec-mutation stream and rebuilds every query's
    /// instance, verifying each event's recorded
    /// [`InstanceKey`](duality_core::pool::InstanceKey) along
    /// the way. The returned jobs are in event order; instances of
    /// consecutive queries on an unmutated tenant are the same `Arc`.
    ///
    /// # Errors
    ///
    /// [`WorkloadError::KeyMismatch`] when a rebuilt spec differs from
    /// the recording; [`WorkloadError::Planar`] /
    /// [`WorkloadError::Instance`] when a tenant fails to rebuild;
    /// [`WorkloadError::Parse`] when an event references an unknown
    /// tenant.
    pub fn materialize(&self) -> Result<Vec<TraceJob>, WorkloadError> {
        let mut state: Vec<TenantState> = self
            .header
            .tenants
            .iter()
            .map(TenantState::build)
            .collect::<Result<_, _>>()?;
        let mut jobs = Vec::with_capacity(self.query_count());
        for (idx, event) in self.events.iter().enumerate() {
            let tenant = match event {
                TraceEvent::Respec { tenant, .. } | TraceEvent::Query { tenant, .. } => *tenant,
            };
            if tenant >= state.len() {
                return Err(WorkloadError::Parse {
                    line: idx + 1,
                    reason: format!("event references unknown tenant {tenant}"),
                });
            }
            match event {
                TraceEvent::Respec { mutation, key, .. } => {
                    state[tenant].apply(mutation)?;
                    let rebuilt = state[tenant].key();
                    if rebuilt != *key {
                        return Err(WorkloadError::KeyMismatch {
                            event: idx,
                            recorded: key.clone(),
                            rebuilt,
                        });
                    }
                }
                TraceEvent::Query {
                    vt,
                    query,
                    deadline,
                    key,
                    ..
                } => {
                    let rebuilt = state[tenant].key();
                    if rebuilt != *key {
                        return Err(WorkloadError::KeyMismatch {
                            event: idx,
                            recorded: key.clone(),
                            rebuilt,
                        });
                    }
                    jobs.push(TraceJob {
                        event: idx,
                        vt: *vt,
                        tenant,
                        instance: Arc::clone(&state[tenant].current),
                        query: *query,
                        deadline: *deadline,
                    });
                }
            }
        }
        Ok(jobs)
    }

    /// Serializes the trace to its versioned JSONL form: one header
    /// line, one line per tenant, one line per event.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        let h = &self.header;
        // The field set is keyed by the arrival *kind*, never a value:
        // a closed-loop header always carries `max_in_flight` (even 0,
        // which the driver clamps), so every trace parses its own
        // serialization.
        let (arrival, rate, in_flight) = match h.arrival {
            Arrival::OpenLoop { queries_per_tick } => ("open", queries_per_tick, None),
            Arrival::ClosedLoop {
                queries_per_tick,
                max_in_flight,
            } => ("closed", queries_per_tick, Some(max_in_flight as u64)),
        };
        line(&mut out, &{
            let mut f = vec![
                ("kind", Val::s("header")),
                ("schema_version", Val::n(h.schema_version)),
                ("scenario", Val::S(h.scenario.clone())),
                ("seed", Val::n(h.seed)),
                ("ticks", Val::n(h.ticks)),
                ("arrival", Val::s(arrival)),
                ("rate", Val::n(rate)),
            ];
            if let Some(m) = in_flight {
                f.push(("max_in_flight", Val::n(m)));
            }
            f
        });
        for (id, t) in h.tenants.iter().enumerate() {
            let mut f = vec![("kind", Val::s("tenant")), ("id", Val::n(id as u64))];
            f.extend(family_fields(&t.family));
            f.extend([
                ("cap_lo", Val::i(t.cap_range.0)),
                ("cap_hi", Val::i(t.cap_range.1)),
                ("weight_lo", Val::i(t.weight_range.0)),
                ("weight_hi", Val::i(t.weight_range.1)),
                ("graph_seed", Val::n(t.graph_seed)),
                ("cap_seed", Val::n(t.cap_seed)),
                ("weight_seed", Val::n(t.weight_seed)),
            ]);
            line(&mut out, &f);
        }
        for event in &self.events {
            match event {
                TraceEvent::Respec {
                    vt,
                    tenant,
                    mutation,
                    key,
                } => {
                    let mut f = vec![
                        ("kind", Val::s("respec")),
                        ("vt", Val::n(*vt)),
                        ("tenant", Val::n(*tenant as u64)),
                    ];
                    f.extend(mutation_fields(mutation));
                    f.push(("key", Val::S(key.clone())));
                    line(&mut out, &f);
                }
                TraceEvent::Query {
                    vt,
                    tenant,
                    query,
                    deadline,
                    key,
                } => {
                    let mut f = vec![
                        ("kind", Val::s("query")),
                        ("vt", Val::n(*vt)),
                        ("tenant", Val::n(*tenant as u64)),
                    ];
                    f.extend(query_fields(query));
                    if let Some(d) = deadline {
                        f.push(("deadline", Val::n(*d)));
                    }
                    f.push(("key", Val::S(key.clone())));
                    line(&mut out, &f);
                }
            }
        }
        out
    }

    /// Parses a trace back from its JSONL form.
    ///
    /// # Errors
    ///
    /// [`WorkloadError::Parse`] with the offending 1-based line number —
    /// on malformed JSON, missing fields, unknown kinds, or a
    /// `schema_version` other than [`TRACE_SCHEMA_VERSION`].
    pub fn parse_jsonl(text: &str) -> Result<Trace, WorkloadError> {
        let mut header: Option<TraceHeader> = None;
        let mut events = Vec::new();
        for (i, raw) in text.lines().enumerate() {
            let lineno = i + 1;
            if raw.trim().is_empty() {
                continue;
            }
            let obj = Obj::parse(raw).map_err(|reason| WorkloadError::Parse {
                line: lineno,
                reason,
            })?;
            let fail = |reason: String| WorkloadError::Parse {
                line: lineno,
                reason,
            };
            match obj.str("kind").map_err(fail)? {
                "header" => {
                    let version = obj.u64("schema_version").map_err(fail)?;
                    if version != TRACE_SCHEMA_VERSION {
                        return Err(fail(format!(
                            "unsupported schema_version {version} (expected {TRACE_SCHEMA_VERSION})"
                        )));
                    }
                    let rate = obj.u64("rate").map_err(fail)?;
                    let arrival = match obj.str("arrival").map_err(fail)? {
                        "open" => Arrival::OpenLoop {
                            queries_per_tick: rate,
                        },
                        "closed" => Arrival::ClosedLoop {
                            queries_per_tick: rate,
                            max_in_flight: obj.u64("max_in_flight").map_err(fail)? as usize,
                        },
                        other => return Err(fail(format!("unknown arrival `{other}`"))),
                    };
                    header = Some(TraceHeader {
                        schema_version: version,
                        scenario: obj.str("scenario").map_err(fail)?.to_string(),
                        seed: obj.u64("seed").map_err(fail)?,
                        ticks: obj.u64("ticks").map_err(fail)?,
                        arrival,
                        tenants: Vec::new(),
                    });
                }
                "tenant" => {
                    let header = header.as_mut().ok_or_else(|| WorkloadError::Parse {
                        line: lineno,
                        reason: "tenant line before header".into(),
                    })?;
                    let id = obj.u64("id").map_err(fail)? as usize;
                    if id != header.tenants.len() {
                        return Err(fail(format!(
                            "tenant id {id} out of order (expected {})",
                            header.tenants.len()
                        )));
                    }
                    header.tenants.push(TenantRecord {
                        family: parse_family(&obj).map_err(fail)?,
                        cap_range: (
                            obj.i64("cap_lo").map_err(fail)?,
                            obj.i64("cap_hi").map_err(fail)?,
                        ),
                        weight_range: (
                            obj.i64("weight_lo").map_err(fail)?,
                            obj.i64("weight_hi").map_err(fail)?,
                        ),
                        graph_seed: obj.u64("graph_seed").map_err(fail)?,
                        cap_seed: obj.u64("cap_seed").map_err(fail)?,
                        weight_seed: obj.u64("weight_seed").map_err(fail)?,
                    });
                }
                "respec" => {
                    events.push(TraceEvent::Respec {
                        vt: obj.u64("vt").map_err(fail)?,
                        tenant: obj.u64("tenant").map_err(fail)? as usize,
                        mutation: parse_mutation(&obj).map_err(fail)?,
                        key: obj.str("key").map_err(fail)?.to_string(),
                    });
                }
                "query" => {
                    events.push(TraceEvent::Query {
                        vt: obj.u64("vt").map_err(fail)?,
                        tenant: obj.u64("tenant").map_err(fail)? as usize,
                        query: parse_query(&obj).map_err(fail)?,
                        deadline: obj.opt_u64("deadline").map_err(fail)?,
                        key: obj.str("key").map_err(fail)?.to_string(),
                    });
                }
                other => return Err(fail(format!("unknown line kind `{other}`"))),
            }
        }
        let header = header.ok_or(WorkloadError::Parse {
            line: 1,
            reason: "empty trace: no header line".into(),
        })?;
        Ok(Trace { header, events })
    }
}

// ---------------------------------------------------------------------
// Field encodings (write side). The shared line codec and the family
// encoding live in [`crate::jsonl`]; the mutation/query encodings are
// trace-specific and stay here.

fn mutation_fields(mutation: &Mutation) -> Vec<(&'static str, Val)> {
    match *mutation {
        Mutation::ScaleCapacities { percent } => vec![
            ("mutation", Val::s("scale_caps")),
            ("percent", Val::n(u64::from(percent))),
        ],
        Mutation::EdgeFailures { count, seed } => vec![
            ("mutation", Val::s("edge_failures")),
            ("count", Val::n(count as u64)),
            ("seed", Val::n(seed)),
        ],
        Mutation::WeightSpikes {
            count,
            factor,
            seed,
        } => vec![
            ("mutation", Val::s("weight_spikes")),
            ("count", Val::n(count as u64)),
            ("factor", Val::n(u64::from(factor))),
            ("seed", Val::n(seed)),
        ],
        Mutation::Restore => vec![("mutation", Val::s("restore"))],
    }
}

fn parse_mutation(obj: &Obj) -> Result<Mutation, String> {
    Ok(match obj.str("mutation")? {
        "scale_caps" => Mutation::ScaleCapacities {
            percent: obj.u64("percent")? as u32,
        },
        "edge_failures" => Mutation::EdgeFailures {
            count: obj.u64("count")? as usize,
            seed: obj.u64("seed")?,
        },
        "weight_spikes" => Mutation::WeightSpikes {
            count: obj.u64("count")? as usize,
            factor: obj.u64("factor")? as u32,
            seed: obj.u64("seed")?,
        },
        "restore" => Mutation::Restore,
        other => return Err(format!("unknown mutation `{other}`")),
    })
}

fn query_fields(query: &Query) -> Vec<(&'static str, Val)> {
    match *query {
        Query::MaxFlow { s, t } => vec![
            ("query", Val::s("max_flow")),
            ("s", Val::n(s as u64)),
            ("t", Val::n(t as u64)),
        ],
        Query::MinStCut { s, t } => vec![
            ("query", Val::s("min_st_cut")),
            ("s", Val::n(s as u64)),
            ("t", Val::n(t as u64)),
        ],
        Query::ApproxMaxFlow { s, t, eps_inverse } => vec![
            ("query", Val::s("approx_max_flow")),
            ("s", Val::n(s as u64)),
            ("t", Val::n(t as u64)),
            ("eps_inverse", Val::n(eps_inverse)),
        ],
        Query::ApproxMinStCut { s, t, eps_inverse } => vec![
            ("query", Val::s("approx_min_st_cut")),
            ("s", Val::n(s as u64)),
            ("t", Val::n(t as u64)),
            ("eps_inverse", Val::n(eps_inverse)),
        ],
        Query::GlobalMinCut => vec![("query", Val::s("global_min_cut"))],
        Query::Girth => vec![("query", Val::s("girth"))],
    }
}

fn parse_query(obj: &Obj) -> Result<Query, String> {
    Ok(match obj.str("query")? {
        "max_flow" => Query::MaxFlow {
            s: obj.u64("s")? as usize,
            t: obj.u64("t")? as usize,
        },
        "min_st_cut" => Query::MinStCut {
            s: obj.u64("s")? as usize,
            t: obj.u64("t")? as usize,
        },
        "approx_max_flow" => Query::ApproxMaxFlow {
            s: obj.u64("s")? as usize,
            t: obj.u64("t")? as usize,
            eps_inverse: obj.u64("eps_inverse")?,
        },
        "approx_min_st_cut" => Query::ApproxMinStCut {
            s: obj.u64("s")? as usize,
            t: obj.u64("t")? as usize,
            eps_inverse: obj.u64("eps_inverse")?,
        },
        "global_min_cut" => Query::GlobalMinCut,
        "girth" => Query::Girth,
        other => return Err(format!("unknown query `{other}`")),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Scenario;

    #[test]
    fn every_preset_round_trips_through_jsonl() {
        for scenario in Scenario::presets(11) {
            let trace = scenario.record().unwrap();
            let text = trace.to_jsonl();
            let parsed = Trace::parse_jsonl(&text).unwrap();
            assert_eq!(parsed, trace, "{}", scenario.name);
            // And the re-serialization is byte-identical (stable format).
            assert_eq!(parsed.to_jsonl(), text, "{}", scenario.name);
        }
    }

    #[test]
    fn zero_in_flight_closed_loop_round_trips() {
        // `max_in_flight: 0` is representable (the driver clamps it to
        // 1); its serialization must still parse.
        let mut scenario = Scenario::preset("steady-state", 2).unwrap();
        scenario.arrival = crate::scenario::Arrival::ClosedLoop {
            queries_per_tick: 2,
            max_in_flight: 0,
        };
        let trace = scenario.record().unwrap();
        let parsed = Trace::parse_jsonl(&trace.to_jsonl()).unwrap();
        assert_eq!(parsed, trace);
    }

    #[test]
    fn parser_rejects_bad_input() {
        let bad_version = "{\"kind\": \"header\", \"schema_version\": 999, \"scenario\": \"x\", \
                           \"seed\": 1, \"ticks\": 1, \"arrival\": \"open\", \"rate\": 1}";
        assert!(matches!(
            Trace::parse_jsonl(bad_version),
            Err(WorkloadError::Parse { line: 1, .. })
        ));
        assert!(Trace::parse_jsonl("").is_err(), "no header");
        assert!(Trace::parse_jsonl("not json").is_err());
        assert!(Trace::parse_jsonl("{\"kind\": \"martian\"}").is_err());
        // Tenant line before any header.
        assert!(Trace::parse_jsonl("{\"kind\": \"tenant\", \"id\": 0}").is_err());
    }

    #[test]
    fn materialize_verifies_keys_and_rejects_tampering() {
        let trace = Scenario::preset("failover-storm", 4)
            .unwrap()
            .record()
            .unwrap();
        let jobs = trace.materialize().unwrap();
        assert_eq!(jobs.len(), trace.query_count());
        assert!(trace.respec_count() > 0, "storms mutate specs");

        // Tamper with one respec's mutation: the key check must trip.
        let mut tampered = trace.clone();
        let idx = tampered
            .events
            .iter()
            .position(|e| matches!(e, TraceEvent::Respec { .. }))
            .unwrap();
        if let TraceEvent::Respec { mutation, .. } = &mut tampered.events[idx] {
            *mutation = Mutation::ScaleCapacities { percent: 73 };
        }
        assert!(matches!(
            tampered.materialize(),
            Err(WorkloadError::KeyMismatch { .. })
        ));
    }

    #[test]
    fn consecutive_queries_share_instances_until_a_respec() {
        let trace = Scenario::preset("steady-state", 9)
            .unwrap()
            .record()
            .unwrap();
        let jobs = trace.materialize().unwrap();
        // No mutations in steady-state: every job of one tenant shares
        // one Arc.
        for pair in jobs.windows(2) {
            if pair[0].tenant == pair[1].tenant {
                assert!(Arc::ptr_eq(&pair[0].instance, &pair[1].instance));
            }
        }
    }
}
