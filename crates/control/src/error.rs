//! The control plane's single error type.

use duality_core::DualityError;
use duality_planar::PlanarError;

/// Every way the control plane can fail, in one matchable type.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ControlError {
    /// The spec failed validation before any of it was applied.
    InvalidSpec {
        /// What is wrong with it.
        reason: String,
    },
    /// The pushed spec changes a field only an engine rebuild can honor
    /// (shard count, queue capacity, pool capacity) — the reconciler
    /// refuses rather than silently restarting the fleet. Launch a fresh
    /// reconciler to apply it.
    RequiresRebuild {
        /// The immutable field the push tried to change.
        field: &'static str,
    },
    /// A serialized spec or snapshot failed to parse.
    Parse {
        /// 1-based line number of the offending line.
        line: usize,
        /// What is wrong with it.
        reason: String,
    },
    /// A loaded snapshot's recorded spec hash does not match the hash
    /// re-derived from its spec payload — the file was edited or
    /// corrupted, and the controller refuses to resume from it.
    HashMismatch {
        /// The hash the snapshot claims.
        recorded: u64,
        /// The hash the parsed spec actually has.
        computed: u64,
    },
    /// Resume was asked for, but the store has no snapshot yet.
    MissingSnapshot {
        /// The store path that was probed.
        path: String,
    },
    /// Reading or writing the state store failed.
    Io {
        /// The path involved.
        path: String,
        /// The OS error, stringified (keeps the error `Clone + Eq`).
        reason: String,
    },
    /// Building a tenant's instance or the engine failed validation.
    Build(DualityError),
    /// A tenant's graph family failed to generate.
    Planar(PlanarError),
}

impl std::fmt::Display for ControlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ControlError::InvalidSpec { reason } => write!(f, "invalid fleet spec: {reason}"),
            ControlError::RequiresRebuild { field } => {
                write!(f, "changing `{field}` requires an engine rebuild")
            }
            ControlError::Parse { line, reason } => {
                write!(f, "parse error at line {line}: {reason}")
            }
            ControlError::HashMismatch { recorded, computed } => write!(
                f,
                "snapshot spec hash mismatch: recorded {recorded:016x}, computed {computed:016x}"
            ),
            ControlError::MissingSnapshot { path } => {
                write!(f, "no snapshot to resume from at {path}")
            }
            ControlError::Io { path, reason } => write!(f, "state store I/O at {path}: {reason}"),
            ControlError::Build(e) => write!(f, "instance build failed: {e}"),
            ControlError::Planar(e) => write!(f, "graph generation failed: {e}"),
        }
    }
}

impl std::error::Error for ControlError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ControlError::Build(e) => Some(e),
            ControlError::Planar(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DualityError> for ControlError {
    fn from(e: DualityError) -> ControlError {
        ControlError::Build(e)
    }
}

impl From<PlanarError> for ControlError {
    fn from(e: PlanarError) -> ControlError {
        ControlError::Planar(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let cases: Vec<(ControlError, &str)> = vec![
            (
                ControlError::InvalidSpec { reason: "x".into() },
                "invalid fleet spec",
            ),
            (
                ControlError::RequiresRebuild { field: "shards" },
                "`shards` requires an engine rebuild",
            ),
            (
                ControlError::Parse {
                    line: 3,
                    reason: "y".into(),
                },
                "line 3",
            ),
            (
                ControlError::HashMismatch {
                    recorded: 1,
                    computed: 2,
                },
                "hash mismatch",
            ),
            (
                ControlError::MissingSnapshot { path: "/p".into() },
                "no snapshot",
            ),
            (
                ControlError::Io {
                    path: "/p".into(),
                    reason: "denied".into(),
                },
                "I/O at /p",
            ),
        ];
        for (err, needle) in cases {
            assert!(err.to_string().contains(needle), "{err}");
        }
    }
}
