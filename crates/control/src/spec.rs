//! The declarative fleet spec: desired serving state as one validated,
//! content-hashed, durable value.
//!
//! A [`FleetSpec`] says what the fleet *should* look like — engine shape
//! (workers, shards, queue and pool capacities, admission policy) and the
//! tenant roster (graph family + spec ranges via
//! [`TenantRecord`], prewarm membership, derate level, per-tenant SLOs).
//! It serializes to the same canonical JSONL the trace format uses
//! ([`FleetSpec::to_jsonl`] / [`FleetSpec::parse_jsonl`], byte-stable
//! round trip), and [`FleetSpec::spec_hash`] fingerprints that canonical
//! form — the hash the [`StateStore`](crate::StateStore) re-derives on
//! load to refuse tampered snapshots.

use crate::error::ControlError;
use duality_service::AdmissionPolicy;
use duality_workload::jsonl::{family_fields, line, parse_family, Obj, Val};
use duality_workload::TenantRecord;
use std::collections::hash_map::DefaultHasher;
use std::hash::Hasher;

/// Fleet-spec serialization format version; parsing refuses anything
/// else.
pub const FLEET_SCHEMA_VERSION: u64 = 1;

/// Per-tenant service-level objectives, checked against live metrics on
/// every reconcile observation. A violation never blocks convergence —
/// it is *reported* (counted per observation round in
/// [`ConvergenceReport::slo_violations`](crate::ConvergenceReport)), so
/// operators see pressure without the controller thrashing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Slo {
    /// Upper bound on the observed p99 latency, in microseconds.
    pub max_p99_us: Option<u64>,
    /// Upper bound on the observed queue depth.
    pub max_queue_depth: Option<usize>,
}

/// One tenant's desired state: who it is (a replayable
/// [`TenantRecord`]), whether its solver should be kept warm, how far
/// its region is derated, and what service level it is owed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TenantDecl {
    /// Unique tenant name (the operator-facing handle).
    pub name: String,
    /// Generator parameters — rebuilds the tenant's base instance bit
    /// for bit (same recipe as trace replay).
    pub record: TenantRecord,
    /// Keep this tenant's solver resident in its home shard pool.
    pub prewarm: bool,
    /// Capacity derate in percent of the base spec, `1..=100`; 100 means
    /// the base spec itself. Applied through the copy-on-write respec
    /// path, so a derated spec shares its base's graph allocation and
    /// topology substrate.
    pub derate_percent: u32,
    /// Service-level objectives, if this tenant has any.
    pub slo: Option<Slo>,
}

/// The desired serving state of one fleet. See the [module docs](self).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FleetSpec {
    /// Fleet name (operator-facing; part of the hashed identity).
    pub name: String,
    /// Operator-chosen revision counter — bump it on every edit so two
    /// specs with identical content but different intent still compare
    /// (and hash) differently.
    pub revision: u64,
    /// Desired worker-thread count.
    pub workers: usize,
    /// Pool shard count. Engine-build-time only: changing it on a live
    /// reconciler is refused with
    /// [`ControlError::RequiresRebuild`].
    pub shards: usize,
    /// Job-queue capacity. Engine-build-time only, like `shards`.
    pub queue_capacity: usize,
    /// Per-shard solver-pool capacity. Engine-build-time only.
    pub pool_capacity: usize,
    /// Desired admission policy.
    pub admission: AdmissionPolicy,
    /// The tenant roster.
    pub tenants: Vec<TenantDecl>,
}

impl FleetSpec {
    /// Checks the spec for internal consistency: nonempty unique names,
    /// positive sizes, derate in `1..=100`, ordered generator ranges,
    /// and SLOs that bound at least one thing.
    ///
    /// # Errors
    ///
    /// [`ControlError::InvalidSpec`] naming the first violation.
    pub fn validate(&self) -> Result<(), ControlError> {
        let fail = |reason: String| Err(ControlError::InvalidSpec { reason });
        if self.name.is_empty() {
            return fail("fleet name is empty".into());
        }
        if self.workers == 0 || self.shards == 0 {
            return fail("workers and shards must be ≥ 1".into());
        }
        if self.queue_capacity == 0 || self.pool_capacity == 0 {
            return fail("queue and pool capacities must be ≥ 1".into());
        }
        for (i, t) in self.tenants.iter().enumerate() {
            if t.name.is_empty() {
                return fail(format!("tenant {i} has an empty name"));
            }
            if self.tenants[..i].iter().any(|u| u.name == t.name) {
                return fail(format!("duplicate tenant name `{}`", t.name));
            }
            if t.derate_percent == 0 || t.derate_percent > 100 {
                return fail(format!(
                    "tenant `{}`: derate_percent {} outside 1..=100",
                    t.name, t.derate_percent
                ));
            }
            let r = &t.record;
            if r.cap_range.0 > r.cap_range.1 || r.weight_range.0 > r.weight_range.1 {
                return fail(format!("tenant `{}`: range lo > hi", t.name));
            }
            if r.cap_range.0 < 1 || r.weight_range.0 < 1 {
                return fail(format!("tenant `{}`: ranges must start ≥ 1", t.name));
            }
            if let Some(slo) = &t.slo {
                if slo.max_p99_us.is_none() && slo.max_queue_depth.is_none() {
                    return fail(format!("tenant `{}`: SLO bounds nothing", t.name));
                }
            }
        }
        Ok(())
    }

    /// The spec's content hash: a fingerprint of its canonical JSONL
    /// form. Deterministic across runs and processes (the canonical form
    /// is byte-stable and the hasher is keyed with constants), so a
    /// snapshot written by one controller run verifies in the next.
    pub fn spec_hash(&self) -> u64 {
        let mut h = DefaultHasher::new();
        h.write(self.to_jsonl().as_bytes());
        h.finish()
    }

    /// Serializes the spec to canonical JSONL: one fleet line, one line
    /// per tenant. Byte-stable: `parse_jsonl(to_jsonl(s)).to_jsonl() ==
    /// to_jsonl(s)`.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        line(
            &mut out,
            &[
                ("kind", Val::s("fleet")),
                ("schema_version", Val::n(FLEET_SCHEMA_VERSION)),
                ("name", Val::S(self.name.clone())),
                ("revision", Val::n(self.revision)),
                ("workers", Val::n(self.workers as u64)),
                ("shards", Val::n(self.shards as u64)),
                ("queue_capacity", Val::n(self.queue_capacity as u64)),
                ("pool_capacity", Val::n(self.pool_capacity as u64)),
                (
                    "admission",
                    Val::s(match self.admission {
                        AdmissionPolicy::Reject => "reject",
                        AdmissionPolicy::Block => "block",
                    }),
                ),
            ],
        );
        for (id, t) in self.tenants.iter().enumerate() {
            let mut f = vec![
                ("kind", Val::s("tenant")),
                ("id", Val::n(id as u64)),
                ("name", Val::S(t.name.clone())),
            ];
            f.extend(family_fields(&t.record.family));
            f.extend([
                ("cap_lo", Val::i(t.record.cap_range.0)),
                ("cap_hi", Val::i(t.record.cap_range.1)),
                ("weight_lo", Val::i(t.record.weight_range.0)),
                ("weight_hi", Val::i(t.record.weight_range.1)),
                ("graph_seed", Val::n(t.record.graph_seed)),
                ("cap_seed", Val::n(t.record.cap_seed)),
                ("weight_seed", Val::n(t.record.weight_seed)),
                ("prewarm", Val::n(u64::from(t.prewarm))),
                ("derate_percent", Val::n(u64::from(t.derate_percent))),
            ]);
            if let Some(slo) = &t.slo {
                if let Some(p99) = slo.max_p99_us {
                    f.push(("slo_p99_us", Val::n(p99)));
                }
                if let Some(depth) = slo.max_queue_depth {
                    f.push(("slo_queue_depth", Val::n(depth as u64)));
                }
            }
            line(&mut out, &f);
        }
        out
    }

    /// Parses a spec back from its JSONL form.
    ///
    /// # Errors
    ///
    /// [`ControlError::Parse`] with the offending 1-based line number —
    /// on malformed JSON, missing fields, unknown kinds, out-of-order
    /// tenant ids, or a `schema_version` other than
    /// [`FLEET_SCHEMA_VERSION`].
    pub fn parse_jsonl(text: &str) -> Result<FleetSpec, ControlError> {
        let mut spec: Option<FleetSpec> = None;
        for (i, raw) in text.lines().enumerate() {
            let lineno = i + 1;
            if raw.trim().is_empty() {
                continue;
            }
            let obj = Obj::parse(raw).map_err(|reason| ControlError::Parse {
                line: lineno,
                reason,
            })?;
            let fail = |reason: String| ControlError::Parse {
                line: lineno,
                reason,
            };
            match obj.str("kind").map_err(fail)? {
                "fleet" => {
                    let version = obj.u64("schema_version").map_err(fail)?;
                    if version != FLEET_SCHEMA_VERSION {
                        return Err(fail(format!(
                            "unsupported schema_version {version} (expected {FLEET_SCHEMA_VERSION})"
                        )));
                    }
                    spec = Some(FleetSpec {
                        name: obj.str("name").map_err(fail)?.to_string(),
                        revision: obj.u64("revision").map_err(fail)?,
                        workers: obj.u64("workers").map_err(fail)? as usize,
                        shards: obj.u64("shards").map_err(fail)? as usize,
                        queue_capacity: obj.u64("queue_capacity").map_err(fail)? as usize,
                        pool_capacity: obj.u64("pool_capacity").map_err(fail)? as usize,
                        admission: match obj.str("admission").map_err(fail)? {
                            "reject" => AdmissionPolicy::Reject,
                            "block" => AdmissionPolicy::Block,
                            other => return Err(fail(format!("unknown admission `{other}`"))),
                        },
                        tenants: Vec::new(),
                    });
                }
                "tenant" => {
                    let spec = spec.as_mut().ok_or_else(|| ControlError::Parse {
                        line: lineno,
                        reason: "tenant line before fleet header".into(),
                    })?;
                    let id = obj.u64("id").map_err(fail)? as usize;
                    if id != spec.tenants.len() {
                        return Err(fail(format!(
                            "tenant id {id} out of order (expected {})",
                            spec.tenants.len()
                        )));
                    }
                    let slo_p99 = obj.opt_u64("slo_p99_us").map_err(fail)?;
                    let slo_depth = obj.opt_u64("slo_queue_depth").map_err(fail)?;
                    spec.tenants.push(TenantDecl {
                        name: obj.str("name").map_err(fail)?.to_string(),
                        record: TenantRecord {
                            family: parse_family(&obj).map_err(fail)?,
                            cap_range: (
                                obj.i64("cap_lo").map_err(fail)?,
                                obj.i64("cap_hi").map_err(fail)?,
                            ),
                            weight_range: (
                                obj.i64("weight_lo").map_err(fail)?,
                                obj.i64("weight_hi").map_err(fail)?,
                            ),
                            graph_seed: obj.u64("graph_seed").map_err(fail)?,
                            cap_seed: obj.u64("cap_seed").map_err(fail)?,
                            weight_seed: obj.u64("weight_seed").map_err(fail)?,
                        },
                        prewarm: obj.u64("prewarm").map_err(fail)? != 0,
                        derate_percent: obj.u64("derate_percent").map_err(fail)? as u32,
                        slo: (slo_p99.is_some() || slo_depth.is_some()).then_some(Slo {
                            max_p99_us: slo_p99,
                            max_queue_depth: slo_depth.map(|d| d as usize),
                        }),
                    });
                }
                other => return Err(fail(format!("unknown line kind `{other}`"))),
            }
        }
        spec.ok_or(ControlError::Parse {
            line: 1,
            reason: "empty spec: no fleet line".into(),
        })
    }
}

impl std::fmt::Display for FleetSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "fleet `{}` r{}: {} worker(s) / {} shard(s), queue {}, pool {}, {:?} admission, {} tenant(s)",
            self.name,
            self.revision,
            self.workers,
            self.shards,
            self.queue_capacity,
            self.pool_capacity,
            self.admission,
            self.tenants.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use duality_workload::FamilySpec;

    fn tenant(name: &str, seed: u64) -> TenantDecl {
        TenantDecl {
            name: name.to_string(),
            record: TenantRecord {
                family: FamilySpec::DiagGrid { w: 4, h: 4 },
                cap_range: (1, 9),
                weight_range: (1, 9),
                graph_seed: seed,
                cap_seed: seed + 100,
                weight_seed: seed + 200,
            },
            prewarm: true,
            derate_percent: 100,
            slo: None,
        }
    }

    fn spec() -> FleetSpec {
        FleetSpec {
            name: "test-fleet".into(),
            revision: 1,
            workers: 2,
            shards: 2,
            queue_capacity: 16,
            pool_capacity: 8,
            admission: AdmissionPolicy::Block,
            tenants: vec![
                TenantDecl {
                    derate_percent: 60,
                    slo: Some(Slo {
                        max_p99_us: Some(50_000),
                        max_queue_depth: None,
                    }),
                    ..tenant("grid-a", 1)
                },
                tenant("grid-b", 2),
            ],
        }
    }

    #[test]
    fn round_trip_is_byte_stable_and_hash_deterministic() {
        let s = spec();
        s.validate().unwrap();
        let text = s.to_jsonl();
        let parsed = FleetSpec::parse_jsonl(&text).unwrap();
        assert_eq!(parsed, s);
        assert_eq!(parsed.to_jsonl(), text, "byte-stable re-serialization");
        assert_eq!(parsed.spec_hash(), s.spec_hash());
        // The hash tracks content: any edit moves it.
        let mut edited = s.clone();
        edited.revision += 1;
        assert_ne!(edited.spec_hash(), s.spec_hash());
        let mut derated = s.clone();
        derated.tenants[1].derate_percent = 40;
        assert_ne!(derated.spec_hash(), s.spec_hash());
        assert!(s.to_string().contains("test-fleet"));
    }

    type Break = Box<dyn Fn(&mut FleetSpec)>;

    #[test]
    fn validation_names_the_violation() {
        let cases: Vec<(Break, &str)> = vec![
            (Box::new(|s| s.name.clear()), "name is empty"),
            (Box::new(|s| s.workers = 0), "workers"),
            (Box::new(|s| s.pool_capacity = 0), "capacities"),
            (
                Box::new(|s| s.tenants[1].name = "grid-a".into()),
                "duplicate tenant",
            ),
            (
                Box::new(|s| s.tenants[0].derate_percent = 0),
                "derate_percent",
            ),
            (
                Box::new(|s| s.tenants[0].derate_percent = 150),
                "derate_percent",
            ),
            (
                Box::new(|s| s.tenants[0].record.cap_range = (9, 1)),
                "lo > hi",
            ),
            (
                Box::new(|s| s.tenants[0].record.weight_range = (0, 5)),
                "≥ 1",
            ),
            (
                Box::new(|s| {
                    s.tenants[0].slo = Some(Slo {
                        max_p99_us: None,
                        max_queue_depth: None,
                    });
                }),
                "bounds nothing",
            ),
        ];
        for (mutate, needle) in cases {
            let mut s = spec();
            mutate(&mut s);
            let err = s.validate().unwrap_err();
            assert!(err.to_string().contains(needle), "{err}");
        }
    }

    #[test]
    fn parser_rejects_bad_input() {
        assert!(FleetSpec::parse_jsonl("").is_err(), "no fleet line");
        assert!(FleetSpec::parse_jsonl("not json").is_err());
        assert!(FleetSpec::parse_jsonl("{\"kind\": \"martian\"}").is_err());
        // Tenant before header.
        assert!(FleetSpec::parse_jsonl("{\"kind\": \"tenant\", \"id\": 0}").is_err());
        // Unknown schema version.
        let future =
            spec()
                .to_jsonl()
                .replacen("\"schema_version\": 1", "\"schema_version\": 999", 1);
        let err = FleetSpec::parse_jsonl(&future).unwrap_err();
        assert!(matches!(err, ControlError::Parse { line: 1, .. }), "{err}");
        // Out-of-order tenant ids.
        let shuffled = spec().to_jsonl().replacen("\"id\": 0", "\"id\": 7", 1);
        assert!(FleetSpec::parse_jsonl(&shuffled).is_err());
        // Unknown admission value.
        let weird =
            spec()
                .to_jsonl()
                .replacen("\"admission\": \"block\"", "\"admission\": \"maybe\"", 1);
        assert!(FleetSpec::parse_jsonl(&weird).is_err());
    }

    #[test]
    fn slo_fields_are_optional_and_partial() {
        let mut s = spec();
        s.tenants[1].slo = Some(Slo {
            max_p99_us: None,
            max_queue_depth: Some(4),
        });
        let parsed = FleetSpec::parse_jsonl(&s.to_jsonl()).unwrap();
        assert_eq!(parsed, s);
    }
}
