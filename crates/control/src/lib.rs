//! Declarative control plane for the duality serving stack: fleet specs
//! in, converged engines out.
//!
//! The serving engine ([`duality_service::ServiceEngine`]) exposes
//! imperative levers — scale workers, flip admission, warm or evict
//! solvers. This crate replaces lever-pulling with a *declared* desired
//! state and a controller that drives the live fleet toward it:
//!
//! * **[`FleetSpec`]** ([`spec`]) — the desired state as one validated
//!   value: engine shape, admission policy, and a tenant roster built on
//!   the workload crate's replayable
//!   [`TenantRecord`](duality_workload::TenantRecord)s, each with
//!   prewarm membership, a capacity derate level, and optional SLOs.
//!   Canonical JSONL serialization (byte-stable round trip) and a
//!   content hash ([`FleetSpec::spec_hash`]) over that canonical form.
//! * **[`Reconciler`]** ([`reconcile`]) — the control loop: observe the
//!   fleet (side-effect-free [`FleetObservation`]), diff against the
//!   spec into a typed [`Plan`] of ordered [`Action`]s, execute through
//!   the engine's public surface with per-action retry, re-observe;
//!   repeat within a bounded convergence budget ([`ReconcilePolicy`]).
//!   Derated tenants are realized through the instances' copy-on-write
//!   respec path, anchored to base specs the controller keeps alive, so
//!   a derate shares its tenant's graph allocation and topology
//!   substrate.
//! * **[`Autopilot`]** ([`autopilot`]) — closed-loop scaling: when the
//!   fleet is launched with a telemetry spine
//!   ([`Reconciler::launch_with_telemetry`]) and an
//!   [`AutopilotPolicy`] is enabled, each reconcile round reads queue
//!   depth and the worst per-tenant windowed p99 from the
//!   [`TelemetrySnapshot`](duality_telemetry::TelemetrySnapshot) and
//!   *originates* `ScaleWorkers` actions — surging under pressure,
//!   retiring back to the spec floor when it clears — with hysteresis
//!   and cooldown so the fleet doesn't thrash. Every decision lands in
//!   the telemetry event log.
//! * **[`StateStore`]** ([`store`]) — crash recovery: converged passes
//!   persist a versioned [`Snapshot`] (atomic write), and
//!   [`Reconciler::resume`] rebuilds a controller from it — refusing
//!   unknown schema versions and snapshots whose spec payload no longer
//!   matches the recorded hash.
//!
//! # Example
//!
//! ```
//! use duality_control::{FleetSpec, Reconciler, TenantDecl};
//! use duality_service::AdmissionPolicy;
//! use duality_workload::{FamilySpec, TenantRecord};
//!
//! let spec = FleetSpec {
//!     name: "docs".into(),
//!     revision: 1,
//!     workers: 2,
//!     shards: 2,
//!     queue_capacity: 16,
//!     pool_capacity: 8,
//!     admission: AdmissionPolicy::Block,
//!     tenants: vec![TenantDecl {
//!         name: "grid".into(),
//!         record: TenantRecord {
//!             family: FamilySpec::DiagGrid { w: 4, h: 4 },
//!             cap_range: (1, 9),
//!             weight_range: (1, 9),
//!             graph_seed: 7,
//!             cap_seed: 8,
//!             weight_seed: 9,
//!         },
//!         prewarm: true,
//!         derate_percent: 100,
//!         slo: None,
//!     }],
//! };
//!
//! let mut fleet = Reconciler::launch(spec).unwrap();
//! let report = fleet.reconcile().unwrap();
//! assert!(report.converged);
//!
//! // The fleet now matches the spec: the tenant's solver is warm.
//! let instance = fleet.instance("grid").cloned().unwrap();
//! let outcome = fleet
//!     .engine()
//!     .run(&instance, duality_core::Query::MaxFlow { s: 0, t: 5 })
//!     .unwrap();
//! assert!(matches!(outcome, duality_core::Outcome::MaxFlow(_)));
//! fleet.shutdown();
//! ```

pub mod autopilot;
pub mod error;
pub mod plan;
pub mod reconcile;
pub mod spec;
pub mod store;

pub use autopilot::{Autopilot, AutopilotDecision, AutopilotPolicy, PressureReading};
pub use error::ControlError;
pub use plan::{Action, Plan};
pub use reconcile::{
    retry, ConvergenceReport, FleetObservation, ReconcilePolicy, Reconciler, TenantObservation,
};
pub use spec::{FleetSpec, Slo, TenantDecl, FLEET_SCHEMA_VERSION};
pub use store::{Snapshot, StateStore, SNAPSHOT_SCHEMA_VERSION};
