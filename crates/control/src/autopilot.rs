//! The autopilot: pressure-driven worker scaling, decided from the
//! telemetry spine instead of operator edits.
//!
//! The reconciler's base loop only ever steers toward the spec'd worker
//! count. The autopilot lets the controller *originate*
//! [`Action::ScaleWorkers`](crate::Action) decisions: each reconcile
//! round it reads two pressure signals — instantaneous queue depth from
//! the fleet observation, and the worst per-tenant p99 over the window
//! since the previous evaluation (computed from the telemetry ledger's
//! per-tenant histograms via [`LatencySnapshot::delta`]) — and moves the
//! worker target up under pressure or back down toward the spec floor
//! when pressure clears. Thrash is kept out structurally:
//!
//! * **hysteresis** — the scale-up thresholds
//!   ([`AutopilotPolicy::queue_high_water`] /
//!   [`AutopilotPolicy::p99_high_us`]) sit strictly above the
//!   scale-down ones ([`AutopilotPolicy::queue_low_water`] /
//!   [`AutopilotPolicy::p99_low_us`]), so there is a dead band where
//!   the fleet holds its shape;
//! * **cooldown** — after any decision the autopilot holds for
//!   [`AutopilotPolicy::cooldown_rounds`] evaluations, giving scaled
//!   workers time to drain the queue before being judged;
//! * **bounds** — the target never exceeds
//!   [`AutopilotPolicy::max_workers`] and never retires below the
//!   spec's worker count (the floor the operator declared).
//!
//! Every decision is recorded as a telemetry event by the reconciler, so
//! a [`TelemetrySnapshot`] carries
//! *why* the fleet changed shape alongside what tenants experienced.

use duality_service::LatencySnapshot;
use duality_telemetry::TelemetrySnapshot;
use std::collections::BTreeMap;

/// Scaling thresholds and discipline. See the [module docs](self).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AutopilotPolicy {
    /// Scale up when the observed queue depth exceeds this.
    pub queue_high_water: usize,
    /// Scale down only when the queue depth is at or below this.
    pub queue_low_water: usize,
    /// Scale up when any tenant's windowed p99 exceeds this (µs).
    pub p99_high_us: u64,
    /// Scale down only when every tenant's windowed p99 is at or below
    /// this (µs).
    pub p99_low_us: u64,
    /// Workers added or retired per decision.
    pub scale_step: usize,
    /// Ceiling on the autopilot's worker target.
    pub max_workers: usize,
    /// Evaluations to hold after a decision before deciding again.
    pub cooldown_rounds: u64,
}

impl AutopilotPolicy {
    /// Checks the policy is coherent: positive step and ceiling, and the
    /// scale-up thresholds strictly above the scale-down ones (the
    /// hysteresis dead band).
    ///
    /// # Errors
    ///
    /// A human-readable reason naming the first violation.
    pub fn validate(&self) -> Result<(), String> {
        if self.scale_step == 0 {
            return Err("autopilot scale_step must be ≥ 1".into());
        }
        if self.max_workers == 0 {
            return Err("autopilot max_workers must be ≥ 1".into());
        }
        if self.queue_low_water >= self.queue_high_water {
            return Err(format!(
                "autopilot queue_low_water {} must sit below queue_high_water {}",
                self.queue_low_water, self.queue_high_water
            ));
        }
        if self.p99_low_us > self.p99_high_us {
            return Err(format!(
                "autopilot p99_low_us {} must not exceed p99_high_us {}",
                self.p99_low_us, self.p99_high_us
            ));
        }
        Ok(())
    }
}

/// One pressure reading: what the autopilot judged a round on.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PressureReading {
    /// Jobs queued (not yet claimed) at observation time.
    pub queue_depth: usize,
    /// Worst per-tenant end-to-end p99 over the evaluation window, when
    /// any tenant executed a job in it.
    pub worst_p99_us: Option<u64>,
}

/// A worker-target change the autopilot decided on.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AutopilotDecision {
    /// Target before the decision.
    pub from: usize,
    /// Target after the decision.
    pub to: usize,
    /// The pressure signal that tripped (operator-readable).
    pub reason: String,
}

impl AutopilotDecision {
    /// The telemetry event label (`scale-up` / `scale-down`).
    pub fn label(&self) -> &'static str {
        if self.to > self.from {
            "scale-up"
        } else {
            "scale-down"
        }
    }
}

impl std::fmt::Display for AutopilotDecision {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} {} -> {}: {}",
            self.label(),
            self.from,
            self.to,
            self.reason
        )
    }
}

/// The autopilot's evaluation state: the policy plus the per-tenant
/// histogram bases the pressure window is measured against, and the
/// cooldown countdown.
#[derive(Debug)]
pub struct Autopilot {
    policy: AutopilotPolicy,
    /// Per-tenant end-to-end histogram as of the previous evaluation;
    /// the window is the delta against this.
    window_base: BTreeMap<u64, LatencySnapshot>,
    cooldown_left: u64,
}

impl Autopilot {
    /// An autopilot with an empty pressure window and no cooldown.
    pub fn new(policy: AutopilotPolicy) -> Autopilot {
        Autopilot {
            policy,
            window_base: BTreeMap::new(),
            cooldown_left: 0,
        }
    }

    /// The policy in force.
    pub fn policy(&self) -> &AutopilotPolicy {
        &self.policy
    }

    /// Extracts this evaluation's pressure reading from a telemetry
    /// snapshot and queue depth, advancing the per-tenant window bases.
    pub fn read_pressure(
        &mut self,
        snapshot: &TelemetrySnapshot,
        queue_depth: usize,
    ) -> PressureReading {
        let mut worst: Option<u64> = None;
        for t in &snapshot.tenants {
            let base = self.window_base.entry(t.tenant).or_default();
            let window = t.stats.total.delta(base);
            *base = t.stats.total;
            if let Some(p99) = window.quantile_us(0.99) {
                worst = Some(worst.map_or(p99, |w| w.max(p99)));
            }
        }
        PressureReading {
            queue_depth,
            worst_p99_us: worst,
        }
    }

    /// Judges one pressure reading: `Some(decision)` to move the worker
    /// target, `None` to hold (dead band, cooldown, or already at a
    /// bound). `current` is the target in force; `floor` is the spec's
    /// worker count, the level cooperative retire returns to.
    pub fn evaluate(
        &mut self,
        reading: &PressureReading,
        current: usize,
        floor: usize,
    ) -> Option<AutopilotDecision> {
        if self.cooldown_left > 0 {
            self.cooldown_left -= 1;
            return None;
        }
        let p = &self.policy;
        let queue_hot = reading.queue_depth > p.queue_high_water;
        let p99_hot = reading.worst_p99_us.is_some_and(|v| v > p.p99_high_us);
        let queue_cold = reading.queue_depth <= p.queue_low_water;
        let p99_cold = reading.worst_p99_us.is_none_or(|v| v <= p.p99_low_us);
        let decision = if queue_hot || p99_hot {
            let to = current.saturating_add(p.scale_step).min(p.max_workers);
            (to > current).then(|| AutopilotDecision {
                from: current,
                to,
                reason: if queue_hot {
                    format!(
                        "queue depth {} > high water {}",
                        reading.queue_depth, p.queue_high_water
                    )
                } else {
                    format!(
                        "worst tenant p99 {}us > {}us",
                        reading.worst_p99_us.unwrap_or(0),
                        p.p99_high_us
                    )
                },
            })
        } else if queue_cold && p99_cold {
            let to = current.saturating_sub(p.scale_step).max(floor);
            (to < current).then(|| AutopilotDecision {
                from: current,
                to,
                reason: format!(
                    "pressure clear (queue {} ≤ {}, worst p99 {}us ≤ {}us)",
                    reading.queue_depth,
                    p.queue_low_water,
                    reading.worst_p99_us.unwrap_or(0),
                    p.p99_low_us
                ),
            })
        } else {
            None
        };
        if decision.is_some() {
            self.cooldown_left = self.policy.cooldown_rounds;
        }
        decision
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy() -> AutopilotPolicy {
        AutopilotPolicy {
            queue_high_water: 8,
            queue_low_water: 1,
            p99_high_us: 100_000,
            p99_low_us: 50_000,
            scale_step: 2,
            max_workers: 6,
            cooldown_rounds: 2,
        }
    }

    fn calm() -> PressureReading {
        PressureReading {
            queue_depth: 0,
            worst_p99_us: Some(1_000),
        }
    }

    #[test]
    fn validation_catches_inverted_bands() {
        assert!(policy().validate().is_ok());
        let mut p = policy();
        p.queue_low_water = 8;
        assert!(p.validate().is_err(), "no dead band");
        let mut p = policy();
        p.p99_low_us = 200_000;
        assert!(p.validate().is_err());
        let mut p = policy();
        p.scale_step = 0;
        assert!(p.validate().is_err());
    }

    #[test]
    fn pressure_scales_up_to_the_ceiling_and_retires_to_the_floor() {
        let mut ap = Autopilot::new(AutopilotPolicy {
            cooldown_rounds: 0,
            ..policy()
        });
        let deep = PressureReading {
            queue_depth: 20,
            worst_p99_us: None,
        };
        let d = ap.evaluate(&deep, 2, 2).unwrap();
        assert_eq!((d.from, d.to, d.label()), (2, 4, "scale-up"));
        assert!(d.reason.contains("queue depth 20"));
        let d = ap.evaluate(&deep, 4, 2).unwrap();
        assert_eq!(d.to, 6, "step again");
        assert!(ap.evaluate(&deep, 6, 2).is_none(), "ceiling holds");

        let d = ap.evaluate(&calm(), 6, 2).unwrap();
        assert_eq!((d.from, d.to, d.label()), (6, 4, "scale-down"));
        let d = ap.evaluate(&calm(), 4, 2).unwrap();
        assert_eq!(d.to, 2);
        assert!(ap.evaluate(&calm(), 2, 2).is_none(), "floor holds");
    }

    #[test]
    fn p99_pressure_alone_scales_up_and_the_dead_band_holds() {
        let mut ap = Autopilot::new(AutopilotPolicy {
            cooldown_rounds: 0,
            ..policy()
        });
        let slow = PressureReading {
            queue_depth: 0,
            worst_p99_us: Some(150_000),
        };
        let d = ap.evaluate(&slow, 2, 2).unwrap();
        assert_eq!(d.to, 4);
        assert!(d.reason.contains("p99"));
        // Between the bands: neither hot nor cold — hold.
        let tepid = PressureReading {
            queue_depth: 0,
            worst_p99_us: Some(75_000),
        };
        assert!(ap.evaluate(&tepid, 4, 2).is_none(), "dead band");
        // An empty window (no executed jobs) counts as cold.
        let idle = PressureReading {
            queue_depth: 0,
            worst_p99_us: None,
        };
        assert_eq!(ap.evaluate(&idle, 4, 2).unwrap().to, 2);
    }

    #[test]
    fn cooldown_holds_after_each_decision() {
        let mut ap = Autopilot::new(policy());
        let deep = PressureReading {
            queue_depth: 20,
            worst_p99_us: None,
        };
        assert!(ap.evaluate(&deep, 2, 2).is_some());
        assert!(ap.evaluate(&deep, 4, 2).is_none(), "cooldown 1");
        assert!(ap.evaluate(&deep, 4, 2).is_none(), "cooldown 2");
        assert!(ap.evaluate(&deep, 4, 2).is_some(), "cooldown elapsed");
    }

    #[test]
    fn pressure_window_is_the_delta_between_evaluations() {
        use duality_telemetry::{TenantStats, TenantTelemetry};

        let hist = |values: &[u64]| {
            let mut h = LatencySnapshot::default();
            for &us in values {
                let idx = (64 - us.leading_zeros() as usize)
                    .min(duality_service::metrics::LATENCY_BUCKETS - 1);
                h.buckets[idx] += 1;
                h.count += 1;
                h.sum_us += us;
                h.max_us = h.max_us.max(us);
            }
            h
        };
        let snap_with = |total: LatencySnapshot| TelemetrySnapshot {
            spans: total.count,
            dropped: 0,
            shard_jobs: vec![total.count],
            phase_us: vec![],
            resident_bytes: 0,
            peak_resident_bytes: 0,
            evicted_bytes: 0,
            tenants: vec![TenantTelemetry {
                tenant: 9,
                name: None,
                stats: TenantStats {
                    completed: total.count,
                    total,
                    ..TenantStats::default()
                },
            }],
            events: vec![],
        };

        let mut ap = Autopilot::new(policy());
        // First window: slow jobs.
        let slow = snap_with(hist(&[200_000, 220_000]));
        let r = ap.read_pressure(&slow, 0);
        assert!(r.worst_p99_us.unwrap() >= 200_000);
        // Second window: the same cumulative histogram plus fast jobs —
        // the delta only sees the fast ones.
        let mut cumulative = hist(&[200_000, 220_000, 100, 120, 90]);
        cumulative.max_us = 220_000; // cumulative max carries over
        let r = ap.read_pressure(&snap_with(cumulative), 0);
        assert!(
            r.worst_p99_us.unwrap() < 1_000,
            "window p99 {:?} must reflect only new jobs",
            r.worst_p99_us
        );
        // Third window: nothing new executed.
        let r = ap.read_pressure(&snap_with(cumulative), 3);
        assert_eq!(r.worst_p99_us, None);
        assert_eq!(r.queue_depth, 3);
    }
}
