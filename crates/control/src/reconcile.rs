//! The reconciler: drives the live engine toward the spec through
//! observe → diff → plan → execute rounds.
//!
//! The controller never edits engine state ad hoc. Each round it
//! *observes* the fleet ([`FleetObservation`]: live workers, admission,
//! queue pressure, per-shard residency, SLO posture), *diffs* the
//! observation against the [`FleetSpec`] into a typed
//! [`Plan`], *executes* the plan's actions through the engine's public
//! reconfiguration surface (each action retried with backoff), then
//! re-observes — until a round produces an empty plan with the worker
//! fleet settled, or the convergence budget
//! ([`ReconcilePolicy::max_rounds`]) runs out. Observation is
//! side-effect-free: it never touches pool LRU order, so watching a cold
//! tenant cannot keep it warm.
//!
//! Tenant instances are rebuilt bit for bit from their
//! [`TenantRecord`]s (the trace-replay
//! recipe). A derated tenant serves a copy-on-write respec of its base
//! instance — same graph allocation, new capacity vector — and the
//! reconciler keeps base `Arc`s alive across spec pushes, so every
//! derate lands on the shard that holds its respec-donor solver and
//! reuses its topology substrate.

use crate::autopilot::{Autopilot, AutopilotPolicy};
use crate::error::ControlError;
use crate::plan::{Action, Plan};
use crate::spec::{FleetSpec, TenantDecl};
use crate::store::{Snapshot, StateStore, SNAPSHOT_SCHEMA_VERSION};
use duality_core::{InstanceKey, PlanarInstance};
use duality_planar::gen;
use duality_service::{AdmissionPolicy, MetricsSnapshot, SchedStats, ServiceEngine};
use duality_telemetry::Telemetry;
use duality_workload::{Mutation, TenantRecord};
use std::collections::HashSet;
use std::sync::Arc;
use std::time::Duration;

/// Convergence budget and retry discipline for one reconcile pass.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReconcilePolicy {
    /// Maximum observe/diff/execute rounds before giving up.
    pub max_rounds: usize,
    /// Pause between rounds, letting asynchronous effects (worker
    /// threads retiring) land before the next observation.
    pub settle: Duration,
    /// Attempts per action before the round moves on.
    pub retry_attempts: usize,
    /// Pause between attempts of one action.
    pub retry_backoff: Duration,
}

impl Default for ReconcilePolicy {
    fn default() -> ReconcilePolicy {
        ReconcilePolicy {
            max_rounds: 32,
            settle: Duration::from_millis(2),
            retry_attempts: 3,
            retry_backoff: Duration::from_millis(1),
        }
    }
}

/// Runs `op` up to `attempts` times with `backoff` between tries, until
/// it reports success. The retry primitive every plan action goes
/// through.
pub fn retry(attempts: usize, backoff: Duration, mut op: impl FnMut() -> bool) -> bool {
    for attempt in 0..attempts.max(1) {
        if attempt > 0 {
            std::thread::sleep(backoff);
        }
        if op() {
            return true;
        }
    }
    false
}

/// What one reconcile pass did and where it ended.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ConvergenceReport {
    /// Whether the fleet matched the spec when the pass ended.
    pub converged: bool,
    /// Observation rounds taken (a no-op pass takes 1).
    pub rounds: usize,
    /// Every action executed, in order across rounds.
    pub actions: Vec<Action>,
    /// Total per-tenant SLO violations counted across observations.
    pub slo_violations: u64,
}

/// One tenant's observed state, spec side by side with the live pool.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TenantObservation {
    /// The tenant's spec name.
    pub name: String,
    /// The key of the instance the spec wants served (the derated spec
    /// when `derate_percent < 100`).
    pub desired_key: InstanceKey,
    /// Whether that solver is resident on its home shard.
    pub resident: bool,
    /// Pool idle age in lookup ticks, when resident.
    pub idle_ticks: Option<u64>,
    /// The tenant's own p99 (µs), attributed from the telemetry spine's
    /// per-tenant ledger. `None` when no telemetry is attached or the
    /// tenant has executed nothing yet.
    pub p99_us: Option<u64>,
    /// Whether the tenant's SLO was violated at observation time. With a
    /// telemetry spine attached the latency bound is judged against the
    /// tenant's *own* p99; without one it falls back to the fleet-wide
    /// p99.
    pub slo_violated: bool,
}

/// A side-effect-free snapshot of the fleet, taken once per round.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FleetObservation {
    /// Worker threads actually alive.
    pub workers_live: usize,
    /// Worker count the engine is currently steering toward.
    pub workers_target: usize,
    /// Admission policy in force.
    pub admission: AdmissionPolicy,
    /// Jobs queued, not yet claimed.
    pub queue_depth: usize,
    /// Jobs claimed by workers, not yet resolved.
    pub running: u64,
    /// The scheduler's cumulative activity ledger (steals, injector
    /// overflows, parks/unparks) — how the fleet is reaching its jobs,
    /// alongside how many jobs there are.
    pub scheduler: SchedStats,
    /// Fleet-wide p99 latency, when any job has completed.
    pub p99_us: Option<u64>,
    /// Solver bytes resident across every shard pool (measured at
    /// observation time via [`duality_core::HeapSize`]).
    pub resident_bytes: u64,
    /// High-water resident bytes across the fleet's pools.
    pub peak_resident_bytes: u64,
    /// Cumulative bytes freed by pool evictions.
    pub evicted_bytes: u64,
    /// Amortized substrate build µs billed across the fleet (each build
    /// charged once, summed over its phases).
    pub substrate_build_us: u64,
    /// Per-tenant observations, in spec order.
    pub tenants: Vec<TenantObservation>,
    /// Resident solvers no spec'd tenant wants: not any tenant's desired
    /// spec, and not a base spec kept as a respec-donor anchor.
    pub strays: Vec<InstanceKey>,
    /// SLO violations counted in this observation.
    pub slo_violations: u64,
}

/// A tenant the reconciler manages: its declaration plus the two
/// instances that realize it — the base build and the (possibly
/// derated) spec the fleet should serve. `base` is held even when
/// derated, as the respec-donor anchor.
struct ManagedTenant {
    decl: TenantDecl,
    base: Arc<PlanarInstance>,
    desired: Arc<PlanarInstance>,
}

impl ManagedTenant {
    /// Builds a managed tenant, reusing `donor`'s base instance when its
    /// record matches (keeps graph-allocation identity across spec
    /// pushes, which the pool's respec-reuse path keys on).
    fn build(
        decl: TenantDecl,
        donor: Option<&ManagedTenant>,
    ) -> Result<ManagedTenant, ControlError> {
        let base = match donor {
            Some(d) if d.decl.record == decl.record => Arc::clone(&d.base),
            _ => build_base(&decl.record)?,
        };
        let desired = if decl.derate_percent == 100 {
            Arc::clone(&base)
        } else {
            Mutation::ScaleCapacities {
                percent: decl.derate_percent,
            }
            .apply(&base, &base)?
        };
        Ok(ManagedTenant {
            decl,
            base,
            desired,
        })
    }
}

/// Rebuilds a tenant's base instance from its record — the same recipe
/// trace replay uses, so a control-plane tenant and its trace twin key
/// identically.
fn build_base(record: &TenantRecord) -> Result<Arc<PlanarInstance>, ControlError> {
    let g = record.family.build(record.graph_seed)?;
    let caps = gen::random_undirected_capacities(
        g.num_edges(),
        record.cap_range.0,
        record.cap_range.1,
        record.cap_seed,
    );
    let weights = gen::random_edge_weights(
        g.num_edges(),
        record.weight_range.0,
        record.weight_range.1,
        record.weight_seed,
    );
    Ok(PlanarInstance::new(g, Some(caps), Some(weights))?)
}

/// The fleet controller — see the [module docs](self).
pub struct Reconciler {
    engine: ServiceEngine,
    spec: FleetSpec,
    tenants: Vec<ManagedTenant>,
    policy: ReconcilePolicy,
    store: Option<StateStore>,
    seq: u64,
    telemetry: Option<Arc<Telemetry>>,
    autopilot: Option<Autopilot>,
    /// Worker target the autopilot currently steers toward; `None`
    /// means the spec's own count is in force.
    autopilot_target: Option<usize>,
}

impl Reconciler {
    /// Validates `spec`, builds an engine with its shape, and realizes
    /// the tenant roster. The fleet is *not* yet reconciled — call
    /// [`Reconciler::reconcile`] (or push traffic and reconcile later).
    ///
    /// # Errors
    ///
    /// [`ControlError::InvalidSpec`] on a bad spec; build errors from
    /// the graph generators or the engine.
    pub fn launch(spec: FleetSpec) -> Result<Reconciler, ControlError> {
        Reconciler::launch_inner(spec, None)
    }

    /// Like [`Reconciler::launch`], but wires the engine's span stream
    /// into `telemetry` and registers every tenant's name with its
    /// ledger, so observations (and any enabled
    /// [autopilot](crate::autopilot)) judge SLOs per tenant.
    ///
    /// # Errors
    ///
    /// As [`Reconciler::launch`].
    pub fn launch_with_telemetry(
        spec: FleetSpec,
        telemetry: Arc<Telemetry>,
    ) -> Result<Reconciler, ControlError> {
        Reconciler::launch_inner(spec, Some(telemetry))
    }

    fn launch_inner(
        spec: FleetSpec,
        telemetry: Option<Arc<Telemetry>>,
    ) -> Result<Reconciler, ControlError> {
        spec.validate()?;
        let mut builder = ServiceEngine::builder()
            .shards(spec.shards)
            .workers(spec.workers)
            .queue_capacity(spec.queue_capacity)
            .pool_capacity(spec.pool_capacity)
            .admission(spec.admission);
        if let Some(tel) = &telemetry {
            builder = builder.span_sink(tel.sink());
        }
        let engine = builder.build()?;
        let tenants = spec
            .tenants
            .iter()
            .map(|decl| ManagedTenant::build(decl.clone(), None))
            .collect::<Result<Vec<_>, _>>()?;
        let r = Reconciler {
            engine,
            spec,
            tenants,
            policy: ReconcilePolicy::default(),
            store: None,
            seq: 0,
            telemetry,
            autopilot: None,
            autopilot_target: None,
        };
        r.name_tenants();
        Ok(r)
    }

    /// Registers every tenant's spec name with the telemetry ledger,
    /// keyed by topology fingerprint — the base and its derates share
    /// one topology, so one registration covers both.
    fn name_tenants(&self) {
        if let Some(tel) = &self.telemetry {
            for t in &self.tenants {
                tel.name_tenant_key(&InstanceKey::of(&t.base), &t.decl.name);
            }
        }
    }

    /// Rebuilds a controller from the last snapshot in `store` and
    /// attaches the store for future snapshots. The engine starts cold;
    /// the first [`Reconciler::reconcile`] restores warm state.
    ///
    /// # Errors
    ///
    /// [`ControlError::MissingSnapshot`] on an empty store;
    /// [`ControlError::HashMismatch`] / [`ControlError::Parse`] on a
    /// tampered or unreadable snapshot; launch errors as
    /// [`Reconciler::launch`].
    pub fn resume(store: StateStore) -> Result<Reconciler, ControlError> {
        let snapshot = store.load()?.ok_or_else(|| ControlError::MissingSnapshot {
            path: store.path_display(),
        })?;
        let mut r = Reconciler::launch(snapshot.spec)?;
        r.seq = snapshot.seq;
        r.store = Some(store);
        Ok(r)
    }

    /// Replaces the convergence/retry policy.
    pub fn with_policy(mut self, policy: ReconcilePolicy) -> Reconciler {
        self.policy = policy;
        self
    }

    /// Turns on closed-loop worker scaling: every reconcile round reads
    /// the pressure signals (queue depth, worst per-tenant windowed p99
    /// from the telemetry ledger) and may move the worker target between
    /// the spec's count (the floor) and `policy.max_workers`. Each
    /// decision is recorded as a telemetry event.
    ///
    /// # Errors
    ///
    /// [`ControlError::InvalidSpec`] when no telemetry spine is attached
    /// (launch with [`Reconciler::launch_with_telemetry`]), when the
    /// policy is incoherent, or when `policy.max_workers` sits below the
    /// spec's worker floor.
    pub fn enable_autopilot(&mut self, policy: AutopilotPolicy) -> Result<(), ControlError> {
        if self.telemetry.is_none() {
            return Err(ControlError::InvalidSpec {
                reason: "autopilot requires a telemetry spine: launch with launch_with_telemetry"
                    .into(),
            });
        }
        policy
            .validate()
            .map_err(|reason| ControlError::InvalidSpec { reason })?;
        if policy.max_workers < self.spec.workers {
            return Err(ControlError::InvalidSpec {
                reason: format!(
                    "autopilot max_workers {} sits below the spec's worker floor {}",
                    policy.max_workers, self.spec.workers
                ),
            });
        }
        self.autopilot = Some(Autopilot::new(policy));
        self.autopilot_target = None;
        Ok(())
    }

    /// The telemetry spine this fleet reports into, when launched with
    /// one.
    pub fn telemetry(&self) -> Option<&Arc<Telemetry>> {
        self.telemetry.as_ref()
    }

    /// The worker count the controller currently steers toward: the
    /// autopilot's target when it has made a decision, else the spec's.
    pub fn desired_workers(&self) -> usize {
        self.autopilot_target.unwrap_or(self.spec.workers)
    }

    /// Attaches a [`StateStore`]; every converged reconcile pass
    /// snapshots into it.
    pub fn attach_store(&mut self, store: StateStore) {
        self.store = Some(store);
    }

    /// The spec currently in force.
    pub fn spec(&self) -> &FleetSpec {
        &self.spec
    }

    /// The engine under management — the serving handle callers submit
    /// queries through.
    pub fn engine(&self) -> &ServiceEngine {
        &self.engine
    }

    /// The instance the named tenant should currently be served with
    /// (its derated spec when derated).
    pub fn instance(&self, tenant: &str) -> Option<&Arc<PlanarInstance>> {
        self.tenants
            .iter()
            .find(|t| t.decl.name == tenant)
            .map(|t| &t.desired)
    }

    /// Installs a new spec and reconciles toward it. Engine-shape fields
    /// (`shards`, `queue_capacity`, `pool_capacity`) must match the
    /// running fleet; tenant bases whose records are unchanged keep
    /// their existing graph allocation (respec-donor identity).
    ///
    /// # Errors
    ///
    /// [`ControlError::InvalidSpec`] on a bad spec;
    /// [`ControlError::RequiresRebuild`] when the push changes a
    /// build-time field; build errors for new tenants.
    pub fn push(&mut self, spec: FleetSpec) -> Result<ConvergenceReport, ControlError> {
        spec.validate()?;
        for (field, changed) in [
            ("shards", spec.shards != self.spec.shards),
            (
                "queue_capacity",
                spec.queue_capacity != self.spec.queue_capacity,
            ),
            (
                "pool_capacity",
                spec.pool_capacity != self.spec.pool_capacity,
            ),
        ] {
            if changed {
                return Err(ControlError::RequiresRebuild { field });
            }
        }
        let tenants = spec
            .tenants
            .iter()
            .map(|decl| {
                let donor = self.tenants.iter().find(|t| t.decl.record == decl.record);
                ManagedTenant::build(decl.clone(), donor)
            })
            .collect::<Result<Vec<_>, _>>()?;
        self.tenants = tenants;
        self.spec = spec;
        self.name_tenants();
        self.reconcile()
    }

    /// Takes one side-effect-free observation of the fleet. (Measuring
    /// pool bytes takes the pool locks briefly but never touches LRU
    /// order, so observation still cannot keep a cold tenant warm.)
    pub fn observe(&self) -> FleetObservation {
        let metrics = self.engine.metrics();
        let p99_us = metrics.latency.quantile_us(0.99);
        // Push the pulled byte gauges into the telemetry spine, so its
        // exported snapshots carry memory truth alongside attribution.
        if let Some(tel) = &self.telemetry {
            tel.set_pool_bytes(
                metrics.resident_bytes(),
                metrics.peak_resident_bytes(),
                metrics.evicted_bytes(),
            );
        }
        let attribution = self.telemetry.as_ref().map(|t| t.snapshot());
        let residency = self.engine.shard_residency();
        let mut wanted: HashSet<InstanceKey> = HashSet::new();
        for t in &self.tenants {
            wanted.insert(InstanceKey::of(&t.desired));
            // Base specs stay welcome even when derated: they are the
            // respec-donor anchors the derated solvers were built from.
            wanted.insert(InstanceKey::of(&t.base));
        }
        let mut slo_violations = 0u64;
        let tenants = self
            .tenants
            .iter()
            .map(|t| {
                let desired_key = InstanceKey::of(&t.desired);
                let shard = self.engine.shard_of(&desired_key);
                let idle_ticks = residency[shard]
                    .iter()
                    .find(|e| e.key == desired_key)
                    .map(|e| e.idle);
                // With telemetry attached, the latency bound is judged
                // against the tenant's own attributed p99; a tenant that
                // executed nothing has no latency to violate. Without
                // telemetry, fall back to the fleet-wide p99.
                let tenant_p99 = attribution.as_ref().map(|snap| {
                    snap.tenant(InstanceKey::of(&t.base).topo_fingerprint())
                        .and_then(|row| row.p99_total_us())
                });
                let effective_p99 = tenant_p99.unwrap_or(p99_us);
                let slo_violated = t.decl.slo.is_some_and(|slo| {
                    slo.max_p99_us
                        .is_some_and(|bound| effective_p99.is_some_and(|p99| p99 > bound))
                        || slo
                            .max_queue_depth
                            .is_some_and(|bound| metrics.queue_depth > bound)
                });
                slo_violations += u64::from(slo_violated);
                TenantObservation {
                    name: t.decl.name.clone(),
                    desired_key,
                    resident: idle_ticks.is_some(),
                    idle_ticks,
                    p99_us: tenant_p99.flatten(),
                    slo_violated,
                }
            })
            .collect();
        let strays = residency
            .iter()
            .flatten()
            .map(|e| e.key)
            .filter(|k| !wanted.contains(k))
            .collect();
        FleetObservation {
            workers_live: metrics.workers,
            workers_target: self.engine.worker_count(),
            admission: self.engine.admission(),
            queue_depth: metrics.queue_depth,
            running: metrics.running,
            scheduler: metrics.scheduler,
            p99_us,
            resident_bytes: metrics.resident_bytes(),
            peak_resident_bytes: metrics.peak_resident_bytes(),
            evicted_bytes: metrics.evicted_bytes(),
            substrate_build_us: metrics.substrate_us(),
            tenants,
            strays,
            slo_violations,
        }
    }

    /// Diffs an observation against the spec into an ordered [`Plan`].
    /// Pure: no engine access, so diff logic is testable on synthetic
    /// observations.
    pub fn diff(&self, obs: &FleetObservation) -> Plan {
        let mut actions = Vec::new();
        if obs.admission != self.spec.admission {
            actions.push(Action::SetAdmission {
                policy: self.spec.admission,
            });
        }
        if obs.workers_target != self.desired_workers() {
            actions.push(Action::ScaleWorkers {
                from: obs.workers_live,
                to: self.desired_workers(),
            });
        }
        for (t, o) in self.tenants.iter().zip(&obs.tenants) {
            if t.decl.prewarm && !o.resident {
                actions.push(if t.decl.derate_percent < 100 {
                    Action::DerateRegion {
                        tenant: t.decl.name.clone(),
                        percent: t.decl.derate_percent,
                    }
                } else {
                    Action::PrewarmTenant {
                        tenant: t.decl.name.clone(),
                    }
                });
            }
        }
        for &key in &obs.strays {
            actions.push(Action::EvictTenant { key });
        }
        Plan { actions }
    }

    /// Executes one action against the engine, returning whether its
    /// post-condition now holds.
    fn execute(&self, action: &Action) -> bool {
        match action {
            Action::SetAdmission { policy } => {
                self.engine.set_admission(*policy);
                self.engine.admission() == *policy
            }
            Action::ScaleWorkers { to, .. } => self.engine.scale_workers(*to) == *to,
            Action::PrewarmTenant { tenant } | Action::DerateRegion { tenant, .. } => {
                // Admitting the solver through the audit hatch *is* the
                // prewarm; a derated tenant's desired instance is already
                // the respec, so both actions execute identically.
                match self.instance(tenant) {
                    Some(instance) => {
                        let instance = Arc::clone(instance);
                        drop(self.engine.solver(&instance));
                        self.engine.resident(&InstanceKey::of(&instance))
                    }
                    None => false,
                }
            }
            Action::EvictTenant { key } => {
                self.engine.evict(key);
                !self.engine.resident(key)
            }
        }
    }

    /// Runs observe → diff → execute rounds until converged or the
    /// budget runs out, then (when a store is attached and the pass
    /// converged) snapshots the result.
    ///
    /// Convergence means: an observation produced an empty plan *and*
    /// the live worker count matches the spec (scale-down is
    /// cooperative, so retiring threads may outlive the plan that
    /// retired them by a few rounds).
    ///
    /// # Errors
    ///
    /// [`ControlError::Io`] when the converged snapshot fails to write.
    pub fn reconcile(&mut self) -> Result<ConvergenceReport, ControlError> {
        let mut actions = Vec::new();
        let mut slo_violations = 0u64;
        let mut converged = false;
        let mut rounds = 0usize;
        let mut autopilot_judged = false;
        while rounds < self.policy.max_rounds {
            rounds += 1;
            let obs = self.observe();
            slo_violations += obs.slo_violations;
            // The autopilot judges pressure once per pass, on the first
            // observation — later rounds of the same pass see the queue
            // mid-drain, which would make decisions depend on worker
            // scheduling. One pass, at most one decision; cooldown
            // counts passes.
            if !autopilot_judged {
                autopilot_judged = true;
                if let (Some(ap), Some(tel)) = (&mut self.autopilot, &self.telemetry) {
                    let reading = ap.read_pressure(&tel.snapshot(), obs.queue_depth);
                    let current = self.autopilot_target.unwrap_or(self.spec.workers);
                    if let Some(decision) = ap.evaluate(&reading, current, self.spec.workers) {
                        tel.record_event(
                            decision.label(),
                            format!(
                                "{} -> {} workers: {}",
                                decision.from, decision.to, decision.reason
                            ),
                        );
                        self.autopilot_target = Some(decision.to);
                    }
                }
            }
            let plan = self.diff(&obs);
            if plan.is_empty() && obs.workers_live == self.desired_workers() {
                converged = true;
                break;
            }
            for action in plan.actions {
                retry(
                    self.policy.retry_attempts,
                    self.policy.retry_backoff,
                    || self.execute(&action),
                );
                actions.push(action);
            }
            std::thread::sleep(self.policy.settle);
        }
        let report = ConvergenceReport {
            converged,
            rounds,
            actions,
            slo_violations,
        };
        if converged {
            if let Some(store) = &self.store {
                self.seq += 1;
                store.save(&Snapshot {
                    schema_version: SNAPSHOT_SCHEMA_VERSION,
                    seq: self.seq,
                    spec_hash: self.spec.spec_hash(),
                    converged: true,
                    rounds: report.rounds as u64,
                    actions: report.actions.len() as u64,
                    spec: self.spec.clone(),
                })?;
            }
        }
        Ok(report)
    }

    /// Shuts the fleet down (graceful drain) and returns the final
    /// metrics.
    pub fn shutdown(self) -> MetricsSnapshot {
        self.engine.shutdown()
    }
}

impl std::fmt::Debug for Reconciler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Reconciler")
            .field("spec", &format_args!("{}", self.spec))
            .field("seq", &self.seq)
            .field("store", &self.store.as_ref().map(StateStore::path_display))
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::Slo;
    use duality_workload::FamilySpec;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn tenant(name: &str, seed: u64, prewarm: bool) -> TenantDecl {
        TenantDecl {
            name: name.to_string(),
            record: TenantRecord {
                family: FamilySpec::DiagGrid { w: 4, h: 4 },
                cap_range: (1, 9),
                weight_range: (1, 9),
                graph_seed: seed,
                cap_seed: seed + 100,
                weight_seed: seed + 200,
            },
            prewarm,
            derate_percent: 100,
            slo: None,
        }
    }

    fn spec() -> FleetSpec {
        FleetSpec {
            name: "unit".into(),
            revision: 1,
            workers: 2,
            shards: 2,
            queue_capacity: 16,
            pool_capacity: 8,
            admission: AdmissionPolicy::Block,
            tenants: vec![tenant("a", 1, true), tenant("b", 2, true)],
        }
    }

    #[test]
    fn retry_reports_attempts_honestly() {
        let calls = AtomicUsize::new(0);
        assert!(retry(3, Duration::ZERO, || {
            calls.fetch_add(1, Ordering::Relaxed) == 1
        }));
        assert_eq!(calls.load(Ordering::Relaxed), 2, "succeeded on try 2");
        let calls = AtomicUsize::new(0);
        assert!(!retry(3, Duration::ZERO, || {
            calls.fetch_add(1, Ordering::Relaxed);
            false
        }));
        assert_eq!(calls.load(Ordering::Relaxed), 3, "exhausted the budget");
        assert!(retry(0, Duration::ZERO, || true), "attempts clamp to 1");
    }

    #[test]
    fn launch_then_reconcile_prewarms_the_roster() {
        let mut r = Reconciler::launch(spec()).unwrap();
        let cold = r.observe();
        assert!(cold.tenants.iter().all(|t| !t.resident), "launch is cold");
        let report = r.reconcile().unwrap();
        assert!(report.converged, "{report:?}");
        assert!(report
            .actions
            .iter()
            .any(|a| matches!(a, Action::PrewarmTenant { .. })));
        let warm = r.observe();
        assert!(warm.tenants.iter().all(|t| t.resident));
        assert!(warm.strays.is_empty());
        // Converged fleet: a second pass is a single empty round.
        let again = r.reconcile().unwrap();
        assert!(again.converged && again.rounds == 1 && again.actions.is_empty());
        r.shutdown();
    }

    #[test]
    fn push_derates_through_the_cow_respec_path_and_evicts_strays() {
        let mut r = Reconciler::launch(spec()).unwrap();
        r.reconcile().unwrap();
        let base_key = InstanceKey::of(r.instance("a").unwrap());

        let mut derated = r.spec().clone();
        derated.revision += 1;
        derated.tenants[0].derate_percent = 40;
        let report = r.push(derated).unwrap();
        assert!(report.converged, "{report:?}");
        assert!(report
            .actions
            .iter()
            .any(|a| matches!(a, Action::DerateRegion { percent: 40, .. })));

        let t = &r.tenants[0];
        assert!(
            Arc::ptr_eq(t.base.graph_arc(), t.desired.graph_arc()),
            "derate shares the base graph allocation (COW respec)"
        );
        assert_eq!(
            InstanceKey::of(&t.desired).topo_fingerprint(),
            base_key.topo_fingerprint(),
            "same topology, new spec"
        );
        assert!(r.engine().resident(&InstanceKey::of(&t.desired)));

        // Restore to 100%: the derated solver is now a stray and must go.
        let stray_key = InstanceKey::of(&t.desired);
        let mut restored = r.spec().clone();
        restored.revision += 1;
        restored.tenants[0].derate_percent = 100;
        let report = r.push(restored).unwrap();
        assert!(report.converged);
        assert!(report
            .actions
            .iter()
            .any(|a| matches!(a, Action::EvictTenant { key } if *key == stray_key)));
        assert!(!r.engine().resident(&stray_key));
        assert!(r.engine().resident(&base_key), "base spec is back");
        r.shutdown();
    }

    #[test]
    fn push_reconfigures_workers_and_admission_live() {
        let mut r = Reconciler::launch(spec()).unwrap();
        r.reconcile().unwrap();
        let mut next = r.spec().clone();
        next.revision += 1;
        next.workers = 4;
        next.admission = AdmissionPolicy::Reject;
        let report = r.push(next).unwrap();
        assert!(report.converged, "{report:?}");
        assert_eq!(r.engine().admission(), AdmissionPolicy::Reject);
        assert_eq!(r.engine().metrics().workers, 4);

        // And back down: cooperative retire converges within the budget.
        let mut down = r.spec().clone();
        down.revision += 1;
        down.workers = 1;
        down.admission = AdmissionPolicy::Block;
        let report = r.push(down).unwrap();
        assert!(report.converged, "{report:?}");
        assert_eq!(r.engine().metrics().workers, 1);
        r.shutdown();
    }

    #[test]
    fn push_refuses_engine_shape_changes() {
        let mut r = Reconciler::launch(spec()).unwrap();
        for (mutate, field) in [
            (
                Box::new(|s: &mut FleetSpec| s.shards = 4) as Box<dyn Fn(&mut FleetSpec)>,
                "shards",
            ),
            (Box::new(|s| s.queue_capacity = 99), "queue_capacity"),
            (Box::new(|s| s.pool_capacity = 99), "pool_capacity"),
        ] {
            let mut next = r.spec().clone();
            next.revision += 1;
            mutate(&mut next);
            assert_eq!(
                r.push(next).unwrap_err(),
                ControlError::RequiresRebuild { field }
            );
        }
        assert!(r
            .push(FleetSpec {
                name: String::new(),
                ..spec()
            })
            .is_err());
        r.shutdown();
    }

    #[test]
    fn autopilot_scales_up_under_pressure_and_retires_when_it_clears() {
        // No telemetry spine → autopilot is refused.
        let mut bare = Reconciler::launch(spec()).unwrap();
        let policy = AutopilotPolicy {
            queue_high_water: 1000,
            queue_low_water: 0,
            p99_high_us: 0,
            p99_low_us: 0,
            scale_step: 2,
            max_workers: 4,
            cooldown_rounds: 0,
        };
        assert!(matches!(
            bare.enable_autopilot(policy),
            Err(ControlError::InvalidSpec { .. })
        ));
        bare.shutdown();

        let telemetry = Arc::new(Telemetry::new(1024));
        let mut r = Reconciler::launch_with_telemetry(spec(), Arc::clone(&telemetry)).unwrap();
        r.reconcile().unwrap();
        r.enable_autopilot(policy).unwrap();

        // Any executed job trips the (deliberately unreachable-low) p99
        // high water: the next pass must surge.
        let instance = Arc::clone(r.instance("a").unwrap());
        let query = duality_core::Query::MaxFlow { s: 0, t: 5 };
        r.engine().run(&instance, query).unwrap();
        let report = r.reconcile().unwrap();
        assert!(report.converged, "{report:?}");
        assert!(report
            .actions
            .iter()
            .any(|a| matches!(a, Action::ScaleWorkers { to: 4, .. })));
        assert_eq!(r.desired_workers(), 4);
        assert_eq!(r.engine().metrics().workers, 4);

        // No new work: the pressure window is empty, so the next pass
        // retires back to the spec floor.
        let report = r.reconcile().unwrap();
        assert!(report.converged, "{report:?}");
        assert!(report
            .actions
            .iter()
            .any(|a| matches!(a, Action::ScaleWorkers { to: 2, .. })));
        assert_eq!(r.engine().metrics().workers, 2);

        // Both decisions landed in the telemetry event log, and the
        // tenant that ran the job has an attributed p99.
        let snap = telemetry.snapshot();
        assert!(snap.events.iter().any(|e| e.label == "scale-up"));
        assert!(snap.events.iter().any(|e| e.label == "scale-down"));
        let obs = r.observe();
        assert!(obs.tenants[0].p99_us.is_some(), "tenant a executed a job");
        assert_eq!(obs.tenants[1].p99_us, None, "tenant b executed nothing");
        r.shutdown();
    }

    #[test]
    fn observations_carry_fleet_byte_gauges() {
        let telemetry = Arc::new(Telemetry::new(64));
        let mut r = Reconciler::launch_with_telemetry(spec(), Arc::clone(&telemetry)).unwrap();
        r.reconcile().unwrap();
        let obs = r.observe();
        assert!(obs.resident_bytes > 0, "prewarmed solvers occupy bytes");
        assert!(obs.peak_resident_bytes >= obs.resident_bytes);
        assert_eq!(obs.evicted_bytes, 0, "nothing evicted yet");
        // A query bills its substrate build; the next observation sees it.
        let instance = Arc::clone(r.instance("a").unwrap());
        r.engine()
            .run(&instance, duality_core::Query::Girth)
            .unwrap();
        let obs = r.observe();
        assert!(obs.substrate_build_us > 0 || !telemetry.snapshot().phase_us.is_empty());
        // Observing stamped the gauges into the telemetry spine.
        let snap = telemetry.snapshot();
        assert_eq!(snap.resident_bytes, obs.resident_bytes);
        assert!(snap.peak_resident_bytes >= obs.resident_bytes);
        r.shutdown();
    }

    #[test]
    fn slo_violations_are_reported_not_enforced() {
        let mut s = spec();
        // An unsatisfiable p99 bound: any completed job violates it.
        s.tenants[0].slo = Some(Slo {
            max_p99_us: Some(0),
            max_queue_depth: None,
        });
        let mut r = Reconciler::launch(s).unwrap();
        r.reconcile().unwrap();
        let query = duality_core::Query::MaxFlow { s: 0, t: 5 };
        let instance = Arc::clone(r.instance("a").unwrap());
        r.engine().run(&instance, query).unwrap();
        let obs = r.observe();
        assert!(obs.p99_us.is_some());
        assert!(obs.tenants[0].slo_violated && !obs.tenants[1].slo_violated);
        let report = r.reconcile().unwrap();
        assert!(report.converged, "violations never block convergence");
        assert!(report.slo_violations > 0);
        r.shutdown();
    }
}
