//! Durable controller state: versioned, hash-guarded JSONL snapshots.
//!
//! A [`StateStore`] persists the reconciler's last converged state — a
//! [`Snapshot`] holding the spec in force plus convergence bookkeeping —
//! so a restarted controller resumes from where its predecessor stopped
//! instead of from nothing. The format follows the trace discipline:
//! one header line, then the spec's own canonical JSONL, written
//! atomically (temp file + rename). Loading is paranoid the same way
//! trace replay is: an unknown `schema_version` is refused, and the
//! header's recorded `spec_hash` is compared against the hash re-derived
//! from the parsed spec payload — an edited or corrupted snapshot fails
//! with [`ControlError::HashMismatch`] rather than silently steering the
//! fleet somewhere else. (The hash covers the spec payload; header
//! bookkeeping fields are not self-protected.)

use crate::error::ControlError;
use crate::spec::FleetSpec;
use duality_workload::jsonl::{line, Obj, Val};
use std::path::{Path, PathBuf};

/// Snapshot serialization format version; loading refuses anything
/// else.
pub const SNAPSHOT_SCHEMA_VERSION: u64 = 1;

/// One persisted controller state: the spec in force and how the pass
/// that saved it went.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Snapshot {
    /// Format version ([`SNAPSHOT_SCHEMA_VERSION`]).
    pub schema_version: u64,
    /// Monotone save counter — which snapshot generation this is.
    pub seq: u64,
    /// Content hash of `spec` ([`FleetSpec::spec_hash`]), re-derived and
    /// verified on load.
    pub spec_hash: u64,
    /// Whether the saving pass converged (always true for snapshots the
    /// reconciler writes; kept explicit for forensics).
    pub converged: bool,
    /// Rounds the saving pass took.
    pub rounds: u64,
    /// Actions the saving pass executed.
    pub actions: u64,
    /// The spec that was in force.
    pub spec: FleetSpec,
}

impl Snapshot {
    /// Serializes to canonical JSONL: header line, then the spec's
    /// lines. Byte-stable like the spec serialization it embeds.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        line(
            &mut out,
            &[
                ("kind", Val::s("snapshot")),
                ("schema_version", Val::n(self.schema_version)),
                ("seq", Val::n(self.seq)),
                ("spec_hash", Val::n(self.spec_hash)),
                ("converged", Val::n(u64::from(self.converged))),
                ("rounds", Val::n(self.rounds)),
                ("actions", Val::n(self.actions)),
            ],
        );
        out.push_str(&self.spec.to_jsonl());
        out
    }

    /// Parses and *verifies* a snapshot: schema version, spec validity,
    /// and the recorded-vs-recomputed spec hash.
    ///
    /// # Errors
    ///
    /// [`ControlError::Parse`] on malformed input or an unknown
    /// `schema_version`; [`ControlError::HashMismatch`] when the spec
    /// payload does not hash to the recorded value;
    /// [`ControlError::InvalidSpec`] when the embedded spec fails
    /// validation.
    pub fn parse_jsonl(text: &str) -> Result<Snapshot, ControlError> {
        let mut lines = text.lines();
        let header = lines.next().unwrap_or("");
        let fail = |reason: String| ControlError::Parse { line: 1, reason };
        let obj = Obj::parse(header).map_err(fail)?;
        if obj.str("kind").map_err(fail)? != "snapshot" {
            return Err(fail("expected a snapshot header line".into()));
        }
        let schema_version = obj.u64("schema_version").map_err(fail)?;
        if schema_version != SNAPSHOT_SCHEMA_VERSION {
            return Err(fail(format!(
                "unsupported schema_version {schema_version} (expected {SNAPSHOT_SCHEMA_VERSION})"
            )));
        }
        let rest: String = lines.map(|l| format!("{l}\n")).collect();
        let spec = FleetSpec::parse_jsonl(&rest).map_err(|e| match e {
            // Re-anchor spec line numbers past the header line.
            ControlError::Parse { line, reason } => ControlError::Parse {
                line: line + 1,
                reason,
            },
            other => other,
        })?;
        spec.validate()?;
        let recorded = obj.u64("spec_hash").map_err(fail)?;
        let computed = spec.spec_hash();
        if recorded != computed {
            return Err(ControlError::HashMismatch { recorded, computed });
        }
        Ok(Snapshot {
            schema_version,
            seq: obj.u64("seq").map_err(fail)?,
            spec_hash: recorded,
            converged: obj.u64("converged").map_err(fail)? != 0,
            rounds: obj.u64("rounds").map_err(fail)?,
            actions: obj.u64("actions").map_err(fail)?,
            spec,
        })
    }
}

/// A snapshot slot at a filesystem path. Saves are atomic
/// (write-temp-then-rename), so a crash mid-save leaves the previous
/// snapshot intact.
pub struct StateStore {
    path: PathBuf,
}

impl StateStore {
    /// A store at `path`. Nothing is touched until the first save.
    pub fn new(path: impl Into<PathBuf>) -> StateStore {
        StateStore { path: path.into() }
    }

    /// The store's path, for display.
    pub fn path_display(&self) -> String {
        self.path.display().to_string()
    }

    fn io_err(&self, e: &std::io::Error) -> ControlError {
        ControlError::Io {
            path: self.path_display(),
            reason: e.to_string(),
        }
    }

    /// Atomically persists `snapshot`, replacing any previous one.
    ///
    /// # Errors
    ///
    /// [`ControlError::Io`] when writing or renaming fails.
    pub fn save(&self, snapshot: &Snapshot) -> Result<(), ControlError> {
        let tmp = self.path.with_extension("tmp");
        std::fs::write(&tmp, snapshot.to_jsonl()).map_err(|e| self.io_err(&e))?;
        std::fs::rename(&tmp, &self.path).map_err(|e| self.io_err(&e))
    }

    /// Loads and verifies the stored snapshot; `Ok(None)` when the store
    /// has never been saved to.
    ///
    /// # Errors
    ///
    /// [`ControlError::Io`] on read failure, plus everything
    /// [`Snapshot::parse_jsonl`] refuses.
    pub fn load(&self) -> Result<Option<Snapshot>, ControlError> {
        if !Path::exists(&self.path) {
            return Ok(None);
        }
        let text = std::fs::read_to_string(&self.path).map_err(|e| self.io_err(&e))?;
        Snapshot::parse_jsonl(&text).map(Some)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::TenantDecl;
    use duality_service::AdmissionPolicy;
    use duality_workload::{FamilySpec, TenantRecord};

    fn spec() -> FleetSpec {
        FleetSpec {
            name: "store-unit".into(),
            revision: 3,
            workers: 2,
            shards: 2,
            queue_capacity: 16,
            pool_capacity: 8,
            admission: AdmissionPolicy::Reject,
            tenants: vec![TenantDecl {
                name: "t0".into(),
                record: TenantRecord {
                    family: FamilySpec::Grid { w: 3, h: 3 },
                    cap_range: (1, 9),
                    weight_range: (1, 9),
                    graph_seed: 1,
                    cap_seed: 2,
                    weight_seed: 3,
                },
                prewarm: true,
                derate_percent: 100,
                slo: None,
            }],
        }
    }

    fn snapshot() -> Snapshot {
        let spec = spec();
        Snapshot {
            schema_version: SNAPSHOT_SCHEMA_VERSION,
            seq: 4,
            spec_hash: spec.spec_hash(),
            converged: true,
            rounds: 2,
            actions: 5,
            spec,
        }
    }

    fn temp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("duality-store-{tag}-{}.jsonl", std::process::id()))
    }

    #[test]
    fn save_load_round_trip_is_byte_stable() {
        let snap = snapshot();
        let text = snap.to_jsonl();
        let parsed = Snapshot::parse_jsonl(&text).unwrap();
        assert_eq!(parsed, snap);
        assert_eq!(parsed.to_jsonl(), text, "byte-stable");

        let store = StateStore::new(temp_path("roundtrip"));
        assert!(store.load().unwrap().is_none(), "fresh store is empty");
        store.save(&snap).unwrap();
        assert_eq!(store.load().unwrap().unwrap(), snap);
        std::fs::remove_file(temp_path("roundtrip")).unwrap();
    }

    #[test]
    fn tampered_snapshots_are_refused() {
        let snap = snapshot();
        let text = snap.to_jsonl();

        // Edit the spec payload (derate a tenant): hash check trips.
        let tampered = text.replacen("\"derate_percent\": 100", "\"derate_percent\": 40", 1);
        assert!(matches!(
            Snapshot::parse_jsonl(&tampered).unwrap_err(),
            ControlError::HashMismatch { .. }
        ));

        // Unknown snapshot schema version: refused before hashing.
        let future = text.replacen("\"schema_version\": 1", "\"schema_version\": 99", 1);
        assert!(matches!(
            Snapshot::parse_jsonl(&future).unwrap_err(),
            ControlError::Parse { line: 1, .. }
        ));

        // Truncated to just the header: no spec payload.
        let header_only = text.lines().next().unwrap();
        assert!(Snapshot::parse_jsonl(header_only).is_err());

        // Not a snapshot at all.
        assert!(Snapshot::parse_jsonl("").is_err());
        assert!(Snapshot::parse_jsonl("{\"kind\": \"fleet\"}").is_err());

        // Spec line numbers in errors are offset past the header.
        let broken = format!("{}\nnot json\n", text.lines().next().unwrap());
        assert!(matches!(
            Snapshot::parse_jsonl(&broken).unwrap_err(),
            ControlError::Parse { line: 2, .. }
        ));
    }

    #[test]
    fn io_errors_name_the_path() {
        let store = StateStore::new("/nonexistent-dir/snap.jsonl");
        let err = store.save(&snapshot()).unwrap_err();
        assert!(matches!(err, ControlError::Io { .. }), "{err}");
        assert!(err.to_string().contains("nonexistent-dir"));
    }
}
